(* Normalized rationals: [dn] is positive and [gcd nm dn = 1], so structural
   equality coincides with numerical equality.

   The operations avoid the textbook cross-multiply-then-full-gcd pattern
   where normalization lets them: [add] uses the gcd-of-denominators trick
   (when [gcd d1 d2 = 1] the cross-product sum is already reduced), [mul]
   cancels with the two cross gcds before multiplying, and both have
   denominator-one fast paths.  On the counting workloads most values are
   integers or share denominators, so these paths dominate. *)

type t = { nm : Bigint.t; dn : Bigint.t }

let make_norm nm dn =
  if Bigint.is_zero dn then raise Division_by_zero;
  if Bigint.is_zero nm then { nm = Bigint.zero; dn = Bigint.one }
  else begin
    let nm, dn = if Bigint.sign dn < 0 then (Bigint.neg nm, Bigint.neg dn) else (nm, dn) in
    let g = Bigint.gcd nm dn in
    if Bigint.equal g Bigint.one then { nm; dn }
    else { nm = Bigint.div nm g; dn = Bigint.div dn g }
  end

let make = make_norm
let of_bigint n = { nm = n; dn = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints num den = make_norm (Bigint.of_int num) (Bigint.of_int den)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.nm
let den t = t.dn
let sign t = Bigint.sign t.nm
let is_zero t = Bigint.is_zero t.nm
let is_integer t = Bigint.equal t.dn Bigint.one

let compare a b =
  (* Signs first: they decide without any multiplication. *)
  let sa = Bigint.sign a.nm and sb = Bigint.sign b.nm in
  if sa <> sb then Stdlib.compare sa sb
  else if sa = 0 then 0
  else if Bigint.equal a.dn b.dn then Bigint.compare a.nm b.nm
  else Bigint.compare (Bigint.mul a.nm b.dn) (Bigint.mul b.nm a.dn)

let equal a b = Bigint.equal a.nm b.nm && Bigint.equal a.dn b.dn

let neg t = { t with nm = Bigint.neg t.nm }
let abs t = { t with nm = Bigint.abs t.nm }

let add a b =
  if Bigint.is_zero a.nm then b
  else if Bigint.is_zero b.nm then a
  else if Bigint.equal a.dn Bigint.one && Bigint.equal b.dn Bigint.one then
    { nm = Bigint.add a.nm b.nm; dn = Bigint.one }
  else begin
    (* Let g = gcd(d1, d2).  Both inputs are reduced, so when g = 1 the
       cross-product sum over d1*d2 is already in lowest terms; otherwise
       only gcd(t, g) can cancel, where t = n1*(d2/g) + n2*(d1/g). *)
    let g = Bigint.gcd a.dn b.dn in
    if Bigint.equal g Bigint.one then
      { nm = Bigint.add (Bigint.mul a.nm b.dn) (Bigint.mul b.nm a.dn);
        dn = Bigint.mul a.dn b.dn }
    else begin
      let da = Bigint.div a.dn g and db = Bigint.div b.dn g in
      let t = Bigint.add (Bigint.mul a.nm db) (Bigint.mul b.nm da) in
      if Bigint.is_zero t then { nm = Bigint.zero; dn = Bigint.one }
      else begin
        let g2 = Bigint.gcd t g in
        if Bigint.equal g2 Bigint.one then { nm = t; dn = Bigint.mul a.dn db }
        else
          { nm = Bigint.div t g2;
            dn = Bigint.mul da (Bigint.mul db (Bigint.div g g2)) }
      end
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if Bigint.is_zero a.nm || Bigint.is_zero b.nm then zero
  else begin
    (* Cancel across the diagonal before multiplying: the factors are
       reduced, so gcd(n1*n2, d1*d2) = gcd(n1,d2) * gcd(n2,d1). *)
    let g1 = Bigint.gcd a.nm b.dn and g2 = Bigint.gcd b.nm a.dn in
    let n1 = if Bigint.equal g1 Bigint.one then a.nm else Bigint.div a.nm g1 in
    let d2 = if Bigint.equal g1 Bigint.one then b.dn else Bigint.div b.dn g1 in
    let n2 = if Bigint.equal g2 Bigint.one then b.nm else Bigint.div b.nm g2 in
    let d1 = if Bigint.equal g2 Bigint.one then a.dn else Bigint.div a.dn g2 in
    { nm = Bigint.mul n1 n2; dn = Bigint.mul d1 d2 }
  end

let inv t =
  if is_zero t then raise Division_by_zero;
  if Bigint.sign t.nm < 0 then { nm = Bigint.neg t.dn; dn = Bigint.neg t.nm }
  else { nm = t.dn; dn = t.nm }

let div a b = mul a (inv b)

let mul_bigint t n =
  if Bigint.is_zero n || Bigint.is_zero t.nm then zero
  else if Bigint.equal t.dn Bigint.one then { nm = Bigint.mul t.nm n; dn = Bigint.one }
  else begin
    let g = Bigint.gcd n t.dn in
    if Bigint.equal g Bigint.one then { nm = Bigint.mul t.nm n; dn = t.dn }
    else { nm = Bigint.mul t.nm (Bigint.div n g); dn = Bigint.div t.dn g }
  end

let to_bigint t =
  if is_integer t then t.nm
  else failwith "Rat.to_bigint: not an integer"

let to_float t =
  let bn = Bigint.bit_length t.nm and bd = Bigint.bit_length t.dn in
  if bn < 1000 && bd < 1000 then Bigint.to_float t.nm /. Bigint.to_float t.dn
  else begin
    (* Both sides can exceed float range (inf /. inf = nan) even when the
       quotient is finite — e.g. reduced n!-denominator Shapley values for
       n >~ 171.  Shift each side down to ~60 significant bits (more than a
       float mantissa) and restore the exponent difference with ldexp, which
       saturates to inf/0 exactly when the true quotient does.  Result is
       within a few ulps of correctly rounded — fine for reporting. *)
    let s1 = Stdlib.max 0 (bn - 60) and s2 = Stdlib.max 0 (bd - 60) in
    Float.ldexp
      (Bigint.to_float (Bigint.shift_right t.nm s1)
       /. Bigint.to_float (Bigint.shift_right t.dn s2))
      (s1 - s2)
  end

let to_string t =
  if is_integer t then Bigint.to_string t.nm
  else Bigint.to_string t.nm ^ "/" ^ Bigint.to_string t.dn

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    make_norm
      (Bigint.of_string (String.sub s 0 i))
      (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let pp ppf t = Format.pp_print_string ppf (to_string t)
let hash t = Hashtbl.hash (Bigint.hash t.nm, Bigint.hash t.dn)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( ~- ) = neg
end
