(** Exact linear algebra over {!Rat}.

    Lemmas 3.3 and 3.4 each solve a Vandermonde system with nodes
    [alpha_l = 2^l - 1].  A Vandermonde solve is polynomial interpolation, so
    the primary solver here runs Newton divided differences in [O(m^2)]
    exact operations; a dense Gaussian elimination is provided both as a
    general-purpose solver and as the ablation baseline benchmarked in
    experiment E4. *)

(** [vandermonde_solve ~points ~values] returns the unique [x] with
    [sum_k x_k * points_i^k = values_i] for all [i], i.e. the coefficient
    vector (constant term first) of the polynomial interpolating
    [(points_i, values_i)].  The nodes must be pairwise distinct.
    @raise Invalid_argument on length mismatch or duplicate nodes. *)
val vandermonde_solve : points:Rat.t array -> values:Rat.t array -> Rat.t array

(** An LU factorization with partial pivoting ([P A = L U]), immutable once
    built: factor a matrix once and solve for many right-hand sides, safely
    shared across domains. *)
type lu

(** [lu_factor a] factors the square matrix [a]; [None] when singular.
    [a] is not modified. *)
val lu_factor : Rat.t array array -> lu option

(** [lu_solve f b] solves [a x = b] for the matrix factored into [f] in
    [O(n^2)] exact operations.  [b] is not modified.
    @raise Invalid_argument on length mismatch. *)
val lu_solve : lu -> Rat.t array -> Rat.t array

(** [gauss_solve a b] solves the square system [a x = b] by fraction-exact
    Gaussian elimination with partial (first-nonzero) pivoting (an
    [lu_factor] + [lu_solve] pair).  Returns [None] when [a] is singular.
    [a] and [b] are not modified. *)
val gauss_solve : Rat.t array array -> Rat.t array -> Rat.t array option

(** [mat_vec a x] is the matrix-vector product (for verification). *)
val mat_vec : Rat.t array array -> Rat.t array -> Rat.t array

(** [vandermonde_matrix points ~cols] is the matrix with entry
    [points_i^k] at row [i], column [k], for [k < cols]. *)
val vandermonde_matrix : Rat.t array -> cols:int -> Rat.t array array
