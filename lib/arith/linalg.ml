(* Vandermonde solving = polynomial interpolation: the solution vector of
   [V x = b] with [V_{i,k} = p_i^k] is the coefficient vector of the unique
   polynomial through [(p_i, b_i)].  Newton divided differences give the
   Newton form in O(m^2); the conversion to monomial coefficients below is
   the usual nested multiplication by [(x - p_i)]. *)

let vandermonde_solve ~points ~values =
  Obs.incr "linalg.vandermonde_solves";
  Obs.with_span "linalg.vandermonde_solve"
    ~attrs:[ ("nodes", Trace.Int (Array.length points)) ]
  @@ fun () ->
  let m = Array.length points in
  if Array.length values <> m then
    invalid_arg "Linalg.vandermonde_solve: length mismatch";
  Array.iteri
    (fun i pi ->
       for j = i + 1 to m - 1 do
         if Rat.equal pi points.(j) then
           invalid_arg "Linalg.vandermonde_solve: duplicate nodes"
       done)
    points;
  if m = 0 then [||]
  else begin
    (* Divided-difference table, computed in place: after round [j],
       [d.(i)] holds f[p_{i-j}, ..., p_i]. *)
    let d = Array.copy values in
    for j = 1 to m - 1 do
      for i = m - 1 downto j do
        d.(i) <-
          Rat.div (Rat.sub d.(i) (d.(i - 1)))
            (Rat.sub points.(i) (points.(i - j)))
      done
    done;
    (* Newton -> monomial: c := c * (x - p_i) + d_i, from the top down. *)
    let c = ref Poly.zero in
    for i = m - 1 downto 0 do
      c := Poly.add (Poly.mul !c (Poly.x_minus points.(i)))
          (Poly.of_coeffs [ d.(i) ])
    done;
    Array.init m (fun k -> Poly.coeff !c k)
  end

let gauss_solve a b =
  Obs.incr "linalg.gauss_solves";
  Obs.with_span "linalg.gauss_solve"
    ~attrs:[ ("rows", Trace.Int (Array.length a)) ]
  @@ fun () ->
  let n = Array.length a in
  if n = 0 then Some [||]
  else begin
    let a = Array.map Array.copy a in
    let b = Array.copy b in
    let exception Singular in
    try
      for col = 0 to n - 1 do
        (* Partial pivoting: any nonzero pivot is exact over Q. *)
        let pivot = ref (-1) in
        (try
           for r = col to n - 1 do
             if not (Rat.is_zero a.(r).(col)) then begin
               pivot := r;
               raise Exit
             end
           done
         with Exit -> ());
        if !pivot < 0 then raise Singular;
        if !pivot <> col then begin
          let t = a.(col) in
          a.(col) <- a.(!pivot);
          a.(!pivot) <- t;
          let t = b.(col) in
          b.(col) <- b.(!pivot);
          b.(!pivot) <- t
        end;
        let inv_p = Rat.inv a.(col).(col) in
        for r = col + 1 to n - 1 do
          let factor = Rat.mul a.(r).(col) inv_p in
          if not (Rat.is_zero factor) then begin
            for c = col to n - 1 do
              a.(r).(c) <- Rat.sub a.(r).(c) (Rat.mul factor a.(col).(c))
            done;
            b.(r) <- Rat.sub b.(r) (Rat.mul factor b.(col))
          end
        done
      done;
      let x = Array.make n Rat.zero in
      for r = n - 1 downto 0 do
        let s = ref b.(r) in
        for c = r + 1 to n - 1 do
          s := Rat.sub !s (Rat.mul a.(r).(c) x.(c))
        done;
        x.(r) <- Rat.div !s a.(r).(r)
      done;
      Some x
    with Singular -> None
  end

let mat_vec a x =
  Array.map
    (fun row ->
       let s = ref Rat.zero in
       Array.iteri (fun j v -> s := Rat.add !s (Rat.mul v x.(j))) row;
       !s)
    a

let vandermonde_matrix points ~cols =
  Array.map
    (fun p ->
       let row = Array.make cols Rat.one in
       for k = 1 to cols - 1 do
         row.(k) <- Rat.mul row.(k - 1) p
       done;
       row)
    points
