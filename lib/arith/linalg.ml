(* Vandermonde solving = polynomial interpolation: the solution vector of
   [V x = b] with [V_{i,k} = p_i^k] is the coefficient vector of the unique
   polynomial through [(p_i, b_i)].  Newton divided differences give the
   Newton form in O(m^2); the conversion to monomial coefficients below is
   the usual nested multiplication by [(x - p_i)]. *)

let vandermonde_solve ~points ~values =
  Obs.incr "linalg.vandermonde_solves";
  Obs.with_span "linalg.vandermonde_solve"
    ~attrs:[ ("nodes", Trace.Int (Array.length points)) ]
  @@ fun () ->
  let m = Array.length points in
  if Array.length values <> m then
    invalid_arg "Linalg.vandermonde_solve: length mismatch";
  Array.iteri
    (fun i pi ->
       for j = i + 1 to m - 1 do
         if Rat.equal pi points.(j) then
           invalid_arg "Linalg.vandermonde_solve: duplicate nodes"
       done)
    points;
  if m = 0 then [||]
  else begin
    (* Divided-difference table, computed in place: after round [j],
       [d.(i)] holds f[p_{i-j}, ..., p_i]. *)
    let d = Array.copy values in
    for j = 1 to m - 1 do
      for i = m - 1 downto j do
        d.(i) <-
          Rat.div (Rat.sub d.(i) (d.(i - 1)))
            (Rat.sub points.(i) (points.(i - j)))
      done
    done;
    (* Newton -> monomial: c := c * (x - p_i) + d_i, from the top down. *)
    let c = ref Poly.zero in
    for i = m - 1 downto 0 do
      c := Poly.add (Poly.mul !c (Poly.x_minus points.(i)))
          (Poly.of_coeffs [ d.(i) ])
    done;
    Array.init m (fun k -> Poly.coeff !c k)
  end

(* LU factorization with first-nonzero partial pivoting, stored packed:
   [mat] holds U on and above the diagonal and the elimination multipliers
   strictly below it; [swaps.(col)] is the row exchanged with [col] at step
   [col].  A factorization is immutable after construction, so one factor
   can serve many [lu_solve] calls — including concurrently from the
   [Par.map_n] domain fan-out. *)
type lu = { swaps : int array; mat : Rat.t array array }

let lu_factor a =
  Obs.incr "linalg.lu_factors";
  Obs.with_span "linalg.lu_factor" ~attrs:[ ("rows", Trace.Int (Array.length a)) ]
  @@ fun () ->
  let n = Array.length a in
  let mat = Array.map Array.copy a in
  let swaps = Array.make n 0 in
  let exception Singular in
  try
    for col = 0 to n - 1 do
      (* Partial pivoting: any nonzero pivot is exact over Q. *)
      let pivot = ref (-1) in
      (try
         for r = col to n - 1 do
           if not (Rat.is_zero mat.(r).(col)) then begin
             pivot := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot < 0 then raise Singular;
      swaps.(col) <- !pivot;
      if !pivot <> col then begin
        let t = mat.(col) in
        mat.(col) <- mat.(!pivot);
        mat.(!pivot) <- t
      end;
      let inv_p = Rat.inv mat.(col).(col) in
      for r = col + 1 to n - 1 do
        let factor = Rat.mul mat.(r).(col) inv_p in
        mat.(r).(col) <- factor;
        if not (Rat.is_zero factor) then
          for c = col + 1 to n - 1 do
            mat.(r).(c) <- Rat.sub mat.(r).(c) (Rat.mul factor mat.(col).(c))
          done
      done
    done;
    Some { swaps; mat }
  with Singular -> None

let lu_solve { swaps; mat } b =
  let n = Array.length mat in
  if Array.length b <> n then invalid_arg "Linalg.lu_solve: length mismatch";
  let b = Array.copy b in
  (* Apply the recorded transpositions in factorization order: P b. *)
  for col = 0 to n - 1 do
    let p = swaps.(col) in
    if p <> col then begin
      let t = b.(col) in
      b.(col) <- b.(p);
      b.(p) <- t
    end
  done;
  (* Forward substitution through the unit-lower multipliers: y = L^-1 P b. *)
  for col = 0 to n - 1 do
    for r = col + 1 to n - 1 do
      if not (Rat.is_zero mat.(r).(col)) then
        b.(r) <- Rat.sub b.(r) (Rat.mul mat.(r).(col) b.(col))
    done
  done;
  (* Back substitution through U. *)
  let x = Array.make n Rat.zero in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := Rat.sub !s (Rat.mul mat.(r).(c) x.(c))
    done;
    x.(r) <- Rat.div !s mat.(r).(r)
  done;
  x

let gauss_solve a b =
  Obs.incr "linalg.gauss_solves";
  Obs.with_span "linalg.gauss_solve"
    ~attrs:[ ("rows", Trace.Int (Array.length a)) ]
  @@ fun () ->
  match lu_factor a with
  | None -> None
  | Some f -> Some (lu_solve f b)

let mat_vec a x =
  Array.map
    (fun row ->
       let s = ref Rat.zero in
       Array.iteri (fun j v -> s := Rat.add !s (Rat.mul v x.(j))) row;
       !s)
    a

let vandermonde_matrix points ~cols =
  Array.map
    (fun p ->
       let row = Array.make cols Rat.one in
       for k = 1 to cols - 1 do
         row.(k) <- Rat.mul row.(k - 1) p
       done;
       row)
    points
