(** Arbitrary-precision signed integers.

    The reductions of the paper are exact: Shapley values carry [n!]
    denominators and the Vandermonde systems of Lemmas 3.3 and 3.4 contain
    entries of magnitude [(2^l - 1)^k], far beyond 63-bit range.  No bignum
    library is available in this environment, so this module provides a
    self-contained two-tier implementation: values fitting a native 63-bit
    [int] are stored unboxed with overflow-checked native arithmetic, and
    everything larger falls back to sign + little-endian magnitude in base
    [2^15] with Karatsuba multiplication and Knuth Algorithm D division.
    See DESIGN.md ("Two-tier exact arithmetic"). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

(** [of_int n] converts a native integer (any value of [int]). *)
val of_int : int -> t

(** [to_int t] converts back to a native integer.
    @raise Failure if the value does not fit in an OCaml [int]. *)
val to_int : t -> int

(** [to_int_opt t] is [Some n] when the value fits in an OCaml [int]. *)
val to_int_opt : t -> int option

(** [of_string s] parses an optionally ['-']-prefixed decimal numeral.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string t] renders the value as a decimal numeral. *)
val to_string : t -> string

(** [to_float t] is a possibly lossy float approximation (for reporting). *)
val to_float : t -> float

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool

(** [sign t] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [succ t] is [add t one]; [pred t] is [sub t one]. *)
val succ : t -> t

val pred : t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], quotient truncated toward
    zero, so [sign r] is [0] or [sign a] and [|r| < |b|].
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow base e] is [base^e] for [e >= 0].
    @raise Invalid_argument if [e < 0]. *)
val pow : t -> int -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [two_pow_minus_one l] is [2^l - 1], the interpolation point of
    Claim 3.5 for substitution width [l].
    @raise Invalid_argument if [l < 0]. *)
val two_pow_minus_one : int -> t

(** [mul_int t k] multiplies by a native integer. *)
val mul_int : t -> int -> t

(** [add_int t k] adds a native integer. *)
val add_int : t -> int -> t

(** Number of bits in the magnitude ([0] for zero); used for size reporting. *)
val bit_length : t -> int

(** [shift_right t s] shifts the magnitude right by [s >= 0] bits, i.e.
    truncates [t / 2^s] toward zero.
    @raise Invalid_argument if [s < 0]. *)
val shift_right : t -> int -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( ~- ) : t -> t
end

(** {1 Misc} *)

val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Test-only hooks into the representation; not for production use. *)
module Internal : sig
  (** [is_small t] is [true] iff [t] is stored in the unboxed native-int
      tier.  The representation is canonical, so this must hold exactly
      when the value fits an OCaml [int]. *)
  val is_small : t -> bool

  (** Limb count of the smaller operand above which multiplication switches
      from schoolbook to Karatsuba. *)
  val karatsuba_threshold : int

  (** Schoolbook multiplication, bypassing Karatsuba — for differential
      testing at sizes straddling the threshold. *)
  val mul_schoolbook : t -> t -> t
end
