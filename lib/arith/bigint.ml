(* Two-tier exact integers.

   [Small n] holds any value representable as a native 63-bit [int];
   [Big { sg; mag }] holds everything else as sign + little-endian base-2^15
   magnitude with no leading zero limb.  The representation is canonical:
   a value fitting a native int is ALWAYS [Small] (constructors demote), so
   structural equality coincides with numerical equality and [Small] never
   overlaps [Big].  [Big.sg] is [-1] or [1]; zero is [Small 0].

   Fast paths: add/sub/mul/divmod/compare/gcd on two [Small]s run on native
   ints with explicit overflow checks and fall back to the magnitude kernel
   only on actual overflow.  The magnitude kernel uses Karatsuba above
   [kara_threshold] limbs and Knuth Algorithm D (quotient-digit estimation)
   for long division. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let mask = base - 1

type t =
  | Small of int
  | Big of { sg : int; mag : int array }

let zero = Small 0
let of_int n = Small n
let one = Small 1
let two = Small 2
let minus_one = Small (-1)

(* Magnitude of [n] as limbs, for any [n <> 0] including [min_int]
   (computed on the negative side so [min_int] does not overflow). *)
let mag_of_int n =
  let m = if n < 0 then n else -n in
  let rec count m acc = if m = 0 then acc else count (m / base) (acc + 1) in
  let len = count m 0 in
  let mag = Array.make len 0 in
  let rec fill i m =
    if m <> 0 then begin
      mag.(i) <- -(m mod base);
      fill (i + 1) (m / base)
    end
  in
  fill 0 m;
  mag

(* Robust to non-canonical (leading-zero-padded) magnitudes. *)
let effective_length a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  !n

(* Native value of a magnitude when it fits, accumulating on the negative
   side so that [min_int] round-trips. *)
let small_of_mag sg mag len =
  let limit = Stdlib.min_int in
  let rec go i acc =
    if i < 0 then Some acc
    else begin
      let d = mag.(i) in
      if acc < limit / base then None
      else begin
        let acc = acc * base in
        if acc < limit + d then None else go (i - 1) (acc - d)
      end
    end
  in
  match go (len - 1) 0 with
  | None -> None
  | Some negv ->
    if sg < 0 then Some negv
    else if negv = Stdlib.min_int then None
    else Some (-negv)

(* Canonical constructor: trims leading zeros, demotes to [Small] whenever
   the value fits a native int.  Magnitudes of <= 4 limbs (60 bits) always
   fit; 5 limbs may; >= 6 never do. *)
let make_big sg mag =
  let len = effective_length mag in
  if len = 0 then Small 0
  else begin
    let small = if len <= 5 then small_of_mag sg mag len else None in
    match small with
    | Some v -> Small v
    | None ->
      Big { sg; mag = (if len = Array.length mag then mag else Array.sub mag 0 len) }
  end

(* Decompose into sign and magnitude for the slow paths. *)
let sg_mag t =
  match t with
  | Small 0 -> (0, [||])
  | Small n -> ((if n < 0 then -1 else 1), mag_of_int n)
  | Big b -> (b.sg, b.mag)

let sign t =
  match t with
  | Small n -> Stdlib.compare n 0
  | Big b -> b.sg

let is_zero t =
  match t with
  | Small 0 -> true
  | _ -> false

let neg t =
  match t with
  | Small n ->
    if n = Stdlib.min_int then Big { sg = 1; mag = mag_of_int n } else Small (-n)
  | Big b -> Big { sg = -b.sg; mag = b.mag }

let abs t = if sign t < 0 then neg t else t

let compare_mag a b =
  let la = effective_length a and lb = effective_length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  match a, b with
  | Small x, Small y -> Stdlib.compare x y
  | Small _, Big y -> -y.sg (* |Big| > |Small| always, so Big's sign decides *)
  | Big x, Small _ -> x.sg
  | Big x, Big y ->
    if x.sg <> y.sg then Stdlib.compare x.sg y.sg
    else if x.sg >= 0 then compare_mag x.mag y.mag
    else compare_mag y.mag x.mag

let equal a b =
  match a, b with
  | Small x, Small y -> x = y
  | Big x, Big y -> x.sg = y.sg && x.mag = y.mag
  | _ -> false

let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let min a b = if leq a b then a else b
let max a b = if leq a b then b else a

(* ------------------------------------------------------------------ *)
(* Magnitude kernel                                                   *)
(* ------------------------------------------------------------------ *)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let out = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  out.(l) <- !carry;
  out

(* Requires [a >= b] numerically; tolerates leading zeros and [b] arrays
   longer than [a]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let out = Array.make l 0 in
  let borrow = ref 0 in
  for i = 0 to l - 1 do
    let d =
      (if i < la then a.(i) else 0) - (if i < lb then b.(i) else 0) - !borrow
    in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

(* Multiply a magnitude by a small non-negative int (< 2^30). *)
let mul_small_mag a k =
  if k = 0 || Array.length a = 0 then [||]
  else begin
    let la = Array.length a in
    let out = Array.make (la + 3) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) * k) + !carry in
      out.(i) <- v land mask;
      carry := v lsr base_bits
    done;
    let i = ref la in
    while !carry <> 0 do
      out.(!i) <- !carry land mask;
      carry := !carry lsr base_bits;
      incr i
    done;
    out
  end

let mul_mag_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let v = out.(i + j) + (ai * b.(j)) + !carry in
          out.(i + j) <- v land mask;
          carry := v lsr base_bits
        done;
        out.(i + lb) <- out.(i + lb) + !carry
      end
    done;
    out
  end

(* Karatsuba kicks in when the smaller operand has at least this many limbs
   (~360 bits).  Tuned with bench section E22; see DESIGN.md to retune. *)
let kara_threshold = 24

(* Add [src] (value) into [out] starting at limb [off], with carry. *)
let add_into out src off =
  let ls = effective_length src in
  let carry = ref 0 in
  let i = ref 0 in
  while !i < ls || !carry <> 0 do
    let j = off + !i in
    let s = out.(j) + (if !i < ls then src.(!i) else 0) + !carry in
    out.(j) <- s land mask;
    carry := s lsr base_bits;
    incr i
  done

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la = 1 then mul_small_mag b a.(0)
  else if lb = 1 then mul_small_mag a b.(0)
  else if Stdlib.min la lb < kara_threshold then mul_mag_school a b
  else begin
    (* Karatsuba: split both operands at half the larger length. *)
    let m = (Stdlib.max la lb + 1) / 2 in
    let lo x lx = Array.sub x 0 (Stdlib.min lx m) in
    let hi x lx = if lx <= m then [||] else Array.sub x m (lx - m) in
    let a0 = lo a la and a1 = hi a la in
    let b0 = lo b lb and b1 = hi b lb in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let z1 = sub_mag (mul_mag (add_mag a0 a1) (add_mag b0 b1)) (add_mag z0 z2) in
    let out = Array.make (la + lb) 0 in
    add_into out z0 0;
    add_into out z1 m;
    add_into out z2 (2 * m);
    out
  end

(* Divide a magnitude by a small positive int (< 2^30): (quotient, rem). *)
let divmod_small_mag a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth Algorithm D: normalize so the top divisor limb is >= base/2, then
   estimate each quotient digit from the top two dividend limbs against the
   top divisor limb, correct with the next divisor limb, multiply-subtract,
   and (rarely) add back.  Returns raw (quotient, remainder) magnitudes. *)
let divmod_mag a b =
  let m = effective_length b in
  if m = 0 then raise Division_by_zero;
  let n = effective_length a in
  let a = if n = Array.length a then a else Array.sub a 0 n in
  let b = if m = Array.length b then b else Array.sub b 0 m in
  if n < m || (n = m && compare_mag a b < 0) then ([||], a)
  else if m = 1 then begin
    let q, r = divmod_small_mag a b.(0) in
    (q, [| r |])
  end
  else begin
    (* Normalization shift. *)
    let s =
      let s = ref 0 and v = ref b.(m - 1) in
      while !v < base / 2 do
        v := !v lsl 1;
        incr s
      done;
      !s
    in
    let u = Array.make (n + 1) 0 in
    u.(n) <- (a.(n - 1) lsr (base_bits - s)) land mask;
    for i = n - 1 downto 1 do
      u.(i) <- ((a.(i) lsl s) lor (a.(i - 1) lsr (base_bits - s))) land mask
    done;
    u.(0) <- (a.(0) lsl s) land mask;
    let v = Array.make m 0 in
    for i = m - 1 downto 1 do
      v.(i) <- ((b.(i) lsl s) lor (b.(i - 1) lsr (base_bits - s))) land mask
    done;
    v.(0) <- (b.(0) lsl s) land mask;
    let vh = v.(m - 1) and vl = v.(m - 2) in
    let q = Array.make (n - m + 1) 0 in
    for j = n - m downto 0 do
      let num = (u.(j + m) lsl base_bits) lor u.(j + m - 1) in
      let qhat = ref (num / vh) and rhat = ref (num mod vh) in
      let adjusting = ref true in
      while
        !adjusting
        && (!qhat >= base || !qhat * vl > (!rhat lsl base_bits) lor u.(j + m - 2))
      do
        decr qhat;
        rhat := !rhat + vh;
        if !rhat >= base then adjusting := false
      done;
      (* Multiply-subtract qhat*v from u[j .. j+m]. *)
      let borrow = ref 0 in
      for i = 0 to m - 1 do
        let p = !qhat * v.(i) in
        let d = u.(i + j) - !borrow - (p land mask) in
        u.(i + j) <- d land mask;
        borrow := (p lsr base_bits) - (d asr base_bits)
      done;
      let d = u.(j + m) - !borrow in
      u.(j + m) <- d;
      if d < 0 then begin
        (* qhat was one too large: add the divisor back. *)
        decr qhat;
        let carry = ref 0 in
        for i = 0 to m - 1 do
          let s2 = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- s2 land mask;
          carry := s2 lsr base_bits
        done;
        u.(j + m) <- u.(j + m) + !carry
      end;
      q.(j) <- !qhat
    done;
    (* Denormalize the remainder u[0 .. m-1]. *)
    let r = Array.make m 0 in
    for i = 0 to m - 1 do
      r.(i) <- ((u.(i) lsr s) lor ((u.(i + 1) lsl (base_bits - s)) land mask)) land mask
    done;
    (q, r)
  end

(* ------------------------------------------------------------------ *)
(* Arithmetic with native fast paths                                  *)
(* ------------------------------------------------------------------ *)

let add_big a b =
  let sa, ma = sg_mag a and sb, mb = sg_mag b in
  if sa = 0 then b
  else if sb = 0 then a
  else if sa = sb then make_big sa (add_mag ma mb)
  else begin
    match compare_mag ma mb with
    | 0 -> Small 0
    | c when c > 0 -> make_big sa (sub_mag ma mb)
    | _ -> make_big sb (sub_mag mb ma)
  end

let add a b =
  match a, b with
  | Small 0, _ -> b
  | _, Small 0 -> a
  | Small x, Small y ->
    let s = x + y in
    if (x lxor s) land (y lxor s) < 0 then add_big a b else Small s
  | _ -> add_big a b

let sub a b = add a (neg b)
let succ t = add t one
let pred t = sub t one

let mul_big a b =
  let sa, ma = sg_mag a and sb, mb = sg_mag b in
  if sa = 0 || sb = 0 then Small 0 else make_big (sa * sb) (mul_mag ma mb)

let mul a b =
  match a, b with
  | Small 0, _ | _, Small 0 -> Small 0
  | Small 1, _ -> b
  | _, Small 1 -> a
  | Small x, Small y when x <> Stdlib.min_int && y <> Stdlib.min_int ->
    let ax = Stdlib.abs x and ay = Stdlib.abs y in
    if ax lor ay < 0x4000_0000 then Small (x * y)
    else begin
      (* A wrapped product differs from the true one by k*2^63 with k <> 0,
         and |y| <= 2^62, so the division check is exact. *)
      let p = x * y in
      if p / y = x then Small p else mul_big a b
    end
  | _ -> mul_big a b

let mul_int t k =
  match t with
  | Small _ -> mul t (Small k)
  | Big b ->
    if k = 0 then Small 0
    else if k = 1 then t
    else if k <> Stdlib.min_int && Stdlib.abs k < base * base then begin
      let sg = if k < 0 then -b.sg else b.sg in
      make_big sg (mul_small_mag b.mag (Stdlib.abs k))
    end
    else begin
      (* |k| too large for the single-limb-ish path (including k = min_int,
         whose Stdlib.abs is still negative): go through the general kernel. *)
      let sg = if k < 0 then -b.sg else b.sg in
      make_big sg (mul_mag b.mag (mag_of_int k))
    end

let add_int t k = add t (Small k)

let divmod a b =
  match a, b with
  | _, Small 0 -> raise Division_by_zero
  | Small 0, _ -> (Small 0, Small 0)
  | Small x, Small y ->
    (* min_int / -1 traps in hardware; its quotient is 2^62, a Big. *)
    if x = Stdlib.min_int && y = -1 then (neg a, Small 0)
    else (Small (x / y), Small (x mod y))
  | Small _, Big _ -> (Small 0, a) (* |a| <= max_int < |b| *)
  | Big x, _ ->
    let sb, mb = sg_mag b in
    let qm, rm = divmod_mag x.mag mb in
    (make_big (x.sg * sb) qm, make_big x.sg rm)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent"
  else if e = 0 then one
  else begin
    let h = pow b (e / 2) in
    let h2 = mul h h in
    if e land 1 = 1 then mul h2 b else h2
  end

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let rec gcd a b =
  match a, b with
  | Small x, Small y when x <> Stdlib.min_int && y <> Stdlib.min_int ->
    Small (gcd_int (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    let a = abs a and b = abs b in
    if is_zero b then a else gcd b (rem a b)

let two_pow_minus_one l =
  if l < 0 then invalid_arg "Bigint.two_pow_minus_one";
  if l = 0 then zero
  else if l < 62 then Small ((1 lsl l) - 1)
  else if l = 62 then Small Stdlib.max_int
  else begin
    let limbs = (l + base_bits - 1) / base_bits in
    let top_bits = l - ((limbs - 1) * base_bits) in
    let mag =
      Array.init limbs (fun i ->
          if i < limbs - 1 then mask else (1 lsl top_bits) - 1)
    in
    make_big 1 mag
  end

let to_string t =
  match t with
  | Small n -> string_of_int n
  | Big b ->
    let chunks = ref [] in
    let m = ref b.mag in
    while effective_length !m > 0 do
      let q, r = divmod_small_mag !m 1_000_000_000 in
      chunks := r :: !chunks;
      let len = effective_length q in
      m := (if len = Array.length q then q else Array.sub q 0 len)
    done;
    let buf = Buffer.create 32 in
    if b.sg < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let neg_in, start = if s.[0] = '-' then (true, 1) else (false, 0) in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0')
  done;
  if neg_in then neg !acc else !acc

let to_float t =
  match t with
  | Small n -> float_of_int n
  | Big b ->
    (* A float mantissa holds 53 bits; the top four limbs carry at least 46
       and at most 60 significant bits, so accumulating them and scaling by
       ldexp is exact up to rounding and never overflows prematurely. *)
    let len = Array.length b.mag in
    let f = ref 0.0 in
    for i = len - 1 downto len - 4 do
      f := (!f *. 32768.0) +. float_of_int b.mag.(i)
    done;
    let f = Float.ldexp !f ((len - 4) * base_bits) in
    if b.sg < 0 then -.f else f

let shift_right t s =
  if s < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if s = 0 || is_zero t then t
  else begin
    match t with
    | Small n ->
      if n >= 0 then Small (if s > 62 then 0 else n lsr s)
      else if n = Stdlib.min_int then
        (* |min_int| = 2^62 *)
        (if s > 62 then Small 0 else Small (-(1 lsl (62 - s))))
      else Small (if s > 62 then 0 else -((-n) lsr s))
    | Big b ->
      let len = Array.length b.mag in
      let d = s / base_bits and r = s mod base_bits in
      if d >= len then Small 0
      else begin
        let nl = len - d in
        let out = Array.make nl 0 in
        for i = 0 to nl - 1 do
          let lo = b.mag.(i + d) lsr r in
          let hi =
            if i + d + 1 < len then (b.mag.(i + d + 1) lsl (base_bits - r)) land mask
            else 0
          in
          out.(i) <- lo lor hi
        done;
        make_big b.sg out
      end
  end

let to_int_opt t =
  match t with
  | Small n -> Some n
  | Big _ -> None

let to_int t =
  match t with
  | Small n -> n
  | Big _ -> failwith "Bigint.to_int: value out of native int range"

let bit_length t =
  match t with
  | Small 0 -> 0
  | Small n ->
    (* Count bits of |n| on the negative side so min_int is safe. *)
    let rec bits m acc = if m = 0 then acc else bits (m / 2) (acc + 1) in
    bits (if n < 0 then n else -n) 0
  | Big b ->
    let l = Array.length b.mag in
    let top = b.mag.(l - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((l - 1) * base_bits) + bits top 0

let hash t = Hashtbl.hash t
let pp ppf t = Format.pp_print_string ppf (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) a b = lt b a
  let ( >= ) a b = leq b a
  let ( ~- ) = neg
end

module Internal = struct
  let is_small t =
    match t with
    | Small _ -> true
    | Big _ -> false

  let karatsuba_threshold = kara_threshold

  let mul_schoolbook a b =
    let sa, ma = sg_mag a and sb, mb = sg_mag b in
    if sa = 0 || sb = 0 then Small 0 else make_big (sa * sb) (mul_mag_school ma mb)
end
