(* Factorials are cached in a growable table; binomials are derived from the
   factorial cache rather than a Pascal triangle, which keeps memory linear. *)

let fact_cache = ref [| Bigint.one |]

(* The cache is grown copy-on-write under [lock] (domain-safe for the
   [--jobs] fan-out); the fast path reads the current array without the
   lock, which is safe because a published cache array is never mutated
   again — growth installs a fresh, fully initialised array. *)
let lock = Mutex.create ()

let factorial n =
  if n < 0 then invalid_arg "Combi.factorial: negative";
  let cache = !fact_cache in
  if n < Array.length cache then cache.(n)
  else begin
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
         let cache = !fact_cache in
         if n < Array.length cache then cache.(n)
         else begin
           let old = Array.length cache in
           let cache' = Array.make (n + 1) Bigint.one in
           Array.blit cache 0 cache' 0 old;
           for i = old to n do
             cache'.(i) <- Bigint.mul cache'.(i - 1) (Bigint.of_int i)
           done;
           fact_cache := cache';
           cache'.(n)
         end)
  end

let binomial n k =
  if n < 0 then invalid_arg "Combi.binomial: negative n";
  if k < 0 || k > n then Bigint.zero
  else
    Bigint.div (factorial n) (Bigint.mul (factorial k) (factorial (n - k)))

let shapley_coeff ~n k =
  if k < 0 || k > n - 1 then invalid_arg "Combi.shapley_coeff: k out of range";
  Rat.make (Bigint.mul (factorial k) (factorial (n - k - 1))) (factorial n)

let falling n k =
  let rec go acc i =
    if i >= k then acc
    else go (Bigint.mul acc (Bigint.of_int (n - i))) (i + 1)
  in
  if k <= 0 then Bigint.one else go Bigint.one 0

let pow2 n =
  if n < 0 then invalid_arg "Combi.pow2: negative";
  Bigint.pow Bigint.two n
