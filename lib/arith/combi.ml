(* Factorials are cached in a growable table; binomials are derived from the
   factorial cache rather than a Pascal triangle, which keeps memory linear. *)

let fact_cache = ref [| Bigint.one |]

(* The cache is grown copy-on-write under [lock] (domain-safe for the
   [--jobs] fan-out); the fast path reads the current array without the
   lock, which is safe because a published cache array is never mutated
   again — growth installs a fresh, fully initialised array. *)
let lock = Mutex.create ()

let factorial n =
  if n < 0 then invalid_arg "Combi.factorial: negative";
  let cache = !fact_cache in
  if n < Array.length cache then cache.(n)
  else begin
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
         let cache = !fact_cache in
         if n < Array.length cache then cache.(n)
         else begin
           let old = Array.length cache in
           let cache' = Array.make (n + 1) Bigint.one in
           Array.blit cache 0 cache' 0 old;
           for i = old to n do
             cache'.(i) <- Bigint.mul cache'.(i - 1) (Bigint.of_int i)
           done;
           fact_cache := cache';
           cache'.(n)
         end)
  end

let binomial n k =
  if n < 0 then invalid_arg "Combi.binomial: negative n";
  if k < 0 || k > n then Bigint.zero
  else
    Bigint.div (factorial n) (Bigint.mul (factorial k) (factorial (n - k)))

(* The direct Shapley evaluators request all n coefficients for every
   variable — O(n^2) constructions per query, each with a big gcd — so whole
   rows are cached copy-on-write like the factorials (an empty row is the
   "not yet computed" sentinel; real rows have length n >= 1). *)
let shapley_rows : Rat.t array array ref = ref [||]
let shapley_lock = Mutex.create ()

let shapley_row n =
  let rows = !shapley_rows in
  if n < Array.length rows && Array.length rows.(n) > 0 then rows.(n)
  else begin
    Mutex.lock shapley_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shapley_lock)
      (fun () ->
        let rows = !shapley_rows in
        if n < Array.length rows && Array.length rows.(n) > 0 then rows.(n)
        else begin
          let row =
            Array.init n (fun k ->
                Rat.make
                  (Bigint.mul (factorial k) (factorial (n - k - 1)))
                  (factorial n))
          in
          let have = Array.length rows in
          let rows' =
            Array.init
              (Stdlib.max have (n + 1))
              (fun i -> if i < have then rows.(i) else [||])
          in
          rows'.(n) <- row;
          shapley_rows := rows';
          row
        end)
  end

let shapley_coeff ~n k =
  if k < 0 || k > n - 1 then invalid_arg "Combi.shapley_coeff: k out of range";
  (shapley_row n).(k)

let falling n k =
  let rec go acc i =
    if i >= k then acc
    else go (Bigint.mul acc (Bigint.of_int (n - i))) (i + 1)
  in
  if k <= 0 then Bigint.one else go Bigint.one 0

let pow2 n =
  if n < 0 then invalid_arg "Combi.pow2: negative";
  Bigint.pow Bigint.two n
