(** Query-answer explanation reports.

    The user-facing end of the database application: compute every
    endogenous tuple's Shapley value for a Boolean query (via
    {!Dichotomy}) and package the result as a ranked, printable report —
    the "explanations for query answers" use the paper's introduction
    motivates.  Used by the [shapmc lineage] CLI command. *)

type entry = {
  lvar : int;  (** the tuple's lineage variable *)
  relation : string;
  tuple : Value.t array;
  value : Rat.t;  (** the tuple's Shapley value *)
}

type report = {
  query : Cq.t;
  answer : bool;  (** [Q(D)] with all endogenous tuples present *)
  solver : Dichotomy.solver;
  entries : entry list;  (** sorted by decreasing Shapley value *)
}

(** [explain db q] builds the full report.  With [cache], the Shapley
    computation goes through {!Dichotomy.shapley_cached} — identical
    values, amortized across repeated invocations. *)
val explain : ?cache:Cache.t -> Database.t -> Cq.t -> report

(** [top_k report k] is the [k] highest-valued entries. *)
val top_k : report -> int -> entry list

(** [total report] is [Σ values] — equals [F(1) − F(0)] by Prop. 5, i.e.
    1 when the query is true on the full database and 0 otherwise (for
    positive queries). *)
val total : report -> Rat.t

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> report -> unit
