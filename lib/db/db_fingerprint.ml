module Fp = Shapmc_cache.Fingerprint

let relation db name =
  let r = List.fold_left Fp.add_string Fp.empty [ "rel"; name ] in
  let r =
    Fp.add_int r
      (match Database.kind_of db name with
       | Database.Endogenous -> 1
       | Database.Exogenous -> 0)
  in
  let r = Fp.add_int r (Database.arity_of db name) in
  Fp.to_hex
    (List.fold_left
       (fun acc (st : Database.stored) ->
         let acc =
           Array.fold_left
             (fun acc v -> Fp.add_string acc (Value.to_string v))
             acc st.Database.values
         in
         Fp.add_int acc (Option.value ~default:(-1) st.Database.lvar))
       r (Database.tuples db name))

let query q = Fp.digest [ "cq"; Cq.to_string q ]

let mentioned q =
  List.sort_uniq compare
    (List.map (fun (a : Cq.atom) -> a.Cq.rel) q.Cq.atoms)

let lineage_key db q =
  Fp.digest
    ("lineage" :: query q
    :: List.concat_map (fun r -> [ r; relation db r ]) (mentioned q))

let result_key db q =
  let endogenous =
    List.filter
      (fun r -> Database.kind_of db r = Database.Endogenous)
      (Database.relation_names db)
  in
  Fp.digest
    ("result" :: lineage_key db q
    :: List.concat_map (fun r -> [ r; relation db r ]) endogenous)

let relation_tag db r = Printf.sprintf "db%d/rel/%s" (Database.id db) r

let db_tag db = Printf.sprintf "db%d" (Database.id db)
