type kind = Endogenous | Exogenous
type stored = { values : Value.t array; lvar : int option }

type relation = {
  kind : kind;
  arity : int;
  mutable rows : stored list; (* reverse insertion order *)
}

type t = {
  mutable rels : (string * relation) list; (* reverse declaration order *)
  mutable next_var : int;
  var_index : (int, string * Value.t array) Hashtbl.t;
  id : int;  (* process-unique instance identity (invalidation tags) *)
}

let next_id = Atomic.make 0

let create () =
  { rels = [];
    next_var = 1;
    var_index = Hashtbl.create 64;
    id = Atomic.fetch_and_add next_id 1 }

let find db name =
  match List.assoc_opt name db.rels with
  | Some r -> r
  | None -> raise Not_found

let declare db name ~kind ~arity =
  if arity < 0 then invalid_arg "Database.declare: negative arity";
  if List.mem_assoc name db.rels then
    invalid_arg ("Database.declare: duplicate relation " ^ name);
  db.rels <- (name, { kind; arity; rows = [] }) :: db.rels

let check_tuple r name values =
  if Array.length values <> r.arity then
    invalid_arg ("Database: arity mismatch for " ^ name);
  if List.exists (fun s -> s.values = values) r.rows then
    invalid_arg ("Database: duplicate tuple in " ^ name)

let insert db name values =
  let r =
    try find db name
    with Not_found -> invalid_arg ("Database.insert: unknown relation " ^ name)
  in
  check_tuple r name values;
  let lvar =
    match r.kind with
    | Exogenous -> None
    | Endogenous ->
      let v = db.next_var in
      db.next_var <- v + 1;
      Hashtbl.replace db.var_index v (name, values);
      Some v
  in
  r.rows <- { values; lvar } :: r.rows;
  lvar

let insert_with_var db name values ~lvar =
  let r =
    try find db name
    with Not_found ->
      invalid_arg ("Database.insert_with_var: unknown relation " ^ name)
  in
  if r.kind <> Endogenous then
    invalid_arg "Database.insert_with_var: relation is exogenous";
  check_tuple r name values;
  if Hashtbl.mem db.var_index lvar then
    invalid_arg "Database.insert_with_var: lineage variable already in use";
  Hashtbl.replace db.var_index lvar (name, values);
  db.next_var <- Stdlib.max db.next_var (lvar + 1);
  r.rows <- { values; lvar = Some lvar } :: r.rows

let remove db name values =
  let r =
    try find db name
    with Not_found -> invalid_arg ("Database.remove: unknown relation " ^ name)
  in
  match List.find_opt (fun s -> s.values = values) r.rows with
  | None -> false
  | Some s ->
    r.rows <- List.filter (fun s' -> s' != s) r.rows;
    (match s.lvar with
     | Some v -> Hashtbl.remove db.var_index v
     | None -> ());
    true

let kind_of db name = (find db name).kind
let arity_of db name = (find db name).arity
let relation_names db = List.rev_map fst db.rels
let tuples db name = List.rev (find db name).rows
let mem db name values = List.exists (fun s -> s.values = values) (find db name).rows

let active_domain db =
  let module Vs = Set.Make (struct
      type t = Value.t

      let compare = Value.compare
    end)
  in
  let acc = ref Vs.empty in
  List.iter
    (fun (_, r) ->
       List.iter (fun s -> Array.iter (fun v -> acc := Vs.add v !acc) s.values) r.rows)
    db.rels;
  Vs.elements !acc

let lineage_vars db =
  List.fold_left
    (fun acc (_, r) ->
       List.fold_left
         (fun acc s ->
            match s.lvar with None -> acc | Some v -> Vset.add v acc)
         acc r.rows)
    Vset.empty db.rels

let tuple_of_var db v = Hashtbl.find db.var_index v

let copy db =
  {
    rels = List.map (fun (n, r) -> (n, { r with rows = r.rows })) db.rels;
    next_var = db.next_var;
    var_index = Hashtbl.copy db.var_index;
    id = Atomic.fetch_and_add next_id 1;
  }

let id db = db.id

let pp ppf db =
  List.iter
    (fun name ->
       let r = find db name in
       Format.fprintf ppf "%s%s/%d:@\n" name
         (match r.kind with Endogenous -> "^n" | Exogenous -> "^x")
         r.arity;
       List.iter
         (fun s ->
            Format.fprintf ppf "  (%a)%s@\n"
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                 Value.pp)
              (Array.to_list s.values)
              (match s.lvar with
               | Some v -> Printf.sprintf "  <- x%d" v
               | None -> ""))
         (tuples db name))
    (relation_names db)
