(** Cache-key derivation for (query, database) pairs.

    The serving cache ({!Shapmc_cache.Cache}) is keyed on content, not
    identity, so equal workloads share entries and any mutation is an
    automatic miss.  Two keys matter, because the two cached artifacts
    depend on different slices of the database:

    - {!lineage_key} — what the compiled circuit depends on: the query
      text plus the content of exactly the relations the query mentions.
      Inserting into any {e other} relation leaves it unchanged, which
      is what "recompile only affected lineage" means.
    - {!result_key} — what the Shapley values additionally depend on:
      the universe of lineage variables spans {e every} endogenous
      relation (a fresh endogenous fact is a new player, value 0 for
      unrelated queries, and must appear in a full answer), so the
      result key folds in every endogenous relation's content.

    Invalidation tags are scoped by {!Database.id} — content keys make
    stale entries unreachable on their own; the tags let an explicit
    {!Dichotomy.invalidate} reclaim them eagerly. *)

(** Content fingerprint (hex) of one relation: kind, arity, tuples and
    their lineage variables, in insertion order. *)
val relation : Database.t -> string -> string

(** Fingerprint (hex) of the query text. *)
val query : Cq.t -> string

(** Relation names the query mentions, sorted and deduplicated. *)
val mentioned : Cq.t -> string list

(** Key of the compiled lineage circuit: query + mentioned relations. *)
val lineage_key : Database.t -> Cq.t -> string

(** Key of a full Shapley answer: {!lineage_key} + every endogenous
    relation (the player universe). *)
val result_key : Database.t -> Cq.t -> string

(** [relation_tag db r] — tag carried by every cache entry whose
    lineage mentions relation [r] of this database instance. *)
val relation_tag : Database.t -> string -> string

(** [db_tag db] — tag carried by every cached {e result} of this
    database instance (any endogenous mutation perturbs the universe). *)
val db_tag : Database.t -> string
