type classification =
  | Hierarchical
  | Non_hierarchical of string * string
  | Has_self_joins
  | Has_negation

type solver = Safe_plan_circuit | Compiled_dnf

let classify q =
  if not (Cq.is_positive q) then Has_negation
  else if not (Cq.is_self_join_free q) then Has_self_joins
  else begin
    match Cq.witness_non_hierarchical q with
    | None -> Hierarchical
    | Some (x, y) -> Non_hierarchical (x, y)
  end

let compiled_circuit db q =
  let f = Lineage.lineage_formula db q in
  Compile.compile f

let shapley db q =
  let universe = Vset.elements (Database.lineage_vars db) in
  match classify q with
  | Hierarchical ->
    (Circuit_shapley.shap_direct ~vars:universe (Safe_plan.lineage_circuit db q),
     Safe_plan_circuit)
  | Non_hierarchical _ | Has_self_joins | Has_negation ->
    (Circuit_shapley.shap_direct ~vars:universe (compiled_circuit db q),
     Compiled_dnf)

(* Solver round-trips through the cache as an opaque string tag (the
   cache layer knows nothing of this module's types). *)
let solver_tag = function
  | Safe_plan_circuit -> "safe-plan"
  | Compiled_dnf -> "compiled-dnf"

let solver_of_tag = function
  | "safe-plan" -> Safe_plan_circuit
  | "compiled-dnf" -> Compiled_dnf
  | s -> invalid_arg ("Dichotomy: unknown cached solver tag " ^ s)

let shapley_cached ?on_miss ~cache db q =
  let key = Db_fingerprint.result_key db q in
  let mentioned = Db_fingerprint.mentioned q in
  let ctags = List.map (Db_fingerprint.relation_tag db) mentioned in
  let rtags = Db_fingerprint.db_tag db :: ctags in
  let solve () =
    let run () =
      let universe = Vset.elements (Database.lineage_vars db) in
      let lkey = Db_fingerprint.lineage_key db q in
      (* Tier 1: the compiled circuit depends only on the mentioned
         relations, so it survives (and keeps hitting) across mutations
         of unrelated relations that still change the result key. *)
      let compile suffix mk =
        Cache.circuit cache ~key:(lkey ^ suffix) ~tags:ctags (fun () ->
            Obs.call ~oracle:"cache.compile" ~n:(List.length universe)
              ~attrs:[ ("query", Trace.Str (Cq.to_string q)) ]
              mk)
      in
      match classify q with
      | Hierarchical ->
        let g = compile "/safe" (fun () -> Safe_plan.lineage_circuit db q) in
        (Circuit_shapley.shap_direct_cached ~cache ~tags:ctags ~vars:universe g,
         Safe_plan_circuit)
      | Non_hierarchical _ | Has_self_joins | Has_negation ->
        let g = compile "/dnf" (fun () -> compiled_circuit db q) in
        (Circuit_shapley.shap_direct_cached ~cache ~tags:ctags ~vars:universe g,
         Compiled_dnf)
    in
    let values, s =
      match on_miss with None -> run () | Some wrap -> wrap run
    in
    (values, solver_tag s)
  in
  let values, tag = Cache.shapley_all cache ~key ~tags:rtags solve in
  (values, solver_of_tag tag)

let invalidate ~cache db rel =
  let dropped = Cache.invalidate_tag cache (Db_fingerprint.relation_tag db rel) in
  (* An endogenous mutation changes the player universe, so every cached
     full answer of this database is stale — circuits and count vectors
     of untouched relations stay valid. *)
  match Database.kind_of db rel with
  | Database.Endogenous ->
    dropped + Cache.invalidate_tag cache (Db_fingerprint.db_tag db)
  | Database.Exogenous -> dropped

let shapley_brute db q =
  let universe = Vset.elements (Database.lineage_vars db) in
  Naive.shap_subsets ~vars:universe (Lineage.lineage_formula db q)

let count_models db q =
  let universe = Vset.elements (Database.lineage_vars db) in
  match classify q with
  | Hierarchical ->
    (Count.count ~vars:universe (Safe_plan.lineage_circuit db q),
     Safe_plan_circuit)
  | Non_hierarchical _ | Has_self_joins | Has_negation ->
    (Count.count ~vars:universe (compiled_circuit db q), Compiled_dnf)
