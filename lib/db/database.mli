(** Databases with endogenous and exogenous relations (Section 5.1).

    Endogenous tuples are the players: each carries a distinct Boolean
    lineage variable [v(t)]; exogenous tuples are facts taken for granted
    and contribute no variable.  A database is a mutable builder — create,
    declare relations, insert tuples — plus read-only accessors used by
    lineage construction, stretching and the safe-plan evaluator. *)

type kind =
  | Endogenous
  | Exogenous

type t

(** One stored tuple: its values and, for endogenous relations, its
    lineage variable. *)
type stored = { values : Value.t array; lvar : int option }

val create : unit -> t

(** [declare db name ~kind ~arity] declares a fresh relation.
    @raise Invalid_argument if [name] is already declared or [arity < 0]. *)
val declare : t -> string -> kind:kind -> arity:int -> unit

(** [insert db name values] inserts a tuple, assigning the next lineage
    variable when the relation is endogenous; returns that variable.
    Duplicate tuples are rejected (set semantics).
    @raise Invalid_argument on arity mismatch, unknown relation or
    duplicate. *)
val insert : t -> string -> Value.t array -> int option

(** [insert_with_var db name values ~lvar] inserts an endogenous tuple
    with an explicit lineage variable (used by the Appendix B database
    transformations, which must preserve variable identity).
    @raise Invalid_argument if [lvar] is already used. *)
val insert_with_var : t -> string -> Value.t array -> lvar:int -> unit

(** [remove db name values] deletes the tuple if present, releasing its
    lineage variable; [true] iff it was there.  The incremental half of
    the serving cache: a removal (like an insert) changes the relation's
    content fingerprint, and [Dichotomy.invalidate] drops the affected
    cache entries.
    @raise Invalid_argument on unknown relation. *)
val remove : t -> string -> Value.t array -> bool

(** [id db] is a process-unique identity for this database {e instance}
    ([copy] gets a fresh one).  Cache {e keys} are content fingerprints;
    the id only scopes invalidation tags, so dropping "relation R of db
    7" cannot touch entries of an unrelated database that happens to
    share a relation name. *)
val id : t -> int

(** [kind_of db name] / [arity_of db name].
    @raise Not_found for unknown relations. *)
val kind_of : t -> string -> kind

val arity_of : t -> string -> int

(** [relation_names db] in declaration order. *)
val relation_names : t -> string list

(** [tuples db name] in insertion order. *)
val tuples : t -> string -> stored list

(** [mem db name values] tests tuple presence. *)
val mem : t -> string -> Value.t array -> bool

(** [active_domain db] is the set (sorted, deduplicated) of all values
    occurring anywhere. *)
val active_domain : t -> Value.t list

(** [lineage_vars db] is the set of all lineage variables, i.e. the
    variable universe of any lineage over [db]. *)
val lineage_vars : t -> Vset.t

(** [tuple_of_var db v] retrieves the endogenous tuple carrying variable
    [v].  @raise Not_found if no such tuple. *)
val tuple_of_var : t -> int -> string * Value.t array

(** [copy db] is an independent deep copy (same lineage variables). *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
