(** The dichotomy solver (Theorem 5.1).

    Classifies a self-join-free CQ and dispatches Shapley computation:
    hierarchical queries go through the polynomial safe-plan circuit
    (tractable side); non-hierarchical ones fall back to compiling the
    lineage DNF with the general d-DNNF compiler — correct on every input
    but exponential in the worst case, as Theorem 5.1's hardness side says
    any correct algorithm must be (unless FP = #P). *)

type classification =
  | Hierarchical  (** Shapley computation in FP *)
  | Non_hierarchical of string * string
      (** witness pair of variables violating the hierarchy condition *)
  | Has_self_joins  (** outside the dichotomy's scope *)
  | Has_negation
      (** negated atoms: outside the Theorem 5.1 dichotomy (cf. Reshef et
          al. [29]); solved by compilation *)

type solver =
  | Safe_plan_circuit
  | Compiled_dnf

val classify : Cq.t -> classification

(** [shapley db q] computes the Shapley value of every endogenous tuple
    (keyed by lineage variable), reporting which solver ran. *)
val shapley : Database.t -> Cq.t -> (int * Rat.t) list * solver

(** [shapley_cached ~cache db q] is {!shapley} routed through the
    serving cache: the full answer lives in the shapley tier under
    {!Db_fingerprint.result_key}, the compiled circuit in the circuit
    tier under {!Db_fingerprint.lineage_key} (so mutations of unrelated
    relations never force a recompile), and every stratified count
    vector in the counts tier.  [on_miss wrap] wraps the actual solve on
    a result-tier miss — servers use it to ledger the solve as an oracle
    call, so a warm request is observably oracle-free.  Cache fills are
    ledgered as [cache.compile] / [cache.kcount].  Answers are
    bit-identical to {!shapley} on every input. *)
val shapley_cached :
  ?on_miss:
    ((unit -> (int * Rat.t) list * solver) -> (int * Rat.t) list * solver) ->
  cache:Cache.t -> Database.t -> Cq.t -> (int * Rat.t) list * solver

(** [invalidate ~cache db rel] — the fact insert/delete hook: drops every
    cached entry whose lineage mentions [rel] of this database and, when
    [rel] is endogenous (the player universe changed), every cached full
    answer of this database.  Returns the number of entries dropped.
    Content keys already make stale entries unreachable; this reclaims
    them eagerly. *)
val invalidate : cache:Cache.t -> Database.t -> string -> int

(** [shapley_brute db q] is the exponential Eq. (2) reference on the
    lineage, for cross-checking (capped at 26 tuples). *)
val shapley_brute : Database.t -> Cq.t -> (int * Rat.t) list

(** [count_models db q] is [#F_{Q,D}] over all endogenous tuples, via the
    same dispatch. *)
val count_models : Database.t -> Cq.t -> Bigint.t * solver
