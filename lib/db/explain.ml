type entry = {
  lvar : int;
  relation : string;
  tuple : Value.t array;
  value : Rat.t;
}

type report = {
  query : Cq.t;
  answer : bool;
  solver : Dichotomy.solver;
  entries : entry list;
}

let explain ?cache db q =
  let shap, solver =
    match cache with
    | None -> Dichotomy.shapley db q
    | Some cache -> Dichotomy.shapley_cached ~cache db q
  in
  let entries =
    shap
    |> List.map (fun (lvar, value) ->
        let relation, tuple = Database.tuple_of_var db lvar in
        { lvar; relation; tuple; value })
    |> List.sort (fun a b -> Rat.compare b.value a.value)
  in
  { query = q; answer = Lineage.boolean_answer db q; solver; entries }

let top_k report k = List.filteri (fun i _ -> i < k) report.entries

let total report =
  List.fold_left (fun acc e -> Rat.add acc e.value) Rat.zero report.entries

let pp_entry ppf e =
  Format.fprintf ppf "%s(%s)  %s (~ %.6f)" e.relation
    (String.concat ", " (List.map Value.to_string (Array.to_list e.tuple)))
    (Rat.to_string e.value) (Rat.to_float e.value)

let pp ppf report =
  Format.fprintf ppf "query: %a@\n" Cq.pp report.query;
  Format.fprintf ppf "answer: %b@\n" report.answer;
  Format.fprintf ppf "solver: %s@\n"
    (match report.solver with
     | Dichotomy.Safe_plan_circuit -> "safe-plan circuit (polynomial)"
     | Dichotomy.Compiled_dnf -> "compiled lineage (exponential worst case)");
  Format.fprintf ppf "tuple contributions, most influential first:@\n";
  List.iter (fun e -> Format.fprintf ppf "  %a@\n" pp_entry e) report.entries;
  Format.fprintf ppf "  sum = %s (Prop. 5)@\n" (Rat.to_string (total report))
