type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type route = {
  meth : Http.meth;
  path : string;
  handler : Http.request -> response;
}

let route meth path handler = { meth; path; handler }

(* Json_codec depends on this module for [response], so the error
   bodies here are assembled directly on Tiny_json. *)
let error_body status message =
  Tiny_json.to_string
    (Tiny_json.Obj
       [ ("error",
          Tiny_json.Obj
            [ ("code", Tiny_json.Int status);
              ("message", Tiny_json.Str message) ]) ])
  ^ "\n"

let error_response ?(headers = []) status message =
  { status;
    headers = ("Content-Type", "application/json") :: headers;
    body = error_body status message }

let dispatch routes (req : Http.request) =
  let path = req.Http.path in
  match List.filter (fun r -> r.path = path) routes with
  | [] -> ("unmatched", error_response 404 ("no such resource: " ^ path))
  | candidates -> (
      match List.find_opt (fun r -> r.meth = req.Http.meth) candidates with
      | None ->
        let allow =
          String.concat ", "
            (List.map (fun r -> Http.meth_to_string r.meth) candidates)
        in
        ( "unmatched",
          error_response
            ~headers:[ ("Allow", allow) ]
            405
            (Printf.sprintf "method %s not allowed on %s (allow: %s)"
               (Http.meth_to_string req.Http.meth)
               path allow) )
      | Some r -> (
          try (r.path, r.handler req)
          with e ->
            Printf.eprintf "shapmc serve: handler %s raised: %s\n%!" path
              (Printexc.to_string e);
            (r.path, error_response 500 "internal server error")))
