type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

(* Handlers uniformly receive the bound path parameters; [route] hides
   them for the fixed-path common case. *)
type route = {
  meth : Http.meth;
  path : string;
  handler : (string * string) list -> Http.request -> response;
}

let route meth path handler =
  { meth; path; handler = (fun _params req -> handler req) }

let route_params meth path handler = { meth; path; handler }

(* Json_codec depends on this module for [response], so the error
   bodies here are assembled directly on Tiny_json. *)
let error_body status message =
  Tiny_json.to_string
    (Tiny_json.Obj
       [ ("error",
          Tiny_json.Obj
            [ ("code", Tiny_json.Int status);
              ("message", Tiny_json.Str message) ]) ])
  ^ "\n"

let error_response ?(headers = []) status message =
  { status;
    headers = ("Content-Type", "application/json") :: headers;
    body = error_body status message }

(* [match_path ~pattern path]: segment-wise match; a [:name] pattern
   segment binds any single non-empty segment.  Fixed patterns take the
   fast exact-equality path. *)
let match_path ~pattern path =
  if not (String.contains pattern ':') then
    if String.equal pattern path then Some [] else None
  else
    let rec go acc ps ss =
      match (ps, ss) with
      | [], [] -> Some (List.rev acc)
      | p :: ps, s :: ss when String.length p > 1 && p.[0] = ':' ->
        if s = "" then None
        else go ((String.sub p 1 (String.length p - 1), s) :: acc) ps ss
      | p :: ps, s :: ss when String.equal p s -> go acc ps ss
      | _ -> None
    in
    go [] (String.split_on_char '/' pattern) (String.split_on_char '/' path)

let dispatch routes (req : Http.request) =
  let path = req.Http.path in
  let candidates =
    List.filter_map
      (fun r ->
        match match_path ~pattern:r.path path with
        | Some params -> Some (r, params)
        | None -> None)
      routes
  in
  (* A fixed route shadows a parameterized one matching the same path,
     regardless of registration order. *)
  let candidates =
    List.stable_sort
      (fun (a, _) (b, _) ->
        compare (String.contains a.path ':') (String.contains b.path ':'))
      candidates
  in
  match candidates with
  | [] -> ("unmatched", error_response 404 ("no such resource: " ^ path))
  | _ -> (
      match
        List.find_opt (fun (r, _) -> r.meth = req.Http.meth) candidates
      with
      | None ->
        let allow =
          String.concat ", "
            (List.map (fun (r, _) -> Http.meth_to_string r.meth) candidates)
        in
        ( "unmatched",
          error_response
            ~headers:[ ("Allow", allow) ]
            405
            (Printf.sprintf "method %s not allowed on %s (allow: %s)"
               (Http.meth_to_string req.Http.meth)
               path allow) )
      | Some (r, params) -> (
          (* The metric/log label is the PATTERN, not the concrete path:
             route label cardinality stays bounded however many ids flow
             through a parameterized route. *)
          try (r.path, r.handler params req)
          with e ->
            Printf.eprintf "shapmc serve: handler %s raised: %s\n%!" path
              (Printexc.to_string e);
            (r.path, error_response 500 "internal server error")))
