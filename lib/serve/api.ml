module J = Tiny_json

type entry = {
  name : string;
  db : Database.t;
  query : Cq.t;
  facts : (int * string * Value.t array) array;
}

(* Answers are amortized by the serving cache (ROADMAP item 2): the
   compiled circuit, the stratified count vectors and the per-fact
   rationals are content-keyed in a shared {!Shapmc_cache.Cache.t}, and
   concurrent misses of one query single-flight — the old per-entry
   memo held its mutex across the whole solve, serializing unrelated
   requests; the cache's keyed flights do not. *)
type t = { list : entry list; cache : Cache.t option; created : float }

(* Service version reported by /healthz; tracks the PR sequence. *)
let version = "0.9.0"

let facts_of db =
  let all =
    List.concat_map
      (fun rel ->
        List.filter_map
          (fun (st : Database.stored) ->
            match st.Database.lvar with
            | Some v -> Some (v, rel, st.Database.values)
            | None -> None)
          (Database.tuples db rel))
      (Database.relation_names db)
  in
  let arr = Array.of_list all in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) arr;
  arr

let of_pairs ?cache ?(caching = true) pairs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Api.of_pairs: duplicate query name " ^ name);
      Hashtbl.add seen name ())
    pairs;
  let cache =
    if not caching then None
    else Some (match cache with Some c -> c | None -> Cache.create ())
  in
  { list =
      List.map
        (fun (name, (db, query)) -> { name; db; query; facts = facts_of db })
        pairs;
    cache;
    created = Unix.gettimeofday () }

let load_files ?cache ?caching files =
  of_pairs ?cache ?caching
    (List.map (fun (name, path) -> (name, Db_parser.parse_file path)) files)

let entries t = t.list

let find t name = List.find_opt (fun e -> e.name = name) t.list

let cache t = t.cache

(* The cache miss (or uncached solve) is this layer's oracle
   consultation: the full Shapley solve.  Ledger it so per-request
   scopes, the access log and /metrics attribute solver time to the
   request that paid for it — cache hits make zero ledger calls, so a
   warm request's profile shows [oracle_calls = 0]. *)
let ledgered_solve e k =
  Obs.call ~oracle:"api.shapley_all"
    ~n:(Array.length e.facts)
    ~attrs:[ ("query", Trace.Str e.name) ]
    (fun () -> Obs.with_span "api.solve" k)

let shapley_all t entry =
  match find t entry.name with
  | None -> invalid_arg ("Api.shapley_all: unknown entry " ^ entry.name)
  | Some e -> (
      match t.cache with
      | None -> ledgered_solve e (fun () -> Dichotomy.shapley e.db e.query)
      | Some cache ->
        Dichotomy.shapley_cached ~cache
          ~on_miss:(fun run -> ledgered_solve e run)
          e.db e.query)

(* ------------------------------------------------------------------ *)
(* Cursors: "f" + zero-padded decimal, so token order IS fact order.   *)

let cursor_width = 12

let cursor_of_fact id = Printf.sprintf "f%0*d" cursor_width id

let fact_of_cursor s =
  if
    String.length s = cursor_width + 1
    && s.[0] = 'f'
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 cursor_width)
  then int_of_string_opt (String.sub s 1 cursor_width)
  else None

let default_limit = 100

let max_limit = 1000

(* Shared pagination: [facts] sorted ascending; a page is the first
   [limit] facts strictly after the cursor's id. *)
type 'e page_result = ('e, Router.response) result

let paginate ~cursor ~limit (facts : (int * 'a * 'b) array) :
    ((int * 'a * 'b) list * string option) page_result =
  match
    match cursor with
    | None -> Ok (-1)
    | Some c -> (
        match fact_of_cursor c with
        | Some id -> Ok id
        | None -> Error (Json_codec.error 400 ("malformed cursor: " ^ c)))
  with
  | Error e -> Error e
  | Ok after -> (
      match limit with
      | Some l when l < 1 ->
        Error (Json_codec.error 400 "limit must be at least 1")
      | _ ->
        let limit =
          min max_limit (Option.value ~default:default_limit limit)
        in
        let n = Array.length facts in
        (* First index with id > after (facts sorted by id). *)
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          let id, _, _ = facts.(mid) in
          if id <= after then lo := mid + 1 else hi := mid
        done;
        let start = !lo in
        let len = min limit (n - start) in
        let page = Array.to_list (Array.sub facts start len) in
        let next =
          if start + len < n && len > 0 then
            let id, _, _ = facts.(start + len - 1) in
            Some (cursor_of_fact id)
          else None
        in
        Ok (page, next))

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)

let classification_string q =
  match Dichotomy.classify q with
  | Dichotomy.Hierarchical -> "hierarchical"
  | Dichotomy.Non_hierarchical _ -> "non-hierarchical"
  | Dichotomy.Has_self_joins -> "self-joins"
  | Dichotomy.Has_negation -> "negation"

let solver_string = function
  | Dichotomy.Safe_plan_circuit -> "safe-plan-circuit"
  | Dichotomy.Compiled_dnf -> "compiled-dnf"

let healthz ~started t _req =
  let uptime = Float.max 0. (Unix.gettimeofday () -. started) in
  Json_codec.json_response
    (J.Obj
       [ ("status", J.Str "ok");
         ("version", J.Str version);
         ("pid", J.Int (Unix.getpid ()));
         ("uptime_seconds", J.Float uptime);
         ("queries", J.Int (List.length t.list)) ])

let queries t _req =
  Json_codec.json_response
    (J.Obj
       [ ( "queries",
           J.List
             (List.map
                (fun e ->
                  J.Obj
                    [ ("name", J.Str e.name);
                      ("query", J.Str (Cq.to_string e.query));
                      ("facts", J.Int (Array.length e.facts));
                      ( "classification",
                        J.Str (classification_string e.query) ) ])
                t.list) ) ])

let with_entry t name k =
  match find t name with
  | None -> Json_codec.error 404 ("no such query: " ^ name)
  | Some e -> k e

let fact_json (id, rel, tuple) =
  J.Obj
    [ ("id", J.Int id);
      ("cursor", J.Str (cursor_of_fact id));
      ("relation", J.Str rel);
      ("tuple", Json_codec.tuple tuple) ]

let facts t (req : Http.request) =
  match List.assoc_opt "query" req.Http.query with
  | None -> Json_codec.error 400 "missing query parameter: query"
  | Some name ->
    with_entry t name @@ fun e ->
    let cursor = List.assoc_opt "cursor" req.Http.query in
    let limit =
      match List.assoc_opt "limit" req.Http.query with
      | None -> Ok None
      | Some raw -> (
          match int_of_string_opt raw with
          | Some l -> Ok (Some l)
          | None -> Error (Json_codec.error 400 ("malformed limit: " ^ raw)))
    in
    (match limit with
     | Error resp -> resp
     | Ok limit -> (
         match paginate ~cursor ~limit e.facts with
         | Error resp -> resp
         | Ok (page, next) ->
           Json_codec.json_response
             (J.Obj
                ([ ("query", J.Str name);
                   ("total", J.Int (Array.length e.facts));
                   ("facts", J.List (List.map fact_json page)) ]
                @
                match next with
                | Some c -> [ ("next_cursor", J.Str c) ]
                | None -> []))))

let shap_json values (id, rel, tuple) =
  match List.assoc_opt id values with
  | None -> None
  | Some v ->
    Some
      (J.Obj
         [ ("fact", J.Int id);
           ("relation", J.Str rel);
           ("tuple", Json_codec.tuple tuple);
           ("shapley", Json_codec.rat v) ])

let shapley t (req : Http.request) =
  match Json_codec.parse_body req with
  | Error resp -> resp
  | Ok body -> (
      match (Json_codec.str_field "query" body, Json_codec.int_field "fact" body)
      with
      | Error resp, _ | _, Error resp -> resp
      | Ok name, Ok fact_id ->
        with_entry t name @@ fun e ->
        (match
           Array.find_opt (fun (id, _, _) -> id = fact_id) e.facts
         with
         | None ->
           Json_codec.error 404
             (Printf.sprintf "query %s has no fact %d" name fact_id)
         | Some (id, rel, tuple) ->
           let values, solver = shapley_all t e in
           (match List.assoc_opt id values with
            | None ->
              Json_codec.error 500
                (Printf.sprintf "no Shapley value for fact %d" id)
            | Some v ->
              Json_codec.json_response
                (J.Obj
                   [ ("query", J.Str name);
                     ("fact", J.Int id);
                     ("relation", J.Str rel);
                     ("tuple", Json_codec.tuple tuple);
                     ("solver", J.Str (solver_string solver));
                     ("shapley", Json_codec.rat v) ]))))

let shapley_all_route t (req : Http.request) =
  match Json_codec.parse_body req with
  | Error resp -> resp
  | Ok body -> (
      match
        ( Json_codec.str_field "query" body,
          Json_codec.opt_str_field "cursor" body,
          Json_codec.opt_int_field "limit" body )
      with
      | Error resp, _, _ | _, Error resp, _ | _, _, Error resp -> resp
      | Ok name, Ok cursor, Ok limit ->
        with_entry t name @@ fun e ->
        (match paginate ~cursor ~limit e.facts with
         | Error resp -> resp
         | Ok (page, next) ->
           let values, solver = shapley_all t e in
           let vals = List.filter_map (shap_json values) page in
           Json_codec.json_response
             (J.Obj
                ([ ("query", J.Str name);
                   ("total", J.Int (Array.length e.facts));
                   ("solver", J.Str (solver_string solver));
                   ("values", J.List vals) ]
                @
                match next with
                | Some c -> [ ("next_cursor", J.Str c) ]
                | None -> []))))

(* ------------------------------------------------------------------ *)
(* Approximate Shapley: the sampling path for queries (or SLAs) the
   exact solver cannot serve.  Uncached by design — every request is a
   fresh estimator run whose convergence checkpoints land in the
   request's scope, so /v1/debug/requests/:id shows the CI shrinking. *)

(* Server-side clamp on the per-request permutation budget. *)
let approx_max_samples = 100_000

let approx_defaults = (0.05, 0.05) (* eps, delta *)

let shapley_approx t (req : Http.request) =
  match Json_codec.parse_body req with
  | Error resp -> resp
  | Ok body -> (
      match
        ( Json_codec.str_field "query" body,
          ( Json_codec.opt_float_field "eps" body,
            Json_codec.opt_float_field "delta" body ),
          ( Json_codec.opt_int_field "seed" body,
            Json_codec.opt_int_field "max_samples" body ),
          ( Json_codec.opt_str_field "estimator" body,
            Json_codec.opt_str_field "ci" body ) )
      with
      | Error resp, _, _, _
      | _, (Error resp, _), _, _
      | _, (_, Error resp), _, _
      | _, _, (Error resp, _), _
      | _, _, (_, Error resp), _
      | _, _, _, (Error resp, _)
      | _, _, _, (_, Error resp) ->
        resp
      | ( Ok name,
          (Ok eps, Ok delta),
          (Ok seed, Ok max_samples),
          (Ok est_name, Ok ci_name) ) -> (
        let d_eps, d_delta = approx_defaults in
        let eps = Option.value ~default:d_eps eps
        and delta = Option.value ~default:d_delta delta
        and seed = Option.value ~default:0 seed in
        let estimator =
          match est_name with
          | None -> Ok Sampling.Truncated
          | Some s -> (
              match Sampling.estimator_of_string s with
              | Some e -> Ok e
              | None -> Error ("unknown estimator: " ^ s))
        and ci =
          match ci_name with
          | None -> Ok Convergence.Bernstein
          | Some s -> (
              match Convergence.ci_of_string s with
              | Some c -> Ok c
              | None -> Error ("unknown ci: " ^ s))
        in
        match (estimator, ci) with
        | Error m, _ | _, Error m -> Json_codec.error 400 m
        | Ok estimator, Ok ci ->
          if not (eps > 0.0) then Json_codec.error 400 "eps must be positive"
          else if not (delta > 0.0 && delta < 1.0) then
            Json_codec.error 400 "delta must lie in (0, 1)"
          else if
            match max_samples with Some m -> m < 1 | None -> false
          then Json_codec.error 400 "max_samples must be at least 1"
          else
            with_entry t name @@ fun e ->
            if Array.length e.facts = 0 then
              Json_codec.error 400
                (Printf.sprintf "query %s has no endogenous facts" name)
            else begin
              let budget =
                let requested =
                  match max_samples with
                  | Some m -> m
                  | None -> (
                      (* the Hoeffding bound, when it fits the clamp *)
                      match Sampling.samples_for ~eps ~delta with
                      | m -> m
                      | exception Invalid_argument _ -> approx_max_samples)
                in
                min approx_max_samples requested
              in
              let f = Lineage.lineage_formula e.db e.query in
              let vars =
                Vset.elements
                  (Array.fold_left
                     (fun acc (id, _, _) -> Vset.add id acc)
                     (Formula.vars f) e.facts)
              in
              let report =
                Obs.call ~oracle:"api.shapley_approx"
                  ~n:(List.length vars)
                  ~attrs:[ ("query", Trace.Str e.name) ]
                  (fun () ->
                    Obs.with_span "api.approx" (fun () ->
                        Sampling.shap_estimate ~estimator ~seed ~delta ~eps
                          ~max_samples:budget ~ci ~vars f))
              in
              let by_var =
                List.fold_left
                  (fun acc (est : Sampling.estimate) ->
                    (est.Sampling.variable, est) :: acc)
                  [] report.Sampling.estimates
              in
              let values =
                Array.to_list e.facts
                |> List.filter_map (fun (id, rel, tuple) ->
                       match List.assoc_opt id by_var with
                       | None -> None
                       | Some est ->
                         Some
                           (J.Obj
                              [ ("fact", J.Int id);
                                ("relation", J.Str rel);
                                ("tuple", Json_codec.tuple tuple);
                                ("value", J.Float est.Sampling.value);
                                ( "half_width",
                                  J.Float est.Sampling.half_width ) ]))
              in
              Json_codec.json_response
                (J.Obj
                   [ ("query", J.Str name);
                     ( "estimator",
                       J.Str (Sampling.estimator_name estimator) );
                     ("ci", J.Str (Convergence.ci_name ci));
                     ("eps", J.Float eps);
                     ("delta", J.Float delta);
                     ("samples", J.Int report.Sampling.samples_used);
                     ("evals", J.Int report.Sampling.evals);
                     ("converged", J.Bool report.Sampling.converged);
                     ( "max_half_width",
                       J.Float
                         (Convergence.max_certified_half_width
                            report.Sampling.monitor) );
                     ("values", J.List values) ])
            end))

let metrics ?telemetry () _req =
  (* Refresh the rolling SLO gauges at scrape time: windows rotate
     lazily, so the exposition reflects "now", not the last request. *)
  (match telemetry with
   | Some tel -> Telemetry.set_slo_gauges tel
   | None -> ());
  { Router.status = 200;
    headers =
      [ ( "Content-Type",
          "application/openmetrics-text; version=1.0.0; charset=utf-8" ) ];
    body = Metrics.to_openmetrics () }

(* ------------------------------------------------------------------ *)
(* Debug endpoints: the last-N request profiles ring. *)

let debug_requests tel _req =
  let ps = Telemetry.profiles tel in
  Json_codec.json_response
    (J.Obj
       [ ("count", J.Int (List.length ps));
         ("recorded", J.Int (Telemetry.recorded tel));
         ("requests", J.List (List.map Telemetry.summary_json ps)) ])

let debug_request tel params (req : Http.request) =
  match List.assoc_opt "id" params with
  | None -> Json_codec.error 400 "missing request id"
  | Some id -> (
      match Telemetry.find tel id with
      | None ->
        Json_codec.error 404
          (Printf.sprintf
             "no profile for request %s (ring keeps the last %d)" id
             (List.length (Telemetry.profiles tel)))
      | Some p -> (
          match List.assoc_opt "format" req.Http.query with
          | Some "chrome" ->
            (* The request's scoped buffer through the standard trace
               exporter: one production request, straight into
               Perfetto. *)
            { Router.status = 200;
              headers = [ ("Content-Type", "application/json") ];
              body = Trace_export.chrome p.Telemetry.p_events }
          | Some other ->
            Json_codec.error 400
              ("unknown format: " ^ other ^ " (try format=chrome)")
          | None -> Json_codec.json_response (Telemetry.profile_json p)))

let routes ?telemetry t =
  let started =
    match telemetry with
    | Some tel -> Telemetry.started tel
    | None -> t.created
  in
  [ Router.route Http.GET "/healthz" (healthz ~started t);
    Router.route Http.GET "/v1/queries" (queries t);
    Router.route Http.GET "/v1/facts" (facts t);
    Router.route Http.POST "/v1/shapley" (shapley t);
    Router.route Http.POST "/v1/shapley/all" (shapley_all_route t);
    Router.route Http.POST "/v1/shapley/approx" (shapley_approx t);
    Router.route Http.GET "/metrics" (metrics ?telemetry ()) ]
  @
  match telemetry with
  | None -> []
  | Some tel ->
    [ Router.route Http.GET "/v1/debug/requests" (debug_requests tel);
      Router.route_params Http.GET "/v1/debug/requests/:id"
        (debug_request tel) ]
