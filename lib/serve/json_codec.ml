module J = Tiny_json

let content_type_json = ("Content-Type", "application/json")

let json_response ?(status = 200) ?(headers = []) json =
  { Router.status;
    headers = content_type_json :: headers;
    body = J.to_string json ^ "\n" }

let error status message =
  json_response ~status
    (J.Obj
       [ ("error",
          J.Obj [ ("code", J.Int status); ("message", J.Str message) ]) ])

(* Exact rational rendering: numerator and denominator as decimal
   strings (Shapley denominators divide n! and overflow any float or
   63-bit int long before n gets interesting), plus a float for
   consumers that only chart. *)
let rat r =
  J.Obj
    [ ("num", J.Str (Bigint.to_string (Rat.num r)));
      ("den", J.Str (Bigint.to_string (Rat.den r)));
      ("float", J.Float (Rat.to_float r)) ]

let rec value = function
  | Value.VInt i -> J.Int i
  | Value.VStr s -> J.Str s
  | Value.VPair (a, b) -> J.List [ value a; value b ]

let tuple values = J.List (Array.to_list (Array.map value values))

(* ------------------------------------------------------------------ *)
(* Request-body decoding: every failure is a ready-to-send 400.        *)

let parse_body (req : Http.request) =
  match J.parse_opt req.Http.body with
  | Some v -> Ok v
  | None -> Error (error 400 "request body is not valid JSON")

let obj_field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error (error 400 (Printf.sprintf "missing field %S" name))

let str_field name json =
  match obj_field name json with
  | Error e -> Error e
  | Ok v -> (
      match J.to_str v with
      | Some s -> Ok s
      | None -> Error (error 400 (Printf.sprintf "field %S must be a string" name)))

let int_field name json =
  match obj_field name json with
  | Error e -> Error e
  | Ok v -> (
      match J.to_int v with
      | Some i -> Ok i
      | None ->
        Error (error 400 (Printf.sprintf "field %S must be an integer" name)))

let opt_str_field name json =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match J.to_str v with
      | Some s -> Ok (Some s)
      | None -> Error (error 400 (Printf.sprintf "field %S must be a string" name)))

let opt_int_field name json =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match J.to_int v with
      | Some i -> Ok (Some i)
      | None ->
        Error (error 400 (Printf.sprintf "field %S must be an integer" name)))

let opt_float_field name json =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match J.to_float v with
      | Some f -> Ok (Some f)
      | None ->
        Error (error 400 (Printf.sprintf "field %S must be a number" name)))
