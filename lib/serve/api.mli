(** The JSON API of [shapmc serve]: a set of named (database, query)
    pairs loaded once at startup, Shapley answers amortized by the
    serving cache ({!Shapmc_cache.Cache}) — compiled circuits,
    stratified count vectors and per-fact rationals are content-keyed
    and shared across requests — and cursor-paginated fact enumeration.

    Routes:
    - [GET /healthz] — liveness: status, {!version}, pid, uptime,
      loaded-query count
    - [GET /v1/queries] — every query with its Theorem 5.1 class
    - [GET /v1/facts?query=Q&cursor=&limit=] — endogenous facts, paged
    - [POST /v1/shapley] [{query, fact}] — one fact's exact Shapley value
    - [POST /v1/shapley/all] [{query, cursor?, limit?}] — all facts, paged
    - [POST /v1/shapley/approx]
      [{query, eps?, delta?, estimator?, ci?, seed?, max_samples?}] —
      sampled Shapley values for every fact with per-fact CI half-widths
      and the samples spent; the estimator early-stops at ε and its
      convergence checkpoints land in the request profile.  Uncached:
      each call is a fresh run (the sample budget is clamped to
      {!approx_max_samples})
    - [GET /metrics] — OpenMetrics exposition of {!Metrics.default}
      (rolling SLO gauges refreshed at scrape time when a
      {!Telemetry.t} is attached)
    - [GET /v1/debug/requests] (telemetry only) — ring of recent
      request profiles, newest first
    - [GET /v1/debug/requests/:id] (telemetry only) — one request's
      full profile with its scoped events; [?format=chrome] renders
      the events through {!Trace_export.chrome} for Perfetto *)

type entry = {
  name : string;
  db : Database.t;
  query : Cq.t;
  facts : (int * string * Value.t array) array;
      (** endogenous facts as [(lineage var, relation, tuple)], sorted
          by ascending lineage variable — the pagination order *)
}

type t

(** [of_pairs [(name, (db, q)); ...]] builds a service state.
    [caching] (default [true]) turns the serving cache on; [cache]
    supplies a pre-sized (or shared) {!Shapmc_cache.Cache.t} instead of
    the default-capacity one.  With [~caching:false] every request
    re-solves from scratch.
    @raise Invalid_argument on duplicate names. *)
val of_pairs :
  ?cache:Cache.t -> ?caching:bool -> (string * (Database.t * Cq.t)) list -> t

(** [load_files [(name, path); ...]] parses each file with
    {!Db_parser.parse_file}. *)
val load_files :
  ?cache:Cache.t -> ?caching:bool -> (string * string) list -> t

val entries : t -> entry list
val find : t -> string -> entry option

(** The serving cache, when enabled (for stats epilogues and tests). *)
val cache : t -> Cache.t option

(** Amortized via {!Dichotomy.shapley_cached}: the first call per query
    content compiles the lineage and solves for every fact (concurrent
    misses of one key single-flight — the leader solves, joiners park
    and share); later calls are cache hits and make zero oracle calls.
    With [~caching:false], every call is a fresh ledgered solve. *)
val shapley_all : t -> entry -> (int * Rat.t) list * Dichotomy.solver

(** Version string reported by [/healthz]. *)
val version : string

(** [routes ?telemetry t] — attaching a {!Telemetry.t} adds the
    [/v1/debug/requests] endpoints and SLO gauge refresh on
    [/metrics], and bases the [/healthz] uptime on its start stamp. *)
val routes : ?telemetry:Telemetry.t -> t -> Router.route list

(** {1 Cursors} — opaque tokens ordered lexicographically like the
    fact ids they encode. *)

val cursor_of_fact : int -> string
val fact_of_cursor : string -> int option

(** Page size bounds: [default_limit] when the request gives none,
    [max_limit] as the clamp. *)
val default_limit : int

val max_limit : int

(** Per-request clamp on the [/v1/shapley/approx] permutation budget. *)
val approx_max_samples : int
