type meth = GET | POST | HEAD | PUT | DELETE | Other of string

let meth_to_string = function
  | GET -> "GET"
  | POST -> "POST"
  | HEAD -> "HEAD"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | Other s -> s

let meth_of_string = function
  | "GET" -> GET
  | "POST" -> POST
  | "HEAD" -> HEAD
  | "PUT" -> PUT
  | "DELETE" -> DELETE
  | s -> Other s

type request = {
  meth : meth;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

let header r name = List.assoc_opt name r.headers

let wants_keep_alive r =
  match Option.map String.lowercase_ascii (header r "connection") with
  | Some "close" -> false
  | Some v when v = "keep-alive" -> true
  | _ -> r.version = "HTTP/1.1"

(* ------------------------------------------------------------------ *)
(* Percent decoding                                                    *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let pct_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | '%' when !i + 2 < n -> (
         match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
         | Some h, Some l ->
           Buffer.add_char b (Char.chr ((h lsl 4) lor l));
           i := !i + 2
         | _ -> Buffer.add_char b '%')
     | '+' -> Buffer.add_char b ' '
     | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let split_target target =
  let path_raw, query_raw =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some q ->
      ( String.sub target 0 q,
        String.sub target (q + 1) (String.length target - q - 1) )
  in
  let query =
    if query_raw = "" then []
    else
      List.filter_map
        (fun kv ->
          if kv = "" then None
          else
            match String.index_opt kv '=' with
            | None -> Some (pct_decode kv, "")
            | Some e ->
              Some
                ( pct_decode (String.sub kv 0 e),
                  pct_decode
                    (String.sub kv (e + 1) (String.length kv - e - 1)) ))
        (String.split_on_char '&' query_raw)
  in
  (pct_decode path_raw, query)

(* ------------------------------------------------------------------ *)
(* Incremental request parser                                          *)

type outcome =
  | Incomplete
  | Request of request
  | Reject of int * string

type parser_ = {
  limits : Limits.t;
  buf : Buffer.t;  (* every byte fed so far (current request + beyond) *)
  mutable saw_eof : bool;
  mutable result : outcome;  (* cached once terminal *)
  mutable leftover_ : string;
  mutable drain_ : int;
      (* declared body bytes still on the wire when a 413 is issued *)
}

let create ~limits =
  { limits;
    buf = Buffer.create 512;
    saw_eof = false;
    result = Incomplete;
    leftover_ = "";
    drain_ = 0 }

let bytes_fed p = Buffer.length p.buf

let leftover p = p.leftover_

let drain_hint p = p.drain_

let is_tchar c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
    true
  | _ -> false

let is_token s = s <> "" && String.for_all is_tchar s

let trim_ows s =
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < !j && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  while !j > !i && (s.[!j - 1] = ' ' || s.[!j - 1] = '\t') do decr j done;
  String.sub s !i (!j - !i)

(* Find the end of the header section: the byte offset just past the
   first empty line.  Lines end at '\n', with an optional '\r' before
   it, so both CRLF and bare-LF framing (and mixtures) parse. *)
let header_section s =
  let n = String.length s in
  let rec go line_start i =
    if i >= n then None
    else if s.[i] = '\n' then begin
      let line_len =
        let l = i - line_start in
        if l > 0 && s.[i - 1] = '\r' then l - 1 else l
      in
      if line_len = 0 then Some (i + 1) else go (i + 1) (i + 1)
    end
    else go line_start (i + 1)
  in
  go 0 0

(* Split the header section (sans final empty line) into lines. *)
let section_lines s hdr_end =
  let upto = String.sub s 0 hdr_end in
  let raw = String.split_on_char '\n' upto in
  let strip l =
    let n = String.length l in
    if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
  in
  (* The section ends "...\n<empty>\n"; dropping empty trailing pieces
     leaves the request line and the header lines. *)
  List.filter (fun l -> l <> "") (List.map strip raw)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ m; target; version ] ->
    if not (is_token m) then Error "malformed method token"
    else if target = "" || target.[0] <> '/' then
      Error "request-target must start with '/'"
    else if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
      Error ("unsupported protocol version " ^ version)
    else Ok (meth_of_string m, target, version)
  | _ -> Error "malformed request line (want: METHOD TARGET VERSION)"

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> Error ("header line without ':': " ^ line)
  | Some c ->
    let name = String.sub line 0 c in
    if not (is_token name) then Error ("malformed header name: " ^ name)
    else
      let value =
        trim_ows (String.sub line (c + 1) (String.length line - c - 1))
      in
      Ok (String.lowercase_ascii name, value)

let content_length headers =
  match List.filter (fun (n, _) -> n = "content-length") headers with
  | [] -> Ok 0
  | [ (_, v) ] -> (
      match int_of_string_opt v with
      | Some n when n >= 0 && String.for_all (fun c -> c >= '0' && c <= '9') v
        ->
        Ok n
      | _ -> Error ("malformed content-length: " ^ v))
  | _ :: _ :: _ -> Error "multiple content-length headers"

(* Re-derive the outcome from the accumulated bytes.  Total: every
   malformed shape maps to [Reject]. *)
let compute p =
  let s = Buffer.contents p.buf in
  let n = String.length s in
  let max_hdr = p.limits.Limits.max_header_bytes in
  match header_section s with
  | None ->
    if n > max_hdr then
      Reject
        ( 400,
          Printf.sprintf "header section exceeds %d bytes" max_hdr )
    else if p.saw_eof then
      if n = 0 then Reject (400, "empty request")
      else Reject (400, "truncated request (connection closed mid-headers)")
    else Incomplete
  | Some hdr_end ->
    if hdr_end > max_hdr then
      Reject
        (400, Printf.sprintf "header section exceeds %d bytes" max_hdr)
    else begin
      match section_lines s hdr_end with
      | [] -> Reject (400, "empty request line")
      | req_line :: header_lines -> (
          match parse_request_line req_line with
          | Error m -> Reject (400, m)
          | Ok (meth, target, version) ->
            let rec headers acc = function
              | [] -> Ok (List.rev acc)
              | l :: rest -> (
                  match parse_header_line l with
                  | Error m -> Error m
                  | Ok kv -> headers (kv :: acc) rest)
            in
            (match headers [] header_lines with
             | Error m -> Reject (400, m)
             | Ok headers ->
               if List.mem_assoc "transfer-encoding" headers then
                 Reject (400, "transfer-encoding is not supported")
               else (
                 match content_length headers with
                 | Error m -> Reject (400, m)
                 | Ok cl ->
                   if cl > p.limits.Limits.max_body_bytes then begin
                     (* The client may still be mid-upload: remember how
                        much declared body has yet to arrive so the
                        server can linger-drain it before closing
                        (closing with unread data sends RST, which on
                        Linux discards the buffered 413 response). *)
                     p.drain_ <- max 0 (cl - (n - hdr_end));
                     Reject
                       ( 413,
                         Printf.sprintf
                           "declared body of %d bytes exceeds the %d-byte \
                            limit"
                           cl p.limits.Limits.max_body_bytes )
                   end
                   else if n < hdr_end + cl then
                     if p.saw_eof then
                       Reject
                         (400, "truncated body (connection closed early)")
                     else Incomplete
                   else begin
                     p.leftover_ <-
                       String.sub s (hdr_end + cl) (n - hdr_end - cl);
                     let path, query = split_target target in
                     Request
                       { meth;
                         target;
                         path;
                         query;
                         version;
                         headers;
                         body = String.sub s hdr_end cl }
                   end)))
    end

let refresh p =
  match p.result with
  | Incomplete -> p.result <- compute p
  | Request _ | Reject _ -> ()

let feed p bytes =
  (match p.result with
   | Incomplete when not p.saw_eof -> Buffer.add_string p.buf bytes
   | Request _ ->
     (* Pipelined bytes arriving after the request completed belong to
        the next request on this connection. *)
     p.leftover_ <- p.leftover_ ^ bytes
   | _ -> ());
  refresh p

let eof p =
  p.saw_eof <- true;
  refresh p

let poll p =
  refresh p;
  p.result

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let reason = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c when c >= 200 && c < 300 -> "OK"
  | c when c >= 400 && c < 500 -> "Client Error"
  | c when c >= 500 -> "Server Error"
  | _ -> "Unknown"

let render_response ?(headers = []) ?(keep_alive = false) ~status ~body () =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b
