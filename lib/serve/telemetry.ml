(* Serving-side observability state, one value per server process:

   - a bounded ring of the last N request profiles (id, timings, oracle
     aggregates, and the request's scoped event buffer) backing the
     [/v1/debug/requests] endpoints;
   - rolling 1m/5m SLO windows (error ratio + latency percentiles)
     whose snapshots are exported as gauges on every /metrics render;
   - the optional JSONL access log, written on every completion.

   [record] is called by the server once per answered request, after
   the response bytes are on the wire; everything here is cheap
   bookkeeping under small local locks, never on the request's critical
   path.  [now] is injectable throughout so SLO rotation is testable. *)

module J = Tiny_json

type profile = {
  p_id : string;
  p_trace_id : string;
  p_route : string;
  p_meth : string;
  p_path : string;
  p_status : int;
  p_start : float;  (* epoch seconds at request parse *)
  p_wall_seconds : float;
  p_queue_seconds : float;  (* accept-to-worker delay (first request) *)
  p_oracle_calls : int;
  p_oracle_seconds : float;
  p_bytes : int;  (* response body bytes *)
  p_jobs : int;
  p_events : Trace.event list;
  p_events_dropped : int;
}

type t = {
  ring : profile option array;  (* [||] disables the ring *)
  mutable total : int;  (* profiles ever recorded *)
  ring_lock : Mutex.t;
  slo_1m : Sliding.t;
  slo_5m : Sliding.t;
  access : Access_log.t option;
  started : float;
}

let default_ring = 64

let create ?(ring = default_ring) ?access ?now () =
  { ring = Array.make (max 0 ring) None;
    total = 0;
    ring_lock = Mutex.create ();
    slo_1m = Sliding.create ~window:60. ();
    slo_5m = Sliding.create ~window:300. ();
    access;
    started = (match now with Some n -> n | None -> Unix.gettimeofday ()) }

let started t = t.started
let access_log t = t.access

let locked t f =
  Mutex.lock t.ring_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ring_lock) f

(* ------------------------------------------------------------------ *)
(* JSON shapes.  The access-log line and the debug profile share field
   names, so one reader handles both. *)

let scalar_fields p =
  [ ("ts", J.Float p.p_start);
    ("id", J.Str p.p_id);
    ("trace", J.Str p.p_trace_id);
    ("method", J.Str p.p_meth);
    ("route", J.Str p.p_route);
    ("path", J.Str p.p_path);
    ("code", J.Int p.p_status);
    ("bytes", J.Int p.p_bytes);
    ("wall_seconds", J.Float p.p_wall_seconds);
    ("queue_seconds", J.Float p.p_queue_seconds);
    ("oracle_seconds", J.Float p.p_oracle_seconds);
    ("oracle_calls", J.Int p.p_oracle_calls);
    ("jobs", J.Int p.p_jobs) ]

let access_line p = J.Obj (scalar_fields p)

let summary_json p =
  J.Obj (scalar_fields p @ [ ("events", J.Int (List.length p.p_events)) ])

let profile_json p =
  J.Obj
    (scalar_fields p
     @ [ ("events_dropped", J.Int p.p_events_dropped);
         ("events", J.List (List.map Trace_export.event_to_json p.p_events))
       ])

(* ------------------------------------------------------------------ *)
(* Recording *)

let record ?now t p =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  (* SLO error = server fault (5xx); client errors are not SLO
     violations. *)
  let ok = p.p_status < 500 in
  Sliding.observe ~now t.slo_1m ~ok p.p_wall_seconds;
  Sliding.observe ~now t.slo_5m ~ok p.p_wall_seconds;
  locked t (fun () ->
      if Array.length t.ring > 0 then
        t.ring.(t.total mod Array.length t.ring) <- Some p;
      t.total <- t.total + 1);
  match t.access with
  | Some log -> Access_log.write log (access_line p)
  | None -> ()

(* Newest first. *)
let profiles t =
  locked t (fun () ->
      let n = Array.length t.ring in
      if n = 0 then []
      else
        let stored = min t.total n in
        List.init stored (fun i ->
            t.ring.((t.total - 1 - i + n) mod n))
        |> List.filter_map Fun.id)

let find t id =
  List.find_opt (fun p -> String.equal p.p_id id) (profiles t)

let recorded t = locked t (fun () -> t.total)

(* ------------------------------------------------------------------ *)
(* SLO gauge export *)

let set_slo_gauges ?now ?registry t =
  let set ?labels name v = Metrics.set ?registry ?labels name v in
  List.iter
    (fun (window, slo) ->
      let s = Sliding.snapshot ?now slo in
      let wl = [ ("window", window) ] in
      set ~labels:wl "http_slo_error_ratio" s.Sliding.w_error_ratio;
      set ~labels:wl "http_slo_window_requests"
        (float_of_int s.Sliding.w_requests);
      let quantile q v =
        (* An empty window has no latency; export 0 rather than NaN so
           every scrape stays parseable by strict clients. *)
        set
          ~labels:(("quantile", q) :: wl)
          "http_slo_latency_seconds"
          (if Float.is_nan v then 0. else v)
      in
      quantile "0.5" s.Sliding.w_p50;
      quantile "0.95" s.Sliding.w_p95;
      quantile "0.99" s.Sliding.w_p99)
    [ ("1m", t.slo_1m); ("5m", t.slo_5m) ]

let slo_1m t = t.slo_1m
let slo_5m t = t.slo_5m
