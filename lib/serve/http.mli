(** A minimal HTTP/1.1 message layer: an incremental, never-raising
    request parser and a response printer.  Hand-rolled in the spirit
    of [Tiny_json] — just enough protocol for the [shapmc serve]
    daemon, no external dependencies.

    The parser is a pure function of the bytes fed so far (plus an
    end-of-stream mark): feeding one byte at a time, in arbitrary
    chunks, or all at once reaches the same {!outcome}.  It never
    raises; every malformed input maps to a 4xx {!Reject}
    classification, and the {!Limits.t} byte caps are enforced exactly
    at their boundaries. *)

type meth = GET | POST | HEAD | PUT | DELETE | Other of string

val meth_to_string : meth -> string

type request = {
  meth : meth;
  target : string;  (** raw request-target as sent *)
  path : string;  (** percent-decoded path, query string removed *)
  query : (string * string) list;  (** decoded query parameters *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;
      (** names lowercased, in arrival order *)
  body : string;
}

(** First value of header [name] (give it lowercased). *)
val header : request -> string -> string option

(** Does the client want the connection kept open after this exchange?
    HTTP/1.1 defaults to yes, HTTP/1.0 to no; an explicit
    [Connection: close] / [keep-alive] header overrides. *)
val wants_keep_alive : request -> bool

(** {1 Incremental parsing} *)

type parser_

type outcome =
  | Incomplete  (** more bytes (or {!eof}) needed *)
  | Request of request
  | Reject of int * string
      (** 4xx classification: 400 malformed / header cap / truncated,
          413 declared body over the cap *)

val create : limits:Limits.t -> parser_

(** [feed p bytes] appends input.  Ignored once the outcome is
    terminal ({!Request} keeps post-request bytes as {!leftover}). *)
val feed : parser_ -> string -> unit

(** Mark end of stream: an incomplete request becomes a 400 reject. *)
val eof : parser_ -> unit

val poll : parser_ -> outcome

(** Total bytes fed so far — [0] distinguishes an idle connection
    (close silently) from a truncated request (reject). *)
val bytes_fed : parser_ -> int

(** After {!Request}: bytes that arrived beyond the request, owed to
    the next parser on this connection. *)
val leftover : parser_ -> string

(** After a 413 {!Reject}: declared body bytes the client has yet to
    send.  The server should read (and discard) up to this many bytes
    before closing so a mid-upload client sees the error response
    instead of a connection reset ("lingering close").  [0] for every
    other outcome. *)
val drain_hint : parser_ -> int

(** {1 Responses} *)

val reason : int -> string

(** [render_response ~status ~body ()] prints a full HTTP/1.1 response
    with [Content-Length] and a [Connection: keep-alive]/[close] header
    ([keep_alive] defaults to [false]).  [headers] come before the
    body verbatim; give [Content-Type] there. *)
val render_response :
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  status:int ->
  body:string ->
  unit ->
  string

(** Percent-decode a URI component; malformed escapes pass through
    literally, [+] decodes to space. *)
val pct_decode : string -> string
