(** JSON plumbing for the API: responses rendered through the
    escaping-correct {!Tiny_json.to_string} serializer, exact-rational
    encoding, and total request-body accessors whose failures are
    ready-to-send 400 responses. *)

val json_response :
  ?status:int -> ?headers:(string * string) list -> Tiny_json.t ->
  Router.response
(** Serialize with a trailing newline and [Content-Type:
    application/json]. *)

val error : int -> string -> Router.response
(** [{"error":{"code":...,"message":...}}] *)

val rat : Rat.t -> Tiny_json.t
(** [{"num":"p","den":"q","float":f}] — [num]/[den] are decimal strings
    (exact far past float range), [float] a lossy rendering. *)

val value : Value.t -> Tiny_json.t
val tuple : Value.t array -> Tiny_json.t

val parse_body :
  Http.request -> (Tiny_json.t, Router.response) result

val obj_field :
  string -> Tiny_json.t -> (Tiny_json.t, Router.response) result

val str_field : string -> Tiny_json.t -> (string, Router.response) result
val int_field : string -> Tiny_json.t -> (int, Router.response) result

val opt_str_field :
  string -> Tiny_json.t -> (string option, Router.response) result
(** Absent and [null] are [None]. *)

val opt_int_field :
  string -> Tiny_json.t -> (int option, Router.response) result

val opt_float_field :
  string -> Tiny_json.t -> (float option, Router.response) result
(** Absent and [null] are [None]; any JSON number is accepted. *)
