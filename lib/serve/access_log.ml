(* Structured JSONL access log: one Tiny_json object per line, written
   append-only under a mutex (request completions arrive on every
   worker domain), flushed per line so `shapmc tail` and crashed-
   process forensics see complete records.

   Size-based rotation: when the next line would push the file past
   [max_bytes], the current file is renamed to [path ^ ".1"] (replacing
   any previous rotation) and a fresh file is started — two files bound
   the disk footprint at ~2×[max_bytes], which is the right shape for a
   long-lived daemon with no external logrotate. *)

type t = {
  al_path : string;
  al_max_bytes : int;  (* 0 disables rotation *)
  al_lock : Mutex.t;
  mutable al_oc : out_channel;
  mutable al_bytes : int;
  mutable al_closed : bool;
}

let default_max_bytes = 64 * 1024 * 1024

let rotated_path path = path ^ ".1"

let open_channel path =
  open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path

let open_ ?(max_bytes = default_max_bytes) path =
  let oc = open_channel path in
  { al_path = path;
    al_max_bytes = max 0 max_bytes;
    al_lock = Mutex.create ();
    al_oc = oc;
    al_bytes = (try out_channel_length oc with Sys_error _ -> 0);
    al_closed = false }

let path t = t.al_path

let locked t f =
  Mutex.lock t.al_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.al_lock) f

let rotate t =
  close_out_noerr t.al_oc;
  (try Sys.rename t.al_path (rotated_path t.al_path)
   with Sys_error _ -> ());
  t.al_oc <- open_channel t.al_path;
  t.al_bytes <- 0

let write t json =
  let line = Tiny_json.to_string json ^ "\n" in
  locked t (fun () ->
      if not t.al_closed then begin
        if
          t.al_max_bytes > 0
          && t.al_bytes > 0
          && t.al_bytes + String.length line > t.al_max_bytes
        then rotate t;
        output_string t.al_oc line;
        flush t.al_oc;
        t.al_bytes <- t.al_bytes + String.length line
      end)

let close t =
  locked t (fun () ->
      if not t.al_closed then begin
        t.al_closed <- true;
        close_out_noerr t.al_oc
      end)
