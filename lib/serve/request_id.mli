(** Per-request identity: [X-Request-Id] plus W3C Trace Context
    ([traceparent]) propagation.

    {!of_request} honors a syntactically valid incoming [X-Request-Id]
    (1–64 chars of [[A-Za-z0-9._-]]) and the trace-id of a valid
    [traceparent]; anything missing or malformed is replaced by fresh
    random hex.  With neither header, the generated request id equals
    the fresh 32-hex trace id, so access-log lines, scoped events and
    distributed traces correlate by one token.  A fresh 16-hex span id
    is always minted for this server's own work. *)

type t

val of_request : Http.request -> t

(** [make ?request_id ?traceparent ()] — the header-independent core
    (testable without a parsed request). *)
val make : ?request_id:string -> ?traceparent:string -> unit -> t

val id : t -> string
val trace_id : t -> string
val span_id : t -> string

(** The client's span id from a valid incoming [traceparent]. *)
val parent_span : t -> string option

(** The outgoing header value: [00-<trace_id>-<span_id>-01]. *)
val traceparent : t -> string

(** [[("X-Request-Id", ...); ("traceparent", ...)]] — append to every
    response so clients can correlate. *)
val response_headers : t -> (string * string) list

(** Is [s] acceptable as an [X-Request-Id]? *)
val valid_id : string -> bool

(** Parse [VV-<32hex>-<16hex>-FF] (lowercase hex, ids non-zero,
    version ≠ [ff]) into [(trace_id, parent_span_id)]. *)
val parse_traceparent : string -> (string * string) option
