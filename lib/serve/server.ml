type config = {
  host : string;
  port : int;
  jobs : int;
  limits : Limits.t;
  drain_deadline : float;
  telemetry : Telemetry.t option;
  scope_cap : int;
}

let default_config =
  { host = "127.0.0.1";
    port = 8080;
    jobs = 1;
    limits = Limits.default;
    drain_deadline = 5.;
    telemetry = None;
    scope_cap = Scope.default_cap }

type t = {
  config : config;
  routes : Router.route list;
  stop_flag : bool Atomic.t;
  served : int Atomic.t;
  in_flight : int Atomic.t;
  mutable lsock : Unix.file_descr option;
  mutable bound_port : int;
  mutable exec : Pool.Exec.t option;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
}

let create ?(config = default_config) routes =
  { config;
    routes;
    stop_flag = Atomic.make false;
    served = Atomic.make 0;
    in_flight = Atomic.make 0;
    lsock = None;
    bound_port = 0;
    exec = None;
    conns = Hashtbl.create 16;
    conns_lock = Mutex.create () }

let port t = t.bound_port

let requests_served t = Atomic.get t.served

let register_conn t fd =
  Mutex.lock t.conns_lock;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.conns_lock

let unregister_conn t fd =
  Mutex.lock t.conns_lock;
  Hashtbl.remove t.conns fd;
  Mutex.unlock t.conns_lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

let start t =
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (* SO_REUSEADDR: an immediately restarted server must rebind the port
     its killed predecessor left in TIME_WAIT. *)
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try
     Unix.bind sock
       (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.config.port))
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 128;
  t.bound_port <-
    (match Unix.getsockname sock with
     | Unix.ADDR_INET (_, p) -> p
     | _ -> t.config.port);
  t.lsock <- Some sock;
  t.exec <- Some (Pool.Exec.create ~jobs:t.config.jobs)

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> ()
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

let observe_request ~route ~status ~seconds =
  let labels =
    [ ("route", route); ("code", string_of_int status) ]
  in
  Metrics.inc ~labels "http_requests";
  Metrics.observe ~labels "http_request_seconds" seconds

let set_in_flight t delta =
  let v = Atomic.fetch_and_add t.in_flight delta + delta in
  Metrics.set "http_in_flight" (float_of_int v)

(* Send the response and return the request's wall seconds (also fed
   to the telemetry profile, so log and metrics agree). *)
let send t fd ~route ~keep_alive ~t0 (resp : Router.response) =
  write_all fd
    (Http.render_response ~headers:resp.Router.headers ~keep_alive
       ~status:resp.Router.status ~body:resp.Router.body ());
  let seconds = Float.max 0. (Unix.gettimeofday () -. t0) in
  observe_request ~route ~status:resp.Router.status ~seconds;
  Atomic.incr t.served;
  seconds

(* Every answered request — including protocol-level 408/4xx rejects —
   lands in the telemetry ring, SLO windows and access log. *)
let record_profile t ~rid ~scope ~route ~meth ~path ~status ~bytes ~t0 ~wall
    ~queue =
  match t.config.telemetry with
  | None -> ()
  | Some tel ->
    Telemetry.record tel
      { Telemetry.p_id = Request_id.id rid;
        p_trace_id = Request_id.trace_id rid;
        p_route = route;
        p_meth = meth;
        p_path = path;
        p_status = status;
        p_start = t0;
        p_wall_seconds = wall;
        p_queue_seconds = queue;
        p_oracle_calls = Scope.oracle_calls scope;
        p_oracle_seconds = Scope.oracle_seconds scope;
        p_bytes = bytes;
        p_jobs = t.config.jobs;
        p_events = Scope.events scope;
        p_events_dropped = Scope.dropped scope }

let with_request_id rid (resp : Router.response) =
  { resp with
    Router.headers = resp.Router.headers @ Request_id.response_headers rid }

(* A protocol-level failure (timeout, parse reject) still gets an id,
   response headers and a telemetry record — "invalid" route, no
   events. *)
let send_error t fd ~accepted ~nreq ~t0 (resp : Router.response) =
  let rid = Request_id.make () in
  let scope = Scope.create ~cap:0 ~id:(Request_id.id rid) () in
  let wall =
    send t fd ~route:"invalid" ~keep_alive:false ~t0
      (with_request_id rid resp)
  in
  record_profile t ~rid ~scope ~route:"invalid" ~meth:"-" ~path:"-"
    ~status:resp.Router.status
    ~bytes:(String.length resp.Router.body)
    ~t0 ~wall
    ~queue:(if nreq = 0 then Float.max 0. (t0 -. accepted) else 0.)

(* One full keep-alive connection: parse, dispatch, answer, repeat.
   [accepted] is the accept-loop timestamp; the gap to the first
   request's processing start is its queue time (executor backlog). *)
let handle_connection t ~accepted fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.limits.Limits.read_timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.limits.Limits.read_timeout
   with Unix.Unix_error _ -> ());
  let buf = Bytes.create 8192 in
  let rec serve parser_ nreq =
    let rec fill () =
      match Http.poll parser_ with
      | (Http.Request _ | Http.Reject _) as o -> `Outcome o
      | Http.Incomplete -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 ->
            Http.eof parser_;
            `Outcome (Http.poll parser_)
          | k ->
            Http.feed parser_ (Bytes.sub_string buf 0 k);
            fill ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
            `Timeout
          | exception Unix.Unix_error _ -> `Hangup)
    in
    match fill () with
    | `Hangup -> ()
    | `Timeout ->
      (* Mid-request silence is an error; idle between requests is a
         normal keep-alive close. *)
      if Http.bytes_fed parser_ > 0 then
        send_error t fd ~accepted ~nreq ~t0:(Unix.gettimeofday ())
          (Json_codec.error 408 "request read timed out")
    | `Outcome Http.Incomplete -> assert false (* poll after eof is terminal *)
    | `Outcome (Http.Reject (status, msg)) ->
      (* A clean EOF before any byte of a next request is just the
         client hanging up. *)
      if Http.bytes_fed parser_ > 0 then begin
        send_error t fd ~accepted ~nreq ~t0:(Unix.gettimeofday ())
          (Json_codec.error status msg);
        (* Lingering close: a 413 client may still be mid-upload.
           Closing now would send RST and discard our buffered
           response, so drain the declared remainder (bounded, under
           the same SO_RCVTIMEO) before the caller closes the fd. *)
        let rec drain remaining =
          if remaining > 0 then
            match Unix.read fd buf 0 (min remaining (Bytes.length buf)) with
            | 0 -> ()
            | k -> drain (remaining - k)
            | exception Unix.Unix_error _ -> ()
        in
        drain (Http.drain_hint parser_)
      end
    | `Outcome (Http.Request req) ->
      let t0 = Unix.gettimeofday () in
      let queue = if nreq = 0 then Float.max 0. (t0 -. accepted) else 0. in
      let rid = Request_id.of_request req in
      (* The request's scope: installed for the whole dispatch, so every
         span/oracle/subst event the handler triggers — including work
         fanned out via Par.map / Pool (which re-install it in their
         workers) — accumulates here, stamped with this request's id. *)
      let scope = Scope.create ~cap:t.config.scope_cap ~id:(Request_id.id rid) () in
      set_in_flight t 1;
      let route, resp =
        Fun.protect
          ~finally:(fun () -> set_in_flight t (-1))
          (fun () ->
            Scope.with_scope scope (fun () ->
                Obs.with_span
                  ~attrs:
                    [ ("method", Trace.Str (Http.meth_to_string req.Http.meth));
                      ("path", Trace.Str req.Http.path) ]
                  "http.request"
                  (fun () -> Router.dispatch t.routes req)))
      in
      let resp = with_request_id rid resp in
      let keep_alive =
        Http.wants_keep_alive req
        && nreq + 1 < t.config.limits.Limits.max_conn_requests
        && not (Atomic.get t.stop_flag)
      in
      let wall = send t fd ~route ~keep_alive ~t0 resp in
      record_profile t ~rid ~scope ~route
        ~meth:(Http.meth_to_string req.Http.meth)
        ~path:req.Http.path ~status:resp.Router.status
        ~bytes:(String.length resp.Router.body)
        ~t0 ~wall ~queue;
      if keep_alive then begin
        let next = Http.create ~limits:t.config.limits in
        Http.feed next (Http.leftover parser_);
        serve next (nreq + 1)
      end
  in
  serve (Http.create ~limits:t.config.limits) 0

(* ------------------------------------------------------------------ *)
(* Accept loop and shutdown                                            *)

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    match t.lsock with
    | None -> ()
    | Some sock ->
      (* [shutdown] (not [close]) wakes a concurrently blocked
         [accept]; the fallback self-connect covers platforms where it
         does not. *)
      (try Unix.shutdown sock Unix.SHUTDOWN_RECEIVE
       with Unix.Unix_error _ -> ());
      (try
         let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         Fun.protect
           ~finally:(fun () ->
             try Unix.close fd with Unix.Unix_error _ -> ())
           (fun () ->
             Unix.connect fd
               (Unix.ADDR_INET
                  (Unix.inet_addr_of_string t.config.host, t.bound_port)))
       with Unix.Unix_error _ -> ())

let run t =
  let sock =
    match t.lsock with
    | Some s -> s
    | None -> invalid_arg "Server.run: call start first"
  in
  let exec = Option.get t.exec in
  while not (Atomic.get t.stop_flag) do
    match Unix.accept ~cloexec:true sock with
    | fd, _ ->
      register_conn t fd;
      let accepted = Unix.gettimeofday () in
      let task () =
        Fun.protect
          ~finally:(fun () -> unregister_conn t fd)
          (fun () -> handle_connection t ~accepted fd)
      in
      if not (Pool.Exec.submit exec task) then unregister_conn t fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      () (* signal delivered; the loop re-checks the stop flag *)
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      Atomic.set t.stop_flag true
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  t.lsock <- None;
  (* Drain: finish in-flight connections, then force-close stragglers
     so their workers unblock, and reap the executor. *)
  if not (Pool.Exec.shutdown ~deadline:t.config.drain_deadline exec) then begin
    Mutex.lock t.conns_lock;
    let remaining = Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [] in
    Mutex.unlock t.conns_lock;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      remaining;
    ignore (Pool.Exec.shutdown ~deadline:1.0 exec)
  end;
  t.exec <- None
