(* Request identity: an [X-Request-Id] honored (after sanitizing) or
   generated, plus W3C Trace Context propagation — parse an incoming
   [traceparent], keep its trace-id, mint a fresh span-id for the work
   this server does, and emit both headers on the response so the id a
   client logged is the id the access log, the debug ring and every
   scoped event carry.

   When the client sends neither header, the generated request id IS
   the (fresh) 32-hex trace id, so logs and traces correlate by a
   single token.

   Randomness: one [Random.State] seeded from wall clock + pid, behind
   a mutex (requests arrive on many domains).  Uniqueness per process
   is what the debug ring needs; these are not security tokens. *)

type t = {
  r_id : string;
  r_trace_id : string;  (* 32 lowercase hex *)
  r_parent_span : string option;  (* the client's span id, verbatim *)
  r_span_id : string;  (* our fresh 16 lowercase hex *)
}

let id t = t.r_id
let trace_id t = t.r_trace_id
let span_id t = t.r_span_id
let parent_span t = t.r_parent_span

let rng_lock = Mutex.create ()

let rng =
  lazy
    (Random.State.make
       [| Unix.getpid ();
          (let t = Unix.gettimeofday () in
           int_of_float (Float.rem (t *. 1e6) 1e9)) |])

let hex_chars = "0123456789abcdef"

let random_hex n =
  Mutex.lock rng_lock;
  let st = Lazy.force rng in
  let s = String.init n (fun _ -> hex_chars.[Random.State.int st 16]) in
  Mutex.unlock rng_lock;
  s

let is_hex s =
  String.for_all
    (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
    s

let all_zero s = String.for_all (fun c -> c = '0') s

(* A usable X-Request-Id: 1..64 chars from a conservative token set, so
   ids flow into logs, headers and URLs without escaping anywhere. *)
let valid_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       s

(* [traceparent: VV-<32 hex trace-id>-<16 hex parent-id>-FF], lowercase
   hex, ids not all-zero, version not "ff".  Returns (trace_id,
   parent_span_id). *)
let parse_traceparent s =
  match String.split_on_char '-' (String.trim s) with
  | [ version; tid; sid; flags ]
    when String.length version = 2
         && is_hex version && version <> "ff"
         && String.length tid = 32
         && is_hex tid
         && not (all_zero tid)
         && String.length sid = 16
         && is_hex sid
         && not (all_zero sid)
         && String.length flags = 2
         && is_hex flags ->
    Some (tid, sid)
  | _ -> None

let make ?request_id ?traceparent () =
  let trace_id, parent_span =
    match Option.map parse_traceparent traceparent with
    | Some (Some (tid, sid)) -> (tid, Some sid)
    | _ -> (random_hex 32, None)
  in
  let r_id =
    match request_id with
    | Some rid when valid_id rid -> rid
    | _ -> trace_id
  in
  { r_id; r_trace_id = trace_id; r_parent_span = parent_span;
    r_span_id = random_hex 16 }

let of_request (req : Http.request) =
  make
    ?request_id:(Http.header req "x-request-id")
    ?traceparent:(Http.header req "traceparent")
    ()

(* Outgoing: sampled flag set — this server recorded the request. *)
let traceparent t = Printf.sprintf "00-%s-%s-01" t.r_trace_id t.r_span_id

let response_headers t =
  [ ("X-Request-Id", t.r_id); ("traceparent", traceparent t) ]
