(** Method + exact-path routing with uniform 404/405/500 handling. *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type route = {
  meth : Http.meth;
  path : string;
  handler : Http.request -> response;
}

val route : Http.meth -> string -> (Http.request -> response) -> route

(** [dispatch routes req] finds the route with [req]'s path and method
    and runs its handler.  Returns the response paired with the route
    label used for metrics: the route's path, or ["unmatched"] for
    404/405.  An unknown path answers 404, a known path with the wrong
    method 405 (with an [Allow] header), and a handler exception 500 —
    the exception never escapes (its message goes to stderr, not to the
    client). *)
val dispatch : route list -> Http.request -> string * response
