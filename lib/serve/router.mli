(** Method + path routing with uniform 404/405/500 handling.

    Paths are matched segment-wise; a [:name] pattern segment binds any
    single non-empty concrete segment (e.g.
    ["/v1/debug/requests/:id"]).  A fixed path shadows a parameterized
    one matching the same request, regardless of registration order. *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type route

val route : Http.meth -> string -> (Http.request -> response) -> route

(** [route_params meth pattern handler] — the handler additionally
    receives the [(name, segment)] bindings of the pattern's [:name]
    segments. *)
val route_params :
  Http.meth ->
  string ->
  ((string * string) list -> Http.request -> response) ->
  route

(** [dispatch routes req] finds the route matching [req]'s path and
    method and runs its handler.  Returns the response paired with the
    route label used for metrics and logs: the route's {e pattern} (so
    label cardinality stays bounded), or ["unmatched"] for 404/405.
    An unknown path answers 404, a known path with the wrong method 405
    (with an [Allow] header), and a handler exception 500 — the
    exception never escapes (its message goes to stderr, not to the
    client). *)
val dispatch : route list -> Http.request -> string * response

(** Exposed for tests: [match_path ~pattern path] is [Some bindings]
    when [pattern] matches [path]. *)
val match_path :
  pattern:string -> string -> (string * string) list option
