(** Per-process serving telemetry: the bounded ring of recent request
    profiles behind [GET /v1/debug/requests], rolling 1m/5m SLO windows
    exported as gauges, and the optional JSONL access log.

    The server calls {!record} once per answered request (after the
    response is on the wire); the API layer reads {!profiles} /
    {!find} and calls {!set_slo_gauges} before each /metrics render. *)

type profile = {
  p_id : string;  (** the request id every scoped event carries *)
  p_trace_id : string;
  p_route : string;  (** route pattern (bounded cardinality) *)
  p_meth : string;
  p_path : string;  (** concrete decoded path *)
  p_status : int;
  p_start : float;  (** epoch seconds at request parse *)
  p_wall_seconds : float;
  p_queue_seconds : float;
      (** accept-to-worker delay (first request of a connection) *)
  p_oracle_calls : int;
  p_oracle_seconds : float;
  p_bytes : int;  (** response body bytes *)
  p_jobs : int;
  p_events : Trace.event list;  (** the request's scoped buffer *)
  p_events_dropped : int;
}

type t

val default_ring : int
(** 64 profiles. *)

(** [create ()] — [ring] bounds the profile ring ([0] disables it);
    [access] attaches an access log; [now] overrides the start stamp
    (tests). *)
val create : ?ring:int -> ?access:Access_log.t -> ?now:float -> unit -> t

(** Start stamp — the [/healthz] uptime base. *)
val started : t -> float

val access_log : t -> Access_log.t option

(** Record a completed request: SLO windows, profile ring, access-log
    line. *)
val record : ?now:float -> t -> profile -> unit

(** Ring contents, newest first. *)
val profiles : t -> profile list

(** Lookup by request id (newest match; [None] once evicted). *)
val find : t -> string -> profile option

(** Profiles ever recorded (≥ ring occupancy). *)
val recorded : t -> int

(** {1 JSON shapes} *)

(** The access-log line: one flat object ([ts], [id], [trace],
    [method], [route], [path], [code], [bytes], [wall_seconds],
    [queue_seconds], [oracle_seconds], [oracle_calls], [jobs]). *)
val access_line : profile -> Tiny_json.t

(** {!access_line} fields plus the stored event count. *)
val summary_json : profile -> Tiny_json.t

(** Full profile: scalars plus [events_dropped] and the event list
    (each via {!Trace_export.event_to_json}, so they round-trip through
    {!Trace_export.event_of_json}). *)
val profile_json : profile -> Tiny_json.t

(** {1 SLO export} *)

(** Set [http_slo_error_ratio{window}],
    [http_slo_window_requests{window}] and
    [http_slo_latency_seconds{window,quantile}] gauges (windows [1m] /
    [5m]; quantiles 0.5/0.95/0.99; empty-window latency exports 0) in
    [registry] (default {!Metrics.default}). *)
val set_slo_gauges : ?now:float -> ?registry:Metrics.registry -> t -> unit

val slo_1m : t -> Sliding.t
val slo_5m : t -> Sliding.t
