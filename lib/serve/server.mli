(** The [shapmc serve] daemon: a blocking accept loop dispatching
    connections onto a persistent {!Pool.Exec} domain executor.

    Each worker handles whole connections (keep-alive, up to
    [limits.max_conn_requests] requests each); request handlers that
    fan out internally ([Par.map] in the reductions) degrade to
    sequential execution inside a worker, so a server with [jobs]
    workers never runs on more than [jobs + 1] domains (the accept
    loop included).

    Observability: every answered request records
    [http_requests{route,code}] (counter),
    [http_request_seconds{route,code}] (histogram) and the
    [http_in_flight] gauge into {!Metrics.default} — scrape them back
    over [GET /metrics].

    Request-scoped observability: each request gets a {!Request_id}
    (honoring incoming [X-Request-Id] / [traceparent], echoing both on
    the response) and runs with its own {!Scope} installed, so every
    span and oracle event it triggers — across [Par.map]/[Pool] worker
    domains — is captured in a per-request buffer stamped with its id,
    independent of the global [Obs] switch.  With a [telemetry] value
    in the config, every completion (including protocol-level 4xx
    rejects, route ["invalid"]) is recorded into the profile ring, the
    rolling SLO windows and the access log. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port — read it back with {!port} *)
  jobs : int;  (** worker domains handling connections *)
  limits : Limits.t;
  drain_deadline : float;
      (** seconds {!run} waits for in-flight requests after {!stop}
          before force-closing their sockets (default 5.) *)
  telemetry : Telemetry.t option;
      (** per-request profile ring / SLO windows / access log; share it
          with {!Api.routes} so the debug endpoints read what the
          server records (default [None]) *)
  scope_cap : int;
      (** per-request scoped-event buffer bound (default
          {!Scope.default_cap}) *)
}

val default_config : config

type t

val create : ?config:config -> Router.route list -> t

(** Bind (with [SO_REUSEADDR]) and listen.  @raise Unix.Unix_error when
    the address is unavailable. *)
val start : t -> unit

(** The actually bound port (after {!start}). *)
val port : t -> int

(** Accept until {!stop}, then drain: stop accepting, wait up to
    [drain_deadline] for in-flight connections, force-shutdown
    stragglers, join the workers.  Blocks; run it in its own domain
    for in-process use. *)
val run : t -> unit

(** Signal {!run} to shut down, from a signal handler or another
    domain.  Idempotent; safe before {!start}. *)
val stop : t -> unit

(** Requests answered so far (all connections). *)
val requests_served : t -> int
