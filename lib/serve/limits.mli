(** Request limits for the HTTP server.

    Every limit is enforced exactly at its boundary: a header section
    of [max_header_bytes] bytes parses, one more byte is rejected with
    400; a declared body of [max_body_bytes] is read, one more byte is
    rejected with 413 before any body byte arrives. *)

type t = {
  max_header_bytes : int;
      (** Size cap on the request line plus all header lines including
          the blank-line terminator (default 8192).  Exceeded → 400. *)
  max_body_bytes : int;
      (** Cap on the declared [Content-Length] (default 1048576).
          Exceeded → 413. *)
  read_timeout : float;
      (** Socket read timeout in seconds (default 10.).  A connection
          idle between requests is closed silently; a timeout
          mid-request answers 408 and closes. *)
  max_conn_requests : int;
      (** Keep-alive cap: requests answered on one connection before
          the server closes it (default 100). *)
}

val default : t

(** [from_env ?getenv t] overrides fields from [SHAPMC_MAX_HEADER_BYTES],
    [SHAPMC_MAX_BODY_BYTES], [SHAPMC_READ_TIMEOUT] and
    [SHAPMC_MAX_CONN_REQUESTS].  Unparseable or non-positive values are
    ignored.  [getenv] defaults to [Sys.getenv_opt] (injectable for
    tests). *)
val from_env : ?getenv:(string -> string option) -> t -> t
