(** JSONL access log: one {!Tiny_json} object per line, mutex-guarded,
    flushed per line, with size-based rotation (the current file is
    renamed to [path ^ ".1"] when the next line would push it past
    [max_bytes], so disk use is bounded at ~2×[max_bytes]). *)

type t

val default_max_bytes : int
(** 64 MiB. *)

(** [open_ path] opens (appending) or creates [path].
    [max_bytes = 0] disables rotation.
    @raise Sys_error when the path cannot be opened. *)
val open_ : ?max_bytes:int -> string -> t

val path : t -> string

(** Where rotation moves the full file: [path ^ ".1"]. *)
val rotated_path : string -> string

(** [write t json] appends one line ([to_string json ^ "\n"]),
    rotating first if needed.  No-op after {!close}. *)
val write : t -> Tiny_json.t -> unit

val close : t -> unit
