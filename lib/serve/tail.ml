(* Aggregation engine of `shapmc tail`: feed it chunks of a JSONL
   access log (partial trailing lines are carried across feeds, so it
   can follow a live file), get back a per-route summary table —
   request/error counts, wall-latency percentiles via the same
   log-linear histograms as the live metrics, oracle work, bytes.

   Unparseable lines are counted, never fatal: a rotated-away or
   truncated file must not kill the follower. *)

module J = Tiny_json

type stats = {
  mutable st_requests : int;
  mutable st_errors : int;  (* 5xx *)
  mutable st_client_errors : int;  (* 4xx *)
  mutable st_bytes : int;
  mutable st_oracle_calls : int;
  mutable st_oracle_seconds : float;
  st_wall : Histogram.t;
}

type t = {
  tbl : (string, stats) Hashtbl.t;
  mutable carry : string;  (* partial last line of the previous feed *)
  mutable lines : int;
  mutable bad_lines : int;
}

let create () =
  { tbl = Hashtbl.create 8; carry = ""; lines = 0; bad_lines = 0 }

let lines t = t.lines
let bad_lines t = t.bad_lines

let stats_for t route =
  match Hashtbl.find_opt t.tbl route with
  | Some s -> s
  | None ->
    let s =
      { st_requests = 0; st_errors = 0; st_client_errors = 0; st_bytes = 0;
        st_oracle_calls = 0; st_oracle_seconds = 0.;
        st_wall = Histogram.create () }
    in
    Hashtbl.replace t.tbl route s;
    s

let int_member name json =
  match Option.bind (J.member name json) J.to_int with
  | Some v -> v
  | None -> 0

let float_member name json =
  match Option.bind (J.member name json) J.to_float with
  | Some v -> v
  | None -> 0.

let feed_line t line =
  let line = String.trim line in
  if line <> "" then begin
    t.lines <- t.lines + 1;
    match J.parse_opt line with
    | Some (J.Obj _ as json) ->
      let route =
        match Option.bind (J.member "route" json) J.to_str with
        | Some r -> r
        | None -> "?"
      in
      let s = stats_for t route in
      let code = int_member "code" json in
      s.st_requests <- s.st_requests + 1;
      if code >= 500 then s.st_errors <- s.st_errors + 1
      else if code >= 400 then s.st_client_errors <- s.st_client_errors + 1;
      s.st_bytes <- s.st_bytes + int_member "bytes" json;
      s.st_oracle_calls <- s.st_oracle_calls + int_member "oracle_calls" json;
      s.st_oracle_seconds <-
        s.st_oracle_seconds +. float_member "oracle_seconds" json;
      Histogram.observe s.st_wall (float_member "wall_seconds" json)
    | _ -> t.bad_lines <- t.bad_lines + 1
  end

let feed t chunk =
  let data = t.carry ^ chunk in
  let parts = String.split_on_char '\n' data in
  (* The last split piece is complete only if [data] ended in \n (then
     it is ""); otherwise carry it into the next feed. *)
  let rec go = function
    | [] -> t.carry <- ""
    | [ last ] -> t.carry <- last
    | line :: rest ->
      feed_line t line;
      go rest
  in
  go parts

(* Flush a trailing unterminated line (end of a --once read). *)
let finish t =
  if t.carry <> "" then begin
    feed_line t t.carry;
    t.carry <- ""
  end

let ms s = s *. 1e3

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let rows =
    List.sort compare (Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.tbl [])
  in
  if rows = [] then line "(no requests)"
  else begin
    line "%-22s %8s %6s %6s %9s %9s %9s %8s %10s %10s" "route" "req" "4xx"
      "5xx" "p50-ms" "p95-ms" "p99-ms" "oracle" "oracle-ms" "KiB";
    let tot =
      { st_requests = 0; st_errors = 0; st_client_errors = 0; st_bytes = 0;
        st_oracle_calls = 0; st_oracle_seconds = 0.;
        st_wall = Histogram.create () }
    in
    List.iter
      (fun (route, s) ->
        tot.st_requests <- tot.st_requests + s.st_requests;
        tot.st_errors <- tot.st_errors + s.st_errors;
        tot.st_client_errors <- tot.st_client_errors + s.st_client_errors;
        tot.st_bytes <- tot.st_bytes + s.st_bytes;
        tot.st_oracle_calls <- tot.st_oracle_calls + s.st_oracle_calls;
        tot.st_oracle_seconds <- tot.st_oracle_seconds +. s.st_oracle_seconds;
        Histogram.merge_into ~into:tot.st_wall s.st_wall;
        line "%-22s %8d %6d %6d %9.2f %9.2f %9.2f %8d %10.2f %10.1f" route
          s.st_requests s.st_client_errors s.st_errors
          (ms (Histogram.percentile s.st_wall 0.5))
          (ms (Histogram.percentile s.st_wall 0.95))
          (ms (Histogram.percentile s.st_wall 0.99))
          s.st_oracle_calls
          (ms s.st_oracle_seconds)
          (float_of_int s.st_bytes /. 1024.))
      rows;
    line "%-22s %8d %6d %6d %9.2f %9.2f %9.2f %8d %10.2f %10.1f" "TOTAL"
      tot.st_requests tot.st_client_errors tot.st_errors
      (ms (Histogram.percentile tot.st_wall 0.5))
      (ms (Histogram.percentile tot.st_wall 0.95))
      (ms (Histogram.percentile tot.st_wall 0.99))
      tot.st_oracle_calls
      (ms tot.st_oracle_seconds)
      (float_of_int tot.st_bytes /. 1024.)
  end;
  if t.bad_lines > 0 then
    line "(%d unparseable line%s skipped)" t.bad_lines
      (if t.bad_lines = 1 then "" else "s");
  Buffer.contents b
