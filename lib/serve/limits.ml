type t = {
  max_header_bytes : int;
  max_body_bytes : int;
  read_timeout : float;
  max_conn_requests : int;
}

let default =
  { max_header_bytes = 8192;
    max_body_bytes = 1_048_576;
    read_timeout = 10.;
    max_conn_requests = 100 }

let from_env ?(getenv = Sys.getenv_opt) t =
  let int_env name current =
    match Option.bind (getenv name) int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> current
  in
  let float_env name current =
    match Option.bind (getenv name) float_of_string_opt with
    | Some v when v > 0. -> v
    | _ -> current
  in
  { max_header_bytes = int_env "SHAPMC_MAX_HEADER_BYTES" t.max_header_bytes;
    max_body_bytes = int_env "SHAPMC_MAX_BODY_BYTES" t.max_body_bytes;
    read_timeout = float_env "SHAPMC_READ_TIMEOUT" t.read_timeout;
    max_conn_requests =
      int_env "SHAPMC_MAX_CONN_REQUESTS" t.max_conn_requests }
