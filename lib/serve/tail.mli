(** Aggregation engine of [shapmc tail]: consume a JSONL access log in
    chunks (partial trailing lines carried across feeds, so it can
    follow a live file) and render a per-route summary — requests,
    4xx/5xx, wall-latency percentiles (through {!Histogram}), oracle
    calls/time, bytes.  Unparseable lines are counted, never fatal. *)

type t

val create : unit -> t

(** Consume one complete log line (no trailing newline needed). *)
val feed_line : t -> string -> unit

(** Consume a chunk; an unterminated last line is buffered until the
    next {!feed} (or {!finish}). *)
val feed : t -> string -> unit

(** Flush a buffered unterminated line (end of a one-shot read). *)
val finish : t -> unit

(** Lines consumed (parseable or not). *)
val lines : t -> int

val bad_lines : t -> int

(** The per-route table, routes sorted, with a TOTAL row. *)
val render : t -> string
