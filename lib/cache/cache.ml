let default_circuits = 128
let default_counts = 4096
let default_results = 8192

(* Logical hit/miss accounting per tier, separate from the Lru's own
   counters: one shapley_all lookup touches the meta entry plus one Lru
   probe per fact, but counts as a single hit or miss here. *)
type tier_counters = {
  tname : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

type t = {
  circuits : Circuit.node Lru.t;
  counts : Kvec.t Lru.t;
  results : Rat.t Lru.t;  (* "<key>#<fact>" -> value *)
  meta : (string * int list) Lru.t;  (* key -> solver tag, fact order *)
  c_circuit : tier_counters;
  c_counts : tier_counters;
  c_shapley : tier_counters;
  fl_circuit : Circuit.node Single_flight.t;
  fl_counts : Kvec.t Single_flight.t;
  fl_shapley : ((int * Rat.t) list * string) Single_flight.t;
}

let labels tier = [ ("tier", tier) ]

let counters name = { tname = name; hits = Atomic.make 0; misses = Atomic.make 0 }

let on_evict tier _key = Metrics.inc ~labels:(labels tier) "cache_evictions"

let create ?(circuits = default_circuits) ?(counts = default_counts)
    ?(results = default_results) () =
  { circuits = Lru.create ~on_evict:(on_evict "circuit") ~capacity:circuits ();
    counts = Lru.create ~on_evict:(on_evict "counts") ~capacity:counts ();
    results = Lru.create ~on_evict:(on_evict "shapley") ~capacity:results ();
    meta = Lru.create ~on_evict:(on_evict "shapley") ~capacity:results ();
    c_circuit = counters "circuit";
    c_counts = counters "counts";
    c_shapley = counters "shapley";
    fl_circuit = Single_flight.create ();
    fl_counts = Single_flight.create ();
    fl_shapley = Single_flight.create () }

let set_gauges tier lru =
  let entries = float_of_int (Lru.length lru) in
  let labels = labels tier in
  Metrics.set ~labels "cache_entries" entries;
  Metrics.set ~labels "cache_fill"
    (entries /. float_of_int (Lru.capacity lru))

(* One logical lookup: the fast path probes [find]; on miss the caller
   funnels through the tier's single-flight, where leaders re-probe
   (another leader may have landed while we queued for the flight),
   compute, and publish.  Joiners count as hits: the computation they
   share ran once.  The latency histogram covers the caller-visible
   lookup, so leader samples include the fill — the hit/miss split of
   the same label set tells the two populations apart. *)
let account c ~hit ~t0 =
  let lab = labels c.tname in
  Metrics.observe ~labels:lab "cache_lookup_seconds"
    (Unix.gettimeofday () -. t0);
  Metrics.inc ~labels:lab (if hit then "cache_hits" else "cache_misses");
  Atomic.incr (if hit then c.hits else c.misses)

let tiered ~c ~lru ~flight ~probe ~store ~key compute =
  let t0 = Unix.gettimeofday () in
  match probe () with
  | Some v ->
    account c ~hit:true ~t0;
    v
  | None ->
    let led = ref false in
    let v =
      Single_flight.run flight key (fun () ->
          match probe () with
          | Some v -> v
          | None ->
            led := true;
            let v = compute () in
            store v;
            set_gauges c.tname lru;
            v)
    in
    account c ~hit:(not !led) ~t0;
    v

let circuit t ~key ?(tags = []) compute =
  tiered ~c:t.c_circuit ~lru:t.circuits ~flight:t.fl_circuit
    ~probe:(fun () -> Lru.find t.circuits key)
    ~store:(fun v -> Lru.put t.circuits ~tags key v)
    ~key compute

let counts t ~key ?(tags = []) compute =
  tiered ~c:t.c_counts ~lru:t.counts ~flight:t.fl_counts
    ~probe:(fun () -> Lru.find t.counts key)
    ~store:(fun v -> Lru.put t.counts ~tags key v)
    ~key compute

let fact_key key fact = Printf.sprintf "%s#%d" key fact

let find_shapley t ~key ~fact = Lru.find t.results (fact_key key fact)

(* A result hit needs the meta entry and every per-fact rational: a
   partially evicted answer must re-solve, not answer short. *)
let probe_result t key =
  match Lru.find t.meta key with
  | None -> None
  | Some (solver, facts) ->
    let rec gather acc = function
      | [] -> Some (List.rev acc, solver)
      | f :: rest -> (
          match Lru.find t.results (fact_key key f) with
          | Some v -> gather ((f, v) :: acc) rest
          | None -> None)
    in
    gather [] facts

let store_result t ~tags key (values, solver) =
  List.iter (fun (f, v) -> Lru.put t.results ~tags (fact_key key f) v) values;
  Lru.put t.meta ~tags key (solver, List.map fst values)

let shapley_all t ~key ?(tags = []) solve =
  tiered ~c:t.c_shapley ~lru:t.results ~flight:t.fl_shapley
    ~probe:(fun () -> probe_result t key)
    ~store:(fun r -> store_result t ~tags key r)
    ~key solve

let invalidate_tag t tag =
  let dropped =
    Lru.remove_tagged t.circuits tag
    + Lru.remove_tagged t.counts tag
    + Lru.remove_tagged t.results tag
    + Lru.remove_tagged t.meta tag
  in
  if dropped > 0 then
    Metrics.inc ~by:(float_of_int dropped) "cache_invalidations";
  set_gauges "circuit" t.circuits;
  set_gauges "counts" t.counts;
  set_gauges "shapley" t.results;
  dropped

let clear t =
  Lru.clear t.circuits;
  Lru.clear t.counts;
  Lru.clear t.results;
  Lru.clear t.meta;
  set_gauges "circuit" t.circuits;
  set_gauges "counts" t.counts;
  set_gauges "shapley" t.results

type tier_stats = {
  ts_hits : int;
  ts_misses : int;
  ts_evictions : int;
  ts_entries : int;
  ts_capacity : int;
}

let tier_stats c lru =
  { ts_hits = Atomic.get c.hits;
    ts_misses = Atomic.get c.misses;
    ts_evictions = Lru.evictions lru;
    ts_entries = Lru.length lru;
    ts_capacity = Lru.capacity lru }

let stats t =
  [ ("circuit", tier_stats t.c_circuit t.circuits);
    ("counts", tier_stats t.c_counts t.counts);
    ("shapley", tier_stats t.c_shapley t.results) ]

let summary t =
  String.concat "\n"
    (List.map
       (fun (name, s) ->
         Printf.sprintf
           "cache %-8s %d/%d entries, %d hit%s, %d miss%s, %d evicted" name
           s.ts_entries s.ts_capacity s.ts_hits
           (if s.ts_hits = 1 then "" else "s")
           s.ts_misses
           (if s.ts_misses = 1 then "" else "es")
           s.ts_evictions)
       (stats t))
