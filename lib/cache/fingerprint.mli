(** Stable 64-bit FNV-1a fingerprints for cache keys.

    Cache keys must identify a computation by {e content}: the query
    text, the exact tuples of every relation its lineage can mention,
    the universe of lineage variables.  A fingerprint folds those
    strings into one 64-bit digest rendered as 16 hex characters, so
    keys stay short no matter how large the database grows, and two
    databases with identical content share cache entries.

    FNV-1a is not cryptographic; collisions are possible in principle
    but irrelevant at cache scale (the cache is an optimization keyed
    inside one process, and a collision costs correctness only if two
    live computations collide — 2^-64 per pair). *)

type t

(** The FNV-1a offset basis. *)
val empty : t

(** Fold a string into the digest, byte by byte. *)
val add_string : t -> string -> t

(** Fold an int (its decimal rendering, plus a separator — so
    [add_int h 1 |> add_int 12] differs from [add_int h 11 |> add_int 2]). *)
val add_int : t -> int -> t

(** 16 lowercase hex characters. *)
val to_hex : t -> string

(** [digest parts] folds every part (with separators) and renders hex:
    the one-shot form used for composite keys. *)
val digest : string list -> string

val equal : t -> t -> bool
