(** Keyed single-flight execution: concurrent callers of the same key
    share one computation.

    The first caller of a key becomes its {e leader} and runs the
    supplied thunk {e without holding any lock}; every caller that
    arrives while the flight is up blocks on a condition variable and
    receives the leader's result (or its exception, re-raised).  The
    flight is dropped as soon as the leader finishes, so a later caller
    starts fresh — the caller is expected to consult its cache again
    before recomputing (see {!Cache}).

    This is the replacement for the per-entry memo mutex the serving
    layer used to hold across a whole solve: distinct keys never
    contend, and a key's waiters park on a condvar instead of pinning a
    mutex. Re-entering [run] with the same key from inside its own
    leader thunk would deadlock — don't. *)

type 'v t

val create : unit -> 'v t

(** [run t key f] — leader executes [f ()]; joiners wait and share the
    leader's outcome. *)
val run : 'v t -> string -> (unit -> 'v) -> 'v

(** Flights currently up (0 when idle — a drain check for tests). *)
val in_flight : 'v t -> int

(** Cumulative number of leader executions. *)
val leads : 'v t -> int
