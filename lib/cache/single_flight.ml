type 'v outcome = Running | Done of 'v | Failed of exn

type 'v flight = { mutable outcome : 'v outcome; mutable waiters : int }

type 'v t = {
  lock : Mutex.t;
  cond : Stdlib.Condition.t;  (* shared: flights are short-lived and few *)
  flights : (string, 'v flight) Hashtbl.t;
  mutable leads : int;
}

let create () =
  { lock = Mutex.create ();
    cond = Stdlib.Condition.create ();
    flights = Hashtbl.create 16;
    leads = 0 }

let finish t key fl outcome =
  Mutex.lock t.lock;
  fl.outcome <- outcome;
  (* Drop the flight now: waiters hold the record itself, and the next
     arrival must start a fresh computation (its cache re-check decides
     whether one is still needed). *)
  Hashtbl.remove t.flights key;
  Stdlib.Condition.broadcast t.cond;
  Mutex.unlock t.lock

let run t key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.flights key with
  | Some fl ->
    fl.waiters <- fl.waiters + 1;
    let rec await () =
      match fl.outcome with
      | Running ->
        Stdlib.Condition.wait t.cond t.lock;
        await ()
      | Done v ->
        Mutex.unlock t.lock;
        v
      | Failed e ->
        Mutex.unlock t.lock;
        raise e
    in
    await ()
  | None ->
    let fl = { outcome = Running; waiters = 0 } in
    Hashtbl.add t.flights key fl;
    t.leads <- t.leads + 1;
    Mutex.unlock t.lock;
    (match f () with
     | v ->
       finish t key fl (Done v);
       v
     | exception e ->
       finish t key fl (Failed e);
       raise e)

let in_flight t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.flights in
  Mutex.unlock t.lock;
  n

let leads t =
  Mutex.lock t.lock;
  let n = t.leads in
  Mutex.unlock t.lock;
  n
