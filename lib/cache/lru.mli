(** A mutex-guarded LRU map from string keys to values.

    The building block of every {!Cache} tier: a hashtable over an
    intrusive doubly-linked recency list, so [find], [put] and [remove]
    are O(1) under one lock (domain-safe; values themselves must be
    immutable or independently synchronized — circuits, count vectors
    and rationals all are).

    Entries may carry {e tags} — opaque strings attached at {!put} time
    — and {!remove_tagged} drops every entry carrying a given tag: the
    invalidation primitive ("everything whose lineage mentions relation
    R of database 3").

    Hit / miss / eviction counters are cumulative over the structure's
    lifetime ({!clear} resets entries, not counters). *)

type 'v t

(** [create ~capacity ()] — [capacity < 1] raises [Invalid_argument].
    [on_evict key] fires (under the lock — must not re-enter) for each
    capacity eviction, not for explicit removals. *)
val create : ?on_evict:(string -> unit) -> capacity:int -> unit -> 'v t

val capacity : 'v t -> int

val length : 'v t -> int

(** [find t key] returns the value and marks it most-recently used. *)
val find : 'v t -> string -> 'v option

(** [put t key v] inserts or replaces (both mark [key] most-recently
    used), then evicts from the least-recently-used end past capacity. *)
val put : 'v t -> ?tags:string list -> string -> 'v -> unit

(** [remove t key] — [true] iff the key was present. *)
val remove : 'v t -> string -> bool

(** [remove_tagged t tag] drops every entry carrying [tag]; returns how
    many were dropped. O(n). *)
val remove_tagged : 'v t -> string -> int

val mem : 'v t -> string -> bool

val clear : 'v t -> unit

(** Keys in recency order, most-recently used first. *)
val keys : 'v t -> string list

val hits : 'v t -> int
val misses : 'v t -> int
val evictions : 'v t -> int
