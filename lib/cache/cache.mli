(** The persistent compilation-and-counting cache (ROADMAP item 2).

    The paper's pipeline answers every fact's Shapley value through the
    same compiled lineage and the same stratified [#_k] counts
    (Lemma 3.2's oracle answers are reusable across fact positions), so
    a long-running service should pay for compilation and counting once
    per query content, not once per request.  A [Cache.t] holds three
    tiers, each an {!Lru} guarded by {!Single_flight} so concurrent
    misses of one key compute exactly once:

    - {b circuit} — compiled d-DNNF (or safe-plan circuit) per query
      lineage, keyed on a content fingerprint of the query and the
      relations it mentions;
    - {b counts} — stratified [#_k] vectors ({!Kvec.t}), keyed on the
      hash-consed circuit identity + universe + restriction (or, for the
      formula pipeline, oracle + universe + formula text);
    - {b shapley} — per-(query, fact) Shapley rationals plus one meta
      entry per query recording fact order and solver, so a full
      [/v1/shapley/all] answer reassembles from per-fact entries and a
      partial eviction degrades to a re-solve, never to a wrong answer.

    Key derivation lives with the callers ({!Shapmc_db.Db_fingerprint},
    [Dichotomy], [Pipeline]): this module only promises that equal keys
    mean equal computations.  Entries carry caller-chosen tags;
    {!invalidate_tag} is the insert/delete hook — drop everything whose
    lineage mentions a mutated relation while unrelated entries survive.

    Every lookup is instrumented on {!Metrics.default}:
    [cache_hits]/[cache_misses]/[cache_evictions]/[cache_invalidations]
    counters and [cache_lookup_seconds] histograms labelled by tier
    (leader misses include the fill time), and [cache_entries] /
    [cache_fill] gauges.  All operations are domain-safe. *)

type t

val default_circuits : int
(** 128 compiled circuits. *)

val default_counts : int
(** 4096 count vectors. *)

val default_results : int
(** 8192 per-fact rationals (and as many query meta entries). *)

(** [create ()] — capacities per tier, all ≥ 1. *)
val create :
  ?circuits:int -> ?counts:int -> ?results:int -> unit -> t

(** {1 Tiered get-or-compute}

    Each returns the cached value for [key] or runs the thunk once
    (single-flight across domains), stores the result under [key] with
    [tags], and returns it. *)

val circuit :
  t -> key:string -> ?tags:string list -> (unit -> Circuit.node) ->
  Circuit.node

val counts :
  t -> key:string -> ?tags:string list -> (unit -> Kvec.t) -> Kvec.t

(** [shapley_all t ~key solve] — the solve returns all values in fact
    order plus an opaque solver tag; a hit requires the meta entry and
    {e every} per-fact rational to still be resident. *)
val shapley_all :
  t -> key:string -> ?tags:string list ->
  (unit -> (int * Rat.t) list * string) ->
  (int * Rat.t) list * string

(** Peek at one fact's cached rational (no fill, no single-flight). *)
val find_shapley : t -> key:string -> fact:int -> Rat.t option

(** {1 Invalidation} *)

(** [invalidate_tag t tag] drops every entry tagged [tag] across all
    tiers; returns the number of entries dropped. *)
val invalidate_tag : t -> string -> int

(** Drop everything (counters survive). *)
val clear : t -> unit

(** {1 Introspection} *)

type tier_stats = {
  ts_hits : int;  (** lookups answered from the tier (incl. flight joins) *)
  ts_misses : int;  (** leader computations *)
  ts_evictions : int;  (** capacity evictions *)
  ts_entries : int;
  ts_capacity : int;
}

(** Per-tier statistics, keyed ["circuit"], ["counts"], ["shapley"]
    (the shapley tier counts logical query-level lookups; its entries
    are the per-fact rationals). *)
val stats : t -> (string * tier_stats) list

(** One human line per tier, e.g. for [--stats] epilogues. *)
val summary : t -> string
