type t = int64

(* FNV-1a, 64-bit variant: offset basis and prime from the reference
   specification. *)
let empty = 0xcbf29ce484222325L

let prime = 0x100000001b3L

let add_char h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_char !h c) s;
  (* A separator byte outside the folded alphabet, so concatenation
     boundaries matter: ["ab";"c"] and ["a";"bc"] digest differently. *)
  add_char !h '\x00'

let add_int h i = add_string h (string_of_int i)

let to_hex h = Printf.sprintf "%016Lx" h

let digest parts = to_hex (List.fold_left add_string empty parts)

let equal = Int64.equal
