type 'v node = {
  nkey : string;
  mutable nvalue : 'v;
  mutable ntags : string list;
  mutable prev : 'v node option;  (* toward the MRU end *)
  mutable next : 'v node option;  (* toward the LRU end *)
}

type 'v t = {
  lock : Mutex.t;
  tbl : (string, 'v node) Hashtbl.t;
  cap : int;
  on_evict : (string -> unit) option;
  mutable head : 'v node option;  (* most recently used *)
  mutable tail : 'v node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?on_evict ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    cap = capacity;
    on_evict;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* List surgery: callers hold the lock. *)

let unlink t n =
  (match n.prev with
   | Some p -> p.next <- n.next
   | None -> t.head <- n.next);
  (match n.next with
   | Some s -> s.prev <- n.prev
   | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with
   | Some h -> h.prev <- Some n
   | None -> t.tail <- Some n);
  t.head <- Some n

let capacity t = t.cap

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.nvalue)

let evict_over_capacity t =
  while Hashtbl.length t.tbl > t.cap do
    match t.tail with
    | None -> assert false
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.tbl lru.nkey;
      t.evictions <- t.evictions + 1;
      Option.iter (fun f -> f lru.nkey) t.on_evict
  done

let put t ?(tags = []) key v =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
       | Some n ->
         n.nvalue <- v;
         n.ntags <- tags;
         unlink t n;
         push_front t n
       | None ->
         let n =
           { nkey = key; nvalue = v; ntags = tags; prev = None; next = None }
         in
         Hashtbl.add t.tbl key n;
         push_front t n);
      evict_over_capacity t)

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> false
      | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl key;
        true)

let remove_tagged t tag =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun _ n acc -> if List.mem tag n.ntags then n :: acc else acc)
          t.tbl []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.tbl n.nkey)
        doomed;
      List.length doomed)

let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None)

let keys t =
  locked t (fun () ->
      let rec walk acc = function
        | None -> List.rev acc
        | Some n -> walk (n.nkey :: acc) n.next
      in
      walk [] t.head)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
