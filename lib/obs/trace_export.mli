(** Serialization of a {!Trace} event stream.

    Two formats:

    - {b Chrome [trace_event] JSON} ({!chrome}): a [{"traceEvents":
      [...]}] document loadable in Perfetto ({{:https://ui.perfetto.dev}
      ui.perfetto.dev}) or [chrome://tracing].  Spans become B/E pairs,
      oracle calls become X (complete) slices with their duration,
      phases and substitutions become instant events, counters become C
      events (plotted as a counter track).  Timestamps are microseconds
      since trace start.

    - {b JSONL} ({!jsonl}): one compact JSON object per line with the
      full event payload ([seq], [t], [depth], [kind], [name], optional
      [dur], [attrs]).  This format round-trips: {!events_of_jsonl}
      reads it back, so a saved trace can be re-rendered later
      ([shapmc trace-report]).

    Floats are written with round-trip precision; non-finite values are
    mapped to valid JSON ([null] for NaN, [±1.0e308] for infinities). *)

val chrome : Trace.event list -> string

val jsonl : Trace.event list -> string

val event_of_json : Tiny_json.t -> Trace.event
(** @raise Failure on a malformed event object. *)

val event_to_json : Trace.event -> Tiny_json.t
(** Structured counterpart of one {!jsonl} line (same field names), so
    [event_of_json (event_to_json e) = e] for finite attribute floats
    (NaN maps through [null] like the text path). *)

val events_of_jsonl : string -> Trace.event list
(** Parse a whole JSONL document (blank lines skipped).
    @raise Failure with a line number on malformed input. *)

val write_file : ?dropped:int -> path:string -> Trace.event list -> unit
(** Write to [path]; a [.jsonl] suffix selects the JSONL format,
    anything else gets Chrome [trace_event] JSON.  JSONL files start
    with one meta line [{"meta":"shapmc.trace","version":1,"stored":K,
    "dropped":D}] recording how many events the bounded buffer dropped
    ([dropped], default [0]); readers skip meta lines, so the event
    payload still round-trips. *)

val read_jsonl_file : string -> Trace.event list

val read_jsonl_file_full : string -> Trace.event list * int
(** Like {!read_jsonl_file} but also returns the [dropped] count from
    the meta line ([0] when the file has none). *)

val report :
  ?dropped:int -> ?percentiles:bool -> Trace.event list -> string
(** Human-readable rendering of a stream: an indented chronological
    timeline (two spaces per nesting depth) followed by per-phase
    aggregates (events and oracle calls/time attributed to the most
    recent phase marker), per-oracle totals (the same counts as the
    [--stats] ledger), and per-span totals.  When [dropped > 0] the
    report opens with a warning banner (the timeline is truncated but
    ledger aggregates stayed exact).  [percentiles] appends per-
    (oracle, lemma, arity) latency percentile rows rebuilt from the
    oracle events through {!Histogram}. *)
