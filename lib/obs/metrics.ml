(* Metrics registry.  One mutex per registry; every public entry point
   takes the lock, so cross-domain use is safe.  Hot paths that cannot
   afford a lock per event build a local Histogram.t and merge it in
   one [merge_histogram] call. *)

type labels = (string * string) list

type cell =
  | CCounter of float ref
  | CGauge of float ref
  | CHist of Histogram.t

type registry = {
  lock : Mutex.t;
  tbl : (string, string * labels * cell) Hashtbl.t;
}

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }

let default = create ()

let with_lock r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let canon labels = List.sort compare labels

(* Flat table key; '\x00'/'\x01' cannot appear in metric names/labels. *)
let key name labels =
  let b = Buffer.create 32 in
  Buffer.add_string b name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b k;
      Buffer.add_char b '\x01';
      Buffer.add_string b v)
    labels;
  Buffer.contents b

let find_or_add r name labels mk =
  let labels = canon labels in
  let k = key name labels in
  match Hashtbl.find_opt r.tbl k with
  | Some (_, _, cell) -> cell
  | None ->
      let cell = mk () in
      Hashtbl.add r.tbl k (name, labels, cell);
      cell

let kind_error name what =
  invalid_arg (Printf.sprintf "Metrics: %s is not a %s" name what)

let inc ?(registry = default) ?(labels = []) ?(by = 1.) name =
  with_lock registry (fun () ->
      match find_or_add registry name labels (fun () -> CCounter (ref 0.)) with
      | CCounter r -> r := !r +. by
      | _ -> kind_error name "counter")

let set ?(registry = default) ?(labels = []) name v =
  with_lock registry (fun () ->
      match find_or_add registry name labels (fun () -> CGauge (ref 0.)) with
      | CGauge r -> r := v
      | _ -> kind_error name "gauge")

let observe ?(registry = default) ?(labels = []) name v =
  with_lock registry (fun () ->
      match
        find_or_add registry name labels (fun () -> CHist (Histogram.create ()))
      with
      | CHist h -> Histogram.observe h v
      | _ -> kind_error name "histogram")

let merge_histogram ?(registry = default) ?(labels = []) name src =
  with_lock registry (fun () ->
      match
        find_or_add registry name labels (fun () -> CHist (Histogram.create ()))
      with
      | CHist h -> Histogram.merge_into ~into:h src
      | _ -> kind_error name "histogram")

let reset ?(registry = default) () =
  with_lock registry (fun () -> Hashtbl.reset registry.tbl)

type value = Counter of float | Gauge of float | Hist of Histogram.t

let dump ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.fold
        (fun _ (name, labels, cell) acc ->
          let v =
            match cell with
            | CCounter r -> Counter !r
            | CGauge r -> Gauge !r
            | CHist h -> Hist (Histogram.copy h)
          in
          (name, labels, v) :: acc)
        registry.tbl []
      |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2)))

let find_histograms ?(registry = default) name =
  dump ~registry ()
  |> List.filter_map (fun (n, labels, v) ->
         match v with Hist h when n = name -> Some (labels, h) | _ -> None)

let counter_total ?(registry = default) name =
  dump ~registry ()
  |> List.fold_left
       (fun acc (n, _, v) ->
         match v with Counter c when n = name -> acc +. c | _ -> acc)
       0.

let gauge_value ?(registry = default) ?(labels = []) name =
  let labels = canon labels in
  with_lock registry (fun () ->
      match Hashtbl.find_opt registry.tbl (key name labels) with
      | Some (_, _, CGauge r) -> Some !r
      | _ -> None)

type summary = {
  s_count : int;
  s_sum : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

let summary_of h =
  { s_count = Histogram.count h;
    s_sum = Histogram.sum h;
    s_p50 = Histogram.percentile h 0.5;
    s_p90 = Histogram.percentile h 0.9;
    s_p99 = Histogram.percentile h 0.99;
    s_max = Histogram.max_value h }

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                             *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let om_escape v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let om_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let om_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> sanitize k ^ "=\"" ^ om_escape v ^ "\"") labels)
      ^ "}"

(* Labels with an extra [le] appended (histogram bucket series). *)
let om_labels_le labels le =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> sanitize k ^ "=\"" ^ om_escape v ^ "\"") labels
      @ [ "le=\"" ^ le ^ "\"" ])
  ^ "}"

let to_openmetrics ?(registry = default) () =
  let entries = dump ~registry () in
  let b = Buffer.create 1024 in
  let last_name = ref "" in
  let type_line name kind =
    if name <> !last_name then begin
      last_name := name;
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (name, labels, v) ->
      let mname = "shapmc_" ^ sanitize name in
      match v with
      | Counter c ->
          type_line mname "counter";
          Buffer.add_string b
            (Printf.sprintf "%s_total%s %s\n" mname (om_labels labels)
               (om_float c))
      | Gauge g ->
          type_line mname "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" mname (om_labels labels) (om_float g))
      | Hist h ->
          type_line mname "histogram";
          let cum = ref 0 in
          List.iter
            (fun (hi, cnt) ->
              cum := !cum + cnt;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" mname
                   (om_labels_le labels (om_float hi))
                   !cum))
            (Histogram.buckets h);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" mname
               (om_labels_le labels "+Inf") (Histogram.count h));
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" mname (om_labels labels)
               (om_float (Histogram.sum h)));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" mname (om_labels labels)
               (Histogram.count h)))
    entries;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

type om_sample = { om_name : string; om_labels : labels; om_value : float }

let om_parse_value s =
  match String.trim s with
  | "+Inf" | "Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | s -> (
      try float_of_string s
      with _ -> failwith ("parse_openmetrics: bad value " ^ s))

(* Parse the label block between '{' and '}' — a tiny scanner because
   label values may contain escaped quotes and commas. *)
let om_parse_labels s =
  let n = String.length s in
  let labels = ref [] in
  let i = ref 0 in
  while !i < n do
    let eq =
      try String.index_from s !i '='
      with Not_found -> failwith "parse_openmetrics: label missing '='"
    in
    let k = String.sub s !i (eq - !i) in
    if eq + 1 >= n || s.[eq + 1] <> '"' then
      failwith "parse_openmetrics: label value not quoted";
    let b = Buffer.create 16 in
    let j = ref (eq + 2) in
    let closed = ref false in
    while not !closed do
      if !j >= n then failwith "parse_openmetrics: unterminated label value";
      (match s.[!j] with
      | '\\' when !j + 1 < n ->
          (match s.[!j + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | c -> Buffer.add_char b c);
          incr j
      | '"' -> closed := true
      | c -> Buffer.add_char b c);
      incr j
    done;
    labels := (k, Buffer.contents b) :: !labels;
    if !j < n && s.[!j] = ',' then incr j;
    i := !j
  done;
  List.rev !labels

let parse_openmetrics text =
  let lines = String.split_on_char '\n' text in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        match String.index_opt line '{' with
        | Some lb ->
            let rb =
              try String.rindex line '}'
              with Not_found -> failwith "parse_openmetrics: missing '}'"
            in
            Some
              { om_name = String.sub line 0 lb;
                om_labels = om_parse_labels (String.sub line (lb + 1) (rb - lb - 1));
                om_value =
                  om_parse_value
                    (String.sub line (rb + 1) (String.length line - rb - 1)) }
        | None -> (
            match String.index_opt line ' ' with
            | Some sp ->
                Some
                  { om_name = String.sub line 0 sp;
                    om_labels = [];
                    om_value =
                      om_parse_value
                        (String.sub line (sp + 1) (String.length line - sp - 1)) }
            | None -> failwith ("parse_openmetrics: bad line " ^ line)))
    lines

(* ------------------------------------------------------------------ *)
(* JSON dump                                                          *)

(* JSON string escaping lives in one place: the Tiny_json serializer. *)
let json_escape = Tiny_json.escape

let json_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let to_json ?(registry = default) () =
  let entries = dump ~registry () in
  (* Group consecutive entries by name (dump is sorted). *)
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  let first_name = ref true in
  let cur = ref None in
  let close_group () =
    match !cur with None -> () | Some _ -> Buffer.add_char b ']'
  in
  List.iter
    (fun (name, labels, v) ->
      (match !cur with
      | Some n when n = name -> Buffer.add_char b ','
      | _ ->
          close_group ();
          if not !first_name then Buffer.add_char b ',';
          first_name := false;
          cur := Some name;
          Buffer.add_string b (Printf.sprintf "\"%s\":[" (json_escape name)));
      let body =
        match v with
        | Counter c ->
            Printf.sprintf "\"type\":\"counter\",\"value\":%s" (json_float c)
        | Gauge g ->
            Printf.sprintf "\"type\":\"gauge\",\"value\":%s" (json_float g)
        | Hist h ->
            let s = summary_of h in
            Printf.sprintf
              "\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s"
              s.s_count (json_float s.s_sum)
              (json_float (Histogram.min_value h))
              (json_float s.s_p50) (json_float s.s_p90) (json_float s.s_p99)
              (json_float s.s_max)
      in
      Buffer.add_string b
        (Printf.sprintf "{\"labels\":%s,%s}" (json_labels labels) body))
    entries;
  close_group ();
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Profile report                                                     *)

let label_get labels k = try Some (List.assoc k labels) with Not_found -> None

let ms s = s *. 1000.

let profile_report ?(registry = default) () =
  let entries = dump ~registry () in
  let b = Buffer.create 1024 in
  let section title = Buffer.add_string b (Printf.sprintf "== %s ==\n" title) in
  (* Phases: span self time (+ allocation when profiled). *)
  let spans =
    List.filter_map
      (fun (n, labels, v) ->
        match (n, v) with
        | "span_self_seconds", Hist h -> (
            match label_get labels "span" with
            | Some p -> Some (p, h)
            | None -> None)
        | _ -> None)
      entries
  in
  let span_alloc =
    List.filter_map
      (fun (n, labels, v) ->
        match (n, v) with
        | "span_alloc_bytes", Hist h -> (
            match label_get labels "span" with
            | Some p -> Some (p, h)
            | None -> None)
        | _ -> None)
      entries
  in
  if spans <> [] then begin
    section "Phases (self time)";
    let spans =
      List.sort
        (fun (_, h1) (_, h2) -> compare (Histogram.sum h2) (Histogram.sum h1))
        spans
    in
    Buffer.add_string b
      (Printf.sprintf "  %-44s %8s %12s %12s %14s\n" "span" "calls" "self s"
         "mean ms" "alloc bytes");
    List.iter
      (fun (p, h) ->
        let c = Histogram.count h in
        let total = Histogram.sum h in
        let mean = if c = 0 then 0. else total /. float_of_int c in
        let alloc =
          match List.assoc_opt p span_alloc with
          | Some ha -> Printf.sprintf "%14.0f" (Histogram.sum ha)
          | None -> Printf.sprintf "%14s" "-"
        in
        Buffer.add_string b
          (Printf.sprintf "  %-44s %8d %12.6f %12.4f %s\n" p c total (ms mean)
             alloc))
      spans
  end;
  (* Oracle latency by oracle / lemma / arity. *)
  let oracles =
    List.filter_map
      (fun (n, labels, v) ->
        match (n, v) with
        | "oracle_seconds", Hist h -> Some (labels, h)
        | _ -> None)
      entries
  in
  if oracles <> [] then begin
    section "Oracle latency";
    Buffer.add_string b
      (Printf.sprintf "  %-10s %-6s %-5s %8s %10s %10s %10s %10s\n" "oracle"
         "lemma" "l" "calls" "p50 ms" "p90 ms" "p99 ms" "max ms");
    List.iter
      (fun (labels, h) ->
        let g k = Option.value ~default:"-" (label_get labels k) in
        let s = summary_of h in
        Buffer.add_string b
          (Printf.sprintf "  %-10s %-6s %-5s %8d %10.4f %10.4f %10.4f %10.4f\n"
             (g "oracle") (g "lemma") (g "l") s.s_count (ms s.s_p50)
             (ms s.s_p90) (ms s.s_p99) (ms s.s_max)))
      oracles;
    (* Roll-up across every label set. *)
    let all =
      List.fold_left
        (fun acc (_, h) -> Histogram.merge acc h)
        (Histogram.create ()) oracles
    in
    let s = summary_of all in
    Buffer.add_string b
      (Printf.sprintf "  %-10s %-6s %-5s %8d %10.4f %10.4f %10.4f %10.4f\n"
         "TOTAL" "" "" s.s_count (ms s.s_p50) (ms s.s_p90) (ms s.s_p99)
         (ms s.s_max))
  end;
  (* Substitution sizes. *)
  let substs =
    List.filter_map
      (fun (n, labels, v) ->
        match (n, v) with
        | "subst_post_size", Hist h ->
            Some (Option.value ~default:"-" (label_get labels "kind"), h)
        | _ -> None)
      entries
  in
  if substs <> [] then begin
    section "Substitution sizes";
    Buffer.add_string b
      (Printf.sprintf "  %-16s %8s %8s %8s %8s\n" "kind" "count" "p50" "p99"
         "max");
    List.iter
      (fun (kind, h) ->
        let s = summary_of h in
        Buffer.add_string b
          (Printf.sprintf "  %-16s %8d %8.0f %8.0f %8.0f\n" kind s.s_count
             s.s_p50 s.s_p99 s.s_max))
      substs
  end;
  (* Gc gauges recorded by the profiling bracket. *)
  let gcs =
    List.filter_map
      (fun (n, _, v) ->
        match v with
        | Gauge g when String.length n >= 3 && String.sub n 0 3 = "gc_" ->
            Some (n, g)
        | _ -> None)
      entries
  in
  if gcs <> [] then begin
    section "Gc";
    List.iter
      (fun (n, g) ->
        Buffer.add_string b (Printf.sprintf "  %-24s %16.0f\n" n g))
      gcs
  end;
  (* Pool utilization. *)
  let pool_counter name =
    List.filter_map
      (fun (n, labels, v) ->
        match v with
        | Counter c when n = name ->
            Some (Option.value ~default:"-" (label_get labels "worker"), c)
        | _ -> None)
      entries
  in
  let busy = pool_counter "pool_worker_busy_seconds" in
  let idle = pool_counter "pool_worker_idle_seconds" in
  let tasks = pool_counter "pool_worker_tasks" in
  if busy <> [] then begin
    section "Pool";
    Buffer.add_string b
      (Printf.sprintf "  %-8s %10s %10s %8s\n" "worker" "busy s" "idle s"
         "tasks");
    List.iter
      (fun (w, bsy) ->
        let idl = Option.value ~default:0. (List.assoc_opt w idle) in
        let tsk = Option.value ~default:0. (List.assoc_opt w tasks) in
        Buffer.add_string b
          (Printf.sprintf "  %-8s %10.6f %10.6f %8.0f\n" w bsy idl tsk))
      busy;
    let busy_t = List.fold_left (fun a (_, c) -> a +. c) 0. busy in
    let idle_t = List.fold_left (fun a (_, c) -> a +. c) 0. idle in
    let util =
      if busy_t +. idle_t > 0. then busy_t /. (busy_t +. idle_t) else 1.
    in
    Buffer.add_string b
      (Printf.sprintf "  utilization %.1f%% (busy %.6fs / wall-in-pool %.6fs)\n"
         (util *. 100.) busy_t (busy_t +. idle_t));
    let waits = find_histograms ~registry "pool_job_wait_seconds" in
    match waits with
    | (_, h) :: _ when Histogram.count h > 0 ->
        let s = summary_of h in
        Buffer.add_string b
          (Printf.sprintf "  job wait: p50 %.4f ms, p99 %.4f ms, max %.4f ms\n"
             (ms s.s_p50) (ms s.s_p99) (ms s.s_max))
    | _ -> ()
  end;
  if Buffer.length b = 0 then "(no metrics recorded)\n" else Buffer.contents b
