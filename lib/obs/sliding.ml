(* Sliding-window SLO instruments, built on [Histogram] merge.

   A window is a ring of time buckets, each holding a request count, an
   error count and a latency histogram.  [observe] lands in the bucket
   of [now /. width]; a bucket whose epoch is stale is reset before
   reuse, so the ring needs no timer thread — rotation happens lazily
   on the writes and reads that touch it.  [snapshot] merges every
   bucket still inside the window (including the current partial one),
   which is exactly the associative/commutative merge the histogram
   already guarantees, so percentiles over the window cost one merge of
   at most [buckets] small histograms.

   The covered interval is (buckets-1)·width .. buckets·width seconds —
   the standard ring-buffer approximation of a true sliding window; 15
   buckets keep the quantization under 7% of the window.

   All state sits behind one mutex; [now] is injectable so tests drive
   rotation deterministically. *)

type bucket = {
  mutable b_epoch : int;
  mutable b_hist : Histogram.t;
  mutable b_requests : int;
  mutable b_errors : int;
}

type t = {
  w_width : float;  (* seconds per bucket *)
  w_buckets : bucket array;
  w_lock : Mutex.t;
}

let default_buckets = 15

let create ?(buckets = default_buckets) ~window () =
  if window <= 0. then invalid_arg "Sliding.create: window must be positive";
  let buckets = max 1 buckets in
  { w_width = window /. float_of_int buckets;
    w_buckets =
      Array.init buckets (fun _ ->
          { b_epoch = min_int;
            b_hist = Histogram.create ();
            b_requests = 0;
            b_errors = 0 });
    w_lock = Mutex.create () }

let window t = t.w_width *. float_of_int (Array.length t.w_buckets)

let locked t f =
  Mutex.lock t.w_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.w_lock) f

let epoch_of t now = int_of_float (Float.floor (now /. t.w_width))

let slot t e =
  let n = Array.length t.w_buckets in
  ((e mod n) + n) mod n

let fresh_bucket t e =
  let b = t.w_buckets.(slot t e) in
  if b.b_epoch <> e then begin
    b.b_epoch <- e;
    b.b_hist <- Histogram.create ();
    b.b_requests <- 0;
    b.b_errors <- 0
  end;
  b

let observe ?now t ~ok seconds =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  locked t (fun () ->
      let b = fresh_bucket t (epoch_of t now) in
      b.b_requests <- b.b_requests + 1;
      if not ok then b.b_errors <- b.b_errors + 1;
      Histogram.observe b.b_hist (Float.max 0. seconds))

type snapshot = {
  w_requests : int;
  w_errors : int;
  w_error_ratio : float;  (* 0. when the window is empty *)
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;  (* nan when the window is empty *)
}

let snapshot ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  locked t (fun () ->
      let e = epoch_of t now in
      let lo = e - Array.length t.w_buckets + 1 in
      let requests = ref 0 and errors = ref 0 in
      let merged = Histogram.create () in
      Array.iter
        (fun b ->
          if b.b_epoch >= lo && b.b_epoch <= e then begin
            requests := !requests + b.b_requests;
            errors := !errors + b.b_errors;
            Histogram.merge_into ~into:merged b.b_hist
          end)
        t.w_buckets;
      { w_requests = !requests;
        w_errors = !errors;
        w_error_ratio =
          (if !requests = 0 then 0.
           else float_of_int !errors /. float_of_int !requests);
        w_p50 = Histogram.percentile merged 0.5;
        w_p95 = Histogram.percentile merged 0.95;
        w_p99 = Histogram.percentile merged 0.99 })
