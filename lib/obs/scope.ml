(* A request-scoped trace collector: one bounded event buffer per
   request, carried in domain-local storage and explicitly re-installed
   across fan-out boundaries (Par.map tasks, Pool.Exec submissions).

   The global [Trace] stream is process-wide — under concurrent
   connections every request's spans interleave and nothing ties an
   oracle call back to the request that caused it.  A [Scope.t] is the
   per-request counterpart: while installed ([with_scope]), every Obs
   entry point ALSO emits into the scope, each event stamped with the
   scope's id as a ["req"] attribute, so a profile read back from the
   scope is attributable to exactly one request even when six of them
   run on four workers.

   Isolation invariants:
   - scope emission never touches the global Trace stream, ledgers or
     Metrics registry — a server running with [Obs.disable] collects
     per-request profiles with zero global state growth;
   - each scope has its OWN mutex, so two requests never contend on a
     shared lock for their events (they only share the Obs span-stack
     DLS, which is per-domain anyway);
   - the buffer is bounded ([cap]): past it events are counted in
     [dropped] but not stored, while the oracle-call aggregates stay
     exact (mirroring the Obs ledger design).

   The [live] atomic counts installed scopes process-wide; it is the
   cheap gate Obs checks before the DLS lookup, so instrumented hot
   paths outside any request pay one atomic load when scopes exist
   anywhere and one plain branch when none do. *)

type t = {
  sc_id : string;
  sc_cap : int;
  sc_lock : Mutex.t;
  sc_t0 : float;
  mutable sc_events_rev : Trace.event list;
  mutable sc_stored : int;
  mutable sc_dropped : int;
  mutable sc_seq : int;
  mutable sc_depth : int;
  mutable sc_oracle_calls : int;
  mutable sc_oracle_seconds : float;
}

let default_cap = 4096

let create ?(cap = default_cap) ~id () =
  { sc_id = id;
    sc_cap = max 0 cap;
    sc_lock = Mutex.create ();
    sc_t0 = Unix.gettimeofday ();
    sc_events_rev = [];
    sc_stored = 0;
    sc_dropped = 0;
    sc_seq = 0;
    sc_depth = 0;
    sc_oracle_calls = 0;
    sc_oracle_seconds = 0. }

let id t = t.sc_id
let started t = t.sc_t0

(* Installed scopes anywhere in the process; the fast gate. *)
let live = Atomic.make 0

let active () = Atomic.get live > 0

let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  if Atomic.get live > 0 then Domain.DLS.get current_key else None

let with_current sc f =
  match sc with
  | None -> f ()
  | Some _ ->
    let prev = Domain.DLS.get current_key in
    Domain.DLS.set current_key sc;
    Atomic.incr live;
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr live;
        Domain.DLS.set current_key prev)
      f

let with_scope sc f = with_current (Some sc) f

let locked t f =
  Mutex.lock t.sc_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sc_lock) f

let emit t ?at ?dur ?(attrs = []) ~kind name =
  let wall = match at with Some a -> a | None -> Unix.gettimeofday () in
  locked t (fun () ->
      let rel = Float.max 0. (wall -. t.sc_t0) in
      let seq = t.sc_seq in
      t.sc_seq <- seq + 1;
      (* Like [Trace]: a Span_end is recorded at its begin's depth. *)
      (match kind with
       | Trace.Span_end -> if t.sc_depth > 0 then t.sc_depth <- t.sc_depth - 1
       | _ -> ());
      let ev =
        { Trace.seq;
          at = rel;
          depth = t.sc_depth;
          kind;
          name;
          dur;
          attrs = ("req", Trace.Str t.sc_id) :: attrs }
      in
      if t.sc_stored < t.sc_cap then begin
        t.sc_events_rev <- ev :: t.sc_events_rev;
        t.sc_stored <- t.sc_stored + 1
      end
      else t.sc_dropped <- t.sc_dropped + 1;
      match kind with
      | Trace.Span_begin -> t.sc_depth <- t.sc_depth + 1
      | Trace.Oracle ->
        t.sc_oracle_calls <- t.sc_oracle_calls + 1;
        t.sc_oracle_seconds <-
          t.sc_oracle_seconds
          +. (match dur with Some d -> Float.max 0. d | None -> 0.)
      | _ -> ())

let events t = locked t (fun () -> List.rev t.sc_events_rev)
let emitted t = locked t (fun () -> t.sc_seq)
let stored t = locked t (fun () -> t.sc_stored)
let dropped t = locked t (fun () -> t.sc_dropped)
let oracle_calls t = locked t (fun () -> t.sc_oracle_calls)
let oracle_seconds t = locked t (fun () -> t.sc_oracle_seconds)
