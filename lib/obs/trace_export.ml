(* ------------------------------------------------------------------ *)
(* JSON writing primitives *)

(* JSON string escaping lives in one place: the Tiny_json serializer. *)
let quote = Tiny_json.quote

(* Round-trip float syntax: %.17g preserves every finite double, and a
   forced fraction mark keeps the value a Float on read-back.  Non-finite
   inputs must still produce valid JSON. *)
let float_str f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1.0e308"
  else if f = Float.neg_infinity then "-1.0e308"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let value_json = function
  | Trace.Int v -> string_of_int v
  | Trace.Float f -> float_str f
  | Trace.Str s -> quote s
  | Trace.Bool b -> if b then "true" else "false"

let attrs_json attrs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> quote k ^ ":" ^ value_json v) attrs)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON *)

let chrome events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
     \"args\":{\"name\":\"shapmc\"}}";
  List.iter
    (fun (e : Trace.event) ->
       let us = e.Trace.at *. 1e6 in
       let common =
         Printf.sprintf "\"name\":%s,\"pid\":1,\"tid\":1,\"ts\":%s"
           (quote e.Trace.name) (float_str us)
       in
       let args = attrs_json e.Trace.attrs in
       let ev =
         match e.Trace.kind with
         | Trace.Span_begin ->
           Printf.sprintf "{%s,\"cat\":\"span\",\"ph\":\"B\",\"args\":%s}"
             common args
         | Trace.Span_end ->
           Printf.sprintf "{%s,\"cat\":\"span\",\"ph\":\"E\"}" common
         | Trace.Oracle ->
           let dur =
             match e.Trace.dur with Some d -> d *. 1e6 | None -> 0.0
           in
           Printf.sprintf
             "{%s,\"cat\":\"oracle\",\"ph\":\"X\",\"dur\":%s,\"args\":%s}"
             common (float_str dur) args
         | Trace.Subst ->
           Printf.sprintf
             "{%s,\"cat\":\"subst\",\"ph\":\"i\",\"s\":\"t\",\"args\":%s}"
             common args
         | Trace.Phase ->
           Printf.sprintf
             "{%s,\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\",\"args\":%s}"
             common args
         | Trace.Counter ->
           Printf.sprintf "{%s,\"cat\":\"counter\",\"ph\":\"C\",\"args\":%s}"
             common args
       in
       Buffer.add_char b ',';
       Buffer.add_string b ev)
    events;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSONL *)

let event_line (e : Trace.event) =
  let fields =
    [ Printf.sprintf "\"seq\":%d" e.Trace.seq;
      Printf.sprintf "\"t\":%s" (float_str e.Trace.at);
      Printf.sprintf "\"depth\":%d" e.Trace.depth;
      Printf.sprintf "\"kind\":%s" (quote (Trace.kind_name e.Trace.kind));
      Printf.sprintf "\"name\":%s" (quote e.Trace.name) ]
    @ (match e.Trace.dur with
       | Some d -> [ Printf.sprintf "\"dur\":%s" (float_str d) ]
       | None -> [])
    @ [ Printf.sprintf "\"attrs\":%s" (attrs_json e.Trace.attrs) ]
  in
  "{" ^ String.concat "," fields ^ "}"

let jsonl events =
  String.concat "" (List.map (fun e -> event_line e ^ "\n") events)

(* Structured counterpart of [event_line], same field names and
   semantics, so [event_of_json (event_to_json e)] is [e] (with NaN
   attributes mapping to Null and back like the text path). *)
let value_to_json = function
  | Trace.Int v -> Tiny_json.Int v
  | Trace.Float f -> if Float.is_nan f then Tiny_json.Null else Tiny_json.Float f
  | Trace.Str s -> Tiny_json.Str s
  | Trace.Bool b -> Tiny_json.Bool b

let event_to_json (e : Trace.event) =
  Tiny_json.Obj
    ([ ("seq", Tiny_json.Int e.Trace.seq);
       ("t", Tiny_json.Float e.Trace.at);
       ("depth", Tiny_json.Int e.Trace.depth);
       ("kind", Tiny_json.Str (Trace.kind_name e.Trace.kind));
       ("name", Tiny_json.Str e.Trace.name) ]
     @ (match e.Trace.dur with
        | Some d -> [ ("dur", Tiny_json.Float d) ]
        | None -> [])
     @ [ ( "attrs",
           Tiny_json.Obj
             (List.map (fun (k, v) -> (k, value_to_json v)) e.Trace.attrs) )
       ])

let value_of_json = function
  | Tiny_json.Int v -> Trace.Int v
  | Tiny_json.Float f -> Trace.Float f
  | Tiny_json.Str s -> Trace.Str s
  | Tiny_json.Bool b -> Trace.Bool b
  | Tiny_json.Null -> Trace.Float Float.nan
  | _ -> failwith "Trace_export: unsupported attribute value"

let event_of_json json =
  let get name =
    match Tiny_json.member name json with
    | Some v -> v
    | None -> failwith ("Trace_export: event is missing field " ^ name)
  in
  let int_field name =
    match Tiny_json.to_int (get name) with
    | Some v -> v
    | None -> failwith ("Trace_export: field " ^ name ^ " is not an integer")
  in
  let float_field name =
    match Tiny_json.to_float (get name) with
    | Some v -> v
    | None -> failwith ("Trace_export: field " ^ name ^ " is not a number")
  in
  let str_field name =
    match Tiny_json.to_str (get name) with
    | Some v -> v
    | None -> failwith ("Trace_export: field " ^ name ^ " is not a string")
  in
  let kind =
    let k = str_field "kind" in
    match Trace.kind_of_name k with
    | Some kind -> kind
    | None -> failwith ("Trace_export: unknown event kind " ^ k)
  in
  let dur =
    match Tiny_json.member "dur" json with
    | None | Some Tiny_json.Null -> None
    | Some v -> (
        match Tiny_json.to_float v with
        | Some d -> Some d
        | None -> failwith "Trace_export: field dur is not a number")
  in
  let attrs =
    match Tiny_json.member "attrs" json with
    | None -> []
    | Some (Tiny_json.Obj fields) ->
      List.map (fun (k, v) -> (k, value_of_json v)) fields
    | Some _ -> failwith "Trace_export: field attrs is not an object"
  in
  { Trace.seq = int_field "seq";
    at = float_field "t";
    depth = int_field "depth";
    kind;
    name = str_field "name";
    dur;
    attrs }

(* A stream header carrying what the bounded in-memory buffer could not:
   how many events were emitted past the cap.  Kept OUT of {!jsonl} (so
   the event serialization round-trips exactly) and written only by
   {!write_file}; readers skip any line with a "meta" field. *)
let meta_line ~stored ~dropped =
  Printf.sprintf
    "{\"meta\":\"shapmc.trace\",\"version\":1,\"stored\":%d,\"dropped\":%d}\n"
    stored dropped

let is_meta json = Tiny_json.member "meta" json <> None

let fold_jsonl text ~meta ~event =
  let lines = String.split_on_char '\n' text in
  let _, rev =
    List.fold_left
      (fun (lineno, acc) line ->
         let trimmed = String.trim line in
         if trimmed = "" then (lineno + 1, acc)
         else
           let json =
             try Tiny_json.parse trimmed
             with Failure msg ->
               failwith (Printf.sprintf "line %d: %s" lineno msg)
           in
           if is_meta json then begin
             meta json;
             (lineno + 1, acc)
           end
           else
             let ev =
               try event_of_json json
               with Failure msg ->
                 failwith (Printf.sprintf "line %d: %s" lineno msg)
             in
             (lineno + 1, event ev :: acc))
      (1, []) lines
  in
  List.rev rev

let events_of_jsonl text =
  fold_jsonl text ~meta:(fun _ -> ()) ~event:Fun.id

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let write_file ?(dropped = 0) ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       if has_suffix ~suffix:".jsonl" path then begin
         output_string oc (meta_line ~stored:(List.length events) ~dropped);
         output_string oc (jsonl events)
       end
       else output_string oc (chrome events))

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_jsonl_file path = events_of_jsonl (read_text path)

let read_jsonl_file_full path =
  let dropped = ref 0 in
  let events =
    fold_jsonl (read_text path)
      ~meta:(fun json ->
        match Tiny_json.member "dropped" json with
        | Some v -> (
            match Tiny_json.to_int v with
            | Some d -> dropped := d
            | None -> ())
        | None -> ())
      ~event:Fun.id
  in
  (events, !dropped)

(* ------------------------------------------------------------------ *)
(* Timeline report *)

let attr_str (k, v) =
  let s =
    match v with
    | Trace.Int n -> string_of_int n
    | Trace.Float f -> Printf.sprintf "%g" f
    | Trace.Str s -> s
    | Trace.Bool b -> string_of_bool b
  in
  k ^ "=" ^ s

(* Oracle attributes get the compact [n=.. l=.. |F|=..] form; the issuing
   span path is dropped from the timeline line (it is visible from the
   indentation) to keep rows short. *)
let oracle_attr_str attrs =
  let named key label =
    match List.assoc_opt key attrs with
    | Some (Trace.Int v) -> Some (Printf.sprintf "%s=%d" label v)
    | _ -> None
  in
  let extras =
    List.filter
      (fun (k, _) -> not (List.mem k [ "n"; "l"; "size"; "span" ]))
      attrs
  in
  String.concat " "
    (List.filter_map Fun.id
       [ named "n" "n"; named "l" "l"; named "size" "|F|" ]
     @ List.map attr_str extras)

let ms s = s *. 1e3

let report ?(dropped = 0) ?(percentiles = false) events =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  if dropped > 0 then begin
    line "WARNING: %d events dropped; aggregates from ledger, timeline \
          truncated" dropped;
    line ""
  end;
  line "%6s %12s  %s" "seq" "t(ms)" "event";
  (* Span stack of (name, begin time) for end-of-span durations; streams
     truncated by the event cap may leave unmatched begins, so every pop
     is defensive. *)
  let stack = ref [] in
  let span_tot : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
  let oracle_tot : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 8 in
  (* Phase attribution: an event belongs to the most recent phase marker. *)
  let phase_order = ref [] in
  let phase_tot : (string, (int * int * float) ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let current_phase = ref "(before first phase)" in
  let bump_tbl tbl key dt =
    match Hashtbl.find_opt tbl key with
    | Some r ->
      let c, t = !r in
      r := (c + 1, t +. dt)
    | None -> Hashtbl.replace tbl key (ref (1, dt))
  in
  let phase_bump ~oracle ~dt =
    let key = !current_phase in
    let r =
      match Hashtbl.find_opt phase_tot key with
      | Some r -> r
      | None ->
        let r = ref (0, 0, 0.0) in
        Hashtbl.replace phase_tot key r;
        phase_order := key :: !phase_order;
        r
    in
    let evs, calls, secs = !r in
    r := (evs + 1, (calls + if oracle then 1 else 0), secs +. dt)
  in
  List.iter
    (fun (e : Trace.event) ->
       let indent = String.make (2 * e.Trace.depth) ' ' in
       let render =
         match e.Trace.kind with
         | Trace.Span_begin ->
           stack := (e.Trace.name, e.Trace.at) :: !stack;
           phase_bump ~oracle:false ~dt:0.0;
           Printf.sprintf "> %s" e.Trace.name
         | Trace.Span_end ->
           let dur =
             match !stack with
             | (name, t0) :: rest when name = e.Trace.name ->
               stack := rest;
               Some (e.Trace.at -. t0)
             | _ -> None
           in
           (match dur with
            | Some d ->
              bump_tbl span_tot e.Trace.name d;
              phase_bump ~oracle:false ~dt:0.0;
              Printf.sprintf "< %s  (%.3f ms)" e.Trace.name (ms d)
            | None ->
              phase_bump ~oracle:false ~dt:0.0;
              Printf.sprintf "< %s  (unmatched)" e.Trace.name)
         | Trace.Oracle ->
           let d = Option.value ~default:0.0 e.Trace.dur in
           bump_tbl oracle_tot e.Trace.name d;
           phase_bump ~oracle:true ~dt:d;
           Printf.sprintf "* oracle %s  %s  (%.3f ms)" e.Trace.name
             (oracle_attr_str e.Trace.attrs) (ms d)
         | Trace.Subst ->
           phase_bump ~oracle:false ~dt:0.0;
           Printf.sprintf "~ subst %s  %s" e.Trace.name
             (String.concat " " (List.map attr_str e.Trace.attrs))
         | Trace.Phase ->
           current_phase := e.Trace.name;
           phase_bump ~oracle:false ~dt:0.0;
           Printf.sprintf "-- phase %s %s" e.Trace.name
             (String.concat " " (List.map attr_str e.Trace.attrs))
         | Trace.Counter ->
           phase_bump ~oracle:false ~dt:0.0;
           Printf.sprintf ". %s" (String.concat " "
                                    (e.Trace.name
                                     :: List.map attr_str e.Trace.attrs))
       in
       line "%6d %12.3f  %s%s" e.Trace.seq (ms e.Trace.at) indent render)
    events;
  line "";
  line "per-phase aggregates:";
  let phases = List.rev !phase_order in
  if phases = [] then line "  (no events)"
  else begin
    line "  %-38s %8s %12s %14s" "phase" "events" "oracle-calls"
      "oracle-ms";
    List.iter
      (fun p ->
         match Hashtbl.find_opt phase_tot p with
         | Some r ->
           let evs, calls, secs = !r in
           line "  %-38s %8d %12d %14.3f" p evs calls (ms secs)
         | None -> ())
      phases
  end;
  line "";
  line "oracle totals:";
  let sorted tbl =
    List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])
  in
  (match sorted oracle_tot with
   | [] -> line "  (none)"
   | rows ->
     line "  %-28s %8s %14s" "oracle" "calls" "time-ms";
     List.iter
       (fun (name, (c, t)) -> line "  %-28s %8d %14.3f" name c (ms t))
       rows);
  (* Estimator convergence: aggregate the [estimator.checkpoint] phase
     markers emitted by Convergence monitors — last checkpoint wins for
     samples / half-width, so the row shows where the estimator ended. *)
  let est_tbl : (string, (string * int * int * float) ref) Hashtbl.t =
    Hashtbl.create 4
  in
  List.iter
    (fun (e : Trace.event) ->
       if e.Trace.kind = Trace.Phase && e.Trace.name = "estimator.checkpoint"
       then begin
         let str key =
           match List.assoc_opt key e.Trace.attrs with
           | Some (Trace.Str s) -> s
           | _ -> "-"
         and int key =
           match List.assoc_opt key e.Trace.attrs with
           | Some (Trace.Int v) -> v
           | _ -> 0
         and fl key =
           match List.assoc_opt key e.Trace.attrs with
           | Some (Trace.Float v) -> v
           | _ -> Float.nan
         in
         let est = str "estimator" in
         let row = (str "ci", int "samples", fl "max_half_width") in
         match Hashtbl.find_opt est_tbl est with
         | Some r ->
           let _, cps, _, _ = !r in
           let ci, samples, hw = row in
           r := (ci, cps + 1, samples, hw)
         | None ->
           let ci, samples, hw = row in
           Hashtbl.replace est_tbl est (ref (ci, 1, samples, hw))
       end)
    events;
  if Hashtbl.length est_tbl > 0 then begin
    line "";
    line "estimator convergence:";
    line "  %-16s %-10s %12s %10s %16s" "estimator" "ci" "checkpoints"
      "samples" "half-width";
    List.iter
      (fun (est, (ci, cps, samples, hw)) ->
         line "  %-16s %-10s %12d %10d %16.6f" est ci cps samples hw)
      (List.sort compare
         (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) est_tbl []))
  end;
  line "";
  line "span totals:";
  (match sorted span_tot with
   | [] -> line "  (none)"
   | rows ->
     line "  %-48s %8s %14s" "span" "count" "time-ms";
     List.iter
       (fun (name, (c, t)) -> line "  %-48s %8d %14.3f" name c (ms t))
       rows);
  if percentiles then begin
    (* Latency distributions rebuilt from the oracle events through the
       same log-linear histograms as the live metrics registry, grouped
       by (oracle, lemma, arity) like [oracle_seconds].  Counts equal
       the oracle totals above, so ledger, trace and metrics agree. *)
    let groups : (string * string * string, Histogram.t) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (e : Trace.event) ->
         match e.Trace.kind with
         | Trace.Oracle ->
           let lemma =
             match List.assoc_opt "lemma" e.Trace.attrs with
             | Some (Trace.Str s) -> s
             | _ -> "-"
           in
           let l =
             match List.assoc_opt "l" e.Trace.attrs with
             | Some (Trace.Int v) -> string_of_int v
             | _ -> "-"
           in
           let key = (e.Trace.name, lemma, l) in
           let h =
             match Hashtbl.find_opt groups key with
             | Some h -> h
             | None ->
               let h = Histogram.create () in
               Hashtbl.replace groups key h;
               h
           in
           Histogram.observe h (Option.value ~default:0.0 e.Trace.dur)
         | _ -> ())
      events;
    line "";
    line "oracle latency percentiles:";
    let rows =
      List.sort compare
        (Hashtbl.fold (fun k h acc -> (k, h) :: acc) groups [])
    in
    if rows = [] then line "  (none)"
    else begin
      line "  %-16s %-6s %-5s %8s %10s %10s %10s %10s" "oracle" "lemma" "l"
        "calls" "p50-ms" "p90-ms" "p99-ms" "max-ms";
      let total = Histogram.create () in
      List.iter
        (fun ((name, lemma, l), h) ->
           Histogram.merge_into ~into:total h;
           line "  %-16s %-6s %-5s %8d %10.4f %10.4f %10.4f %10.4f" name
             lemma l (Histogram.count h)
             (ms (Histogram.percentile h 0.5))
             (ms (Histogram.percentile h 0.9))
             (ms (Histogram.percentile h 0.99))
             (ms (Histogram.max_value h)))
        rows;
      line "  %-16s %-6s %-5s %8d %10.4f %10.4f %10.4f %10.4f" "TOTAL" ""
        "" (Histogram.count total)
        (ms (Histogram.percentile total 0.5))
        (ms (Histogram.percentile total 0.9))
        (ms (Histogram.percentile total 0.99))
        (ms (Histogram.max_value total))
    end
  end;
  Buffer.contents b
