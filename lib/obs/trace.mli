(** Bounded chronological event stream — the raw material of a trace.

    Where {!Obs} keeps {e aggregates} (how many oracle calls, how much
    time per span), [Trace] keeps the {e chronology}: one event per span
    begin/end, oracle consultation, substitution, pipeline phase marker
    and counter update, each stamped with a monotone sequence number, a
    timestamp relative to {!start}, and the span-nesting depth at which
    it happened.  A recorded stream can be exported to Chrome
    [trace_event] JSON (Perfetto) or compact JSONL by {!Trace_export}.

    The stream is bounded: once [cap] events (default {!default_cap})
    have been stored, further events are counted in {!dropped} but not
    kept, so tracing a long benchmark run cannot grow memory without
    bound.  The kept prefix stays chronological.

    Like {!Obs}, all state is global and recording is off by default.
    Emission entry points check {!recording} first, so instrumented
    paths pay one load + branch when tracing is off.  [Trace] is
    deliberately independent of [Obs] (no cycle): [Obs] forwards its
    instrumentation points here when a trace is being recorded. *)

(** Attribute values carried by events. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type kind =
  | Span_begin  (** a {!Obs.with_span} region opened *)
  | Span_end  (** the matching region closed *)
  | Oracle  (** one counting/Shapley/PQE-oracle consultation *)
  | Subst  (** one OR/AND-substitution (Lemma 9 witness) *)
  | Phase  (** an instant pipeline-phase marker *)
  | Counter  (** a named counter reached a new total *)

type event = {
  seq : int;  (** monotone sequence number, starting at 0 *)
  at : float;  (** seconds since {!start} (clamped to be [>= 0]) *)
  depth : int;  (** span-nesting depth; [Span_end] is recorded at the
                    depth of its matching [Span_begin] *)
  kind : kind;
  name : string;  (** span/oracle/phase/counter name or subst kind *)
  dur : float option;  (** wall-clock duration in seconds ([Oracle]
                           events; [None] elsewhere) *)
  attrs : (string * value) list;  (** key/value payload, e.g. [n], [l],
                                      [size], [lemma] on oracle events *)
}

val kind_name : kind -> string
(** Stable lowercase name ("span_begin", "oracle", ...) used by the
    export formats. *)

val kind_of_name : string -> kind option

(** {1 Recording} *)

val default_cap : int
(** 65536 events. *)

val start : ?cap:int -> unit -> unit
(** [start ()] clears any previous stream, stamps time zero and begins
    recording at most [cap] events. *)

val stop : unit -> unit
(** Stop recording; the stream stays readable until the next {!start}
    or {!clear}. *)

val recording : unit -> bool
val clear : unit -> unit

(** {1 Emission}

    All emitters are no-ops unless {!recording}. *)

val emit :
  ?at:float -> ?dur:float -> ?attrs:(string * value) list -> kind:kind ->
  string -> unit
(** [emit ~kind name] records one event.  [at] is an absolute
    [Unix.gettimeofday] stamp (defaults to now) converted to
    trace-relative seconds; pass the start time of a timed region so
    the event sits where the work began. *)

val span_begin : ?attrs:(string * value) list -> string -> unit
val span_end : ?attrs:(string * value) list -> string -> unit
val oracle :
  ?at:float -> dur:float -> ?attrs:(string * value) list -> string -> unit
val subst : ?attrs:(string * value) list -> string -> unit
val phase : ?attrs:(string * value) list -> string -> unit
val counter : value:int -> string -> unit

(** {1 Read-back} *)

val events : unit -> event list
(** Stored events in chronological order. *)

val emitted : unit -> int
(** Total events emitted since {!start}, including dropped ones. *)

val dropped : unit -> int
(** Events discarded because the stream was full. *)
