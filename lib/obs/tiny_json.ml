type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Recursive-descent parser over a string with one index of state. *)

let fail pos msg = failwith (Printf.sprintf "Tiny_json: %s at offset %d" msg pos)

let utf8_of_code b code =
  (* Encode one Unicode scalar value as UTF-8 into buffer [b]. *)
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while
      !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect c =
    if !i < n && s.[!i] = c then incr i
    else fail !i (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin
      i := !i + l;
      v
    end
    else fail !i ("expected " ^ word)
  in
  let hex4 () =
    if !i + 4 > n then fail !i "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !i 4) in
    i := !i + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail !i "unterminated string";
      match s.[!i] with
      | '"' -> incr i
      | '\\' ->
        incr i;
        if !i >= n then fail !i "unterminated escape";
        (match s.[!i] with
         | '"' -> Buffer.add_char b '"'; incr i
         | '\\' -> Buffer.add_char b '\\'; incr i
         | '/' -> Buffer.add_char b '/'; incr i
         | 'b' -> Buffer.add_char b '\b'; incr i
         | 'f' -> Buffer.add_char b '\012'; incr i
         | 'n' -> Buffer.add_char b '\n'; incr i
         | 'r' -> Buffer.add_char b '\r'; incr i
         | 't' -> Buffer.add_char b '\t'; incr i
         | 'u' ->
           incr i;
           let code = hex4 () in
           (* Surrogate pair: a high surrogate must be followed by a
              \uXXXX low surrogate. *)
           let code =
             if code >= 0xD800 && code <= 0xDBFF then begin
               if !i + 2 <= n && s.[!i] = '\\' && s.[!i + 1] = 'u' then begin
                 i := !i + 2;
                 let low = hex4 () in
                 if low >= 0xDC00 && low <= 0xDFFF then
                   0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
                 else fail !i "invalid low surrogate"
               end
               else fail !i "lone high surrogate"
             end
             else code
           in
           utf8_of_code b code
         | c -> fail !i (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c when Char.code c < 32 -> fail !i "raw control character in string"
      | c ->
        Buffer.add_char b c;
        incr i;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !i in
    if peek () = Some '-' then incr i;
    let is_float = ref false in
    while
      !i < n
      && (match s.[!i] with
          | '0' .. '9' -> true
          | '.' | 'e' | 'E' | '+' | '-' ->
            is_float := true;
            true
          | _ -> false)
    do
      incr i
    done;
    let tok = String.sub s start (!i - start) in
    if tok = "" || tok = "-" then fail start "expected a number";
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some v -> Int v
      | None -> (
          (* Integer syntax beyond the 63-bit range. *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail start ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !i "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr i;
      skip_ws ();
      if peek () = Some '}' then begin
        incr i;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr i;
            members ()
          | Some '}' -> incr i
          | _ -> fail !i "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr i;
      skip_ws ();
      if peek () = Some ']' then begin
        incr i;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr i;
            elements ()
          | Some ']' -> incr i
          | _ -> fail !i "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then fail !i "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Failure _ -> None

(* ------------------------------------------------------------------ *)
(* Printing.  The inverse of [parse] up to non-finite floats (which
   JSON cannot represent; they print as null). *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  escape_into b s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

(* Shortest decimal form that reads back as the same float, forced to
   contain '.' or an exponent so it parses as [Float] again. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else
    let s =
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
    | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        l;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int v -> Some v
  | Float f when Float.is_integer f && Float.abs f < 4.611686018427388e18 ->
    Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int v -> Some (float_of_int v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
