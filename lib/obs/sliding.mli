(** Sliding-window SLO instruments: rolling request/error counts and
    latency percentiles over the last N seconds, built on {!Histogram}
    merge.

    A lazily-rotated ring of time buckets (no timer thread); the
    covered interval is between (buckets−1)·width and buckets·width
    seconds, the usual ring approximation of a true sliding window.
    Domain-safe behind one mutex; [now] is injectable everywhere so
    tests drive rotation deterministically. *)

type t

val default_buckets : int
(** 15 — quantization error under 7% of the window. *)

(** [create ~window ()] covers the trailing [window] seconds.
    @raise Invalid_argument when [window <= 0]. *)
val create : ?buckets:int -> window:float -> unit -> t

(** The configured window in seconds. *)
val window : t -> float

(** [observe t ~ok seconds] records one request outcome ([ok = false]
    counts as an error) with its latency. *)
val observe : ?now:float -> t -> ok:bool -> float -> unit

type snapshot = {
  w_requests : int;
  w_errors : int;
  w_error_ratio : float;  (** [0.] when the window is empty *)
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;  (** [nan] when the window is empty *)
}

val snapshot : ?now:float -> t -> snapshot
