(** A minimal JSON reader.

    Just enough JSON to read back what this codebase writes — trace
    JSONL lines, Chrome [trace_event] exports, [BENCH_results.json] —
    without an external dependency.  Numbers without a fraction or
    exponent part parse as {!Int} (falling back to {!Float} past the
    63-bit range); everything else follows RFC 8259, including
    [\uXXXX] escapes (decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> t
(** Parse one JSON document; trailing whitespace is allowed, trailing
    garbage is not.  @raise Failure with a position on malformed
    input. *)

val parse_opt : string -> t option

(** {1 Printing} — the escaping-correct serializer every exporter and
    the HTTP server route their JSON through. *)

val to_string : t -> string
(** Minified serialization.  [parse (to_string v) = v] for every value
    whose floats are finite: strings escape the double quote, [\\] and all control
    characters (named escapes for [\n]/[\t]/[\r], [\uXXXX] otherwise)
    and pass non-ASCII bytes through untouched; an integral {!Float}
    prints with a trailing [.0] so it reads back as {!Float}, not
    {!Int}.  Non-finite floats have no JSON representation and print as
    [null]. *)

val quote : string -> string
(** [quote s] is [s] as a JSON string literal, escaped as in
    {!to_string} — for exporters that assemble documents piecewise. *)

val escape : string -> string
(** [quote] without the surrounding double quotes. *)

(** {1 Accessors} — total lookups returning [option]. *)

val member : string -> t -> t option
(** Field of an {!Obj}; [None] on missing field or non-object. *)

val to_int : t -> int option
(** {!Int} directly; an integral {!Float} also converts. *)

val to_float : t -> float option
(** {!Float} or {!Int}. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
