(* Log-linear histogram: one bucket array indexed by (binade, sub-bucket).

   For v > 0, [frexp v = (m, e)] with m in [0.5, 1), so v lies in
   [2^(e-1), 2^e).  Each binade is split into [sub] equal linear
   sub-buckets, so the bucket width is 2^(e-1)/sub and the midpoint
   approximation has relative error <= 1/(2*sub).  Exponents are
   clamped to [e_min, e_max]; with e_min = -30 that covers ~1ns
   latencies, with e_max = 37 it covers ~1.4e11 (sizes, bytes). *)

let sub = 8
let e_min = -30
let e_max = 37
let binades = e_max - e_min + 1
let num_buckets = binades * sub

type t = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_zero : int;  (* observations <= 0 (and NaN, clamped) *)
  counts : int array;
}

let create () =
  { h_count = 0;
    h_sum = 0.;
    h_min = infinity;
    h_max = neg_infinity;
    h_zero = 0;
    counts = Array.make num_buckets 0 }

let copy t = { t with counts = Array.copy t.counts }

let bucket_index v =
  if not (v > 0.) then -1
  else
    let m, e = Float.frexp v in
    if e < e_min then 0
    else if e > e_max then num_buckets - 1
    else (e - e_min) * sub + int_of_float ((m -. 0.5) *. 2. *. float_of_int sub)

let bucket_bounds i =
  let e = e_min + (i / sub) and s = i mod sub in
  let lo = Float.ldexp (1. +. (float_of_int s /. float_of_int sub)) (e - 1) in
  let hi = Float.ldexp (1. +. (float_of_int (s + 1) /. float_of_int sub)) (e - 1) in
  (lo, hi)

let observe t v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  t.h_count <- t.h_count + 1;
  t.h_sum <- t.h_sum +. v;
  if v < t.h_min then t.h_min <- v;
  if v > t.h_max then t.h_max <- v;
  if v = 0. then t.h_zero <- t.h_zero + 1
  else
    let i = bucket_index v in
    t.counts.(i) <- t.counts.(i) + 1

let count t = t.h_count
let sum t = t.h_sum
let min_value t = if t.h_count = 0 then nan else t.h_min
let max_value t = if t.h_count = 0 then nan else t.h_max

let merge_into ~into src =
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- into.h_sum +. src.h_sum;
  if src.h_count > 0 then begin
    if src.h_min < into.h_min then into.h_min <- src.h_min;
    if src.h_max > into.h_max then into.h_max <- src.h_max
  end;
  into.h_zero <- into.h_zero + src.h_zero;
  for i = 0 to num_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done

let merge a b =
  let t = copy a in
  merge_into ~into:t b;
  t

let clamp t v =
  let v = if v < t.h_min then t.h_min else v in
  if v > t.h_max then t.h_max else v

let percentile t q =
  if t.h_count = 0 then nan
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int t.h_count)) in
    let rank = if rank < 1 then 1 else if rank > t.h_count then t.h_count else rank in
    if rank <= t.h_zero then clamp t 0.
    else begin
      let acc = ref t.h_zero and result = ref t.h_max in
      (try
         for i = 0 to num_buckets - 1 do
           acc := !acc + t.counts.(i);
           if !acc >= rank then begin
             let lo, hi = bucket_bounds i in
             result := clamp t ((lo +. hi) /. 2.);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  end

let buckets t =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      let _, hi = bucket_bounds i in
      acc := (hi, t.counts.(i)) :: !acc
  done;
  if t.h_zero > 0 then (0., t.h_zero) :: !acc else !acc
