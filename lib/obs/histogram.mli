(** Log-linear (HDR-style) histograms for latency / size distributions.

    Values are bucketed by binary exponent (via [frexp]) with a fixed
    number of linear sub-buckets per power-of-two binade, giving a
    bounded relative error (<= 1/(2*sub_buckets) = 6.25% at the default
    8 sub-buckets) over a huge dynamic range (2^-30 .. 2^37) with a
    small, fixed memory footprint (~540 int buckets).

    Histograms are single-writer structures: build one per domain /
    worker without locks, then {!merge_into} a shared one under the
    owner's lock.  Merge is associative and commutative on counts.

    Negative and NaN observations are counted into the zero bucket
    (they only arise from clock anomalies; we keep the count exact and
    the sum clamped). *)

type t

val create : unit -> t

val copy : t -> t

(** [observe t v] adds one observation. O(1), no allocation. *)
val observe : t -> float -> unit

val count : t -> int

val sum : t -> float

(** Smallest / largest observed value; [nan] when empty. *)
val min_value : t -> float

val max_value : t -> float

(** [merge a b] is a fresh histogram with the observations of both. *)
val merge : t -> t -> t

(** [merge_into ~into src] adds [src]'s observations to [into]. *)
val merge_into : into:t -> t -> unit

(** [percentile t q] for [q] in [0,1]: the value at rank
    [ceil (q * count)] (1-based), approximated by its bucket midpoint
    and clamped to [[min_value, max_value]].  [nan] when empty.  The
    result is guaranteed to fall in the same bucket as the exact
    rank-statistic of the observed multiset. *)
val percentile : t -> float -> float

(** Non-empty buckets as [(upper_bound, count)] in increasing bound
    order, for exposition formats.  The zero bucket reports upper
    bound 0. *)
val buckets : t -> (float * int) list

(** Total number of addressable buckets (for tests / documentation). *)
val num_buckets : int

(** [bucket_index v] — index of the bucket [v] falls into (tests). *)
val bucket_index : float -> int

(** Inclusive-lower / exclusive-upper value range of bucket [i]. *)
val bucket_bounds : int -> float * float
