(** Request-scoped trace collection.

    The global {!Trace} stream is process-wide: under concurrent
    requests every connection's spans and oracle calls interleave.  A
    [Scope.t] is a bounded, mutex-guarded event buffer owned by one
    request.  While installed ({!with_scope}) — in domain-local storage,
    explicitly re-propagated by [Par.map] and [Pool.Exec.submit] — every
    [Obs] entry point additionally emits into it, each event stamped
    with the scope id as a [("req", Str id)] attribute.

    Scope emission is independent of {!Obs.enabled} and never touches
    the global stream, ledgers or {!Metrics.default}: a server running
    with observation off still collects per-request profiles, and two
    concurrent requests never contend on a shared lock for their
    events.  Events use the {!Trace.event} type, so all the existing
    export tooling ({!Trace_export.chrome}, [jsonl], [report]) applies
    to a single request's buffer unchanged.

    Past [cap] events, new ones are counted in {!dropped} but not
    stored; the oracle aggregates ({!oracle_calls},
    {!oracle_seconds}) stay exact, mirroring the Obs ledger design. *)

type t

val default_cap : int
(** 4096 events. *)

(** [create ~id ()] is an empty scope whose clock starts now; [cap]
    bounds the stored events (default {!default_cap}; [0] keeps only
    aggregates). *)
val create : ?cap:int -> id:string -> unit -> t

val id : t -> string

(** Wall-clock stamp of {!create}; event times are relative to it. *)
val started : t -> float

(** {1 Installation} *)

(** [with_scope sc f] runs [f ()] with [sc] installed as this domain's
    current scope, restoring the previous one afterwards (also on
    raise).  Nesting installs the inner scope only. *)
val with_scope : t -> (unit -> 'a) -> 'a

(** [with_current c f] re-installs a captured {!current} inside a
    worker ([None] is exactly [f ()]) — the fan-out propagation hook. *)
val with_current : t option -> (unit -> 'a) -> 'a

(** This domain's installed scope, if any.  Capture it before handing
    work to another domain, re-install there with {!with_current}. *)
val current : unit -> t option

(** Is any scope installed anywhere in the process?  One atomic load —
    the cheap gate instrumentation checks before the DLS lookup. *)
val active : unit -> bool

(** {1 Emission} (called by [Obs]; [at] is an absolute wall stamp) *)

val emit :
  t ->
  ?at:float ->
  ?dur:float ->
  ?attrs:(string * Trace.value) list ->
  kind:Trace.kind ->
  string ->
  unit

(** {1 Read-back} *)

(** Stored events in chronological order, every one carrying the
    [("req", Str id)] attribute. *)
val events : t -> Trace.event list

(** Events emitted (stored + dropped). *)
val emitted : t -> int

val stored : t -> int
val dropped : t -> int

(** Exact oracle-call aggregates (also past the cap). *)
val oracle_calls : t -> int

val oracle_seconds : t -> float
