type value = Int of int | Float of float | Str of string | Bool of bool

type kind = Span_begin | Span_end | Oracle | Subst | Phase | Counter

type event = {
  seq : int;
  at : float;
  depth : int;
  kind : kind;
  name : string;
  dur : float option;
  attrs : (string * value) list;
}

let kind_name = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Oracle -> "oracle"
  | Subst -> "subst"
  | Phase -> "phase"
  | Counter -> "counter"

let kind_of_name = function
  | "span_begin" -> Some Span_begin
  | "span_end" -> Some Span_end
  | "oracle" -> Some Oracle
  | "subst" -> Some Subst
  | "phase" -> Some Phase
  | "counter" -> Some Counter
  | _ -> None

let default_cap = 65536

(* Events are prepended and reversed on read-back; [stored] tracks the
   list length so the cap check is O(1).

   Domain safety: all stream state is guarded by one [lock], so [seq]
   stays strictly monotone and the event list never tears when pool
   workers record concurrently ([--jobs]).  [recording_flag] is read
   outside the lock as a cheap gate (like [Obs.enabled]); it is only
   toggled outside parallel regions.  Under concurrent emission, [depth]
   reflects the global begin/end balance — exact whenever recording is
   sequential (the default [jobs = 1]), best-effort otherwise. *)
let recording_flag = ref false
let cap = ref default_cap
let events_rev : event list ref = ref []
let stored = ref 0
let dropped_n = ref 0
let seq_next = ref 0
let depth_now = ref 0
let t0 = ref 0.0

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let now = Unix.gettimeofday

let recording () = !recording_flag

let clear () =
  locked (fun () ->
      recording_flag := false;
      events_rev := [];
      stored := 0;
      dropped_n := 0;
      seq_next := 0;
      depth_now := 0)

let start ?cap:(c = default_cap) () =
  clear ();
  locked (fun () ->
      cap := max 0 c;
      t0 := now ();
      recording_flag := true)

let stop () = recording_flag := false

let emitted () = locked (fun () -> !seq_next)
let dropped () = locked (fun () -> !dropped_n)
let events () = List.rev (locked (fun () -> !events_rev))

let push ev =
  if !stored < !cap then begin
    events_rev := ev :: !events_rev;
    incr stored
  end
  else incr dropped_n

let emit ?at ?dur ?(attrs = []) ~kind name =
  if !recording_flag then begin
    let wall = match at with Some t -> t | None -> now () in
    locked (fun () ->
        let t = wall -. !t0 in
        let t = if t < 0.0 then 0.0 else t in
        let seq = !seq_next in
        incr seq_next;
        (* A Span_end is recorded at the depth of its matching begin. *)
        (match kind with
         | Span_end -> if !depth_now > 0 then decr depth_now
         | _ -> ());
        push { seq; at = t; depth = !depth_now; kind; name; dur; attrs };
        match kind with Span_begin -> incr depth_now | _ -> ())
  end

let span_begin ?attrs name = emit ?attrs ~kind:Span_begin name
let span_end ?attrs name = emit ?attrs ~kind:Span_end name

let oracle ?at ~dur ?attrs name = emit ?at ~dur ?attrs ~kind:Oracle name

let subst ?attrs name = emit ?attrs ~kind:Subst name
let phase ?attrs name = emit ?attrs ~kind:Phase name
let counter ~value name = emit ~attrs:[ ("value", Int value) ] ~kind:Counter name
