(* Estimator convergence telemetry: streaming per-player moments,
   selectable confidence intervals, and a bounded checkpoint stream
   fanned into Trace / Scope / Metrics / JSONL.  See convergence.mli. *)

type ci = Hoeffding | Clt | Bernstein

let ci_of_string = function
  | "hoeffding" -> Some Hoeffding
  | "clt" -> Some Clt
  | "bernstein" -> Some Bernstein
  | _ -> None

let ci_name = function
  | Hoeffding -> "hoeffding"
  | Clt -> "clt"
  | Bernstein -> "bernstein"

type checkpoint = {
  k_index : int;
  k_samples : int;
  k_max_half_width : float;
  k_mean_half_width : float;
  k_max_variance : float;
  k_at : float;
}

(* Acklam's rational approximation to the inverse normal CDF.  Three
   regimes (lower tail / central / upper tail); |relative error| is
   below 1.2e-8 over (0, 1), far tighter than any δ a caller will pass. *)
let z_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Convergence.z_quantile: p outside (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02;
       -2.759285104469687e+02; 1.383577518672690e+02;
       -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02;
       -1.556989798598866e+02; 6.680131188771972e+01;
       -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01;
       -2.400758277161838e+00; -2.549732539343734e+00;
       4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01;
       2.445134137142996e+00; 3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let tail q sign =
    let n =
      ((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
    and m =
      (((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0
    in
    sign *. n /. m
  in
  if p < p_low then tail (sqrt (-2.0 *. log p)) 1.0
  else if p > 1.0 -. p_low then tail (sqrt (-2.0 *. log (1.0 -. p))) (-1.0)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    let n =
      ((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
      *. r
      +. a.(5)
    and m =
      ((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
      *. r
      +. 1.0
    in
    q *. n /. m

let hw_of ~ci ~delta ~range ~count ~variance =
  if count <= 0 then infinity
  else
    let m = float_of_int count in
    match ci with
    | Hoeffding -> range *. sqrt (log (2.0 /. delta) /. (2.0 *. m))
    | Clt ->
        if count < 2 then infinity
        else z_quantile (1.0 -. (delta /. 2.0)) *. sqrt (variance /. m)
    | Bernstein ->
        if count < 2 then infinity
        else
          let l = log (3.0 /. delta) in
          sqrt (2.0 *. variance *. l /. m) +. (3.0 *. range *. l /. m)

(* One player's Welford accumulator: count, running mean, and m2 = sum
   of squared deviations from the mean. *)
type player = {
  mutable p_count : int;
  mutable p_mean : float;
  mutable p_m2 : float;
  mutable p_best_hw : float;  (* running-min envelope, checkpoint-stamped *)
}

type t = {
  c_estimator : string;
  c_players : player array;
  c_ci : ci;
  c_delta : float;
  c_range : float;
  c_interval : int;
  c_cap : int;
  c_jsonl : out_channel option;
  c_started : float;
  c_lock : Mutex.t;
  mutable c_samples : int;
  mutable c_last_cp_samples : int;  (* sample count at last checkpoint *)
  mutable c_emitted : int;
  mutable c_stored : checkpoint list;  (* reverse chronological *)
  mutable c_finished : bool;
}

let default_interval = 512
let default_cap = 4096

let create ?(ci = Bernstein) ?(delta = 0.05) ?(range = 2.0)
    ?(interval = default_interval) ?(cap = default_cap) ?jsonl ~estimator
    ~players () =
  if players <= 0 then invalid_arg "Convergence.create: players <= 0";
  if interval <= 0 then invalid_arg "Convergence.create: interval <= 0";
  if not (range > 0.0) then invalid_arg "Convergence.create: range <= 0";
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Convergence.create: delta outside (0, 1)";
  {
    c_estimator = estimator;
    c_players =
      Array.init players (fun _ ->
          { p_count = 0; p_mean = 0.0; p_m2 = 0.0; p_best_hw = infinity });
    c_ci = ci;
    c_delta = delta;
    c_range = range;
    c_interval = interval;
    c_cap = max 0 cap;
    c_jsonl = jsonl;
    c_started = Unix.gettimeofday ();
    c_lock = Mutex.create ();
    c_samples = 0;
    c_last_cp_samples = -1;
    c_emitted = 0;
    c_stored = [];
    c_finished = false;
  }

let estimator t = t.c_estimator
let players t = Array.length t.c_players
let ci t = t.c_ci
let delta t = t.c_delta

let with_lock t f =
  Mutex.lock t.c_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.c_lock) f

let variance_of p =
  if p.p_count < 2 then 0.0 else p.p_m2 /. float_of_int (p.p_count - 1)

let instant_hw t p =
  hw_of ~ci:t.c_ci ~delta:t.c_delta ~range:t.c_range ~count:p.p_count
    ~variance:(variance_of p)

let observe t ~player x =
  with_lock t (fun () ->
      let p = t.c_players.(player) in
      p.p_count <- p.p_count + 1;
      let d = x -. p.p_mean in
      p.p_mean <- p.p_mean +. (d /. float_of_int p.p_count);
      p.p_m2 <- p.p_m2 +. (d *. (x -. p.p_mean)))

let merge_moments t ~player ~count ~mean ~m2 =
  if count < 0 then invalid_arg "Convergence.merge_moments: count < 0";
  if count > 0 then
    with_lock t (fun () ->
        let p = t.c_players.(player) in
        if p.p_count = 0 then begin
          p.p_count <- count;
          p.p_mean <- mean;
          p.p_m2 <- m2
        end
        else begin
          (* Chan et al. pairwise combination of exact moments. *)
          let na = float_of_int p.p_count
          and nb = float_of_int count in
          let n = na +. nb in
          let d = mean -. p.p_mean in
          p.p_m2 <- p.p_m2 +. m2 +. (d *. d *. na *. nb /. n);
          p.p_mean <- p.p_mean +. (d *. nb /. n);
          p.p_count <- p.p_count + count
        end)

(* Fan one checkpoint into every sink.  Called under the lock. *)
let emit_checkpoint t =
  let n = Array.length t.c_players in
  let max_hw = ref 0.0
  and sum_hw = ref 0.0
  and max_var = ref 0.0 in
  Array.iter
    (fun p ->
      let hw = instant_hw t p in
      if hw < p.p_best_hw then p.p_best_hw <- hw;
      if p.p_best_hw > !max_hw then max_hw := p.p_best_hw;
      sum_hw := !sum_hw +. p.p_best_hw;
      let v = variance_of p in
      if v > !max_var then max_var := v)
    t.c_players;
  let cp =
    {
      k_index = t.c_emitted;
      k_samples = t.c_samples;
      k_max_half_width = !max_hw;
      k_mean_half_width = !sum_hw /. float_of_int n;
      k_max_variance = !max_var;
      k_at = Unix.gettimeofday () -. t.c_started;
    }
  in
  t.c_emitted <- t.c_emitted + 1;
  if t.c_emitted <= t.c_cap then t.c_stored <- cp :: t.c_stored;
  let delta_samples =
    t.c_samples - max 0 t.c_last_cp_samples
  in
  t.c_last_cp_samples <- t.c_samples;
  let labels = [ ("estimator", t.c_estimator) ] in
  if delta_samples > 0 then
    Metrics.inc ~labels ~by:(float_of_int delta_samples) "estimator_samples";
  Metrics.inc ~labels "estimator_checkpoints";
  if cp.k_max_half_width < infinity then
    Metrics.set ~labels "estimator_ci_half_width" cp.k_max_half_width;
  let attrs =
    [
      ("estimator", Trace.Str t.c_estimator);
      ("ci", Trace.Str (ci_name t.c_ci));
      ("samples", Trace.Int cp.k_samples);
      ("checkpoint", Trace.Int cp.k_index);
      ("max_half_width", Trace.Float cp.k_max_half_width);
      ("mean_half_width", Trace.Float cp.k_mean_half_width);
      ("max_variance", Trace.Float cp.k_max_variance);
    ]
  in
  Trace.phase ~attrs "estimator.checkpoint";
  (match Scope.current () with
  | Some sc -> Scope.emit sc ~attrs ~kind:Trace.Phase "estimator.checkpoint"
  | None -> ());
  (match t.c_jsonl with
  | Some oc ->
      (* No wall-clock stamps: the line is a pure function of the sample
         stream, so replayed runs (and -j1 vs -j4) diff bit-identically. *)
      let fl x =
        if x = infinity then "null" else Printf.sprintf "%.17g" x
      in
      let vars =
        Array.to_list t.c_players
        |> List.map (fun p -> fl (variance_of p))
        |> String.concat ","
      in
      Printf.fprintf oc
        "{\"estimator\":%S,\"ci\":%S,\"checkpoint\":%d,\"samples\":%d,\
         \"max_half_width\":%s,\"mean_half_width\":%s,\"max_variance\":%s,\
         \"players\":%d,\"variance\":[%s]}\n"
        t.c_estimator (ci_name t.c_ci) cp.k_index cp.k_samples
        (fl cp.k_max_half_width)
        (fl cp.k_mean_half_width)
        (fl cp.k_max_variance) n vars;
      flush oc
  | None -> ())

let advance t k =
  if k < 0 then invalid_arg "Convergence.advance: negative"
  else if k > 0 then
    with_lock t (fun () ->
        let before = t.c_samples / t.c_interval in
        t.c_samples <- t.c_samples + k;
        if t.c_samples / t.c_interval > before then emit_checkpoint t)

let checkpoint t = with_lock t (fun () -> emit_checkpoint t)

let finish t =
  with_lock t (fun () ->
      if not t.c_finished then begin
        t.c_finished <- true;
        if t.c_samples > t.c_last_cp_samples then emit_checkpoint t;
        Metrics.observe
          ~labels:[ ("estimator", t.c_estimator) ]
          "estimator_seconds"
          (Unix.gettimeofday () -. t.c_started);
        match t.c_jsonl with Some oc -> flush oc | None -> ()
      end)

let samples t = with_lock t (fun () -> t.c_samples)
let mean t ~player = with_lock t (fun () -> t.c_players.(player).p_mean)
let variance t ~player =
  with_lock t (fun () -> variance_of t.c_players.(player))

let half_width t ~player =
  with_lock t (fun () -> instant_hw t t.c_players.(player))

let certified_half_width t ~player =
  with_lock t (fun () -> t.c_players.(player).p_best_hw)

let max_certified_half_width t =
  with_lock t (fun () ->
      Array.fold_left
        (fun acc p -> if p.p_best_hw > acc then p.p_best_hw else acc)
        0.0 t.c_players)

let checkpoints t = with_lock t (fun () -> List.rev t.c_stored)
let emitted t = with_lock t (fun () -> t.c_emitted)
