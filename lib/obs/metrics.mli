(** Metrics registry: counters, gauges and {!Histogram}s keyed by
    name + labels, with OpenMetrics / JSON text exports and percentile
    queries.

    A registry is a mutex-guarded table; every operation is domain-safe
    and O(1) amortized.  Workers that observe at high frequency should
    build a local {!Histogram} without locks and {!merge_histogram} it
    once at the end.

    Metric names use [snake_case] with a unit suffix ([_seconds],
    [_bytes]); labels are [(key, value)] pairs, canonicalized by
    sorting on key.  Well-known names produced by the instrumentation
    layer: [oracle_seconds{oracle,lemma,l}], [span_self_seconds{span}],
    [span_alloc_bytes{span}], [subst_post_size{kind}],
    [pool_worker_busy_seconds{worker}], [pool_worker_idle_seconds{worker}],
    [pool_task_seconds], [pool_job_wait_seconds], [gc_allocated_bytes]. *)

type registry

type labels = (string * string) list

(** The process-wide registry used by [Obs] forwarding. *)
val default : registry

val create : unit -> registry

(** [inc name] adds [by] (default [1.]) to counter [name]/[labels],
    creating it at zero first.  Raises [Invalid_argument] if the key
    already holds a different metric kind. *)
val inc : ?registry:registry -> ?labels:labels -> ?by:float -> string -> unit

(** [set name v] sets gauge [name]/[labels] to [v]. *)
val set : ?registry:registry -> ?labels:labels -> string -> float -> unit

(** [observe name v] records [v] into histogram [name]/[labels]. *)
val observe : ?registry:registry -> ?labels:labels -> string -> float -> unit

(** [merge_histogram name h] merges a locally-built histogram into
    histogram [name]/[labels] under the registry lock (one lock
    acquisition for the whole batch). *)
val merge_histogram :
  ?registry:registry -> ?labels:labels -> string -> Histogram.t -> unit

(** Drop every metric. *)
val reset : ?registry:registry -> unit -> unit

type value = Counter of float | Gauge of float | Hist of Histogram.t

(** Snapshot of the registry, sorted by (name, labels).  Histograms are
    copied, so the snapshot is stable. *)
val dump : ?registry:registry -> unit -> (string * labels * value) list

(** All histogram series under [name], as [(labels, copy)] pairs. *)
val find_histograms :
  ?registry:registry -> string -> (labels * Histogram.t) list

(** Sum of counter [name] across all label sets (0. when absent). *)
val counter_total : ?registry:registry -> string -> float

(** Value of gauge [name]/[labels], if present. *)
val gauge_value : ?registry:registry -> ?labels:labels -> string -> float option

type summary = {
  s_count : int;
  s_sum : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

val summary_of : Histogram.t -> summary

(** OpenMetrics / Prometheus text exposition.  Metric names are
    prefixed with [shapmc_] and sanitized; counters gain the [_total]
    suffix; histograms emit sparse cumulative [_bucket{le=...}] series
    plus [_sum] / [_count]; the output ends with [# EOF]. *)
val to_openmetrics : ?registry:registry -> unit -> string

type om_sample = {
  om_name : string;
  om_labels : labels;
  om_value : float;
}

(** Minimal parser for the exposition format emitted by
    {!to_openmetrics} (round-trip testing, scrape debugging).  Ignores
    comment lines; raises [Failure] on malformed sample lines. *)
val parse_openmetrics : string -> om_sample list

(** JSON dump of the registry: an object keyed by metric name where
    each entry lists label sets with their value (counters/gauges) or
    count/sum/percentiles (histograms). *)
val to_json : ?registry:registry -> unit -> string

(** Human-readable profiling report rendered from the registry's
    well-known series: per-phase self time, oracle latency percentiles
    by lemma/arity, substitution sizes, Gc gauges, pool utilization.
    Sections with no data are omitted. *)
val profile_report : ?registry:registry -> unit -> string
