(* Global mutable state behind a single [enabled] flag.  Recording entry
   points check the flag first, so when observation is off an instrumented
   call site costs one load + branch (plus the closure it already built).

   Raw ledgers (the [calls]/[substs] lists) are bounded by [ledger_cap]:
   past the cap new entries only bump a dropped counter, while the
   per-oracle / per-kind aggregates — maintained incrementally on every
   record — stay exact, so long benchmark runs cannot grow memory without
   bound and totals remain trustworthy.

   When a {!Trace} stream is being recorded, every entry point also emits
   a chronological event, which is how the [--trace] timeline gets its
   span begin/end, oracle-call, substitution and counter events without
   any extra instrumentation at the call sites.

   Independently of [enabled], every entry point also emits into the
   installed request {!Scope}, if any (see scope.mli): the scope side is
   gated only on [Scope.current ()], and never writes to the global
   ledgers, Trace stream or Metrics registry, so a serving process with
   observation off still collects isolated per-request profiles.  The
   span-stack DLS machinery runs whenever EITHER gate is open, so
   hierarchical span paths are correct in scope-only mode too.

   Domain safety (the [--jobs] parallel fan-out): every mutation of the
   shared ledgers, aggregates, counters and span table happens under one
   [lock], so concurrent recordings from pool workers neither tear the
   tables nor drop updates, and all aggregate totals stay exact
   regardless of scheduling.  The span NESTING state is per-domain
   ([Domain.DLS]): each worker tracks its own stack of open spans, and
   {!span_context}/{!with_span_context} let a fan-out primitive re-install
   the caller's stack inside workers so hierarchical span paths come out
   identical to a sequential run.  Under [jobs = 1] everything happens on
   one domain in the exact pre-pool order, so recorded streams are
   bit-identical to the sequential pipeline.  The [enabled] flag itself is
   a plain ref: it is only toggled outside parallel regions (CLI startup,
   test brackets), never concurrently with recording. *)

type span_stat = {
  span_path : string;
  span_calls : int;
  span_seconds : float;
  span_self_seconds : float;
}

type call = {
  call_oracle : string;
  call_n : int;
  call_arity : int;
  call_size : int;
  call_seconds : float;
}

type subst_event = {
  subst_kind : string;
  subst_pre : int;
  subst_post : int;
  subst_fresh : int;
  subst_width : int;
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

(* Profiling adds Gc sampling around each span.  Like [enabled], the
   flag is only toggled outside parallel regions. *)
let profiling_flag = ref false
let profiling () = !profiling_flag
let set_profiling b = profiling_flag := b

(* Bytes allocated by this domain so far (minor + major - promoted, so
   promotions are not double-counted).  [Gc.allocated_bytes] reads the
   live young-generation pointer, so the count is accurate between
   minor collections — unlike [Gc.quick_stat], whose [minor_words]
   only advances at collection boundaries on the multicore runtime. *)
let allocated_bytes_now () = Gc.allocated_bytes ()

(* One lock for all shared recording state.  Held only for the few table
   updates of a record — never across a user callback or an oracle call —
   so contention is bounded by ledger bookkeeping, not by the work being
   measured.  [Trace] has its own lock; this module calls into [Trace]
   without holding [lock] held-to-held in the other direction, so there
   is no ordering cycle. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32

(* Raw ledgers are prepended to and reversed on read-back; [*_stored]
   track list lengths so cap checks are O(1). *)
let default_ledger_cap = 65536
let ledger_cap_r = ref default_ledger_cap
let ledger_cap () = !ledger_cap_r
let set_ledger_cap n = ledger_cap_r := max 0 n

let calls_log : call list ref = ref []
let calls_stored = ref 0
let calls_dropped_n = ref 0
let substs_log : subst_event list ref = ref []
let substs_stored = ref 0
let substs_dropped_n = ref 0

let dropped_calls () = !calls_dropped_n
let dropped_substs () = !substs_dropped_n

(* Exact per-oracle aggregates, updated on every record (also past the
   raw-ledger cap): calls, n range, arity range, max size, total time. *)
type agg = {
  mutable a_calls : int;
  mutable a_n_min : int;
  mutable a_n_max : int;
  mutable a_l_min : int;
  mutable a_l_max : int;
  mutable a_size_max : int;
  mutable a_seconds : float;
}

let agg_tbl : (string, agg) Hashtbl.t = Hashtbl.create 8
let calls_total = ref 0

(* Exact per-kind substitution aggregates: count, max pre/post, fresh sum. *)
type subst_agg = {
  mutable s_count : int;
  mutable s_pre_max : int;
  mutable s_post_max : int;
  mutable s_fresh : int;
}

let subst_agg_tbl : (string, subst_agg) Hashtbl.t = Hashtbl.create 4

(* Span aggregation: path -> calls / total seconds / self seconds.
   [span_stack] holds the current nesting as frames; each frame carries
   the open span's path plus mutable accumulators of the time (and,
   when profiling, allocation) spent in already-finished child spans,
   so a finishing span can report self = total - children.  The stack
   is per-domain state (which spans are open HERE), so it lives in
   domain-local storage rather than under [lock]; frames are only ever
   mutated by their own domain. *)
type span_acc = {
  mutable sp_calls : int;
  mutable sp_seconds : float;
  mutable sp_self : float;
}

let spans_tbl : (string, span_acc) Hashtbl.t = Hashtbl.create 32

type frame = {
  fr_path : string;
  mutable fr_child : float;  (* seconds spent in finished child spans *)
  mutable fr_child_alloc : float;  (* bytes allocated in finished children *)
}

let span_stack : frame list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let frame_of_path p = { fr_path = p; fr_child = 0.; fr_child_alloc = 0. }

let span_context () =
  List.map (fun fr -> fr.fr_path) (Domain.DLS.get span_stack)

(* Workers get FRESH frames for the caller's open spans: child time they
   accumulate is credited inside the worker only, so cross-domain self
   time is best-effort (exact under jobs = 1, where no context is ever
   re-installed). *)
let with_span_context ctx f =
  let saved = Domain.DLS.get span_stack in
  Domain.DLS.set span_stack (List.map frame_of_path ctx);
  Fun.protect ~finally:(fun () -> Domain.DLS.set span_stack saved) f

let reset () =
  locked (fun () ->
      Hashtbl.reset counters_tbl;
      calls_log := [];
      calls_stored := 0;
      calls_dropped_n := 0;
      calls_total := 0;
      Hashtbl.reset agg_tbl;
      substs_log := [];
      substs_stored := 0;
      substs_dropped_n := 0;
      Hashtbl.reset subst_agg_tbl;
      Hashtbl.reset spans_tbl);
  Domain.DLS.set span_stack [];
  Metrics.reset ()

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Counters *)

let add name k =
  let enabled = !enabled_flag in
  let sc = Scope.current () in
  if enabled then begin
    let total =
      locked (fun () ->
          match Hashtbl.find_opt counters_tbl name with
          | Some r ->
            r := !r + k;
            !r
          | None ->
            Hashtbl.replace counters_tbl name (ref k);
            k)
    in
    Metrics.inc ~by:(float_of_int k) name;
    if Trace.recording () then Trace.counter ~value:total name
  end;
  (* The scope sees the per-request DELTA (there is no meaningful
     process total to report into a request). *)
  match sc with
  | Some s ->
    Scope.emit s ~attrs:[ ("value", Trace.Int k) ] ~kind:Trace.Counter name
  | None -> ()

let incr name = add name 1

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0)

let counters () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []))

(* ------------------------------------------------------------------ *)
(* Spans *)

let with_span ?attrs name f =
  let enabled = !enabled_flag in
  let sc = Scope.current () in
  if (not enabled) && sc = None then f ()
  else begin
    let stack = Domain.DLS.get span_stack in
    let path =
      match stack with [] -> name | parent :: _ -> parent.fr_path ^ "/" ^ name
    in
    Domain.DLS.set span_stack (frame_of_path path :: stack);
    if enabled && Trace.recording () then Trace.span_begin ?attrs name;
    (match sc with
     | Some s -> Scope.emit s ?attrs ~kind:Trace.Span_begin name
     | None -> ());
    let prof = enabled && !profiling_flag in
    let alloc0 = if prof then allocated_bytes_now () else 0. in
    let t0 = now () in
    let finish () =
      (* Unix.gettimeofday is not monotonic: clamp so a clock step back
         cannot produce a negative duration. *)
      let dt = Float.max 0.0 (now () -. t0) in
      let d_alloc =
        if prof then Float.max 0.0 (allocated_bytes_now () -. alloc0) else 0.
      in
      let child, child_alloc =
        match Domain.DLS.get span_stack with
        | fr :: rest ->
          Domain.DLS.set span_stack rest;
          (* credit this span's full time (and allocation) to the parent
             so the parent's SELF time excludes it *)
          (match rest with
           | parent :: _ ->
             parent.fr_child <- parent.fr_child +. dt;
             if prof then
               parent.fr_child_alloc <- parent.fr_child_alloc +. d_alloc
           | [] -> ());
          (fr.fr_child, fr.fr_child_alloc)
        | [] -> (0., 0.)
      in
      let self = Float.max 0.0 (dt -. child) in
      if enabled && Trace.recording () then Trace.span_end name;
      (match sc with
       | Some s -> Scope.emit s ~kind:Trace.Span_end name
       | None -> ());
      if enabled then begin
        locked (fun () ->
            match Hashtbl.find_opt spans_tbl path with
            | Some a ->
              a.sp_calls <- a.sp_calls + 1;
              a.sp_seconds <- a.sp_seconds +. dt;
              a.sp_self <- a.sp_self +. self
            | None ->
              Hashtbl.replace spans_tbl path
                { sp_calls = 1; sp_seconds = dt; sp_self = self });
        Metrics.observe ~labels:[ ("span", path) ] "span_self_seconds" self;
        if prof then
          Metrics.observe ~labels:[ ("span", path) ] "span_alloc_bytes"
            (Float.max 0.0 (d_alloc -. child_alloc))
      end
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun path a acc ->
              { span_path = path; span_calls = a.sp_calls;
                span_seconds = a.sp_seconds; span_self_seconds = a.sp_self }
              :: acc)
           spans_tbl []))

(* ------------------------------------------------------------------ *)
(* Oracle-call ledger *)

let agg_update ~oracle ~n ~arity ~size ~seconds =
  let a =
    match Hashtbl.find_opt agg_tbl oracle with
    | Some a -> a
    | None ->
      let a =
        { a_calls = 0; a_n_min = max_int; a_n_max = -1; a_l_min = max_int;
          a_l_max = -1; a_size_max = -1; a_seconds = 0.0 }
      in
      Hashtbl.replace agg_tbl oracle a;
      a
  in
  a.a_calls <- a.a_calls + 1;
  a.a_n_min <- min a.a_n_min n;
  a.a_n_max <- max a.a_n_max n;
  if arity >= 0 then begin
    a.a_l_min <- min a.a_l_min arity;
    a.a_l_max <- max a.a_l_max arity
  end;
  a.a_size_max <- max a.a_size_max size;
  a.a_seconds <- a.a_seconds +. seconds

(* Shared recording core: ledger entry (capped), exact aggregate, trace
   event, plus the installed request scope's copy.  The global side is
   gated on [enabled]; the scope side only on a scope being installed —
   a server running with observation off still profiles each request.
   [at] is the absolute start stamp of the timed region. *)
let record_call ~oracle ~n ~arity ~size ~seconds ~at ~attrs =
  let seconds = Float.max 0.0 seconds in
  let event_attrs () =
    (("n", Trace.Int n) :: attrs)
    @ (if arity >= 0 then [ ("l", Trace.Int arity) ] else [])
    @ (if size >= 0 then [ ("size", Trace.Int size) ] else [])
    @ (match Domain.DLS.get span_stack with
       | fr :: _ -> [ ("span", Trace.Str fr.fr_path) ]
       | [] -> [])
  in
  if !enabled_flag then begin
    locked (fun () ->
        calls_total := !calls_total + 1;
        agg_update ~oracle ~n ~arity ~size ~seconds;
        if !calls_stored < !ledger_cap_r then begin
          calls_log :=
            { call_oracle = oracle; call_n = n; call_arity = arity;
              call_size = size; call_seconds = seconds }
            :: !calls_log;
          calls_stored := !calls_stored + 1
        end
        else calls_dropped_n := !calls_dropped_n + 1);
    let lemma =
      match List.assoc_opt "lemma" attrs with
      | Some (Trace.Str s) -> s
      | _ -> "-"
    in
    Metrics.observe
      ~labels:
        [ ("oracle", oracle); ("lemma", lemma);
          ("l", if arity >= 0 then string_of_int arity else "-") ]
      "oracle_seconds" seconds;
    if Trace.recording () then
      Trace.oracle ~at ~dur:seconds ~attrs:(event_attrs ()) oracle
  end;
  match Scope.current () with
  | Some s ->
    Scope.emit s ~at ~dur:seconds ~attrs:(event_attrs ()) ~kind:Trace.Oracle
      oracle
  | None -> ()

let record ~oracle ~n ?(arity = -1) ?(size = -1) ~seconds () =
  if !enabled_flag || Scope.active () then
    record_call ~oracle ~n ~arity ~size ~seconds
      ~at:(now () -. Float.max 0.0 seconds)
      ~attrs:[]

let call ~oracle ~n ?(arity = -1) ?(size = -1) ?(attrs = []) f =
  if not (!enabled_flag || Scope.active ()) then f ()
  else begin
    let t0 = now () in
    let r = f () in
    record_call ~oracle ~n ~arity ~size ~seconds:(now () -. t0) ~at:t0 ~attrs;
    r
  end

let calls () = List.rev (locked (fun () -> !calls_log))

let call_count ?oracle () =
  locked (fun () ->
      match oracle with
      | None -> !calls_total
      | Some name -> (
          match Hashtbl.find_opt agg_tbl name with
          | Some a -> a.a_calls
          | None -> 0))

(* ------------------------------------------------------------------ *)
(* Substitution ledger *)

let record_subst ?(width = -1) ~kind ~pre ~post ~fresh () =
  let subst_attrs () =
    [ ("pre", Trace.Int pre); ("post", Trace.Int post);
      ("fresh", Trace.Int fresh) ]
    @ if width >= 0 then [ ("width", Trace.Int width) ] else []
  in
  (match Scope.current () with
   | Some s -> Scope.emit s ~attrs:(subst_attrs ()) ~kind:Trace.Subst kind
   | None -> ());
  if !enabled_flag then begin
    locked (fun () ->
        (match Hashtbl.find_opt subst_agg_tbl kind with
         | Some s ->
           s.s_count <- s.s_count + 1;
           s.s_pre_max <- max s.s_pre_max pre;
           s.s_post_max <- max s.s_post_max post;
           s.s_fresh <- s.s_fresh + fresh
         | None ->
           Hashtbl.replace subst_agg_tbl kind
             { s_count = 1; s_pre_max = pre; s_post_max = post;
               s_fresh = fresh });
        if !substs_stored < !ledger_cap_r then begin
          substs_log :=
            { subst_kind = kind; subst_pre = pre; subst_post = post;
              subst_fresh = fresh; subst_width = width }
            :: !substs_log;
          substs_stored := !substs_stored + 1
        end
        else substs_dropped_n := !substs_dropped_n + 1);
    Metrics.observe ~labels:[ ("kind", kind) ] "subst_post_size"
      (float_of_int post);
    if Trace.recording () then Trace.subst ~attrs:(subst_attrs ()) kind
  end

let substs () = List.rev (locked (fun () -> !substs_log))

(* ------------------------------------------------------------------ *)
(* Phase markers *)

let phase ?attrs name =
  if !enabled_flag && Trace.recording () then Trace.phase ?attrs name;
  match Scope.current () with
  | Some s -> Scope.emit s ?attrs ~kind:Trace.Phase name
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Reports *)

let aggregate () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun k a acc ->
              (* copy: callers must not see (or mutate) the live record *)
              (k, { a with a_calls = a.a_calls }) :: acc)
           agg_tbl []))

let range lo hi =
  if hi < 0 then "-"
  else if lo = hi then string_of_int lo
  else Printf.sprintf "%d..%d" lo hi

let subst_aggregate () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun k s acc ->
              (k, (s.s_count, s.s_pre_max, s.s_post_max, s.s_fresh)) :: acc)
           subst_agg_tbl []))

let pp_report ppf () =
  let open Format in
  let aggs = aggregate () in
  fprintf ppf "oracle calls:@\n";
  if aggs = [] then fprintf ppf "  (none)@\n"
  else begin
    fprintf ppf "  %-18s %8s %-9s %-9s %9s %10s@\n" "oracle" "calls" "n" "l"
      "max|F|" "time(s)";
    List.iter
      (fun (name, a) ->
         fprintf ppf "  %-18s %8d %-9s %-9s %9s %10.4f@\n" name a.a_calls
           (range a.a_n_min a.a_n_max)
           (range a.a_l_min a.a_l_max)
           (if a.a_size_max < 0 then "-" else string_of_int a.a_size_max)
           a.a_seconds)
      aggs;
    if !calls_dropped_n > 0 then
      fprintf ppf "  (raw call ledger capped at %d entries; %d dropped, \
                   aggregates exact)@\n"
        !ledger_cap_r !calls_dropped_n
  end;
  (match subst_aggregate () with
   | [] -> ()
   | rows ->
     fprintf ppf "substitutions:@\n";
     fprintf ppf "  %-14s %8s %10s %10s %8s@\n" "kind" "count" "max-pre"
       "max-post" "fresh";
     List.iter
       (fun (kind, (c, pre, post, fresh)) ->
          fprintf ppf "  %-14s %8d %10d %10d %8d@\n" kind c pre post fresh)
       rows;
     if !substs_dropped_n > 0 then
       fprintf ppf "  (raw subst ledger capped at %d entries; %d dropped, \
                    aggregates exact)@\n"
         !ledger_cap_r !substs_dropped_n);
  (match counters () with
   | [] -> ()
   | cs ->
     fprintf ppf "counters:@\n";
     List.iter (fun (name, v) -> fprintf ppf "  %-34s %12d@\n" name v) cs);
  (match spans () with
   | [] -> ()
   | ss ->
     fprintf ppf "spans:@\n";
     List.iter
       (fun s ->
          fprintf ppf "  %-52s %6d %10.4f %10.4f@\n" s.span_path s.span_calls
            s.span_seconds s.span_self_seconds)
       ss)

let report () = Format.asprintf "%a" pp_report ()

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled; only strings, ints and floats occur) *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 32 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ v) fields) ^ "}"

let json_list items = "[" ^ String.concat "," items ^ "]"
let json_str s = "\"" ^ json_escape s ^ "\""

(* Wall-clock differences can be nan/inf if the clock misbehaves; a bare
   "nan" token would make the whole document unparseable. *)
let json_float f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1.0e308"
  else if f = Float.neg_infinity then "-1.0e308"
  else Printf.sprintf "%.6f" f

let to_json () =
  json_obj
    [ ( "counters",
        json_obj (List.map (fun (k, v) -> (k, string_of_int v)) (counters ()))
      );
      ( "spans",
        json_obj
          (List.map
             (fun s ->
                ( s.span_path,
                  json_obj
                    [ ("calls", string_of_int s.span_calls);
                      ("seconds", json_float s.span_seconds);
                      ("self_seconds", json_float s.span_self_seconds) ] ))
             (spans ())) );
      ( "oracle_calls",
        json_obj
          (List.map
             (fun (name, a) ->
                ( name,
                  json_obj
                    [ ("calls", string_of_int a.a_calls);
                      ("n_min", string_of_int a.a_n_min);
                      ("n_max", string_of_int a.a_n_max);
                      ("l_min", string_of_int (if a.a_l_max < 0 then -1 else a.a_l_min));
                      ("l_max", string_of_int a.a_l_max);
                      ("size_max", string_of_int a.a_size_max);
                      ("seconds", json_float a.a_seconds) ] ))
             (aggregate ())) );
      ("calls_total", string_of_int !calls_total);
      ("calls_dropped", string_of_int !calls_dropped_n);
      ("substs_dropped", string_of_int !substs_dropped_n);
      ( "calls",
        json_list
          (List.map
             (fun c ->
                json_obj
                  [ ("oracle", json_str c.call_oracle);
                    ("n", string_of_int c.call_n);
                    ("l", string_of_int c.call_arity);
                    ("size", string_of_int c.call_size);
                    ("seconds", json_float c.call_seconds) ])
             (calls ())) );
      ( "substs",
        json_list
          (List.map
             (fun e ->
                json_obj
                  [ ("kind", json_str e.subst_kind);
                    ("pre", string_of_int e.subst_pre);
                    ("post", string_of_int e.subst_post);
                    ("fresh", string_of_int e.subst_fresh);
                    ("width", string_of_int e.subst_width) ])
             (substs ())) ) ]
