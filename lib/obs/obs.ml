(* Global mutable state behind a single [enabled] flag.  Recording entry
   points check the flag first, so when observation is off an instrumented
   call site costs one load + branch (plus the closure it already built). *)

type span_stat = { span_path : string; span_calls : int; span_seconds : float }

type call = {
  call_oracle : string;
  call_n : int;
  call_arity : int;
  call_size : int;
  call_seconds : float;
}

type subst_event = {
  subst_kind : string;
  subst_pre : int;
  subst_post : int;
  subst_fresh : int;
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32

(* Ledgers are prepended to and reversed on read-back. *)
let calls_log : call list ref = ref []
let substs_log : subst_event list ref = ref []

(* Span aggregation: path -> (calls, total seconds); [span_stack] holds
   the current path so nested spans compose hierarchically. *)
let spans_tbl : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 32
let span_stack : string list ref = ref []

let reset () =
  Hashtbl.reset counters_tbl;
  calls_log := [];
  substs_log := [];
  Hashtbl.reset spans_tbl;
  span_stack := []

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Counters *)

let add name k =
  if !enabled_flag then
    match Hashtbl.find_opt counters_tbl name with
    | Some r -> r := !r + k
    | None -> Hashtbl.replace counters_tbl name (ref k)

let incr name = add name 1

let counter name =
  match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0

let counters () =
  List.sort compare
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl [])

(* ------------------------------------------------------------------ *)
(* Spans *)

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let path =
      match !span_stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    span_stack := path :: !span_stack;
    let t0 = now () in
    let finish () =
      let dt = now () -. t0 in
      (match !span_stack with _ :: rest -> span_stack := rest | [] -> ());
      match Hashtbl.find_opt spans_tbl path with
      | Some r ->
        let c, t = !r in
        r := (c + 1, t +. dt)
      | None -> Hashtbl.replace spans_tbl path (ref (1, dt))
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () =
  List.sort compare
    (Hashtbl.fold
       (fun path r acc ->
          let c, t = !r in
          { span_path = path; span_calls = c; span_seconds = t } :: acc)
       spans_tbl [])

(* ------------------------------------------------------------------ *)
(* Oracle-call ledger *)

let record ~oracle ~n ?(arity = -1) ?(size = -1) ~seconds () =
  if !enabled_flag then
    calls_log :=
      { call_oracle = oracle;
        call_n = n;
        call_arity = arity;
        call_size = size;
        call_seconds = seconds }
      :: !calls_log

let call ~oracle ~n ?arity ?size f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    let r = f () in
    record ~oracle ~n ?arity ?size ~seconds:(now () -. t0) ();
    r
  end

let calls () = List.rev !calls_log

let call_count ?oracle () =
  match oracle with
  | None -> List.length !calls_log
  | Some name ->
    List.length (List.filter (fun c -> c.call_oracle = name) !calls_log)

(* ------------------------------------------------------------------ *)
(* Substitution ledger *)

let record_subst ~kind ~pre ~post ~fresh =
  if !enabled_flag then
    substs_log :=
      { subst_kind = kind; subst_pre = pre; subst_post = post;
        subst_fresh = fresh }
      :: !substs_log

let substs () = List.rev !substs_log

(* ------------------------------------------------------------------ *)
(* Reports *)

(* Per-oracle aggregate of the call ledger:
   (calls, min n, max n, min l, max l, max size, total seconds). *)
type agg = {
  mutable a_calls : int;
  mutable a_n_min : int;
  mutable a_n_max : int;
  mutable a_l_min : int;
  mutable a_l_max : int;
  mutable a_size_max : int;
  mutable a_seconds : float;
}

let aggregate () =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun c ->
       let a =
         match Hashtbl.find_opt tbl c.call_oracle with
         | Some a -> a
         | None ->
           let a =
             { a_calls = 0; a_n_min = max_int; a_n_max = -1;
               a_l_min = max_int; a_l_max = -1; a_size_max = -1;
               a_seconds = 0.0 }
           in
           Hashtbl.replace tbl c.call_oracle a;
           a
       in
       a.a_calls <- a.a_calls + 1;
       a.a_n_min <- min a.a_n_min c.call_n;
       a.a_n_max <- max a.a_n_max c.call_n;
       if c.call_arity >= 0 then begin
         a.a_l_min <- min a.a_l_min c.call_arity;
         a.a_l_max <- max a.a_l_max c.call_arity
       end;
       a.a_size_max <- max a.a_size_max c.call_size;
       a.a_seconds <- a.a_seconds +. c.call_seconds)
    (calls ());
  List.sort compare (Hashtbl.fold (fun k a acc -> (k, a) :: acc) tbl [])

let range lo hi =
  if hi < 0 then "-"
  else if lo = hi then string_of_int lo
  else Printf.sprintf "%d..%d" lo hi

let pp_report ppf () =
  let open Format in
  let aggs = aggregate () in
  fprintf ppf "oracle calls:@\n";
  if aggs = [] then fprintf ppf "  (none)@\n"
  else begin
    fprintf ppf "  %-18s %8s %-9s %-9s %9s %10s@\n" "oracle" "calls" "n" "l"
      "max|F|" "time(s)";
    List.iter
      (fun (name, a) ->
         fprintf ppf "  %-18s %8d %-9s %-9s %9s %10.4f@\n" name a.a_calls
           (range a.a_n_min a.a_n_max)
           (range a.a_l_min a.a_l_max)
           (if a.a_size_max < 0 then "-" else string_of_int a.a_size_max)
           a.a_seconds)
      aggs
  end;
  (match substs () with
   | [] -> ()
   | evs ->
     fprintf ppf "substitutions:@\n";
     fprintf ppf "  %-14s %8s %10s %10s %8s@\n" "kind" "count" "max-pre"
       "max-post" "fresh";
     let tbl = Hashtbl.create 4 in
     List.iter
       (fun e ->
          let c, pre, post, fresh =
            Option.value ~default:(0, 0, 0, 0)
              (Hashtbl.find_opt tbl e.subst_kind)
          in
          Hashtbl.replace tbl e.subst_kind
            ( c + 1, max pre e.subst_pre, max post e.subst_post,
              fresh + e.subst_fresh ))
       evs;
     List.iter
       (fun (kind, (c, pre, post, fresh)) ->
          fprintf ppf "  %-14s %8d %10d %10d %8d@\n" kind c pre post fresh)
       (List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])));
  (match counters () with
   | [] -> ()
   | cs ->
     fprintf ppf "counters:@\n";
     List.iter (fun (name, v) -> fprintf ppf "  %-34s %12d@\n" name v) cs);
  (match spans () with
   | [] -> ()
   | ss ->
     fprintf ppf "spans:@\n";
     List.iter
       (fun s ->
          fprintf ppf "  %-52s %6d %10.4f@\n" s.span_path s.span_calls
            s.span_seconds)
       ss)

let report () = Format.asprintf "%a" pp_report ()

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled; only strings, ints and floats occur) *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 32 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ v) fields) ^ "}"

let json_list items = "[" ^ String.concat "," items ^ "]"
let json_str s = "\"" ^ json_escape s ^ "\""
let json_float f = Printf.sprintf "%.6f" f

let to_json () =
  json_obj
    [ ( "counters",
        json_obj (List.map (fun (k, v) -> (k, string_of_int v)) (counters ()))
      );
      ( "spans",
        json_obj
          (List.map
             (fun s ->
                ( s.span_path,
                  json_obj
                    [ ("calls", string_of_int s.span_calls);
                      ("seconds", json_float s.span_seconds) ] ))
             (spans ())) );
      ( "oracle_calls",
        json_obj
          (List.map
             (fun (name, a) ->
                ( name,
                  json_obj
                    [ ("calls", string_of_int a.a_calls);
                      ("n_min", string_of_int a.a_n_min);
                      ("n_max", string_of_int a.a_n_max);
                      ("l_min", string_of_int (if a.a_l_max < 0 then -1 else a.a_l_min));
                      ("l_max", string_of_int a.a_l_max);
                      ("size_max", string_of_int a.a_size_max);
                      ("seconds", json_float a.a_seconds) ] ))
             (aggregate ())) );
      ( "calls",
        json_list
          (List.map
             (fun c ->
                json_obj
                  [ ("oracle", json_str c.call_oracle);
                    ("n", string_of_int c.call_n);
                    ("l", string_of_int c.call_arity);
                    ("size", string_of_int c.call_size);
                    ("seconds", json_float c.call_seconds) ])
             (calls ())) );
      ( "substs",
        json_list
          (List.map
             (fun e ->
                json_obj
                  [ ("kind", json_str e.subst_kind);
                    ("pre", string_of_int e.subst_pre);
                    ("post", string_of_int e.subst_post);
                    ("fresh", string_of_int e.subst_fresh) ])
             (substs ())) ) ]
