(** Estimator convergence telemetry.

    A stochastic estimator you cannot watch converge is one you cannot
    trust in production.  A [Convergence.t] is a monitor owned by one
    estimator run: it keeps a streaming Welford mean/variance per player
    (exact single-pass moments, mergeable batch-wise for parallel
    estimators), derives a confidence-interval half-width per player
    under a selectable inequality, and every [interval] samples emits a
    {e checkpoint} — a typed record of (samples, certified max half-width,
    per-player variance) — into every observability sink at once:

    - the bounded in-monitor checkpoint stream ({!checkpoints}), capped
      at [cap] records so unbounded runs cannot grow memory;
    - the global {!Trace} stream (a [Phase] event named
      ["estimator.checkpoint"]) when a trace is recording, so [--trace]
      timelines and [shapmc trace-report] show the convergence curve;
    - the installed request {!Scope}, if any, so per-request profiles
      served at [/v1/debug/requests/:id] carry the checkpoints of the
      estimators that ran for that request;
    - the default {!Metrics} registry: [estimator_samples] /
      [estimator_checkpoints] counters and the [estimator_ci_half_width]
      gauge, all labelled [{estimator=<name>}] ([estimator_seconds] is
      observed once by {!finish});
    - an optional JSONL convergence log (one object per checkpoint,
      deliberately free of wall-clock stamps so a replayed run diffs
      bit-identically).

    The {e certified} half-width is the running minimum over checkpoints
    of the instant per-player half-width (the monotone envelope): under
    Hoeffding the instant width is monotone anyway; under the
    variance-adaptive CLT/Bernstein intervals the envelope guarantees
    the logged series never widens, which is what early-stopping
    consumers ({!Sampling.shap_estimate}) compare against a target ε.

    Sinks are written under the monitor's mutex; all entry points are
    domain-safe, though the intended shape is a single coordinator
    merging worker batches ({!merge_moments}) in a deterministic order
    so that parallel runs replay bit-identically. *)

(** Which confidence interval backs the half-widths. *)
type ci =
  | Hoeffding
      (** distribution-free: [range·√(ln(2/δ)/2m)] — monotone in [m],
          ignores observed variance *)
  | Clt
      (** normal approximation: [z_{1−δ/2}·√(V/m)] — tightest, not a
          finite-sample guarantee *)
  | Bernstein
      (** empirical Bernstein (Maurer–Pontil):
          [√(2V·ln(3/δ)/m) + 3·range·ln(3/δ)/m] — finite-sample valid
          and variance-adaptive, the early-stopping default *)

val ci_of_string : string -> ci option
(** ["hoeffding"], ["clt"], ["bernstein"]. *)

val ci_name : ci -> string

type checkpoint = {
  k_index : int;  (** 0-based checkpoint number *)
  k_samples : int;  (** monitor sample count at emission *)
  k_max_half_width : float;
      (** max over players of the certified (envelope) half-width *)
  k_mean_half_width : float;  (** mean over players of the same *)
  k_max_variance : float;  (** max per-player sample variance *)
  k_at : float;  (** seconds since {!create} (not written to JSONL) *)
}

type t

val default_interval : int
(** 512 samples. *)

val default_cap : int
(** 4096 stored checkpoints. *)

(** [create ~estimator ~players ()] — [estimator] is the metrics label
    and JSONL tag; [players] the number of tracked means.  [delta] is
    the per-player failure probability (default 0.05), [range] the width
    of the observations' support (default 2: Shapley marginals live in
    [[-1, 1]]), [interval] the checkpoint period in samples, [cap] the
    stored-checkpoint bound, [jsonl] an optional sink channel the caller
    owns (the monitor writes and flushes, never closes).
    @raise Invalid_argument on non-positive [players], [interval] or
    [range], or [delta] outside (0, 1). *)
val create :
  ?ci:ci ->
  ?delta:float ->
  ?range:float ->
  ?interval:int ->
  ?cap:int ->
  ?jsonl:out_channel ->
  estimator:string ->
  players:int ->
  unit ->
  t

val estimator : t -> string
val players : t -> int
val ci : t -> ci
val delta : t -> float

(** {1 Feeding} *)

(** [observe t ~player x] streams one observation into [player]'s
    Welford state.  Does not advance the sample counter — call
    {!advance} once per completed sample (a sample may cover several
    players). *)
val observe : t -> player:int -> float -> unit

(** [merge_moments t ~player ~count ~mean ~m2] merges a worker batch's
    exact moments ([m2] = sum of squared deviations) via Chan's parallel
    Welford update.  Merging batches in a fixed order is deterministic,
    which is how parallel estimators stay bit-identical across [--jobs]. *)
val merge_moments :
  t -> player:int -> count:int -> mean:float -> m2:float -> unit

(** [advance t k] counts [k] completed samples and emits one checkpoint
    when the counter crosses a multiple of [interval] (at most one per
    call — back-to-back crossings coalesce). *)
val advance : t -> int -> unit

(** [checkpoint t] forces a checkpoint now (estimators call it once at
    the end so the final state is always logged). *)
val checkpoint : t -> unit

(** [finish t] emits a final checkpoint if any sample arrived since the
    last one, observes [estimator_seconds{estimator}] and flushes the
    JSONL sink.  Idempotent. *)
val finish : t -> unit

(** {1 Read-back} *)

val samples : t -> int

(** Per-player point estimate (the Welford mean; [0.] before any
    observation). *)
val mean : t -> player:int -> float

(** Per-player sample variance ([m2/(count−1)]; [0.] below 2
    observations). *)
val variance : t -> player:int -> float

(** Instant half-width of [player]'s CI at the current count
    ([infinity] before any observation). *)
val half_width : t -> player:int -> float

(** Certified half-width: the envelope value as of the last checkpoint
    ([infinity] before the first). *)
val certified_half_width : t -> player:int -> float

(** Max over players of {!certified_half_width} — the early-stopping
    criterion. *)
val max_certified_half_width : t -> float

(** Stored checkpoints in chronological order. *)
val checkpoints : t -> checkpoint list

(** Checkpoints emitted (stored + dropped past [cap]). *)
val emitted : t -> int

(** {1 Inspection helpers} *)

(** [hw_of ~ci ~delta ~range ~count ~variance] is the instant half-width
    formula behind {!half_width} — exposed for tests and for consumers
    that need a bound before running (e.g. planning a sample budget). *)
val hw_of :
  ci:ci -> delta:float -> range:float -> count:int -> variance:float -> float

(** [z_quantile p] is the standard normal quantile Φ⁻¹(p) (Acklam's
    rational approximation, |rel. err| < 1.2e-8), used by the {!Clt}
    interval. @raise Invalid_argument outside (0, 1). *)
val z_quantile : float -> float
