(** Oracle-call accounting and lightweight instrumentation.

    The paper measures every reduction in {e oracle calls}: Lemma 3.3
    consults the [#]-oracle on exactly [n + 1] OR-substituted instances,
    Lemma 3.2 layers [n + 1] zapped instances on top, and Lemma 9 bounds
    the size of each substituted circuit by [O(|G| + k·ℓ)].  This module
    makes those costs observable: a global ledger records every oracle
    invocation (name, universe size [n], substitution arity [ℓ], instance
    size, wall-clock time), a substitution ledger records pre/post sizes
    of every OR/AND-substitution, and named counters and hierarchical
    spans capture whatever else a caller wants to account for.

    All state is global and disabled by default; every recording entry
    point first checks {!enabled}, so instrumented hot paths pay a single
    branch when observation is off.  Tests and the [--stats] CLI flag
    bracket work with {!enable}/{!reset} and read the ledgers back.

    The raw ledgers are bounded ({!ledger_cap}, default 65536 entries
    per ledger): past the cap, new entries are counted in
    {!dropped_calls}/{!dropped_substs} but not stored, while the
    aggregates ({!aggregate}, {!call_count}, the [--stats] tables)
    remain exact, so unbounded runs cannot grow memory without bound.

    When a {!Trace} stream is recording (see [--trace]), every entry
    point additionally emits a chronological trace event; tracing
    requires {!enabled} to be on.

    While enabled, recording entry points also feed the
    {!Metrics.default} registry: oracle latency histograms
    ([oracle_seconds{oracle,lemma,l}]), span self-time
    ([span_self_seconds{span}]), substitution sizes
    ([subst_post_size{kind}]) and counters, which back [--profile],
    [--metrics] and the bench percentile columns.

    {b Domain safety} ([--jobs]): all shared state (ledgers, aggregates,
    counters, span table) is mutex-guarded, so concurrent recordings
    from pool workers keep every aggregate exact.  The span {e nesting}
    stack is domain-local; {!span_context}/{!with_span_context} let a
    fan-out primitive propagate the caller's open-span path into worker
    domains so hierarchical span paths match a sequential run.  The
    enabled flag itself must only be toggled outside parallel regions. *)

(** {1 Switch} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Profiling mode ([--profile]): spans additionally sample per-domain
    [Gc] counters, recording a [span_alloc_bytes] histogram per span
    path in {!Metrics.default}.  Requires {!enabled}; toggle only
    outside parallel regions.  Off by default. *)
val set_profiling : bool -> unit

val profiling : unit -> bool

(** Bytes allocated by the calling domain so far (minor + major −
    promoted, from [Gc.quick_stat]); subtract two samples to bracket a
    region. *)
val allocated_bytes_now : unit -> float

(** [reset ()] clears all counters, spans and ledgers, and resets the
    default {!Metrics} registry (but not the enabled/profiling flags or
    the ledger cap). *)
val reset : unit -> unit

(** {1 Ledger bounds} *)

val ledger_cap : unit -> int
val set_ledger_cap : int -> unit

(** Entries discarded from the respective raw ledger since the last
    {!reset} (aggregates stayed exact). *)
val dropped_calls : unit -> int

val dropped_substs : unit -> int

(** {1 Counters} *)

(** [add name k] bumps counter [name] by [k] (no-op when disabled). *)
val add : string -> int -> unit

val incr : string -> unit

(** [counter name] is the current value ([0] if never bumped). *)
val counter : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** {1 Hierarchical spans}

    A span is a named, wall-clock-timed region.  Nested spans accumulate
    under slash-separated paths
    ([pipeline.shap_via_count_oracle/linalg.vandermonde_solve]), so the
    report shows where time went {e within} each reduction stage. *)

type span_stat = {
  span_path : string;
  span_calls : int;
  span_seconds : float;  (** total wall-clock inside the span *)
  span_self_seconds : float;
      (** wall-clock minus time spent in child spans finished on the
          same domain (self = total under [jobs = 1]; children finished
          on other domains are not subtracted) *)
}

(** [with_span name f] runs [f ()] inside span [name]; when disabled it
    is exactly [f ()].  Durations are clamped to [>= 0] (the wall clock
    is not monotonic).  [attrs] ride on the trace begin-event when a
    trace is recording. *)
val with_span :
  ?attrs:(string * Trace.value) list -> string -> (unit -> 'a) -> 'a

(** Aggregated spans, sorted by path. *)
val spans : unit -> span_stat list

(** [span_context ()] is this domain's stack of open span paths
    (innermost first).  Capture it before fanning work out to other
    domains and re-install it there with {!with_span_context}, so spans
    opened by workers nest under the caller's path. *)
val span_context : unit -> string list

(** [with_span_context ctx f] runs [f ()] with the span stack set to
    [ctx], restoring the previous stack afterwards (also on raise). *)
val with_span_context : string list -> (unit -> 'a) -> 'a

(** {1 Oracle-call ledger} *)

type call = {
  call_oracle : string;  (** oracle name, e.g. ["dpll"] *)
  call_n : int;  (** universe size of the consulted instance *)
  call_arity : int;  (** substitution arity [ℓ] of Lemma 3.3/3.4; [-1] when
                         the call is not on a substituted instance *)
  call_size : int;  (** instance size [|F|] or [|G|]; [-1] when unknown *)
  call_seconds : float;  (** wall-clock time spent inside the oracle *)
}

(** [record ~oracle ~n ?arity ?size ~seconds ()] appends to the ledger
    (no-op when disabled).  Negative [seconds] are clamped to [0]. *)
val record :
  oracle:string -> n:int -> ?arity:int -> ?size:int -> seconds:float ->
  unit -> unit

(** [call ~oracle ~n ?arity ?size f] times [f ()] and ledgers it; when
    disabled it is exactly [f ()].  [attrs] (e.g. the lemma that issued
    the consultation) ride on the trace event when a trace is
    recording. *)
val call :
  oracle:string -> n:int -> ?arity:int -> ?size:int ->
  ?attrs:(string * Trace.value) list -> (unit -> 'a) -> 'a

(** Ledgered calls in chronological order. *)
val calls : unit -> call list

(** [call_count ()] is the total number of recorded calls (exact even
    past the ledger cap); [call_count ~oracle ()] restricts to one
    oracle name. *)
val call_count : ?oracle:string -> unit -> int

(** Per-oracle aggregate, maintained incrementally and exact even when
    the raw ledger is capped: call count, [n]/[ℓ] ranges ([l] fields are
    [max_int]/[-1] when no call carried an arity), max instance size,
    total seconds. *)
type agg = {
  mutable a_calls : int;
  mutable a_n_min : int;
  mutable a_n_max : int;
  mutable a_l_min : int;
  mutable a_l_max : int;
  mutable a_size_max : int;
  mutable a_seconds : float;
}

(** Aggregates per oracle name, sorted; the records are copies. *)
val aggregate : unit -> (string * agg) list

(** {1 Substitution ledger (Lemma 9 witnesses)} *)

type subst_event = {
  subst_kind : string;  (** ["formula.or"], ["formula.and"] or ["circuit.or"] *)
  subst_pre : int;  (** instance size before substitution *)
  subst_post : int;  (** instance size after substitution *)
  subst_fresh : int;  (** total fresh variables introduced (Σ widths, the
                          [k·ℓ] of Lemma 9 for uniform width [ℓ]) *)
  subst_width : int;  (** maximum block width [ℓ]; [-1] when unknown *)
}

val record_subst :
  ?width:int -> kind:string -> pre:int -> post:int -> fresh:int -> unit ->
  unit

val substs : unit -> subst_event list

(** {1 Phase markers}

    [phase name] drops an instant marker into the trace stream (e.g.
    ["lemma3.2.drop"] before each zapped instance), so the timeline can
    attribute oracle calls to pipeline phases.  No-op unless both
    {!enabled} and a trace are recording. *)
val phase : ?attrs:(string * Trace.value) list -> string -> unit

(** {1 Reports} *)

(** Human-readable tables: oracle calls grouped by oracle, substitution
    sizes, counters, spans. *)
val pp_report : Format.formatter -> unit -> unit

val report : unit -> string

val json_float : float -> string
(** A float as a valid JSON token: [null] for NaN, [±1.0e308] for the
    infinities, [%.17g] (round-trip precision) otherwise. *)

(** The full current state as a JSON object with fields ["counters"],
    ["spans"], ["oracle_calls"] (aggregated per oracle),
    ["calls_total"], ["calls_dropped"], ["substs_dropped"], ["calls"]
    (the raw, possibly capped ledger) and ["substs"].  Non-finite
    floats are emitted as valid JSON ([null] / [±1.0e308]). *)
val to_json : unit -> string
