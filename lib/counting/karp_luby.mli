(** Karp–Luby–Madras approximate model counting for DNF [20].

    The paper contrasts its exact equivalence with the approximation
    landscape: model counting of DNF admits an FPRAS (Karp–Luby), and so
    does the Shapley value over query lineage, while the SHAP score does
    not (unless NP ⊆ BPP).  This is the classical coverage algorithm for
    positive DNF: with [U = Σ_i 2^{n − |c_i|}] the total clause coverage,
    sample a clause [i] with probability proportional to its coverage and
    a uniform model of [c_i]; the indicator that [c_i] is the {e first}
    clause the sampled model satisfies has expectation [#F / U].  The
    estimator is unbiased with variance ≤ m·#F·U per sample block, giving
    an (ε, δ) guarantee with O(m·ln(1/δ)/ε²) samples. *)

type estimate = {
  value : float;  (** estimated [#F] *)
  samples : int;
  relative_half_width : float;
      (** requested ε of the (ε, δ) guarantee the sample count was sized
          for *)
}

(** [count ~seed ~eps ~delta ~vars d] estimates the number of models of
    the positive DNF [d] over the universe [vars] within relative error
    [eps] with probability [1 − delta].

    When [monitor] is given (create it with [~players:1 ~range:1.0] —
    the observable is the first-satisfied-clause coverage indicator in
    {0, 1} whose mean is [#F / U]), every sample streams into it and the
    convergence checkpoints flow to Trace/Scope/Metrics/JSONL exactly as
    for the Shapley estimators; the caller owns the monitor and calls
    {!Convergence.finish}.
    @raise Invalid_argument if [d] is empty or has an empty clause, if
    [vars] misses clause variables, or on nonsensical [eps]/[delta]. *)
val count :
  ?monitor:Convergence.t ->
  ?seed:int -> eps:float -> delta:float -> vars:int list -> Nf.pdnf -> estimate

(** [count_samples ~seed ~samples ~vars d] runs a fixed number of
    samples (for convergence studies); [monitor] as in {!count}. *)
val count_samples :
  ?monitor:Convergence.t ->
  ?seed:int -> samples:int -> vars:int list -> Nf.pdnf -> estimate

(** [sample_bound ~clauses ~eps ~delta] is the standard
    [⌈3·m·ln(2/δ)/ε²⌉] sample count. *)
val sample_bound : clauses:int -> eps:float -> delta:float -> int
