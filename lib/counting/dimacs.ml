type instance = {
  num_vars : int;
  clauses : Nf.clause list;
  weights : (int * Rat.t) list;
}

let fail line msg =
  invalid_arg (Printf.sprintf "Dimacs: %s on line %d" msg line)

let parse_weight s =
  (* rational "p/q" or decimal "0.25" *)
  match String.index_opt s '.' with
  | None -> Rat.of_string s
  | Some i ->
    let whole = String.sub s 0 i in
    let frac = String.sub s (i + 1) (String.length s - i - 1) in
    let denom = Bigint.pow (Bigint.of_int 10) (String.length frac) in
    let sign, whole =
      if whole <> "" && whole.[0] = '-' then
        (Bigint.minus_one, String.sub whole 1 (String.length whole - 1))
      else (Bigint.one, whole)
    in
    let whole_b = if whole = "" then Bigint.zero else Bigint.of_string whole in
    let frac_b = if frac = "" then Bigint.zero else Bigint.of_string frac in
    Rat.make
      (Bigint.mul sign (Bigint.add (Bigint.mul whole_b denom) frac_b))
      denom

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let weights = ref [] in
  let current = ref [] in (* literals of the clause being read *)
  let clauses = ref [] in
  let finish_clause lineno =
    if !current <> [] then fail lineno "clause not 0-terminated"
  in
  List.iteri
    (fun idx raw ->
       let lineno = idx + 1 in
       let line = String.trim raw in
       let words =
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.filter (fun w -> w <> "")
       in
       match words with
       | [] -> ()
       | "c" :: "p" :: "weight" :: lit :: w :: _ ->
         (* Validation against the header (range, duplicates) happens at
            the end, once [num_vars] is known; the line number rides
            along so errors still point at the declaration. *)
         (match int_of_string_opt lit with
          | Some l when l > 0 ->
            weights := (lineno, l, parse_weight w) :: !weights
          | Some l when l < 0 -> () (* negative-literal weights are implied *)
          | Some _ -> fail lineno "bad weight literal 0"
          | None -> fail lineno "bad weight literal")
       | "c" :: _ -> ()
       | "p" :: "cnf" :: nv :: nc :: _ ->
         (match (int_of_string_opt nv, int_of_string_opt nc) with
          | Some nv, Some _ when nv >= 0 -> header := Some nv
          | _ -> fail lineno "bad p cnf header")
       | _ ->
         if !header = None then fail lineno "clause before p cnf header";
         List.iter
           (fun w ->
              match int_of_string_opt w with
              | None -> fail lineno ("bad literal " ^ w)
              | Some 0 ->
                let pos =
                  List.filter_map (fun l -> if l > 0 then Some l else None)
                    !current
                in
                let neg =
                  List.filter_map (fun l -> if l < 0 then Some (-l) else None)
                    !current
                in
                (* tautological clauses (v and -v) are dropped *)
                (try clauses := Nf.clause ~pos ~neg :: !clauses
                 with Invalid_argument _ -> ());
                current := []
              | Some l -> current := l :: !current)
           words)
    lines;
  finish_clause (List.length lines);
  match !header with
  | None -> invalid_arg "Dimacs: missing p cnf header"
  | Some num_vars ->
    let seen = Hashtbl.create 16 in
    let weights =
      List.rev !weights
      |> List.map (fun (lineno, v, w) ->
          if v > num_vars then
            fail lineno
              (Printf.sprintf "weight variable %d out of range 1..%d" v
                 num_vars);
          if Hashtbl.mem seen v then
            fail lineno
              (Printf.sprintf "duplicate weight declaration for variable %d" v);
          Hashtbl.replace seen v ();
          (v, w))
    in
    { num_vars; clauses = List.rev !clauses; weights }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_formula inst = Nf.cnf_to_formula inst.clauses
let variables inst = List.init inst.num_vars succ

let print inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" inst.num_vars (List.length inst.clauses));
  List.iter
    (fun (v, w) ->
       Buffer.add_string buf
         (Printf.sprintf "c p weight %d %s 0\n" v (Rat.to_string w)))
    inst.weights;
  List.iter
    (fun (c : Nf.clause) ->
       Vset.iter (fun v -> Buffer.add_string buf (string_of_int v ^ " ")) c.Nf.pos;
       Vset.iter
         (fun v -> Buffer.add_string buf ("-" ^ string_of_int v ^ " "))
         c.Nf.neg;
       Buffer.add_string buf "0\n")
    inst.clauses;
  Buffer.contents buf
