type stats = { branches : int; cache_hits : int }

(* Group a list of subformulas into variable-disjoint connected components
   (iterated merging; the lists involved are small). *)
let components fs =
  let merge groups (vs, fs) =
    let touching, rest =
      List.partition (fun (ws, _) -> not (Vset.disjoint vs ws)) groups
    in
    let vs' = List.fold_left (fun a (ws, _) -> Vset.union a ws) vs touching in
    let members = fs @ List.concat_map snd touching in
    (vs', members) :: rest
  in
  List.fold_left merge [] (List.map (fun f -> (Formula.vars f, [ f ])) fs)

(* Branching heuristic: a variable with the most occurrences. *)
let pick_var f =
  let occ = Hashtbl.create 16 in
  let bump v =
    Hashtbl.replace occ v (1 + Option.value ~default:0 (Hashtbl.find_opt occ v))
  in
  let rec go = function
    | Formula.True | Formula.False -> ()
    | Formula.Var v -> bump v
    | Formula.Not g -> go g
    | Formula.And gs | Formula.Or gs -> List.iter go gs
  in
  go f;
  let best = ref None in
  Hashtbl.iter
    (fun v c ->
       match !best with
       | Some (_, c') when c' >= c -> ()
       | _ -> best := Some (v, c))
    occ;
  match !best with Some (v, _) -> v | None -> invalid_arg "Dpll: no variable"

type state = {
  cache : (Formula.t, Kvec.t) Hashtbl.t;
  mutable branches : int;
  mutable cache_hits : int;
}

(* [kcount st f] is the size-stratified count vector of [f] over exactly
   [vars f].  Plain counting reuses it via [Kvec.total]; keeping a single
   recursion avoids subtle drift between the two counters. *)
let rec kcount st f =
  match f with
  | Formula.True -> Kvec.const_true ~n:0
  | Formula.False -> Kvec.const_false ~n:0
  | Formula.Var _ -> Kvec.singleton_true
  | Formula.Not g ->
    (* Complement over the same variable set. *)
    Kvec.complement (kcount st g)
  | Formula.And _ | Formula.Or _ ->
    (match Hashtbl.find_opt st.cache f with
     | Some v ->
       st.cache_hits <- st.cache_hits + 1;
       v
     | None ->
       let v = kcount_compound st f in
       Hashtbl.replace st.cache f v;
       v)

and kcount_compound st f =
  let children = match f with
    | Formula.And fs | Formula.Or fs -> fs
    | _ -> assert false
  in
  match components children with
  | ([] | [ _ ]) ->
    (* Single component: Shannon-expand on a most-frequent variable. *)
    let v = pick_var f in
    let n = Vset.cardinal (Formula.vars f) in
    st.branches <- st.branches + 1;
    let branch bit =
      let g = Formula.restrict v bit f in
      let ng = Vset.cardinal (Formula.vars g) in
      let kv = Kvec.extend (kcount st g) ~extra:(n - 1 - ng) in
      Kvec.with_var kv ~pol:bit
    in
    Kvec.add (branch false) (branch true)
  | groups ->
    (* Variable-disjoint components: conjunction convolves, disjunction
       multiplies non-model vectors. *)
    let part (vs, members) =
      let g = match f with
        | Formula.And _ -> Formula.and_ members
        | Formula.Or _ -> Formula.or_ members
        | _ -> assert false
      in
      (* [and_]/[or_] cannot drop variables here: members are nonconstant
         and mutually non-absorbing after smart construction. *)
      Kvec.extend (kcount st g)
        ~extra:(Vset.cardinal vs - Vset.cardinal (Formula.vars g))
    in
    let parts = List.map part groups in
    (match f with
     | Formula.And _ -> Kvec.conv_list parts
     | Formula.Or _ ->
       (* all − Π non-models *)
       Kvec.complement (Kvec.conv_list (List.map Kvec.complement parts))
     | _ -> assert false)

let fresh_state () = { cache = Hashtbl.create 256; branches = 0; cache_hits = 0 }

let count_by_size f =
  let st = fresh_state () in
  let v = kcount st (Formula.simplify f) in
  if Obs.enabled () then begin
    Obs.incr "dpll.counts";
    Obs.add "dpll.branches" st.branches;
    Obs.add "dpll.cache_hits" st.cache_hits
  end;
  v

let count f = Kvec.total (count_by_size f)

let check_universe ~vars f =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Formula.vars f) universe) then
    invalid_arg "Dpll: universe misses variables of the formula";
  List.length vars

let count_by_size_universe ~vars f =
  let n = check_universe ~vars f in
  let base = count_by_size f in
  Kvec.extend base ~extra:(n - Kvec.universe_size base)

let count_universe ~vars f = Kvec.total (count_by_size_universe ~vars f)

let count_with_stats f =
  let st = fresh_state () in
  let v = kcount st (Formula.simplify f) in
  (Kvec.total v, { branches = st.branches; cache_hits = st.cache_hits })

(* Weighted model counting: same search shape as [kcount], but the value
   at each node is the probability over exactly [vars f] (eliminated
   variables integrate out to factor 1, so no smoothing corrections are
   needed — probabilities, unlike counts, are universe-independent). *)
let wmc ~weights f =
  let cache : (Formula.t, Rat.t) Hashtbl.t = Hashtbl.create 256 in
  let rec go f =
    match f with
    | Formula.True -> Rat.one
    | Formula.False -> Rat.zero
    | Formula.Var v -> weights v
    | Formula.Not g -> Rat.sub Rat.one (go g)
    | Formula.And _ | Formula.Or _ ->
      (match Hashtbl.find_opt cache f with
       | Some p -> p
       | None ->
         let p = go_compound f in
         Hashtbl.replace cache f p;
         p)
  and go_compound f =
    let children = match f with
      | Formula.And fs | Formula.Or fs -> fs
      | _ -> assert false
    in
    match components children with
    | ([] | [ _ ]) ->
      let v = pick_var f in
      let w = weights v in
      Rat.add
        (Rat.mul (Rat.sub Rat.one w) (go (Formula.restrict v false f)))
        (Rat.mul w (go (Formula.restrict v true f)))
    | groups ->
      let part members = match f with
        | Formula.And _ -> go (Formula.and_ members)
        | Formula.Or _ -> go (Formula.or_ members)
        | _ -> assert false
      in
      (match f with
       | Formula.And _ ->
         List.fold_left (fun acc (_, ms) -> Rat.mul acc (part ms)) Rat.one groups
       | Formula.Or _ ->
         Rat.sub Rat.one
           (List.fold_left
              (fun acc (_, ms) -> Rat.mul acc (Rat.sub Rat.one (part ms)))
              Rat.one groups)
       | _ -> assert false)
  in
  go (Formula.simplify f)
