(** Brute-force model counting by exhaustive enumeration.

    The reference oracle every other counter is tested against.  Counts are
    relative to an explicit universe [vars], which may strictly contain the
    variables of the formula (the paper's [#F] is over the [n] declared
    variables).  Exponential: callers are limited to
    {!Semantics.max_enum_vars} variables. *)

(* Every brute call enumerates 2^|vars| assignments; ledger the volume so
   the counter shows up next to DPLL branch counts in reports. *)
let observe ~what n =
  if Obs.enabled () then begin
    Obs.incr ("brute." ^ what);
    if n <= 62 then Obs.add "brute.assignments" (1 lsl n)
  end

(* Counts are bounded by 2^max_enum_vars, so the accumulators are plain
   native ints; the enumeration works on assignment masks and allocates
   nothing per model. *)

let popcount mask =
  let c = ref 0 and m = ref mask in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr c
  done;
  !c

(** [count ~vars f] is [#F] over the universe [vars]. *)
let count ~vars f =
  let vars = Array.of_list vars in
  observe ~what:"counts" (Array.length vars);
  Bigint.of_int
    (Semantics.fold_model_masks ~vars f 0 (fun acc _ -> acc + 1))

(** [count_by_size ~vars f] is the vector [#_{0..n} F] over [vars]. *)
let count_by_size ~vars f =
  let vars_a = Array.of_list vars in
  let n = Array.length vars_a in
  observe ~what:"kcounts" n;
  let counts = Array.make (n + 1) 0 in
  Semantics.fold_model_masks ~vars:vars_a f () (fun () mask ->
      let k = popcount mask in
      counts.(k) <- counts.(k) + 1);
  Kvec.make ~n (Array.map Bigint.of_int counts)

(** [count_formula f] counts over exactly the variables of [f]. *)
let count_formula f = count ~vars:(Vset.elements (Formula.vars f)) f

(** [count_by_size_formula f] is {!count_by_size} over the variables of [f]. *)
let count_by_size_formula f =
  count_by_size ~vars:(Vset.elements (Formula.vars f)) f
