(** Brute-force model counting by exhaustive enumeration.

    The reference oracle every other counter is tested against.  Counts are
    relative to an explicit universe [vars], which may strictly contain the
    variables of the formula (the paper's [#F] is over the [n] declared
    variables).  Exponential: callers are limited to
    {!Semantics.max_enum_vars} variables. *)

(* Every brute call enumerates 2^|vars| assignments; ledger the volume so
   the counter shows up next to DPLL branch counts in reports. *)
let observe ~what n =
  if Obs.enabled () then begin
    Obs.incr ("brute." ^ what);
    if n <= 62 then Obs.add "brute.assignments" (1 lsl n)
  end

(** [count ~vars f] is [#F] over the universe [vars]. *)
let count ~vars f =
  let vars = Array.of_list vars in
  observe ~what:"counts" (Array.length vars);
  Semantics.fold_models ~vars f Bigint.zero (fun acc _ -> Bigint.succ acc)

(** [count_by_size ~vars f] is the vector [#_{0..n} F] over [vars]. *)
let count_by_size ~vars f =
  let vars_a = Array.of_list vars in
  let n = Array.length vars_a in
  observe ~what:"kcounts" n;
  let counts = Array.make (n + 1) Bigint.zero in
  let _ =
    Semantics.fold_models ~vars:vars_a f ()
      (fun () s ->
         let k = Vset.cardinal s in
         counts.(k) <- Bigint.succ counts.(k))
  in
  Kvec.make ~n counts

(** [count_formula f] counts over exactly the variables of [f]. *)
let count_formula f = count ~vars:(Vset.elements (Formula.vars f)) f

(** [count_by_size_formula f] is {!count_by_size} over the variables of [f]. *)
let count_by_size_formula f =
  count_by_size ~vars:(Vset.elements (Formula.vars f)) f
