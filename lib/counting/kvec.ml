(* The invariant throughout: [counts] has length [n + 1] and entry [k] is
   the number of models of size [k] over an [n]-variable universe. *)

type t = { n : int; counts : Bigint.t array }

let make ~n counts =
  if n < 0 then invalid_arg "Kvec.make: negative universe";
  if Array.length counts <> n + 1 then invalid_arg "Kvec.make: length mismatch";
  { n; counts = Array.copy counts }

let universe_size v = v.n
let get v k = if k < 0 || k > v.n then Bigint.zero else v.counts.(k)
let to_array v = Array.copy v.counts

let total v = Array.fold_left Bigint.add Bigint.zero v.counts

let equal a b =
  a.n = b.n
  && begin
    let ok = ref true in
    Array.iteri
      (fun i c -> if not (Bigint.equal c b.counts.(i)) then ok := false)
      a.counts;
    !ok
  end

let zero ~n = { n; counts = Array.make (n + 1) Bigint.zero }

(* Binomial rows for [all ~n], built once per [n] by Pascal's rule and
   shared thereafter: rows are immutable and every operation below
   allocates fresh output arrays, never mutating [counts] in place.
   Copy-on-write under a mutex for domain safety (same pattern as the
   factorial cache in [Combi]). *)
let binom_rows : Bigint.t array array ref = ref [||]
let binom_lock = Mutex.create ()

let binom_row n =
  let rows = !binom_rows in
  if n < Array.length rows then rows.(n)
  else begin
    Mutex.lock binom_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock binom_lock)
      (fun () ->
        let rows = !binom_rows in
        let have = Array.length rows in
        if n < have then rows.(n)
        else begin
          let rows' =
            Array.init (n + 1) (fun k -> if k < have then rows.(k) else [||])
          in
          for k = Stdlib.max have 0 to n do
            rows'.(k) <-
              (if k = 0 then [| Bigint.one |]
               else begin
                 let prev = rows'.(k - 1) in
                 Array.init (k + 1) (fun i ->
                     if i = 0 || i = k then Bigint.one
                     else Bigint.add prev.(i - 1) prev.(i))
               end)
          done;
          binom_rows := rows';
          rows'.(n)
        end)
  end

let all ~n = if n < 0 then { n; counts = [||] } else { n; counts = binom_row n }
let singleton_true = { n = 1; counts = [| Bigint.zero; Bigint.one |] }
let singleton_false = { n = 1; counts = [| Bigint.one; Bigint.zero |] }
let const_true ~n = all ~n
let const_false ~n = zero ~n

(* Multiply by a constant polynomial (a 0-variable vector). *)
let scale c v =
  if Bigint.equal c Bigint.one then v
  else { v with counts = Array.map (fun x -> Bigint.mul c x) v.counts }

let conv a b =
  if a.n = 0 then scale a.counts.(0) b
  else if b.n = 0 then scale b.counts.(0) a
  else begin
    let n = a.n + b.n in
    let out = Array.make (n + 1) Bigint.zero in
    for i = 0 to a.n do
      let ai = a.counts.(i) in
      if not (Bigint.is_zero ai) then
        for j = 0 to b.n do
          let bj = b.counts.(j) in
          if not (Bigint.is_zero bj) then
            out.(i + j) <- Bigint.add out.(i + j) (Bigint.mul ai bj)
        done
    done;
    { n; counts = out }
  end

let with_var v ~pol =
  let out = Array.make (v.n + 2) Bigint.zero in
  Array.blit v.counts 0 out (if pol then 1 else 0) (v.n + 1);
  { n = v.n + 1; counts = out }

(* Convolve a list of vectors with two reusable scratch buffers sized for
   the final universe, instead of one fresh array per fold step. *)
let conv_list parts =
  match parts with
  | [] -> const_true ~n:0
  | [ p ] -> p
  | first :: rest ->
    let total_n = List.fold_left (fun acc p -> acc + p.n) 0 parts in
    let cur = ref (Array.make (total_n + 1) Bigint.zero) in
    let buf = ref (Array.make (total_n + 1) Bigint.zero) in
    Array.blit first.counts 0 !cur 0 (first.n + 1);
    let cur_n = ref first.n in
    List.iter
      (fun p ->
         let nn = !cur_n + p.n in
         let c = !cur and b = !buf in
         Array.fill b 0 (nn + 1) Bigint.zero;
         for i = 0 to !cur_n do
           let ci = c.(i) in
           if not (Bigint.is_zero ci) then
             for j = 0 to p.n do
               let pj = p.counts.(j) in
               if not (Bigint.is_zero pj) then
                 b.(i + j) <- Bigint.add b.(i + j) (Bigint.mul ci pj)
             done
         done;
         cur := b;
         buf := c;
         cur_n := nn)
      rest;
    { n = total_n; counts = !cur }

let pointwise op a b =
  if a.n <> b.n then invalid_arg "Kvec: universe-size mismatch";
  { n = a.n; counts = Array.mapi (fun i c -> op c b.counts.(i)) a.counts }

let add a b = pointwise Bigint.add a b
let sub a b = pointwise Bigint.sub a b

let extend v ~extra =
  if extra < 0 then invalid_arg "Kvec.extend: negative"
  else if extra = 0 then v
  else conv v (all ~n:extra)

let complement v = sub (all ~n:v.n) v

let disjoint_or a b =
  (* Non-models multiply across disjoint universes. *)
  let non_a = complement a and non_b = complement b in
  sub (all ~n:(a.n + b.n)) (conv non_a non_b)

let weighted_sum v w =
  (* Horner from the top coefficient. *)
  let acc = ref Bigint.zero in
  for k = v.n downto 0 do
    acc := Bigint.add (Bigint.mul !acc w) v.counts.(k)
  done;
  !acc

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Bigint.pp)
    (Array.to_list v.counts)
