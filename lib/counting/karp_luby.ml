type estimate = {
  value : float;
  samples : int;
  relative_half_width : float;
}

let sample_bound ~clauses ~eps ~delta =
  if eps <= 0.0 || delta <= 0.0 || delta >= 1.0 || clauses <= 0 then
    invalid_arg "Karp_luby.sample_bound";
  int_of_float
    (ceil (3.0 *. float_of_int clauses *. log (2.0 /. delta) /. (eps *. eps)))

(* Uniform random Bigint in [0, bound): rejection sampling on bit blocks. *)
let random_below st bound =
  let bits = Bigint.bit_length bound in
  let rec draw () =
    let x = ref Bigint.zero in
    let remaining = ref bits in
    while !remaining > 0 do
      (* Random.State.int needs bound < 2^30, so draw at most 29 bits *)
      let take = Stdlib.min 29 !remaining in
      x :=
        Bigint.add
          (Bigint.mul !x (Bigint.pow Bigint.two take))
          (Bigint.of_int (Random.State.int st (1 lsl take)));
      remaining := !remaining - take
    done;
    if Bigint.compare !x bound < 0 then !x else draw ()
  in
  draw ()

let run ?monitor ~seed ~samples ~vars d ~eps =
  if d = [] || List.exists Vset.is_empty d then
    invalid_arg "Karp_luby: constant DNF";
  let universe = Vset.of_list vars in
  if not (Vset.subset (Nf.pdnf_vars d) universe) then
    invalid_arg "Karp_luby: universe misses clause variables";
  let n = List.length vars in
  let clauses = Array.of_list d in
  let m = Array.length clauses in
  (* cumulative coverage weights: w_i = 2^(n - |c_i|) *)
  let cumulative = Array.make m Bigint.zero in
  let total = ref Bigint.zero in
  Array.iteri
    (fun i c ->
       total := Bigint.add !total (Combi.pow2 (n - Vset.cardinal c));
       cumulative.(i) <- !total)
    clauses;
  let st = Random.State.make [| seed |] in
  let free_vars =
    Array.map (fun c -> Vset.elements (Vset.diff universe c)) clauses
  in
  let hits = ref 0 in
  for _ = 1 to samples do
    (* clause index by coverage weight *)
    let r = random_below st !total in
    let rec locate i = if Bigint.compare r cumulative.(i) < 0 then i else locate (i + 1) in
    let i = locate 0 in
    (* uniform model of clause i *)
    let model = ref clauses.(i) in
    List.iter
      (fun v -> if Random.State.bool st then model := Vset.add v !model)
      free_vars.(i);
    (* is i the first satisfied clause? *)
    let rec first j =
      if j >= i then true
      else if Vset.subset clauses.(j) !model then false
      else first (j + 1)
    in
    let hit = first 0 in
    if hit then incr hits;
    (match monitor with
     | Some c ->
       (* the coverage indicator is the bounded observable: E = #F / U *)
       Convergence.observe c ~player:0 (if hit then 1.0 else 0.0);
       Convergence.advance c 1
     | None -> ())
  done;
  {
    value =
      Bigint.to_float !total *. float_of_int !hits /. float_of_int samples;
    samples;
    relative_half_width = eps;
  }

let count ?monitor ?(seed = 0) ~eps ~delta ~vars d =
  let m = List.length d in
  let samples = sample_bound ~clauses:m ~eps ~delta in
  run ?monitor ~seed ~samples ~vars d ~eps

let count_samples ?monitor ?(seed = 0) ~samples ~vars d =
  if samples <= 0 then invalid_arg "Karp_luby.count_samples";
  run ?monitor ~seed ~samples ~vars d ~eps:Float.nan
