(** Size-stratified model-count vectors.

    For a function [F] over an [n]-variable universe, the vector
    [#_{0..n} F = (#_0 F, ..., #_n F)] of fixed-size model counts is the
    object computed by problem [#_* C] (Section 3).  Algebraically it is an
    integer polynomial [P_F(t) = Σ_k #_k F · t^k]: conjunction of
    variable-disjoint functions is coefficient convolution, extending the
    universe by unconstrained variables is convolution with a binomial
    vector, and complement is [(1+t)^n − P].  Those three operations drive
    both the circuit k-counter and the DPLL k-counter. *)

type t

(** [make ~n counts] wraps a vector of length [n+1].
    @raise Invalid_argument on length mismatch or negative [n]. *)
val make : n:int -> Bigint.t array -> t

(** [universe_size v] is [n]. *)
val universe_size : t -> int

(** [get v k] is [#_k]; zero outside [0..n]. *)
val get : t -> int -> Bigint.t

(** [to_array v] is the underlying vector (a copy), length [n+1]. *)
val to_array : t -> Bigint.t array

(** [total v] is [#F = Σ_k #_k F]. *)
val total : t -> Bigint.t

val equal : t -> t -> bool

(** [zero ~n] counts nothing: the vector of the unsatisfiable function. *)
val zero : n:int -> t

(** [all ~n] is the vector of the valid function: [#_k = C(n,k)]. *)
val all : n:int -> t

(** [singleton_true] / [singleton_false] are the vectors of the literal
    functions [X] and [¬X] over the 1-variable universe [{X}]. *)
val singleton_true : t

val singleton_false : t

(** [const_true ~n] over an [n]-universe equals {!all}; [const_false ~n]
    equals {!zero}. *)
val const_true : n:int -> t

val const_false : n:int -> t

(** [conv a b] is the vector of [A ∧ B] when [A], [B] are over disjoint
    universes (sizes add). *)
val conv : t -> t -> t

(** [with_var v ~pol] conjoins a fresh literal over a new variable: the
    universe grows by one and the counts shift up one size class when the
    literal is positive.  Equals [conv v singleton_true] (resp.
    [singleton_false]) without the multiply-add loop. *)
val with_var : t -> pol:bool -> t

(** [conv_list vs] is [List.fold_left conv (const_true ~n:0) vs], computed
    with reusable scratch buffers sized for the final universe. *)
val conv_list : t list -> t

(** [add a b] adds pointwise — the vector of a {e deterministic} (mutually
    exclusive) disjunction over a common universe.
    @raise Invalid_argument on universe-size mismatch. *)
val add : t -> t -> t

(** [sub a b] subtracts pointwise.
    @raise Invalid_argument on universe-size mismatch. *)
val sub : t -> t -> t

(** [extend v ~extra] re-expresses [v] over a universe enlarged by [extra]
    unconstrained variables (smoothing): convolution with binomials. *)
val extend : t -> extra:int -> t

(** [complement v] is the vector of [¬F] over the same universe. *)
val complement : t -> t

(** [disjoint_or a b] is the vector of [A ∨ B] when [A] and [B] are over
    disjoint universes: [(1+t)^{na+nb} − N_A · N_B] with [N] the non-model
    vectors. *)
val disjoint_or : t -> t -> t

(** [weighted_sum v w] is [Σ_k w^k · #_k] — the right-hand side of
    Claim 3.5 when [w = 2^l − 1]. *)
val weighted_sum : t -> Bigint.t -> Bigint.t

val pp : Format.formatter -> t -> unit
