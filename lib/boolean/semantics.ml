(** Brute-force semantics: model enumeration and equivalence checking.

    These are exponential-time reference procedures used by tests and by the
    exponential baselines in the benchmarks; the polynomial algorithms live
    in [Shapmc_counting] and [Shapmc_circuits].  All enumeration is over an
    explicit, ordered variable universe: the paper's counts [#F], [#_k F]
    are relative to the [n] declared variables, which may strictly include
    the variables occurring in the formula. *)

(** Hard cap on enumeration width, to fail fast instead of hanging. *)
let max_enum_vars = 26

let check_width n =
  if n > max_enum_vars then
    invalid_arg
      (Printf.sprintf "Semantics: %d variables exceeds brute-force cap %d" n
         max_enum_vars)

(** [make_eval ~vars f] is [fun mask -> f] under the valuation that sets
    [vars.(i)] true iff bit [i] of [mask] is set.  The variable-to-bit
    index is built once and shared across every mask, so enumeration
    loops stay allocation-free per assignment. *)
let make_eval ~vars f =
  let idx = Hashtbl.create (Array.length vars) in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) vars;
  fun mask ->
    Formula.eval
      (fun v ->
         match Hashtbl.find_opt idx v with
         | Some i -> mask land (1 lsl i) <> 0
         | None -> false)
      f

(** [eval_mask ~vars mask f] evaluates [f] under the valuation that sets
    [vars.(i)] true iff bit [i] of [mask] is set. *)
let eval_mask ~vars mask f = make_eval ~vars f mask

(** [fold_model_masks ~vars f init step] folds [step] over all models of
    [f], passed as bit masks over [vars] — the allocation-free core of
    {!fold_models}. *)
let fold_model_masks ~vars f init step =
  let n = Array.length vars in
  check_width n;
  let ev = make_eval ~vars f in
  let acc = ref init in
  for mask = 0 to (1 lsl n) - 1 do
    if ev mask then acc := step !acc mask
  done;
  !acc

(** [fold_models ~vars f init step] folds [step] over all models of [f]
    within the universe [vars]; models are passed as variable sets. *)
let fold_models ~vars f init step =
  let n = Array.length vars in
  fold_model_masks ~vars f init (fun acc mask ->
      let s = ref Vset.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then s := Vset.add vars.(i) !s
      done;
      step acc !s)

(** [models ~vars f] lists all models as variable sets (exponential!). *)
let models ~vars f =
  List.rev (fold_models ~vars f [] (fun acc s -> s :: acc))

(** [equivalent f g] checks [f ≡ g] by enumerating the union of their
    variables.  @raise Invalid_argument beyond {!max_enum_vars}. *)
let equivalent f g =
  let universe = Vset.union (Formula.vars f) (Formula.vars g) in
  let vars = Array.of_list (Vset.elements universe) in
  let n = Array.length vars in
  check_width n;
  let ev_f = make_eval ~vars f and ev_g = make_eval ~vars g in
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    if ev_f mask <> ev_g mask then ok := false
  done;
  !ok

(** [tautology f] holds iff [f] is true under every valuation. *)
let tautology f = equivalent f Formula.tru

(** [satisfiable f] holds iff [f] has a model. *)
let satisfiable f = not (equivalent f Formula.fls)
