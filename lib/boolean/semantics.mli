(** Brute-force semantics: model enumeration and equivalence checking.

    Exponential-time reference procedures used by the tests and by the
    exponential baselines in the benchmarks; the polynomial algorithms
    live in [Shapmc_counting] and [Shapmc_circuits].  All enumeration is
    over an explicit, ordered variable universe. *)

(** Hard cap on enumeration width, to fail fast instead of hanging. *)
val max_enum_vars : int

(** [eval_mask ~vars mask f] evaluates [f] under the valuation that sets
    [vars.(i)] true iff bit [i] of [mask] is set. *)
val eval_mask : vars:int array -> int -> Formula.t -> bool

(** [fold_model_masks ~vars f init step] folds [step] over all models of
    [f], passed as bit masks over [vars] (bit [i] set means [vars.(i)]
    true).  The allocation-free core of {!fold_models}: nothing is
    allocated per assignment beyond what [Formula.eval] itself does.
    @raise Invalid_argument beyond {!max_enum_vars} variables. *)
val fold_model_masks :
  vars:int array -> Formula.t -> 'a -> ('a -> int -> 'a) -> 'a

(** [fold_models ~vars f init step] folds [step] over all models of [f]
    within the universe [vars]; models are passed as variable sets.
    @raise Invalid_argument beyond {!max_enum_vars} variables. *)
val fold_models :
  vars:int array -> Formula.t -> 'a -> ('a -> Vset.t -> 'a) -> 'a

(** [models ~vars f] lists all models as variable sets (exponential!). *)
val models : vars:int array -> Formula.t -> Vset.t list

(** [equivalent f g] checks [f ≡ g] by enumerating the union of their
    variables.  @raise Invalid_argument beyond {!max_enum_vars}. *)
val equivalent : Formula.t -> Formula.t -> bool

(** [tautology f] holds iff [f] is true under every valuation. *)
val tautology : Formula.t -> bool

(** [satisfiable f] holds iff [f] has a model. *)
val satisfiable : Formula.t -> bool
