type blocks = (int * int list) list

let apply theta f = Formula.map_var theta f

(* Shared driver: each universe variable gets a block of fresh variables,
   combined by [combine] (disjunction for OR-substitution, conjunction for
   AND-substitution).  Blocks are allocated deterministically in ascending
   order of the original variable. *)
let block_subst ?universe ~kind ~combine ~widths f =
  let fvars = Formula.vars f in
  let universe =
    match universe with
    | None -> fvars
    | Some u ->
      if not (Vset.subset fvars u) then
        invalid_arg "Subst: universe misses variables of the formula";
      u
  in
  let supply = Fresh.make ~avoid:universe in
  let blocks =
    List.map
      (fun v ->
         let w = widths v in
         if w < 0 then invalid_arg "Subst: negative width";
         (v, Fresh.fresh_block supply w))
      (Vset.elements universe)
  in
  let table = Hashtbl.create 16 in
  List.iter
    (fun (v, zs) -> Hashtbl.replace table v (combine (List.map Formula.var zs)))
    blocks;
  let theta v =
    match Hashtbl.find_opt table v with
    | Some g -> g
    | None -> Formula.var v
  in
  let g = apply theta f in
  if Obs.enabled () then
    Obs.record_subst ~kind ~pre:(Formula.size f) ~post:(Formula.size g)
      ~fresh:(List.fold_left (fun acc (_, zs) -> acc + List.length zs) 0 blocks)
      ~width:
        (List.fold_left (fun acc (_, zs) -> max acc (List.length zs)) (-1)
           blocks)
      ();
  (g, blocks)

let or_subst ?universe ~widths f =
  block_subst ?universe ~kind:"formula.or" ~combine:Formula.or_ ~widths f

let uniform_or ?universe ~l f = or_subst ?universe ~widths:(fun _ -> l) f

let uniform_and ?universe ~l f =
  block_subst ?universe ~kind:"formula.and" ~combine:Formula.and_
    ~widths:(fun _ -> l) f

let uniform_or_except ?universe ~l ~keep f =
  let g, blocks =
    or_subst ?universe ~widths:(fun v -> if v = keep then 1 else l) f
  in
  match List.assoc_opt keep blocks with
  | Some [ z ] -> (g, z, blocks)
  | Some _ -> assert false
  | None -> invalid_arg "Subst.uniform_or_except: variable not in universe"

let isomorphic_copy ?universe f = or_subst ?universe ~widths:(fun _ -> 1) f

let zap ?universe ~zero f =
  or_subst ?universe ~widths:(fun v -> if Vset.mem v zero then 0 else 1) f
