type blocks = (int * int list) list

let det_or_chain zs =
  let rec go = function
    | [] -> Circuit.cfalse
    | [ z ] -> Circuit.cvar z
    | z :: rest ->
      Circuit.cor_det
        [ Circuit.cvar z;
          Circuit.cand [ Circuit.cnot (Circuit.cvar z); go rest ] ]
  in
  go zs

(* Negated occurrences get the paper's direct form ¬Z_1 ∧ ... ∧ ¬Z_l
   rather than a ¬-gate over the chain; both are correct, this one matches
   Lemma 9's construction. *)
let neg_chain zs =
  Circuit.cand (List.map (fun z -> Circuit.cnot (Circuit.cvar z)) zs)

let or_subst ?universe ~widths root =
  let cvars = Circuit.vars root in
  let universe =
    match universe with
    | None -> cvars
    | Some u ->
      if not (Vset.subset cvars u) then
        invalid_arg "Or_subst: universe misses circuit variables";
      u
  in
  let supply = Fresh.make ~avoid:universe in
  let block_tbl = Hashtbl.create 16 in
  let blocks = ref [] in
  Vset.iter
    (fun v ->
       let w = widths v in
       if w < 0 then invalid_arg "Or_subst: negative width";
       let zs = Fresh.fresh_block supply w in
       Hashtbl.replace block_tbl v zs;
       blocks := (v, zs) :: !blocks)
    universe;
  let memo = Hashtbl.create 64 in
  let rec go (g : Circuit.node) =
    match Hashtbl.find_opt memo g.id with
    | Some h -> h
    | None ->
      let h =
        match g.gate with
        | Circuit.Ctrue | Circuit.Cfalse -> g
        | Circuit.Cvar v -> det_or_chain (Hashtbl.find block_tbl v)
        | Circuit.Cnot { gate = Circuit.Cvar v; _ } ->
          neg_chain (Hashtbl.find block_tbl v)
        | Circuit.Cnot x -> Circuit.cnot (go x)
        | Circuit.Cand gs -> Circuit.cand (List.map go gs)
        | Circuit.Cor (Circuit.Deterministic, gs) ->
          Circuit.cor_det (List.map go gs)
        | Circuit.Cor (Circuit.Disjoint, gs) ->
          Circuit.cor_disj (List.map go gs)
      in
      Hashtbl.replace memo g.id h;
      h
  in
  let root' = go root in
  (* Pre/post gate counts witness Lemma 9's O(|G| + k·ℓ) bound; sizes are
     only computed when the ledger is live. *)
  if Obs.enabled () then
    Obs.record_subst ~kind:"circuit.or" ~pre:(Circuit.size root)
      ~post:(Circuit.size root')
      ~fresh:(List.fold_left (fun acc (_, zs) -> acc + List.length zs) 0 !blocks)
      ~width:
        (List.fold_left (fun acc (_, zs) -> max acc (List.length zs)) (-1)
           !blocks)
      ();
  (root', List.rev !blocks)

let uniform_or ?universe ~l g = or_subst ?universe ~widths:(fun _ -> l) g

let uniform_or_except ?universe ~l ~keep g =
  let g', blocks =
    or_subst ?universe ~widths:(fun v -> if v = keep then 1 else l) g
  in
  match List.assoc_opt keep blocks with
  | Some [ z ] -> (g', z, blocks)
  | Some _ -> assert false
  | None -> invalid_arg "Or_subst.uniform_or_except: variable not in universe"

let isomorphic_copy ?universe g = or_subst ?universe ~widths:(fun _ -> 1) g

let zap ?universe ~zero g =
  or_subst ?universe ~widths:(fun v -> if Vset.mem v zero then 0 else 1) g
