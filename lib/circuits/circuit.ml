type or_kind = Deterministic | Disjoint

type gate =
  | Ctrue
  | Cfalse
  | Cvar of int
  | Cnot of node
  | Cand of node list
  | Cor of or_kind * node list

and node = { id : int; gate : gate; vars : Vset.t }

(* Hash-consing: gates are keyed by constructor + child ids, so structurally
   equal gates share a node and [id] equality is semantic equality for
   nodes built through this module. *)
type key =
  | Ktrue
  | Kfalse
  | Kvar of int
  | Knot of int
  | Kand of int list
  | Kor of or_kind * int list

let table : (key, node) Hashtbl.t = Hashtbl.create 1024
let next_id = ref 0

(* The hash-cons table is process-global, so [intern] must be safe under
   the [--jobs] parallel fan-out: the lookup-or-insert is atomic under
   [lock].  Node IDS may then depend on domain scheduling (two domains
   interning fresh gates race for [next_id]), but node IDENTITY does not:
   structurally equal gates still share one node, children keys are
   id-sorted per call, and everything downstream (counting, Shapley
   arithmetic) is exact bigint/rational math over gate STRUCTURE — so
   all results are scheduling-independent even though ids are not. *)
let lock = Mutex.create ()

let intern key gate vars =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
       match Hashtbl.find_opt table key with
       | Some n -> n
       | None ->
         let n = { id = !next_id; gate; vars } in
         incr next_id;
         Hashtbl.replace table key n;
         n)

let ctrue = intern Ktrue Ctrue Vset.empty
let cfalse = intern Kfalse Cfalse Vset.empty
let cbool b = if b then ctrue else cfalse
let cvar v = intern (Kvar v) (Cvar v) (Vset.singleton v)

let cnot g =
  match g.gate with
  | Ctrue -> cfalse
  | Cfalse -> ctrue
  | Cnot h -> h
  | _ -> intern (Knot g.id) (Cnot g) g.vars

let union_vars gs =
  List.fold_left (fun acc g -> Vset.union acc g.vars) Vset.empty gs

let check_pairwise_disjoint ~what gs =
  let rec go seen = function
    | [] -> ()
    | g :: rest ->
      if not (Vset.disjoint seen g.vars) then
        invalid_arg (Printf.sprintf "Circuit.%s: children share variables" what);
      go (Vset.union seen g.vars) rest
  in
  go Vset.empty gs

(* Children are dedup-sorted by id so that hash-consing is insensitive to
   argument order (∧ and ∨ are commutative). *)
let norm_children gs =
  List.sort_uniq (fun a b -> Stdlib.compare a.id b.id) gs

let cand gs =
  if List.exists (fun g -> g.gate = Cfalse) gs then cfalse
  else begin
    let gs = norm_children (List.filter (fun g -> g.gate <> Ctrue) gs) in
    match gs with
    | [] -> ctrue
    | [ g ] -> g
    | gs ->
      check_pairwise_disjoint ~what:"cand" gs;
      intern (Kand (List.map (fun g -> g.id) gs)) (Cand gs) (union_vars gs)
  end

(* For a deterministic ∨, a [Ctrue] child forces every other child to be
   unsatisfiable, so the gate is equivalent to true. *)
let cor kind gs =
  if List.exists (fun g -> g.gate = Ctrue) gs then ctrue
  else begin
    let gs = norm_children (List.filter (fun g -> g.gate <> Cfalse) gs) in
    match gs with
    | [] -> cfalse
    | [ g ] -> g
    | gs ->
      (match kind with
       | Disjoint -> check_pairwise_disjoint ~what:"cor_disj" gs
       | Deterministic -> ());
      intern (Kor (kind, List.map (fun g -> g.id) gs)) (Cor (kind, gs))
        (union_vars gs)
  end

let cor_det gs = cor Deterministic gs
let cor_disj gs = cor Disjoint gs

let vars g = g.vars

let fold f init root =
  let seen = Hashtbl.create 64 in
  let acc = ref init in
  let rec go g =
    if not (Hashtbl.mem seen g.id) then begin
      Hashtbl.replace seen g.id ();
      (match g.gate with
       | Ctrue | Cfalse | Cvar _ -> ()
       | Cnot h -> go h
       | Cand gs | Cor (_, gs) -> List.iter go gs);
      acc := f !acc g
    end
  in
  go root;
  !acc

let size g = fold (fun n _ -> n + 1) 0 g

let edge_count g =
  fold
    (fun n node ->
       match node.gate with
       | Ctrue | Cfalse | Cvar _ -> n
       | Cnot _ -> n + 1
       | Cand gs | Cor (_, gs) -> n + List.length gs)
    0 g

let eval env root =
  (* Memoized over the DAG so shared gates are evaluated once. *)
  let memo = Hashtbl.create 64 in
  let rec go g =
    match Hashtbl.find_opt memo g.id with
    | Some b -> b
    | None ->
      let b =
        match g.gate with
        | Ctrue -> true
        | Cfalse -> false
        | Cvar v -> env v
        | Cnot h -> not (go h)
        | Cand gs -> List.for_all go gs
        | Cor (_, gs) -> List.exists go gs
      in
      Hashtbl.replace memo g.id b;
      b
  in
  go root

let eval_set s g = eval (fun v -> Vset.mem v s) g

let rec to_formula g =
  match g.gate with
  | Ctrue -> Formula.tru
  | Cfalse -> Formula.fls
  | Cvar v -> Formula.var v
  | Cnot h -> Formula.not_ (to_formula h)
  | Cand gs -> Formula.and_ (List.map to_formula gs)
  | Cor (_, gs) -> Formula.or_ (List.map to_formula gs)

let check_deterministic ~max_vars root =
  let ok = ref true in
  let check_gate g =
    match g.gate with
    | Cor (Deterministic, gs) ->
      let vs = Array.of_list (Vset.elements g.vars) in
      if Array.length vs > max_vars then
        invalid_arg "Circuit.check_deterministic: gate scope too large";
      for mask = 0 to (1 lsl Array.length vs) - 1 do
        let env v =
          let rec idx i = if vs.(i) = v then i else idx (i + 1) in
          mask land (1 lsl idx 0) <> 0
        in
        let sat = List.filter (fun child -> eval env child) gs in
        if List.length sat > 1 then ok := false
      done
    | _ -> ()
  in
  fold (fun () g -> check_gate g) () root;
  !ok

let equivalent_formula ~max_vars g f =
  let universe = Vset.union g.vars (Formula.vars f) in
  let vs = Array.of_list (Vset.elements universe) in
  let n = Array.length vs in
  if n > max_vars then
    invalid_arg "Circuit.equivalent_formula: too many variables";
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let s = ref Vset.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then s := Vset.add vs.(i) !s
    done;
    if eval_set !s g <> Formula.eval_set !s f then ok := false
  done;
  !ok

let rec pp ppf g =
  match g.gate with
  | Ctrue -> Format.pp_print_string ppf "1"
  | Cfalse -> Format.pp_print_string ppf "0"
  | Cvar v -> Format.fprintf ppf "x%d" v
  | Cnot h -> Format.fprintf ppf "!%a" pp h
  | Cand gs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
         pp)
      gs
  | Cor (k, gs) ->
    let sep = match k with Deterministic -> " |d " | Disjoint -> " |x " in
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "%s" sep)
         pp)
      gs
