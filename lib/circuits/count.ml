(* One bottom-up pass; the memo is per call (node ids are process-global,
   so a persistent memo would never see collisions, but per-call keeps the
   module stateless). *)

let count_by_size_circuit root =
  if Obs.enabled () then begin
    Obs.incr "circuit.kcounts";
    Obs.add "circuit.kcount_gates" (Circuit.size root)
  end;
  let memo : (int, Kvec.t) Hashtbl.t = Hashtbl.create 256 in
  let smooth_to scope child_vec child_vars =
    Kvec.extend child_vec
      ~extra:(Vset.cardinal scope - Vset.cardinal child_vars)
  in
  let rec go (g : Circuit.node) =
    match Hashtbl.find_opt memo g.id with
    | Some v -> v
    | None ->
      let v =
        match g.gate with
        | Circuit.Ctrue -> Kvec.const_true ~n:0
        | Circuit.Cfalse -> Kvec.const_false ~n:0
        | Circuit.Cvar _ -> Kvec.singleton_true
        | Circuit.Cnot h -> Kvec.complement (go h)
        | Circuit.Cand gs -> Kvec.conv_list (List.map go gs)
        | Circuit.Cor (Circuit.Deterministic, gs) ->
          List.fold_left
            (fun acc h ->
               Kvec.add acc (smooth_to g.vars (go h) (Circuit.vars h)))
            (Kvec.const_false ~n:(Vset.cardinal g.vars))
            gs
        | Circuit.Cor (Circuit.Disjoint, gs) ->
          (* all − Π (non-models of children).  Each factor lives on its
             child's scope, and [conv] adds universes, so [non] lives on
             Σ|vars h| — which equals |g.vars| exactly because cor_disj
             enforces pairwise-disjoint child scopes and sets the gate
             scope to their union.  The [smooth_to] below is therefore a
             no-op ([extra = 0]) for every constructible circuit; it
             pins the invariant so a future scope change cannot silently
             complement over the wrong universe. *)
          let non = Kvec.conv_list (List.map (fun h -> Kvec.complement (go h)) gs) in
          Kvec.complement
            (Kvec.extend non
               ~extra:(Vset.cardinal g.vars - Kvec.universe_size non))
      in
      Hashtbl.replace memo g.id v;
      v
  in
  go root

let count_by_size ~vars g =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Circuit.vars g) universe) then
    invalid_arg "Count: universe misses circuit variables";
  let base = count_by_size_circuit g in
  Kvec.extend base ~extra:(List.length vars - Kvec.universe_size base)

let count ~vars g = Kvec.total (count_by_size ~vars g)
let count_circuit g = Kvec.total (count_by_size_circuit g)
