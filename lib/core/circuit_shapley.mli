(** Shapley values on deterministic & decomposable circuits — Theorem 4.1.

    Two polynomial algorithms are provided:

    - {!shap_direct} conditions the circuit on [X_i := 1] / [X_i := 0]
      (conditioning preserves d-D), runs the stratified circuit counter,
      and applies Eq. (2): [O(n)] conditionings of cost [O(|G| · n^2)] —
      the practical algorithm.
    - {!shap_via_reduction} is the paper's constructive proof made
      executable: the [#_*]-oracle of Lemma 3.2 is realised through
      Lemma 3.3, whose [#]-oracle calls land on OR-substituted circuits
      built by {!Shapmc_circuits.Or_subst} (Lemma 9) and counted by the
      plain circuit counter.

    The reverse direction {!count_via_shap} counts models of a circuit
    using only a Shapley oracle (Lemma 3.4 over circuits). *)

(** [shap_direct ~vars g] returns the Shapley value of every universe
    variable.  @raise Invalid_argument if [vars] misses circuit
    variables. *)
val shap_direct : vars:int list -> Circuit.node -> (int * Rat.t) list

(** [shap_direct_cached ~cache ~tags ~vars g] is {!shap_direct} with
    every stratified count vector routed through the cache's counts
    tier, keyed on the hash-consed circuit identity, the universe and
    the restriction — so a re-solve of a known circuit (after a partial
    result eviction, or a universe change that left the lineage intact)
    skips all counting.  Fills are ledgered as [cache.kcount] oracle
    calls; a fully warm sweep is oracle-free. *)
val shap_direct_cached :
  cache:Cache.t -> ?tags:string list -> vars:int list -> Circuit.node ->
  (int * Rat.t) list

(** [shap_via_reduction ~vars g] computes the same values through the
    Lemma 3.2 + 3.3 + Lemma 9 oracle chain. *)
val shap_via_reduction : vars:int list -> Circuit.node -> (int * Rat.t) list

(** [count_via_shap ~vars g] computes [#G] using only Shapley-value
    computations on OR-substituted copies of [g] (Lemma 3.4). *)
val count_via_shap : vars:int list -> Circuit.node -> Bigint.t

(** [kcounts_via_reduction ~vars g] computes [#_{0..n} G] by the Lemma 3.3
    route (OR-substitute with [l = 1..n+1], count, interpolate) — the
    ablation partner of the direct stratified counter in experiment E8. *)
val kcounts_via_reduction : vars:int list -> Circuit.node -> Kvec.t

(** [interaction ~vars g i j] is the (pairwise) Shapley interaction index

    {v I(i,j) = Σ_{S ⊆ N∖{i,j}} |S|!(n−|S|−2)!/(n−1)! · Δij(S)
       Δij(S) = F(S∪{i,j}) − F(S∪{i}) − F(S∪{j}) + F(S) v}

    computed polynomially on the d-D circuit by stratified counting of the
    four conditionings of [(X_i, X_j)] — the same mechanism as
    {!shap_direct}, one level up.  Positive values mean [i] and [j] are
    complementary, negative substitutive, zero independent.
    @raise Invalid_argument if [i = j], either is outside [vars], or
    [vars] has fewer than 2 variables. *)
val interaction : vars:int list -> Circuit.node -> int -> int -> Rat.t

(** [interaction_naive ~vars f i j] — exponential reference on a
    formula. *)
val interaction_naive : vars:int list -> Formula.t -> int -> int -> Rat.t
