type count_oracle = {
  oracle_name : string;
  count : vars:int list -> Formula.t -> Bigint.t;
}

type shap_oracle = {
  shap_name : string;
  shap : vars:int list -> Formula.t -> (int * Rat.t) list;
}

let brute_count_oracle =
  { oracle_name = "brute"; count = (fun ~vars f -> Brute.count ~vars f) }

let dpll_count_oracle =
  { oracle_name = "dpll"; count = (fun ~vars f -> Dpll.count_universe ~vars f) }

let shap_oracle_of_subsets =
  { shap_name = "eq2-subsets"; shap = (fun ~vars f -> Naive.shap_subsets ~vars f) }

let sorted_universe ~vars f =
  let universe = Vset.of_list vars in
  if Vset.cardinal universe <> List.length vars then
    invalid_arg "Pipeline: duplicate variables in the universe";
  if not (Vset.subset (Formula.vars f) universe) then
    invalid_arg "Pipeline: universe misses variables of the formula";
  (universe, List.sort compare vars)

(* Every oracle consultation goes through these wrappers so the Obs ledger
   records the paper's cost measure: which oracle, on how many variables,
   at which substitution arity ℓ, on how large an instance — and, when a
   trace is recording, which lemma issued the call.  The metadata (sizes,
   lengths) is only computed when the ledger is live. *)
let ledgered_count ~oracle ?arity ?attrs ~vars f =
  if not (Obs.enabled ()) then oracle.count ~vars f
  else
    Obs.call ~oracle:oracle.oracle_name ~n:(List.length vars) ?arity ?attrs
      ~size:(Formula.size f)
      (fun () -> oracle.count ~vars f)

let ledgered_shap ~oracle ?arity ?attrs ~vars f =
  if not (Obs.enabled ()) then oracle.shap ~vars f
  else
    Obs.call ~oracle:oracle.shap_name ~n:(List.length vars) ?arity ?attrs
      ~size:(Formula.size f)
      (fun () -> oracle.shap ~vars f)

(* Content key of a (oracle, universe, formula) computation: formulas
   print re-parseably, so the text is an exact identity. *)
let formula_key ~prefix ~oracle ~sorted f =
  Fingerprint.digest
    (prefix :: oracle.oracle_name :: Formula.to_string f
    :: List.map string_of_int sorted)

(* Lemma 3.3 instantiated with formula OR-substitution.  With [cache],
   the whole stratified vector is memoized in the counts tier — the
   oracle answers of one sweep are content-addressed, so a repeated
   query (the serving pattern) pays zero oracle calls. *)
let kcounts_via_count_oracle ?cache ~oracle ~vars f =
  let universe, sorted = sorted_universe ~vars f in
  let n = List.length sorted in
  let compute () =
    Obs.with_span "pipeline.kcounts_via_count_oracle"
      ~attrs:[ ("n", Trace.Int n) ]
    @@ fun () ->
    Reductions.kcounts_via_counting ~n ~count_subst:(fun ~l ->
        let g, blocks = Subst.uniform_or ~universe ~l f in
        ledgered_count ~oracle ~arity:l
          ~attrs:[ ("lemma", Trace.Str "3.3") ]
          ~vars:(List.concat_map snd blocks) g)
  in
  match cache with
  | None -> compute ()
  | Some c ->
    Cache.counts c ~key:(formula_key ~prefix:"l3.3" ~oracle ~sorted f) compute

(* Lemma 3.2 over Lemma 3.3: the full Shap(C) ≤P #~C chain.  Following the
   proof, the #_*-oracle is consulted on the isomorphic copy ~F and on the
   zapped functions ~F' rather than on F itself — both live in ~C. *)
let shap_via_count_oracle ?cache ~oracle ~vars f =
  let universe, sorted = sorted_universe ~vars f in
  let n = List.length sorted in
  let compute () =
    Obs.with_span "pipeline.shap_via_count_oracle"
      ~attrs:[ ("n", Trace.Int n) ]
    @@ fun () ->
    let kcount_full =
      Obs.phase "lemma3.2.full" ~attrs:[ ("n", Trace.Int n) ];
      let tilde_f, blocks = Subst.isomorphic_copy ~universe f in
      kcounts_via_count_oracle ?cache ~oracle
        ~vars:(List.concat_map snd blocks)
        tilde_f
    in
    let sorted_arr = Array.of_list sorted in
    let kcount_drop pos =
      let i = sorted_arr.(pos) in
      Obs.phase "lemma3.2.drop" ~attrs:[ ("i", Trace.Int i) ];
      let tilde_f', blocks =
        Subst.zap ~universe ~zero:(Vset.singleton i) f
      in
      kcounts_via_count_oracle ?cache ~oracle
        ~vars:(List.concat_map snd blocks)
        tilde_f'
    in
    let values = Reductions.shap_via_kcounts ~n ~kcount_full ~kcount_drop in
    List.mapi (fun pos i -> (i, values.(pos))) sorted
  in
  match cache with
  | None -> compute ()
  | Some c ->
    (* The full answer also lands in the shapley tier, per variable, so
       a repeated CLI/serving invocation skips even the interpolation. *)
    fst
      (Cache.shapley_all c
         ~key:(formula_key ~prefix:"l3.2" ~oracle ~sorted f)
         (fun () -> (compute (), oracle.oracle_name)))

(* Lemma 3.4: #C ≤P Shap(~C).  [sorted_arr] is the sorted universe as an
   array, so the n² (l, pos) consultations index it in O(1) instead of
   walking the list on every call. *)
let shap_subst_of_oracle ~oracle ~universe ~sorted_arr f ~l ~pos =
  let i = sorted_arr.(pos) in
  let g, z, blocks = Subst.uniform_or_except ~universe ~l ~keep:i f in
  let gvars = List.concat_map snd blocks in
  match
    List.assoc_opt z
      (ledgered_shap ~oracle ~arity:l
         ~attrs:[ ("lemma", Trace.Str "3.4") ]
         ~vars:gvars g)
  with
  | Some v -> v
  | None -> failwith "Pipeline: Shapley oracle did not report Z_i"

let kcounts_via_shap_oracle ~oracle ~vars f =
  let universe, sorted = sorted_universe ~vars f in
  let n = List.length sorted in
  let f_zero = Formula.eval_set Vset.empty f in
  Obs.with_span "pipeline.kcounts_via_shap_oracle" @@ fun () ->
  Reductions.kcounts_via_shap ~n ~f_zero
    ~shap_subst:
      (shap_subst_of_oracle ~oracle ~universe
         ~sorted_arr:(Array.of_list sorted) f)

let count_via_shap_oracle ~oracle ~vars f =
  Kvec.total (kcounts_via_shap_oracle ~oracle ~vars f)

(* ------------------------------------------------------------------ *)
(* The prior-work PQE route [13]: Shapley values from a probabilistic-
   evaluation oracle instead of a counting oracle.  Same Lemma 3.2 core,
   but the #_*-oracle is realized by interpolation on the uniform tuple
   probability θ (Reductions.kcounts_via_probability) — no OR-substitution
   involved.  This is the baseline the paper's open problem was about. *)

type pqe_oracle = {
  pqe_name : string;
  prob : theta:Rat.t -> vars:int list -> Formula.t -> Rat.t;
}

(* Exact PQE via knowledge compilation: P(F) on the compiled circuit. *)
let pqe_circuit_oracle =
  {
    pqe_name = "compiled-circuit";
    prob =
      (fun ~theta ~vars f ->
         ignore vars;
         (* free universe variables do not change the probability *)
         Prob.probability ~weights:(fun _ -> theta) (Compile.compile f));
  }

let ledgered_prob ~oracle ~theta ~vars f =
  if not (Obs.enabled ()) then oracle.prob ~theta ~vars f
  else
    Obs.call ~oracle:oracle.pqe_name ~n:(List.length vars)
      ~size:(Formula.size f)
      ~attrs:[ ("lemma", Trace.Str "pqe") ]
      (fun () -> oracle.prob ~theta ~vars f)

let kcounts_via_pqe_oracle ~oracle ~vars f =
  let _, sorted = sorted_universe ~vars f in
  let n = List.length sorted in
  Obs.with_span "pipeline.kcounts_via_pqe_oracle" @@ fun () ->
  Reductions.kcounts_via_probability ~n ~prob:(fun ~theta ->
      ledgered_prob ~oracle ~theta ~vars f)

let shap_via_pqe_oracle ~oracle ~vars f =
  let _, sorted = sorted_universe ~vars f in
  let n = List.length sorted in
  Obs.with_span "pipeline.shap_via_pqe_oracle"
    ~attrs:[ ("n", Trace.Int n) ]
  @@ fun () ->
  (* Same Lemma 3.2 phase structure as the counting route, so traces of
     either route attribute oracle calls to the full/drop stages alike. *)
  let kcount_full =
    Obs.phase "lemma3.2.full" ~attrs:[ ("n", Trace.Int n) ];
    kcounts_via_pqe_oracle ~oracle ~vars f
  in
  let sorted_arr = Array.of_list sorted in
  let kcount_drop pos =
    let i = sorted_arr.(pos) in
    Obs.phase "lemma3.2.drop" ~attrs:[ ("i", Trace.Int i) ];
    let others = List.filter (fun v -> v <> i) sorted in
    kcounts_via_pqe_oracle ~oracle ~vars:others (Formula.restrict i false f)
  in
  let values = Reductions.shap_via_kcounts ~n ~kcount_full ~kcount_drop in
  List.mapi (fun pos i -> (i, values.(pos))) sorted

let roundtrip_count ~vars f =
  let inner =
    {
      shap_name = "shap-via-dpll-counting";
      shap = (fun ~vars f -> shap_via_count_oracle ~oracle:dpll_count_oracle ~vars f);
    }
  in
  count_via_shap_oracle ~oracle:inner ~vars f
