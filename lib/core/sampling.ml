type estimate = { variable : int; value : float; half_width : float }

let samples_for ~eps ~delta =
  if eps <= 0.0 || delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Sampling.samples_for";
  (* marginals range over [-1, 1], width 2: m >= 2 ln(2/δ) / ε² *)
  let m = ceil (2.0 *. log (2.0 /. delta) /. (eps *. eps)) in
  if not (Float.is_finite m) || m > 1e15 then
    invalid_arg "Sampling.samples_for: bound above 1e15 samples";
  int_of_float m

(* variable → index in the sorted player array, built once per run so
   the per-marginal lookup is O(1) instead of a linear scan *)
let index_table sorted =
  let idx = Hashtbl.create (Array.length sorted) in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) sorted;
  fun v -> Hashtbl.find idx v

let sorted_vars ~who ~vars f =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Formula.vars f) universe) then
    invalid_arg (who ^ ": universe misses variables");
  Array.of_list (List.sort compare vars)

let shap_sample ?(seed = 0) ?(delta = 0.05) ~samples ~vars f =
  if samples <= 0 then invalid_arg "Sampling.shap_sample: samples <= 0";
  let sorted = sorted_vars ~who:"Sampling.shap_sample" ~vars f in
  let st = Random.State.make [| seed |] in
  let n = Array.length sorted in
  let idx_of = index_table sorted in
  let totals = Array.make n 0 in
  let perm = Array.copy sorted in
  for _ = 1 to samples do
    (* Fisher–Yates shuffle *)
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    (* walk the permutation, evaluating F on the growing prefix *)
    let prefix = ref Vset.empty in
    let value = ref (Formula.eval_set Vset.empty f) in
    Array.iter
      (fun v ->
         let next = Vset.add v !prefix in
         let value' = Formula.eval_set next f in
         let marginal = Bool.to_int value' - Bool.to_int !value in
         let i = idx_of v in
         totals.(i) <- totals.(i) + marginal;
         prefix := next;
         value := value')
      perm
  done;
  let m = float_of_int samples in
  let half_width = 2.0 *. sqrt (log (2.0 /. delta) /. (2.0 *. m)) in
  Array.to_list
    (Array.mapi
       (fun i v ->
          { variable = sorted.(i); value = float_of_int v /. m; half_width })
       totals)

(* {1 Estimator suite} *)

type estimator = Permutation | Truncated | Antithetic | Stratified

let estimator_of_string = function
  | "permutation" -> Some Permutation
  | "truncated" -> Some Truncated
  | "antithetic" -> Some Antithetic
  | "stratified" -> Some Stratified
  | _ -> None

let estimator_name = function
  | Permutation -> "permutation"
  | Truncated -> "truncated"
  | Antithetic -> "antithetic"
  | Stratified -> "stratified"

(* Fixed seed-stream tag per estimator, part of every batch's RNG key.
   Truncated shares Permutation's stream on purpose: truncation skips
   evaluations but draws no randomness, so the two produce identical
   estimates — the bench asserts exactly that. *)
let estimator_tag = function
  | Permutation | Truncated -> 1
  | Antithetic -> 3
  | Stratified -> 4

type progress = {
  pr_samples : int;
  pr_half_width : float;
  pr_elapsed : float;
}

type report = {
  estimates : estimate list;
  samples_used : int;
  evals : int;
  converged : bool;
  wall : float;
  monitor : Convergence.t;
}

(* One worker batch's exact integer accumulators.  Marginal sums stay in
   [int] (marginals are in {-1, 0, 1}, pair/group sums in small ranges),
   so the float moments derived from them — and therefore the merged
   monitor state — depend only on the batch schedule, never on how many
   domains executed it. *)
type batch = {
  b_sums : int array;  (* per player: Σ observation-numerator *)
  b_sumsq : int array;  (* per player: Σ (observation-numerator)² *)
  b_units : int;  (* observations contributed *)
  b_evals : int;  (* Formula.eval_set calls *)
}

(* batch geometry: permutations consumed by one observation *)
let unit_perms ~players = function
  | Permutation | Truncated -> 1
  | Antithetic -> 2
  | Stratified -> players

(* observation = numerator / scale, with numerator the int accumulator *)
let obs_scale ~players = function
  | Permutation | Truncated -> 1.0
  | Antithetic -> 2.0
  | Stratified -> float_of_int players

let batches_per_round = 4
let target_batch_perms = 64

let run_batch ~f ~sorted ~idx_of ~truncate ~estimator ~seed ~batch_index
    ~units =
  let n = Array.length sorted in
  let st = Random.State.make [| seed; estimator_tag estimator; batch_index |] in
  let perm = Array.copy sorted in
  let sums = Array.make n 0
  and sumsq = Array.make n 0
  and marg = Array.make n 0 in
  let evals = ref 0 in
  let shuffle () =
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done
  in
  (* walk positions [order 0 .. order (n-1)] of [perm], leaving each
     player's marginal in [marg].  With [truncate] (positive formulas
     only), once the prefix satisfies [f] every later marginal is 0 by
     monotonicity, so the remaining evaluations are skipped. *)
  let walk order =
    let prefix = ref Vset.empty in
    incr evals;
    let value = ref (Formula.eval_set Vset.empty f) in
    for j = 0 to n - 1 do
      let v = order j in
      let i = idx_of v in
      if truncate && !value then marg.(i) <- 0
      else begin
        let next = Vset.add v !prefix in
        incr evals;
        let value' = Formula.eval_set next f in
        marg.(i) <- Bool.to_int value' - Bool.to_int !value;
        prefix := next;
        value := value'
      end
    done
  in
  let forward j = perm.(j) in
  (match estimator with
  | Permutation | Truncated ->
      for _ = 1 to units do
        shuffle ();
        walk forward;
        for i = 0 to n - 1 do
          sums.(i) <- sums.(i) + marg.(i);
          sumsq.(i) <- sumsq.(i) + (marg.(i) * marg.(i))
        done
      done
  | Antithetic ->
      let first = Array.make n 0 in
      for _ = 1 to units do
        shuffle ();
        walk forward;
        Array.blit marg 0 first 0 n;
        walk (fun j -> perm.(n - 1 - j));
        for i = 0 to n - 1 do
          let s = first.(i) + marg.(i) in
          sums.(i) <- sums.(i) + s;
          sumsq.(i) <- sumsq.(i) + (s * s)
        done
      done
  | Stratified ->
      let group = Array.make n 0 in
      for _ = 1 to units do
        shuffle ();
        Array.fill group 0 n 0;
        for s = 0 to n - 1 do
          walk (fun j -> perm.((j + s) mod n));
          for i = 0 to n - 1 do
            group.(i) <- group.(i) + marg.(i)
          done
        done;
        for i = 0 to n - 1 do
          sums.(i) <- sums.(i) + group.(i);
          sumsq.(i) <- sumsq.(i) + (group.(i) * group.(i))
        done
      done);
  { b_sums = sums; b_sumsq = sumsq; b_units = units; b_evals = !evals }

let merge_batch monitor ~scale ~players b =
  if b.b_units > 0 then begin
    let c = float_of_int b.b_units in
    for i = 0 to players - 1 do
      let s = float_of_int b.b_sums.(i)
      and q = float_of_int b.b_sumsq.(i) in
      let mean = s /. (scale *. c) in
      let m2 = Float.max 0.0 ((q -. (s *. s /. c)) /. (scale *. scale)) in
      Convergence.merge_moments monitor ~player:i ~count:b.b_units ~mean ~m2
    done
  end

let shap_estimate ?(estimator = Truncated) ?(seed = 0) ?(delta = 0.05) ?eps
    ?max_samples ?deadline ?(ci = Convergence.Bernstein)
    ?(interval = Convergence.default_interval) ?jsonl ?progress ~vars f =
  let sorted = sorted_vars ~who:"Sampling.shap_estimate" ~vars f in
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Sampling.shap_estimate: no players";
  (match eps with
  | Some e when e <= 0.0 -> invalid_arg "Sampling.shap_estimate: eps <= 0"
  | _ -> ());
  (match deadline with
  | Some d when d <= 0.0 -> invalid_arg "Sampling.shap_estimate: deadline <= 0"
  | _ -> ());
  let max_samples =
    match max_samples with
    | Some m ->
        if m <= 0 then invalid_arg "Sampling.shap_estimate: max_samples <= 0";
        m
    | None -> (
        match eps with
        | Some e -> samples_for ~eps:e ~delta
        | None -> 10_000)
  in
  let idx_of = index_table sorted in
  let truncate = estimator = Truncated && Nf.is_positive f in
  let per_unit = unit_perms ~players:n estimator in
  let scale = obs_scale ~players:n estimator in
  let units_per_batch = max 1 (target_batch_perms / per_unit) in
  let total_units = (max_samples + per_unit - 1) / per_unit in
  let name = estimator_name estimator in
  let monitor =
    Convergence.create ~ci ~delta ~range:2.0 ~interval ?jsonl ~estimator:name
      ~players:n ()
  in
  let started = Unix.gettimeofday () in
  let units_done = ref 0
  and evals = ref 0
  and round = ref 0
  and stop = ref false in
  while not !stop do
    let remaining = total_units - !units_done in
    if remaining <= 0 then stop := true
    else begin
      (* A round is always [batches_per_round] slots with globally-indexed
         seeds; slot sizes derive from counts alone, so the schedule — and
         with in-order merging below, the result — is the same at any
         [--jobs]. *)
      let slots =
        Array.init batches_per_round (fun b ->
            let before = b * units_per_batch in
            let units = min units_per_batch (max 0 (remaining - before)) in
            ((!round * batches_per_round) + b, units))
      in
      let results =
        Par.map
          (fun (batch_index, units) ->
            if units = 0 then None
            else
              Some
                (Obs.call ~oracle:("estimator." ^ name) ~n
                   ~size:(units * per_unit) (fun () ->
                     run_batch ~f ~sorted ~idx_of ~truncate ~estimator ~seed
                       ~batch_index ~units)))
          slots
      in
      Array.iter
        (function
          | None -> ()
          | Some b ->
              merge_batch monitor ~scale ~players:n b;
              Convergence.advance monitor (b.b_units * per_unit);
              units_done := !units_done + b.b_units;
              evals := !evals + b.b_evals)
        results;
      incr round;
      let elapsed = Unix.gettimeofday () -. started in
      let hw = Convergence.max_certified_half_width monitor in
      (match eps with
      | Some e when hw <= e -> stop := true
      | _ -> ());
      (match deadline with
      | Some d when elapsed >= d -> stop := true
      | _ -> ());
      match progress with
      | Some k ->
          k
            {
              pr_samples = !units_done * per_unit;
              pr_half_width = hw;
              pr_elapsed = elapsed;
            }
      | None -> ()
    end
  done;
  Convergence.finish monitor;
  let converged =
    match eps with
    | Some e -> Convergence.max_certified_half_width monitor <= e
    | None -> false
  in
  let estimates =
    Array.to_list
      (Array.mapi
         (fun i v ->
           {
             variable = v;
             value = Convergence.mean monitor ~player:i;
             half_width = Convergence.certified_half_width monitor ~player:i;
           })
         sorted)
  in
  {
    estimates;
    samples_used = !units_done * per_unit;
    evals = !evals;
    converged;
    wall = Unix.gettimeofday () -. started;
    monitor;
  }
