let sorted_universe ~vars g =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Circuit.vars g) universe) then
    invalid_arg "Circuit_shapley: universe misses circuit variables";
  (universe, List.sort compare vars)

(* Eq. (2) from the two stratified vectors of one variable. *)
let value_of_kvecs ~n k1 k0 =
  let value = ref Rat.zero in
  for k = 0 to n - 1 do
    let diff = Bigint.sub (Kvec.get k1 k) (Kvec.get k0 k) in
    value := Rat.add !value (Rat.mul_bigint (Combi.shapley_coeff ~n k) diff)
  done;
  !value

let shap_direct ~vars g =
  let _, sorted = sorted_universe ~vars g in
  let n = List.length sorted in
  List.map
    (fun i ->
       let others = List.filter (fun v -> v <> i) sorted in
       let k1 =
         Count.count_by_size ~vars:others (Condition.restrict i true g)
       in
       let k0 =
         Count.count_by_size ~vars:others (Condition.restrict i false g)
       in
       (i, value_of_kvecs ~n k1 k0))
    sorted

(* The cached sweep: each restricted stratified vector lives in the
   counts tier under (circuit id, universe, variable, polarity).  The
   hash-consed [Circuit.node.id] is sound as a key component because
   ids are allocated from a counter and never reused, and the circuit
   tier keeps the node alive while its vectors are cached. *)
let shap_direct_cached ~cache ?(tags = []) ~vars g =
  let _, sorted = sorted_universe ~vars g in
  let n = List.length sorted in
  let base =
    Printf.sprintf "kv:%d:%s" g.Circuit.id
      (Fingerprint.digest (List.map string_of_int sorted))
  in
  List.map
    (fun i ->
       let others = List.filter (fun v -> v <> i) sorted in
       let kv b =
         let key = Printf.sprintf "%s:%d:%c" base i (if b then '1' else '0') in
         Cache.counts cache ~key ~tags (fun () ->
             Obs.call ~oracle:"cache.kcount" ~n:(n - 1)
               ~size:(Circuit.size g)
               (fun () ->
                 Count.count_by_size ~vars:others (Condition.restrict i b g)))
       in
       (i, value_of_kvecs ~n (kv true) (kv false)))
    sorted

let kcounts_via_reduction ~vars g =
  let universe, sorted = sorted_universe ~vars g in
  let n = List.length sorted in
  Reductions.kcounts_via_counting ~n ~count_subst:(fun ~l ->
      let g', blocks = Or_subst.uniform_or ~universe ~l g in
      Count.count ~vars:(List.concat_map snd blocks) g')

let shap_via_reduction ~vars g =
  let universe, sorted = sorted_universe ~vars g in
  let n = List.length sorted in
  let kcount_of ~vars g' = kcounts_via_reduction ~vars g' in
  let kcount_full =
    let tilde_g, blocks = Or_subst.isomorphic_copy ~universe g in
    kcount_of ~vars:(List.concat_map snd blocks) tilde_g
  in
  let kcount_drop pos =
    let i = List.nth sorted pos in
    let tilde_g', blocks = Or_subst.zap ~universe ~zero:(Vset.singleton i) g in
    kcount_of ~vars:(List.concat_map snd blocks) tilde_g'
  in
  let values = Reductions.shap_via_kcounts ~n ~kcount_full ~kcount_drop in
  List.mapi (fun pos i -> (i, values.(pos))) sorted

let interaction_weight ~n k =
  (* k! (n-k-2)! / (n-1)! *)
  Rat.make
    (Bigint.mul (Combi.factorial k) (Combi.factorial (n - k - 2)))
    (Combi.factorial (n - 1))

let check_pair ~vars i j =
  if i = j then invalid_arg "interaction: i = j";
  if not (List.mem i vars && List.mem j vars) then
    invalid_arg "interaction: variable outside universe";
  if List.length vars < 2 then invalid_arg "interaction: universe too small"

let interaction ~vars g i j =
  let _, sorted = sorted_universe ~vars g in
  check_pair ~vars:sorted i j;
  let n = List.length sorted in
  let others = List.filter (fun v -> v <> i && v <> j) sorted in
  let kv bi bj =
    Count.count_by_size ~vars:others
      (Condition.restrict j bj (Condition.restrict i bi g))
  in
  let k11 = kv true true and k10 = kv true false in
  let k01 = kv false true and k00 = kv false false in
  let acc = ref Rat.zero in
  for k = 0 to n - 2 do
    let delta =
      Bigint.add
        (Bigint.sub (Kvec.get k11 k) (Kvec.get k10 k))
        (Bigint.sub (Kvec.get k00 k) (Kvec.get k01 k))
    in
    acc := Rat.add !acc (Rat.mul_bigint (interaction_weight ~n k) delta)
  done;
  !acc

let interaction_naive ~vars f i j =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Formula.vars f) universe) then
    invalid_arg "interaction_naive: universe misses variables";
  let sorted = List.sort compare vars in
  check_pair ~vars:sorted i j;
  let n = List.length sorted in
  let others =
    Array.of_list (List.filter (fun v -> v <> i && v <> j) sorted)
  in
  let m = Array.length others in
  if m > 22 then invalid_arg "interaction_naive: too many variables";
  let acc = ref Rat.zero in
  for mask = 0 to (1 lsl m) - 1 do
    let s = ref Vset.empty in
    for b = 0 to m - 1 do
      if mask land (1 lsl b) <> 0 then s := Vset.add others.(b) !s
    done;
    let value extra = Bool.to_int (Formula.eval_set (Vset.union !s extra) f) in
    let delta =
      value (Vset.of_list [ i; j ]) - value (Vset.singleton i)
      - value (Vset.singleton j) + value Vset.empty
    in
    acc :=
      Rat.add !acc
        (Rat.mul (interaction_weight ~n (Vset.cardinal !s)) (Rat.of_int delta))
  done;
  !acc

let count_via_shap ~vars g =
  let universe, sorted = sorted_universe ~vars g in
  let n = List.length sorted in
  let f_zero = Circuit.eval_set Vset.empty g in
  Reductions.count_via_shap ~n ~f_zero ~shap_subst:(fun ~l ~pos ->
      let i = List.nth sorted pos in
      let g', z, blocks = Or_subst.uniform_or_except ~universe ~l ~keep:i g in
      let gvars = List.concat_map snd blocks in
      (* The Shapley oracle here is the polynomial direct algorithm on the
         substituted circuit — Shap(~G) per Theorem 4.1. *)
      match List.assoc_opt z (shap_direct ~vars:gvars g') with
      | Some v -> v
      | None -> failwith "Circuit_shapley: oracle did not report Z_i")
