(** Monte-Carlo approximation of Shapley values — an observable
    estimator suite.

    The paper notes (contrasting with the SHAP score, which admits no
    FPRAS even for positive bipartite DNF [3]) that the Shapley value in
    the database setting has an FPRAS [21].  The workhorse is permutation
    sampling: draw random permutations, average each variable's marginal
    contribution.  Each marginal lies in [[-1, 1]], so Hoeffding's
    inequality gives a two-sided additive guarantee
    [P(|estimate − Shap| > ε) ≤ δ] with [m ≥ 2 ln(2/δ) / ε²] samples per
    variable (all variables are estimated from the same permutations).

    {!shap_sample} is the fixed-budget legacy sampler.  {!shap_estimate}
    is the production engine: it streams every marginal through a
    {!Convergence} monitor (Welford moments, selectable CI, checkpoint
    telemetry into Trace/Scope/Metrics/JSONL), stops early once the
    certified max half-width reaches a target ε or a wall-clock deadline
    passes, and fans batches over the {!Par} domain pool with
    deterministic per-batch seed substreams — the same [(seed, estimator,
    batch index)] triple seeds batch [b] no matter how many domains run,
    and batch moments are merged in batch order, so runs at [--jobs 1]
    and [--jobs 4] are bit-identical (deadline stops excepted: a clock is
    inherently not replayable).

    Estimates are floats — approximation is the one place in this library
    where exactness is deliberately abandoned. *)

type estimate = {
  variable : int;
  value : float;  (** the point estimate *)
  half_width : float;  (** CI half-width at the requested [delta] *)
}

(** [shap_sample ~seed ~samples ~delta ~vars f] estimates all Shapley
    values from [samples] random permutations.  [delta] is the per-variable
    failure probability used for the reported half-width (default 0.05).
    @raise Invalid_argument if [samples <= 0] or [vars] misses variables
    of [f]. *)
val shap_sample :
  ?seed:int ->
  ?delta:float ->
  samples:int ->
  vars:int list ->
  Formula.t ->
  estimate list

(** [samples_for ~eps ~delta] is the Hoeffding sample bound
    [⌈2 ln(2/δ) / ε²⌉] for additive error [eps] with failure probability
    [delta].
    @raise Invalid_argument if the bound does not fit an OCaml [int]
    (above 10¹⁵ permutations nobody is sampling anyway — tighten ε/δ). *)
val samples_for : eps:float -> delta:float -> int

(** {1 Estimator suite} *)

type estimator =
  | Permutation  (** plain permutation walk, one marginal per player *)
  | Truncated
      (** permutation walk with a monotone prefix cutoff: on positive
          formulas, once the growing prefix satisfies [f] every later
          marginal is 0, so the remaining oracle evaluations are
          skipped.  Identical estimates to {!Permutation} (same RNG
          stream), strictly fewer evaluations; silently equals
          {!Permutation} on non-positive formulas. *)
  | Antithetic
      (** evaluates each permutation and its reversal, feeding the pair
          mean as one observation — negatively correlated pairs cut
          variance for near-symmetric games *)
  | Stratified
      (** stratified by position via cyclic shifts: each sampled
          permutation is walked in all [n] rotations, so every player
          contributes exactly one marginal {e at every position}; the
          per-player group mean is one observation.  Removes the
          position-mixture component of the variance. *)

val estimator_of_string : string -> estimator option
(** ["permutation"], ["truncated"], ["antithetic"], ["stratified"]. *)

val estimator_name : estimator -> string

(** Progress snapshot handed to the [progress] callback at every round
    boundary (coordinator thread). *)
type progress = {
  pr_samples : int;  (** permutations walked so far *)
  pr_half_width : float;  (** certified max half-width ([infinity] until
                              the first checkpoint) *)
  pr_elapsed : float;  (** seconds since the run started *)
}

type report = {
  estimates : estimate list;  (** sorted by variable, half-widths are the
                                  certified (envelope) values *)
  samples_used : int;  (** permutations walked *)
  evals : int;  (** [Formula.eval_set] oracle evaluations performed *)
  converged : bool;  (** stopped because certified max half-width ≤ ε *)
  wall : float;  (** wall-clock seconds *)
  monitor : Convergence.t;  (** the finished monitor — read
                                {!Convergence.checkpoints} for the curve *)
}

(** [shap_estimate ~vars f] runs the estimator until one of: the
    certified max CI half-width reaches [eps] (when given), [deadline]
    seconds elapse (when given), or [max_samples] permutations have been
    walked (default: {!samples_for}[ ~eps ~delta] when [eps] is given,
    else 10000).

    [estimator] defaults to {!Truncated}; [ci] to
    {!Convergence.Bernstein} (variance-adaptive, so low-variance
    instances stop well before the Hoeffding budget); [delta] to 0.05;
    [interval] is the checkpoint period in samples (default
    {!Convergence.default_interval}).  [jsonl] receives one convergence
    line per checkpoint.  Every batch is ledgered as an
    [estimator.<name>] oracle call, so [--stats]/bench aggregates count
    batches and per-batch sample totals.

    @raise Invalid_argument if [vars] misses variables of [f], is empty,
    or a numeric argument is out of range. *)
val shap_estimate :
  ?estimator:estimator ->
  ?seed:int ->
  ?delta:float ->
  ?eps:float ->
  ?max_samples:int ->
  ?deadline:float ->
  ?ci:Convergence.ci ->
  ?interval:int ->
  ?jsonl:out_channel ->
  ?progress:(progress -> unit) ->
  vars:int list ->
  Formula.t ->
  report
