(** End-to-end instantiations of Theorem 3.1 over formula classes.

    These functions assemble the reductions of {!Reductions} with concrete
    OR-substitutions on formulas ({!Shapmc_boolean.Subst}) and a pluggable
    model-counting backend.  They are the executable content of
    Corollary 7: give them a counting oracle for a class closed under
    OR-substitution and they return Shapley values — or, in the other
    direction, give them a Shapley oracle and they count models. *)

(** A plain model-counting oracle: [#F] over an explicit universe. *)
type count_oracle = {
  oracle_name : string;
  count : vars:int list -> Formula.t -> Bigint.t;
}

(** A Shapley oracle: all Shapley values over an explicit universe,
    returned per variable. *)
type shap_oracle = {
  shap_name : string;
  shap : vars:int list -> Formula.t -> (int * Rat.t) list;
}

val brute_count_oracle : count_oracle
val dpll_count_oracle : count_oracle

(** [shap_oracle_of_subsets] wraps the exponential Eq. (2) reference. *)
val shap_oracle_of_subsets : shap_oracle

(** {1 Shap ≤P #} *)

(** [kcounts_via_count_oracle ~oracle ~vars f] computes [#_{0..n} F] by
    Lemma 3.3: builds [F^(l)] for [l = 1..n+1] by OR-substitution and
    calls the oracle on each.  With [cache], the whole stratified
    vector is memoized (content-keyed on oracle, universe and formula
    text) in the cache's counts tier: a repeated invocation makes zero
    oracle calls. *)
val kcounts_via_count_oracle :
  ?cache:Cache.t -> oracle:count_oracle -> vars:int list -> Formula.t ->
  Kvec.t

(** [shap_via_count_oracle ~oracle ~vars f] computes all Shapley values by
    chaining Lemma 3.2 over Lemma 3.3 — the paper's
    [Shap(C) ≤P #_* ~C ≤P # ~~C] route.  The [#_*]-oracle calls of
    Lemma 3.2 are served on the isomorphic copy [~F] and the zapped
    functions [~F'] (empty disjunction at [X_i]), exactly as in the
    proof.  [cache] memoizes both the per-[l] stratified vectors and
    the final per-variable values. *)
val shap_via_count_oracle :
  ?cache:Cache.t -> oracle:count_oracle -> vars:int list -> Formula.t ->
  (int * Rat.t) list

(** {1 # ≤P Shap} *)

(** [count_via_shap_oracle ~oracle ~vars f] computes [#F] by Lemma 3.4:
    builds [F^(l,i)] for every variable [i] and [l = 1..n] and reads off
    [Shap(F^(l,i), Z_i)] from the oracle. *)
val count_via_shap_oracle :
  oracle:shap_oracle -> vars:int list -> Formula.t -> Bigint.t

(** [kcounts_via_shap_oracle ~oracle ~vars f] returns the full stratified
    vector recovered along the way. *)
val kcounts_via_shap_oracle :
  oracle:shap_oracle -> vars:int list -> Formula.t -> Kvec.t

(** {1 The prior-work PQE route}

    Deutch et al. [13] reduce Shapley computation to probabilistic query
    evaluation; the paper's open problem asked for the converse and
    settled it via model counting instead.  Both directions of the
    {e forward} reduction are implemented here so experiment E14 can
    compare them: same Lemma 3.2 core, but fixed-size counts come from
    probability evaluations at [n+1] distinct tuple probabilities
    ({!Reductions.kcounts_via_probability}) rather than from counting
    OR-substituted functions. *)

(** A probabilistic-evaluation oracle: [P_θ(F)] under the uniform-[θ]
    product distribution over the given universe. *)
type pqe_oracle = {
  pqe_name : string;
  prob : theta:Rat.t -> vars:int list -> Formula.t -> Rat.t;
}

(** Exact PQE by compiling the function to a d-D circuit. *)
val pqe_circuit_oracle : pqe_oracle

(** [kcounts_via_pqe_oracle ~oracle ~vars f] recovers [#_{0..n} F] from
    [n+1] probability evaluations. *)
val kcounts_via_pqe_oracle :
  oracle:pqe_oracle -> vars:int list -> Formula.t -> Kvec.t

(** [shap_via_pqe_oracle ~oracle ~vars f] is the full [Shap ≤P PQE]
    reduction of prior work. *)
val shap_via_pqe_oracle :
  oracle:pqe_oracle -> vars:int list -> Formula.t -> (int * Rat.t) list

(** {1 Round trip} *)

(** [roundtrip_count ~vars f] computes [#F] by composing Lemma 3.4 with a
    Shapley oracle that is itself implemented via Lemmas 3.2+3.3 over a
    DPLL counting backend — model counting via Shapley values via model
    counting (experiment E6).  Equals [#F] on every input. *)
val roundtrip_count : vars:int list -> Formula.t -> Bigint.t
