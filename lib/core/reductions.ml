let or_points ~count =
  Array.init count (fun idx -> Rat.of_bigint (Bigint.two_pow_minus_one (idx + 1)))

(* Solve the Vandermonde system at nodes 2^l − 1 and return integer
   unknowns; every solution in the paper's systems is an integer vector
   (model counts), so a non-integer solution indicates an oracle bug. *)
let solve_integer_vandermonde ~points ~values ~what =
  Obs.with_span "reductions.solve_integer_vandermonde"
    ~attrs:[ ("nodes", Trace.Int (Array.length points)); ("for", Trace.Str what) ]
  @@ fun () ->
  let sol = Linalg.vandermonde_solve ~points ~values in
  Array.map
    (fun r ->
       if not (Rat.is_integer r) then
         failwith (what ^ ": non-integral solution (broken oracle?)");
       Rat.to_bigint r)
    sol

(* ------------------------------------------------------------------ *)
(* Lemma 3.2 *)

let shap_via_kcounts ~n ~kcount_full ~kcount_drop =
  if Kvec.universe_size kcount_full <> n then
    invalid_arg "shap_via_kcounts: full vector has wrong universe";
  (* The n drop-vectors are independent oracle consultations — the
     expensive part — so they fan out over the [--jobs] pool; the cheap
     Shapley arithmetic below stays sequential. *)
  let drops = Par.map_n kcount_drop n in
  Array.init n (fun pos ->
      let drop = drops.(pos) in
      if Kvec.universe_size drop <> n - 1 then
        invalid_arg "shap_via_kcounts: drop vector has wrong universe";
      let value = ref Rat.zero in
      for k = 0 to n - 1 do
        (* #_k F[X_i:=1] = #_{k+1} F − #_{k+1} F[X_i:=0], so the marginal
           at size k is #_{k+1}F − #_{k+1}F[X_i:=0] − #_k F[X_i:=0]. *)
        let term =
          Bigint.sub
            (Bigint.sub (Kvec.get kcount_full (k + 1)) (Kvec.get drop (k + 1)))
            (Kvec.get drop k)
        in
        value := Rat.add !value (Rat.mul_bigint (Combi.shapley_coeff ~n k) term)
      done;
      !value)

(* ------------------------------------------------------------------ *)
(* Lemma 3.3 *)

let kcounts_via_counting ~n ~count_subst =
  Obs.with_span "reductions.kcounts_via_counting"
    ~attrs:[ ("n", Trace.Int n) ]
  @@ fun () ->
  let points = or_points ~count:(n + 1) in
  Obs.phase "lemma3.3.consult" ~attrs:[ ("n", Trace.Int n) ];
  (* The n+1 arity consultations are independent: fan out ([--jobs]). *)
  let values =
    Par.map_n (fun idx -> Rat.of_bigint (count_subst ~l:(idx + 1))) (n + 1)
  in
  Obs.phase "lemma3.3.solve" ~attrs:[ ("n", Trace.Int n) ];
  let counts =
    solve_integer_vandermonde ~points ~values ~what:"kcounts_via_counting"
  in
  Kvec.make ~n counts

let kcounts_via_counting_and ~n ~count_subst =
  (* Claim 3.7: #F^(l) = Σ_k (2^l−1)^{n−k} #_k F.  Substituting j = n−k
     turns it into a standard Vandermonde system in y_j = #_{n−j} F. *)
  let points = or_points ~count:(n + 1) in
  let values =
    Par.map_n (fun idx -> Rat.of_bigint (count_subst ~l:(idx + 1))) (n + 1)
  in
  let y =
    solve_integer_vandermonde ~points ~values ~what:"kcounts_via_counting_and"
  in
  Kvec.make ~n (Array.init (n + 1) (fun k -> y.(n - k)))

(* ------------------------------------------------------------------ *)
(* Prior work [13]: fixed-size counts from probabilistic evaluation.

   Under the product distribution with uniform tuple probability θ,
   P_θ(F) = Σ_k #_k F · θ^k (1−θ)^{n−k}.  Dividing by (1−θ)^n gives a
   polynomial in the odds ρ = θ/(1−θ) with coefficients #_k F, so n+1
   evaluations at distinct probabilities recover the counts by
   interpolation — the Deutch–Frost–Kimelfeld–Monet route from Shapley
   values to PQE, implemented here as the historical baseline next to the
   paper's OR-substitution route (Lemma 3.3). *)

let kcounts_via_probability ~n ~prob =
  let points =
    Array.init (n + 1) (fun j ->
        (* θ_j = (j+1)/(n+2) ∈ (0,1), pairwise distinct odds *)
        let theta = Rat.of_ints (j + 1) (n + 2) in
        Rat.div theta (Rat.sub Rat.one theta))
  in
  (* n+1 independent θ-evaluations of the PQE oracle: fan out ([--jobs]). *)
  let values =
    Par.map_n
      (fun j ->
         let theta = Rat.of_ints (j + 1) (n + 2) in
         let p = prob ~theta in
         (* P_θ / (1−θ)^n *)
         let rec pow r k = if k = 0 then Rat.one else Rat.mul r (pow r (k - 1)) in
         Rat.div p (pow (Rat.sub Rat.one theta) n))
      (n + 1)
  in
  let sol = Linalg.vandermonde_solve ~points ~values in
  Kvec.make ~n
    (Array.map
       (fun r ->
          if not (Rat.is_integer r) then
            failwith "kcounts_via_probability: non-integral count";
          Rat.to_bigint r)
       sol)

(* ------------------------------------------------------------------ *)
(* Lemma 3.4 *)

(* Weight of the difference d_j = #_j F[X_i:=1] − #_j F[X_i:=0] in
   Shap(F^(l,i), Z_i).

   PROOF REPAIR (documented in DESIGN.md §"Lemma 3.4 repair"): the paper's
   proof displays the weight (2^l−1)^j c_j, which evaluates Eq. (2) with
   the coefficients of the *original* n variables; but F^(l,i) has
   N = (n−1)l + 1 variables, and with the correct c_k^{(N)} the weight is

     M[l,j] = ∫_0^1 (1−q^l)^j q^{l(n−1−j)} dq
            = j! · l^j / Π_{a=n−1−j}^{n−1} (a·l + 1),

   obtained from the Bernoulli-measure representation of the Shapley value
   (each of the n−1 fresh blocks is "hit" independently with probability
   1−(1−p)^l).  At l = 1 this reduces to c_j, as it must.  The matrix
   (M[l,j])_{l=1..n, j=0..n−1} is still nonsingular: scaling row l by
   l · Π_{a=0}^{n−1}(a + 1/l) makes column j a monic polynomial of degree
   n−1−j in 1/l, and polynomials of pairwise distinct degrees evaluated at
   distinct points 1/l form a nonsingular matrix.  So Lemma 3.4 holds with
   the same oracle calls and a repaired linear system, solved here by
   exact Gaussian elimination. *)
let lemma34_weight ~n ~l ~j =
  if j < 0 || j > n - 1 || l < 1 then invalid_arg "lemma34_weight";
  let num = Bigint.mul (Combi.factorial j) (Bigint.pow (Bigint.of_int l) j) in
  let den = ref Bigint.one in
  for a = n - 1 - j to n - 1 do
    den := Bigint.mul !den (Bigint.of_int ((a * l) + 1))
  done;
  Rat.make num !den

(* LU-factor the Lemma 3.4 system once per query: the matrix M[l,j] depends
   only on [n], not on the variable position, so a single factorization is
   shared (it is immutable) across all n per-position solves — including the
   [Par.map_n] fan-out — turning each recovery into an O(n^2) substitution. *)
let lemma34_factor ~n =
  let matrix =
    Array.init n (fun row ->
        Array.init n (fun j -> lemma34_weight ~n ~l:(row + 1) ~j))
  in
  match Linalg.lu_factor matrix with
  | None -> failwith "count_via_shap: singular system (impossible)"
  | Some f -> f

(* Recover, for one variable position, the differences
   d_j = #_j F[X_i:=1] − #_j F[X_i:=0] for j = 0..n−1 from the oracle
   values Shap(F^(l,i), Z_i) = Σ_j M[l,j] d_j, l = 1..n. *)
let differences_for_position ~lu ~n ~shap_subst ~pos =
  let values = Array.init n (fun idx -> shap_subst ~l:(idx + 1) ~pos) in
  let d = Linalg.lu_solve lu values in
  Array.map
    (fun r ->
       if not (Rat.is_integer r) then
         failwith "count_via_shap: non-integral difference (broken oracle?)";
       Rat.to_bigint r)
    d

let kcounts_via_shap ~n ~f_zero ~shap_subst =
  (* Claim 3.6: Σ_i d_k(i) = (k+1) #_{k+1} F − (n−k) #_k F; telescope from
     #_0 F = F(0). *)
  let sums = Array.make n Bigint.zero in
  (* The n per-position difference recoveries (n oracle calls each) are
     independent: fan out ([--jobs]), then accumulate in index order so
     the sums are reproducible. *)
  let lu = lemma34_factor ~n in
  let ds =
    Par.map_n
      (fun pos ->
         Obs.phase "lemma3.4.position" ~attrs:[ ("pos", Trace.Int pos) ];
         differences_for_position ~lu ~n ~shap_subst ~pos)
      n
  in
  Array.iter
    (fun d -> Array.iteri (fun k dk -> sums.(k) <- Bigint.add sums.(k) dk) d)
    ds;
  let counts = Array.make (n + 1) Bigint.zero in
  counts.(0) <- (if f_zero then Bigint.one else Bigint.zero);
  for k = 0 to n - 1 do
    let numerator =
      Bigint.add sums.(k) (Bigint.mul_int counts.(k) (n - k))
    in
    let q, r = Bigint.divmod numerator (Bigint.of_int (k + 1)) in
    if not (Bigint.is_zero r) then
      failwith "count_via_shap: telescoping failed (broken oracle?)";
    counts.(k + 1) <- q
  done;
  Kvec.make ~n counts

let count_via_shap ~n ~f_zero ~shap_subst =
  Kvec.total (kcounts_via_shap ~n ~f_zero ~shap_subst)
