(** Process-wide parallel oracle fan-out.

    A single knob ([set_jobs], the CLI's [--jobs]/[SHAPMC_JOBS]) selects
    how many domains {!map} may use.  At the default [jobs = 1], [map]
    IS [Array.map] — same evaluation order, same observability stream —
    so sequential behavior is bit-identical to the pre-pool pipeline. *)

(** [set_jobs n] sets the knob, clamped to [1..64]. *)
val set_jobs : int -> unit

val jobs : unit -> int

(** [map f xs] evaluates [f] over [xs] on up to [jobs ()] domains (see
    {!Pool.map} for ordering, exception and nesting guarantees).  The
    caller's {!Shapmc_obs.Obs} span context is re-installed around each
    task, so span paths aggregate as in a sequential run. *)
val map : ('a -> 'b) -> 'a array -> 'b array

(** [map_n f n] is [map f [|0; ...; n-1|]]. *)
val map_n : (int -> 'b) -> int -> 'b array
