(* A dependency-free fixed-size domain pool (OCaml 5 [Domain]s only).

   [map pool f xs] evaluates [f] on every element of [xs] and returns the
   results in input order.  Work is distributed dynamically: a shared
   atomic cursor hands out indices, so uneven task costs (oracle calls on
   instances of very different sizes) still balance across workers.

   Guarantees:

   - deterministic result ordering: slot [i] of the output is always
     [f xs.(i)], however the indices were scheduled;
   - exception capture/re-raise: if tasks raise, the exception of the
     LOWEST failing index is re-raised in the caller (with its original
     backtrace), so failures are independent of scheduling; the remaining
     tasks still run to completion (workers drain the cursor either way —
     oracle tasks are pure, so there is nothing to cancel);
   - graceful fallback: with [jobs = 1], a single-element input, or when
     called from inside another [map] (nested fan-outs), the tasks run in
     the caller's domain, in ascending index order — byte-identical to a
     plain sequential loop;
   - bounded domains: at most [jobs - 1] domains are spawned per [map]
     (the caller works too) and all are joined before [map] returns.  The
     nested-call fallback keeps the process-wide domain count at one
     pool's worth even when parallel reductions compose. *)

type t = { jobs : int }

(* [Domain.spawn] refuses past ~128 live domains; stay well below. *)
let max_jobs = 64

let create ~jobs = { jobs = max 1 (min jobs max_jobs) }

let jobs t = t.jobs

(* True while the current domain is executing pool tasks; nested [map]s
   fall back to in-caller execution instead of spawning more domains. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential f xs = Array.map f xs

let as_worker body =
  let was = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker was) body

let now = Unix.gettimeofday

(* Per-worker utilization accounting, only on the [Obs.enabled] path:
   busy = Σ task durations, idle = worker wall − busy (cursor contention
   and spawn skew), job-wait = task start − map start (queueing delay).
   Everything goes into [Metrics], NOT into Obs counters/ledgers, so the
   recorded oracle streams stay jobs-independent.  Histograms are built
   locally (no lock per task) and merged once per worker. *)
let flush_worker_metrics ~wid ~busy ~wall ~tasks ~h_task ~h_wait =
  let open Shapmc_obs in
  let wl = [ ("worker", string_of_int wid) ] in
  Metrics.inc ~labels:wl ~by:busy "pool_worker_busy_seconds";
  Metrics.inc ~labels:wl ~by:(Float.max 0. (wall -. busy))
    "pool_worker_idle_seconds";
  Metrics.inc ~labels:wl ~by:(float_of_int tasks) "pool_worker_tasks";
  Metrics.merge_histogram "pool_task_seconds" h_task;
  Metrics.merge_histogram "pool_job_wait_seconds" h_wait

let map t f xs =
  let n = Array.length xs in
  let w = min t.jobs n in
  if w <= 1 || Domain.DLS.get in_worker then sequential f xs
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let observing = Shapmc_obs.Obs.enabled () in
    let t_map0 = if observing then now () else 0. in
    let run_tasks () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r =
            try Ok (f xs.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          (* distinct slots: no two workers ever share an index *)
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let run_tasks_observed wid =
      let open Shapmc_obs in
      let t_w0 = now () in
      let busy = ref 0. and tasks = ref 0 in
      let h_task = Histogram.create () and h_wait = Histogram.create () in
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let t0 = now () in
          Histogram.observe h_wait (Float.max 0. (t0 -. t_map0));
          let r =
            try Ok (f xs.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          let dt = Float.max 0. (now () -. t0) in
          busy := !busy +. dt;
          incr tasks;
          Histogram.observe h_task dt;
          loop ()
        end
      in
      loop ();
      flush_worker_metrics ~wid ~busy:!busy
        ~wall:(Float.max 0. (now () -. t_w0))
        ~tasks:!tasks ~h_task ~h_wait
    in
    let worker wid () =
      if observing then run_tasks_observed wid else run_tasks ()
    in
    let domains =
      List.init (w - 1) (fun k ->
          Domain.spawn (fun () -> as_worker (worker (k + 1))))
    in
    (* The caller is the w-th worker; its exceptions are captured like any
       other task's, so join always runs. *)
    as_worker (worker 0);
    List.iter Domain.join domains;
    if observing then begin
      let open Shapmc_obs in
      Metrics.inc "pool_maps";
      Metrics.inc ~by:(Float.max 0. (now () -. t_map0)) "pool_map_seconds";
      Metrics.set "pool_jobs" (float_of_int t.jobs)
    end;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* cursor handed out every index *))
      results
  end

(* ------------------------------------------------------------------ *)
(* Persistent executor: long-lived workers over a FIFO queue.          *)

module Exec = struct
  type t = {
    e_jobs : int;
    queue : (unit -> unit) Queue.t;
    lock : Mutex.t;
    work_cv : Condition.t;  (* signalled on submit and on shutdown *)
    mutable stopping : bool;
    mutable running : int;  (* tasks currently executing *)
    mutable workers : unit Domain.t list;
    mutable joined : bool;
  }

  let worker t () =
    let rec loop () =
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.work_cv t.lock
      done;
      (* Drain what is already queued even when stopping: shutdown is
         graceful, not abortive. *)
      if Queue.is_empty t.queue then Mutex.unlock t.lock
      else begin
        let task = Queue.pop t.queue in
        t.running <- t.running + 1;
        Mutex.unlock t.lock;
        (try as_worker task
         with _ -> Shapmc_obs.Metrics.inc "pool_exec_task_errors");
        Mutex.lock t.lock;
        t.running <- t.running - 1;
        Mutex.unlock t.lock;
        loop ()
      end
    in
    loop ()

  let create ~jobs =
    let jobs = max 1 (min jobs max_jobs) in
    let t =
      { e_jobs = jobs;
        queue = Queue.create ();
        lock = Mutex.create ();
        work_cv = Condition.create ();
        stopping = false;
        running = 0;
        workers = [];
        joined = false }
    in
    t.workers <- List.init jobs (fun _ -> Domain.spawn (worker t));
    t

  let jobs t = t.e_jobs

  (* Like [Par.map], a submission captures the caller's Obs span
     context AND its installed request scope, and re-installs both in
     the worker: spans opened by the task nest under the submitter's
     path instead of hanging off a worker root, and request-scoped
     events keep flowing into the submitter's scope across the domain
     hop. *)
  let submit t task =
    let ctx = Shapmc_obs.Obs.span_context () in
    let scope = Shapmc_obs.Scope.current () in
    let task =
      match (ctx, scope) with
      | [], None -> task
      | _ ->
        fun () ->
          Shapmc_obs.Scope.with_current scope (fun () ->
              Shapmc_obs.Obs.with_span_context ctx task)
    in
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      false
    end
    else begin
      Queue.push task t.queue;
      Condition.signal t.work_cv;
      Mutex.unlock t.lock;
      true
    end

  let pending t =
    Mutex.lock t.lock;
    let p = Queue.length t.queue + t.running in
    Mutex.unlock t.lock;
    p

  let shutdown ?deadline t =
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.lock;
    let until =
      match deadline with None -> None | Some d -> Some (now () +. d)
    in
    let rec drain () =
      if pending t = 0 then true
      else
        match until with
        | Some u when now () >= u -> false
        | _ ->
          Unix.sleepf 0.002;
          drain ()
    in
    let drained = drain () in
    if drained && not t.joined then begin
      (* Queue empty and nothing running: every worker is exiting (the
         broadcast above woke any waiter), so these joins return. *)
      List.iter Domain.join t.workers;
      t.joined <- true
    end;
    drained
end
