(* Process-wide parallelism knob and the Obs-aware fan-out primitive.

   The reductions call [Par.map] wherever the paper's cost model makes
   the tasks independent oracle consultations (Lemma 3.3's n+1 arities,
   Lemma 3.2's n drop-vectors, Lemma 3.4's n positions, the PQE route's
   n+1 probability evaluations).  The knob defaults to [1], where
   [Pool.map] degrades to the exact sequential loop — so observability
   streams, ledgers and benchmark baselines are bit-identical to the
   pre-pool pipeline unless the user opts in with [--jobs]/[SHAPMC_JOBS].

   [map] snapshots the caller's Obs span context and re-installs it
   around every task, so spans opened inside worker domains aggregate
   under the same hierarchical paths as a sequential run. *)

let jobs_knob = Atomic.make 1

let set_jobs n = Atomic.set jobs_knob (max 1 (min n 64))

let jobs () = Atomic.get jobs_knob

let map f xs =
  let j = jobs () in
  if j <= 1 then Array.map f xs
  else begin
    let ctx = Shapmc_obs.Obs.span_context () in
    (* The request scope rides along too, so per-request profiles stay
       complete across the batch fan-out (the scope's own mutex makes
       concurrent emission from workers safe). *)
    let scope = Shapmc_obs.Scope.current () in
    let pool = Pool.create ~jobs:j in
    Pool.map pool
      (fun x ->
        Shapmc_obs.Scope.with_current scope (fun () ->
            Shapmc_obs.Obs.with_span_context ctx (fun () -> f x)))
      xs
  end

(** [map_n f n] is [| f 0; ...; f (n-1) |], fanned out like {!map}. *)
let map_n f n = map f (Array.init n (fun i -> i))
