(** A dependency-free fixed-size domain pool (OCaml 5).

    [map] fans a pure task out over a bounded set of worker domains with
    dynamic load balancing, deterministic result ordering and exception
    capture/re-raise.  With [jobs = 1] (or from inside another [map]) it
    degrades to an in-caller sequential loop, byte-identical to
    [Array.map]. *)

type t

(** [create ~jobs] is a pool of [jobs] workers, clamped to [1..64]. *)
val create : jobs:int -> t

val jobs : t -> int

(** [map t f xs] is [Array.map f xs], evaluated by up to [jobs t] domains
    (the caller included).  Results keep their input slots.  If one or
    more tasks raise, every task still runs, and the exception of the
    lowest failing index is re-raised with its original backtrace —
    failure behavior is independent of scheduling.  Nested calls from
    inside a task run sequentially in the calling worker, so composed
    parallel reductions never oversubscribe the machine.

    When [Obs.enabled], each parallel [map] additionally records pool
    utilization into [Metrics.default]: per-worker
    [pool_worker_busy_seconds] / [pool_worker_idle_seconds] /
    [pool_worker_tasks] counters (labeled [worker=0] for the caller) and
    [pool_task_seconds] / [pool_job_wait_seconds] histograms, plus
    [pool_maps] / [pool_map_seconds] / [pool_jobs] totals.  These go to
    the metrics registry only — Obs ledgers, counters and spans are
    untouched, so recorded oracle streams remain jobs-independent. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** A persistent executor: long-lived worker domains draining a FIFO
    task queue.  Where {!map} is a batch fan-out (spawn, work, join),
    [Exec] keeps its domains alive between submissions — the shape a
    server needs to dispatch independent requests as they arrive.

    Tasks run with the pool's nested-fan-out flag set, so a {!map} (or
    [Par.map]) issued from inside a task degrades to the sequential
    loop instead of oversubscribing the machine: an executor of [jobs]
    workers never runs on more than [jobs] domains. *)
module Exec : sig
  type t

  (** [create ~jobs] spawns [jobs] worker domains (clamped to
      [1..64]). *)
  val create : jobs:int -> t

  val jobs : t -> int

  (** [submit t task] enqueues [task]; returns [false] (without
      enqueuing) once {!shutdown} has been called.  The submitter's
      Obs span context and installed request {!Scope} are captured at
      submission and re-installed around the task in the worker, so
      spans nest under the caller's path and request-scoped events
      reach the caller's scope.  A task that raises is dropped after
      recording a [pool_exec_task_errors] metric — worker domains
      never die to an exception. *)
  val submit : t -> (unit -> unit) -> bool

  (** Tasks queued plus tasks currently executing. *)
  val pending : t -> int

  (** [shutdown ?deadline t] stops accepting new tasks, lets the
      workers drain everything already queued, and waits up to
      [deadline] seconds (default: forever) for them to finish.
      Returns [true] — after joining every worker — if the queue
      drained in time; [false] leaves the stragglers running (the
      caller can unblock them, e.g. by closing their sockets, and call
      [shutdown] again — the call is idempotent). *)
  val shutdown : ?deadline:float -> t -> bool
end
