(** A dependency-free fixed-size domain pool (OCaml 5).

    [map] fans a pure task out over a bounded set of worker domains with
    dynamic load balancing, deterministic result ordering and exception
    capture/re-raise.  With [jobs = 1] (or from inside another [map]) it
    degrades to an in-caller sequential loop, byte-identical to
    [Array.map]. *)

type t

(** [create ~jobs] is a pool of [jobs] workers, clamped to [1..64]. *)
val create : jobs:int -> t

val jobs : t -> int

(** [map t f xs] is [Array.map f xs], evaluated by up to [jobs t] domains
    (the caller included).  Results keep their input slots.  If one or
    more tasks raise, every task still runs, and the exception of the
    lowest failing index is re-raised with its original backtrace —
    failure behavior is independent of scheduling.  Nested calls from
    inside a task run sequentially in the calling worker, so composed
    parallel reductions never oversubscribe the machine. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array
