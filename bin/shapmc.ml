(* shapmc — command-line front end.

   Subcommands mirror the three problems of Section 3 plus the database
   application of Section 5:

     shapmc count    "x1 & (x2 | !x3)"          model count
     shapmc kcount   "x1 & (x2 | !x3)"          fixed-size model counts
     shapmc shap     "x1 & (x2 | !x3)"          Shapley value of every variable
     shapmc compile  "x1 & (x2 | !x3)"          compile to a d-D circuit / OBDD
     shapmc classify "R(x), S(x,y), T(y)"       dichotomy classification
     shapmc lineage  db.txt                     lineage + Shapley values of tuples
     shapmc stretch  db.txt                     stretched query + diagram check *)

open Cmdliner

let formula_arg =
  let doc = "Boolean formula, e.g. 'x1 & (x2 | !x3)'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)

let file_arg =
  let doc = "Database+query file (see docs for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let method_arg ~choices ~default =
  let doc =
    Printf.sprintf "Algorithm to use: %s." (String.concat ", " choices)
  in
  Arg.(value & opt string default & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let stats_arg =
  let doc =
    "Collect and print instrumentation after the result: an oracle-call \
     table (how many times each oracle was consulted, at which universe \
     sizes n and substitution arities l — the cost measure of Theorem \
     3.1), substitution sizes, counters and timing spans.  Also enabled \
     by setting $(env)."
  in
  Arg.(value & flag
       & info [ "stats" ] ~env:(Cmd.Env.info "SHAPMC_STATS") ~doc)

let universe_arg =
  let doc =
    "Extra universe size: treat the function as being over the first N \
     variables even if some do not occur (default: the variables occurring \
     in the formula)."
  in
  Arg.(value & opt (some int) None & info [ "n"; "universe" ] ~docv:"N" ~doc)

let parse_formula s =
  try Ok (Parser.formula_of_string s)
  with Invalid_argument m -> Error m

let universe_of ?n f =
  let vars = Formula.vars f in
  match n with
  | None -> Vset.elements vars
  | Some n ->
    let top = match Vset.max_elt_opt vars with None -> 0 | Some m -> m in
    if n < top then
      failwith
        (Printf.sprintf "universe %d is smaller than the largest variable x%d"
           n top)
    else List.init n succ

let trace_arg =
  let doc =
    "Record a structured event trace of the run and write it to $(docv).  \
     A $(b,.jsonl) suffix selects the compact JSONL stream that $(b,shapmc \
     trace-report) replays; any other suffix selects Chrome trace_event \
     JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.  \
     Implies the instrumentation that $(b,--stats) reads; giving both \
     flags reports each exactly once."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Evaluate independent oracle consultations (the n+1 arities of Lemma \
     3.3, the n drop-vectors of Lemma 3.2, the n positions of Lemma 3.4, \
     the PQE route's n+1 probability evaluations) on up to $(docv) \
     domains.  The default 1 runs everything sequentially, bit-identical \
     to previous releases; results are independent of $(docv).  Also \
     settable via $(env)."
  in
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "SHAPMC_JOBS") ~doc)

let profile_arg =
  let doc =
    "Profile the run and print a report after the result: per-phase self \
     time, oracle-latency percentiles (p50/p90/p99/max by lemma and \
     substitution arity), allocation per phase, Gc totals and — with \
     $(b,--jobs) > 1 — pool utilization.  With no $(docv) (or $(docv) = \
     $(b,-)) the report goes to stdout; otherwise it is written to \
     $(docv).  Profiling never changes results or oracle-call counts."
  in
  Arg.(value
       & opt ~vopt:(Some "-") (some string) None
       & info [ "profile" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry in OpenMetrics/Prometheus text exposition \
     format to $(docv) after the run ($(b,-) for stdout): counters, \
     gauges and latency/size histograms with cumulative buckets."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let cache_arg =
  let doc =
    "Route the computation through the serving cache: compiled circuits, \
     stratified count vectors and Shapley rationals are content-keyed and \
     reused within the run (repeated sub-computations are answered \
     without fresh oracle calls).  Also enabled by setting $(env)."
  in
  Arg.(value & flag & info [ "cache" ] ~env:(Cmd.Env.info "SHAPMC_CACHE") ~doc)

let cache_size_arg =
  let doc =
    "Capacity of the cache's result tier (per-fact Shapley rationals); \
     the circuit and count tiers keep their defaults.  Also settable via \
     $(env)."
  in
  Arg.(value & opt int Cache.default_results
       & info [ "cache-size" ] ~docv:"N"
           ~env:(Cmd.Env.info "SHAPMC_CACHE_SIZE") ~doc)

(* The observation flags every subcommand shares, bundled into one term
   so adding a flag touches one place instead of fifteen. *)
type obs_opts = {
  stats : bool;
  trace : string option;
  profile : string option;
  metrics : string option;
  jobs : int;
  cache : bool;
  cache_size : int;
}

let obs_args =
  let mk stats trace profile metrics jobs cache cache_size =
    { stats; trace; profile; metrics; jobs; cache; cache_size }
  in
  Term.(const mk
        $ stats_arg $ trace_arg $ profile_arg $ metrics_arg $ jobs_arg
        $ cache_arg $ cache_size_arg)

(* [with_cache opts f] gives [f] the optional cache --cache asked for and
   prints its per-tier hit/miss epilogue to stderr with --stats. *)
let with_cache opts f =
  let cache =
    if opts.cache then Some (Cache.create ~results:opts.cache_size ())
    else None
  in
  let r = f cache in
  (match cache with
   | Some c when opts.stats -> Printf.eprintf "%s\n" (Cache.summary c)
   | _ -> ());
  r

let wrap f =
  try f () with
  | Invalid_argument m | Failure m ->
    Printf.eprintf "error: %s\n" m;
    exit 1

let write_text_to ~what path text =
  if path = "-" then print_string text
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text);
    Printf.eprintf "%s: written to %s\n" what path
  end

(* Bracket a subcommand body with the parallelism knob (--jobs), the Obs
   ledger (--stats), the trace recorder (--trace FILE), the profiler
   (--profile [FILE]) and the OpenMetrics dump (--metrics FILE).  All
   compose: a single reset up front, the trace file written first (a
   note on stderr keeps stdout clean), then stats, profile and metrics —
   none clears another's data. *)
let with_obs opts f =
  Par.set_jobs opts.jobs;
  let live =
    opts.stats || opts.trace <> None || opts.profile <> None
    || opts.metrics <> None
  in
  if live then begin
    Obs.reset ();
    Obs.enable ();
    Obs.set_profiling (opts.profile <> None)
  end;
  if opts.trace <> None then Trace.start ();
  (* Gc bracket for the whole command body: allocation and collection
     deltas plus the peak heap, reported as gauges. *)
  let gc0 = Gc.quick_stat () in
  let alloc0 = Obs.allocated_bytes_now () in
  let r = f () in
  if live then begin
    let gc1 = Gc.quick_stat () in
    let word = float_of_int (Sys.word_size / 8) in
    Metrics.set "gc_allocated_bytes" (Obs.allocated_bytes_now () -. alloc0);
    Metrics.set "gc_minor_collections"
      (float_of_int (gc1.Gc.minor_collections - gc0.Gc.minor_collections));
    Metrics.set "gc_major_collections"
      (float_of_int (gc1.Gc.major_collections - gc0.Gc.major_collections));
    Metrics.set "gc_top_heap_bytes" (float_of_int gc1.Gc.top_heap_words *. word)
  end;
  (match opts.trace with
   | None -> ()
   | Some path ->
     Trace.stop ();
     let evs = Trace.events () in
     Trace_export.write_file ~dropped:(Trace.dropped ()) ~path evs;
     let stored = List.length evs in
     Printf.eprintf "trace: %d event%s written to %s%s\n" stored
       (if stored = 1 then "" else "s")
       path
       (if Trace.dropped () > 0 then
          Printf.sprintf " (%d dropped at the %d-event cap)" (Trace.dropped ())
            Trace.default_cap
        else ""));
  if opts.stats then Format.printf "@\n%a@?" Obs.pp_report ();
  (match opts.profile with
   | None -> ()
   | Some path ->
     let text = Metrics.profile_report () in
     if path = "-" then print_string ("\n" ^ text)
     else write_text_to ~what:"profile" path text);
  (match opts.metrics with
   | None -> ()
   | Some path ->
     write_text_to ~what:"metrics" path (Metrics.to_openmetrics ()));
  if live then begin
    Trace.clear ();
    Obs.set_profiling false;
    Obs.disable ();
    Obs.reset ()
  end;
  r

(* ------------------------------------------------------------------ *)

let count_cmd =
  let run opts method_ n s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, _) ->
          let vars = universe_of ?n f in
          with_obs opts (fun () ->
              let result =
                match method_ with
                | "dpll" -> Dpll.count_universe ~vars f
                | "brute" -> Brute.count ~vars f
                | "circuit" -> Count.count ~vars (Compile.compile f)
                | "obdd" ->
                  let m = Obdd.create_manager ~order:vars in
                  Obdd.count m ~vars (Obdd.of_formula m f)
                | m -> failwith ("unknown method " ^ m)
              in
              Printf.printf "%s\n" (Bigint.to_string result)))
  in
  let info = Cmd.info "count" ~doc:"Model count #F of a Boolean formula." in
  Cmd.v info
    Term.(const run $ obs_args
          $ method_arg ~choices:[ "dpll"; "brute"; "circuit"; "obdd" ]
              ~default:"dpll"
          $ universe_arg $ formula_arg)

let kcount_cmd =
  let run opts method_ n s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, _) ->
          let vars = universe_of ?n f in
          with_obs opts (fun () ->
              with_cache opts @@ fun cache ->
              let kv =
                match method_ with
                | "dpll" -> Dpll.count_by_size_universe ~vars f
                | "brute" -> Brute.count_by_size ~vars f
                | "circuit" -> Count.count_by_size ~vars (Compile.compile f)
                | "reduction" ->
                  (* Lemma 3.3 through a DPLL counting oracle *)
                  Pipeline.kcounts_via_count_oracle ?cache
                    ~oracle:Pipeline.dpll_count_oracle ~vars f
                | m -> failwith ("unknown method " ^ m)
              in
              Array.iteri
                (fun k c -> Printf.printf "#_%d = %s\n" k (Bigint.to_string c))
                (Kvec.to_array kv);
              Printf.printf "#F  = %s\n" (Bigint.to_string (Kvec.total kv))))
  in
  let info =
    Cmd.info "kcount"
      ~doc:"Fixed-size model counts #_k F (problem #_*C of Section 3)."
  in
  Cmd.v info
    Term.(const run $ obs_args
          $ method_arg
              ~choices:[ "dpll"; "brute"; "circuit"; "reduction" ]
              ~default:"dpll"
          $ universe_arg $ formula_arg)

let print_shap names shap =
  let name i =
    match List.assoc_opt i names with
    | Some n -> n
    | None -> Printf.sprintf "x%d" i
  in
  List.iter
    (fun (i, v) ->
       Printf.printf "%-12s %-14s (~ %.6f)\n" (name i) (Rat.to_string v)
         (Rat.to_float v))
    shap;
  Printf.printf "%-12s %s\n" "sum"
    (Rat.to_string (Naive.shap_sum shap))

let shap_cmd =
  let run opts method_ n s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, names) ->
          let vars = universe_of ?n f in
          with_obs opts (fun () ->
              with_cache opts @@ fun cache ->
              let shap =
                match method_ with
                | "circuit" ->
                  Circuit_shapley.shap_direct ~vars (Compile.compile f)
                | "reduction" ->
                  Pipeline.shap_via_count_oracle ?cache
                    ~oracle:Pipeline.dpll_count_oracle ~vars f
                | "pqe" ->
                  Pipeline.shap_via_pqe_oracle
                    ~oracle:Pipeline.pqe_circuit_oracle ~vars f
                | "subsets" -> Naive.shap_subsets ~vars f
                | "permutations" -> Naive.shap_permutations ~vars f
                | m -> failwith ("unknown method " ^ m)
              in
              print_shap names shap))
  in
  let info =
    Cmd.info "shap"
      ~doc:"Shapley value of every variable (problem Shap(C) of Section 3)."
  in
  Cmd.v info
    Term.(const run $ obs_args
          $ method_arg
              ~choices:[ "circuit"; "reduction"; "pqe"; "subsets"; "permutations" ]
              ~default:"circuit"
          $ universe_arg $ formula_arg)

let banzhaf_cmd =
  let run opts method_ n s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, names) ->
          let vars = universe_of ?n f in
          with_obs opts (fun () ->
              let scores =
                match method_ with
                | "circuit" ->
                  Power_indices.banzhaf_circuit ~vars (Compile.compile f)
                | "brute" -> Power_indices.banzhaf ~vars f
                | "dpll" ->
                  Power_indices.banzhaf_via_count_oracle
                    ~count:(fun ~vars f -> Dpll.count_universe ~vars f)
                    ~vars f
                | m -> failwith ("unknown method " ^ m)
              in
              print_shap names scores))
  in
  let info =
    Cmd.info "banzhaf" ~doc:"Banzhaf value of every variable (comparison index)."
  in
  Cmd.v info
    Term.(const run $ obs_args
          $ method_arg ~choices:[ "circuit"; "brute"; "dpll" ] ~default:"circuit"
          $ universe_arg $ formula_arg)

let approx_cmd =
  let samples_arg =
    Arg.(value & opt (some int) None
         & info [ "s"; "samples" ] ~docv:"N"
             ~doc:"Permutation budget cap (default: the Hoeffding bound for \
                   $(b,--eps)/$(b,--delta) when $(b,--eps) is given, else \
                   10000).")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let eps_arg =
    Arg.(value & opt (some float) None
         & info [ "eps" ] ~docv:"EPS" ~env:(Cmd.Env.info "SHAPMC_EPS")
             ~doc:"Target additive error: stop as soon as the certified max \
                   CI half-width is at most $(docv).")
  in
  let delta_arg =
    Arg.(value & opt float 0.05
         & info [ "delta" ] ~docv:"DELTA" ~env:(Cmd.Env.info "SHAPMC_DELTA")
             ~doc:"Per-variable CI failure probability (default 0.05).")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~env:(Cmd.Env.info "SHAPMC_DEADLINE")
             ~doc:"Wall-clock budget: stop at the first round boundary past \
                   $(docv) seconds (a clock is not replayable, so \
                   deadline-stopped runs are not bit-identical across \
                   $(b,--jobs)).")
  in
  let estimator_arg =
    Arg.(value & opt string "truncated"
         & info [ "estimator" ] ~docv:"NAME"
             ~env:(Cmd.Env.info "SHAPMC_ESTIMATOR")
             ~doc:"Estimator: $(b,permutation), $(b,truncated) (monotone \
                   prefix cutoff, default), $(b,antithetic) (reversed-pair \
                   means) or $(b,stratified) (cyclic position shifts).")
  in
  let ci_arg =
    Arg.(value & opt string "bernstein"
         & info [ "ci" ] ~docv:"CI"
             ~doc:"Confidence interval: $(b,hoeffding), $(b,clt) or \
                   $(b,bernstein) (variance-adaptive, default).")
  in
  let interval_arg =
    Arg.(value & opt int Convergence.default_interval
         & info [ "interval" ] ~docv:"N"
             ~doc:"Convergence checkpoint period in samples.")
  in
  let convergence_arg =
    Arg.(value & opt (some string) None
         & info [ "convergence" ] ~docv:"FILE"
             ~env:(Cmd.Env.info "SHAPMC_CONVERGENCE")
             ~doc:"Write one JSONL convergence checkpoint per $(b,--interval) \
                   samples to $(docv) ($(b,-) for stderr).  Lines carry no \
                   wall-clock stamps, so equal-seed runs produce identical \
                   files at any $(b,--jobs).")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Print a progress line to stderr at every estimator round \
                   (samples so far, certified half-width, elapsed time).")
  in
  let run opts samples seed eps delta deadline estimator ci interval
      convergence progress n s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, names) ->
          let vars = universe_of ?n f in
          let name i =
            match List.assoc_opt i names with
            | Some nm -> nm
            | None -> Printf.sprintf "x%d" i
          in
          let estimator =
            match Sampling.estimator_of_string estimator with
            | Some e -> e
            | None -> failwith ("unknown estimator " ^ estimator)
          in
          let ci =
            match Convergence.ci_of_string ci with
            | Some c -> c
            | None -> failwith ("unknown ci " ^ ci)
          in
          let progress_fn =
            if progress then
              Some
                (fun (p : Sampling.progress) ->
                  Printf.eprintf
                    "progress: samples=%d half-width=%s elapsed=%.2fs\n%!"
                    p.Sampling.pr_samples
                    (if p.Sampling.pr_half_width = infinity then "inf"
                     else Printf.sprintf "%.6f" p.Sampling.pr_half_width)
                    p.Sampling.pr_elapsed)
            else None
          in
          let with_jsonl k =
            match convergence with
            | None -> k None
            | Some "-" -> k (Some stderr)
            | Some path ->
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> k (Some oc))
          in
          with_obs opts (fun () ->
              with_jsonl @@ fun jsonl ->
              let report =
                Sampling.shap_estimate ~estimator ~seed ~delta ?eps
                  ?max_samples:samples ?deadline ~ci ~interval ?jsonl
                  ?progress:progress_fn ~vars f
              in
              List.iter
                (fun e ->
                   Printf.printf "%-12s %10.6f  (± %s at %g%%)\n"
                     (name e.Sampling.variable) e.Sampling.value
                     (if e.Sampling.half_width = infinity then "inf"
                      else Printf.sprintf "%.6f" e.Sampling.half_width)
                     (100.0 *. (1.0 -. delta)))
                report.Sampling.estimates;
              Printf.printf "samples: %d\n" report.Sampling.samples_used;
              Printf.printf "evals: %d\n" report.Sampling.evals;
              Printf.printf "converged: %b\n" report.Sampling.converged))
  in
  let info =
    Cmd.info "approx"
      ~doc:"Approximate Shapley values by observable Monte-Carlo estimation."
      ~man:
        [ `S Manpage.s_description;
          `P "Runs one of four permutation-sampling estimators with \
              streaming per-variable confidence intervals, stopping early \
              when the certified max half-width reaches $(b,--eps), a \
              $(b,--deadline) passes, or the $(b,--samples) budget is \
              spent.  Batches fan out over $(b,--jobs) domains with \
              per-batch seed substreams; equal seeds give bit-identical \
              results at any job count (deadline stops excepted).  \
              Checkpoint telemetry flows to $(b,--convergence) JSONL, \
              $(b,--trace), $(b,--metrics) (estimator_* series) and \
              $(b,--progress)." ]
  in
  Cmd.v info
    Term.(const run $ obs_args $ samples_arg $ seed_arg $ eps_arg $ delta_arg
          $ deadline_arg $ estimator_arg $ ci_arg $ interval_arg
          $ convergence_arg $ progress_arg $ universe_arg $ formula_arg)

let prob_cmd =
  let theta_arg =
    Arg.(value & opt string "1/2"
         & info [ "t"; "theta" ] ~docv:"THETA"
             ~doc:"Probability of each variable (a rational, e.g. 1/3).")
  in
  let run opts theta s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, _) ->
          let theta = Rat.of_string theta in
          with_obs opts (fun () ->
              let p =
                Prob.probability ~weights:(fun _ -> theta) (Compile.compile f)
              in
              Printf.printf "%s (~ %.6f)\n" (Rat.to_string p) (Rat.to_float p)))
  in
  let info =
    Cmd.info "prob"
      ~doc:"Probability of the function under a uniform product distribution."
  in
  Cmd.v info Term.(const run $ obs_args $ theta_arg $ formula_arg)

let factor_cmd =
  let run opts s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, _) ->
          if not (Nf.is_positive f) then
            failwith "read-once factoring requires a positive formula";
          with_obs opts (fun () ->
              match Read_once.factor (Nf.formula_to_pdnf f) with
              | Some tree ->
                Printf.printf "read-once: %s\n"
                  (Formula.to_string (Read_once.tree_to_formula tree))
              | None -> Printf.printf "not read-once\n"))
  in
  let info =
    Cmd.info "factor" ~doc:"Read-once factoring of a positive formula."
  in
  Cmd.v info Term.(const run $ obs_args $ formula_arg)

let compile_cmd =
  let run opts target s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, _) ->
          with_obs opts (fun () ->
              match target with
           | "circuit" ->
             let c, stats = Compile.compile_with_stats f in
             Printf.printf "gates: %d  edges: %d  expansions: %d  cache hits: %d\n"
               (Circuit.size c) (Circuit.edge_count c)
               stats.Compile.expansions stats.Compile.cache_hits;
             Format.printf "%a@." Circuit.pp c
           | "obdd" ->
             let vars = Vset.elements (Formula.vars f) in
             let m = Obdd.create_manager ~order:vars in
             let o = Obdd.of_formula m f in
             Printf.printf "nodes: %d\n" (Obdd.size o);
             Printf.printf "count over its variables: %s\n"
               (Bigint.to_string (Obdd.count m ~vars o))
           | t -> failwith ("unknown target " ^ t)))
  in
  let info =
    Cmd.info "compile"
      ~doc:"Compile a formula to a d-D circuit or OBDD (Section 4)."
  in
  Cmd.v info
    Term.(const run $ obs_args
          $ method_arg ~choices:[ "circuit"; "obdd" ] ~default:"circuit"
          $ formula_arg)

let classify_cmd =
  let run opts s =
    wrap (fun () ->
        let q = Db_parser.parse_query s in
        Printf.printf "query: %s\n" (Cq.to_string q);
        with_obs opts (fun () ->
            match Dichotomy.classify q with
        | Dichotomy.Hierarchical ->
          Printf.printf
            "hierarchical, self-join-free: Shap(C_Q) is in FP (Theorem 5.1)\n"
        | Dichotomy.Non_hierarchical (x, y) ->
          Printf.printf
            "non-hierarchical (witness: %s, %s): Shap(C_Q) is FP^#P-hard \
             (Theorem 5.1)\n"
            x y
        | Dichotomy.Has_self_joins ->
          Printf.printf "has self-joins: outside the Theorem 5.1 dichotomy\n"
        | Dichotomy.Has_negation ->
          Printf.printf
            "has negated atoms: outside the Theorem 5.1 dichotomy (cf. \
             Reshef et al.); solved by lineage compilation\n"))
  in
  let query_arg =
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"Conjunctive query, e.g. 'R(x), S(x,y)'.")
  in
  let info =
    Cmd.info "classify" ~doc:"Classify a CQ per the Theorem 5.1 dichotomy."
  in
  Cmd.v info Term.(const run $ obs_args $ query_arg)

let lineage_cmd =
  let run opts file =
    wrap (fun () ->
        let db, q = Db_parser.parse_file file in
        with_obs opts (fun () ->
            with_cache opts @@ fun cache ->
            let f = Lineage.lineage_formula db q in
            let report = Explain.explain ?cache db q in
            Format.printf "lineage: %s@\n%a@?" (Formula.to_string f) Explain.pp
              report))
  in
  let info =
    Cmd.info "lineage"
      ~doc:"Lineage and per-tuple Shapley values for a query over a database."
  in
  Cmd.v info Term.(const run $ obs_args $ file_arg)

let stretch_cmd =
  let run opts file =
    wrap (fun () ->
        let db, q = Db_parser.parse_file file in
        with_obs opts @@ fun () ->
        let is_endo r = Database.kind_of db r = Database.Endogenous in
        let qt, zs = Stretch.stretch_query ~is_endogenous:is_endo q in
        Printf.printf "query:     %s\n" (Cq.to_string q);
        Printf.printf "stretched: %s  (fresh: %s)\n" (Cq.to_string qt)
          (String.concat ", " zs);
        Printf.printf "hierarchical: %b -> %b (Lemma 15: preserved)\n"
          (Cq.is_hierarchical q) (Cq.is_hierarchical qt);
        (* Verify the commutative diagram on this instance with widths 2. *)
        let widths _ = 2 in
        let dbt, blocks = Stretch.or_substituted_db ~widths db in
        let f_sub =
          Subst.apply
            (fun v ->
               match List.assoc_opt v blocks with
               | Some vs -> Formula.or_ (List.map Formula.var vs)
               | None -> Formula.var v)
            (Lineage.lineage_formula db q)
        in
        let f_str = Lineage.lineage_formula dbt qt in
        Printf.printf "diagram commutes on this database: %b\n"
          (Semantics.equivalent f_sub f_str))
  in
  let info =
    Cmd.info "stretch"
      ~doc:"Stretch a query (Def. 10) and verify the Section 5.2 diagram."
  in
  Cmd.v info Term.(const run $ obs_args $ file_arg)

let dimacs_cmd =
  let what_arg =
    Arg.(value & opt string "count"
         & info [ "w"; "what" ] ~docv:"WHAT"
             ~doc:"What to compute: count, kcount, shap, or wmc (uses the \
                   instance's weight lines, default 1/2).")
  in
  let run opts what file =
    wrap (fun () ->
        let inst = Dimacs.parse_file file in
        let f = Dimacs.to_formula inst in
        let vars = Dimacs.variables inst in
        with_obs opts @@ fun () ->
        match what with
        | "count" ->
          Printf.printf "%s\n" (Bigint.to_string (Dpll.count_universe ~vars f))
        | "kcount" ->
          Array.iteri
            (fun k c -> Printf.printf "#_%d = %s\n" k (Bigint.to_string c))
            (Kvec.to_array (Dpll.count_by_size_universe ~vars f))
        | "shap" ->
          (* CNF-specialized compilation with unit propagation *)
          print_shap []
            (Circuit_shapley.shap_direct ~vars
               (Compile_cnf.compile_dimacs inst))
        | "wmc" ->
          let weights v =
            Option.value ~default:(Rat.of_ints 1 2)
              (List.assoc_opt v inst.Dimacs.weights)
          in
          let p = Dpll.wmc ~weights f in
          (* unmentioned declared variables have weight sums of 1 *)
          Printf.printf "%s (~ %.6f)\n" (Rat.to_string p) (Rat.to_float p)
        | w -> failwith ("unknown computation " ^ w))
  in
  let cnf_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.cnf" ~doc:"DIMACS CNF file.")
  in
  let info =
    Cmd.info "dimacs"
      ~doc:"Count models / Shapley values of a DIMACS CNF instance."
  in
  Cmd.v info Term.(const run $ obs_args $ what_arg $ cnf_arg)

let export_nnf_cmd =
  let run opts s =
    wrap (fun () ->
        match parse_formula s with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | Ok (f, _) ->
          with_obs opts (fun () ->
              let vars = Vset.elements (Formula.vars f) in
              let m = Obdd.create_manager ~order:vars in
              let c = Obdd.to_circuit m (Obdd.of_formula m f) in
              print_string
                (Nnf_io.export c
                   ~num_vars:
                     (Option.value ~default:0
                        (Vset.max_elt_opt (Formula.vars f))))))
  in
  let info =
    Cmd.info "export-nnf"
      ~doc:"Compile a formula (via OBDD) and print it in c2d NNF format."
  in
  Cmd.v info Term.(const run $ obs_args $ formula_arg)

let count_nnf_cmd =
  let run opts n file =
    wrap (fun () ->
        let c = Nnf_io.import_file file in
        let vars =
          match n with
          | Some n -> List.init n succ
          | None -> Vset.elements (Circuit.vars c)
        in
        with_obs opts (fun () ->
            Printf.printf "gates: %d\n" (Circuit.size c);
            Printf.printf "count: %s\n" (Bigint.to_string (Count.count ~vars c));
            print_shap [] (Circuit_shapley.shap_direct ~vars c)))
  in
  let nnf_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.nnf" ~doc:"c2d-style NNF file (d-DNNF).")
  in
  let info =
    Cmd.info "count-nnf"
      ~doc:"Model count and Shapley values of an externally compiled d-DNNF."
  in
  Cmd.v info Term.(const run $ obs_args $ universe_arg $ nnf_arg)

let serve_cmd =
  let open Shapmc_serve in
  let files_arg =
    let doc =
      "Database+query files to serve (same format as $(b,shapmc lineage)); \
       each becomes a named query, the name being the file's basename \
       without extension."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~env:(Cmd.Env.info "SHAPMC_HOST")
             ~doc:"Address to bind.  Also settable via $(env).")
  in
  let port_arg =
    Arg.(value & opt int 8080
         & info [ "p"; "port" ] ~docv:"PORT" ~env:(Cmd.Env.info "SHAPMC_PORT")
             ~doc:"Port to bind; $(b,0) picks an ephemeral port (the bound \
                   port is printed on startup).  Also settable via $(env).")
  in
  let max_header_arg =
    Arg.(value & opt int Limits.default.Limits.max_header_bytes
         & info [ "max-header-bytes" ] ~docv:"N"
             ~env:(Cmd.Env.info "SHAPMC_MAX_HEADER_BYTES")
             ~doc:"Reject requests whose header section exceeds $(docv) \
                   bytes (400).  Also settable via $(env).")
  in
  let max_body_arg =
    Arg.(value & opt int Limits.default.Limits.max_body_bytes
         & info [ "max-body-bytes" ] ~docv:"N"
             ~env:(Cmd.Env.info "SHAPMC_MAX_BODY_BYTES")
             ~doc:"Reject requests declaring a body over $(docv) bytes \
                   (413).  Also settable via $(env).")
  in
  let read_timeout_arg =
    Arg.(value & opt float Limits.default.Limits.read_timeout
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~env:(Cmd.Env.info "SHAPMC_READ_TIMEOUT")
             ~doc:"Close connections that stall mid-request for $(docv) \
                   seconds (408).  Also settable via $(env).")
  in
  let max_conn_requests_arg =
    Arg.(value & opt int Limits.default.Limits.max_conn_requests
         & info [ "max-conn-requests" ] ~docv:"N"
             ~env:(Cmd.Env.info "SHAPMC_MAX_CONN_REQUESTS")
             ~doc:"Answer at most $(docv) keep-alive requests per \
                   connection before closing it.  Also settable via $(env).")
  in
  let drain_arg =
    Arg.(value & opt float 5.0
         & info [ "drain-deadline" ] ~docv:"SECONDS"
             ~env:(Cmd.Env.info "SHAPMC_DRAIN_DEADLINE")
             ~doc:"On SIGINT/SIGTERM, wait up to $(docv) seconds for \
                   in-flight requests before force-closing their \
                   connections.  Also settable via $(env).")
  in
  let access_log_arg =
    Arg.(value & opt (some string) None
         & info [ "access-log" ] ~docv:"FILE"
             ~env:(Cmd.Env.info "SHAPMC_ACCESS_LOG")
             ~doc:"Append one JSON object per answered request to $(docv) \
                   (id, route, code, bytes, wall/oracle/queue seconds, \
                   oracle-call count, jobs), rotating to $(docv).1 past \
                   $(b,--access-log-max-bytes).  Follow it live with \
                   $(b,shapmc tail).  Also settable via $(env).")
  in
  let access_log_max_arg =
    Arg.(value & opt int Access_log.default_max_bytes
         & info [ "access-log-max-bytes" ] ~docv:"N"
             ~env:(Cmd.Env.info "SHAPMC_ACCESS_LOG_MAX_BYTES")
             ~doc:"Rotate the access log when it would exceed $(docv) \
                   bytes; $(b,0) disables rotation.  Also settable via \
                   $(env).")
  in
  let debug_requests_arg =
    Arg.(value & opt int Telemetry.default_ring
         & info [ "debug-requests" ] ~docv:"N"
             ~env:(Cmd.Env.info "SHAPMC_DEBUG_REQUESTS")
             ~doc:"Keep the last $(docv) request profiles in memory for \
                   $(b,GET /v1/debug/requests); $(b,0) disables the ring. \
                   Also settable via $(env).")
  in
  let scope_cap_arg =
    Arg.(value & opt int Shapmc_obs.Scope.default_cap
         & info [ "scope-cap" ] ~docv:"N"
             ~env:(Cmd.Env.info "SHAPMC_SCOPE_CAP")
             ~doc:"Bound each request's scoped trace buffer at $(docv) \
                   events (aggregates stay exact past it).  Also settable \
                   via $(env).")
  in
  (* bool that also takes 0/1, matching the other SHAPMC_* env vars *)
  let lax_bool =
    let parse = function
      | "0" -> Ok false
      | "1" -> Ok true
      | s -> Arg.conv_parser Arg.bool s
    in
    Arg.conv (parse, Arg.conv_printer Arg.bool)
  in
  let serve_cache_arg =
    Arg.(value & opt lax_bool true
         & info [ "cache" ] ~docv:"BOOL"
             ~env:(Cmd.Env.info "SHAPMC_SERVE_CACHE")
             ~doc:"Amortize answers through the serving cache: compiled \
                   circuits, stratified count vectors and per-fact Shapley \
                   rationals are content-keyed and shared across requests \
                   (watch $(b,shapmc_cache_hits_total) on $(b,/metrics)).  \
                   $(b,false) re-solves every request from scratch.  Also \
                   settable via $(env).")
  in
  let serve_cache_size_arg =
    Arg.(value & opt int Shapmc_cache.Cache.default_results
         & info [ "cache-size" ] ~docv:"N"
             ~env:(Cmd.Env.info "SHAPMC_CACHE_SIZE")
             ~doc:"Capacity of the cache's result tier (per-fact Shapley \
                   rationals); the circuit and count tiers keep their \
                   defaults.  Also settable via $(env).")
  in
  let run host port jobs max_header max_body read_timeout max_conn drain
      access_log access_log_max debug_requests scope_cap caching cache_size
      files =
    wrap (fun () ->
        Par.set_jobs jobs;
        let name_of path = Filename.remove_extension (Filename.basename path) in
        let named = List.map (fun p -> (name_of p, p)) files in
        let cache =
          if caching then
            Some (Shapmc_cache.Cache.create ~results:cache_size ())
          else None
        in
        let api =
          try Api.load_files ?cache ~caching named
          with Invalid_argument m -> failwith m
        in
        let limits =
          { Limits.max_header_bytes = max_header;
            max_body_bytes = max_body;
            read_timeout;
            max_conn_requests = max_conn }
        in
        let access =
          Option.map
            (fun path -> Access_log.open_ ~max_bytes:access_log_max path)
            access_log
        in
        let telemetry =
          Telemetry.create ~ring:debug_requests ?access ()
        in
        let config =
          { Server.host; port; jobs; limits; drain_deadline = drain;
            telemetry = Some telemetry; scope_cap }
        in
        let server = Server.create ~config (Api.routes ~telemetry api) in
        Server.start server;
        Printf.printf "shapmc serve: listening on http://%s:%d (%d quer%s, jobs=%d)\n%!"
          host (Server.port server)
          (List.length named)
          (if List.length named = 1 then "y" else "ies")
          jobs;
        let on_signal _ = Server.stop server in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        (* Dying clients must not kill the daemon mid-write. *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        Server.run server;
        Option.iter Access_log.close access;
        Printf.printf "shapmc serve: shut down cleanly (%d request%s served)\n%!"
          (Server.requests_served server)
          (if Server.requests_served server = 1 then "" else "s"))
  in
  let info =
    Cmd.info "serve"
      ~doc:"Long-running HTTP Shapley-attribution service: load databases \
            and queries once, answer $(b,POST /v1/shapley) requests \
            concurrently over the domain pool, serve OpenMetrics on \
            $(b,GET /metrics) and per-request trace profiles on \
            $(b,GET /v1/debug/requests)."
  in
  Cmd.v info
    Term.(const run $ host_arg $ port_arg $ jobs_arg $ max_header_arg
          $ max_body_arg $ read_timeout_arg $ max_conn_requests_arg
          $ drain_arg $ access_log_arg $ access_log_max_arg
          $ debug_requests_arg $ scope_cap_arg $ serve_cache_arg
          $ serve_cache_size_arg $ files_arg)

let tail_cmd =
  let open Shapmc_serve in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"JSONL access log written by $(b,shapmc serve \
                   --access-log).")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Refresh the summary every $(docv) seconds.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Read the whole file, print one summary, exit (no \
                   following).")
  in
  let run interval once file =
    wrap (fun () ->
        if not (Sys.file_exists file) then
          failwith (Printf.sprintf "no such access log: %s" file);
        let t = Tail.create () in
        let ic = ref (open_in_bin file) in
        let buf = Bytes.create 65536 in
        let drain () =
          let rec go () =
            let k = input !ic buf 0 (Bytes.length buf) in
            if k > 0 then begin
              Tail.feed t (Bytes.sub_string buf 0 k);
              go ()
            end
          in
          go ()
        in
        let reopen_if_rotated () =
          (* The serve side renames the file away on rotation; follow
             the fresh file at the same path from its start. *)
          match (Unix.stat file).Unix.st_size < pos_in !ic with
          | true | (exception Unix.Unix_error _) -> (
              try
                let nic = open_in_bin file in
                close_in_noerr !ic;
                ic := nic
              with Sys_error _ -> ())
          | false -> ()
        in
        Fun.protect
          ~finally:(fun () -> close_in_noerr !ic)
          (fun () ->
            if once then begin
              drain ();
              Tail.finish t;
              print_string (Tail.render t)
            end
            else begin
              Printf.printf "shapmc tail: following %s (interval %gs, \
                             Ctrl-C to stop)\n%!" file interval;
              while true do
                drain ();
                let tm = Unix.localtime (Unix.gettimeofday ()) in
                Printf.printf "--- %02d:%02d:%02d  %d line%s ---\n%s%!"
                  tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
                  (Tail.lines t)
                  (if Tail.lines t = 1 then "" else "s")
                  (Tail.render t);
                Unix.sleepf (Float.max 0.05 interval);
                reopen_if_rotated ()
              done
            end))
  in
  let info =
    Cmd.info "tail"
      ~doc:"Follow a $(b,shapmc serve) access log and render a live \
            per-route summary: request and error counts, latency \
            percentiles, oracle work, bytes."
  in
  Cmd.v info Term.(const run $ interval_arg $ once_arg $ file_arg)

let trace_report_cmd =
  let run percentiles file =
    wrap (fun () ->
        let events, dropped =
          try Trace_export.read_jsonl_file_full file
          with Failure m ->
            failwith
              (Printf.sprintf
                 "%s\n(trace-report replays the JSONL format; record one \
                  with --trace FILE.jsonl)"
                 m)
        in
        print_string (Trace_export.report ~dropped ~percentiles events))
  in
  let trace_file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.jsonl"
             ~doc:"JSONL trace written by $(b,--trace FILE.jsonl).")
  in
  let percentiles_arg =
    let doc =
      "Append oracle-latency percentile rows (p50/p90/p99/max per oracle, \
       lemma and substitution arity) computed from the recorded events \
       through the same log-linear histograms as $(b,--profile); the \
       per-group call counts equal the oracle totals above."
    in
    Arg.(value & flag & info [ "percentiles" ] ~doc)
  in
  let info =
    Cmd.info "trace-report"
      ~doc:"Replay a recorded JSONL trace: indented timeline, per-phase \
            aggregates and per-oracle totals.  Warns when the recording \
            hit the event cap and events were dropped."
  in
  Cmd.v info Term.(const run $ percentiles_arg $ trace_file_arg)

let main =
  let doc =
    "Shapley values and model counting for Boolean functions, circuits and \
     query lineage (Kara, Olteanu, Suciu: From Shapley Value to Model \
     Counting and Back, PODS 2024)."
  in
  let info = Cmd.info "shapmc" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ count_cmd; kcount_cmd; shap_cmd; banzhaf_cmd; approx_cmd; prob_cmd;
      factor_cmd; compile_cmd; classify_cmd; lineage_cmd; stretch_cmd;
      dimacs_cmd; export_nnf_cmd; count_nnf_cmd; serve_cmd; tail_cmd;
      trace_report_cmd ]

let () = exit (Cmd.eval main)
