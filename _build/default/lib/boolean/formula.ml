type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list

let tru = True
let fls = False
let var v = Var v
let of_bool b = if b then True else False

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

(* Flatten nested same-connective nodes and apply the constant laws:
   [absorb] is the dominating constant, [unit_] the neutral one. *)
let nary ~absorb ~unit_ ~flatten ~mk fs =
  let exception Absorbed in
  try
    let flat = List.concat_map flatten fs in
    let kept =
      List.filter
        (fun f ->
           if f = absorb then raise Absorbed;
           f <> unit_)
        flat
    in
    match kept with
    | [] -> unit_
    | [ f ] -> f
    | fs -> mk fs
  with Absorbed -> absorb

let and_ fs =
  nary ~absorb:False ~unit_:True
    ~flatten:(function And gs -> gs | f -> [ f ])
    ~mk:(fun fs -> And fs) fs

let or_ fs =
  nary ~absorb:True ~unit_:False
    ~flatten:(function Or gs -> gs | f -> [ f ])
    ~mk:(fun fs -> Or fs) fs
let conj2 a b = and_ [ a; b ]
let disj2 a b = or_ [ a; b ]

let rec vars = function
  | True | False -> Vset.empty
  | Var v -> Vset.singleton v
  | Not f -> vars f
  | And fs | Or fs ->
    List.fold_left (fun acc f -> Vset.union acc (vars f)) Vset.empty fs

let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs ->
    let n = List.length fs in
    Stdlib.max 0 (n - 1) + List.fold_left (fun acc f -> acc + size f) 0 fs

let rec eval env = function
  | True -> true
  | False -> false
  | Var v -> env v
  | Not f -> not (eval env f)
  | And fs -> List.for_all (eval env) fs
  | Or fs -> List.exists (eval env) fs

let eval_set s f = eval (fun v -> Vset.mem v s) f

let equal = Stdlib.( = )
let compare = Stdlib.compare

let rec map_var h = function
  | (True | False) as f -> f
  | Var v -> h v
  | Not f -> not_ (map_var h f)
  | And fs -> and_ (List.map (map_var h) fs)
  | Or fs -> or_ (List.map (map_var h) fs)

let rename h f = map_var (fun v -> Var (h v)) f

let restrict v b f = map_var (fun u -> if u = v then of_bool b else Var u) f

let restrict_set bindings f =
  map_var
    (fun u ->
       match List.assoc_opt u bindings with
       | Some b -> of_bool b
       | None -> Var u)
    f

let simplify f = map_var var f

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "1"
  | False -> Format.pp_print_string ppf "0"
  | Var v -> Format.fprintf ppf "x%d" v
  | Not f -> Format.fprintf ppf "!%a" pp_atom f
  | And fs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
      pp_atom ppf fs
  | Or fs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
      pp_or_arg ppf fs

(* Arguments of [&] and [!] need parentheses around [|] (and [&] under [!]). *)
and pp_atom ppf = function
  | (And _ | Or _) as f -> Format.fprintf ppf "(%a)" pp f
  | f -> pp ppf f

and pp_or_arg ppf = function
  | Or _ as f -> Format.fprintf ppf "(%a)" pp f
  | f -> pp ppf f

let to_string f = Format.asprintf "%a" pp f
