type clause = { pos : Vset.t; neg : Vset.t }
type pdnf = Vset.t list

let clause ~pos ~neg =
  let pos = Vset.of_list pos and neg = Vset.of_list neg in
  if not (Vset.disjoint pos neg) then
    invalid_arg "Nf.clause: overlapping positive and negative literals";
  { pos; neg }

let literals_of_clause c =
  List.map Formula.var (Vset.elements c.pos)
  @ List.map (fun v -> Formula.not_ (Formula.var v)) (Vset.elements c.neg)

let cnf_to_formula cs =
  Formula.and_ (List.map (fun c -> Formula.or_ (literals_of_clause c)) cs)

let dnf_to_formula cs =
  Formula.or_ (List.map (fun c -> Formula.and_ (literals_of_clause c)) cs)

let pdnf_to_formula d =
  Formula.or_
    (List.map
       (fun c -> Formula.and_ (List.map Formula.var (Vset.elements c)))
       d)

let pdnf_vars d = List.fold_left Vset.union Vset.empty d
let pdnf_eval d s = List.exists (fun c -> Vset.subset c s) d

let pdnf_minimize d =
  let keep c =
    not (List.exists (fun c' -> (not (Vset.equal c c')) && Vset.subset c' c) d)
  in
  List.sort_uniq Vset.compare (List.filter keep d)

let bipartite ~edges =
  let left i = 2 * i and right j = (2 * j) + 1 in
  let d =
    List.map (fun (i, j) -> Vset.of_list [ left i; right j ]) edges
  in
  (d, left, right)

let rec is_positive = function
  | Formula.True | Formula.False | Formula.Var _ -> true
  | Formula.Not _ -> false
  | Formula.And fs | Formula.Or fs -> List.for_all is_positive fs

(* Distribute ∧ over ∨ bottom-up.  Each subformula yields the pdnf of its
   models' minimal witnesses; And takes pairwise unions (cartesian), Or
   concatenates.  Absorption keeps intermediate results small where
   possible. *)
let formula_to_pdnf f =
  let rec go = function
    | Formula.True -> [ Vset.empty ]
    | Formula.False -> []
    | Formula.Var v -> [ Vset.singleton v ]
    | Formula.Not _ -> invalid_arg "Nf.formula_to_pdnf: negation"
    | Formula.Or fs -> pdnf_minimize (List.concat_map go fs)
    | Formula.And fs ->
      List.fold_left
        (fun acc g ->
           let dg = go g in
           pdnf_minimize
             (List.concat_map (fun c -> List.map (Vset.union c) dg) acc))
        [ Vset.empty ] fs
  in
  pdnf_minimize (go f)
