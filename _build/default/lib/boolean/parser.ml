(* Hand-written lexer + recursive-descent parser, matching the grammar in
   the interface.  Kept dependency-free on purpose. *)

type token =
  | Tok_var of string
  | Tok_true
  | Tok_false
  | Tok_and
  | Tok_or
  | Tok_not
  | Tok_lpar
  | Tok_rpar
  | Tok_eof

let fail pos msg =
  invalid_arg (Printf.sprintf "Parser: %s at position %d" msg pos)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let lex s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '&' || c = '*' then begin
      toks := (Tok_and, !i) :: !toks;
      incr i
    end
    else if c = '|' || c = '+' then begin
      toks := (Tok_or, !i) :: !toks;
      incr i
    end
    else if c = '!' || c = '~' then begin
      toks := (Tok_not, !i) :: !toks;
      incr i
    end
    else if c = '(' then begin
      toks := (Tok_lpar, !i) :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := (Tok_rpar, !i) :: !toks;
      incr i
    end
    else if c = '0' then begin
      toks := (Tok_false, !i) :: !toks;
      incr i
    end
    else if c = '1' then begin
      toks := (Tok_true, !i) :: !toks;
      incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      toks := (Tok_var (String.sub s start (!i - start)), start) :: !toks
    end
    else fail !i (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev ((Tok_eof, n) :: !toks)

(* Identifier interning: [x<digits>] is variable <digits>; other names get
   ids above every numbered variable seen so far, in first-occurrence
   order. *)
type interner = {
  mutable table : (string * int) list;
  mutable next : int;
}

let numbered name =
  if String.length name >= 2 && name.[0] = 'x' then
    int_of_string_opt (String.sub name 1 (String.length name - 1))
  else None

let intern st name =
  match List.assoc_opt name st.table with
  | Some v -> v
  | None ->
    let v =
      match numbered name with
      | Some k when k >= 0 ->
        st.next <- Stdlib.max st.next (k + 1);
        k
      | _ ->
        let v = st.next in
        st.next <- v + 1;
        v
    in
    st.table <- (name, v) :: st.table;
    v

let formula_of_string s =
  let toks = ref (lex s) in
  let st = { table = []; next = 1 } in
  let peek () = List.hd !toks in
  let advance () = toks := List.tl !toks in
  let rec parse_or () =
    let lhs = parse_and () in
    let rec loop acc =
      match peek () with
      | Tok_or, _ ->
        advance ();
        loop (parse_and () :: acc)
      | _ -> List.rev acc
    in
    Formula.or_ (loop [ lhs ])
  and parse_and () =
    let lhs = parse_not () in
    let rec loop acc =
      match peek () with
      | Tok_and, _ ->
        advance ();
        loop (parse_not () :: acc)
      | _ -> List.rev acc
    in
    Formula.and_ (loop [ lhs ])
  and parse_not () =
    match peek () with
    | Tok_not, _ ->
      advance ();
      Formula.not_ (parse_not ())
    | _ -> parse_atom ()
  and parse_atom () =
    match peek () with
    | Tok_true, _ ->
      advance ();
      Formula.tru
    | Tok_false, _ ->
      advance ();
      Formula.fls
    | Tok_var name, _ ->
      advance ();
      Formula.var (intern st name)
    | Tok_lpar, pos ->
      advance ();
      let f = parse_or () in
      (match peek () with
       | Tok_rpar, _ ->
         advance ();
         f
       | _, p -> fail p (Printf.sprintf "unclosed '(' opened at %d" pos))
    | _, pos -> fail pos "expected a formula"
  in
  let f = parse_or () in
  (match peek () with
   | Tok_eof, _ -> ()
   | _, pos -> fail pos "trailing input");
  (f, List.rev_map (fun (name, v) -> (v, name)) st.table)

let formula_of_string_exn s = fst (formula_of_string s)
