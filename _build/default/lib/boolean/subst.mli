(** Substitutions of variables by formulas, and the paper's OR-/AND-
    substitutions (Definition 1 and the end of Section 3).

    An OR-substitution maps each variable [X_i] to a disjunction
    [Z_i^1 ∨ ... ∨ Z_i^{m_i}] of fresh variables; [m_i = 0] maps [X_i] to
    false.  The uniform width-[l] OR-substitution [F^(l)] is the workhorse of
    Lemmas 3.3 and 3.4 (it satisfies Claim 3.5:
    [#F^(l) = Σ_k (2^l − 1)^k #_k F]). *)

(** Description of an applied uniform substitution: for each original
    variable, the block of fresh variables that replaced it. *)
type blocks = (int * int list) list

(** All substitution builders below take an optional [?universe]: the set
    of declared variables of the function (default: [Formula.vars f]).
    Universe variables not occurring in [f] still receive fresh blocks —
    they are players, and their replacements appear in the substituted
    function's universe — but no syntactic occurrence changes.
    @raise Invalid_argument if the universe misses a variable of [f]. *)

(** [apply theta f] is [F[theta]]: every variable [v] is replaced by
    [theta v] ([theta] must be total on [vars f], identity by default via
    [Formula.var]). *)
val apply : (int -> Formula.t) -> Formula.t -> Formula.t

(** [or_subst widths f] applies the OR-substitution in which variable [v]
    is replaced by a disjunction of [widths v] fresh variables.  Returns the
    substituted formula together with the fresh blocks.
    @raise Invalid_argument if some width is negative. *)
val or_subst :
  ?universe:Vset.t -> widths:(int -> int) -> Formula.t -> Formula.t * blocks

(** [uniform_or ~l f] is the paper's [F^(l)]: every variable replaced by a
    disjunction of [l] fresh variables. *)
val uniform_or : ?universe:Vset.t -> l:int -> Formula.t -> Formula.t * blocks

(** [uniform_and ~l f] is the AND-substitution variant [F^(l)] from the end
    of Section 3 (Claim 3.7). *)
val uniform_and : ?universe:Vset.t -> l:int -> Formula.t -> Formula.t * blocks

(** [uniform_or_except ~l ~keep f] substitutes every variable except [keep]
    by a disjunction of [l] fresh variables, and [keep] by a single fresh
    variable.  Returns the formula, the fresh variable [Z_i] standing for
    [keep], and the blocks.  This is the function [F^(l,i)] in the proof of
    Lemma 3.4. *)
val uniform_or_except :
  ?universe:Vset.t -> l:int -> keep:int -> Formula.t -> Formula.t * int * blocks

(** [isomorphic_copy f] replaces every variable by a single fresh variable
    — an OR-substitution with all [m_i = 1], yielding an isomorphic
    function (used in the proof of Lemma 3.2). *)
val isomorphic_copy : ?universe:Vset.t -> Formula.t -> Formula.t * blocks

(** [zap ~zero f] maps each variable of [zero] to the empty disjunction
    (i.e. false) and each other variable to a single fresh variable: the
    function [~F'] in the proof of Lemma 3.2. *)
val zap : ?universe:Vset.t -> zero:Vset.t -> Formula.t -> Formula.t * blocks
