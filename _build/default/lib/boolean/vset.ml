(** Sets of Boolean variables (variables are integer identifiers).

    Shared throughout the library: formulas, valuations (Section 2 denotes a
    valuation by the set of variables it maps to 1), circuit gate variable
    scopes, and lineage all manipulate variable sets. *)

include Set.Make (Int)

(** [of_range lo hi] is [{lo, lo+1, ..., hi}] (empty when [hi < lo]). *)
let of_range lo hi =
  let rec go acc i = if i < lo then acc else go (add i acc) (i - 1) in
  go empty hi

(** [pp] prints as [{1, 2, 5}]. *)
let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
