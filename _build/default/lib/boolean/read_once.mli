(** Read-once factoring of positive DNF.

    A positive Boolean function is {e read-once} if it has an ∧/∨ formula
    in which every variable appears exactly once.  Read-once lineage is
    the classical tractable case for probabilistic databases and for
    Shapley values (hierarchical self-join-free CQs have read-once
    lineage, which is why [Safe_plan] works); this module recognizes
    read-onceness of an arbitrary positive DNF and produces the factored
    form.

    Algorithm (the classical cograph-style recursion on the set of prime
    implicants): OR-decompose along variable-disjoint groups of clauses;
    AND-decompose along the connected components of the {e complement} of
    the variable co-occurrence graph, verifying that the clause set is
    exactly the cartesian product of the projections; a connected,
    co-connected function on ≥ 2 variables is not read-once. *)

type tree =
  | Leaf of int
  | And of tree list
  | Or of tree list

(** [factor d] returns the read-once tree of the function denoted by the
    positive DNF [d], or [None] if the function is not read-once.  [d] is
    minimized first ({!Nf.pdnf_minimize}), so any positive DNF
    representation of the function works.  Constant functions (empty DNF
    or an empty clause) are rejected with [Invalid_argument]. *)
val factor : Nf.pdnf -> tree option

(** [is_read_once d] = [factor d <> None]. *)
val is_read_once : Nf.pdnf -> bool

(** [tree_to_formula t] — every variable occurs exactly once. *)
val tree_to_formula : tree -> Formula.t

(** [tree_vars t] — the (distinct) variables of the tree. *)
val tree_vars : tree -> Vset.t
