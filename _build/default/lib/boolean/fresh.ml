(** Fresh-variable supply.

    OR-substitutions (Definition 1) replace each variable by a disjunction of
    {e fresh} variables; the supply hands out identifiers strictly above
    everything in an [avoid] set so freshness is guaranteed by construction. *)

type t = { mutable next : int }

(** [make ~avoid] is a supply whose variables are all fresh w.r.t. [avoid]. *)
let make ~avoid =
  let next = match Vset.max_elt_opt avoid with None -> 1 | Some m -> m + 1 in
  { next }

(** [for_formula f] is a supply fresh w.r.t. the variables of [f]. *)
let for_formula f = make ~avoid:(Formula.vars f)

(** [fresh t] returns the next fresh variable. *)
let fresh t =
  let v = t.next in
  t.next <- v + 1;
  v

(** [fresh_block t k] returns [k] fresh variables, in ascending order. *)
let fresh_block t k = List.init k (fun _ -> fresh t)
