type tree = Leaf of int | And of tree list | Or of tree list

let tree_to_formula t =
  let rec go = function
    | Leaf v -> Formula.var v
    | And ts -> Formula.and_ (List.map go ts)
    | Or ts -> Formula.or_ (List.map go ts)
  in
  go t

let rec tree_vars = function
  | Leaf v -> Vset.singleton v
  | And ts | Or ts ->
    List.fold_left (fun acc t -> Vset.union acc (tree_vars t)) Vset.empty ts

(* Variable-disjoint groups of clauses (for OR-decomposition). *)
let clause_components clauses =
  let merge groups (vs, cs) =
    let touching, rest =
      List.partition (fun (ws, _) -> not (Vset.disjoint vs ws)) groups
    in
    let vs' = List.fold_left (fun a (ws, _) -> Vset.union a ws) vs touching in
    (vs', cs @ List.concat_map snd touching) :: rest
  in
  List.fold_left merge [] (List.map (fun c -> (c, [ c ])) clauses)

(* Components of the complement of the co-occurrence graph (for
   AND-decomposition): u, v in the same part iff NOT every clause-pair
   separates them... concretely, u ~ v in the complement iff u and v do
   not co-occur in any clause; we need the transitive components. *)
let complement_components vars clauses =
  let vars = Vset.elements vars in
  let co_occur u v =
    List.exists (fun c -> Vset.mem u c && Vset.mem v c) clauses
  in
  (* union-find over vars, joining pairs that do NOT co-occur *)
  let parent = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace parent v v) vars;
  let rec find v =
    let p = Hashtbl.find parent v in
    if p = v then v
    else begin
      let r = find p in
      Hashtbl.replace parent v r;
      r
    end
  in
  let union u v =
    let ru = find u and rv = find v in
    if ru <> rv then Hashtbl.replace parent ru rv
  in
  let rec pairs = function
    | [] -> ()
    | u :: rest ->
      List.iter (fun v -> if not (co_occur u v) then union u v) rest;
      pairs rest
  in
  pairs vars;
  let groups = Hashtbl.create 16 in
  List.iter
    (fun v ->
       let r = find v in
       Hashtbl.replace groups r
         (Vset.add v (Option.value ~default:Vset.empty (Hashtbl.find_opt groups r))))
    vars;
  Hashtbl.fold (fun _ g acc -> g :: acc) groups []

exception Not_read_once

let factor d =
  let d = Nf.pdnf_minimize d in
  if d = [] then invalid_arg "Read_once.factor: constant false";
  if List.exists Vset.is_empty d then
    invalid_arg "Read_once.factor: constant true";
  let rec go clauses =
    match clauses with
    | [] -> assert false
    | [ c ] when Vset.cardinal c = 1 -> Leaf (Vset.min_elt c)
    | _ ->
      (match clause_components clauses with
       | [] -> assert false
       | _ :: _ :: _ as groups ->
         (* variable-disjoint alternatives: OR node *)
         Or (List.map (fun (_, cs) -> go cs) groups)
       | [ (vars, _) ] ->
         (* connected: try AND-decomposition via co-occurrence complement *)
         (match complement_components vars clauses with
          | [] | [ _ ] -> raise Not_read_once
          | parts ->
            (* project clauses on each part and verify the product law *)
            let projections =
              List.map
                (fun part ->
                   (part,
                    List.sort_uniq Vset.compare
                      (List.map (fun c -> Vset.inter c part) clauses)))
                parts
            in
            List.iter
              (fun (_, proj) ->
                 if List.exists Vset.is_empty proj then raise Not_read_once)
              projections;
            let product_size =
              List.fold_left (fun acc (_, p) -> acc * List.length p) 1
                projections
            in
            if product_size <> List.length clauses then raise Not_read_once;
            (* every combination of projections must be a clause *)
            let clause_set = List.sort_uniq Vset.compare clauses in
            let rec combos acc = function
              | [] -> [ acc ]
              | (_, proj) :: rest ->
                List.concat_map
                  (fun p -> combos (Vset.union acc p) rest)
                  proj
            in
            let all = List.sort_uniq Vset.compare (combos Vset.empty projections) in
            if not (List.equal Vset.equal all clause_set) then
              raise Not_read_once;
            And (List.map (fun (_, proj) -> go proj) projections)))
  in
  try Some (go d) with Not_read_once -> None

let is_read_once d = factor d <> None
