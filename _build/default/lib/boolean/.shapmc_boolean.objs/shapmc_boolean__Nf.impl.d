lib/boolean/nf.ml: Formula List Vset
