lib/boolean/read_once.mli: Formula Nf Vset
