lib/boolean/semantics.ml: Array Formula Hashtbl List Printf Vset
