lib/boolean/subst.ml: Formula Fresh Hashtbl List Vset
