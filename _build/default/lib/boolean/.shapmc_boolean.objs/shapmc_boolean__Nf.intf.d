lib/boolean/nf.mli: Formula Vset
