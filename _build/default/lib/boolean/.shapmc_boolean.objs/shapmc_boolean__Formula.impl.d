lib/boolean/formula.ml: Format List Stdlib Vset
