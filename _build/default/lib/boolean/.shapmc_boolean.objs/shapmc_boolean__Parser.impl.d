lib/boolean/parser.ml: Formula List Printf Stdlib String
