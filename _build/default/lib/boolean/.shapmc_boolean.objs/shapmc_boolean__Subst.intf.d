lib/boolean/subst.mli: Formula Vset
