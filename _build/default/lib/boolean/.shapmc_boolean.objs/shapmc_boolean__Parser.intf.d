lib/boolean/parser.mli: Formula
