lib/boolean/semantics.mli: Formula Vset
