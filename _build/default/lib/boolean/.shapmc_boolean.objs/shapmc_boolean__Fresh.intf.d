lib/boolean/fresh.mli: Formula Vset
