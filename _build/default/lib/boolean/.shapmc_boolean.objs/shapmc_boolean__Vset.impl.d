lib/boolean/vset.ml: Format Int Set
