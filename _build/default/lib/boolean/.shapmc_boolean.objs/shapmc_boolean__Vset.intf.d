lib/boolean/vset.mli: Format Set
