lib/boolean/formula.mli: Format Vset
