lib/boolean/fresh.ml: Formula List Vset
