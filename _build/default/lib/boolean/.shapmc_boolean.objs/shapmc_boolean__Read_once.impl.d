lib/boolean/read_once.ml: Formula Hashtbl List Nf Option Vset
