(** Textual syntax for Boolean formulas.

    Grammar (lowest to highest precedence):
    {v
      or   ::= and ('|' and)*
      and  ::= not ('&' not)*
      not  ::= '!' not | atom
      atom ::= '0' | '1' | ident | '(' or ')'
    v}
    Identifiers are [[A-Za-z_][A-Za-z0-9_']*]; identifiers of the shape
    [x<digits>] map to the variable with that number, other identifiers are
    interned in order of first occurrence (starting from 1).  This is the
    format accepted by the [shapmc] CLI and emitted by {!Formula.pp}. *)

(** [formula_of_string s] parses, returning the formula and the name table
    (variable id -> source name).
    @raise Invalid_argument with a position-annotated message on error. *)
val formula_of_string : string -> Formula.t * (int * string) list

(** [formula_of_string_exn s] is [fst (formula_of_string s)]. *)
val formula_of_string_exn : string -> Formula.t
