(** Fresh-variable supply.

    OR-substitutions (Definition 1) replace each variable by a disjunction
    of {e fresh} variables; the supply hands out identifiers strictly
    above everything in an avoid set, so freshness holds by
    construction. *)

type t

(** [make ~avoid] is a supply whose variables are all fresh w.r.t.
    [avoid]. *)
val make : avoid:Vset.t -> t

(** [for_formula f] is a supply fresh w.r.t. the variables of [f]. *)
val for_formula : Formula.t -> t

(** [fresh t] returns the next fresh variable. *)
val fresh : t -> int

(** [fresh_block t k] returns [k] fresh variables, in ascending order. *)
val fresh_block : t -> int -> int list
