(** Boolean functions as formula ASTs (Section 2 of the paper).

    A Boolean function over variables [X_1, ..., X_n] is built from variables,
    constants and the connectives [∧], [∨], [¬].  Variables are integer
    identifiers; following the paper we identify isomorphic functions (equal
    up to variable renaming), which {!rename} makes executable.

    Connectives are n-ary in the AST; the smart constructors flatten and
    simplify, and {!size} counts occurrences of variables and of (binary)
    connectives as in the paper's definition of [|F|]. *)

type t =
  | True
  | False
  | Var of int
  | Not of t
  | And of t list
  | Or of t list

(** {1 Smart constructors}

    These perform only local, constant-time-per-node simplification
    (identity/absorbing constants, flattening of nested same-connective
    lists, double negation); they never change the variable set except by
    dropping constants. *)

val tru : t
val fls : t
val var : int -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t

(** [conj2 a b] and [disj2 a b] are binary forms of {!and_}/{!or_}. *)
val conj2 : t -> t -> t

val disj2 : t -> t -> t

(** [of_bool b] is [tru] or [fls]. *)
val of_bool : bool -> t

(** {1 Observation} *)

(** [vars f] is the set of variables occurring in [f]. *)
val vars : t -> Vset.t

(** [size f] is the paper's [|F|]: the number of occurrences of variables,
    constants, and binary connectives ([And]/[Or] of [k] arguments count as
    [k - 1] connectives). *)
val size : t -> int

(** [eval env f] evaluates under the assignment [env]. *)
val eval : (int -> bool) -> t -> bool

(** [eval_set s f] evaluates under the valuation that maps exactly the
    variables in [s] to true — the paper's [F[T]] notation. *)
val eval_set : Vset.t -> t -> bool

(** Structural equality (not semantic equivalence; see
    {!Semantics.equivalent}). *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** {1 Transformation} *)

(** [map_var h f] replaces every leaf [Var v] by the formula [h v]
    (general substitution [F[theta]] of Section 2). *)
val map_var : (int -> t) -> t -> t

(** [rename h f] renames variables by the (injective) map [h]; the result is
    isomorphic to [f]. *)
val rename : (int -> int) -> t -> t

(** [restrict v b f] is [F[X_v := b]] with constant propagation; the result
    does not mention [v]. *)
val restrict : int -> bool -> t -> t

(** [restrict_set bindings f] applies several restrictions at once. *)
val restrict_set : (int * bool) list -> t -> t

(** [simplify f] propagates constants bottom-up (no other rewriting). *)
val simplify : t -> t

(** {1 Printing} *)

(** [pp] prints with [&], [|], [!] and variables as [x<i>]; output is
    re-parseable by {!Parser.formula_of_string}. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
