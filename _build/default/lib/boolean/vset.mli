(** Sets of Boolean variables (variables are integer identifiers).

    Shared throughout the library: formulas, valuations (Section 2
    denotes a valuation by the set of variables it maps to 1), circuit
    gate scopes and lineage clauses are all variable sets. *)

include Set.S with type elt = int

(** [of_range lo hi] is [{lo, lo+1, ..., hi}] (empty when [hi < lo]). *)
val of_range : int -> int -> t

(** [pp] prints as [{1, 2, 5}]. *)
val pp : Format.formatter -> t -> unit
