(** Normal forms: clauses, CNF/DNF, and positive DNF.

    Positive DNF is the shape of conjunctive-query lineage (Section 5.1);
    positive {e bipartite} DNF [⋁_{(i,j)∈E} X_i ∧ Y_j] is the #P-hard class
    of Provan–Ball used for the hardness side of the dichotomy
    (Theorem 5.1). *)

(** A clause: positive and negative literal sets (disjoint). *)
type clause = { pos : Vset.t; neg : Vset.t }

(** A positive DNF: a disjunction of conjunctions of positive literals,
    each conjunction given as a variable set.  The empty list is [false];
    a member empty set makes the whole function [true]. *)
type pdnf = Vset.t list

val clause : pos:int list -> neg:int list -> clause

(** [cnf_to_formula cs] interprets [cs] as a conjunction of disjunctive
    clauses. *)
val cnf_to_formula : clause list -> Formula.t

(** [dnf_to_formula cs] interprets [cs] as a disjunction of conjunctive
    clauses. *)
val dnf_to_formula : clause list -> Formula.t

(** [pdnf_to_formula d] builds the formula [⋁_c ⋀_{v∈c} X_v]. *)
val pdnf_to_formula : pdnf -> Formula.t

(** [pdnf_vars d] is the union of all clause variable sets. *)
val pdnf_vars : pdnf -> Vset.t

(** [pdnf_eval d s] evaluates the positive DNF under valuation [s]. *)
val pdnf_eval : pdnf -> Vset.t -> bool

(** [pdnf_minimize d] removes duplicate and superset clauses (sound for
    positive DNF: a superset clause is absorbed). *)
val pdnf_minimize : pdnf -> pdnf

(** [bipartite ~edges] builds the positive bipartite DNF
    [⋁_{(i,j)∈edges} X_i ∧ Y_j] of Section 3, with the left part encoded
    as variables [2i] and the right part as [2j + 1] (so left and right
    variables never clash).  Returns the pdnf together with the encoders. *)
val bipartite : edges:(int * int) list -> pdnf * (int -> int) * (int -> int)

(** [is_positive f] holds iff no variable occurs under a negation. *)
val is_positive : Formula.t -> bool

(** [formula_to_pdnf f] converts by distributing [∧] over [∨]
    (worst-case exponential; used by the Lemma 12 / Appendix B.2.2
    transformation where the blow-up is bounded by the query arity).
    @raise Invalid_argument if [f] contains a negation. *)
val formula_to_pdnf : Formula.t -> pdnf
