(** CNF-specialized d-DNNF compilation.

    The generic compiler ({!Compile}) works on formula ASTs; this one
    works directly on clause sets, which lets it run {e unit propagation}
    before every decision — each propagated literal becomes a
    decomposable AND factor — in addition to clause-level connected-
    component decomposition and caching.  This matches how c2d/Dsharp
    treat DIMACS input and is the preferred engine for CNF instances
    ({!Shapmc_counting.Dimacs}).

    Pure-literal elimination is deliberately {e not} performed: it
    preserves satisfiability but not model counts.

    Output circuits use only variables occurring in the clauses; callers
    count over a larger declared universe via the [~vars] arguments of
    the counting functions. *)

type stats = { decisions : int; propagations : int; cache_hits : int }

(** [compile cnf] returns a d-D circuit equivalent to the conjunction of
    the clauses. *)
val compile : Nf.clause list -> Circuit.node

val compile_with_stats : Nf.clause list -> Circuit.node * stats

(** [compile_dimacs inst] compiles a parsed DIMACS instance. *)
val compile_dimacs : Dimacs.instance -> Circuit.node
