(** OR-substitution on deterministic & decomposable circuits (Lemma 9).

    The disjunction [Z_1 ∨ ... ∨ Z_l] replacing a variable is not itself
    deterministic, so it is installed as the equivalent deterministic chain

    {v G∨(Z_i..Z_l) = Z_i ∨ (¬Z_i ∧ G∨(Z_{i+1}..Z_l)),   G∨(Z_l) = Z_l v}

    of size [O(l)], and a negated occurrence [¬X] becomes
    [¬Z_1 ∧ ... ∧ ¬Z_l] (both deterministic and decomposable since the
    [Z_i] are distinct fresh variables).  The whole transformation runs in
    [O(|G| + k·l)] for a variable with [k] occurrences — the bound stated
    after Lemma 9 and measured by experiment E7.

    The API mirrors {!Shapmc_boolean.Subst} so the circuit pipeline can be
    swapped for the formula pipeline in the reductions of Section 3. *)

type blocks = (int * int list) list

(** [det_or_chain zs] is the deterministic chain circuit for
    [⋁ zs] ([cfalse] for the empty list). *)
val det_or_chain : int list -> Circuit.node

(** [or_subst ~widths g] replaces each variable [v] of the universe
    (default: the variables of [g]) by a disjunction of [widths v] fresh
    variables.  Universe variables absent from [g] get fresh blocks in the
    output universe without altering the circuit.  Fresh variables are
    chosen above the universe.
    @raise Invalid_argument if the universe misses a circuit variable. *)
val or_subst :
  ?universe:Vset.t -> widths:(int -> int) -> Circuit.node ->
  Circuit.node * blocks

(** [uniform_or ~l g] is the circuit analogue of [F^(l)] (every variable
    replaced by [l] fresh ones). *)
val uniform_or :
  ?universe:Vset.t -> l:int -> Circuit.node -> Circuit.node * blocks

(** [uniform_or_except ~l ~keep g] replaces [keep] by a single fresh
    variable and every other variable by [l] fresh ones — the circuit
    [F^(l,i)] from the proof of Lemma 3.4.  Returns the circuit, the fresh
    variable standing for [keep], and the blocks. *)
val uniform_or_except :
  ?universe:Vset.t -> l:int -> keep:int -> Circuit.node ->
  Circuit.node * int * blocks

(** [isomorphic_copy g] renames every variable to a fresh one (all widths
    1). *)
val isomorphic_copy :
  ?universe:Vset.t -> Circuit.node -> Circuit.node * blocks

(** [zap ~zero g] maps variables in [zero] to the empty disjunction
    (false) and the rest to single fresh variables. *)
val zap :
  ?universe:Vset.t -> zero:Vset.t -> Circuit.node -> Circuit.node * blocks
