(** Probability computation and SHAP scores on d-D circuits.

    This module makes the paper's "related work" axis executable.

    {b Probabilistic evaluation.}  Under a product distribution (variable
    [v] true with probability [p_v] independently), the probability of a
    deterministic & decomposable circuit is computed gate-by-gate in one
    pass — the classical tractability of PQE on compiled lineage [33, 27]
    that the paper's introduction connects to.

    {b SHAP scores.}  The SHAP score (Lundberg–Lee; Van den Broeck et al.
    [11, 12]; Arenas et al. [1, 3]) is the Shapley value of the wealth
    function [S ↦ E[F | X_S = e_S]] for an entity [e] and a product
    distribution.  On d-D circuits all SHAP scores are computable in
    polynomial time [1]; {!shap_score} implements this via a stratified
    conditional-expectation polynomial per gate, exactly mirroring the
    stratified counting of [Count].

    {b Relation to the paper's Shapley value.}  The paper stresses that
    its Shapley-of-variables is {e not} the SHAP score with probabilities
    1/2.  It is, however, the SHAP score at the all-ones entity under the
    all-zero distribution — conditioning on [X_S = 1_S] with every
    unconditioned variable false is evaluation at the set [S].  The tests
    pin both facts. *)

(** [probability ~weights g] is [Pr(G = 1)] when each variable [v] is true
    independently with probability [weights v].  Free variables outside
    the circuit do not affect the result. *)
val probability : weights:(int -> Rat.t) -> Circuit.node -> Rat.t

(** [uniform_half] maps every variable to probability 1/2 (so
    [probability ~weights:uniform_half g = #G / 2^n] over [vars g]). *)
val uniform_half : int -> Rat.t

(** [expectation_poly ~weights ~entity g] is the polynomial
    [H_G(t) = Σ_k (Σ_{S ⊆ vars G, |S| = k} E[G | X_S = e_S]) · t^k]:
    coefficient [k] aggregates the conditional expectations over all
    size-[k] conditioning sets.  Linear in [|G|] times polynomial in the
    number of variables. *)
val expectation_poly :
  weights:(int -> Rat.t) -> entity:(int -> bool) -> Circuit.node -> Poly.t

(** [shap_score ~weights ~entity ~vars g] is the SHAP score of every
    universe variable for the classifier [g] at entity [entity] under the
    product distribution [weights].
    @raise Invalid_argument if [vars] misses circuit variables. *)
val shap_score :
  weights:(int -> Rat.t) ->
  entity:(int -> bool) ->
  vars:int list ->
  Circuit.node ->
  (int * Rat.t) list
