(** c2d-style NNF interchange for circuits.

    The de-facto format of knowledge compilers (c2d, d4, Dsharp): a header
    [nnf <nodes> <edges> <vars>], then one node per line — [L lit],
    [A k child...], [O j k child...] — children referenced by line index.
    Exporting lets external tools consume our compiled circuits; importing
    lets this library count/Shapley circuits produced by an external
    compiler.  Imported [O] nodes are trusted to be deterministic (as the
    format intends); [A] decomposability is re-checked structurally at
    construction. *)

(** [export g ~num_vars] renders the circuit in NNF format.  Negations
    must only occur on variables (true for everything this library
    compiles); [Disjoint] OR gates are emitted as plain [O] nodes (they
    are also deterministic-countable only via their disjointness, which
    the format cannot express, so importing them back treats them as
    deterministic — sound for counting iff they were in fact exclusive;
    {!export} therefore {b rejects} disjoint OR gates that are not also
    mutually exclusive… conservatively, any [Disjoint] gate).
    @raise Invalid_argument on inner negations or disjoint-OR gates. *)
val export : Circuit.node -> num_vars:int -> string

(** [import s] parses NNF text into a circuit.
    @raise Invalid_argument on malformed input or non-decomposable [A]
    nodes. *)
val import : string -> Circuit.node

val export_file : Circuit.node -> num_vars:int -> string -> unit
val import_file : string -> Circuit.node
