(** Polynomial-time model counting on d-D circuits.

    The classical tractability result used by Theorem 4.1: on deterministic
    and decomposable circuits both [#G] and the full size-stratified vector
    [#_{0..n} G] are computable in time polynomial in [|G|].  The algorithm
    is a single bottom-up pass computing, for every gate [g], the vector of
    model counts of [G_g] over [vars g]:

    - [∧] (decomposable): convolution of the children's vectors;
    - [∨] (deterministic): sum of the children's vectors, each first
      smoothed to the gate scope by convolution with binomials;
    - [∨] (variable-disjoint): independent union via non-model vectors;
    - [¬]: complement within the gate scope.

    Cost: [O(|G| · n^2)] bigint operations. *)

(** [count_by_size ~vars g] is the vector [#_{0..n} G] over the universe
    [vars].  @raise Invalid_argument if [vars] misses circuit variables. *)
val count_by_size : vars:int list -> Circuit.node -> Kvec.t

(** [count ~vars g] is [#G] over the universe [vars]. *)
val count : vars:int list -> Circuit.node -> Bigint.t

(** [count_circuit g] / [count_by_size_circuit g] count over exactly
    [Circuit.vars g]. *)
val count_circuit : Circuit.node -> Bigint.t

val count_by_size_circuit : Circuit.node -> Kvec.t
