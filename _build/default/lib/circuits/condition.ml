(** Conditioning a circuit on a partial valuation.

    [G[X := b]] replaces the variable gate by a constant and re-simplifies
    bottom-up.  Conditioning preserves determinism (children that were
    mutually exclusive stay so under restriction) and decomposability
    (variable scopes only shrink), so the result is again a d-D circuit —
    this is the [m_i ∈ {0, 1}]-width corner of OR-substitution used
    throughout the proofs of Lemmas 3.2 and 3.4, and the basis of the
    polynomial Shapley algorithm of Theorem 4.1. *)

(** [restrict v b g] is [G[X_v := b]]; the result does not mention [v]. *)
let restrict v b root =
  let memo = Hashtbl.create 64 in
  let rec go (g : Circuit.node) =
    if not (Vset.mem v g.vars) then g
    else begin
      match Hashtbl.find_opt memo g.id with
      | Some h -> h
      | None ->
        let h =
          match g.gate with
          | Circuit.Ctrue | Circuit.Cfalse -> g
          | Circuit.Cvar _ -> Circuit.cbool b
          | Circuit.Cnot x -> Circuit.cnot (go x)
          | Circuit.Cand gs -> Circuit.cand (List.map go gs)
          | Circuit.Cor (Circuit.Deterministic, gs) ->
            Circuit.cor_det (List.map go gs)
          | Circuit.Cor (Circuit.Disjoint, gs) ->
            Circuit.cor_disj (List.map go gs)
        in
        Hashtbl.replace memo g.id h;
        h
    end
  in
  go root

(** [restrict_set bindings g] applies several restrictions in sequence. *)
let restrict_set bindings g =
  List.fold_left (fun g (v, b) -> restrict v b g) g bindings
