(** Ordered binary decision diagrams.

    OBDDs are the prime example the paper gives of deterministic and
    decomposable circuits (Section 4): a reduced OBDD node [(x, lo, hi)]
    reads as the deterministic disjunction [(¬x ∧ lo) ∨ (x ∧ hi)], which
    {!to_circuit} makes literal.  Nodes are hash-consed and reduced inside a
    manager, so within one manager semantic equivalence of OBDDs is pointer
    equality — giving a cheap equivalence test used by the test suite and
    by the hierarchical-lineage experiments (Olteanu–Huang [27] compile
    hierarchical-query lineage to OBDDs; our {!of_formula} plays that
    role). *)

type manager
type node

(** [create_manager ~order] fixes the variable order, root to leaves.
    Variables not listed may not be used with this manager.
    @raise Invalid_argument on duplicates. *)
val create_manager : order:int list -> manager

(** [manager_order m] returns the order list. *)
val manager_order : manager -> int list

val leaf_true : manager -> node
val leaf_false : manager -> node

(** [var m v] is the single-variable OBDD for [X_v].
    @raise Invalid_argument if [v] is not in the order. *)
val var : manager -> int -> node

val neg : manager -> node -> node
val conj : manager -> node -> node -> node
val disj : manager -> node -> node -> node
val xor : manager -> node -> node -> node

(** [of_formula m f] compiles a formula bottom-up with [apply].
    @raise Invalid_argument if [f] uses a variable outside the order. *)
val of_formula : manager -> Formula.t -> node

(** [restrict m v b t] conditions on [X_v := b]. *)
val restrict : manager -> int -> bool -> node -> node

(** [equal a b] is semantic equivalence (valid within one manager). *)
val equal : node -> node -> bool

val is_true : node -> bool
val is_false : node -> bool

(** [eval env t] follows one path root to leaf. *)
val eval : (int -> bool) -> node -> bool

val eval_set : Vset.t -> node -> bool

(** [size t] is the number of distinct nodes (including leaves). *)
val size : node -> int

(** [count m ~vars t] is the model count over the universe [vars] (every
    listed variable must be in the manager's order).
    @raise Invalid_argument otherwise. *)
val count : manager -> vars:int list -> node -> Bigint.t

(** [count_by_size m ~vars t] is the stratified vector over [vars]. *)
val count_by_size : manager -> vars:int list -> node -> Kvec.t

(** [to_circuit m t] exports to a deterministic & decomposable circuit of
    size [O(size t)]. *)
val to_circuit : manager -> node -> Circuit.node

(** [support t] is the set of variables tested on some path. *)
val support : node -> Vset.t
