lib/circuits/circuit.ml: Array Format Formula Hashtbl List Printf Stdlib Vset
