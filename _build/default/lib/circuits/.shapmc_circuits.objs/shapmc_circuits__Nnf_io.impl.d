lib/circuits/nnf_io.ml: Array Buffer Circuit Hashtbl List Printf String
