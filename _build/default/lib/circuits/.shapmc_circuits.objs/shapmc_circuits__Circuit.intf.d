lib/circuits/circuit.mli: Format Formula Vset
