lib/circuits/nnf_io.mli: Circuit
