lib/circuits/prob.ml: Circuit Combi Condition Hashtbl List Poly Rat Vset
