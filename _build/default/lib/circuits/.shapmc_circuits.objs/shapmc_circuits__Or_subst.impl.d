lib/circuits/or_subst.ml: Circuit Fresh Hashtbl List Vset
