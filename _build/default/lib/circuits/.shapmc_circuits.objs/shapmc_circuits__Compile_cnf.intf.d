lib/circuits/compile_cnf.mli: Circuit Dimacs Nf
