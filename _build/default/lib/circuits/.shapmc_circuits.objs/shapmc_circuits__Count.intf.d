lib/circuits/count.mli: Bigint Circuit Kvec
