lib/circuits/count.ml: Circuit Hashtbl Kvec List Vset
