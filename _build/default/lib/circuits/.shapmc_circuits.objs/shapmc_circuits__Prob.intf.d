lib/circuits/prob.mli: Circuit Poly Rat
