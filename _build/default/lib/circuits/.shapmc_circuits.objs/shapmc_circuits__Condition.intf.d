lib/circuits/condition.mli: Circuit
