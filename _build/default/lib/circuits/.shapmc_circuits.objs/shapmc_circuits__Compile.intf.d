lib/circuits/compile.mli: Circuit Formula
