lib/circuits/obdd.mli: Bigint Circuit Formula Kvec Vset
