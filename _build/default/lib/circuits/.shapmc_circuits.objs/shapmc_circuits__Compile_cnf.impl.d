lib/circuits/compile_cnf.ml: Circuit Dimacs Hashtbl List Nf Option Vset
