lib/circuits/obdd.ml: Circuit Formula Hashtbl Kvec List Vset
