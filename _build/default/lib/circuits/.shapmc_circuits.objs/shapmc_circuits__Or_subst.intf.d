lib/circuits/or_subst.mli: Circuit Vset
