lib/circuits/compile.ml: Circuit Formula Hashtbl List Option Vset
