lib/circuits/condition.ml: Circuit Hashtbl List Vset
