(** Deterministic and decomposable Boolean circuits (Section 4.1).

    A circuit is a DAG of gates; [∧]-gates must be {e decomposable} (the
    children's variable sets are pairwise disjoint) and [∨]-gates must be
    {e deterministic} (no valuation satisfies two children).  We additionally
    distinguish {e disjoint} [∨]-gates whose children have pairwise disjoint
    variable sets — the shape produced by read-once lineage of hierarchical
    queries (Section 5.3); they need not be deterministic, and model counts
    across them combine by the independent-union rule.

    Nodes are hash-consed: every node carries a unique [id] and its exact
    variable set, so decomposability and disjointness are checked {e at
    construction} (violations raise).  Determinism of [∨]-gates is a
    semantic property that cannot be checked structurally in polynomial
    time; constructors trust the caller, and {!check_deterministic} verifies
    it exhaustively for tests. *)

type or_kind =
  | Deterministic  (** children are mutually exclusive *)
  | Disjoint  (** children have pairwise disjoint variable sets *)

type gate = private
  | Ctrue
  | Cfalse
  | Cvar of int
  | Cnot of node
  | Cand of node list
  | Cor of or_kind * node list

and node = private { id : int; gate : gate; vars : Vset.t }

(** {1 Constructors}

    All constructors hash-cons and apply constant simplification (so the
    constants [Ctrue]/[Cfalse] never appear as children), which keeps
    counting and conditioning code free of special cases. *)

val ctrue : node
val cfalse : node
val cvar : int -> node
val cbool : bool -> node

(** [cnot g] negates; double negations collapse. *)
val cnot : node -> node

(** [cand gs] builds a decomposable [∧]-gate.
    @raise Invalid_argument if children share variables. *)
val cand : node list -> node

(** [cor_det gs] builds a deterministic [∨]-gate.  The caller asserts
    mutual exclusivity of the children (checked only by
    {!check_deterministic}). *)
val cor_det : node list -> node

(** [cor_disj gs] builds a variable-disjoint [∨]-gate.
    @raise Invalid_argument if children share variables. *)
val cor_disj : node list -> node

(** {1 Observation} *)

(** [vars g] is the exact variable set of the subcircuit. *)
val vars : node -> Vset.t

(** [size g] is the number of distinct gates reachable from [g] (the
    paper's [|G|]). *)
val size : node -> int

(** [edge_count g] is the number of wires (for the Lemma 9 size bound). *)
val edge_count : node -> int

(** [eval env g] evaluates the circuit under an assignment. *)
val eval : (int -> bool) -> node -> bool

(** [eval_set s g] evaluates under the valuation true exactly on [s]. *)
val eval_set : Vset.t -> node -> bool

(** [to_formula g] unfolds the DAG into a formula (may blow up; testing
    only). *)
val to_formula : node -> Formula.t

(** [fold f init g] folds over reachable nodes in a bottom-up order (each
    node visited once, after its children). *)
val fold : ('a -> node -> 'a) -> 'a -> node -> 'a

(** {1 Verification (exponential; for tests)} *)

(** [check_deterministic ~max_vars g] verifies by enumeration that every
    [Deterministic] [∨]-gate has mutually exclusive children.
    @raise Invalid_argument if some gate scope exceeds [max_vars]. *)
val check_deterministic : max_vars:int -> node -> bool

(** [equivalent_formula ~max_vars g f] checks [g ≡ f] by enumeration. *)
val equivalent_formula : max_vars:int -> node -> Formula.t -> bool

val pp : Format.formatter -> node -> unit
