(** Conditioning a circuit on a partial valuation.

    [G[X := b]] replaces the variable gate by a constant and
    re-simplifies bottom-up.  Conditioning preserves determinism
    (mutually exclusive children stay so under restriction) and
    decomposability (variable scopes only shrink), so the result is again
    a d-D circuit — the [m_i ∈ {0, 1}] corner of OR-substitution used
    throughout Lemmas 3.2 and 3.4 and the basis of the polynomial Shapley
    algorithm of Theorem 4.1. *)

(** [restrict v b g] is [G[X_v := b]]; the result does not mention [v]. *)
val restrict : int -> bool -> Circuit.node -> Circuit.node

(** [restrict_set bindings g] applies several restrictions in sequence. *)
val restrict_set : (int * bool) list -> Circuit.node -> Circuit.node
