type stats = { decisions : int; propagations : int; cache_hits : int }

(* Clauses as literal-set pairs; the exception signals an empty clause
   (current branch unsatisfiable). *)
exception Conflict

(* Condition a clause set on literal (v, sign): drop satisfied clauses,
   shrink falsified literals.  Raises [Conflict] on an empty clause. *)
let condition clauses v sign =
  List.filter_map
    (fun (c : Nf.clause) ->
       let sat = if sign then Vset.mem v c.Nf.pos else Vset.mem v c.Nf.neg in
       if sat then None
       else begin
         let c' =
           if sign then { c with Nf.neg = Vset.remove v c.Nf.neg }
           else { c with Nf.pos = Vset.remove v c.Nf.pos }
         in
         if Vset.is_empty c'.Nf.pos && Vset.is_empty c'.Nf.neg then
           raise Conflict;
         Some c'
       end)
    clauses

let clause_vars (c : Nf.clause) = Vset.union c.Nf.pos c.Nf.neg

let find_unit clauses =
  List.find_map
    (fun (c : Nf.clause) ->
       match (Vset.cardinal c.Nf.pos, Vset.cardinal c.Nf.neg) with
       | 1, 0 -> Some (Vset.min_elt c.Nf.pos, true)
       | 0, 1 -> Some (Vset.min_elt c.Nf.neg, false)
       | _ -> None)
    clauses

(* Most frequent variable, for branching. *)
let pick_var clauses =
  let occ = Hashtbl.create 32 in
  List.iter
    (fun c ->
       Vset.iter
         (fun v ->
            Hashtbl.replace occ v
              (1 + Option.value ~default:0 (Hashtbl.find_opt occ v)))
         (clause_vars c))
    clauses;
  let best = ref None in
  Hashtbl.iter
    (fun v c ->
       match !best with
       | Some (_, c') when c' >= c -> ()
       | _ -> best := Some (v, c))
    occ;
  match !best with Some (v, _) -> v | None -> assert false

(* Connected components of clauses by shared variables. *)
let components clauses =
  let merge groups (vs, cs) =
    let touching, rest =
      List.partition (fun (ws, _) -> not (Vset.disjoint vs ws)) groups
    in
    let vs' = List.fold_left (fun a (ws, _) -> Vset.union a ws) vs touching in
    (vs', cs @ List.concat_map snd touching) :: rest
  in
  List.fold_left merge []
    (List.map (fun c -> (clause_vars c, [ c ])) clauses)

(* Canonical cache key: sorted clauses as literal lists. *)
let key clauses =
  List.sort compare
    (List.map
       (fun (c : Nf.clause) ->
          (Vset.elements c.Nf.pos, Vset.elements c.Nf.neg))
       clauses)

type state = {
  cache : ((int list * int list) list, Circuit.node) Hashtbl.t;
  mutable decisions : int;
  mutable propagations : int;
  mutable cache_hits : int;
}

let literal v sign =
  if sign then Circuit.cvar v else Circuit.cnot (Circuit.cvar v)

let rec go st clauses =
  match clauses with
  | [] -> Circuit.ctrue
  | _ ->
    let k = key clauses in
    (match Hashtbl.find_opt st.cache k with
     | Some c ->
       st.cache_hits <- st.cache_hits + 1;
       c
     | None ->
       let c = go_uncached st clauses in
       Hashtbl.replace st.cache k c;
       c)

and go_uncached st clauses =
  match find_unit clauses with
  | Some (v, sign) ->
    (* unit propagation: the literal is a decomposable factor *)
    st.propagations <- st.propagations + 1;
    (try Circuit.cand [ literal v sign; go st (condition clauses v sign) ]
     with Conflict -> Circuit.cfalse)
  | None ->
    (match components clauses with
     | [] -> Circuit.ctrue
     | [ _ ] ->
       (* branch on a most frequent variable *)
       let v = pick_var clauses in
       st.decisions <- st.decisions + 1;
       let branch sign =
         try Circuit.cand [ literal v sign; go st (condition clauses v sign) ]
         with Conflict -> Circuit.cfalse
       in
       Circuit.cor_det [ branch false; branch true ]
     | groups ->
       Circuit.cand (List.map (fun (_, cs) -> go st cs) groups))

let compile_with_stats cnf =
  let st =
    { cache = Hashtbl.create 256; decisions = 0; propagations = 0;
      cache_hits = 0 }
  in
  (* drop tautological clauses up front *)
  let cnf =
    List.filter
      (fun (c : Nf.clause) -> Vset.disjoint c.Nf.pos c.Nf.neg)
      cnf
  in
  let circuit =
    if List.exists
        (fun (c : Nf.clause) ->
           Vset.is_empty c.Nf.pos && Vset.is_empty c.Nf.neg)
        cnf
    then Circuit.cfalse
    else go st cnf
  in
  (circuit,
   { decisions = st.decisions; propagations = st.propagations;
     cache_hits = st.cache_hits })

let compile cnf = fst (compile_with_stats cnf)
let compile_dimacs (inst : Dimacs.instance) = compile inst.Dimacs.clauses
