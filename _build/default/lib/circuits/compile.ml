type stats = { expansions : int; cache_hits : int }

type state = {
  cache : (Formula.t, Circuit.node) Hashtbl.t;
  mutable expansions : int;
  mutable cache_hits : int;
}

(* Variable-disjoint connected components of a list of subformulas
   (same as in the DPLL counter). *)
let components fs =
  let merge groups (vs, fs) =
    let touching, rest =
      List.partition (fun (ws, _) -> not (Vset.disjoint vs ws)) groups
    in
    let vs' = List.fold_left (fun a (ws, _) -> Vset.union a ws) vs touching in
    (vs', fs @ List.concat_map snd touching) :: rest
  in
  List.fold_left merge [] (List.map (fun f -> (Formula.vars f, [ f ])) fs)

let pick_var f =
  let occ = Hashtbl.create 16 in
  let bump v =
    Hashtbl.replace occ v (1 + Option.value ~default:0 (Hashtbl.find_opt occ v))
  in
  let rec go = function
    | Formula.True | Formula.False -> ()
    | Formula.Var v -> bump v
    | Formula.Not g -> go g
    | Formula.And gs | Formula.Or gs -> List.iter go gs
  in
  go f;
  let best = ref None in
  Hashtbl.iter
    (fun v c ->
       match !best with
       | Some (_, c') when c' >= c -> ()
       | _ -> best := Some (v, c))
    occ;
  match !best with Some (v, _) -> v | None -> invalid_arg "Compile: no variable"

let rec go st f =
  match f with
  | Formula.True -> Circuit.ctrue
  | Formula.False -> Circuit.cfalse
  | Formula.Var v -> Circuit.cvar v
  | Formula.Not (Formula.Var v) -> Circuit.cnot (Circuit.cvar v)
  | _ ->
    (match Hashtbl.find_opt st.cache f with
     | Some c ->
       st.cache_hits <- st.cache_hits + 1;
       c
     | None ->
       let c = go_compound st f in
       Hashtbl.replace st.cache f c;
       c)

and go_compound st f =
  let split mk_gate children =
    match components children with
    | ([] | [ _ ]) -> shannon st f
    | groups -> mk_gate (List.map (fun (_, members) -> members) groups)
  in
  match f with
  | Formula.And fs ->
    split
      (fun groups ->
         Circuit.cand (List.map (fun ms -> go st (Formula.and_ ms)) groups))
      fs
  | Formula.Or fs ->
    split
      (fun groups ->
         Circuit.cor_disj (List.map (fun ms -> go st (Formula.or_ ms)) groups))
      fs
  | Formula.Not _ -> shannon st f
  | Formula.True | Formula.False | Formula.Var _ -> assert false

(* Shannon expansion: (¬x ∧ C(F[x:=0])) ∨ (x ∧ C(F[x:=1])) — the OR is
   deterministic (the branches disagree on x), the ANDs are decomposable
   (the cofactors do not mention x). *)
and shannon st f =
  let v = pick_var f in
  st.expansions <- st.expansions + 1;
  let c0 = go st (Formula.restrict v false f) in
  let c1 = go st (Formula.restrict v true f) in
  Circuit.cor_det
    [ Circuit.cand [ Circuit.cnot (Circuit.cvar v); c0 ];
      Circuit.cand [ Circuit.cvar v; c1 ] ]

let compile_with_stats f =
  let st = { cache = Hashtbl.create 256; expansions = 0; cache_hits = 0 } in
  let c = go st (Formula.simplify f) in
  (c, { expansions = st.expansions; cache_hits = st.cache_hits })

let compile f = fst (compile_with_stats f)
