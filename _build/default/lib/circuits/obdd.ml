type node = { id : int; desc : desc }
and desc = Leaf of bool | Node of { v : int; lo : node; hi : node }

type manager = {
  level : (int, int) Hashtbl.t; (* variable -> position in order *)
  order : int list;
  unique : (int * int * int, node) Hashtbl.t;
  not_memo : (int, node) Hashtbl.t;
  and_memo : (int * int, node) Hashtbl.t;
  or_memo : (int * int, node) Hashtbl.t;
  xor_memo : (int * int, node) Hashtbl.t;
  mutable next_id : int;
  t_leaf : node;
  f_leaf : node;
}

let create_manager ~order =
  let level = Hashtbl.create 16 in
  List.iteri
    (fun i v ->
       if Hashtbl.mem level v then
         invalid_arg "Obdd.create_manager: duplicate variable";
       Hashtbl.replace level v i)
    order;
  {
    level;
    order;
    unique = Hashtbl.create 1024;
    not_memo = Hashtbl.create 256;
    and_memo = Hashtbl.create 1024;
    or_memo = Hashtbl.create 1024;
    xor_memo = Hashtbl.create 256;
    next_id = 2;
    t_leaf = { id = 1; desc = Leaf true };
    f_leaf = { id = 0; desc = Leaf false };
  }

let manager_order m = m.order
let leaf_true m = m.t_leaf
let leaf_false m = m.f_leaf

let level_of m t =
  match t.desc with
  | Leaf _ -> max_int
  | Node { v; _ } -> Hashtbl.find m.level v

let var_level m v =
  match Hashtbl.find_opt m.level v with
  | Some l -> l
  | None -> invalid_arg "Obdd: variable not in manager order"

(* Reduced, hash-consed node constructor. *)
let mk m v lo hi =
  if lo == hi then lo
  else begin
    let key = (v, lo.id, hi.id) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      let n = { id = m.next_id; desc = Node { v; lo; hi } } in
      m.next_id <- m.next_id + 1;
      Hashtbl.replace m.unique key n;
      n
  end

let var m v =
  let _ = var_level m v in
  mk m v m.f_leaf m.t_leaf

let rec neg m t =
  match t.desc with
  | Leaf b -> if b then m.f_leaf else m.t_leaf
  | Node { v; lo; hi } ->
    (match Hashtbl.find_opt m.not_memo t.id with
     | Some n -> n
     | None ->
       let n = mk m v (neg m lo) (neg m hi) in
       Hashtbl.replace m.not_memo t.id n;
       n)

(* Generic binary apply with the usual top-variable split. *)
let apply m memo terminal =
  let rec go a b =
    match terminal a b with
    | Some r -> r
    | None ->
      let key = (a.id, b.id) in
      (match Hashtbl.find_opt memo key with
       | Some n -> n
       | None ->
         let la = level_of m a and lb = level_of m b in
         let v, (alo, ahi), (blo, bhi) =
           if la < lb then
             match a.desc with
             | Node { v; lo; hi } -> (v, (lo, hi), (b, b))
             | Leaf _ -> assert false
           else if lb < la then
             match b.desc with
             | Node { v; lo; hi } -> (v, (a, a), (lo, hi))
             | Leaf _ -> assert false
           else
             match (a.desc, b.desc) with
             | Node { v; lo; hi }, Node { lo = lo'; hi = hi'; _ } ->
               (v, (lo, hi), (lo', hi'))
             | _ -> assert false
         in
         let n = mk m v (go alo blo) (go ahi bhi) in
         Hashtbl.replace memo key n;
         n)
  in
  go

let conj m a b =
  apply m m.and_memo
    (fun a b ->
       match (a.desc, b.desc) with
       | Leaf false, _ | _, Leaf false -> Some m.f_leaf
       | Leaf true, _ -> Some b
       | _, Leaf true -> Some a
       | _ when a == b -> Some a
       | _ -> None)
    a b

let disj m a b =
  apply m m.or_memo
    (fun a b ->
       match (a.desc, b.desc) with
       | Leaf true, _ | _, Leaf true -> Some m.t_leaf
       | Leaf false, _ -> Some b
       | _, Leaf false -> Some a
       | _ when a == b -> Some a
       | _ -> None)
    a b

let xor m a b =
  apply m m.xor_memo
    (fun a b ->
       match (a.desc, b.desc) with
       | Leaf x, Leaf y -> Some (if x <> y then m.t_leaf else m.f_leaf)
       | Leaf false, _ -> Some b
       | _, Leaf false -> Some a
       | Leaf true, _ -> Some (neg m b)
       | _, Leaf true -> Some (neg m a)
       | _ when a == b -> Some m.f_leaf
       | _ -> None)
    a b

let rec of_formula m = function
  | Formula.True -> m.t_leaf
  | Formula.False -> m.f_leaf
  | Formula.Var v -> var m v
  | Formula.Not f -> neg m (of_formula m f)
  | Formula.And fs ->
    List.fold_left (fun acc f -> conj m acc (of_formula m f)) m.t_leaf fs
  | Formula.Or fs ->
    List.fold_left (fun acc f -> disj m acc (of_formula m f)) m.f_leaf fs

let restrict m rv b t =
  let rl = var_level m rv in
  let memo = Hashtbl.create 64 in
  let rec go t =
    match t.desc with
    | Leaf _ -> t
    | Node { v; lo; hi } ->
      let l = level_of m t in
      if l > rl then t
      else begin
        match Hashtbl.find_opt memo t.id with
        | Some n -> n
        | None ->
          let n =
            if v = rv then if b then hi else lo
            else mk m v (go lo) (go hi)
          in
          Hashtbl.replace memo t.id n;
          n
      end
  in
  go t

let equal a b = a == b
let is_true t = match t.desc with Leaf true -> true | _ -> false
let is_false t = match t.desc with Leaf false -> true | _ -> false

let rec eval env t =
  match t.desc with
  | Leaf b -> b
  | Node { v; lo; hi } -> if env v then eval env hi else eval env lo

let eval_set s t = eval (fun v -> Vset.mem v s) t

let size t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.replace seen t.id ();
      match t.desc with
      | Leaf _ -> ()
      | Node { lo; hi; _ } ->
        go lo;
        go hi
    end
  in
  go t;
  Hashtbl.length seen

let support t =
  let seen = Hashtbl.create 64 in
  let acc = ref Vset.empty in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.replace seen t.id ();
      match t.desc with
      | Leaf _ -> ()
      | Node { v; lo; hi } ->
        acc := Vset.add v !acc;
        go lo;
        go hi
    end
  in
  go t;
  !acc

(* Stratified counting: [own t] is the count vector of [t] over the
   universe variables at levels >= level(t); parents bridge level gaps by
   binomial extension.  [levels] is the sorted list of universe levels. *)
let count_by_size m ~vars t =
  let sup = support t in
  let universe = Vset.of_list vars in
  if not (Vset.subset sup universe) then
    invalid_arg "Obdd.count_by_size: universe misses support variables";
  let levels = List.sort compare (List.map (var_level m) vars) in
  let n = List.length levels in
  if List.length (List.sort_uniq compare levels) <> n then
    invalid_arg "Obdd.count_by_size: duplicate universe variables";
  (* [after lvl] = number of universe levels at or after [lvl]. *)
  let count_before lvl =
    let rec go acc = function
      | [] -> acc
      | l :: rest -> if l < lvl then go (acc + 1) rest else acc
    in
    go 0 levels
  in
  let after lvl = n - count_before lvl in
  let memo = Hashtbl.create 256 in
  let rec own t =
    match t.desc with
    | Leaf b -> if b then Kvec.const_true ~n:0 else Kvec.const_false ~n:0
    | Node { v; lo; hi } ->
      (match Hashtbl.find_opt memo t.id with
       | Some kv -> kv
       | None ->
         let lvl = var_level m v in
         let below = after (lvl + 1) in
         let child c =
           let c_own = own c in
           let c_scope =
             match c.desc with
             | Leaf _ -> 0
             | Node { v = cv; _ } -> after (var_level m cv)
           in
           Kvec.extend c_own ~extra:(below - c_scope)
         in
         let kv =
           Kvec.add
             (Kvec.conv Kvec.singleton_false (child lo))
             (Kvec.conv Kvec.singleton_true (child hi))
         in
         Hashtbl.replace memo t.id kv;
         kv)
  in
  let root_scope =
    match t.desc with
    | Leaf _ -> 0
    | Node { v; _ } -> after (var_level m v)
  in
  Kvec.extend (own t) ~extra:(n - root_scope)

let count m ~vars t = Kvec.total (count_by_size m ~vars t)

let to_circuit m t =
  let _ = m in
  let memo = Hashtbl.create 256 in
  let rec go t =
    match t.desc with
    | Leaf b -> Circuit.cbool b
    | Node { v; lo; hi } ->
      (match Hashtbl.find_opt memo t.id with
       | Some c -> c
       | None ->
         let c =
           Circuit.cor_det
             [ Circuit.cand [ Circuit.cnot (Circuit.cvar v); go lo ];
               Circuit.cand [ Circuit.cvar v; go hi ] ]
         in
         Hashtbl.replace memo t.id c;
         c)
  in
  go t
