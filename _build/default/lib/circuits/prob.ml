let uniform_half _ = Rat.of_ints 1 2

let probability ~weights root =
  let memo = Hashtbl.create 64 in
  let rec go (g : Circuit.node) =
    match Hashtbl.find_opt memo g.id with
    | Some p -> p
    | None ->
      let p =
        match g.gate with
        | Circuit.Ctrue -> Rat.one
        | Circuit.Cfalse -> Rat.zero
        | Circuit.Cvar v -> weights v
        | Circuit.Cnot h -> Rat.sub Rat.one (go h)
        | Circuit.Cand gs ->
          List.fold_left (fun acc h -> Rat.mul acc (go h)) Rat.one gs
        | Circuit.Cor (Circuit.Deterministic, gs) ->
          (* mutually exclusive: probabilities add *)
          List.fold_left (fun acc h -> Rat.add acc (go h)) Rat.zero gs
        | Circuit.Cor (Circuit.Disjoint, gs) ->
          (* independent union: 1 − Π (1 − p) *)
          Rat.sub Rat.one
            (List.fold_left
               (fun acc h -> Rat.mul acc (Rat.sub Rat.one (go h)))
               Rat.one gs)
      in
      Hashtbl.replace memo g.id p;
      p
  in
  go root

(* (1 + t)^m, the polynomial of the constant-1 function over m free
   variables (every conditional expectation is 1). *)
let ones_poly m =
  let rec go acc k =
    if k = 0 then acc else go (Poly.mul acc (Poly.of_coeffs [ Rat.one; Rat.one ])) (k - 1)
  in
  go Poly.one m

let expectation_poly ~weights ~entity root =
  let memo = Hashtbl.create 64 in
  let scope_size (g : Circuit.node) = Vset.cardinal g.vars in
  (* Smooth a child polynomial to a larger scope: conditioning sets may
     include variables the child ignores. *)
  let smooth child_poly child_scope target_scope =
    Poly.mul child_poly (ones_poly (target_scope - child_scope))
  in
  let rec go (g : Circuit.node) =
    match Hashtbl.find_opt memo g.id with
    | Some h -> h
    | None ->
      let h =
        match g.gate with
        | Circuit.Ctrue -> Poly.one
        | Circuit.Cfalse -> Poly.zero
        | Circuit.Cvar v ->
          (* S = {}: expectation p_v; S = {v}: the entity value. *)
          Poly.of_coeffs
            [ weights v; (if entity v then Rat.one else Rat.zero) ]
        | Circuit.Cnot x -> Poly.sub (ones_poly (scope_size g)) (go x)
        | Circuit.Cand gs ->
          (* decomposable: conditioning splits across disjoint scopes *)
          List.fold_left (fun acc x -> Poly.mul acc (go x)) Poly.one gs
        | Circuit.Cor (Circuit.Deterministic, gs) ->
          List.fold_left
            (fun acc x ->
               Poly.add acc (smooth (go x) (scope_size x) (scope_size g)))
            Poly.zero gs
        | Circuit.Cor (Circuit.Disjoint, gs) ->
          (* complement product over disjoint scopes *)
          let non =
            List.fold_left
              (fun acc x ->
                 Poly.mul acc
                   (Poly.sub (ones_poly (scope_size x)) (go x)))
              Poly.one gs
          in
          Poly.sub (ones_poly (scope_size g)) non
      in
      Hashtbl.replace memo g.id h;
      h
  in
  go root

let shap_score ~weights ~entity ~vars root =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Circuit.vars root) universe) then
    invalid_arg "Prob.shap_score: universe misses circuit variables";
  let sorted = List.sort compare vars in
  let n = List.length sorted in
  List.map
    (fun i ->
       (* H polynomials of F[X_i := e_i] and of the i-marginalized F, both
          over the n−1 other variables. *)
       let others_scope = n - 1 in
       let poly_of b =
         let c = Condition.restrict i b root in
         let h = expectation_poly ~weights ~entity c in
         Poly.mul h (ones_poly (others_scope - Vset.cardinal (Circuit.vars c)))
       in
       let h1 = poly_of true and h0 = poly_of false in
       let h_ei = if entity i then h1 else h0 in
       let p_i = weights i in
       (* without i in S, X_i is random: mix the two restrictions *)
       let h_mixed =
         Poly.add (Poly.scale p_i h1)
           (Poly.scale (Rat.sub Rat.one p_i) h0)
       in
       let value = ref Rat.zero in
       for k = 0 to n - 1 do
         let diff = Rat.sub (Poly.coeff h_ei k) (Poly.coeff h_mixed k) in
         value :=
           Rat.add !value (Rat.mul (Combi.shapley_coeff ~n k) diff)
       done;
       (i, !value))
    sorted
