(** Top-down compilation of formulas into d-D circuits (a d-DNNF-style
    compiler).

    Knowledge compilation turns a Boolean function into a deterministic &
    decomposable circuit so that counting — and hence, by Theorem 4.1,
    Shapley values — become polynomial in the circuit size (Section 4; the
    compilation itself may take exponential time, "the price to pay").

    The compiler performs Shannon expansion on a most-frequent variable,
    producing a deterministic OR of the two cofactor branches
    [(¬x ∧ C_0) ∨ (x ∧ C_1)]; conjunctions and disjunctions whose parts
    have pairwise disjoint variables are split into decomposable AND /
    disjoint OR gates; subformulas are cached structurally, sharing the
    DAG.  This mirrors what c2d/Dsharp-style compilers do (no external
    compiler is available in this environment). *)

(** Compilation statistics. *)
type stats = { expansions : int; cache_hits : int }

(** [compile f] returns an equivalent d-D circuit over the variables of
    [f] (a subset: simplification can eliminate variables). *)
val compile : Formula.t -> Circuit.node

(** [compile_with_stats f] also reports compiler effort. *)
val compile_with_stats : Formula.t -> Circuit.node * stats
