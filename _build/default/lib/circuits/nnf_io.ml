(* Node lines are emitted children-first (the circuit fold is bottom-up),
   so child indices always refer to earlier lines, as the format requires. *)

let export root ~num_vars =
  let buf = Buffer.create 256 in
  let index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let lines = ref [] in
  let emit line =
    lines := line :: !lines;
    let i = !next in
    incr next;
    i
  in
  let edge_total = ref 0 in
  let node_line (g : Circuit.node) =
    match g.gate with
    | Circuit.Ctrue -> emit "A 0"
    | Circuit.Cfalse -> emit "O 0 0"
    | Circuit.Cvar v -> emit (Printf.sprintf "L %d" v)
    | Circuit.Cnot { gate = Circuit.Cvar v; _ } ->
      emit (Printf.sprintf "L -%d" v)
    | Circuit.Cnot _ ->
      invalid_arg "Nnf_io.export: inner negation (not NNF)"
    | Circuit.Cand gs ->
      let ids = List.map (fun (c : Circuit.node) -> Hashtbl.find index c.id) gs in
      edge_total := !edge_total + List.length ids;
      emit
        (Printf.sprintf "A %d %s" (List.length ids)
           (String.concat " " (List.map string_of_int ids)))
    | Circuit.Cor (Circuit.Deterministic, gs) ->
      let ids = List.map (fun (c : Circuit.node) -> Hashtbl.find index c.id) gs in
      edge_total := !edge_total + List.length ids;
      (* the conflict-variable field is not used by consumers for
         counting; 0 is the conventional "unknown" *)
      emit
        (Printf.sprintf "O 0 %d %s" (List.length ids)
           (String.concat " " (List.map string_of_int ids)))
    | Circuit.Cor (Circuit.Disjoint, _) ->
      invalid_arg
        "Nnf_io.export: disjoint OR gate (determinism not expressible in NNF)"
  in
  let _ =
    Circuit.fold
      (fun () g ->
         if not (Hashtbl.mem index g.id) then begin
           (* fold visits children first *)
           let line = node_line g in
           Hashtbl.replace index g.id line
         end)
      () root
  in
  let body = List.rev !lines in
  Buffer.add_string buf
    (Printf.sprintf "nnf %d %d %d\n" (List.length body) !edge_total num_vars);
  List.iter
    (fun l ->
       Buffer.add_string buf l;
       Buffer.add_char buf '\n')
    body;
  Buffer.contents buf

let import text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> 'c')
  in
  match lines with
  | [] -> invalid_arg "Nnf_io.import: empty input"
  | header :: body ->
    (match String.split_on_char ' ' header with
     | "nnf" :: _ -> ()
     | _ -> invalid_arg "Nnf_io.import: missing nnf header");
    let nodes = Array.make (List.length body) Circuit.ctrue in
    List.iteri
      (fun i line ->
         let words =
           String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
         in
         let node =
           match words with
           | [ "A"; "0" ] -> Circuit.ctrue
           | [ "O"; "0"; "0" ] | [ "O"; _; "0" ] -> Circuit.cfalse
           | [ "L"; lit ] ->
             (match int_of_string_opt lit with
              | Some v when v > 0 -> Circuit.cvar v
              | Some v when v < 0 -> Circuit.cnot (Circuit.cvar (-v))
              | _ -> invalid_arg "Nnf_io.import: bad literal")
           | "A" :: count :: children ->
             let k =
               match int_of_string_opt count with
               | Some k -> k
               | None -> invalid_arg "Nnf_io.import: bad A count"
             in
             if List.length children <> k then
               invalid_arg "Nnf_io.import: A arity mismatch";
             Circuit.cand
               (List.map
                  (fun c ->
                     match int_of_string_opt c with
                     | Some j when j >= 0 && j < i -> nodes.(j)
                     | _ -> invalid_arg "Nnf_io.import: bad child index")
                  children)
           | "O" :: _ :: count :: children ->
             let k =
               match int_of_string_opt count with
               | Some k -> k
               | None -> invalid_arg "Nnf_io.import: bad O count"
             in
             if List.length children <> k then
               invalid_arg "Nnf_io.import: O arity mismatch";
             Circuit.cor_det
               (List.map
                  (fun c ->
                     match int_of_string_opt c with
                     | Some j when j >= 0 && j < i -> nodes.(j)
                     | _ -> invalid_arg "Nnf_io.import: bad child index")
                  children)
           | _ -> invalid_arg ("Nnf_io.import: bad line: " ^ line)
         in
         nodes.(i) <- node)
      body;
    if Array.length nodes = 0 then invalid_arg "Nnf_io.import: no nodes";
    nodes.(Array.length nodes - 1)

let export_file g ~num_vars path =
  let oc = open_out path in
  output_string oc (export g ~num_vars);
  close_out oc

let import_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  import text
