type estimate = { variable : int; value : float; half_width : float }

let samples_for ~eps ~delta =
  if eps <= 0.0 || delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Sampling.samples_for";
  (* marginals range over [-1, 1], width 2: m >= 2 ln(2/δ) / ε² *)
  int_of_float (ceil (2.0 *. log (2.0 /. delta) /. (eps *. eps)))

let shap_sample ?(seed = 0) ?(delta = 0.05) ~samples ~vars f =
  if samples <= 0 then invalid_arg "Sampling.shap_sample: samples <= 0";
  let universe = Vset.of_list vars in
  if not (Vset.subset (Formula.vars f) universe) then
    invalid_arg "Sampling.shap_sample: universe misses variables";
  let st = Random.State.make [| seed |] in
  let sorted = Array.of_list (List.sort compare vars) in
  let n = Array.length sorted in
  let totals = Array.make n 0 in
  let perm = Array.copy sorted in
  for _ = 1 to samples do
    (* Fisher–Yates shuffle *)
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    (* walk the permutation, evaluating F on the growing prefix *)
    let prefix = ref Vset.empty in
    let value = ref (Formula.eval_set Vset.empty f) in
    Array.iter
      (fun v ->
         let next = Vset.add v !prefix in
         let value' = Formula.eval_set next f in
         let marginal = Bool.to_int value' - Bool.to_int !value in
         (* index of v in sorted *)
         let rec idx i = if sorted.(i) = v then i else idx (i + 1) in
         let i = idx 0 in
         totals.(i) <- totals.(i) + marginal;
         prefix := next;
         value := value')
      perm
  done;
  let m = float_of_int samples in
  let half_width = 2.0 *. sqrt (log (2.0 /. delta) /. (2.0 *. m)) in
  Array.to_list
    (Array.mapi
       (fun i v ->
          { variable = sorted.(i); value = float_of_int v /. m; half_width })
       totals)
