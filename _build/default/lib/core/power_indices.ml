let check ~vars vs =
  let universe = Vset.of_list vars in
  if not (Vset.subset vs universe) then
    invalid_arg "Power_indices: universe misses variables";
  List.sort compare vars

let of_diff ~n diff = Rat.make diff (Combi.pow2 (n - 1))

let banzhaf_via_count_oracle ~count ~vars f =
  let sorted = check ~vars (Formula.vars f) in
  let n = List.length sorted in
  List.map
    (fun i ->
       let others = List.filter (fun v -> v <> i) sorted in
       let c1 = count ~vars:others (Formula.restrict i true f) in
       let c0 = count ~vars:others (Formula.restrict i false f) in
       (i, of_diff ~n (Bigint.sub c1 c0)))
    sorted

let banzhaf ~vars f =
  banzhaf_via_count_oracle ~count:(fun ~vars f -> Brute.count ~vars f) ~vars f

let banzhaf_circuit ~vars g =
  let sorted = check ~vars (Circuit.vars g) in
  let n = List.length sorted in
  List.map
    (fun i ->
       let others = List.filter (fun v -> v <> i) sorted in
       let c1 = Count.count ~vars:others (Condition.restrict i true g) in
       let c0 = Count.count ~vars:others (Condition.restrict i false g) in
       (i, of_diff ~n (Bigint.sub c1 c0)))
    sorted

let banzhaf_sum l = List.fold_left (fun acc (_, v) -> Rat.add acc v) Rat.zero l
