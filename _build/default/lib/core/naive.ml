let max_perm_vars = 8

let check ~vars f =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Formula.vars f) universe) then
    invalid_arg "Naive: universe misses variables of the formula";
  if List.length vars <> Vset.cardinal universe then
    invalid_arg "Naive: duplicate variables in universe"

(* All permutations of a list, in lexicographic order of positions. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
         let rest = List.filter (fun y -> y <> x) l in
         List.map (fun p -> x :: p) (permutations rest))
      (List.sort compare l)

let marginal f prefix i =
  let before = Vset.of_list prefix in
  let with_i = Formula.eval_set (Vset.add i before) f in
  let without = Formula.eval_set before f in
  Bool.to_int with_i - Bool.to_int without

let permutation_table ~vars f =
  check ~vars f;
  if List.length vars > max_perm_vars then
    invalid_arg "Naive.permutation_table: too many variables";
  let sorted_vars = List.sort compare vars in
  List.map
    (fun pi ->
       let row =
         List.map
           (fun i ->
              let rec prefix acc = function
                | [] -> assert false
                | j :: rest -> if j = i then List.rev acc else prefix (j :: acc) rest
              in
              marginal f (prefix [] pi) i)
           sorted_vars
       in
       (pi, row))
    (permutations vars)

let shap_permutations ~vars f =
  check ~vars f;
  let n = List.length vars in
  if n > max_perm_vars then
    invalid_arg "Naive.shap_permutations: too many variables";
  let sorted_vars = List.sort compare vars in
  let totals = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace totals i 0) sorted_vars;
  List.iter
    (fun pi ->
       (* Walk the permutation once, accumulating each variable's marginal. *)
       let rec walk prefix = function
         | [] -> ()
         | i :: rest ->
           let d = marginal f prefix i in
           Hashtbl.replace totals i (Hashtbl.find totals i + d);
           walk (i :: prefix) rest
       in
       walk [] pi)
    (permutations vars);
  let nfact = Combi.factorial n in
  List.map
    (fun i -> (i, Rat.make (Bigint.of_int (Hashtbl.find totals i)) nfact))
    sorted_vars

let shap_subsets ~vars f =
  check ~vars f;
  let n = List.length vars in
  let sorted_vars = List.sort compare vars in
  List.map
    (fun i ->
       let others = List.filter (fun v -> v <> i) sorted_vars in
       let k1 = Brute.count_by_size ~vars:others (Formula.restrict i true f) in
       let k0 = Brute.count_by_size ~vars:others (Formula.restrict i false f) in
       let value = ref Rat.zero in
       for k = 0 to n - 1 do
         let diff = Bigint.sub (Kvec.get k1 k) (Kvec.get k0 k) in
         value :=
           Rat.add !value
             (Rat.mul_bigint (Combi.shapley_coeff ~n k) diff)
       done;
       (i, !value))
    sorted_vars

let shap_sum shap = List.fold_left (fun acc (_, v) -> Rat.add acc v) Rat.zero shap
