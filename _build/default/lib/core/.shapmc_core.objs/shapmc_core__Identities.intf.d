lib/core/identities.mli: Formula
