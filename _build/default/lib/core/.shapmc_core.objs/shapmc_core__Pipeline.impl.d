lib/core/pipeline.ml: Array Bigint Brute Compile Dpll Formula Kvec List Naive Prob Rat Reductions Subst Vset
