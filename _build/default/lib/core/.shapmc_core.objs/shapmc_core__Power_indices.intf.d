lib/core/power_indices.mli: Bigint Circuit Formula Rat
