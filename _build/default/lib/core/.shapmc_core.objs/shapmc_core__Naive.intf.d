lib/core/naive.mli: Formula Rat
