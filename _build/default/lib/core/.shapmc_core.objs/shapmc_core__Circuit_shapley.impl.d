lib/core/circuit_shapley.ml: Array Bigint Bool Circuit Combi Condition Count Formula Kvec List Or_subst Rat Reductions Vset
