lib/core/power_indices.ml: Bigint Brute Circuit Combi Condition Count Formula List Rat Vset
