lib/core/identities.ml: Array Bigint Bool Brute Formula Kvec List Naive Rat Subst Vset
