lib/core/sampling.ml: Array Bool Formula List Random Vset
