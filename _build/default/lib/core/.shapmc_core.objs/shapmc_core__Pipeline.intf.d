lib/core/pipeline.mli: Bigint Formula Kvec Rat
