lib/core/naive.ml: Bigint Bool Brute Combi Formula Hashtbl Kvec List Rat Vset
