lib/core/game.mli: Formula Rat Vset
