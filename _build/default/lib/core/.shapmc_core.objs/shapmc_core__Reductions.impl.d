lib/core/reductions.ml: Array Bigint Combi Kvec Linalg Rat
