lib/core/circuit_shapley.mli: Bigint Circuit Formula Kvec Rat
