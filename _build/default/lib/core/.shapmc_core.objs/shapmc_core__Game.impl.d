lib/core/game.ml: Array Combi Formula List Rat Vset
