lib/core/reductions.mli: Bigint Kvec Rat
