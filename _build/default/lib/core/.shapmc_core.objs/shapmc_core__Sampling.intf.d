lib/core/sampling.mli: Formula
