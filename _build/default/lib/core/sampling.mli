(** Monte-Carlo approximation of Shapley values.

    The paper notes (contrasting with the SHAP score, which admits no
    FPRAS even for positive bipartite DNF [3]) that the Shapley value in
    the database setting has an FPRAS [21].  The standard estimator is
    permutation sampling: draw random permutations, average each
    variable's marginal contribution.  Each marginal lies in [[-1, 1]],
    so Hoeffding's inequality gives a two-sided additive guarantee
    [P(|estimate − Shap| > ε) ≤ δ] with
    [m ≥ ln(2/δ) / (2 (ε/2)^2)] samples per variable (all variables are
    estimated from the same permutations).

    Estimates are floats — approximation is the one place in this library
    where exactness is deliberately abandoned. *)

type estimate = {
  variable : int;
  value : float;  (** the point estimate *)
  half_width : float;  (** Hoeffding half-width at the requested [delta] *)
}

(** [shap_sample ~seed ~samples ~delta ~vars f] estimates all Shapley
    values from [samples] random permutations.  [delta] is the per-variable
    failure probability used for the reported half-width (default 0.05).
    @raise Invalid_argument if [samples <= 0] or [vars] misses variables
    of [f]. *)
val shap_sample :
  ?seed:int ->
  ?delta:float ->
  samples:int ->
  vars:int list ->
  Formula.t ->
  estimate list

(** [samples_for ~eps ~delta] is the Hoeffding sample bound for additive
    error [eps] with failure probability [delta]. *)
val samples_for : eps:float -> delta:float -> int
