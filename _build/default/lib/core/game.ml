type t = { players : int list; wealth : Vset.t -> Rat.t }

let max_players = 10

let make players wealth =
  let sorted = List.sort_uniq compare players in
  if List.length sorted <> List.length players then
    invalid_arg "Game.make: duplicate players";
  if List.length players > max_players then
    invalid_arg "Game.make: too many players for exact computation";
  { players = sorted; wealth }

let of_formula ~vars f =
  let universe = Vset.of_list vars in
  if not (Vset.subset (Formula.vars f) universe) then
    invalid_arg "Game.of_formula: universe misses variables";
  make vars (fun s -> if Formula.eval_set s f then Rat.one else Rat.zero)

(* Iterate over all subsets of a player array. *)
let fold_subsets players init step =
  let arr = Array.of_list players in
  let n = Array.length arr in
  let acc = ref init in
  for mask = 0 to (1 lsl n) - 1 do
    let s = ref Vset.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then s := Vset.add arr.(i) !s
    done;
    acc := step !acc !s
  done;
  !acc

let shapley g =
  let n = List.length g.players in
  List.map
    (fun i ->
       let others = List.filter (fun p -> p <> i) g.players in
       let value =
         fold_subsets others Rat.zero (fun acc s ->
             let k = Vset.cardinal s in
             let marginal =
               Rat.sub (g.wealth (Vset.add i s)) (g.wealth s)
             in
             Rat.add acc (Rat.mul (Combi.shapley_coeff ~n k) marginal))
       in
       (i, value))
    g.players

let banzhaf g =
  let n = List.length g.players in
  let denom = Rat.of_bigint (Combi.pow2 (n - 1)) in
  List.map
    (fun i ->
       let others = List.filter (fun p -> p <> i) g.players in
       let total =
         fold_subsets others Rat.zero (fun acc s ->
             Rat.add acc (Rat.sub (g.wealth (Vset.add i s)) (g.wealth s)))
       in
       (i, Rat.div total denom))
    g.players

let efficiency g =
  let sum =
    List.fold_left (fun acc (_, v) -> Rat.add acc v) Rat.zero (shapley g)
  in
  let grand = g.wealth (Vset.of_list g.players) in
  let empty = g.wealth Vset.empty in
  Rat.equal sum (Rat.sub grand empty)

let interchangeable g i j =
  let others = List.filter (fun p -> p <> i && p <> j) g.players in
  fold_subsets others true (fun acc s ->
      acc && Rat.equal (g.wealth (Vset.add i s)) (g.wealth (Vset.add j s)))

let symmetry g i j =
  if not (interchangeable g i j) then true
  else begin
    let shap = shapley g in
    Rat.equal (List.assoc i shap) (List.assoc j shap)
  end

let is_dummy g i =
  let others = List.filter (fun p -> p <> i) g.players in
  fold_subsets others true (fun acc s ->
      acc && Rat.equal (g.wealth (Vset.add i s)) (g.wealth s))

let dummy g i =
  if not (is_dummy g i) then true
  else Rat.is_zero (List.assoc i (shapley g))

let sum g h =
  if g.players <> h.players then invalid_arg "Game.sum: player mismatch";
  { players = g.players; wealth = (fun s -> Rat.add (g.wealth s) (h.wealth s)) }

let linearity g h =
  let s = shapley (sum g h) in
  let sg = shapley g and sh = shapley h in
  List.for_all
    (fun (i, v) -> Rat.equal v (Rat.add (List.assoc i sg) (List.assoc i sh)))
    s
