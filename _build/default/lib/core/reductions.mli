(** The three polynomial-time reductions of Theorem 3.1, in oracle form.

    Each reduction is written against the minimal oracle interface its proof
    uses, so the same code runs over plain formulas (with a brute-force or
    DPLL counting oracle), over d-D circuits (with the polynomial circuit
    counter) and over query lineage — exactly the three instantiations the
    paper discusses.  The oracle arguments correspond to membership of the
    OR-substituted functions in [~C]:

    - Lemma 3.2 calls the [#_*]-oracle on [~F] (an isomorphic copy of [F])
      and on [~F'] ([F] with [X_i] replaced by the empty disjunction);
    - Lemma 3.3 calls the [#]-oracle on [F^(l)] for [l = 1..n+1] and solves
      a Vandermonde system at the nodes [2^l − 1] (Claim 3.5);
    - Lemma 3.4 calls the [Shap]-oracle on [F^(l,i)] for every variable [i]
      and [l = 1..n], solves one linear system per variable, and telescopes
      with Claim 3.6 starting from [#_0 F = F(0)].

    {b Proof repair.}  The paper's proof of Lemma 3.4 states
    [Shap(F^(l,i), Z_i) = Σ_k (2^l−1)^k c_k (#_k F[X_i:=1] − #_k F[X_i:=0])],
    but the coefficients [c_k] there belong to the original [n]-variable
    function while [F^(l,i)] has [(n−1)l + 1] variables; the identity fails
    numerically for every [l ≥ 2] (e.g. [F = X_1 ∧ X_2], [l = 2]: true
    value [2/3], displayed formula [3/2]).  The correct weight of the
    difference [#_j F[X_i:=1] − #_j F[X_i:=0]] is {!lemma34_weight}
    ([j!·l^j / Π_{a=n−1−j}^{n−1}(a·l+1)], which degenerates to [c_j] at
    [l = 1]); the system over [l = 1..n] remains nonsingular, so the lemma
    — and with it Theorem 3.1 — holds with the identical oracle-call
    structure.  The test suite verifies the repaired identity and the
    failure of the displayed one. *)

(** {1 Lemma 3.2: Shapley values from fixed-size counts} *)

(** [shap_via_kcounts ~n ~kcount_full ~kcount_drop] computes the Shapley
    value of variable [X_i] for every [i] in [0..n-1] position order.

    [kcount_full] must be the vector [#_{0..n} F] over the full universe;
    [kcount_drop pos] must be [#_{0..n-1} (F[X_i := 0])] over the universe
    {e without} [X_i], where [X_i] is the variable at position [pos].
    Returns the Shapley values by position.  Uses the rearranged Eq. (2)
    from the proof:
    [Shap(F,X_i) = Σ_k c_k (#_{k+1}F − #_{k+1}F[X_i:=0] − #_k F[X_i:=0])]. *)
val shap_via_kcounts :
  n:int -> kcount_full:Kvec.t -> kcount_drop:(int -> Kvec.t) -> Rat.t array

(** {1 Lemma 3.3: fixed-size counts from plain counts} *)

(** [kcounts_via_counting ~n ~count_subst] computes [#_{0..n} F] given
    [count_subst ~l = #F^(l)] (the model count of the width-[l]
    OR-substituted function over its own [n·l]-variable universe).
    Calls the oracle for [l = 1..n+1]. *)
val kcounts_via_counting :
  n:int -> count_subst:(l:int -> Bigint.t) -> Kvec.t

(** [kcounts_via_counting_and ~n ~count_subst] is the AND-substitution
    variant (Claim 3.7): the weight of [#_k F] in [#F^(l)] is
    [(2^l − 1)^(n−k)]. *)
val kcounts_via_counting_and :
  n:int -> count_subst:(l:int -> Bigint.t) -> Kvec.t

(** {1 Prior work: fixed-size counts from probabilistic evaluation}

    The reduction of Deutch et al. [13] connects Shapley values to
    probabilistic query evaluation instead of model counting: with every
    variable true independently with probability [θ],
    [P_θ(F) = Σ_k #_k F · θ^k (1−θ)^{n−k}], so [n+1] probability
    evaluations at distinct [θ] recover [#_{0..n} F] by interpolation in
    the odds [θ/(1−θ)].  Implemented as the historical baseline that the
    paper's OR-substitution route (Lemma 3.3) replaces — the paper's
    point being that its route needs only an {e unweighted} counting
    oracle. *)

(** [kcounts_via_probability ~n ~prob] computes [#_{0..n} F] given
    [prob ~theta = P_θ(F)] (probability under the uniform-[θ] product
    distribution over the [n]-variable universe). *)
val kcounts_via_probability :
  n:int -> prob:(theta:Rat.t -> Rat.t) -> Kvec.t

(** {1 Lemma 3.4: plain counts from Shapley values} *)

(** [count_via_shap ~n ~f_zero ~shap_subst] computes [#F] given
    [f_zero = F(0)] (the value of [F] on the all-zero valuation) and
    [shap_subst ~l ~pos = Shap(F^(l,i), Z_i)] where [X_i] is the variable
    at position [pos] and [Z_i] its singleton replacement.
    Calls the oracle [n^2] times. *)
val count_via_shap :
  n:int -> f_zero:bool -> shap_subst:(l:int -> pos:int -> Rat.t) -> Bigint.t

(** [kcounts_via_shap ~n ~f_zero ~shap_subst] returns the full vector
    [#_{0..n} F] recovered by the same telescoping (the proof computes it
    on the way to [#F]). *)
val kcounts_via_shap :
  n:int -> f_zero:bool -> shap_subst:(l:int -> pos:int -> Rat.t) -> Kvec.t

(** {1 Shared helpers} *)

(** [or_points ~count] is the vector of interpolation nodes
    [(2^1−1, ..., 2^count−1)] as rationals. *)
val or_points : count:int -> Rat.t array

(** [lemma34_weight ~n ~l ~j] is the (repaired) weight of
    [#_j F[X_i:=1] − #_j F[X_i:=0]] in [Shap(F^(l,i), Z_i)]:
    [j! · l^j / Π_{a=n−1−j}^{n−1} (a·l + 1)].
    @raise Invalid_argument unless [0 <= j <= n−1] and [l >= 1]. *)
val lemma34_weight : n:int -> l:int -> j:int -> Rat.t
