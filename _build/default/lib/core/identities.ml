let rat_list_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (i, x) (j, y) -> i = j && Rat.equal x y)
       (List.sort compare a) (List.sort compare b)

let prop3 ~vars f =
  rat_list_equal (Naive.shap_permutations ~vars f) (Naive.shap_subsets ~vars f)

let prop5 ~vars f =
  let shap = Naive.shap_subsets ~vars f in
  let all = Vset.of_list vars in
  let f1 = Bool.to_int (Formula.eval_set all f) in
  let f0 = Bool.to_int (Formula.eval_set Vset.empty f) in
  Rat.equal (Naive.shap_sum shap) (Rat.of_int (f1 - f0))

let stratified ~vars f = Brute.count_by_size ~vars f

let substituted_count subst ~l ~vars f =
  let universe = Vset.of_list vars in
  if not (Vset.equal universe (Formula.vars f)) then
    (* The substitution replaces the variables of [f]; unused universe
       variables would need explicit empty blocks, which the paper's
       definition of F^(l) does not have.  Restrict to exact-universe
       formulas. *)
    invalid_arg "Identities: universe must equal vars of formula";
  let g, blocks = subst ~l f in
  let g_vars = List.concat_map snd blocks in
  Brute.count ~vars:g_vars g

let weighted ~weight_exp ~l ~vars f =
  let n = List.length vars in
  let kv = stratified ~vars f in
  let w = Bigint.two_pow_minus_one l in
  let acc = ref Bigint.zero in
  for k = 0 to n do
    acc :=
      Bigint.add !acc (Bigint.mul (Bigint.pow w (weight_exp ~n ~k)) (Kvec.get kv k))
  done;
  !acc

let claim35 ~l ~vars f =
  Bigint.equal
    (substituted_count (fun ~l f -> Subst.uniform_or ~l f) ~l ~vars f)
    (weighted ~weight_exp:(fun ~n:_ ~k -> k) ~l ~vars f)

let claim37 ~l ~vars f =
  Bigint.equal
    (substituted_count (fun ~l f -> Subst.uniform_and ~l f) ~l ~vars f)
    (weighted ~weight_exp:(fun ~n ~k -> n - k) ~l ~vars f)

let sums_of_differences ~vars f =
  let n = List.length vars in
  let sum1 = Array.make n Bigint.zero in
  let sum0 = Array.make n Bigint.zero in
  List.iter
    (fun i ->
       let others = List.filter (fun v -> v <> i) vars in
       let k1 = stratified ~vars:others (Formula.restrict i true f) in
       let k0 = stratified ~vars:others (Formula.restrict i false f) in
       for k = 0 to n - 1 do
         sum1.(k) <- Bigint.add sum1.(k) (Kvec.get k1 k);
         sum0.(k) <- Bigint.add sum0.(k) (Kvec.get k0 k)
       done)
    vars;
  (sum1, sum0)

let eq7 ~vars f =
  let n = List.length vars in
  let kv = stratified ~vars f in
  let sum1, _ = sums_of_differences ~vars f in
  let ok = ref true in
  for k = 0 to n - 1 do
    if not (Bigint.equal sum1.(k) (Bigint.mul_int (Kvec.get kv (k + 1)) (k + 1)))
    then ok := false
  done;
  !ok

let eq8 ~vars f =
  let n = List.length vars in
  let kv = stratified ~vars f in
  let _, sum0 = sums_of_differences ~vars f in
  let ok = ref true in
  for k = 0 to n - 1 do
    if not (Bigint.equal sum0.(k) (Bigint.mul_int (Kvec.get kv k) (n - k)))
    then ok := false
  done;
  !ok

let claim36 ~vars f =
  let n = List.length vars in
  let kv = stratified ~vars f in
  let sum1, sum0 = sums_of_differences ~vars f in
  let ok = ref true in
  for k = 0 to n - 1 do
    let lhs = Bigint.sub sum1.(k) sum0.(k) in
    let rhs =
      Bigint.sub
        (Bigint.mul_int (Kvec.get kv (k + 1)) (k + 1))
        (Bigint.mul_int (Kvec.get kv k) (n - k))
    in
    if not (Bigint.equal lhs rhs) then ok := false
  done;
  !ok
