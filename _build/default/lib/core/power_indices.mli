(** Other cooperative-game power indices, for comparison with the Shapley
    value.

    The Banzhaf value of a variable drops the permutation weighting and
    simply averages the marginal contribution over all [2^{n-1}] subsets
    of the other players:
    [Banzhaf(F, X_i) = (#F[X_i:=1] − #F[X_i:=0]) / 2^{n-1}].
    Unlike the Shapley value it needs only {e plain} model counts — no
    fixed-size stratification and hence no OR-substitution machinery: the
    contrast illuminates exactly what Theorem 3.1 has to work for.
    (Livshits et al. [21] study both notions over query lineage.) *)

(** [banzhaf ~vars f] — brute-force reference (exponential). *)
val banzhaf : vars:int list -> Formula.t -> (int * Rat.t) list

(** [banzhaf_circuit ~vars g] — polynomial on d-D circuits: two
    conditionings and two counts per variable. *)
val banzhaf_circuit : vars:int list -> Circuit.node -> (int * Rat.t) list

(** [banzhaf_via_count_oracle ~count ~vars f] — through any plain counting
    oracle (e.g. DPLL): the Banzhaf analogue of the paper's pipeline,
    needing no stratified counts. *)
val banzhaf_via_count_oracle :
  count:(vars:int list -> Formula.t -> Bigint.t) ->
  vars:int list ->
  Formula.t ->
  (int * Rat.t) list

(** [banzhaf_sum shap] — sum of the values (no Prop. 5-style identity
    holds for Banzhaf; exposed for the comparison experiment). *)
val banzhaf_sum : (int * Rat.t) list -> Rat.t
