(** General cooperative games, connecting the paper's setting to Shapley's
    original one [32, 30].

    A (transferable-utility) game is a wealth function [v : 2^[n] → Q].
    The paper's object is the special case [v = F] for a Boolean function
    [F] — wealth 0 or 1.  This module computes Shapley and Banzhaf values
    of arbitrary games by the definition, and exposes the classical
    axioms as checkable predicates; the test suite verifies the axioms on
    random games and that {!of_formula} reproduces
    [Shapmc_core.Naive] exactly.  Exponential by nature (the game is
    given by an oracle over [2^n] coalitions); capped at 10 players. *)

type t = {
  players : int list;  (** distinct player identifiers *)
  wealth : Vset.t -> Rat.t;  (** defined on subsets of [players] *)
}

(** [make players wealth].  @raise Invalid_argument on duplicates or more
    than 10 players. *)
val make : int list -> (Vset.t -> Rat.t) -> t

(** [of_formula ~vars f] is the Boolean game of the paper: wealth
    [F[T]]. *)
val of_formula : vars:int list -> Formula.t -> t

(** [shapley g] — the original Eq. (1), with rational wealth. *)
val shapley : t -> (int * Rat.t) list

(** [banzhaf g] — raw Banzhaf value. *)
val banzhaf : t -> (int * Rat.t) list

(** {1 The Shapley axioms, as predicates} *)

(** [efficiency g]: [Σ_i Shap(i) = v(N) − v(∅)] (Proposition 5 in the
    paper's setting). *)
val efficiency : t -> bool

(** [symmetry g i j]: if [v(S∪{i}) = v(S∪{j})] for all [S] avoiding both,
    then [Shap(i) = Shap(j)].  Returns [true] when the premise fails. *)
val symmetry : t -> int -> int -> bool

(** [dummy g i]: if [v(S∪{i}) = v(S)] for all [S], then [Shap(i) = 0].
    Returns [true] when the premise fails. *)
val dummy : t -> int -> bool

(** [linearity g h]: Shapley of the sum game is the sum of the Shapley
    values ([g] and [h] must share players). *)
val linearity : t -> t -> bool

(** [sum g h] is the pointwise-sum game.
    @raise Invalid_argument unless the player lists agree. *)
val sum : t -> t -> t
