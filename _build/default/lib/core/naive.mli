(** Reference Shapley-value algorithms (exponential; ground truth).

    Two independent implementations of the definition, used to validate
    every polynomial algorithm in this library:

    - {!shap_permutations} is Eq. (1) verbatim: average the marginal
      contribution of [X_i] over all [n!] permutations.
    - {!shap_subsets} is the Proposition 3 form, Eq. (2):
      [Shap(F, X_i) = Σ_k c_k (#_k F[X_i:=1] − #_k F[X_i:=0])] with
      brute-force stratified counts.

    Both are relative to an explicit variable universe: the Shapley value
    of a variable depends on how many players there are, including players
    the function ignores. *)

(** [shap_permutations ~vars f] evaluates Eq. (1) over all permutations of
    [vars].  Exponential in a factorial way; capped at 8 variables.
    @raise Invalid_argument beyond the cap or if [vars] misses variables
    of [f]. *)
val shap_permutations : vars:int list -> Formula.t -> (int * Rat.t) list

(** [shap_subsets ~vars f] evaluates Eq. (2) with brute-force counts
    ([2^n] enumeration; capped by {!Semantics.max_enum_vars}). *)
val shap_subsets : vars:int list -> Formula.t -> (int * Rat.t) list

(** [shap_sum shap] is [Σ_i Shap(F, X_i)] (cf. Proposition 5). *)
val shap_sum : (int * Rat.t) list -> Rat.t

(** [permutation_table ~vars f] is the table of Example 2: for every
    permutation [Π] of [vars] (listed in lexicographic order) and every
    variable [i], the marginal [F[Π^{<i} ∪ {i}] − F[Π^{<i}]] as [-1], [0]
    or [1].  Capped at 8 variables. *)
val permutation_table : vars:int list -> Formula.t -> (int list * int list) list
