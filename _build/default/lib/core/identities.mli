(** The paper's quantitative identities as executable checks.

    Each function verifies one displayed equation of Sections 2–3 on a
    concrete formula by brute force, returning [true] when the identity
    holds.  They back the property-based tests and experiment E12; a
    [false] from any of them on any input would falsify the corresponding
    claim of the paper (none does). *)

(** Proposition 3: the permutation definition Eq. (1) agrees with the
    stratified-count form Eq. (2).  Capped at 8 variables. *)
val prop3 : vars:int list -> Formula.t -> bool

(** Proposition 5: [Σ_i Shap(F, X_i) = F(1) − F(0)]. *)
val prop5 : vars:int list -> Formula.t -> bool

(** Claim 3.5: [#F^(l) = Σ_k (2^l − 1)^k #_k F], with [F^(l)] built by
    {!Shapmc_boolean.Subst.uniform_or} and both sides counted by brute
    force.  Mind the blow-up: [F^(l)] has [n·l] variables. *)
val claim35 : l:int -> vars:int list -> Formula.t -> bool

(** Claim 3.7: the AND-substitution analogue
    [#F^(l) = Σ_k (2^l − 1)^(n−k) #_k F]. *)
val claim37 : l:int -> vars:int list -> Formula.t -> bool

(** Claim 3.6: [Σ_i (#_k F[X_i:=1] − #_k F[X_i:=0])
    = (k+1) #_{k+1} F − (n−k) #_k F] for every [k] in [0..n-1]. *)
val claim36 : vars:int list -> Formula.t -> bool

(** Equality (7): [Σ_i #_k F[X_i:=1] = (k+1) #_{k+1} F] for every [k]. *)
val eq7 : vars:int list -> Formula.t -> bool

(** Equality (8): [Σ_i #_k F[X_i:=0] = (n−k) #_k F] for every [k]. *)
val eq8 : vars:int list -> Formula.t -> bool
