(** Exact rational numbers over {!Bigint}.

    Shapley values are rationals with denominator dividing [n!]
    (Proposition 3); all reductions in the paper are exact, so every
    computation in this library that leaves the integers goes through this
    module.  Values are kept normalized: the denominator is positive and
    coprime with the numerator, so structural equality is numerical
    equality. *)

type t

val zero : t
val one : t
val minus_one : t

(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_bigint n] is the integer [n] as a rational. *)
val of_bigint : Bigint.t -> t

(** [of_int n] is the native integer [n] as a rational. *)
val of_int : int -> t

(** [of_ints num den] is [num/den] for native integers. *)
val of_ints : int -> int -> t

(** [num t] is the (sign-carrying) numerator of the normalized form. *)
val num : t -> Bigint.t

(** [den t] is the positive denominator of the normalized form. *)
val den : t -> Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [inv t] is [1/t]. @raise Division_by_zero if [t] is zero. *)
val inv : t -> t

(** [div a b] is [a/b]. @raise Division_by_zero if [b] is zero. *)
val div : t -> t -> t

(** [mul_bigint t n] scales by an integer. *)
val mul_bigint : t -> Bigint.t -> t

(** [to_bigint t] is the value as an integer.
    @raise Failure if [t] is not an integer. *)
val to_bigint : t -> Bigint.t

val to_float : t -> float

(** [to_string t] is ["p/q"], or just ["p"] when the value is an integer. *)
val to_string : t -> string

val of_string : string -> t
val pp : Format.formatter -> t -> unit
val hash : t -> int

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( ~- ) : t -> t
end
