(* Coefficient vectors are kept canonical (no trailing zero), so [degree] is
   the array length minus one and [equal] is pointwise. *)

type t = Rat.t array

let strip a =
  let n = ref (Array.length a) in
  while !n > 0 && Rat.is_zero a.(!n - 1) do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero = [||]
let one = [| Rat.one |]
let of_coeffs l = strip (Array.of_list l)
let coeffs p = Array.to_list p
let coeff p k = if k < 0 || k >= Array.length p then Rat.zero else p.(k)
let degree p = Array.length p - 1

let equal a b =
  Array.length a = Array.length b
  && begin
    let ok = ref true in
    Array.iteri (fun i c -> if not (Rat.equal c b.(i)) then ok := false) a;
    !ok
  end

let add a b =
  let la = Array.length a and lb = Array.length b in
  strip (Array.init (Stdlib.max la lb) (fun i -> Rat.add (coeff a i) (coeff b i)))

let scale c p =
  if Rat.is_zero c then zero else Array.map (Rat.mul c) p

let sub a b = add a (scale Rat.minus_one b)

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb - 1) Rat.zero in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        out.(i + j) <- Rat.add out.(i + j) (Rat.mul a.(i) b.(j))
      done
    done;
    strip out
  end

let x_minus c = [| Rat.neg c; Rat.one |]

let eval p v =
  let acc = ref Rat.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Rat.add (Rat.mul !acc v) p.(i)
  done;
  !acc

let pp ppf p =
  if Array.length p = 0 then Format.pp_print_string ppf "0"
  else
    Array.iteri
      (fun i c ->
         if i > 0 then Format.fprintf ppf " + ";
         Format.fprintf ppf "%a*x^%d" Rat.pp c i)
      p
