(** Dense univariate polynomials with {!Rat} coefficients.

    Two uses in this library: (a) converting Newton-form interpolants to
    monomial coefficients inside the Vandermonde solver of {!Linalg}, and
    (b) cross-checking the size-stratified count vectors of
    [Counting.Kvec], which are integer polynomials in a formal variable
    marking model size. *)

type t

(** The zero polynomial (empty coefficient vector, degree [-1]). *)
val zero : t

val one : t

(** [of_coeffs [c0; c1; ...]] builds [c0 + c1 x + ...]; trailing zeros are
    stripped so that [degree] is exact. *)
val of_coeffs : Rat.t list -> t

(** [coeffs p] is the coefficient list, constant term first. *)
val coeffs : t -> Rat.t list

(** [coeff p k] is the coefficient of [x^k] ([Rat.zero] beyond the degree). *)
val coeff : t -> int -> Rat.t

(** [degree p] is [-1] for the zero polynomial. *)
val degree : t -> int

val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Rat.t -> t -> t

(** [x_minus c] is the monic linear polynomial [x - c]. *)
val x_minus : Rat.t -> t

(** [eval p v] evaluates by Horner's rule. *)
val eval : t -> Rat.t -> Rat.t

val pp : Format.formatter -> t -> unit
