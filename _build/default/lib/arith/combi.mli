(** Exact combinatorics: factorials, binomial coefficients, and the Shapley
    coefficients [c_k = k! (n-k-1)! / n!] of Proposition 3.

    All values are memoized; the memo tables grow on demand and are shared
    across the whole process, which matters because the reductions of
    Section 3 evaluate [c_k] for every [k] at every variable. *)

(** [factorial n] is [n!]. @raise Invalid_argument if [n < 0]. *)
val factorial : int -> Bigint.t

(** [binomial n k] is [C(n, k)]; [0] when [k < 0] or [k > n].
    @raise Invalid_argument if [n < 0]. *)
val binomial : int -> int -> Bigint.t

(** [shapley_coeff ~n k] is [c_k = k! (n-k-1)! / n!] from Eq. (2), for
    [0 <= k <= n-1].  @raise Invalid_argument outside that range. *)
val shapley_coeff : n:int -> int -> Rat.t

(** [falling n k] is the falling factorial [n (n-1) ... (n-k+1)]. *)
val falling : int -> int -> Bigint.t

(** [pow2 n] is [2^n] as a {!Bigint.t}. @raise Invalid_argument if [n < 0]. *)
val pow2 : int -> Bigint.t
