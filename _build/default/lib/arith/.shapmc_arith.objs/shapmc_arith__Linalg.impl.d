lib/arith/linalg.ml: Array Poly Rat
