lib/arith/linalg.mli: Rat
