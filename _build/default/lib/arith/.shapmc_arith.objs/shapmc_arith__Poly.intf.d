lib/arith/poly.mli: Format Rat
