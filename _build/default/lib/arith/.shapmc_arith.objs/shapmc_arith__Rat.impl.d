lib/arith/rat.ml: Bigint Format Hashtbl String
