lib/arith/combi.mli: Bigint Rat
