lib/arith/poly.ml: Array Format Rat Stdlib
