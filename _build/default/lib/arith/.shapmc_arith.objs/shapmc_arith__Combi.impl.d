lib/arith/combi.ml: Array Bigint Rat
