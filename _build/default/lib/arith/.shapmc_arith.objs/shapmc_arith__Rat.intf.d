lib/arith/rat.mli: Bigint Format
