(* Normalized rationals: [dn] is positive and [gcd nm dn = 1], so structural
   equality coincides with numerical equality. *)

type t = { nm : Bigint.t; dn : Bigint.t }

let make_norm nm dn =
  if Bigint.is_zero dn then raise Division_by_zero;
  if Bigint.is_zero nm then { nm = Bigint.zero; dn = Bigint.one }
  else begin
    let nm, dn = if Bigint.sign dn < 0 then (Bigint.neg nm, Bigint.neg dn) else (nm, dn) in
    let g = Bigint.gcd nm dn in
    if Bigint.equal g Bigint.one then { nm; dn }
    else { nm = Bigint.div nm g; dn = Bigint.div dn g }
  end

let make = make_norm
let of_bigint n = { nm = n; dn = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints num den = make_norm (Bigint.of_int num) (Bigint.of_int den)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.nm
let den t = t.dn
let sign t = Bigint.sign t.nm
let is_zero t = Bigint.is_zero t.nm
let is_integer t = Bigint.equal t.dn Bigint.one

let compare a b =
  Bigint.compare (Bigint.mul a.nm b.dn) (Bigint.mul b.nm a.dn)

let equal a b = Bigint.equal a.nm b.nm && Bigint.equal a.dn b.dn

let neg t = { t with nm = Bigint.neg t.nm }
let abs t = { t with nm = Bigint.abs t.nm }

let add a b =
  make_norm
    (Bigint.add (Bigint.mul a.nm b.dn) (Bigint.mul b.nm a.dn))
    (Bigint.mul a.dn b.dn)

let sub a b = add a (neg b)
let mul a b = make_norm (Bigint.mul a.nm b.nm) (Bigint.mul a.dn b.dn)

let inv t =
  if is_zero t then raise Division_by_zero;
  if Bigint.sign t.nm < 0 then { nm = Bigint.neg t.dn; dn = Bigint.neg t.nm }
  else { nm = t.dn; dn = t.nm }

let div a b = mul a (inv b)
let mul_bigint t n = make_norm (Bigint.mul t.nm n) t.dn

let to_bigint t =
  if is_integer t then t.nm
  else failwith "Rat.to_bigint: not an integer"

let to_float t = Bigint.to_float t.nm /. Bigint.to_float t.dn

let to_string t =
  if is_integer t then Bigint.to_string t.nm
  else Bigint.to_string t.nm ^ "/" ^ Bigint.to_string t.dn

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    make_norm
      (Bigint.of_string (String.sub s 0 i))
      (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let pp ppf t = Format.pp_print_string ppf (to_string t)
let hash t = Hashtbl.hash (Bigint.hash t.nm, Bigint.hash t.dn)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( ~- ) = neg
end
