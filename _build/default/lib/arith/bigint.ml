(* Sign-magnitude bignums: [mag] is little-endian base 2^15 with no leading
   zero limb, empty iff the value is zero.  All functions preserve this
   canonical form, so structural equality of canonical values coincides with
   numerical equality of magnitudes. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)

type t = { sg : int; mag : int array }

let zero = { sg = 0; mag = [||] }

let normalize sg mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sg; mag }
  else { sg; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else begin
    let sg = if n < 0 then -1 else 1 in
    (* Work on the negative side so that [min_int] does not overflow. *)
    let m = if n < 0 then n else -n in
    let rec count m acc = if m = 0 then acc else count (m / base) (acc + 1) in
    let len = count m 0 in
    let mag = Array.make len 0 in
    let rec fill i m =
      if m <> 0 then begin
        mag.(i) <- -(m mod base);
        fill (i + 1) (m / base)
      end
    in
    fill 0 m;
    { sg; mag }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sg
let is_zero t = t.sg = 0
let neg t = if t.sg = 0 then t else { t with sg = -t.sg }
let abs t = if t.sg < 0 then { t with sg = 1 } else t

(* Robust to non-canonical (leading-zero-padded) magnitudes: intermediate
   results inside the division loop are compared without normalizing. *)
let effective_length a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  !n

let compare_mag a b =
  let la = effective_length a and lb = effective_length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sg <> b.sg then Stdlib.compare a.sg b.sg
  else if a.sg >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let min a b = if leq a b then a else b
let max a b = if leq a b then b else a

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let out = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land (base - 1);
    carry := s lsr base_bits
  done;
  out.(l) <- !carry;
  out

(* Requires [a >= b] as magnitudes. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let add a b =
  if a.sg = 0 then b
  else if b.sg = 0 then a
  else if a.sg = b.sg then normalize a.sg (add_mag a.mag b.mag)
  else begin
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sg (sub_mag a.mag b.mag)
    | _ -> normalize b.sg (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ t = add t one
let pred t = sub t one

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let v = out.(i + j) + (ai * b.(j)) + !carry in
          out.(i + j) <- v land (base - 1);
          carry := v lsr base_bits
        done;
        out.(i + lb) <- out.(i + lb) + !carry
      end
    done;
    out
  end

let mul a b =
  if a.sg = 0 || b.sg = 0 then zero
  else normalize (a.sg * b.sg) (mul_mag a.mag b.mag)

(* Multiply a magnitude by a small non-negative int (< 2^30). *)
let mul_small_mag a k =
  if k = 0 || Array.length a = 0 then [||]
  else begin
    let la = Array.length a in
    let out = Array.make (la + 3) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) * k) + !carry in
      out.(i) <- v land (base - 1);
      carry := v lsr base_bits
    done;
    let i = ref la in
    while !carry <> 0 do
      out.(!i) <- !carry land (base - 1);
      carry := !carry lsr base_bits;
      incr i
    done;
    out
  end

let mul_int t k =
  if k = 0 || t.sg = 0 then zero
  else begin
    let sg = if k < 0 then -t.sg else t.sg in
    let k = Stdlib.abs k in
    if k < base * base then normalize sg (mul_small_mag t.mag k)
    else mul t (of_int (if sg = t.sg then k else -k))
  end

let add_int t k = add t (of_int k)

(* Shift a magnitude left by [k] limbs (multiply by base^k). *)
let shift_limbs a k =
  if Array.length a = 0 then a
  else Array.append (Array.make k 0) a

(* Schoolbook long division on magnitudes; quotient digits found by binary
   search, which keeps the code simple and is fast enough for the ~hundreds
   of limbs arising in the reductions. *)
let divmod_mag a b =
  if Array.length b = 0 then raise Division_by_zero;
  if compare_mag a b < 0 then ([||], a)
  else begin
    let n = Array.length a and m = Array.length b in
    let q = Array.make (n - m + 1) 0 in
    let rem = ref a in
    for k = n - m downto 0 do
      let fits d = compare_mag (shift_limbs (mul_small_mag b d) k) !rem <= 0 in
      let lo = ref 0 and hi = ref (base - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if fits mid then lo := mid else hi := mid - 1
      done;
      if !lo > 0 then begin
        q.(k) <- !lo;
        let r = sub_mag !rem (shift_limbs (mul_small_mag b !lo) k) in
        (* Keep the remainder canonical so limb-count comparisons stay valid. *)
        rem := (normalize 1 r).mag
      end
    done;
    (q, !rem)
  end

let divmod a b =
  if b.sg = 0 then raise Division_by_zero;
  if a.sg = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    (normalize (a.sg * b.sg) qm, normalize a.sg rm)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent"
  else if e = 0 then one
  else begin
    let h = pow b (e / 2) in
    let h2 = mul h h in
    if e land 1 = 1 then mul h2 b else h2
  end

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let two_pow_minus_one l =
  if l < 0 then invalid_arg "Bigint.two_pow_minus_one";
  sub (pow two l) one

(* Divide a magnitude by a small positive int, returning (quotient, rem). *)
let divmod_small_mag a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let to_string t =
  if t.sg = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref t.mag in
    while Array.length !m > 0 do
      let q, r = divmod_small_mag !m 1_000_000_000 in
      chunks := r :: !chunks;
      m := (normalize 1 q).mag
    done;
    let buf = Buffer.create 32 in
    if t.sg < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let neg_in, start = if s.[0] = '-' then (true, 1) else (false, 0) in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0')
  done;
  if neg_in then neg !acc else !acc

let to_float t =
  let f = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  if t.sg < 0 then -. !f else !f

let to_int_opt t =
  if t.sg = 0 then Some 0
  else begin
    (* Accumulate on the negative side so min_int round-trips. *)
    let limit = Stdlib.min_int in
    let rec go i acc =
      if i < 0 then Some acc
      else begin
        let d = t.mag.(i) in
        if acc < limit / base then None
        else begin
          let acc = acc * base in
          if acc < limit + d then None else go (i - 1) (acc - d)
        end
      end
    in
    match go (Array.length t.mag - 1) 0 with
    | None -> None
    | Some negv -> if t.sg < 0 then Some negv
      else if negv = Stdlib.min_int then None
      else Some (-negv)
  end

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int: value out of native int range"

let bit_length t =
  let l = Array.length t.mag in
  if l = 0 then 0
  else begin
    let top = t.mag.(l - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((l - 1) * base_bits) + bits top 0
  end

let hash t = Hashtbl.hash (t.sg, t.mag)
let pp ppf t = Format.pp_print_string ppf (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) a b = lt b a
  let ( >= ) a b = leq b a
  let ( ~- ) = neg
end
