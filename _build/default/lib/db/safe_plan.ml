exception Not_safe of string

(* The residual query during planning: atoms with partially substituted
   arguments.  We reuse Cq.atom, substituting constants in place. *)

let subst_atom x v (a : Cq.atom) =
  {
    a with
    Cq.args =
      Array.map
        (function Cq.V y when y = x -> Cq.C v | t -> t)
        a.args;
  }

let atom_vars (a : Cq.atom) =
  Array.to_list a.args
  |> List.filter_map (function Cq.V x -> Some x | Cq.C _ -> None)
  |> List.sort_uniq compare

let is_ground a = atom_vars a = []

(* Resolve a ground atom to a circuit leaf. *)
let ground_leaf db (a : Cq.atom) =
  let values =
    Array.map
      (function Cq.C v -> v | Cq.V _ -> assert false)
      a.args
  in
  let row =
    List.find_opt
      (fun (s : Database.stored) -> s.values = values)
      (Database.tuples db a.rel)
  in
  match (row, Database.kind_of db a.rel) with
  | None, _ -> Circuit.cfalse
  | Some _, Database.Exogenous -> Circuit.ctrue
  | Some s, Database.Endogenous ->
    (match s.lvar with
     | Some v -> Circuit.cvar v
     | None -> assert false)

(* Connected components of atoms sharing query variables. *)
let components atoms =
  let merge groups (vs, members) =
    let touching, rest =
      List.partition
        (fun (ws, _) -> List.exists (fun v -> List.mem v ws) vs)
        groups
    in
    let vs' =
      List.sort_uniq compare
        (vs @ List.concat_map fst touching)
    in
    (vs', members @ List.concat_map snd touching) :: rest
  in
  List.fold_left merge []
    (List.map (fun a -> (atom_vars a, [ a ])) atoms)

(* A root variable of a connected residual query: occurs in all atoms. *)
let root_variable atoms =
  match atoms with
  | [] -> None
  | first :: _ ->
    List.find_opt
      (fun x ->
         List.for_all
           (fun (a : Cq.atom) ->
              Array.exists (function Cq.V y -> y = x | Cq.C _ -> false) a.args)
           atoms)
      (atom_vars first)

(* Candidate values for branching on [x]: values appearing in the positions
   where [x] occurs, in any matching relation (a superset of the join
   result is fine — non-joining values yield false branches that the
   circuit constructors drop). *)
let candidate_values db x atoms =
  let module Vs = Set.Make (struct
      type t = Value.t

      let compare = Value.compare
    end)
  in
  let acc = ref Vs.empty in
  (match atoms with
   | [] -> ()
   | (a : Cq.atom) :: _ ->
     List.iter
       (fun (s : Database.stored) ->
          Array.iteri
            (fun i t ->
               match t with
               | Cq.V y when y = x -> acc := Vs.add s.values.(i) !acc
               | _ -> ())
            a.args)
       (Database.tuples db a.rel));
  Vs.elements !acc

let rec plan db atoms =
  let ground, open_atoms = List.partition is_ground atoms in
  let ground_circuits = List.map (ground_leaf db) ground in
  let rest =
    match components open_atoms with
    | [] -> []
    | [ (_, members) ] -> [ plan_connected db members ]
    | groups -> List.map (fun (_, members) -> plan_connected db members) groups
  in
  (* SJF guarantees the parts use disjoint lineage variables. *)
  Circuit.cand (ground_circuits @ rest)

and plan_connected db atoms =
  match root_variable atoms with
  | None ->
    raise
      (Not_safe
         "connected subquery without a root variable (query not hierarchical)")
  | Some x ->
    let branches =
      List.map
        (fun v -> plan db (List.map (subst_atom x v) atoms))
        (candidate_values db x atoms)
    in
    (* Different values of x touch disjoint sets of tuples (each tuple
       fixes the value in x's position), hence disjoint lineage vars. *)
    Circuit.cor_disj branches

let lineage_circuit db q =
  Cq.check_against q db;
  if not (Cq.is_positive q) then
    raise (Not_safe "query has negated atoms");
  if not (Cq.is_self_join_free q) then
    raise (Not_safe "query has self-joins");
  if not (Cq.is_hierarchical q) then raise (Not_safe "query not hierarchical");
  plan db q.Cq.atoms

let shapley db q =
  let c = lineage_circuit db q in
  let universe = Vset.elements (Database.lineage_vars db) in
  Circuit_shapley.shap_direct ~vars:universe c

(* The safe-plan circuit visits decomposition blocks contiguously, so a
   left-to-right leaf traversal of the circuit is exactly the
   Olteanu–Huang variable order. *)
let obdd_order db q =
  let c = lineage_circuit db q in
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit (g : Circuit.node) =
    if not (Hashtbl.mem seen g.id) then begin
      Hashtbl.replace seen g.id ();
      match g.gate with
      | Circuit.Cvar v -> order := v :: !order
      | Circuit.Ctrue | Circuit.Cfalse -> ()
      | Circuit.Cnot h -> visit h
      | Circuit.Cand gs | Circuit.Cor (_, gs) -> List.iter visit gs
    end
  in
  visit c;
  let touched = List.rev !order in
  let rest =
    Vset.elements
      (Vset.diff (Database.lineage_vars db) (Vset.of_list touched))
  in
  touched @ rest

let lineage_obdd db q =
  let order = obdd_order db q in
  let m = Obdd.create_manager ~order in
  (m, Obdd.of_formula m (Lineage.lineage_formula db q))
