module type SEMIRING = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Polynomial = struct
  (* Monomial: sorted (variable, exponent>0) assoc list. *)
  module Mono = struct
    type t = (int * int) list

    let compare = Stdlib.compare
    let one : t = []

    let times (a : t) (b : t) : t =
      let rec merge a b =
        match (a, b) with
        | [], m | m, [] -> m
        | (v1, e1) :: r1, (v2, e2) :: r2 ->
          if v1 < v2 then (v1, e1) :: merge r1 b
          else if v2 < v1 then (v2, e2) :: merge a r2
          else (v1, e1 + e2) :: merge r1 r2
      in
      merge a b
  end

  module Mmap = Map.Make (Mono)

  (* coefficient map, no zero coefficients *)
  type t = int Mmap.t

  let zero = Mmap.empty
  let one = Mmap.singleton Mono.one 1
  let var v = Mmap.singleton [ (v, 1) ] 1

  let plus a b =
    Mmap.union (fun _ c1 c2 -> if c1 + c2 = 0 then None else Some (c1 + c2)) a b

  let times a b =
    Mmap.fold
      (fun ma ca acc ->
         Mmap.fold
           (fun mb cb acc ->
              let m = Mono.times ma mb in
              let c = ca * cb in
              Mmap.update m
                (function
                  | None -> Some c
                  | Some c' -> if c + c' = 0 then None else Some (c + c'))
                acc)
           b acc)
      a zero

  let equal = Mmap.equal Int.equal

  let monomials p = Mmap.bindings p

  let pp ppf p =
    if Mmap.is_empty p then Format.pp_print_string ppf "0"
    else
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
        (fun ppf (m, c) ->
           if c <> 1 || m = [] then Format.fprintf ppf "%d" c;
           List.iter
             (fun (v, e) ->
                if e = 1 then Format.fprintf ppf "x%d" v
                else Format.fprintf ppf "x%d^%d" v e)
             m)
        ppf (monomials p)

  let eval (type a) (module S : SEMIRING with type t = a) h p : a =
    Mmap.fold
      (fun m c acc ->
         let rec repeat acc x k = if k = 0 then acc else repeat (S.times acc x) x (k - 1) in
         let term =
           List.fold_left (fun acc (v, e) -> repeat acc (h v) e) S.one m
         in
         let rec add acc k = if k = 0 then acc else add (S.plus acc term) (k - 1) in
         add acc c)
      p S.zero
end

module Boolean_semiring = struct
  type t = Formula.t

  let zero = Formula.fls
  let one = Formula.tru
  let plus = Formula.disj2
  let times = Formula.conj2
  let equal = Formula.equal
  let pp = Formula.pp
end

module Counting = struct
  type t = Bigint.t

  let zero = Bigint.zero
  let one = Bigint.one
  let plus = Bigint.add
  let times = Bigint.mul
  let equal = Bigint.equal
  let pp = Bigint.pp
end

module Probability = struct
  type t = Rat.t

  let zero = Rat.zero
  let one = Rat.one
  let plus = Rat.add
  let times = Rat.mul
  let equal = Rat.equal
  let pp = Rat.pp
end

module Tropical = struct
  type t = Finite of int | Infinity

  let zero = Infinity
  let one = Finite 0
  let of_int n = Finite n
  let infinity = Infinity
  let to_int_opt = function Finite n -> Some n | Infinity -> None

  let plus a b =
    match (a, b) with
    | Infinity, x | x, Infinity -> x
    | Finite m, Finite n -> Finite (Stdlib.min m n)

  let times a b =
    match (a, b) with
    | Infinity, _ | _, Infinity -> Infinity
    | Finite m, Finite n -> Finite (m + n)

  let equal = Stdlib.( = )

  let pp ppf = function
    | Infinity -> Format.pp_print_string ppf "inf"
    | Finite n -> Format.pp_print_int ppf n
end

(* Unify an atom against a stored tuple under a partial assignment. *)
let match_atom env (a : Cq.atom) (s : Database.stored) =
  let bind acc i =
    match acc with
    | None -> None
    | Some env ->
      (match a.args.(i) with
       | Cq.C v -> if Value.equal v s.values.(i) then Some env else None
       | Cq.V x ->
         (match List.assoc_opt x env with
          | Some v -> if Value.equal v s.values.(i) then Some env else None
          | None -> Some ((x, s.values.(i)) :: env)))
  in
  let rec go acc i =
    if i >= Array.length a.args then acc else go (bind acc i) (i + 1)
  in
  go (Some env) 0

let eval (type a) (module S : SEMIRING with type t = a) db q ~annotate : a =
  (* Sum over satisfying assignments of the product of tuple annotations;
     a tuple used by several atoms of one assignment contributes one
     factor per use (bag semantics of [16]). *)
  Cq.check_against q db;
  let rec search env acc_annot rest sum =
    match rest with
    | [] -> S.plus sum acc_annot
    | (a : Cq.atom) :: rest ->
      List.fold_left
        (fun sum (s : Database.stored) ->
           match match_atom env a s with
           | None -> sum
           | Some env' ->
             let annot =
               match s.lvar with
               | Some v -> S.times acc_annot (annotate v)
               | None -> acc_annot
             in
             search env' annot rest sum)
        sum
        (Database.tuples db a.rel)
  in
  search [] S.one q.Cq.atoms S.zero

let provenance_polynomial db q =
  eval (module Polynomial) db q ~annotate:Polynomial.var

let derivation_count db q =
  eval (module Counting) db q ~annotate:(fun _ -> Bigint.one)
