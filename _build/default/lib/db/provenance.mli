(** Semiring provenance for conjunctive queries (Green–Karvounarakis–
    Tannen [16]).

    Section 5 rests on the observation that the lineage — the Boolean
    specialization of the provenance polynomial — of a CQ is a Boolean
    function.  This module provides the general picture: query evaluation
    annotated in any commutative semiring, with the Boolean lineage,
    counting, probability and tropical semirings as instances, plus the
    universal polynomial semiring [N[X]] whose evaluation homomorphisms
    recover all the others.  The test suite checks the homomorphism
    property (specializing [N[X]] commutes with evaluation) — the
    factorization theorem of [16] on our fragment. *)

(** A commutative semiring: ([zero], [plus]) and ([one], [times]) with the
    usual laws; [zero] annihilates. *)
module type SEMIRING = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Provenance polynomials [N[X]]: multivariate polynomials with natural
    coefficients over the lineage variables, in a normalized monomial-map
    representation. *)
module Polynomial : sig
  include SEMIRING

  (** [var v] is the polynomial [x_v]. *)
  val var : int -> t

  (** [eval sr h p] is the image of [p] under the homomorphism sending
      [x_v] to [h v], into the semiring [sr]. *)
  val eval : (module SEMIRING with type t = 'a) -> (int -> 'a) -> t -> 'a

  (** [monomials p] lists [(variable -> exponent map as assoc list,
      coefficient)] pairs, sorted. *)
  val monomials : t -> ((int * int) list * int) list
end

(** The Boolean lineage semiring: formulas modulo nothing (syntactic),
    [plus] = ∨, [times] = ∧.  Evaluating a query here and taking
    [Formula] equivalence recovers [Lineage]. *)
module Boolean_semiring : SEMIRING with type t = Formula.t

(** Natural-number counting semiring ([Bigint]): annotation = number of
    derivations. *)
module Counting : SEMIRING with type t = Bigint.t

(** Probability semiring on rationals — correct for derivations that do
    not share tuples (used on hierarchical plans); exposed mainly for the
    homomorphism tests. *)
module Probability : SEMIRING with type t = Rat.t

(** Tropical (min, +) semiring over int costs with infinity: annotation =
    cost of the cheapest derivation. *)
module Tropical : sig
  include SEMIRING

  val of_int : int -> t
  val infinity : t
  val to_int_opt : t -> int option
end

(** [eval (module S) db q ~annotate] evaluates the Boolean CQ [q] over
    [db], annotating each endogenous tuple [t] (lineage variable [v]) with
    [annotate v] and each exogenous tuple with [S.one]; returns the
    semiring annotation of the query answer (the sum over satisfying
    assignments of the product of the tuple annotations).
    @raise Invalid_argument if [q] does not match the schema. *)
val eval :
  (module SEMIRING with type t = 'a) ->
  Database.t ->
  Cq.t ->
  annotate:(int -> 'a) ->
  'a

(** [provenance_polynomial db q] annotates every endogenous tuple with its
    own variable in [N[X]] — the most general provenance. *)
val provenance_polynomial : Database.t -> Cq.t -> Polynomial.t

(** [derivation_count db q] is the number of satisfying assignments
    (evaluation in {!Counting} with all annotations 1). *)
val derivation_count : Database.t -> Cq.t -> Bigint.t
