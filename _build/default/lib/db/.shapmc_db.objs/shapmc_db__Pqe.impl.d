lib/db/pqe.ml: Compile Database Dichotomy Lineage Pipeline Prob Safe_plan Vset
