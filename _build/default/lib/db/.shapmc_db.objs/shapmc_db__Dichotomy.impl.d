lib/db/dichotomy.ml: Circuit_shapley Compile Count Cq Database Lineage Naive Safe_plan Vset
