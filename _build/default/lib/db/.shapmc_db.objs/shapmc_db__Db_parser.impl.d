lib/db/db_parser.ml: Array Cq Database List Printf String Value
