lib/db/dichotomy.mli: Bigint Cq Database Rat
