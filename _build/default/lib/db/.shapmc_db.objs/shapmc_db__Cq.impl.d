lib/db/cq.ml: Array Database Format Hashtbl List Value
