lib/db/explain.ml: Array Cq Database Dichotomy Format Lineage List Rat String Value
