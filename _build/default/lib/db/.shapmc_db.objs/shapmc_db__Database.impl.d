lib/db/database.ml: Array Format Hashtbl List Printf Set Stdlib Value Vset
