lib/db/hardness.ml: Bipartite Circuit_shapley Compile Database Formula Lineage List Rat Reductions Stretch Value Vset
