lib/db/value.ml: Format Stdlib
