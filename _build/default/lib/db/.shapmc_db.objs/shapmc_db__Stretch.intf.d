lib/db/stretch.mli: Cq Database Subst
