lib/db/database.mli: Format Value Vset
