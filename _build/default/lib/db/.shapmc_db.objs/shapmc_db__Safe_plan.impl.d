lib/db/safe_plan.ml: Array Circuit Circuit_shapley Cq Database Hashtbl Lineage List Obdd Set Value Vset
