lib/db/safe_plan.mli: Circuit Cq Database Obdd Rat
