lib/db/lineage.mli: Cq Database Formula Nf Value Vset
