lib/db/db_parser.mli: Cq Database
