lib/db/pqe.mli: Cq Database Rat
