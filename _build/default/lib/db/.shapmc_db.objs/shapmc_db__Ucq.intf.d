lib/db/ucq.mli: Cq Database Formula Nf Rat
