lib/db/lineage.ml: Array Cq Database Formula List Nf Option Value Vset
