lib/db/cq.mli: Database Format Value
