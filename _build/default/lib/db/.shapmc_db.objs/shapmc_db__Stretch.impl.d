lib/db/stretch.ml: Array Cq Database Fresh List Printf Value
