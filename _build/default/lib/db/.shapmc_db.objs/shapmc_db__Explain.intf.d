lib/db/explain.mli: Cq Database Dichotomy Format Rat Value
