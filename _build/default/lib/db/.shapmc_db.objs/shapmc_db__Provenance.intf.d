lib/db/provenance.mli: Bigint Cq Database Format Formula Rat
