lib/db/provenance.ml: Array Bigint Cq Database Format Formula Int List Map Rat Stdlib Value
