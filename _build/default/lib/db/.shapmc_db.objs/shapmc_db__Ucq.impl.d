lib/db/ucq.ml: Circuit Circuit_shapley Compile Cq Database Lineage List Nf Prob Safe_plan Vset
