lib/db/hardness.mli: Bigint Bipartite Cq Database Rat
