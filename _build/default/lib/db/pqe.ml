let lineage_circuit db q =
  match Dichotomy.classify q with
  | Dichotomy.Hierarchical -> Safe_plan.lineage_circuit db q
  | Dichotomy.Non_hierarchical _ | Dichotomy.Has_self_joins
  | Dichotomy.Has_negation ->
    Compile.compile (Lineage.lineage_formula db q)

let probability db q ~weights =
  Prob.probability ~weights (lineage_circuit db q)

let uniform_probability db q ~theta =
  probability db q ~weights:(fun _ -> theta)

let shapley_via_pqe db q =
  let universe = Vset.elements (Database.lineage_vars db) in
  let f = Lineage.lineage_formula db q in
  (* PQE oracle at the lineage level: conditionings of the lineage are
     themselves PQE instances (present tuple = probability 1, absent
     tuple = probability 0), so serve them on the compiled circuit of
     the restricted lineage. *)
  let oracle =
    Pipeline.
      {
        pqe_name = "db-pqe";
        prob =
          (fun ~theta ~vars g ->
             ignore vars;
             Prob.probability ~weights:(fun _ -> theta) (Compile.compile g));
      }
  in
  Pipeline.shap_via_pqe_oracle ~oracle ~vars:universe f
