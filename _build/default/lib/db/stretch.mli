(** Stretching of queries and databases (Definition 10, Appendix B).

    Stretching a CQ adds one fresh existential variable in first position
    of every endogenous atom; at the lineage level this captures
    OR-substitution (Lemma 12), which the database constructions below make
    executable:

    - {!stretch_query} is Definition 10;
    - {!stretch_database_dummy} (Appendix B.1.1) pads endogenous tuples
      with a dummy value so that [F_{~Q,~D} = F_{Q,D}] — the direction
      [C_Q ⊆ C_~Q];
    - {!or_substituted_db} (Appendix B.2.2) replaces each endogenous tuple
      by a block of copies with fresh first-attribute values and fresh
      lineage variables, so that [F_{~Q,~D}] is equivalent to
      [F_{Q,D}[theta]] for the OR-substitution [theta] with those blocks —
      the heart of the commutative diagram of Section 5.2;
    - {!collapse_q0} (Appendix B.1.2) folds a stretched database for the
      canonical non-hierarchical query [Q0 = R(x), S(x,y), T(y)] back into
      a database for [Q0] itself using composite values — Claim 5.2
      ([C_~Q0 = C_Q0]), the step that makes the hardness proof close. *)

(** [stretch_query ~is_endogenous q] adds fresh variables [z$1, z$2, ...]
    (names chosen fresh w.r.t. [q]'s variables).  Returns the stretched
    query and the list of added variable names, one per endogenous atom
    in order. *)
val stretch_query : is_endogenous:(string -> bool) -> Cq.t -> Cq.t * string list

(** [stretch_schema db] is a new database with every endogenous relation's
    arity raised by one (no tuples). *)
val stretch_schema : Database.t -> Database.t

(** [stretch_database_dummy db] pads every endogenous tuple with the dummy
    first value [d], preserving lineage variables.  Exogenous relations
    are unchanged. *)
val stretch_database_dummy : Database.t -> Database.t

(** [or_substituted_db ~widths db] builds the stretched database of
    Appendix B.2.2: the endogenous tuple with lineage variable [v] becomes
    [widths v] copies with fresh first-attribute values, carrying fresh
    lineage variables; returns the new database and the blocks (original
    variable → fresh variables), matching
    [Shapmc_boolean.Subst.or_subst ~widths] on the lineage.
    @raise Invalid_argument on negative widths. *)
val or_substituted_db :
  widths:(int -> int) -> Database.t -> Database.t * Subst.blocks

(** [q0 ()] is the canonical smallest non-hierarchical query
    [R^n(x), S^x(x,y), T^n(y)] (Eq. 10); its stretching is Eq. (11). *)
val q0 : unit -> Cq.t

(** [declare_q0_schema db] declares [R] (endo, 1), [S] (exo, 2),
    [T] (endo, 1). *)
val declare_q0_schema : Database.t -> unit

(** [collapse_q0 db] takes a database over the {e stretched} [Q0] schema
    ([R]: endo arity 2, [S]: exo arity 2, [T]: endo arity 2) and builds
    the Appendix B.1.2 database over the original [Q0] schema with
    composite values, preserving lineage variables:
    [F_{~Q0, db} = F_{Q0, collapse_q0 db}]. *)
val collapse_q0 : Database.t -> Database.t

(** [or_substituted_q0_db ~widths db] composes {!or_substituted_db} with
    {!collapse_q0}: a database for [Q0] itself whose lineage is (equivalent
    to) the OR-substituted lineage of [Q0] over [db] — the executable
    content of Claim 5.2. *)
val or_substituted_q0_db :
  widths:(int -> int) -> Database.t -> Database.t * Subst.blocks
