type classification =
  | Hierarchical
  | Non_hierarchical of string * string
  | Has_self_joins
  | Has_negation

type solver = Safe_plan_circuit | Compiled_dnf

let classify q =
  if not (Cq.is_positive q) then Has_negation
  else if not (Cq.is_self_join_free q) then Has_self_joins
  else begin
    match Cq.witness_non_hierarchical q with
    | None -> Hierarchical
    | Some (x, y) -> Non_hierarchical (x, y)
  end

let compiled_circuit db q =
  let f = Lineage.lineage_formula db q in
  Compile.compile f

let shapley db q =
  let universe = Vset.elements (Database.lineage_vars db) in
  match classify q with
  | Hierarchical ->
    (Circuit_shapley.shap_direct ~vars:universe (Safe_plan.lineage_circuit db q),
     Safe_plan_circuit)
  | Non_hierarchical _ | Has_self_joins | Has_negation ->
    (Circuit_shapley.shap_direct ~vars:universe (compiled_circuit db q),
     Compiled_dnf)

let shapley_brute db q =
  let universe = Vset.elements (Database.lineage_vars db) in
  Naive.shap_subsets ~vars:universe (Lineage.lineage_formula db q)

let count_models db q =
  let universe = Vset.elements (Database.lineage_vars db) in
  match classify q with
  | Hierarchical ->
    (Count.count ~vars:universe (Safe_plan.lineage_circuit db q),
     Safe_plan_circuit)
  | Non_hierarchical _ | Has_self_joins | Has_negation ->
    (Count.count ~vars:universe (compiled_circuit db q), Compiled_dnf)
