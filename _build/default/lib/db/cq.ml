type term = V of string | C of Value.t
type atom = { rel : string; args : term array; negated : bool }
type t = { atoms : atom list }

let make atoms =
  if atoms = [] then invalid_arg "Cq.make: empty query";
  if List.for_all (fun a -> a.negated) atoms then
    invalid_arg "Cq.make: all atoms negated (unsafe query)";
  { atoms }

let atom rel args = { rel; args = Array.of_list args; negated = false }
let negated_atom rel args = { rel; args = Array.of_list args; negated = true }

let is_positive q = List.for_all (fun a -> not a.negated) q.atoms

let atom_variables a =
  Array.to_list a.args
  |> List.filter_map (function V x -> Some x | C _ -> None)

let is_safe_negation q =
  let positive_vars =
    List.concat_map
      (fun a -> if a.negated then [] else atom_variables a)
      q.atoms
  in
  List.for_all
    (fun a ->
       (not a.negated)
       || List.for_all (fun x -> List.mem x positive_vars) (atom_variables a))
    q.atoms

let variables q =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun a ->
       Array.iter
         (function
           | V x ->
             if not (Hashtbl.mem seen x) then begin
               Hashtbl.replace seen x ();
               out := x :: !out
             end
           | C _ -> ())
         a.args)
    q.atoms;
  List.rev !out

let at q x =
  List.mapi (fun i a -> (i, a)) q.atoms
  |> List.filter_map (fun (i, a) ->
      if Array.exists (function V y -> y = x | C _ -> false) a.args then Some i
      else None)

let subset a b = List.for_all (fun i -> List.mem i b) a
let disjoint a b = not (List.exists (fun i -> List.mem i b) a)

let witness_non_hierarchical q =
  let vs = variables q in
  let rec pairs = function
    | [] -> None
    | x :: rest ->
      let bad =
        List.find_opt
          (fun y ->
             let ax = at q x and ay = at q y in
             not (disjoint ax ay || subset ax ay || subset ay ax))
          rest
      in
      (match bad with Some y -> Some (x, y) | None -> pairs rest)
  in
  pairs vs

let is_hierarchical q = witness_non_hierarchical q = None

let is_self_join_free q =
  let names = List.map (fun a -> a.rel) q.atoms in
  List.length names = List.length (List.sort_uniq compare names)

let check_against q db =
  List.iter
    (fun a ->
       let arity =
         try Database.arity_of db a.rel
         with Not_found ->
           invalid_arg ("Cq.check_against: unknown relation " ^ a.rel)
       in
       if arity <> Array.length a.args then
         invalid_arg ("Cq.check_against: arity mismatch for " ^ a.rel))
    q.atoms

let pp_term ppf = function
  | V x -> Format.pp_print_string ppf x
  | C v -> Format.fprintf ppf "'%a'" Value.pp v

let pp ppf q =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf a ->
       Format.fprintf ppf "%s%s(%a)" (if a.negated then "!" else "") a.rel
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
            pp_term)
         (Array.to_list a.args))
    ppf q.atoms

let to_string q = Format.asprintf "%a" pp q
