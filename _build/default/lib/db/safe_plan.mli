(** Safe-plan lineage compilation for hierarchical self-join-free CQs.

    For a hierarchical SJF query the lineage is read-once, and it can be
    built directly as a deterministic & decomposable circuit in polynomial
    time — no knowledge-compilation search needed (this is the role
    Olteanu–Huang's OBDD construction [27] plays in the paper's Claim 5.3).
    The plan recursion:

    - variable-disjoint connected components of the residual query are
      independent: decomposable AND;
    - a connected residual query has a {e root variable} occurring in all
      its atoms (hierarchical + connected guarantees one); branching on its
      possible values produces subqueries whose lineages use disjoint sets
      of tuples (SJF): variable-disjoint OR;
    - ground atoms resolve to the tuple's lineage variable (endogenous),
      [true]/[false] (exogenous present/absent).

    Together with the polynomial circuit Shapley algorithm (Theorem 4.1)
    this realizes the tractable side of the dichotomy (Theorem 5.1). *)

exception Not_safe of string

(** [lineage_circuit db q] builds the read-once lineage circuit.
    @raise Not_safe if [q] is not hierarchical or not self-join-free.
    @raise Invalid_argument if [q] does not match the schema. *)
val lineage_circuit : Database.t -> Cq.t -> Circuit.node

(** [shapley db q] is the Shapley value of every endogenous tuple of [db]
    (by lineage variable) — polynomial in the size of [db].
    @raise Not_safe as above. *)
val shapley : Database.t -> Cq.t -> (int * Rat.t) list

(** [obdd_order db q] is a variable order under which the OBDD of the
    lineage stays polynomial — the Olteanu–Huang route [27] that
    Claim 5.3 cites: variables are emitted in the left-to-right order the
    safe plan touches them, keeping each decomposition block contiguous.
    (Contrast: interleaving blocks can blow the OBDD up exponentially;
    experiment E17 measures both.)  The order contains every lineage
    variable of [db], plan-touched ones first.
    @raise Not_safe as for {!lineage_circuit}. *)
val obdd_order : Database.t -> Cq.t -> int list

(** [lineage_obdd db q] compiles the lineage to an OBDD under
    {!obdd_order} and returns it with its manager. *)
val lineage_obdd : Database.t -> Cq.t -> Obdd.manager * Obdd.node
