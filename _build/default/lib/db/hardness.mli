(** The hardness side of the dichotomy, run end to end (Section 5.3).

    The paper's reduction chain
    [#C_Q0 ≤P Shap(~C_Q0) ≤P Shap(C_~Q0) = Shap(C_Q0)] says: counting the
    models of an arbitrary positive bipartite DNF — #P-hard by
    Provan–Ball — needs nothing more than a Shapley oracle for lineages of
    the fixed non-hierarchical query [Q0 = R(x), S(x,y), T(y)].  This
    module executes that chain on concrete instances:

    + {!encode} embeds a bipartite DNF as [F_{Q0,D}] (pick [R], [T] for
      the variable parts, [S] for the edge set);
    + Lemma 3.4 asks for [Shap(F^(l,i), Z_i)]; the function [F^(l,i)]
      is realised as the lineage of [Q0] itself over the transformed
      database [Stretch.or_substituted_q0_db] (Claim 5.2 + Appendix
      B.2.2), so every oracle call is again a [Q0]-lineage Shapley
      computation;
    + the recovered count is the bipartite DNF's model count.

    The Shapley oracle itself is pluggable; benchmarks use the exponential
    reference (there is no polynomial one — that is the point). *)

(** [encode inst] builds the [Q0] database whose lineage is the positive
    bipartite DNF of [inst]: [R = {x_i}], [T = {y_j}],
    [S = edges].  Returns the database and the query.  Left variable [i]
    receives the lineage variable of tuple [R(i)], right variable [j] that
    of [T(j)] (retrievable via [Database.tuple_of_var]). *)
val encode : Bipartite.t -> Database.t * Cq.t

(** A Shapley oracle over [Q0]-databases: given a database, return the
    Shapley value of each lineage variable of [F_{Q0,D}]. *)
type q0_shapley_oracle = Database.t -> (int * Rat.t) list

(** The exponential reference oracle (Eq. (2) on the lineage). *)
val reference_oracle : q0_shapley_oracle

(** [count_via_q0_shapley ~oracle inst] counts the models of the
    bipartite DNF of [inst] using only [oracle] calls on [Q0]-databases —
    the executable hardness reduction.  The result equals
    [Bipartite.count inst]. *)
val count_via_q0_shapley :
  oracle:q0_shapley_oracle -> Bipartite.t -> Bigint.t

(** [oracle_calls inst] is the number of oracle invocations the reduction
    makes ([n^2] for [n] endogenous tuples). *)
val oracle_calls : Bipartite.t -> int
