type t = { disjuncts : Cq.t list }

let make disjuncts =
  if disjuncts = [] then invalid_arg "Ucq.make: empty union";
  { disjuncts }

let lineage db u =
  List.sort_uniq Vset.compare
    (List.concat_map (fun q -> Lineage.lineage db q) u.disjuncts)

let lineage_formula db u = Nf.pdnf_to_formula (lineage db u)

type solver = Disjoint_safe_plans | Compiled_union

(* The polynomial sufficient case: every disjunct is hierarchical and
   self-join-free, and no endogenous relation is shared between two
   disjuncts — then the disjunct lineages are variable-disjoint and the
   union is a disjoint OR of safe-plan circuits. *)
let disjoint_safe db u =
  let endogenous_relations q =
    List.sort_uniq compare
      (List.filter_map
         (fun (a : Cq.atom) ->
            match Database.kind_of db a.Cq.rel with
            | Database.Endogenous -> Some a.Cq.rel
            | Database.Exogenous -> None)
         q.Cq.atoms)
  in
  let ok_each =
    List.for_all
      (fun q -> Cq.is_hierarchical q && Cq.is_self_join_free q)
      u.disjuncts
  in
  let rec pairwise_disjoint = function
    | [] -> true
    | rels :: rest ->
      List.for_all
        (fun rels' -> List.for_all (fun r -> not (List.mem r rels')) rels)
        rest
      && pairwise_disjoint rest
  in
  ok_each && pairwise_disjoint (List.map endogenous_relations u.disjuncts)

let circuit db u =
  if disjoint_safe db u then
    ( Circuit.cor_disj
        (List.map (fun q -> Safe_plan.lineage_circuit db q) u.disjuncts),
      Disjoint_safe_plans )
  else (Compile.compile (lineage_formula db u), Compiled_union)

let shapley db u =
  let c, solver = circuit db u in
  let universe = Vset.elements (Database.lineage_vars db) in
  (Circuit_shapley.shap_direct ~vars:universe c, solver)

let probability db u ~weights =
  let c, _ = circuit db u in
  Prob.probability ~weights c
