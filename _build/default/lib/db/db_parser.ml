let fail line msg =
  invalid_arg (Printf.sprintf "Db_parser: %s on line %d" msg line)

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_value w =
  match int_of_string_opt w with
  | Some i -> Value.int i
  | None ->
    let w =
      if String.length w >= 2 && w.[0] = '\'' && w.[String.length w - 1] = '\''
      then String.sub w 1 (String.length w - 2)
      else w
    in
    Value.str w

(* Query syntax: comma-separated atoms [Name(arg, ...)]. *)
let parse_query s =
  let s = String.trim s in
  let atoms = ref [] in
  let pos = ref 0 in
  let n = String.length s in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let read_until stops =
    let start = !pos in
    while !pos < n && not (List.mem s.[!pos] stops) do
      incr pos
    done;
    String.trim (String.sub s start (!pos - start))
  in
  let rec read_atoms () =
    skip_ws ();
    if !pos >= n then ()
    else begin
      (* optional '!' for a negated atom *)
      let negated =
        if !pos < n && s.[!pos] = '!' then begin
          incr pos;
          skip_ws ();
          true
        end
        else false
      in
      let name = read_until [ '(' ] in
      if name = "" || !pos >= n then
        invalid_arg "Db_parser.parse_query: expected atom name";
      incr pos;
      (* inside parens *)
      let args = ref [] in
      let rec read_args () =
        let arg = read_until [ ','; ')' ] in
        if arg = "" then invalid_arg "Db_parser.parse_query: empty argument";
        let term =
          match int_of_string_opt arg with
          | Some i -> Cq.C (Value.int i)
          | None ->
            if arg.[0] = '\'' then Cq.C (parse_value arg)
            else Cq.V arg
        in
        args := term :: !args;
        if !pos >= n then invalid_arg "Db_parser.parse_query: unclosed atom";
        if s.[!pos] = ',' then begin
          incr pos;
          read_args ()
        end
        else incr pos (* closing paren *)
      in
      read_args ();
      let mk = if negated then Cq.negated_atom else Cq.atom in
      atoms := mk name (List.rev !args) :: !atoms;
      skip_ws ();
      if !pos < n then begin
        if s.[!pos] <> ',' then
          invalid_arg "Db_parser.parse_query: expected ',' between atoms";
        incr pos;
        read_atoms ()
      end
    end
  in
  read_atoms ();
  Cq.make (List.rev !atoms)

let parse_string text =
  let db = Database.create () in
  let query = ref None in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
       let lineno = idx + 1 in
       let line = String.trim raw in
       if line = "" || line.[0] = '#' then ()
       else begin
         match split_words line with
         | "rel" :: name :: kind :: arity :: [] ->
           let kind =
             match kind with
             | "endo" -> Database.Endogenous
             | "exo" -> Database.Exogenous
             | _ -> fail lineno "kind must be 'endo' or 'exo'"
           in
           let arity =
             match int_of_string_opt arity with
             | Some a when a >= 0 -> a
             | _ -> fail lineno "bad arity"
           in
           (try Database.declare db name ~kind ~arity
            with Invalid_argument m -> fail lineno m)
         | "row" :: name :: values ->
           let values = Array.of_list (List.map parse_value values) in
           (try ignore (Database.insert db name values)
            with Invalid_argument m -> fail lineno m)
         | "query" :: _ ->
           if !query <> None then fail lineno "duplicate query";
           let qtext =
             String.trim (String.sub line 5 (String.length line - 5))
           in
           (try query := Some (parse_query qtext)
            with Invalid_argument m -> fail lineno m)
         | _ -> fail lineno "unrecognized directive"
       end)
    lines;
  match !query with
  | None -> invalid_arg "Db_parser: no query in input"
  | Some q ->
    Cq.check_against q db;
    (db, q)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
