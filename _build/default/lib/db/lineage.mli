(** Lineage of a Boolean CQ over a database (Section 5.1).

    The lineage [F_{Q,D}] is the positive DNF over the lineage variables of
    the endogenous tuples: one clause per satisfying assignment of the
    query variables, containing the variables of the endogenous tuples the
    assignment uses (exogenous tuples contribute [true], missing tuples
    kill the assignment).  Computed by a backtracking join rather than the
    definitional [adom^{|x|}] enumeration — same function, polynomial data
    complexity with a small constant. *)

(** [lineage db q] is [F_{Q,D}] as a positive DNF (clauses deduplicated,
    not otherwise minimized — per the definition, one clause per
    assignment, so absorbing clauses may coexist; use
    [Nf.pdnf_minimize] for the minimal form).
    @raise Invalid_argument if [q] does not match the schema of [db] or
    contains negated atoms (use {!lineage_clauses}). *)
val lineage : Database.t -> Cq.t -> Nf.pdnf

(** [lineage_clauses db q] is the general lineage as a DNF with positive
    and negative literals, supporting safely negated atoms
    (Reshef–Kimelfeld–Livshits): a satisfying assignment contributes the
    positive literals of the endogenous tuples its positive atoms use and
    the negative literals of the endogenous tuples its negated atoms must
    avoid; assignments whose negated atom hits a present exogenous tuple,
    and internally contradictory clauses, are dropped.  For positive
    queries this coincides with {!lineage}.
    @raise Invalid_argument on schema mismatch or unsafe negation (a
    negated atom with a variable bound by no positive atom). *)
val lineage_clauses : Database.t -> Cq.t -> Nf.clause list

(** [lineage_formula db q] is the lineage as a formula ([false] when no
    assignment satisfies [q], [true] when one uses only exogenous
    tuples). *)
val lineage_formula : Database.t -> Cq.t -> Formula.t

(** [boolean_answer db q] is [Q(D)] with all endogenous tuples present. *)
val boolean_answer : Database.t -> Cq.t -> bool

(** [assignments db q] lists the satisfying assignments (variable,
    value) with the endogenous variables each uses — for explanation
    output. *)
val assignments : Database.t -> Cq.t -> ((string * Value.t) list * Vset.t) list
