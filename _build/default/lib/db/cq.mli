(** Boolean conjunctive queries (Section 5.1).

    [Q = ∃x ⋀_j R_j(y_j)] with [y_j] tuples of query variables and
    constants.  All query variables are implicitly existential (Boolean
    query).  Query variables are strings, written lowercase in the paper;
    they are unrelated to the integer Boolean variables of lineage. *)

type term =
  | V of string  (** query variable *)
  | C of Value.t  (** constant *)

type atom = {
  rel : string;
  args : term array;
  negated : bool;
      (** a negated atom [¬R(y)] requires the matching tuple to be absent;
          following Reshef–Kimelfeld–Livshits, negation makes the lineage a
          general (non-positive) DNF, so only the compilation-based solvers
          apply *)
}

type t = { atoms : atom list }

val make : atom list -> t

(** [atom rel args] builds a positive atom. *)
val atom : string -> term list -> atom

(** [negated_atom rel args] builds a negated atom [¬rel(args)]. *)
val negated_atom : string -> term list -> atom

(** [is_positive q] holds iff no atom is negated. *)
val is_positive : t -> bool

(** [is_safe_negation q]: every variable of a negated atom also occurs in
    some positive atom (range restriction — required for lineage
    construction). *)
val is_safe_negation : t -> bool

(** [variables q] in first-occurrence order, without duplicates. *)
val variables : t -> string list

(** [at q x] is the paper's [at(x)]: the 0-based indices of the atoms
    containing variable [x] (indices rather than atoms so that self-join
    duplicates stay distinct). *)
val at : t -> string -> int list

(** [is_hierarchical q]: for all variables [x], [y] the sets [at(x)],
    [at(y)] are disjoint or one contains the other. *)
val is_hierarchical : t -> bool

(** [is_self_join_free q]: no relation name occurs in two atoms. *)
val is_self_join_free : t -> bool

(** [check_against q db] validates relation names and arities.
    @raise Invalid_argument with a description on mismatch. *)
val check_against : t -> Database.t -> unit

(** [witness_non_hierarchical q] returns a pair of variables violating the
    hierarchy condition, if any. *)
val witness_non_hierarchical : t -> (string * string) option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
