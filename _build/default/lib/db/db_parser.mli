(** Textual format for databases and queries (used by the [shapmc] CLI and
    the examples).

    Line-based:
    {v
      # comment
      rel R endo 1        -- declare relation: name, endo|exo, arity
      row R 1             -- insert tuple (values: integers or bare words)
      rel S exo 2
      row S 1 2
      query R(x), S(x,y)  -- the Boolean CQ (one per file)
    v} *)

(** [parse_string s] parses a database-plus-query description.
    @raise Invalid_argument with a line-annotated message on error. *)
val parse_string : string -> Database.t * Cq.t

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> Database.t * Cq.t

(** [parse_query s] parses just a query, e.g. ["R(x), S(x,y), T(y)"].
    Arguments starting with a letter are variables; integer literals and
    quoted ['...'] words are constants. *)
val parse_query : string -> Cq.t
