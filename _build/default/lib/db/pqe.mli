(** Probabilistic query evaluation over tuple-independent databases.

    The companion problem the paper's introduction starts from: each
    endogenous tuple is present independently with a given probability,
    and PQE asks for the probability that the Boolean query is true.
    For hierarchical self-join-free CQs the safe-plan lineage circuit
    gives PQE in polynomial time (Dalvi–Suciu safe queries [6, 33]); in
    general we compile the lineage.

    {!shapley_via_pqe} is the prior-work reduction [13] executed at the
    database level: all tuple Shapley values from PQE calls alone — the
    baseline against which the paper's model-counting route is compared
    in experiment E14. *)

(** [probability db q ~weights] is [P(Q)] when each endogenous tuple [t]
    (with lineage variable [v]) is present independently with probability
    [weights v].  Uses the safe plan when the query is hierarchical and
    self-join-free, otherwise compiles the lineage. *)
val probability :
  Database.t -> Cq.t -> weights:(int -> Rat.t) -> Rat.t

(** [uniform_probability db q ~theta] sets every tuple's probability to
    [theta]. *)
val uniform_probability : Database.t -> Cq.t -> theta:Rat.t -> Rat.t

(** [shapley_via_pqe db q] computes every tuple's Shapley value using
    only PQE evaluations (at [n+1] distinct uniform probabilities, per
    restricted database), following Deutch et al. [13]. *)
val shapley_via_pqe : Database.t -> Cq.t -> (int * Rat.t) list
