(** Database values.

    Plain integers and strings cover ordinary databases; [VPair] provides
    the composite values used by the Appendix B.1.2 construction, which
    folds a stretched attribute pair [(z1, x)] back into a single value of
    [Dom(z1) × Dom(x)] when showing [C_~Q ⊆ C_Q] (Claim 5.2). *)

type t =
  | VInt of int
  | VStr of string
  | VPair of t * t

let compare = Stdlib.compare
let equal = Stdlib.( = )

let rec pp ppf = function
  | VInt i -> Format.pp_print_int ppf i
  | VStr s -> Format.pp_print_string ppf s
  | VPair (a, b) -> Format.fprintf ppf "(%a,%a)" pp a pp b

let to_string v = Format.asprintf "%a" pp v
let int i = VInt i
let str s = VStr s
let pair a b = VPair (a, b)
