let encode (inst : Bipartite.t) =
  let db = Database.create () in
  Stretch.declare_q0_schema db;
  (* Left part first so that lineage variables 1..a are the x_i and
     a+1..a+b the y_j. *)
  for i = 0 to inst.Bipartite.a - 1 do
    ignore (Database.insert db "R" [| Value.int i |])
  done;
  for j = 0 to inst.Bipartite.b - 1 do
    ignore (Database.insert db "T" [| Value.int j |])
  done;
  List.iter
    (fun (i, j) ->
       ignore (Database.insert db "S" [| Value.int i; Value.int j |]))
    inst.Bipartite.edges;
  (db, Stretch.q0 ())

type q0_shapley_oracle = Database.t -> (int * Rat.t) list

(* Reference oracle: compile the lineage DNF to a d-D circuit and run the
   polynomial circuit algorithm on it.  The compilation step is the
   exponential part — exactly where Theorem 5.1 says the cost must live. *)
let reference_oracle db =
  let q = Stretch.q0 () in
  let universe = Vset.elements (Database.lineage_vars db) in
  let c = Compile.compile (Lineage.lineage_formula db q) in
  Circuit_shapley.shap_direct ~vars:universe c

let count_via_q0_shapley ~oracle inst =
  let db, q = encode inst in
  let f = Lineage.lineage_formula db q in
  let universe = Vset.elements (Database.lineage_vars db) in
  let sorted = List.sort compare universe in
  let n = List.length sorted in
  let f_zero = Formula.eval_set Vset.empty f in
  Reductions.count_via_shap ~n ~f_zero ~shap_subst:(fun ~l ~pos ->
      let i = List.nth sorted pos in
      let widths v = if v = i then 1 else l in
      let db', blocks = Stretch.or_substituted_q0_db ~widths db in
      let z =
        match List.assoc_opt i blocks with
        | Some [ z ] -> z
        | _ -> failwith "Hardness: expected singleton block for kept variable"
      in
      match List.assoc_opt z (oracle db') with
      | Some v -> v
      | None -> failwith "Hardness: oracle did not report Z_i")

let oracle_calls (inst : Bipartite.t) =
  let n = inst.Bipartite.a + inst.Bipartite.b in
  n * n
