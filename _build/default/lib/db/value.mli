(** Database values.

    Plain integers and strings cover ordinary databases; [VPair] provides
    the composite values used by the Appendix B.1.2 construction, which
    folds a stretched attribute pair [(z1, x)] back into a single value of
    [Dom(z1) × Dom(x)] when proving Claim 5.2. *)

type t =
  | VInt of int
  | VStr of string
  | VPair of t * t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [int n], [str s], [pair a b] — construction shorthands. *)
val int : int -> t

val str : string -> t
val pair : t -> t -> t
