(* Backtracking join: process atoms left to right, maintaining a partial
   assignment of query variables; at each atom, scan the relation for
   tuples consistent with the assignment. *)

let matches env (a : Cq.atom) (s : Database.stored) =
  let bind acc i =
    match acc with
    | None -> None
    | Some env ->
      (match a.args.(i) with
       | Cq.C v -> if Value.equal v s.values.(i) then Some env else None
       | Cq.V x ->
         (match List.assoc_opt x env with
          | Some v -> if Value.equal v s.values.(i) then Some env else None
          | None -> Some ((x, s.values.(i)) :: env)))
  in
  let rec go acc i =
    if i >= Array.length a.args then acc else go (bind acc i) (i + 1)
  in
  go (Some env) 0

let assignments db q =
  Cq.check_against q db;
  if not (Cq.is_positive q) then
    invalid_arg "Lineage.assignments: query has negated atoms";
  let out = ref [] in
  let rec search env used = function
    | [] -> out := (env, used) :: !out
    | (a : Cq.atom) :: rest ->
      List.iter
        (fun (s : Database.stored) ->
           match matches env a s with
           | None -> ()
           | Some env' ->
             let used' =
               match s.lvar with
               | Some v -> Vset.add v used
               | None -> used
             in
             search env' used' rest)
        (Database.tuples db a.rel)
  in
  search [] Vset.empty q.atoms;
  List.rev_map (fun (env, used) -> (List.rev env, used)) !out

let lineage db q =
  List.sort_uniq Vset.compare (List.map snd (assignments db q))

(* Ground a negated atom under a full assignment and report its effect:
   [None] kills the assignment (present exogenous tuple), [Some None] is
   vacuous (absent tuple), [Some (Some v)] contributes literal ¬v. *)
let negated_effect db env (a : Cq.atom) =
  let values =
    Array.map
      (function
        | Cq.C v -> v
        | Cq.V x ->
          (match List.assoc_opt x env with
           | Some v -> v
           | None ->
             invalid_arg
               "Lineage: unsafe negation (variable not bound positively)"))
      a.args
  in
  let row =
    List.find_opt
      (fun (s : Database.stored) -> s.values = values)
      (Database.tuples db a.rel)
  in
  match (row, Database.kind_of db a.rel) with
  | None, _ -> Some None
  | Some _, Database.Exogenous -> None
  | Some s, Database.Endogenous -> Some (Some (Option.get s.lvar))

let lineage_clauses db q =
  Cq.check_against q db;
  let positive, negated =
    List.partition (fun (a : Cq.atom) -> not a.Cq.negated) q.Cq.atoms
  in
  let out = ref [] in
  let rec search env used = function
    | [] ->
      (* extend the clause with the negated atoms' literals *)
      let rec extend neg = function
        | [] ->
          if Vset.disjoint used neg then
            out := { Nf.pos = used; Nf.neg } :: !out
        | a :: rest ->
          (match negated_effect db env a with
           | None -> () (* exogenous blocker: assignment dies *)
           | Some None -> extend neg rest
           | Some (Some v) -> extend (Vset.add v neg) rest)
      in
      extend Vset.empty negated
    | (a : Cq.atom) :: rest ->
      List.iter
        (fun (s : Database.stored) ->
           match matches env a s with
           | None -> ()
           | Some env' ->
             let used' =
               match s.lvar with
               | Some v -> Vset.add v used
               | None -> used
             in
             search env' used' rest)
        (Database.tuples db a.rel)
  in
  if positive = [] then invalid_arg "Lineage: no positive atoms";
  search [] Vset.empty positive;
  (* dedupe on canonical element lists (polymorphic compare is not stable
     on balanced-tree set internals) *)
  let key (c : Nf.clause) = (Vset.elements c.Nf.pos, Vset.elements c.Nf.neg) in
  List.sort_uniq (fun a b -> compare (key a) (key b)) !out

let lineage_formula db q =
  if Cq.is_positive q then Nf.pdnf_to_formula (lineage db q)
  else Nf.dnf_to_formula (lineage_clauses db q)

let boolean_answer db q =
  Formula.eval (fun _ -> true) (lineage_formula db q)
