let dummy = Value.str "d"

let stretch_query ~is_endogenous q =
  let existing = Cq.variables q in
  let counter = ref 0 in
  let fresh_name () =
    incr counter;
    let rec try_name k =
      let name = Printf.sprintf "z$%d" k in
      if List.mem name existing then try_name (k + 1) else name
    in
    try_name !counter
  in
  let added = ref [] in
  let atoms =
    List.map
      (fun (a : Cq.atom) ->
         if is_endogenous a.rel then begin
           let z = fresh_name () in
           added := z :: !added;
           { a with Cq.args = Array.append [| Cq.V z |] a.args }
         end
         else a)
      q.Cq.atoms
  in
  (Cq.make atoms, List.rev !added)

let stretch_schema db =
  let out = Database.create () in
  List.iter
    (fun name ->
       let kind = Database.kind_of db name in
       let arity = Database.arity_of db name in
       let arity =
         match kind with
         | Database.Endogenous -> arity + 1
         | Database.Exogenous -> arity
       in
       Database.declare out name ~kind ~arity)
    (Database.relation_names db);
  out

let stretch_database_dummy db =
  let out = stretch_schema db in
  List.iter
    (fun name ->
       let kind = Database.kind_of db name in
       List.iter
         (fun (s : Database.stored) ->
            match (kind, s.lvar) with
            | Database.Exogenous, _ ->
              ignore (Database.insert out name s.values)
            | Database.Endogenous, Some v ->
              Database.insert_with_var out name
                (Array.append [| dummy |] s.values)
                ~lvar:v
            | Database.Endogenous, None -> assert false)
         (Database.tuples db name))
    (Database.relation_names db);
  out

let or_substituted_db ~widths db =
  let out = stretch_schema db in
  let supply = Fresh.make ~avoid:(Database.lineage_vars db) in
  let blocks = ref [] in
  let copy_counter = ref 0 in
  List.iter
    (fun name ->
       let kind = Database.kind_of db name in
       List.iter
         (fun (s : Database.stored) ->
            match (kind, s.lvar) with
            | Database.Exogenous, _ ->
              ignore (Database.insert out name s.values)
            | Database.Endogenous, Some v ->
              let w = widths v in
              if w < 0 then invalid_arg "Stretch.or_substituted_db: width";
              let zs = Fresh.fresh_block supply w in
              blocks := (v, zs) :: !blocks;
              List.iter
                (fun z ->
                   incr copy_counter;
                   (* Fresh first-attribute value per copy. *)
                   let zval = Value.str (Printf.sprintf "a%d" !copy_counter) in
                   Database.insert_with_var out name
                     (Array.append [| zval |] s.values)
                     ~lvar:z)
                zs
            | Database.Endogenous, None -> assert false)
         (Database.tuples db name))
    (Database.relation_names db);
  (out, List.sort compare !blocks)

let q0 () =
  Cq.make
    [ Cq.atom "R" [ Cq.V "x" ];
      Cq.atom "S" [ Cq.V "x"; Cq.V "y" ];
      Cq.atom "T" [ Cq.V "y" ] ]

let declare_q0_schema db =
  Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "S" ~kind:Database.Exogenous ~arity:2;
  Database.declare db "T" ~kind:Database.Endogenous ~arity:1

let collapse_q0 db =
  if Database.arity_of db "R" <> 2 || Database.arity_of db "T" <> 2 then
    invalid_arg "Stretch.collapse_q0: expected stretched Q0 schema";
  let out = Database.create () in
  declare_q0_schema out;
  let r_rows = Database.tuples db "R" in
  let t_rows = Database.tuples db "T" in
  let composite (s : Database.stored) = Value.pair s.values.(0) s.values.(1) in
  List.iter
    (fun (s : Database.stored) ->
       match s.lvar with
       | Some v -> Database.insert_with_var out "R" [| composite s |] ~lvar:v
       | None -> assert false)
    r_rows;
  List.iter
    (fun (s : Database.stored) ->
       match s.lvar with
       | Some v -> Database.insert_with_var out "T" [| composite s |] ~lvar:v
       | None -> assert false)
    t_rows;
  (* S_new joins the stretched R and T through the old S. *)
  List.iter
    (fun (r : Database.stored) ->
       List.iter
         (fun (t : Database.stored) ->
            if Database.mem db "S" [| r.values.(1); t.values.(1) |] then
              ignore
                (Database.insert out "S" [| composite r; composite t |]))
         t_rows)
    r_rows;
  out

let or_substituted_q0_db ~widths db =
  let stretched, blocks = or_substituted_db ~widths db in
  (collapse_q0 stretched, blocks)
