(** Unions of conjunctive queries — the paper's future-work direction.

    The conclusion conjectures that the OR-substitution technique extends
    the Shapley dichotomy to UCQs (where safety is the Dalvi–Suciu
    condition rather than hierarchy).  This module provides the
    infrastructure to experiment with that: UCQ lineage, Shapley values
    via compilation (always correct, exponential in the worst case), and
    a sufficient polynomial case — disjuncts that are hierarchical,
    self-join-free and touch pairwise disjoint endogenous relations, whose
    lineages combine by a variable-disjoint OR. *)

type t = { disjuncts : Cq.t list }

val make : Cq.t list -> t

(** [lineage db u] is the union of the disjunct lineages. *)
val lineage : Database.t -> t -> Nf.pdnf

val lineage_formula : Database.t -> t -> Formula.t

(** Which solver handled the instance. *)
type solver =
  | Disjoint_safe_plans  (** polynomial: disjoint-OR of safe plans *)
  | Compiled_union  (** general fallback via the d-DNNF compiler *)

(** [shapley db u] computes every endogenous tuple's Shapley value for
    the union, dispatching to the polynomial case when it applies. *)
val shapley : Database.t -> t -> (int * Rat.t) list * solver

(** [probability db u ~weights] — PQE for the union, same dispatch. *)
val probability : Database.t -> t -> weights:(int -> Rat.t) -> Rat.t
