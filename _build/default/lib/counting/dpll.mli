(** Exact model counting by DPLL-style search on formula ASTs.

    The counter branches on a most-frequent variable (Shannon expansion with
    constant propagation), multiplies counts across variable-disjoint
    connected components of [∧]- and [∨]-nodes (for [∨] via the non-model
    product), credits a factor [2] for every variable eliminated by
    simplification, and memoizes subproblems structurally.

    This is the stand-in for an external #SAT engine (none is available in
    this environment): polynomial on read-once-style inputs thanks to
    decomposition, exponential in the worst case — exactly the behaviour the
    benchmarks of experiments E10 and E13 measure.  Both plain counts
    ([#F]) and size-stratified counts ([#_{0..n} F], needed by the Shapley
    pipeline of Lemma 3.2) are provided. *)

(** Search statistics of one call. *)
type stats = {
  branches : int;  (** Shannon branchings performed *)
  cache_hits : int;
}

(** [count f] is [#F] over exactly the variables of [f]. *)
val count : Formula.t -> Bigint.t

(** [count_universe ~vars f] is [#F] over the universe [vars] (a superset
    of [Formula.vars f]).
    @raise Invalid_argument if [vars] misses a variable of [f]. *)
val count_universe : vars:int list -> Formula.t -> Bigint.t

(** [count_by_size f] is the vector [#_{0..n} F] over the variables of [f]. *)
val count_by_size : Formula.t -> Kvec.t

(** [count_by_size_universe ~vars f] is the vector over the universe
    [vars].  @raise Invalid_argument if [vars] misses a variable of [f]. *)
val count_by_size_universe : vars:int list -> Formula.t -> Kvec.t

(** [count_with_stats f] also reports search statistics. *)
val count_with_stats : Formula.t -> Bigint.t * stats

(** [wmc ~weights f] is the weighted model count
    [Σ_{models T} Π_{v∈T} w(v) Π_{v∉T} (1−w(v))] over the variables of
    [f] — i.e. the probability of [f] under the product distribution
    [weights], computed by the same decomposition search (the engine
    behind PQE when no circuit is wanted).  With all weights 1/2 this is
    [#F / 2^n]. *)
val wmc : weights:(int -> Rat.t) -> Formula.t -> Rat.t
