(* The invariant throughout: [counts] has length [n + 1] and entry [k] is
   the number of models of size [k] over an [n]-variable universe. *)

type t = { n : int; counts : Bigint.t array }

let make ~n counts =
  if n < 0 then invalid_arg "Kvec.make: negative universe";
  if Array.length counts <> n + 1 then invalid_arg "Kvec.make: length mismatch";
  { n; counts = Array.copy counts }

let universe_size v = v.n
let get v k = if k < 0 || k > v.n then Bigint.zero else v.counts.(k)
let to_array v = Array.copy v.counts

let total v = Array.fold_left Bigint.add Bigint.zero v.counts

let equal a b =
  a.n = b.n
  && begin
    let ok = ref true in
    Array.iteri
      (fun i c -> if not (Bigint.equal c b.counts.(i)) then ok := false)
      a.counts;
    !ok
  end

let zero ~n = { n; counts = Array.make (n + 1) Bigint.zero }
let all ~n = { n; counts = Array.init (n + 1) (fun k -> Combi.binomial n k) }
let singleton_true = { n = 1; counts = [| Bigint.zero; Bigint.one |] }
let singleton_false = { n = 1; counts = [| Bigint.one; Bigint.zero |] }
let const_true ~n = all ~n
let const_false ~n = zero ~n

let conv a b =
  let n = a.n + b.n in
  let out = Array.make (n + 1) Bigint.zero in
  for i = 0 to a.n do
    if not (Bigint.is_zero a.counts.(i)) then
      for j = 0 to b.n do
        out.(i + j) <-
          Bigint.add out.(i + j) (Bigint.mul a.counts.(i) b.counts.(j))
      done
  done;
  { n; counts = out }

let pointwise op a b =
  if a.n <> b.n then invalid_arg "Kvec: universe-size mismatch";
  { n = a.n; counts = Array.mapi (fun i c -> op c b.counts.(i)) a.counts }

let add a b = pointwise Bigint.add a b
let sub a b = pointwise Bigint.sub a b

let extend v ~extra =
  if extra < 0 then invalid_arg "Kvec.extend: negative"
  else if extra = 0 then v
  else conv v (all ~n:extra)

let complement v = sub (all ~n:v.n) v

let disjoint_or a b =
  (* Non-models multiply across disjoint universes. *)
  let non_a = complement a and non_b = complement b in
  sub (all ~n:(a.n + b.n)) (conv non_a non_b)

let weighted_sum v w =
  (* Horner from the top coefficient. *)
  let acc = ref Bigint.zero in
  for k = v.n downto 0 do
    acc := Bigint.add (Bigint.mul !acc w) v.counts.(k)
  done;
  !acc

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Bigint.pp)
    (Array.to_list v.counts)
