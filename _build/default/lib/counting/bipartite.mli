(** Model counting for positive bipartite DNF (the Provan–Ball class).

    Functions [F = ⋁_{(i,j)∈E} X_i ∧ Y_j] are the #P-hard class driving
    the hardness side of the dichotomy (Section 5.3).  The counter is
    exponential in the left part (no polynomial algorithm is expected to
    exist); it serves as the honest hard baseline of experiment E10. *)

(** A bipartite instance: [a] left variables, [b] right variables, edges
    as 0-based (left, right) index pairs. *)
type t = { a : int; b : int; edges : (int * int) list }

(** Cap on the enumerated (left) side. *)
val max_left : int

(** [make ~a ~b edges] validates and normalizes an instance.
    @raise Invalid_argument on out-of-range edges or negative sizes. *)
val make : a:int -> b:int -> (int * int) list -> t

(** [to_pdnf t] encodes as a positive DNF over variables [2i] (left) and
    [2j+1] (right). *)
val to_pdnf : t -> Nf.pdnf

(** [to_formula t] is the DNF as a formula. *)
val to_formula : t -> Formula.t

(** [all_vars t] is the full [a + b] variable universe of the encoding,
    including isolated vertices. *)
val all_vars : t -> int list

(** [count t] is [#F] over the full universe.
    @raise Invalid_argument beyond {!max_left} left vertices. *)
val count : t -> Bigint.t

(** [count_by_size t] is the stratified vector over the full universe. *)
val count_by_size : t -> Kvec.t

(** [random ~a ~b ~density ~seed] draws each edge independently with
    probability [density]. *)
val random : a:int -> b:int -> density:float -> seed:int -> t
