(* Greedy nest-point elimination.  A vertex is a nest point when its
   incident edges are linearly ordered by inclusion; removing nest points
   in any order is confluent for beta-acyclicity, so greedy suffices. *)

let all_vertices edges =
  List.fold_left Vset.union Vset.empty edges

let is_chain edges =
  let sorted =
    List.sort (fun a b -> compare (Vset.cardinal a) (Vset.cardinal b)) edges
  in
  let rec go = function
    | a :: (b :: _ as rest) -> Vset.subset a b && go rest
    | _ -> true
  in
  go sorted

let dedup edges =
  List.sort_uniq Vset.compare (List.filter (fun e -> not (Vset.is_empty e)) edges)

let is_beta_acyclic edges =
  let rec loop edges =
    let edges = dedup edges in
    let vertices = all_vertices edges in
    if Vset.is_empty vertices then true
    else begin
      let nest =
        Vset.elements vertices
        |> List.find_opt (fun v ->
            is_chain (List.filter (fun e -> Vset.mem v e) edges))
      in
      match nest with
      | None -> false
      | Some v -> loop (List.map (Vset.remove v) edges)
    end
  in
  loop edges

let cnf_hypergraph cnf =
  List.map (fun (c : Nf.clause) -> Vset.union c.Nf.pos c.Nf.neg) cnf

let is_beta_acyclic_cnf cnf = is_beta_acyclic (cnf_hypergraph cnf)
