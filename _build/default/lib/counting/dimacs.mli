(** DIMACS CNF interchange (the model-counting community's standard
    format), so the counters and the Shapley pipeline can be pointed at
    external benchmark instances.

    Supported: the classic [p cnf <vars> <clauses>] header, clauses as
    0-terminated literal lists possibly spanning lines, [c] comment lines,
    and the [c p weight <lit> <w> 0] weight lines of the weighted
    model-counting track (rational or decimal weights). *)

type instance = {
  num_vars : int;
  clauses : Nf.clause list;
  weights : (int * Rat.t) list;
      (** positive-literal weights from [c p weight] lines, if any *)
}

(** [parse_string s] parses DIMACS CNF text.
    @raise Invalid_argument with a line-annotated message on error. *)
val parse_string : string -> instance

val parse_file : string -> instance

(** [to_formula inst] is the conjunction of the clauses. *)
val to_formula : instance -> Formula.t

(** [variables inst] is [1..num_vars] (the declared universe: DIMACS
    counts over all declared variables, mentioned or not). *)
val variables : instance -> int list

(** [print inst] renders back to DIMACS text. *)
val print : instance -> string
