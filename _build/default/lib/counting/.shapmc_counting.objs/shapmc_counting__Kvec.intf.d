lib/counting/kvec.mli: Bigint Format
