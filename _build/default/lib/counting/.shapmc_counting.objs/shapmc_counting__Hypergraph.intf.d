lib/counting/hypergraph.mli: Nf Vset
