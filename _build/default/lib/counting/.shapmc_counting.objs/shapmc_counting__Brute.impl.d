lib/counting/brute.ml: Array Bigint Formula Kvec Semantics Vset
