lib/counting/kvec.ml: Array Bigint Combi Format
