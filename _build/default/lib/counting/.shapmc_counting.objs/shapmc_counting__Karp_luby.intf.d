lib/counting/karp_luby.mli: Nf
