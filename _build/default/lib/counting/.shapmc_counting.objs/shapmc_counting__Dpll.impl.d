lib/counting/dpll.ml: Formula Hashtbl Kvec List Option Rat Vset
