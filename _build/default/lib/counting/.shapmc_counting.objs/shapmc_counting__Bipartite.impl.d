lib/counting/bipartite.ml: Array Bigint Combi Kvec List Nf Random
