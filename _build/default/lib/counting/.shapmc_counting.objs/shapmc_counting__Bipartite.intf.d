lib/counting/bipartite.mli: Bigint Formula Kvec Nf
