lib/counting/brute.mli: Bigint Formula Kvec
