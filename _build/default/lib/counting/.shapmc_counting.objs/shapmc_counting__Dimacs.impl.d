lib/counting/dimacs.ml: Bigint Buffer List Nf Printf Rat String Vset
