lib/counting/dimacs.mli: Formula Nf Rat
