lib/counting/karp_luby.ml: Array Bigint Combi Float List Nf Random Stdlib Vset
