lib/counting/hypergraph.ml: List Nf Vset
