lib/counting/dpll.mli: Bigint Formula Kvec Rat
