(** Brute-force model counting by exhaustive enumeration.

    The reference oracle every other counter is tested against.  Counts
    are relative to an explicit universe, which may strictly contain the
    variables of the formula (the paper's [#F] is over the [n] declared
    variables).  Exponential: capped by [Semantics.max_enum_vars]. *)

(** [count ~vars f] is [#F] over the universe [vars]. *)
val count : vars:int list -> Formula.t -> Bigint.t

(** [count_by_size ~vars f] is the vector [#_{0..n} F] over [vars]. *)
val count_by_size : vars:int list -> Formula.t -> Kvec.t

(** [count_formula f] counts over exactly the variables of [f]. *)
val count_formula : Formula.t -> Bigint.t

(** [count_by_size_formula f] is {!count_by_size} over the variables of
    [f]. *)
val count_by_size_formula : Formula.t -> Kvec.t
