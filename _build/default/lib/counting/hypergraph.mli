(** Hypergraph acyclicity for CNF tractability classes.

    Section 3 of the paper notes that positive β-acyclic CNF is closed
    under OR-substitutions and has tractable model counting
    (Brault-Baron–Capelli–Mengel), hence tractable Shapley values by
    Corollary 7.  This module provides the recognizer: the hypergraph of
    a CNF has one vertex per variable and one hyperedge per clause, and
    is β-acyclic iff exhaustive {e nest-point elimination} (remove a
    vertex whose incident edges form a ⊆-chain; drop empty and duplicate
    edges) empties it. *)

(** [is_beta_acyclic edges] decides β-acyclicity of the hypergraph with
    the given hyperedges (variable sets). *)
val is_beta_acyclic : Vset.t list -> bool

(** [cnf_hypergraph cnf] is the hyperedge list of a clause list. *)
val cnf_hypergraph : Nf.clause list -> Vset.t list

(** [is_beta_acyclic_cnf cnf] composes the two. *)
val is_beta_acyclic_cnf : Nf.clause list -> bool
