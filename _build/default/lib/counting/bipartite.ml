(** Model counting for positive bipartite DNF (the Provan–Ball class).

    Functions [F = ⋁_{(i,j)∈E} X_i ∧ Y_j] are the #P-hard class driving the
    hardness side of the dichotomy (Section 5.3).  The counter below sums,
    over the subsets [S] of the left part, the number of right-part
    assignments avoiding the neighbourhood [N(S)] — so it is exponential in
    the left part.  It serves as the honest hard baseline of experiment
    E10; no polynomial algorithm is expected to exist (#P-hardness). *)

(** A bipartite instance: [a] left variables, [b] right variables, and
    edges as pairs of 0-based (left, right) indices. *)
type t = { a : int; b : int; edges : (int * int) list }

(** Guard: the enumeration is over [2^a] subsets. *)
let max_left = 22

let make ~a ~b edges =
  if a < 0 || b < 0 then invalid_arg "Bipartite.make: negative part size";
  List.iter
    (fun (i, j) ->
       if i < 0 || i >= a || j < 0 || j >= b then
         invalid_arg "Bipartite.make: edge out of range")
    edges;
  { a; b; edges = List.sort_uniq compare edges }

(** [to_pdnf t] encodes the instance as a positive DNF over variables
    [2i] (left) and [2j+1] (right), as in {!Nf.bipartite}. *)
let to_pdnf t =
  let d, _, _ = Nf.bipartite ~edges:t.edges in
  d

(** [to_formula t] is the formula [⋁ X_i ∧ Y_j]. *)
let to_formula t = Nf.pdnf_to_formula (to_pdnf t)

(** [all_vars t] is the full [a + b] variable universe of the encoding,
    including isolated vertices. *)
let all_vars t =
  List.init t.a (fun i -> 2 * i) @ List.init t.b (fun j -> (2 * j) + 1)

(* Right-neighbourhood bitmasks per left vertex. *)
let neighbours t =
  let nb = Array.make t.a 0 in
  List.iter (fun (i, j) -> nb.(i) <- nb.(i) lor (1 lsl j)) t.edges;
  nb

(** [count t] is [#F] over the full [a + b] universe. *)
let count t =
  if t.a > max_left then invalid_arg "Bipartite.count: left part too large";
  if t.b > 62 then invalid_arg "Bipartite.count: right part too large";
  let nb = neighbours t in
  let non_models = ref Bigint.zero in
  (* N(S) built incrementally: neigh(S) = neigh(S \ lowbit) | nb(lowbit). *)
  let memo = Array.make (1 lsl t.a) 0 in
  for s = 1 to (1 lsl t.a) - 1 do
    let low = s land -s in
    let i =
      let rec bit k = if 1 lsl k = low then k else bit (k + 1) in
      bit 0
    in
    memo.(s) <- memo.(s lxor low) lor nb.(i)
  done;
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go m 0
  in
  for s = 0 to (1 lsl t.a) - 1 do
    let blocked = popcount memo.(s) in
    non_models := Bigint.add !non_models (Combi.pow2 (t.b - blocked))
  done;
  Bigint.sub (Combi.pow2 (t.a + t.b)) !non_models

(** [count_by_size t] is the size-stratified vector over the full
    [a + b] universe. *)
let count_by_size t =
  if t.a > max_left then invalid_arg "Bipartite.count_by_size: left too large";
  let nb = neighbours t in
  let n = t.a + t.b in
  let non = Array.make (n + 1) Bigint.zero in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go m 0
  in
  for s = 0 to (1 lsl t.a) - 1 do
    let neigh = ref 0 in
    for i = 0 to t.a - 1 do
      if s land (1 lsl i) <> 0 then neigh := !neigh lor nb.(i)
    done;
    let size_s = popcount s in
    let free = t.b - popcount !neigh in
    (* Non-models extending S: pick any j of the free right vertices. *)
    for j = 0 to free do
      non.(size_s + j) <-
        Bigint.add non.(size_s + j) (Combi.binomial free j)
    done
  done;
  Kvec.sub (Kvec.all ~n) (Kvec.make ~n non)

(** [random ~a ~b ~density ~seed] draws a random instance: each of the
    [a*b] edges present independently with probability [density]. *)
let random ~a ~b ~density ~seed =
  let st = Random.State.make [| seed |] in
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      if Random.State.float st 1.0 < density then edges := (i, j) :: !edges
    done
  done;
  make ~a ~b !edges
