examples/dichotomy_tour.mli:
