examples/scores_tour.ml: Bigint Circuit_shapley Combi Compile Dpll Float Formula List Parser Power_indices Printf Prob Rat Sampling String
