examples/quickstart.mli:
