examples/circuit_pipeline.ml: Bigint Circuit Circuit_shapley Combi Compile Count Dpll Formula Kvec List Naive Obdd Or_subst Parser Printf Rat Unix
