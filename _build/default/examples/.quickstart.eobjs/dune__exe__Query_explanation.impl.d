examples/query_explanation.ml: Array Cq Database Db_parser Dichotomy Formula Lineage List Naive Printf Rat String Value
