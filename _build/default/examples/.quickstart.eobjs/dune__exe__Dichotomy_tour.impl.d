examples/dichotomy_tour.ml: Array Bigint Bipartite Cq Database Db_parser Dichotomy Formula Hardness List Printf Rat Stretch String Value
