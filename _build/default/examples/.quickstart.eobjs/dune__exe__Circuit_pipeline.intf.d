examples/circuit_pipeline.mli:
