examples/scores_tour.mli:
