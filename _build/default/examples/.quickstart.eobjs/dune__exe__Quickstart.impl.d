examples/quickstart.ml: Bigint Circuit_shapley Compile Dpll Format Formula Kvec List Naive Parser Pipeline Printf Rat String
