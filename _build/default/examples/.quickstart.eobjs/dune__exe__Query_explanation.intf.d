examples/query_explanation.mli:
