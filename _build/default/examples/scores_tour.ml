(* Attribution-score tour: Shapley vs Banzhaf vs SHAP score vs sampling.

   A toy loan-approval classifier over five Boolean features shows how
   the paper's Shapley-of-variables relates to the other attribution
   notions its related-work section discusses — including the exact sense
   in which the SHAP score generalizes it (entity all-ones, distribution
   all-zeros) and the sense in which it does not (p = 1/2).

   Run with:  dune exec examples/scores_tour.exe *)

let () = print_endline "=== Attribution scores on a toy classifier ===\n"

(* approve = (income & employed) | (guarantor & !blacklisted) | vip *)
let classifier, names =
  Parser.formula_of_string
    "(income & employed) | (guarantor & !blacklisted) | vip"

let vars = List.map fst names
let name i = List.assoc i names
let circuit = Compile.compile classifier

let print_scores label scores =
  Printf.printf "%-28s" label;
  List.iter
    (fun (i, v) -> Printf.printf " %s=%s" (name i) (Rat.to_string v))
    scores;
  print_newline ()

let () =
  Printf.printf "classifier: %s\n" (Formula.to_string classifier);
  Printf.printf "models: %s of %s\n\n"
    (Bigint.to_string (Dpll.count_universe ~vars classifier))
    (Bigint.to_string (Combi.pow2 (List.length vars)));
  print_scores "Shapley (this paper):"
    (Circuit_shapley.shap_direct ~vars circuit);
  print_scores "Banzhaf:" (Power_indices.banzhaf_circuit ~vars circuit);
  print_scores "SHAP (e=1, p=1/2):"
    (Prob.shap_score ~weights:Prob.uniform_half ~entity:(fun _ -> true) ~vars
       circuit);
  print_scores "SHAP (e=1, p=0):"
    (Prob.shap_score ~weights:(fun _ -> Rat.zero) ~entity:(fun _ -> true)
       ~vars circuit);
  print_endline
    "\n(SHAP at e=1, p=0 reproduces the Shapley value exactly; p=1/2 does\n\
     not — the distinction the paper's related-work section insists on.)"

(* A specific applicant: explain the decision for their feature vector. *)
let () =
  print_endline "\n--- Explaining one applicant ---";
  (* income=1, employed=0, guarantor=1, blacklisted=0, vip=0 *)
  let entity_map =
    [ ("income", true); ("employed", false); ("guarantor", true);
      ("blacklisted", false); ("vip", false) ]
  in
  let entity i = List.assoc (name i) entity_map in
  Printf.printf "applicant: %s\n"
    (String.concat ", "
       (List.map (fun (n, b) -> Printf.sprintf "%s=%b" n b) entity_map));
  Printf.printf "decision: %b\n"
    (Formula.eval (fun i -> entity i) classifier);
  let weights _ = Rat.of_ints 1 2 in
  print_scores "SHAP for this applicant:"
    (Prob.shap_score ~weights ~entity ~vars circuit);
  print_endline
    "(positive score = pushes toward approval relative to the population)"

(* Interaction indices: which feature pairs work together? *)
let () =
  print_endline "\n--- Pairwise Shapley interactions ---";
  let pairs = [ (1, 2); (3, 4); (1, 5) ] in
  List.iter
    (fun (i, j) ->
       let v = Circuit_shapley.interaction ~vars circuit i j in
       Printf.printf "  I(%s, %s) = %-8s (%s)\n" (name i) (name j)
         (Rat.to_string v)
         (match Rat.sign v with
          | s when s > 0 -> "complementary"
          | 0 -> "independent"
          | _ -> "substitutive"))
    pairs

(* Approximation: how many samples to get close to exact Shapley. *)
let () =
  print_endline "\n--- Monte-Carlo approximation ---";
  let exact = Circuit_shapley.shap_direct ~vars circuit in
  Printf.printf "Hoeffding bound for eps=0.05, delta=0.05: %d samples\n"
    (Sampling.samples_for ~eps:0.05 ~delta:0.05);
  List.iter
    (fun m ->
       let est = Sampling.shap_sample ~seed:1 ~samples:m ~vars classifier in
       let worst =
         List.fold_left
           (fun acc e ->
              let truth = Rat.to_float (List.assoc e.Sampling.variable exact) in
              Float.max acc (Float.abs (e.Sampling.value -. truth)))
           0.0 est
       in
       Printf.printf "  %6d samples: max error %.5f\n" m worst)
    [ 100; 1000; 10000 ]
