(* Query-answer explanation: the paper's motivating database scenario.

   A small supply-chain database answers the Boolean query "is some
   high-priority order served from a warehouse in a region with an active
   carrier?".  The Shapley values of the input tuples quantify each
   tuple's contribution to the answer — the explanation framework of
   Deutch et al. / Livshits et al. that the paper builds on.

   The query is hierarchical, so the whole computation runs through the
   polynomial safe-plan circuit (tractable side of Theorem 5.1).

   Run with:  dune exec examples/query_explanation.exe *)

let () =
  print_endline "=== Explaining a query answer with Shapley values ===\n"

(* Schema: Order(order, warehouse) endogenous — did this order matter?
           Stock(warehouse, item)  endogenous — did this stock line matter?
           Located(warehouse, region) exogenous — facts taken for granted. *)
let db = Database.create ()

let () =
  Database.declare db "Order" ~kind:Database.Endogenous ~arity:2;
  Database.declare db "Stock" ~kind:Database.Endogenous ~arity:2;
  Database.declare db "Located" ~kind:Database.Exogenous ~arity:2;
  let order o w = ignore (Database.insert db "Order" [| Value.str o; Value.str w |]) in
  let stock w i = ignore (Database.insert db "Stock" [| Value.str w; Value.str i |]) in
  let located w r =
    ignore (Database.insert db "Located" [| Value.str w; Value.str r |])
  in
  order "o1" "berlin";
  order "o2" "berlin";
  order "o3" "zurich";
  stock "berlin" "widget";
  stock "berlin" "gadget";
  stock "zurich" "widget";
  stock "seattle" "widget";
  located "berlin" "eu";
  located "zurich" "eu";
  located "seattle" "us"

(* Q: ∃o ∃w ∃i  Order(o, w) ∧ Stock(w, i) — some order is served from a
   warehouse that has stock.  at(w) spans both atoms, at(o) ⊂ at(w),
   at(i) ⊂ at(w): hierarchical. *)
let q = Db_parser.parse_query "Order(o, w), Stock(w, i)"

let describe v =
  let rel, tup = Database.tuple_of_var db v in
  Printf.sprintf "%s(%s)" rel
    (String.concat ", " (List.map Value.to_string (Array.to_list tup)))

let () =
  Printf.printf "Query: %s\n" (Cq.to_string q);
  Printf.printf "Answer: %b\n" (Lineage.boolean_answer db q);
  (match Dichotomy.classify q with
   | Dichotomy.Hierarchical ->
     print_endline "Classification: hierarchical -> polynomial (Theorem 5.1)"
   | _ -> print_endline "Classification: unexpected!");
  let lineage = Lineage.lineage_formula db q in
  Printf.printf "Lineage: %s\n\n" (Formula.to_string lineage);
  let shap, solver = Dichotomy.shapley db q in
  Printf.printf "Solver: %s\n"
    (match solver with
     | Dichotomy.Safe_plan_circuit -> "safe-plan read-once circuit"
     | Dichotomy.Compiled_dnf -> "compiled DNF");
  print_endline "Tuple contributions, most influential first:";
  let ranked = List.sort (fun (_, a) (_, b) -> Rat.compare b a) shap in
  List.iter
    (fun (v, value) ->
       Printf.printf "  %-24s %-8s (~ %.4f)\n" (describe v) (Rat.to_string value)
         (Rat.to_float value))
    ranked;
  Printf.printf "  %-24s %s (= F(1) - F(0), Prop. 5)\n" "sum"
    (Rat.to_string (Naive.shap_sum shap));

  (* Sanity: the polynomial result equals the exponential reference. *)
  let reference = Dichotomy.shapley_brute db q in
  let agree =
    List.for_all2
      (fun (i, x) (j, y) -> i = j && Rat.equal x y)
      (List.sort compare shap) (List.sort compare reference)
  in
  Printf.printf "\nCross-check against the exponential reference: %b\n" agree

(* What-if: counterfactual ranking after removing the top tuple. *)
let () =
  print_endline "\n--- What-if: drop the most influential tuple ---";
  let shap, _ = Dichotomy.shapley db q in
  let top, _ = List.hd (List.sort (fun (_, a) (_, b) -> Rat.compare b a) shap) in
  Printf.printf "Dropping %s and recomputing:\n" (describe top);
  let db' = Database.create () in
  Database.declare db' "Order" ~kind:Database.Endogenous ~arity:2;
  Database.declare db' "Stock" ~kind:Database.Endogenous ~arity:2;
  Database.declare db' "Located" ~kind:Database.Exogenous ~arity:2;
  List.iter
    (fun name ->
       List.iter
         (fun (s : Database.stored) ->
            match s.lvar with
            | Some v when v = top -> ()
            | _ -> ignore (Database.insert db' name s.values))
         (Database.tuples db name))
    [ "Order"; "Stock"; "Located" ];
  let shap', _ = Dichotomy.shapley db' q in
  List.iter
    (fun (v, value) ->
       let rel, tup = Database.tuple_of_var db' v in
       Printf.printf "  %s(%s)  %s\n" rel
         (String.concat ", " (List.map Value.to_string (Array.to_list tup)))
         (Rat.to_string value))
    (List.sort (fun (_, a) (_, b) -> Rat.compare b a) shap')
