(* Knowledge-compilation pipeline (Section 4 / Theorem 4.1).

   Compiles a non-trivial formula into an OBDD and into a d-DNNF-style
   circuit, computes Shapley values polynomially on the circuit, shows the
   Lemma 9 OR-substitution at work, and demonstrates the asymptotic gap
   against the factorial-time definition.

   Run with:  dune exec examples/circuit_pipeline.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* A chain of implications with a twist: readable but not read-once. *)
let formula n =
  let clause i =
    Formula.disj2
      (Formula.not_ (Formula.var i))
      (Formula.disj2 (Formula.var (i + 1)) (Formula.var ((i mod 3) + 1)))
  in
  Formula.and_ (List.init (n - 1) (fun i -> clause (i + 1)))

let () =
  print_endline "=== From functions to circuits (Theorem 4.1) ===\n";
  let n = 14 in
  let f = formula n in
  let vars = List.init n succ in
  Printf.printf "Formula over %d variables, size %d\n" n (Formula.size f);

  (* Compile both ways. *)
  let (circuit, cstats), t_compile = time (fun () -> Compile.compile_with_stats f) in
  Printf.printf "d-DNNF compiler: %d gates (%d Shannon expansions) in %.3fs\n"
    (Circuit.size circuit) cstats.Compile.expansions t_compile;
  let m = Obdd.create_manager ~order:vars in
  let obdd, t_obdd = time (fun () -> Obdd.of_formula m f) in
  Printf.printf "OBDD:            %d nodes in %.3fs\n" (Obdd.size obdd) t_obdd;

  (* Counting agrees everywhere. *)
  let c1 = Count.count ~vars circuit in
  let c2 = Obdd.count m ~vars obdd in
  let c3 = Dpll.count_universe ~vars f in
  Printf.printf "\n#F: circuit=%s obdd=%s dpll=%s\n" (Bigint.to_string c1)
    (Bigint.to_string c2) (Bigint.to_string c3);

  (* Shapley on the circuit: polynomial. *)
  let shap_c, t_c = time (fun () -> Circuit_shapley.shap_direct ~vars circuit) in
  Printf.printf "\nShapley on circuit (%d vars): %.4fs\n" n t_c;
  List.iteri
    (fun idx (i, v) ->
       if idx < 4 then Printf.printf "  x%-3d %-12s (~ %.4f)\n" i (Rat.to_string v) (Rat.to_float v))
    shap_c;
  Printf.printf "  ... (%d more)\n" (n - 4);

  (* Versus the definitional algorithm, where feasible. *)
  let small = 7 in
  let fs = formula small in
  let svars = List.init small succ in
  let _, t_perm = time (fun () -> Naive.shap_permutations ~vars:svars fs) in
  let _, t_circ =
    time (fun () -> Circuit_shapley.shap_direct ~vars:svars (Compile.compile fs))
  in
  Printf.printf
    "\nAt n=%d: permutations (n! terms) %.4fs vs circuit %.4fs\n" small t_perm
    t_circ;
  Printf.printf "At n=%d the permutation algorithm would need %s terms.\n" n
    (Bigint.to_string (Combi.factorial n))

(* Lemma 9: OR-substitution directly on the circuit. *)
let () =
  print_endline "\n=== Lemma 9: OR-substitution on circuits ===";
  let f = Parser.formula_of_string_exn "x1 & (x2 | !x3)" in
  let c = Compile.compile f in
  Printf.printf "circuit for %s: %d gates\n" (Formula.to_string f)
    (Circuit.size c);
  List.iter
    (fun l ->
       let c', _ = Or_subst.uniform_or ~l c in
       Printf.printf
         "  width %-2d -> %3d gates, still deterministic: %b, #models = %s\n" l
         (Circuit.size c')
         (Circuit.check_deterministic ~max_vars:12 c')
         (Bigint.to_string (Count.count_circuit c')))
    [ 1; 2; 3; 4 ];
  (* Claim 3.5 read off the circuit counts *)
  let kv = Count.count_by_size ~vars:[ 1; 2; 3 ] c in
  print_endline "  Claim 3.5 check: #F^(l) = sum_k (2^l-1)^k #_k F";
  List.iter
    (fun l ->
       let c', _ = Or_subst.uniform_or ~l c in
       let lhs = Count.count_circuit c' in
       let rhs = Kvec.weighted_sum kv (Bigint.two_pow_minus_one l) in
       Printf.printf "    l=%d: %s = %s  %b\n" l (Bigint.to_string lhs)
         (Bigint.to_string rhs) (Bigint.equal lhs rhs))
    [ 1; 2; 3; 4 ]
