(* A tour of Section 5: the dichotomy, stretching, and the hardness
   reduction run for real.

   Run with:  dune exec examples/dichotomy_tour.exe *)

let () = print_endline "=== The Theorem 5.1 dichotomy, end to end ===\n"

(* 1. Classification of a gallery of queries. *)
let () =
  print_endline "Classification:";
  List.iter
    (fun s ->
       let q = Db_parser.parse_query s in
       let verdict =
         match Dichotomy.classify q with
         | Dichotomy.Hierarchical -> "hierarchical -> FP"
         | Dichotomy.Non_hierarchical (x, y) ->
           Printf.sprintf "non-hierarchical on (%s,%s) -> FP^#P-hard" x y
         | Dichotomy.Has_self_joins -> "self-joins -> outside the dichotomy"
         | Dichotomy.Has_negation -> "negated atoms -> compilation solver"
       in
       Printf.printf "  %-34s %s\n" s verdict)
    [ "R(x)";
      "R(x), S(x, y)";
      "R(x), S(x, y), T(y)";
      "R(x, y), S(y, z), T(z, x)";
      "A(x), B(x, y), C(x, y, z)";
      "R(x), R(y)" ]

(* 2. Stretching (Definition 10) preserves hierarchy (Lemma 15). *)
let () =
  print_endline "\nStretching (endogenous R, T; exogenous S):";
  List.iter
    (fun s ->
       let q = Db_parser.parse_query s in
       let qt, _ =
         Stretch.stretch_query ~is_endogenous:(fun n -> n <> "S") q
       in
       Printf.printf "  %-26s ->  %-38s hierarchy preserved: %b\n" s
         (Cq.to_string qt)
         (Cq.is_hierarchical q = Cq.is_hierarchical qt))
    [ "R(x), S(x, y)"; "R(x), S(x, y), T(y)" ]

(* 3. The hardness chain on a concrete bipartite instance: count the
   models of a positive bipartite DNF using ONLY a Shapley oracle over
   lineages of Q0 = R(x), S(x,y), T(y). *)
let () =
  print_endline "\nHardness reduction (Claim 5.2 + Lemma 3.4), executed:";
  let inst =
    Bipartite.make ~a:3 ~b:2 [ (0, 0); (0, 1); (1, 0); (2, 1) ]
  in
  let f = Bipartite.to_formula inst in
  Printf.printf "  bipartite DNF: %s\n" (Formula.to_string f);
  Printf.printf "  direct count:  %s\n" (Bigint.to_string (Bipartite.count inst));
  Printf.printf "  oracle calls:  %d Shapley computations on Q0-lineages\n"
    (Hardness.oracle_calls inst);
  let via =
    Hardness.count_via_q0_shapley ~oracle:Hardness.reference_oracle inst
  in
  Printf.printf "  via Shapley:   %s\n" (Bigint.to_string via);
  Printf.printf "  agreement:     %b\n"
    (Bigint.equal via (Bipartite.count inst))

(* 4. Both sides of the dichotomy on the same data. *)
let () =
  print_endline "\nSame database, hierarchical vs non-hierarchical query:";
  let db = Database.create () in
  Stretch.declare_q0_schema db;
  List.iter (fun i -> ignore (Database.insert db "R" [| Value.int i |])) [ 1; 2; 3 ];
  List.iter (fun j -> ignore (Database.insert db "T" [| Value.int j |])) [ 1; 2 ];
  List.iter
    (fun (i, j) -> ignore (Database.insert db "S" [| Value.int i; Value.int j |]))
    [ (1, 1); (1, 2); (2, 1); (3, 2) ];
  let run s =
    let q = Db_parser.parse_query s in
    let shap, solver = Dichotomy.shapley db q in
    Printf.printf "  %-24s solver: %-22s top tuple: %s\n" s
      (match solver with
       | Dichotomy.Safe_plan_circuit -> "safe-plan (poly)"
       | Dichotomy.Compiled_dnf -> "compiled DNF (exp)")
      (match List.sort (fun (_, a) (_, b) -> Rat.compare b a) shap with
       | (v, value) :: _ ->
         let rel, tup = Database.tuple_of_var db v in
         Printf.sprintf "%s(%s) = %s" rel
           (String.concat "," (List.map Value.to_string (Array.to_list tup)))
           (Rat.to_string value)
       | [] -> "none")
  in
  run "R(x), S(x, y)";
  run "R(x), S(x, y), T(y)"
