(* Quickstart: the paper's running example, end to end.

   Builds F = X1 ∧ (X2 ∨ ¬X3) (Example 2), prints the permutation table,
   computes the Shapley values with five different algorithms — from the
   exponential definition to the polynomial circuit algorithm to the
   oracle reductions of Theorem 3.1 — and runs the reverse direction:
   model counting using only a Shapley oracle.

   Run with:  dune exec examples/quickstart.exe *)

let () = print_endline "=== shapmc quickstart: Example 2 of the paper ==="

let f = Parser.formula_of_string_exn "x1 & (x2 | !x3)"
let vars = [ 1; 2; 3 ]

let print_shap label shap =
  Printf.printf "%-28s %s\n" label
    (String.concat "  "
       (List.map (fun (i, v) -> Printf.sprintf "x%d=%s" i (Rat.to_string v)) shap))

(* The permutation table of Example 2. *)
let () =
  Printf.printf "\nF = %s\n\n" (Formula.to_string f);
  print_endline "Permutation table (marginal contributions):";
  print_endline "  permutation    x1  x2  x3";
  List.iter
    (fun (pi, row) ->
       Printf.printf "  (%s)     %s\n"
         (String.concat ", " (List.map string_of_int pi))
         (String.concat "  " (List.map (Printf.sprintf "%+d") row)))
    (Naive.permutation_table ~vars f)

(* Shapley values, five ways. *)
let () =
  print_endline "\nShapley values (expected: 5/6, 1/3, -1/6):";
  print_shap "Eq.(1) permutations:" (Naive.shap_permutations ~vars f);
  print_shap "Eq.(2) subsets:" (Naive.shap_subsets ~vars f);
  print_shap "Lemma 3.2+3.3 over DPLL #:"
    (Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle ~vars f);
  let circuit = Compile.compile f in
  print_shap "circuit, direct (Thm 4.1):"
    (Circuit_shapley.shap_direct ~vars circuit);
  print_shap "circuit, via OR-subst:"
    (Circuit_shapley.shap_via_reduction ~vars circuit)

(* Model counting, including through a Shapley oracle (Lemma 3.4). *)
let () =
  print_endline "\nModel counting (expected: #F = 3, by size 0,1,1,1):";
  let kv = Dpll.count_by_size_universe ~vars f in
  Printf.printf "  DPLL:                #F = %s, by size = %s\n"
    (Bigint.to_string (Kvec.total kv))
    (Format.asprintf "%a" Kvec.pp kv);
  Printf.printf "  via Shapley oracle:  #F = %s   (Lemma 3.4)\n"
    (Bigint.to_string
       (Pipeline.count_via_shap_oracle ~oracle:Pipeline.shap_oracle_of_subsets
          ~vars f));
  Printf.printf "  full roundtrip:      #F = %s   (# -> Shap -> #)\n"
    (Bigint.to_string (Pipeline.roundtrip_count ~vars f))

(* Proposition 5: the values sum to F(1) − F(0). *)
let () =
  let shap = Naive.shap_subsets ~vars f in
  Printf.printf "\nProposition 5: sum of Shapley values = %s = F(1) - F(0)\n"
    (Rat.to_string (Naive.shap_sum shap))
