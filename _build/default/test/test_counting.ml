(** Tests for k-vectors, brute-force counting, the DPLL counter and the
    bipartite counter. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let parse = Parser.formula_of_string_exn

let kvec_of_ints n l = Kvec.make ~n (Array.of_list (List.map bi l))

let kvec_tests =
  [ t "example 2 vector" (fun () ->
        Alcotest.check kvec "(0,1,1,1)"
          (kvec_of_ints 3 [ 0; 1; 1; 1 ])
          (Brute.count_by_size ~vars:example2_vars example2_formula));
    t "total" (fun () ->
        Alcotest.check bigint "3" (bi 3)
          (Kvec.total (kvec_of_ints 3 [ 0; 1; 1; 1 ])));
    t "all and zero" (fun () ->
        Alcotest.check kvec "all(3)" (kvec_of_ints 3 [ 1; 3; 3; 1 ]) (Kvec.all ~n:3);
        Alcotest.check kvec "zero(2)" (kvec_of_ints 2 [ 0; 0; 0 ]) (Kvec.zero ~n:2));
    t "conv = independent conjunction" (fun () ->
        (* X over {X} times Y over {Y}: X∧Y over {X,Y} = (0,0,1) *)
        Alcotest.check kvec "x&y"
          (kvec_of_ints 2 [ 0; 0; 1 ])
          (Kvec.conv Kvec.singleton_true Kvec.singleton_true));
    t "extend smooths with binomials" (fun () ->
        (* X over {X} extended by 2 free vars: #_k = C(2,k-1) *)
        Alcotest.check kvec "x + 2 free"
          (kvec_of_ints 3 [ 0; 1; 2; 1 ])
          (Kvec.extend Kvec.singleton_true ~extra:2));
    t "complement" (fun () ->
        Alcotest.check kvec "!x"
          Kvec.singleton_false
          (Kvec.complement Kvec.singleton_true));
    t "disjoint_or" (fun () ->
        (* X ∨ Y over {X,Y}: models {X},{Y},{XY} → (0,2,1) *)
        Alcotest.check kvec "x|y"
          (kvec_of_ints 2 [ 0; 2; 1 ])
          (Kvec.disjoint_or Kvec.singleton_true Kvec.singleton_true));
    t "weighted_sum is claim 3.5 rhs" (fun () ->
        (* Σ (2^2−1)^k #_k for example 2: 0 + 3 + 9 + 27 = 39 *)
        Alcotest.check bigint "l=2" (bi 39)
          (Kvec.weighted_sum
             (kvec_of_ints 3 [ 0; 1; 1; 1 ])
             (Bigint.two_pow_minus_one 2)));
    t "mismatched universes rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Kvec.add (Kvec.all ~n:2) (Kvec.all ~n:3));
             false
           with Invalid_argument _ -> true));
    qtest "conv commutes and respects totals" ~count:60
      (QCheck.pair (arb_formula ~nvars:3 ~depth:3) (arb_formula ~nvars:3 ~depth:3))
      (fun (f, g) ->
         (* move g to fresh variables so universes are disjoint *)
         let g = Formula.rename (fun v -> v + 10) g in
         let vf = Vset.elements (Formula.vars f) in
         let vg = Vset.elements (Formula.vars g) in
         QCheck.assume (vf <> [] && vg <> []);
         let a = Brute.count_by_size ~vars:vf f in
         let b = Brute.count_by_size ~vars:vg g in
         Kvec.equal (Kvec.conv a b) (Kvec.conv b a)
         && Bigint.equal
              (Kvec.total (Kvec.conv a b))
              (Bigint.mul (Kvec.total a) (Kvec.total b)));
    qtest "extend composes" ~count:60 (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let kv = Brute.count_by_size ~vars f in
         Kvec.equal
           (Kvec.extend (Kvec.extend kv ~extra:2) ~extra:3)
           (Kvec.extend kv ~extra:5));
    qtest "complement involutive; disjoint_or = conv on complements" ~count:60
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let kv = Brute.count_by_size ~vars f in
         Kvec.equal kv (Kvec.complement (Kvec.complement kv)))
  ]

let brute_tests =
  [ t "unused universe variables double the count" (fun () ->
        Alcotest.check bigint "x1 over {1,2}" (bi 2)
          (Brute.count ~vars:[ 1; 2 ] (Formula.var 1)));
    t "constants" (fun () ->
        Alcotest.check bigint "true over 3" (bi 8)
          (Brute.count ~vars:[ 1; 2; 3 ] Formula.tru);
        Alcotest.check bigint "false" Bigint.zero
          (Brute.count ~vars:[ 1; 2; 3 ] Formula.fls))
  ]

let dpll_tests =
  [ t "agrees on example 2" (fun () ->
        Alcotest.check kvec "kvec"
          (Brute.count_by_size ~vars:example2_vars example2_formula)
          (Dpll.count_by_size_universe ~vars:example2_vars example2_formula));
    t "universe check" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Dpll.count_universe ~vars:[ 2 ] (Formula.var 1));
             false
           with Invalid_argument _ -> true));
    t "handles wide read-once formulas (beyond brute force)" (fun () ->
        (* (x1|x2) & (x3|x4) & ... 20 clauses, 40 vars: count = 3^20 *)
        let clauses =
          List.init 20 (fun i ->
              Formula.disj2 (Formula.var ((2 * i) + 1)) (Formula.var ((2 * i) + 2)))
        in
        let f = Formula.and_ clauses in
        Alcotest.check bigint "3^20"
          (Bigint.pow (bi 3) 20)
          (Dpll.count f));
    t "stats reports work" (fun () ->
        (* a single connected component, so the counter must branch *)
        let f = parse "x1 & x2 | x2 & x3" in
        let n, stats = Dpll.count_with_stats f in
        Alcotest.check bigint "count" (bi 3) n;
        Alcotest.(check bool) "branched" true (stats.Dpll.branches >= 1);
        (* a variable-disjoint disjunction decomposes without branching *)
        let g = parse "x1 & x2 | x3 & x4" in
        let n', stats' = Dpll.count_with_stats g in
        Alcotest.check bigint "count'" (bi 7) n';
        Alcotest.(check int) "no branches" 0 stats'.Dpll.branches);
    qtest "dpll = brute (count)" ~count:80 (arb_formula ~nvars:6 ~depth:5)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         Bigint.equal (Brute.count ~vars f) (Dpll.count_universe ~vars f));
    qtest "dpll = brute (stratified)" ~count:80 (arb_formula ~nvars:6 ~depth:5)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         Kvec.equal
           (Brute.count_by_size ~vars f)
           (Dpll.count_by_size_universe ~vars f));
    qtest "pdnf counting agrees" ~count:60 (arb_pdnf ~nvars:6 ~clauses:4)
      (fun d ->
         let f = Nf.pdnf_to_formula d in
         let vars = Vset.elements (Nf.pdnf_vars d) in
         QCheck.assume (vars <> []);
         Bigint.equal (Brute.count ~vars f) (Dpll.count_universe ~vars f))
  ]

let bipartite_tests =
  [ t "triangle-free example" (fun () ->
        (* edges (0,0),(0,1),(1,1) over 2+2 vars; count computed by hand
           via brute force below *)
        let inst = Bipartite.make ~a:2 ~b:2 [ (0, 0); (0, 1); (1, 1) ] in
        let f = Bipartite.to_formula inst in
        let vars = Bipartite.all_vars inst in
        Alcotest.check bigint "count"
          (Brute.count ~vars f)
          (Bipartite.count inst));
    t "no edges means no models" (fun () ->
        let inst = Bipartite.make ~a:3 ~b:2 [] in
        Alcotest.check bigint "0" Bigint.zero (Bipartite.count inst));
    t "complete bipartite" (fun () ->
        (* K_{1,1}: F = X∧Y, count 1 over 2 vars *)
        let inst = Bipartite.make ~a:1 ~b:1 [ (0, 0) ] in
        Alcotest.check bigint "1" Bigint.one (Bipartite.count inst));
    t "edge out of range rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Bipartite.make ~a:1 ~b:1 [ (1, 0) ]);
             false
           with Invalid_argument _ -> true));
    t "isolated vertices count as free variables" (fun () ->
        (* a=2,b=1, edge (0,0): F = X0∧Y0 over 3 vars → count 2 *)
        let inst = Bipartite.make ~a:2 ~b:1 [ (0, 0) ] in
        Alcotest.check bigint "2" (bi 2) (Bipartite.count inst));
    qtest "bipartite counter = brute force" ~count:40
      (QCheck.make
         QCheck.Gen.(
           let* a = int_range 1 4 in
           let* b = int_range 1 4 in
           let* seed = int_range 0 10000 in
           return (a, b, seed)))
      (fun (a, b, seed) ->
         let inst = Bipartite.random ~a ~b ~density:0.4 ~seed in
         let f = Bipartite.to_formula inst in
         let vars = Bipartite.all_vars inst in
         Bigint.equal (Brute.count ~vars f) (Bipartite.count inst))
    ;
    qtest "bipartite stratified = brute force" ~count:25
      (QCheck.make
         QCheck.Gen.(
           let* a = int_range 1 4 in
           let* b = int_range 1 4 in
           let* seed = int_range 0 10000 in
           return (a, b, seed)))
      (fun (a, b, seed) ->
         let inst = Bipartite.random ~a ~b ~density:0.5 ~seed in
         let f = Bipartite.to_formula inst in
         let vars = Bipartite.all_vars inst in
         Kvec.equal (Brute.count_by_size ~vars f) (Bipartite.count_by_size inst))
  ]

let karp_luby_tests =
  [ t "exact on a single clause" (fun () ->
        (* F = x1 & x2 over 4 vars: #F = 4; single clause means every
           sample hits (its clause is always first), so the estimate is
           exactly U = 2^(n-2). *)
        let d = [ Vset.of_list [ 1; 2 ] ] in
        let est =
          Karp_luby.count_samples ~seed:1 ~samples:50 ~vars:[ 1; 2; 3; 4 ] d
        in
        Alcotest.(check (float 0.001)) "exact" 4.0 est.Karp_luby.value);
    t "sample bound shape" (fun () ->
        let a = Karp_luby.sample_bound ~clauses:5 ~eps:0.1 ~delta:0.05 in
        let b = Karp_luby.sample_bound ~clauses:10 ~eps:0.1 ~delta:0.05 in
        Alcotest.(check bool) "linear in m" true (b >= 2 * a - 1);
        Alcotest.(check bool) "rejects eps=0" true
          (try
             ignore (Karp_luby.sample_bound ~clauses:1 ~eps:0.0 ~delta:0.5);
             false
           with Invalid_argument _ -> true));
    t "constant DNF rejected" (fun () ->
        Alcotest.(check bool) "empty" true
          (try
             ignore (Karp_luby.count_samples ~samples:10 ~vars:[ 1 ] []);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "true clause" true
          (try
             ignore
               (Karp_luby.count_samples ~samples:10 ~vars:[ 1 ]
                  [ Vset.empty ]);
             false
           with Invalid_argument _ -> true));
    qtest "(eps, delta) guarantee holds empirically" ~count:15
      (arb_pdnf ~nvars:8 ~clauses:5)
      (fun d ->
         let d = Nf.pdnf_minimize d in
         QCheck.assume (d <> [] && not (List.exists Vset.is_empty d));
         let vars = List.init 10 succ in
         let exact =
           Bigint.to_float (Brute.count ~vars (Nf.pdnf_to_formula d))
         in
         let est = Karp_luby.count ~seed:7 ~eps:0.2 ~delta:0.05 ~vars d in
         Float.abs (est.Karp_luby.value -. exact) <= 0.2 *. exact);
    qtest "fixed-sample estimates converge" ~count:10
      (QCheck.make QCheck.Gen.(int_range 0 9999))
      (fun seed ->
         let inst = Bipartite.random ~a:4 ~b:4 ~density:0.4 ~seed in
         QCheck.assume (inst.Bipartite.edges <> []);
         let d = Bipartite.to_pdnf inst in
         let vars = Bipartite.all_vars inst in
         let exact = Bigint.to_float (Bipartite.count inst) in
         let est = Karp_luby.count_samples ~seed ~samples:20000 ~vars d in
         Float.abs (est.Karp_luby.value -. exact) <= 0.15 *. exact +. 1.0)
  ]

let suite =
  kvec_tests @ brute_tests @ dpll_tests @ bipartite_tests @ karp_luby_tests
