(** Tests for the formula AST, smart constructors, substitutions, the
    parser and normal forms. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let v = Formula.var
let parse = Parser.formula_of_string_exn

let smart_constructor_tests =
  [ t "constants fold" (fun () ->
        Alcotest.check formula "and [] = 1" Formula.tru (Formula.and_ []);
        Alcotest.check formula "or [] = 0" Formula.fls (Formula.or_ []);
        Alcotest.check formula "and absorbs 0" Formula.fls
          (Formula.and_ [ v 1; Formula.fls ]);
        Alcotest.check formula "or absorbs 1" Formula.tru
          (Formula.or_ [ v 1; Formula.tru ]);
        Alcotest.check formula "and drops 1" (v 1)
          (Formula.and_ [ Formula.tru; v 1 ]);
        Alcotest.check formula "or drops 0" (v 1)
          (Formula.or_ [ Formula.fls; v 1 ]));
    t "double negation" (fun () ->
        Alcotest.check formula "!!x = x" (v 1) (Formula.not_ (Formula.not_ (v 1)));
        Alcotest.check formula "!1 = 0" Formula.fls (Formula.not_ Formula.tru));
    t "flattening" (fun () ->
        match Formula.and_ [ Formula.conj2 (v 1) (v 2); v 3 ] with
        | Formula.And [ _; _; _ ] -> ()
        | f -> Alcotest.failf "expected flat And, got %a" Formula.pp f);
    t "size per paper definition" (fun () ->
        (* x1 & (x2 | !x3): 3 vars + 1 not + 2 connectives = 6 *)
        Alcotest.(check int) "|F|" 6 (Formula.size example2_formula));
    t "vars" (fun () ->
        Alcotest.check vset "vars" (Vset.of_list [ 1; 2; 3 ])
          (Formula.vars example2_formula));
    t "restrict eliminates variable" (fun () ->
        let f = Formula.restrict 1 true example2_formula in
        Alcotest.(check bool) "gone" false (Vset.mem 1 (Formula.vars f));
        Alcotest.check formula "F[x1:=0] = 0" Formula.fls
          (Formula.restrict 1 false example2_formula))
  ]

let eval_tests =
  [ t "example 2 models" (fun () ->
        let models =
          Semantics.models ~vars:[| 1; 2; 3 |] example2_formula
        in
        let expected =
          [ Vset.of_list [ 1 ]; Vset.of_list [ 1; 2 ]; Vset.of_list [ 1; 2; 3 ] ]
        in
        Alcotest.(check int) "count" 3 (List.length models);
        List.iter2
          (fun a b -> Alcotest.check vset "model" a b)
          expected
          (List.sort Vset.compare models));
    t "equivalence" (fun () ->
        Alcotest.(check bool) "de morgan" true
          (Semantics.equivalent
             (parse "!(x1 & x2)")
             (parse "!x1 | !x2"));
        Alcotest.(check bool) "not equiv" false
          (Semantics.equivalent (parse "x1") (parse "x2")));
    t "tautology / satisfiable" (fun () ->
        Alcotest.(check bool) "taut" true (Semantics.tautology (parse "x1 | !x1"));
        Alcotest.(check bool) "unsat" false
          (Semantics.satisfiable (parse "x1 & !x1")));
    t "width cap" (fun () ->
        let big = Formula.and_ (List.init 30 (fun i -> v (i + 1))) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Semantics.equivalent big big);
             false
           with Invalid_argument _ -> true))
  ]

let subst_tests =
  [ t "or substitution example from Def 1" (fun () ->
        (* F = X1 ∧ (X2 ∨ ¬X3), X2 := Z1 ∨ Z2 *)
        let g, blocks =
          Subst.or_subst
            ~widths:(fun v -> if v = 2 then 2 else 1)
            example2_formula
        in
        Alcotest.(check int) "3 blocks" 3 (List.length blocks);
        let z2 = List.assoc 2 blocks in
        Alcotest.(check int) "width 2" 2 (List.length z2);
        (* new variable count: 1 + 2 + 1 *)
        Alcotest.(check int) "vars" 4 (Vset.cardinal (Formula.vars g)));
    t "width zero maps to false" (fun () ->
        let g, _ = Subst.zap ~zero:(Vset.singleton 1) example2_formula in
        (* F[X1 := empty disjunction] = 0 *)
        Alcotest.check formula "false" Formula.fls g);
    t "isomorphic copy preserves counts" (fun () ->
        let g, blocks = Subst.isomorphic_copy example2_formula in
        let gvars = List.concat_map snd blocks in
        Alcotest.check bigint "#F"
          (Brute.count ~vars:example2_vars example2_formula)
          (Brute.count ~vars:gvars g));
    t "universe variables get blocks" (fun () ->
        let g, blocks =
          Subst.uniform_or ~universe:(Vset.of_list [ 1; 2; 3; 4 ]) ~l:2 (v 1)
        in
        Alcotest.(check int) "4 blocks" 4 (List.length blocks);
        Alcotest.(check int) "g mentions only x1's block" 2
          (Vset.cardinal (Formula.vars g)));
    t "universe must cover formula" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Subst.uniform_or ~universe:(Vset.singleton 9) ~l:1 (v 1));
             false
           with Invalid_argument _ -> true));
    qtest "or-subst width 1 is isomorphism (same counts)" ~count:60
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let g, blocks = Subst.isomorphic_copy f in
         let gvars = List.concat_map snd blocks in
         Kvec.equal
           (Brute.count_by_size ~vars f)
           (Brute.count_by_size ~vars:gvars g));
    qtest "restrict = width-0 block" ~count:60 (arb_formula ~nvars:4 ~depth:4)
      (fun f ->
         let vars = Formula.vars f in
         QCheck.assume (not (Vset.is_empty vars));
         let i = Vset.min_elt vars in
         let zapped, blocks = Subst.zap ~zero:(Vset.singleton i) f in
         let gvars = List.concat_map snd blocks in
         let restricted = Formula.restrict i false f in
         (* zapped is an isomorphic copy of restricted; counts agree *)
         Kvec.equal
           (Brute.count_by_size ~vars:gvars zapped)
           (Brute.count_by_size
              ~vars:(Vset.elements (Vset.remove i vars))
              restricted))
  ]

let parser_tests =
  [ t "parses example 2" (fun () ->
        Alcotest.check formula "roundtrip" example2_formula
          (parse "x1 & (x2 | !x3)"));
    t "precedence: and binds tighter" (fun () ->
        Alcotest.(check bool) "equiv" true
          (Semantics.equivalent (parse "x1 | x2 & x3")
             (parse "x1 | (x2 & x3)")));
    t "alternative operators" (fun () ->
        Alcotest.(check bool) "equiv" true
          (Semantics.equivalent (parse "x1 * x2 + ~x3") (parse "x1 & x2 | !x3")));
    t "named identifiers intern in order" (fun () ->
        let f, names = Parser.formula_of_string "alice & bob | alice" in
        Alcotest.(check int) "two names" 2 (List.length names);
        Alcotest.(check bool) "alice is 1" true
          (List.assoc 1 names = "alice");
        Alcotest.(check bool) "uses var 1" true (Vset.mem 1 (Formula.vars f)));
    t "x-numbered identifiers keep their index" (fun () ->
        let f = parse "x7 & x3" in
        Alcotest.check vset "vars" (Vset.of_list [ 3; 7 ]) (Formula.vars f));
    t "constants" (fun () ->
        Alcotest.check formula "1 & x1" (v 1) (parse "1 & x1");
        Alcotest.check formula "0 | 0" Formula.fls (parse "0 | 0"));
    t "errors are reported with position" (fun () ->
        List.iter
          (fun s ->
             Alcotest.(check bool) s true
               (try
                  ignore (parse s);
                  false
                with Invalid_argument msg ->
                  String.length msg > 0 && String.sub msg 0 6 = "Parser"))
          [ ""; "x1 &"; "(x1"; "x1 x2"; "x1 @ x2"; ")" ]);
    qtest "pp/parse roundtrip is equivalence-preserving" ~count:80
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let s = Formula.to_string f in
         Semantics.equivalent f (parse s))
  ]

let nf_tests =
  [ t "pdnf of formula" (fun () ->
        let d = Nf.formula_to_pdnf (parse "x1 & (x2 | x3)") in
        Alcotest.(check int) "clauses" 2 (List.length d);
        Alcotest.(check bool) "equiv" true
          (Semantics.equivalent (Nf.pdnf_to_formula d) (parse "x1 & (x2 | x3)")));
    t "pdnf rejects negation" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Nf.formula_to_pdnf (parse "!x1"));
             false
           with Invalid_argument _ -> true));
    t "pdnf minimize absorbs" (fun () ->
        let d = [ Vset.of_list [ 1 ]; Vset.of_list [ 1; 2 ]; Vset.of_list [ 1 ] ] in
        Alcotest.(check int) "one clause" 1 (List.length (Nf.pdnf_minimize d)));
    t "bipartite encoding separates parts" (fun () ->
        let d, left, right = Nf.bipartite ~edges:[ (0, 0); (1, 2) ] in
        Alcotest.(check int) "clauses" 2 (List.length d);
        Alcotest.(check bool) "parity" true
          (left 5 mod 2 = 0 && right 5 mod 2 = 1));
    t "clause overlap rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Nf.clause ~pos:[ 1 ] ~neg:[ 1 ]);
             false
           with Invalid_argument _ -> true));
    t "cnf and dnf to formula" (fun () ->
        let c = Nf.clause ~pos:[ 1 ] ~neg:[ 2 ] in
        Alcotest.(check bool) "cnf" true
          (Semantics.equivalent (Nf.cnf_to_formula [ c ]) (parse "x1 | !x2"));
        Alcotest.(check bool) "dnf" true
          (Semantics.equivalent (Nf.dnf_to_formula [ c ]) (parse "x1 & !x2")));
    qtest "pdnf conversion preserves semantics" ~count:60
      (arb_pdnf ~nvars:5 ~clauses:4)
      (fun d ->
         let f = Nf.pdnf_to_formula d in
         QCheck.assume (Nf.is_positive f);
         Semantics.equivalent f (Nf.pdnf_to_formula (Nf.formula_to_pdnf f)));
    qtest "pdnf_eval agrees with formula eval" ~count:60
      (QCheck.pair (arb_pdnf ~nvars:5 ~clauses:4)
         (QCheck.make QCheck.Gen.(list_size (int_range 0 5) (int_range 1 5))))
      (fun (d, s) ->
         let s = Vset.of_list s in
         Nf.pdnf_eval d s = Formula.eval_set s (Nf.pdnf_to_formula d))
  ]

let suite =
  smart_constructor_tests @ eval_tests @ subst_tests @ parser_tests @ nf_tests
