test/test_extensions.ml: Alcotest Circuit_shapley Compile Database Db_parser Formula Helpers Hypergraph List Naive Nf Parser Printf Prob QCheck Random Rat Read_once Semantics Ucq Vset
