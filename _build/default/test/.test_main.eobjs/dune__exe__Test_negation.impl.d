test/test_negation.ml: Alcotest Array Cq Database Db_parser Dichotomy Formula Helpers Lineage List Parser QCheck Random Rat Safe_plan Semantics Value Vset
