test/test_arith_more.ml: Alcotest Array Bigint Combi Gen Helpers Linalg List Poly Printf QCheck Rat Reductions
