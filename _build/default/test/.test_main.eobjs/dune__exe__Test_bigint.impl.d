test/test_bigint.ml: Alcotest Bigint Float Helpers List QCheck
