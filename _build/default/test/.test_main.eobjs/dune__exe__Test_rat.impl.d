test/test_rat.ml: Alcotest Bigint Helpers List QCheck Rat
