test/test_compile_cnf.ml: Alcotest Bigint Circuit Circuit_shapley Compile Compile_cnf Count Dimacs Dpll Formula Fun Helpers List Naive Nf Parser QCheck Rat Vset
