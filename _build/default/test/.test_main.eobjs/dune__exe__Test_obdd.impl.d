test/test_obdd.ml: Alcotest Array Bigint Brute Circuit Formula Helpers Kvec List Obdd Parser QCheck Semantics Vset
