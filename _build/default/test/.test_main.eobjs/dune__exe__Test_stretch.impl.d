test/test_stretch.ml: Alcotest Array Bigint Bipartite Cq Database Db_parser Formula Hardness Hashtbl Helpers Lineage List Parser Printf QCheck Random Semantics Stretch Subst Value
