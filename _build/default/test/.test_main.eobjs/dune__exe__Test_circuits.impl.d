test/test_circuits.ml: Alcotest Bigint Brute Circuit Compile Condition Count Formula Helpers Kvec Or_subst Parser QCheck Subst Vset
