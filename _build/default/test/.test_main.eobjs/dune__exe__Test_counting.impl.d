test/test_counting.ml: Alcotest Array Bigint Bipartite Brute Dpll Float Formula Helpers Karp_luby Kvec List Nf Parser QCheck Vset
