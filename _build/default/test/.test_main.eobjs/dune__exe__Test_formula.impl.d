test/test_formula.ml: Alcotest Brute Formula Helpers Kvec List Nf Parser QCheck Semantics String Subst Vset
