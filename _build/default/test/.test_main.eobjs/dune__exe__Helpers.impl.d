test/helpers.ml: Alcotest Bigint Bipartite Database Format Formula Hardness Kvec List Nf Parser QCheck QCheck_alcotest Rat String Value Vset
