test/test_core.ml: Alcotest Bigint Brute Circuit_shapley Combi Compile Count Dpll Formula Helpers Identities Kvec List Naive Obdd Parser Pipeline QCheck Rat Reductions Subst Vset
