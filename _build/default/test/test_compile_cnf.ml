(** Tests for the CNF-specialized compiler and the interaction index. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let r = Rat.of_ints
let parse = Parser.formula_of_string_exn
let vs = Vset.of_list

(* random CNF generator: clauses of 1-3 literals over nvars variables *)
let gen_cnf ~nvars ~clauses =
  let open QCheck.Gen in
  let literal =
    let* v = int_range 1 nvars in
    let* sign = bool in
    return (v, sign)
  in
  let clause =
    let* lits = list_size (int_range 1 3) literal in
    let pos = List.filter_map (fun (v, s) -> if s then Some v else None) lits in
    let neg = List.filter_map (fun (v, s) -> if not s then Some v else None) lits in
    (* drop tautologies by removing overlaps from neg *)
    let neg = List.filter (fun v -> not (List.mem v pos)) neg in
    if pos = [] && neg = [] then return None
    else return (Some (Nf.clause ~pos ~neg))
  in
  let* cs = list_size (int_range 1 clauses) clause in
  return (List.filter_map Fun.id cs)

let arb_cnf ~nvars ~clauses =
  QCheck.make
    ~print:(fun cnf -> Formula.to_string (Nf.cnf_to_formula cnf))
    (gen_cnf ~nvars ~clauses)

let compile_cnf_tests =
  [ t "compiles example formulas" (fun () ->
        (* (x1 | !x2) & (x2 | x3) *)
        let cnf =
          [ Nf.clause ~pos:[ 1 ] ~neg:[ 2 ]; Nf.clause ~pos:[ 2; 3 ] ~neg:[] ]
        in
        let c = Compile_cnf.compile cnf in
        Alcotest.(check bool) "equiv" true
          (Circuit.equivalent_formula ~max_vars:5 c (Nf.cnf_to_formula cnf));
        Alcotest.(check bool) "det" true
          (Circuit.check_deterministic ~max_vars:5 c));
    t "unit propagation produces no decisions on Horn chains" (fun () ->
        (* x1, (!x1|x2), (!x2|x3): all units after propagation *)
        let cnf =
          [ Nf.clause ~pos:[ 1 ] ~neg:[];
            Nf.clause ~pos:[ 2 ] ~neg:[ 1 ];
            Nf.clause ~pos:[ 3 ] ~neg:[ 2 ] ]
        in
        let c, stats = Compile_cnf.compile_with_stats cnf in
        Alcotest.(check int) "no decisions" 0 stats.Compile_cnf.decisions;
        Alcotest.(check bool) "propagated" true
          (stats.Compile_cnf.propagations >= 3);
        Alcotest.(check bool) "equiv x1&x2&x3" true
          (Circuit.equivalent_formula ~max_vars:5 c (parse "x1 & x2 & x3")));
    t "unsatisfiable CNF compiles to false" (fun () ->
        let cnf =
          [ Nf.clause ~pos:[ 1 ] ~neg:[]; Nf.clause ~pos:[] ~neg:[ 1 ] ]
        in
        Alcotest.(check bool) "false" true
          (Compile_cnf.compile cnf == Circuit.cfalse));
    t "empty CNF compiles to true" (fun () ->
        Alcotest.(check bool) "true" true
          (Compile_cnf.compile [] == Circuit.ctrue));
    t "empty clause compiles to false" (fun () ->
        Alcotest.(check bool) "false" true
          (Compile_cnf.compile [ { Nf.pos = Vset.empty; Nf.neg = Vset.empty } ]
           == Circuit.cfalse));
    t "dimacs pipeline end to end" (fun () ->
        let inst = Dimacs.parse_string "p cnf 4 3\n1 -2 0\n2 3 0\n-3 4 0\n" in
        let c = Compile_cnf.compile_dimacs inst in
        let vars = Dimacs.variables inst in
        Alcotest.check bigint "count matches dpll"
          (Dpll.count_universe ~vars (Dimacs.to_formula inst))
          (Count.count ~vars c));
    qtest "cnf compiler = dpll on random CNF" ~count:80
      (arb_cnf ~nvars:6 ~clauses:6)
      (fun cnf ->
         QCheck.assume (cnf <> []);
         let f = Nf.cnf_to_formula cnf in
         let c = Compile_cnf.compile cnf in
         let vars = List.init 6 succ in
         Bigint.equal
           (Dpll.count_universe ~vars f)
           (Count.count ~vars c));
    qtest "cnf compiler output is deterministic" ~count:40
      (arb_cnf ~nvars:5 ~clauses:5)
      (fun cnf ->
         QCheck.assume (cnf <> []);
         Circuit.check_deterministic ~max_vars:10 (Compile_cnf.compile cnf));
    qtest "Shapley through the cnf compiler = naive" ~count:30
      (arb_cnf ~nvars:5 ~clauses:4)
      (fun cnf ->
         QCheck.assume (cnf <> []);
         let f = Nf.cnf_to_formula cnf in
         let vars = List.init 5 succ in
         let a = Naive.shap_subsets ~vars f in
         let b =
           Circuit_shapley.shap_direct ~vars (Compile_cnf.compile cnf)
         in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b)
  ]

let interaction_tests =
  [ t "AND of two variables has interaction 1" (fun () ->
        let c = Compile.compile (parse "x1 & x2") in
        Alcotest.check rat "1" Rat.one
          (Circuit_shapley.interaction ~vars:[ 1; 2 ] c 1 2));
    t "OR of two variables has interaction -1" (fun () ->
        let c = Compile.compile (parse "x1 | x2") in
        Alcotest.check rat "-1" (r (-1) 1)
          (Circuit_shapley.interaction ~vars:[ 1; 2 ] c 1 2));
    t "complementary variables across an AND interact positively" (fun () ->
        (* in (x1|x2) & (x3|x4), turning x1 and x3 on together completes
           the conjunction: positive interaction *)
        let c = Compile.compile (parse "(x1 | x2) & (x3 | x4)") in
        Alcotest.(check bool) "positive" true
          (Rat.sign (Circuit_shapley.interaction ~vars:[ 1; 2; 3; 4 ] c 1 3)
           > 0));
    t "symmetry I(i,j) = I(j,i)" (fun () ->
        let c = Compile.compile example2_formula in
        Alcotest.check rat "sym"
          (Circuit_shapley.interaction ~vars:example2_vars c 1 3)
          (Circuit_shapley.interaction ~vars:example2_vars c 3 1));
    t "argument validation" (fun () ->
        let c = Compile.compile (parse "x1 & x2") in
        List.iter
          (fun f ->
             Alcotest.(check bool) "raises" true
               (try
                  ignore (f ());
                  false
                with Invalid_argument _ -> true))
          [ (fun () -> Circuit_shapley.interaction ~vars:[ 1; 2 ] c 1 1);
            (fun () -> Circuit_shapley.interaction ~vars:[ 1; 2 ] c 1 9) ]);
    qtest "circuit interaction = naive reference" ~count:40
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (List.length vars >= 2);
         let i = List.nth vars 0 and j = List.nth vars 1 in
         let c = Compile.compile f in
         Rat.equal
           (Circuit_shapley.interaction ~vars c i j)
           (Circuit_shapley.interaction_naive ~vars f i j));
    qtest "interaction of a variable with a dummy is 0" ~count:30
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         (* add a fresh dummy variable to the universe *)
         let dummy = 99 in
         let universe = vars @ [ dummy ] in
         let c = Compile.compile f in
         Rat.is_zero
           (Circuit_shapley.interaction ~vars:universe c (List.hd vars) dummy))
  ]

let () = ignore vs
let () = ignore r

let suite = compile_cnf_tests @ interaction_tests
