(** Tests for read-once factoring, beta-acyclicity, and UCQs. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let parse = Parser.formula_of_string_exn
let vs = Vset.of_list

let read_once_tests =
  [ t "single clause factors as AND" (fun () ->
        match Read_once.factor [ vs [ 1; 2; 3 ] ] with
        | Some tree ->
          Alcotest.(check bool) "equiv" true
            (Semantics.equivalent (Read_once.tree_to_formula tree)
               (parse "x1 & x2 & x3"))
        | None -> Alcotest.fail "expected read-once");
    t "x2 & (x1 | x3) from its DNF" (fun () ->
        match Read_once.factor [ vs [ 1; 2 ]; vs [ 2; 3 ] ] with
        | Some tree ->
          let f = Read_once.tree_to_formula tree in
          Alcotest.(check bool) "equiv" true
            (Semantics.equivalent f (parse "x2 & (x1 | x3)"));
          (* every variable exactly once *)
          Alcotest.(check int) "3 leaves" 3
            (Vset.cardinal (Read_once.tree_vars tree))
        | None -> Alcotest.fail "expected read-once");
    t "majority is not read-once" (fun () ->
        Alcotest.(check bool) "not ro" false
          (Read_once.is_read_once
             [ vs [ 1; 2 ]; vs [ 2; 3 ]; vs [ 1; 3 ] ]));
    t "bipartite path P4 is not read-once" (fun () ->
        (* x1x2 | x2x3 | x3x4: co-occurrence graph is a P4 *)
        Alcotest.(check bool) "not ro" false
          (Read_once.is_read_once
             [ vs [ 1; 2 ]; vs [ 2; 3 ]; vs [ 3; 4 ] ]));
    t "disjoint union factors as OR" (fun () ->
        match Read_once.factor [ vs [ 1; 2 ]; vs [ 3 ] ] with
        | Some tree ->
          Alcotest.(check bool) "equiv" true
            (Semantics.equivalent (Read_once.tree_to_formula tree)
               (parse "x1 & x2 | x3"))
        | None -> Alcotest.fail "expected read-once");
    t "constants rejected" (fun () ->
        Alcotest.(check bool) "false" true
          (try
             ignore (Read_once.factor []);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "true" true
          (try
             ignore (Read_once.factor [ Vset.empty ]);
             false
           with Invalid_argument _ -> true));
    t "absorption handled by minimization" (fun () ->
        (* x1 | x1&x2 = x1 *)
        match Read_once.factor [ vs [ 1 ]; vs [ 1; 2 ] ] with
        | Some (Read_once.Leaf 1) -> ()
        | Some _ -> Alcotest.fail "expected leaf x1"
        | None -> Alcotest.fail "expected read-once");
    qtest "read-once trees round-trip through their DNF" ~count:50
      (QCheck.make
         ~print:(fun s -> Printf.sprintf "seed=%d" s)
         QCheck.Gen.(int_range 0 99999))
      (fun seed ->
         (* generate a random read-once tree, convert to DNF, re-factor *)
         let st = Random.State.make [| seed |] in
         let counter = ref 0 in
         let rec build depth =
           if depth = 0 || Random.State.int st 3 = 0 then begin
             incr counter;
             Read_once.Leaf !counter
           end
           else begin
             let k = 2 + Random.State.int st 2 in
             let children = List.init k (fun _ -> build (depth - 1)) in
             if Random.State.bool st then Read_once.And children
             else Read_once.Or children
           end
         in
         let tree = build 3 in
         let f = Read_once.tree_to_formula tree in
         QCheck.assume (not (Vset.is_empty (Formula.vars f)));
         match Read_once.factor (Nf.formula_to_pdnf f) with
         | None -> false
         | Some tree' ->
           Semantics.equivalent f (Read_once.tree_to_formula tree'));
    qtest "factored form agrees with the source on Shapley values" ~count:25
      (arb_pdnf ~nvars:5 ~clauses:3)
      (fun d ->
         let d = Nf.pdnf_minimize d in
         QCheck.assume (d <> [] && not (List.exists Vset.is_empty d));
         match Read_once.factor d with
         | None -> QCheck.assume_fail ()
         | Some tree ->
           let f = Nf.pdnf_to_formula d in
           let vars = Vset.elements (Nf.pdnf_vars d) in
           let a = Naive.shap_subsets ~vars f in
           let b =
             Circuit_shapley.shap_direct ~vars
               (Compile.compile (Read_once.tree_to_formula tree))
           in
           List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b)
  ]

let hypergraph_tests =
  [ t "chain CNF is beta-acyclic" (fun () ->
        Alcotest.(check bool) "chain" true
          (Hypergraph.is_beta_acyclic
             [ vs [ 1; 2 ]; vs [ 2; 3 ]; vs [ 3; 4 ] ]));
    t "triangle is not beta-acyclic" (fun () ->
        Alcotest.(check bool) "triangle" false
          (Hypergraph.is_beta_acyclic
             [ vs [ 1; 2 ]; vs [ 2; 3 ]; vs [ 1; 3 ] ]));
    t "alpha-acyclic but beta-cyclic example" (fun () ->
        (* classic: edges {1,2,3}, {1,2}, {2,3}, {1,3} — the big edge makes
           it alpha-acyclic, the inner triangle stays beta-cyclic *)
        Alcotest.(check bool) "beta-cyclic" false
          (Hypergraph.is_beta_acyclic
             [ vs [ 1; 2; 3 ]; vs [ 1; 2 ]; vs [ 2; 3 ]; vs [ 1; 3 ] ]));
    t "nested chain is beta-acyclic" (fun () ->
        Alcotest.(check bool) "nested" true
          (Hypergraph.is_beta_acyclic
             [ vs [ 1 ]; vs [ 1; 2 ]; vs [ 1; 2; 3 ] ]));
    t "empty and singleton" (fun () ->
        Alcotest.(check bool) "empty" true (Hypergraph.is_beta_acyclic []);
        Alcotest.(check bool) "singleton" true
          (Hypergraph.is_beta_acyclic [ vs [ 1; 2; 3 ] ]));
    t "read-once CNF family of E13 is beta-acyclic" (fun () ->
        let edges = List.init 10 (fun i -> vs [ (2 * i) + 1; (2 * i) + 2 ]) in
        Alcotest.(check bool) "yes" true (Hypergraph.is_beta_acyclic edges));
    t "cnf wrapper" (fun () ->
        let cnf =
          [ Nf.clause ~pos:[ 1 ] ~neg:[ 2 ]; Nf.clause ~pos:[ 2; 3 ] ~neg:[] ]
        in
        Alcotest.(check bool) "acyclic" true (Hypergraph.is_beta_acyclic_cnf cnf))
  ]

let ucq_tests =
  [ t "lineage of a union" (fun () ->
        let db = example13_db () in
        let u =
          Ucq.make
            [ Db_parser.parse_query "R1(x)"; Db_parser.parse_query "R2(x)" ]
        in
        Alcotest.(check bool) "x1|x2|x3|x4" true
          (Semantics.equivalent (Ucq.lineage_formula db u)
             (parse "x1 | x2 | x3 | x4")));
    t "disjoint hierarchical disjuncts take the polynomial path" (fun () ->
        let db = example13_db () in
        let u =
          Ucq.make
            [ Db_parser.parse_query "R1(x)"; Db_parser.parse_query "R2(x)" ]
        in
        let shap, solver = Ucq.shapley db u in
        Alcotest.(check bool) "safe" true (solver = Ucq.Disjoint_safe_plans);
        check_shap "values"
          (Naive.shap_subsets
             ~vars:(Vset.elements (Database.lineage_vars db))
             (Ucq.lineage_formula db u))
          shap);
    t "shared relations fall back to compilation" (fun () ->
        let db = example13_db () in
        let u =
          Ucq.make
            [ Db_parser.parse_query "R1(x), R2(x)";
              Db_parser.parse_query "R1(x)" ]
        in
        let shap, solver = Ucq.shapley db u in
        Alcotest.(check bool) "fallback" true (solver = Ucq.Compiled_union);
        check_shap "values"
          (Naive.shap_subsets
             ~vars:(Vset.elements (Database.lineage_vars db))
             (Ucq.lineage_formula db u))
          shap);
    t "union probability" (fun () ->
        let db = example13_db () in
        let u =
          Ucq.make
            [ Db_parser.parse_query "R1(x)"; Db_parser.parse_query "R2(x)" ]
        in
        (* P(x1|x2|x3|x4) at 1/2 = 15/16 *)
        Alcotest.check rat "15/16" (Rat.of_ints 15 16)
          (Ucq.probability db u ~weights:Prob.uniform_half));
    t "empty union rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Ucq.make []);
             false
           with Invalid_argument _ -> true));
    qtest "UCQ Shapley = brute force on random q0 unions" ~count:15
      (QCheck.make QCheck.Gen.(int_range 0 9999))
      (fun seed ->
         let db, _ = random_q0_db ~a:2 ~b:2 ~density:0.6 ~seed in
         let u =
           Ucq.make
             [ Db_parser.parse_query "R(x), S(x, y)";
               Db_parser.parse_query "T(y)" ]
         in
         let shap, _ = Ucq.shapley db u in
         let reference =
           Naive.shap_subsets
             ~vars:(Vset.elements (Database.lineage_vars db))
             (Ucq.lineage_formula db u)
         in
         List.for_all2
           (fun (i, x) (j, y) -> i = j && Rat.equal x y)
           (List.sort compare reference) (List.sort compare shap))
  ]

let suite = read_once_tests @ hypergraph_tests @ ucq_tests
