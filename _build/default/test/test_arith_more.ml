(** Tests for combinatorics, polynomials and the exact linear solvers. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let r = Rat.of_ints

let combi_tests =
  [ t "factorials" (fun () ->
        Alcotest.check bigint "0!" Bigint.one (Combi.factorial 0);
        Alcotest.check bigint "5!" (bi 120) (Combi.factorial 5);
        Alcotest.check bigint "20!"
          (Bigint.of_string "2432902008176640000")
          (Combi.factorial 20));
    t "factorial negative raises" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Combi.factorial: negative")
          (fun () -> ignore (Combi.factorial (-1))));
    t "binomials" (fun () ->
        Alcotest.check bigint "C(5,2)" (bi 10) (Combi.binomial 5 2);
        Alcotest.check bigint "C(n,0)" Bigint.one (Combi.binomial 7 0);
        Alcotest.check bigint "C(n,n)" Bigint.one (Combi.binomial 7 7);
        Alcotest.check bigint "out of range" Bigint.zero (Combi.binomial 5 6);
        Alcotest.check bigint "k<0" Bigint.zero (Combi.binomial 5 (-1)));
    t "shapley coefficients n=3" (fun () ->
        (* Example 4: c_0 = 2/6, c_1 = 1/6, c_2 = 2/6 *)
        Alcotest.check rat "c0" (r 2 6) (Combi.shapley_coeff ~n:3 0);
        Alcotest.check rat "c1" (r 1 6) (Combi.shapley_coeff ~n:3 1);
        Alcotest.check rat "c2" (r 2 6) (Combi.shapley_coeff ~n:3 2));
    t "shapley coeff out of range" (fun () ->
        Alcotest.check_raises "k=n"
          (Invalid_argument "Combi.shapley_coeff: k out of range") (fun () ->
              ignore (Combi.shapley_coeff ~n:3 3)));
    qtest "pascal identity"
      QCheck.(pair (int_range 1 40) (int_range 0 40))
      (fun (n, k) ->
         QCheck.assume (k <= n);
         Bigint.equal (Combi.binomial (n + 1) k)
           (Bigint.add (Combi.binomial n k) (Combi.binomial n (k - 1))));
    qtest "shapley coefficients sum to ~ harmonic identity"
      QCheck.(int_range 1 25)
      (fun n ->
         (* Σ_k C(n-1,k) c_k = Σ 1/n ... the defining property:
            Σ_{k} c_k · C(n−1, k) · n = Σ ... — check Σ_k C(n−1,k)c_k = 1/n·n = 1?
            Actually Σ_k c_k C(n-1,k) = Σ_k 1/(n·C(n-1,k))·C(n-1,k) = n·(1/n) = 1. *)
         let sum = ref Rat.zero in
         for k = 0 to n - 1 do
           sum :=
             Rat.add !sum
               (Rat.mul_bigint (Combi.shapley_coeff ~n k) (Combi.binomial (n - 1) k))
         done;
         Rat.equal !sum Rat.one)
  ]

let poly_tests =
  [ t "degree and coeff" (fun () ->
        let p = Poly.of_coeffs [ r 1 1; r 0 1; r 3 1 ] in
        Alcotest.(check int) "deg" 2 (Poly.degree p);
        Alcotest.check rat "c0" Rat.one (Poly.coeff p 0);
        Alcotest.check rat "c1" Rat.zero (Poly.coeff p 1);
        Alcotest.check rat "c5" Rat.zero (Poly.coeff p 5));
    t "trailing zeros stripped" (fun () ->
        let p = Poly.of_coeffs [ r 1 1; Rat.zero; Rat.zero ] in
        Alcotest.(check int) "deg" 0 (Poly.degree p);
        Alcotest.(check int) "zero poly deg" (-1) (Poly.degree Poly.zero));
    t "eval horner" (fun () ->
        (* p(x) = 2 - x + x^2 at x = 3: 2 - 3 + 9 = 8 *)
        let p = Poly.of_coeffs [ r 2 1; r (-1) 1; r 1 1 ] in
        Alcotest.check rat "p(3)" (r 8 1) (Poly.eval p (r 3 1)));
    qtest "add is pointwise eval"
      (QCheck.triple arb_rat arb_rat arb_rat)
      (fun (a, b, x) ->
         let p = Poly.of_coeffs [ a; b ] and q = Poly.of_coeffs [ b; a ] in
         Rat.equal
           (Poly.eval (Poly.add p q) x)
           (Rat.add (Poly.eval p x) (Poly.eval q x)));
    qtest "mul is pointwise eval"
      (QCheck.triple arb_rat arb_rat arb_rat)
      (fun (a, b, x) ->
         let p = Poly.of_coeffs [ a; b ] and q = Poly.of_coeffs [ b; Rat.one; a ] in
         Rat.equal
           (Poly.eval (Poly.mul p q) x)
           (Rat.mul (Poly.eval p x) (Poly.eval q x)))
  ]

let linalg_tests =
  [ t "vandermonde interpolates" (fun () ->
        let points = [| r 1 1; r 3 1; r 7 1 |] in
        let coeffs = [| r 2 1; r (-1) 1; r 5 1 |] in
        let poly = Poly.of_coeffs (Array.to_list coeffs) in
        let values = Array.map (Poly.eval poly) points in
        let sol = Linalg.vandermonde_solve ~points ~values in
        Array.iteri
          (fun i c -> Alcotest.check rat (Printf.sprintf "c%d" i) coeffs.(i) c)
          sol);
    t "vandermonde rejects duplicates" (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Linalg.vandermonde_solve: duplicate nodes")
          (fun () ->
             ignore
               (Linalg.vandermonde_solve
                  ~points:[| r 1 1; r 1 1 |]
                  ~values:[| r 0 1; r 1 1 |])));
    t "vandermonde empty" (fun () ->
        Alcotest.(check int) "len" 0
          (Array.length (Linalg.vandermonde_solve ~points:[||] ~values:[||])));
    t "gauss solves and detects singular" (fun () ->
        let a = [| [| r 2 1; r 1 1 |]; [| r 1 1; r 3 1 |] |] in
        let b = [| r 5 1; r 10 1 |] in
        (match Linalg.gauss_solve a b with
         | None -> Alcotest.fail "unexpected singular"
         | Some x ->
           Alcotest.check rat "x0" (r 1 1) x.(0);
           Alcotest.check rat "x1" (r 3 1) x.(1));
        let sing = [| [| r 1 1; r 2 1 |]; [| r 2 1; r 4 1 |] |] in
        Alcotest.(check bool) "singular" true
          (Linalg.gauss_solve sing b = None));
    t "gauss does not mutate inputs" (fun () ->
        let a = [| [| r 2 1; r 1 1 |]; [| r 1 1; r 3 1 |] |] in
        let b = [| r 5 1; r 10 1 |] in
        ignore (Linalg.gauss_solve a b);
        Alcotest.check rat "a00" (r 2 1) a.(0).(0);
        Alcotest.check rat "b1" (r 10 1) b.(1));
    qtest "vandermonde and gauss agree" ~count:30
      QCheck.(list_of_size Gen.(int_range 1 6) (int_range (-50) 50))
      (fun raw ->
         let values = Array.of_list (List.map (fun v -> r v 1) raw) in
         let m = Array.length values in
         let points = Reductions.or_points ~count:m in
         let sol_v = Linalg.vandermonde_solve ~points ~values in
         let matrix = Linalg.vandermonde_matrix points ~cols:m in
         match Linalg.gauss_solve matrix values with
         | None -> false
         | Some sol_g ->
           Array.for_all2 Rat.equal sol_v sol_g
           && Array.for_all2 Rat.equal (Linalg.mat_vec matrix sol_v) values)
  ]

let suite = combi_tests @ poly_tests @ linalg_tests
