(** Tests for conjunctive queries with safely negated atoms (the Reshef
    et al. direction the paper cites as [29]). *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let r = Rat.of_ints

(* Direct semantics: evaluate a query with negation over the
   sub-database keeping exactly the endogenous tuples in [present]
   (exogenous tuples always present). *)
let eval_subdb db (q : Cq.t) present =
  let tuple_present (s : Database.stored) =
    match s.lvar with None -> true | Some v -> Vset.mem v present
  in
  let match_atom env (a : Cq.atom) (s : Database.stored) =
    let bind acc i =
      match acc with
      | None -> None
      | Some env ->
        (match a.Cq.args.(i) with
         | Cq.C v -> if Value.equal v s.values.(i) then Some env else None
         | Cq.V x ->
           (match List.assoc_opt x env with
            | Some v -> if Value.equal v s.values.(i) then Some env else None
            | None -> Some ((x, s.values.(i)) :: env)))
    in
    let rec go acc i =
      if i >= Array.length a.Cq.args then acc else go (bind acc i) (i + 1)
    in
    go (Some env) 0
  in
  let positive, negated =
    List.partition (fun (a : Cq.atom) -> not a.Cq.negated) q.Cq.atoms
  in
  let rec search env = function
    | [] ->
      (* all negated atoms must fail on the sub-database *)
      List.for_all
        (fun (a : Cq.atom) ->
           not
             (List.exists
                (fun s ->
                   tuple_present s && match_atom env a s <> None)
                (Database.tuples db a.Cq.rel)))
        negated
    | (a : Cq.atom) :: rest ->
      List.exists
        (fun s ->
           tuple_present s
           &&
           match match_atom env a s with
           | None -> false
           | Some env' -> search env' rest)
        (Database.tuples db a.Cq.rel)
  in
  search [] positive

let small_neg_db seed =
  let st = Random.State.make [| seed |] in
  let db = Database.create () in
  Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "T" ~kind:Database.Endogenous ~arity:1;
  List.iter
    (fun i ->
       if Random.State.bool st then ignore (Database.insert db "R" [| Value.int i |]))
    [ 1; 2; 3 ];
  List.iter
    (fun i ->
       if Random.State.bool st then ignore (Database.insert db "T" [| Value.int i |]))
    [ 1; 2; 3 ];
  (* ensure nonempty R so the positive part can match *)
  if Database.tuples db "R" = [] then ignore (Database.insert db "R" [| Value.int 1 |]);
  db

let unit_tests =
  [ t "parser accepts negated atoms" (fun () ->
        let q = Db_parser.parse_query "R(x), !T(x)" in
        Alcotest.(check bool) "not positive" false (Cq.is_positive q);
        Alcotest.(check bool) "safe" true (Cq.is_safe_negation q);
        Alcotest.(check string) "pp" "R(x), !T(x)" (Cq.to_string q));
    t "all-negated queries rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Cq.make [ Cq.negated_atom "R" [ Cq.V "x" ] ]);
             false
           with Invalid_argument _ -> true));
    t "unsafe negation detected and rejected at lineage time" (fun () ->
        let q =
          Cq.make
            [ Cq.atom "R" [ Cq.V "x" ]; Cq.negated_atom "T" [ Cq.V "y" ] ]
        in
        Alcotest.(check bool) "unsafe" false (Cq.is_safe_negation q);
        let db = small_neg_db 1 in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lineage.lineage_clauses db q);
             false
           with Invalid_argument _ -> true));
    t "lineage of R(x), !T(x)" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        Database.declare db "T" ~kind:Database.Endogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]); (* x1 *)
        ignore (Database.insert db "R" [| Value.int 2 |]); (* x2 *)
        ignore (Database.insert db "T" [| Value.int 1 |]); (* x3 *)
        let q = Db_parser.parse_query "R(x), !T(x)" in
        let f = Lineage.lineage_formula db q in
        (* value 1: r-tuple present, t-tuple absent; value 2: r present *)
        Alcotest.(check bool) "equiv" true
          (Semantics.equivalent f
             (Parser.formula_of_string_exn "x1 & !x3 | x2")));
    t "negated exogenous atom blocks assignments" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        Database.declare db "S" ~kind:Database.Exogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        ignore (Database.insert db "R" [| Value.int 2 |]);
        ignore (Database.insert db "S" [| Value.int 1 |]);
        let q = Db_parser.parse_query "R(x), !S(x)" in
        let f = Lineage.lineage_formula db q in
        Alcotest.(check bool) "only x2" true
          (Semantics.equivalent f (Formula.var 2)));
    t "self-join contradiction clauses dropped" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        (* R(x), !R(x): needs the same tuple present and absent *)
        let q = Db_parser.parse_query "R(x), !R(x)" in
        Alcotest.(check bool) "unsatisfiable" true
          (Lineage.lineage_clauses db q = []));
    t "classification reports negation" (fun () ->
        Alcotest.(check bool) "has_negation" true
          (Dichotomy.classify (Db_parser.parse_query "R(x), !T(x)")
           = Dichotomy.Has_negation));
    t "safe plan rejects negation" (fun () ->
        let db = small_neg_db 2 in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Safe_plan.lineage_circuit db
                  (Db_parser.parse_query "R(x), !T(x)"));
             false
           with Safe_plan.Not_safe _ -> true));
    t "dichotomy solver handles negation via compilation" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        Database.declare db "T" ~kind:Database.Endogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        ignore (Database.insert db "T" [| Value.int 1 |]);
        let q = Db_parser.parse_query "R(x), !T(x)" in
        let shap, solver = Dichotomy.shapley db q in
        Alcotest.(check bool) "compiled" true (solver = Dichotomy.Compiled_dnf);
        (* F = x1 & !x2: Shapley (1/2, -1/2) as in Example 2's negative case *)
        check_shap "values" [ (1, r 1 2); (2, r (-1) 2) ] shap)
  ]

let property_tests =
  [ qtest "lineage models = satisfying sub-databases" ~count:40
      (QCheck.make
         ~print:string_of_int
         QCheck.Gen.(int_range 0 99999))
      (fun seed ->
         let db = small_neg_db seed in
         let q = Db_parser.parse_query "R(x), !T(x)" in
         let f = Lineage.lineage_formula db q in
         let vars = Vset.elements (Database.lineage_vars db) in
         let varr = Array.of_list vars in
         let n = Array.length varr in
         let ok = ref true in
         for mask = 0 to (1 lsl n) - 1 do
           let present = ref Vset.empty in
           Array.iteri
             (fun i v -> if mask land (1 lsl i) <> 0 then present := Vset.add v !present)
             varr;
           if Formula.eval_set !present f <> eval_subdb db q !present then
             ok := false
         done;
         !ok);
    qtest "negated Shapley matches brute force on the lineage" ~count:25
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 99999))
      (fun seed ->
         let db = small_neg_db seed in
         let q = Db_parser.parse_query "R(x), !T(x)" in
         let got, _ = Dichotomy.shapley db q in
         let reference = Dichotomy.shapley_brute db q in
         List.for_all2
           (fun (i, x) (j, y) -> i = j && Rat.equal x y)
           (List.sort compare reference) (List.sort compare got));
    qtest "two negated atoms" ~count:20
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 99999))
      (fun seed ->
         let db = small_neg_db seed in
         let q = Db_parser.parse_query "R(x), !T(x), !R(3)" in
         let f = Lineage.lineage_formula db q in
         let vars = Vset.elements (Database.lineage_vars db) in
         let varr = Array.of_list vars in
         let n = Array.length varr in
         let ok = ref true in
         for mask = 0 to (1 lsl n) - 1 do
           let present = ref Vset.empty in
           Array.iteri
             (fun i v -> if mask land (1 lsl i) <> 0 then present := Vset.add v !present)
             varr;
           if Formula.eval_set !present f <> eval_subdb db q !present then
             ok := false
         done;
         !ok)
  ]

let suite = unit_tests @ property_tests
