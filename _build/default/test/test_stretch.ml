(** Tests for stretching (Definition 10, Lemma 12, Lemma 15, Claim 5.2)
    and the executable hardness reduction (Section 5.3). *)

open Helpers

let t name f = Alcotest.test_case name `Quick f

let is_endo db name = Database.kind_of db name = Database.Endogenous

let stretch_tests =
  [ t "example 11: stretching q0" (fun () ->
        let q0 = Stretch.q0 () in
        let qt, zs = Stretch.stretch_query ~is_endogenous:(fun n -> n <> "S") q0 in
        Alcotest.(check int) "two fresh vars" 2 (List.length zs);
        (* R and T atoms gained an argument, S did not *)
        let arities = List.map (fun (a : Cq.atom) -> (a.Cq.rel, Array.length a.Cq.args)) qt.Cq.atoms in
        Alcotest.(check (list (pair string int))) "arities"
          [ ("R", 2); ("S", 2); ("T", 2) ] arities);
    t "lemma 15: stretching preserves hierarchy both ways" (fun () ->
        List.iter
          (fun (s, endos) ->
             let q = Db_parser.parse_query s in
             let qt, _ =
               Stretch.stretch_query ~is_endogenous:(fun n -> List.mem n endos) q
             in
             Alcotest.(check bool) s (Cq.is_hierarchical q) (Cq.is_hierarchical qt))
          [ ("R(x), S(x, y)", [ "R"; "S" ]);
            ("R(x), S(x, y), T(y)", [ "R"; "T" ]);
            ("R(x), S(y)", [ "R"; "S" ]);
            ("R(x, y), S(y, z), T(z, x)", [ "R"; "S"; "T" ]);
            ("A(x), B(x, y), C(x, y, z)", [ "A"; "B"; "C" ]) ]);
    t "B.1.1: dummy stretching preserves the lineage exactly" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R2(x)" in
        let qt, _ = Stretch.stretch_query ~is_endogenous:(is_endo db) q in
        let dbt = Stretch.stretch_database_dummy db in
        Alcotest.check formula "same lineage"
          (Lineage.lineage_formula db q)
          (Lineage.lineage_formula dbt qt))
  ]

(* The commutative diagram of Section 5.2, on random databases:
   or-substituting the lineage of Q over D is equivalent to the lineage of
   the stretched Q over the block-stretched D. *)
let diagram_tests =
  [ qtest "commutative diagram (q0 databases)" ~count:25
      (QCheck.make
         ~print:(fun (a, b, s) -> Printf.sprintf "a=%d b=%d seed=%d" a b s)
         QCheck.Gen.(
           let* a = int_range 1 3 in
           let* b = int_range 1 3 in
           let* s = int_range 0 99999 in
           return (a, b, s)))
      (fun (a, b, seed) ->
         let db, q = random_q0_db ~a ~b ~density:0.6 ~seed in
         let st = Random.State.make [| seed + 1 |] in
         let widths _ = Random.State.int st 3 in
         (* freeze widths per variable *)
         let table = Hashtbl.create 8 in
         let widths v =
           match Hashtbl.find_opt table v with
           | Some w -> w
           | None ->
             let w = widths v in
             Hashtbl.replace table v w;
             w
         in
         let qt, _ = Stretch.stretch_query ~is_endogenous:(is_endo db) q in
         let dbt, blocks = Stretch.or_substituted_db ~widths db in
         let f = Lineage.lineage_formula db q in
         (* The same widths, applied at the formula level.  Fresh-variable
            names differ between the two routes, so compare counts of both
            plus semantic equivalence after aligning blocks. *)
         let f_sub = Subst.apply
             (fun v ->
                match List.assoc_opt v blocks with
                | Some zs -> Formula.or_ (List.map Formula.var zs)
                | None -> Formula.var v)
             f
         in
         let f_stretched = Lineage.lineage_formula dbt qt in
         Semantics.equivalent f_sub f_stretched);
    qtest "commutative diagram (hierarchical query)" ~count:20
      (QCheck.make QCheck.Gen.(int_range 0 99999))
      (fun seed ->
         let st = Random.State.make [| seed |] in
         let db = Database.create () in
         Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
         Database.declare db "S" ~kind:Database.Exogenous ~arity:2;
         for i = 0 to 2 do
           ignore (Database.insert db "R" [| Value.int i |])
         done;
         for i = 0 to 2 do
           for j = 0 to 1 do
             if Random.State.bool st then
               ignore (Database.insert db "S" [| Value.int i; Value.int j |])
           done
         done;
         let q = Db_parser.parse_query "R(x), S(x, y)" in
         let widths v = (v mod 3) in
         let qt, _ = Stretch.stretch_query ~is_endogenous:(is_endo db) q in
         let dbt, blocks = Stretch.or_substituted_db ~widths db in
         let f_sub =
           Subst.apply
             (fun v ->
                match List.assoc_opt v blocks with
                | Some zs -> Formula.or_ (List.map Formula.var zs)
                | None -> Formula.var v)
             (Lineage.lineage_formula db q)
         in
         Semantics.equivalent f_sub (Lineage.lineage_formula dbt qt))
  ]

let claim52_tests =
  [ t "collapse keeps the lineage (worked example 16)" (fun () ->
        (* D̃': R={(1,a),(2,a)}, T={(1,b),(2,b)}, S={(a,b)} — stretched *)
        let dbt = Database.create () in
        Database.declare dbt "R" ~kind:Database.Endogenous ~arity:2;
        Database.declare dbt "S" ~kind:Database.Exogenous ~arity:2;
        Database.declare dbt "T" ~kind:Database.Endogenous ~arity:2;
        ignore (Database.insert dbt "R" [| Value.int 1; Value.str "a" |]);
        ignore (Database.insert dbt "R" [| Value.int 2; Value.str "a" |]);
        ignore (Database.insert dbt "T" [| Value.int 1; Value.str "b" |]);
        ignore (Database.insert dbt "T" [| Value.int 2; Value.str "b" |]);
        ignore (Database.insert dbt "S" [| Value.str "a"; Value.str "b" |]);
        (* Lineage of stretched q0 over D̃': all four pairs *)
        let q0 = Stretch.q0 () in
        let qt, _ = Stretch.stretch_query ~is_endogenous:(fun n -> n <> "S") q0 in
        let f_stretched = Lineage.lineage_formula dbt qt in
        Alcotest.(check bool) "all pairs" true
          (Semantics.equivalent f_stretched
             (Parser.formula_of_string_exn
                "x1 & x3 | x1 & x4 | x2 & x3 | x2 & x4"));
        (* Collapsing gives a Q0 database with the same lineage. *)
        let db' = Stretch.collapse_q0 dbt in
        Alcotest.check formula "same lineage"
          f_stretched
          (Lineage.lineage_formula db' q0));
    qtest "or_substituted_q0_db realizes the OR-substitution within C_Q0"
      ~count:20
      (QCheck.make QCheck.Gen.(int_range 0 99999))
      (fun seed ->
         let db, q = random_q0_db ~a:2 ~b:2 ~density:0.7 ~seed in
         let widths v = ((v + seed) mod 3) in
         let db', blocks = Stretch.or_substituted_q0_db ~widths db in
         let f_sub =
           Subst.apply
             (fun v ->
                match List.assoc_opt v blocks with
                | Some zs -> Formula.or_ (List.map Formula.var zs)
                | None -> Formula.var v)
             (Lineage.lineage_formula db q)
         in
         Semantics.equivalent f_sub (Lineage.lineage_formula db' q))
  ]

let hardness_tests =
  [ t "encode produces the right lineage" (fun () ->
        let inst = Bipartite.make ~a:2 ~b:2 [ (0, 0); (1, 1) ] in
        let db, q = Hardness.encode inst in
        let f = Lineage.lineage_formula db q in
        Alcotest.(check bool) "x1&x3 | x2&x4" true
          (Semantics.equivalent f
             (Parser.formula_of_string_exn "x1 & x3 | x2 & x4")));
    t "oracle_calls is n^2" (fun () ->
        let inst = Bipartite.make ~a:2 ~b:3 [] in
        Alcotest.(check int) "25" 25 (Hardness.oracle_calls inst));
    qtest "counting bipartite DNF through the Q0 Shapley oracle" ~count:8
      (QCheck.make
         ~print:(fun (a, b, s) -> Printf.sprintf "a=%d b=%d seed=%d" a b s)
         QCheck.Gen.(
           let* a = int_range 1 2 in
           let* b = int_range 1 2 in
           let* s = int_range 0 9999 in
           return (a, b, s)))
      (fun (a, b, seed) ->
         let inst = Bipartite.random ~a ~b ~density:0.6 ~seed in
         Bigint.equal (Bipartite.count inst)
           (Hardness.count_via_q0_shapley ~oracle:Hardness.reference_oracle
              inst))
  ]

let suite = stretch_tests @ diagram_tests @ claim52_tests @ hardness_tests
