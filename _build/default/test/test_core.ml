(** Tests for the paper's core: reference algorithms, identities, the
    three reductions of Theorem 3.1, pipelines, and Theorem 4.1. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let r = Rat.of_ints
let parse = Parser.formula_of_string_exn

let naive_tests =
  [ t "example 2 Shapley values (permutations)" (fun () ->
        check_shap "perm"
          [ (1, r 5 6); (2, r 2 6); (3, r (-1) 6) ]
          (Naive.shap_permutations ~vars:example2_vars example2_formula));
    t "example 2 Shapley values (subsets)" (fun () ->
        check_shap "subsets"
          [ (1, r 5 6); (2, r 2 6); (3, r (-1) 6) ]
          (Naive.shap_subsets ~vars:example2_vars example2_formula));
    t "example 2 permutation table" (fun () ->
        let table =
          Naive.permutation_table ~vars:example2_vars example2_formula
        in
        Alcotest.(check int) "3! rows" 6 (List.length table);
        (* Row for Π = (1,3,2): marginals (1, 1, -1) per the paper. *)
        let row = List.assoc [ 1; 3; 2 ] table in
        Alcotest.(check (list int)) "marginals" [ 1; 1; -1 ] row;
        (* Column sums divided by 3! give the Shapley values. *)
        let col i = List.fold_left (fun a (_, row) -> a + List.nth row i) 0 table in
        Alcotest.(check int) "x1 column" 5 (col 0);
        Alcotest.(check int) "x2 column" 2 (col 1);
        Alcotest.(check int) "x3 column" (-1) (col 2));
    t "dummy player gets zero" (fun () ->
        let shap = Naive.shap_subsets ~vars:[ 1; 2 ] (Formula.var 1) in
        Alcotest.check rat "x2 = 0" Rat.zero (List.assoc 2 shap));
    t "symmetric players get equal values" (fun () ->
        let shap = Naive.shap_subsets ~vars:[ 1; 2 ] (parse "x1 | x2") in
        Alcotest.check rat "equal" (List.assoc 1 shap) (List.assoc 2 shap);
        Alcotest.check rat "1/2 each" (r 1 2) (List.assoc 1 shap));
    t "universe size matters" (fun () ->
        (* Shap of x1 in F=x1 alone is 1; with a spectator variable still 1 *)
        let s1 = Naive.shap_subsets ~vars:[ 1 ] (Formula.var 1) in
        let s2 = Naive.shap_subsets ~vars:[ 1; 9 ] (Formula.var 1) in
        Alcotest.check rat "alone" Rat.one (List.assoc 1 s1);
        Alcotest.check rat "with spectator" Rat.one (List.assoc 1 s2));
    t "permutation cap enforced" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Naive.shap_permutations ~vars:(List.init 9 succ) Formula.tru);
             false
           with Invalid_argument _ -> true));
    qtest "permutations = subsets" ~count:60 (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let a = Naive.shap_permutations ~vars f in
         let b = Naive.shap_subsets ~vars f in
         List.for_all2
           (fun (i, x) (j, y) -> i = j && Rat.equal x y)
           a b)
  ]

let identity_tests =
  [ t "example 6: efficiency on example 2" (fun () ->
        Alcotest.(check bool) "prop5" true
          (Identities.prop5 ~vars:example2_vars example2_formula));
    qtest "Proposition 3" ~count:40 (arb_formula ~nvars:4 ~depth:4) (fun f ->
        let vars = Vset.elements (Formula.vars f) in
        QCheck.assume (vars <> []);
        Identities.prop3 ~vars f);
    qtest "Proposition 5" ~count:60 (arb_formula ~nvars:5 ~depth:4) (fun f ->
        let vars = Vset.elements (Formula.vars f) in
        QCheck.assume (vars <> []);
        Identities.prop5 ~vars f);
    qtest "Claim 3.5 (OR-substitution counting)" ~count:40
      (QCheck.pair (arb_formula ~nvars:4 ~depth:3)
         (QCheck.make QCheck.Gen.(int_range 1 3)))
      (fun (f, l) ->
         let vars = Formula.vars f in
         QCheck.assume (not (Vset.is_empty vars));
         QCheck.assume (Vset.cardinal vars * l <= 12);
         Identities.claim35 ~l ~vars:(Vset.elements vars) f);
    qtest "Claim 3.7 (AND-substitution counting)" ~count:40
      (QCheck.pair (arb_formula ~nvars:4 ~depth:3)
         (QCheck.make QCheck.Gen.(int_range 1 3)))
      (fun (f, l) ->
         let vars = Formula.vars f in
         QCheck.assume (not (Vset.is_empty vars));
         QCheck.assume (Vset.cardinal vars * l <= 12);
         Identities.claim37 ~l ~vars:(Vset.elements vars) f);
    qtest "Claim 3.6" ~count:60 (arb_formula ~nvars:5 ~depth:4) (fun f ->
        let vars = Vset.elements (Formula.vars f) in
        QCheck.assume (vars <> []);
        Identities.claim36 ~vars f);
    qtest "Equality (7)" ~count:60 (arb_formula ~nvars:5 ~depth:4) (fun f ->
        let vars = Vset.elements (Formula.vars f) in
        QCheck.assume (vars <> []);
        Identities.eq7 ~vars f);
    qtest "Equality (8)" ~count:60 (arb_formula ~nvars:5 ~depth:4) (fun f ->
        let vars = Vset.elements (Formula.vars f) in
        QCheck.assume (vars <> []);
        Identities.eq8 ~vars f)
  ]

(* Direct check of the Lemma 3.4 weight repair: Shap(F^(l,i), Z_i) computed
   from the definition must equal Σ_j lemma34_weight(n,l,j) · d_j, and must
   NOT equal the paper's displayed Σ_j (2^l−1)^j c_j d_j for l ≥ 2 (on a
   witness where they differ). *)
let lemma34_repair_tests =
  let oracle_value f ~vars ~l ~keep =
    let universe = Vset.of_list vars in
    let g, z, blocks = Subst.uniform_or_except ~universe ~l ~keep f in
    let gvars = List.concat_map snd blocks in
    List.assoc z (Naive.shap_subsets ~vars:gvars g)
  in
  let predicted weight f ~vars ~l ~keep =
    let n = List.length vars in
    let others = List.filter (fun v -> v <> keep) vars in
    let acc = ref Rat.zero in
    for j = 0 to n - 1 do
      let d =
        Bigint.sub
          (Kvec.get (Brute.count_by_size ~vars:others (Formula.restrict keep true f)) j)
          (Kvec.get (Brute.count_by_size ~vars:others (Formula.restrict keep false f)) j)
      in
      acc := Rat.add !acc (Rat.mul_bigint (weight ~n ~l ~j) d)
    done;
    !acc
  in
  let paper_weight ~n ~l ~j =
    Rat.mul_bigint
      (Combi.shapley_coeff ~n j)
      (Bigint.pow (Bigint.two_pow_minus_one l) j)
  in
  [ t "repaired weight reduces to c_j at l=1" (fun () ->
        for n = 1 to 6 do
          for j = 0 to n - 1 do
            Alcotest.check rat "c_j"
              (Combi.shapley_coeff ~n j)
              (Reductions.lemma34_weight ~n ~l:1 ~j)
          done
        done);
    t "paper's displayed identity fails at the documented witness" (fun () ->
        (* F = X1 ∧ X2, i = 1, l = 2: true value 2/3, paper's 3/2 *)
        let f = parse "x1 & x2" in
        let truth = oracle_value f ~vars:[ 1; 2 ] ~l:2 ~keep:1 in
        Alcotest.check rat "true value" (r 2 3) truth;
        Alcotest.check rat "paper value is 3/2" (r 3 2)
          (predicted paper_weight f ~vars:[ 1; 2 ] ~l:2 ~keep:1));
    qtest "repaired identity holds" ~count:30
      (QCheck.pair (arb_formula ~nvars:3 ~depth:3)
         (QCheck.make QCheck.Gen.(int_range 1 3)))
      (fun (f, l) ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         QCheck.assume (((List.length vars - 1) * l) + 1 <= 8);
         let keep = List.hd vars in
         Rat.equal
           (oracle_value f ~vars ~l ~keep)
           (predicted
              (fun ~n ~l ~j -> Reductions.lemma34_weight ~n ~l ~j)
              f ~vars ~l ~keep))
  ]

let reduction_tests =
  [ qtest "Lemma 3.3: kcounts from counting oracle" ~count:40
      (arb_formula ~nvars:4 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         Kvec.equal
           (Brute.count_by_size ~vars f)
           (Pipeline.kcounts_via_count_oracle
              ~oracle:Pipeline.dpll_count_oracle ~vars f));
    qtest "Lemma 3.3 AND-variant" ~count:30
      (arb_formula ~nvars:3 ~depth:3)
      (fun f ->
         let universe = Formula.vars f in
         let vars = Vset.elements universe in
         QCheck.assume (vars <> []);
         let n = List.length vars in
         let kv =
           Reductions.kcounts_via_counting_and ~n ~count_subst:(fun ~l ->
               let g, blocks = Subst.uniform_and ~universe ~l f in
               Dpll.count_universe ~vars:(List.concat_map snd blocks) g)
         in
         Kvec.equal (Brute.count_by_size ~vars f) kv);
    qtest "Lemma 3.2 + 3.3: Shapley from counting oracle" ~count:30
      (arb_formula ~nvars:4 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let reference = Naive.shap_subsets ~vars f in
         let via =
           Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
             ~vars f
         in
         List.for_all2
           (fun (i, x) (j, y) -> i = j && Rat.equal x y)
           reference via);
    qtest "Lemma 3.4: counting from Shapley oracle" ~count:20
      (arb_formula ~nvars:3 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         QCheck.assume (List.length vars <= 3);
         Bigint.equal
           (Brute.count ~vars f)
           (Pipeline.count_via_shap_oracle
              ~oracle:Pipeline.shap_oracle_of_subsets ~vars f));
    t "Lemma 3.4 with spectator variables" (fun () ->
        (* universe strictly larger than vars(F) *)
        let f = parse "x1 & x2" in
        Alcotest.check bigint "over 4 vars" (bi 4)
          (Pipeline.count_via_shap_oracle
             ~oracle:Pipeline.shap_oracle_of_subsets ~vars:[ 1; 2; 3; 4 ] f));
    t "roundtrip # -> Shap -> # on example 2" (fun () ->
        Alcotest.check bigint "3" (bi 3)
          (Pipeline.roundtrip_count ~vars:example2_vars example2_formula));
    t "example 4 kcounts via oracle" (fun () ->
        (* #_k F[x1:=1] = (1,1,1) per Example 4 *)
        let f1 = Formula.restrict 1 true example2_formula in
        let kv =
          Pipeline.kcounts_via_count_oracle ~oracle:Pipeline.brute_count_oracle
            ~vars:[ 2; 3 ] f1
        in
        Alcotest.check kvec "(1,1,1)"
          (Kvec.make ~n:2 [| Bigint.one; Bigint.one; Bigint.one |])
          kv)
  ]

let circuit_shapley_tests =
  [ t "example 2 on compiled circuit (direct)" (fun () ->
        let c = Compile.compile example2_formula in
        check_shap "direct"
          [ (1, r 5 6); (2, r 2 6); (3, r (-1) 6) ]
          (Circuit_shapley.shap_direct ~vars:example2_vars c));
    t "example 2 on compiled circuit (via reduction)" (fun () ->
        let c = Compile.compile example2_formula in
        check_shap "reduction"
          [ (1, r 5 6); (2, r 2 6); (3, r (-1) 6) ]
          (Circuit_shapley.shap_via_reduction ~vars:example2_vars c));
    t "count via Shapley on circuit" (fun () ->
        let c = Compile.compile example2_formula in
        Alcotest.check bigint "3" (bi 3)
          (Circuit_shapley.count_via_shap ~vars:example2_vars c));
    qtest "circuit direct = naive" ~count:50 (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let c = Compile.compile f in
         let a = Naive.shap_subsets ~vars f in
         let b = Circuit_shapley.shap_direct ~vars c in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b);
    qtest "circuit reduction route = direct route" ~count:25
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let c = Compile.compile f in
         let a = Circuit_shapley.shap_direct ~vars c in
         let b = Circuit_shapley.shap_via_reduction ~vars c in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b);
    qtest "kcounts via reduction = direct circuit counter" ~count:30
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let c = Compile.compile f in
         Kvec.equal
           (Count.count_by_size ~vars c)
           (Circuit_shapley.kcounts_via_reduction ~vars c));
    qtest "circuit count via Shapley = brute" ~count:15
      (arb_formula ~nvars:3 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let c = Compile.compile f in
         Bigint.equal (Brute.count ~vars f)
           (Circuit_shapley.count_via_shap ~vars c));
    qtest "obdd-exported circuits give the same Shapley values" ~count:30
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let m = Obdd.create_manager ~order:vars in
         let c = Obdd.to_circuit m (Obdd.of_formula m f) in
         let a = Naive.shap_subsets ~vars f in
         let b = Circuit_shapley.shap_direct ~vars c in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b)
  ]

let suite =
  naive_tests @ identity_tests @ lemma34_repair_tests @ reduction_tests
  @ circuit_shapley_tests
