(** Tests for the OBDD package. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let parse = Parser.formula_of_string_exn

let mgr vars = Obdd.create_manager ~order:vars

let unit_tests =
  [ t "canonicity: equivalence is pointer equality" (fun () ->
        let m = mgr [ 1; 2 ] in
        let a = Obdd.of_formula m (parse "x1 & x2 | !x1 & x2") in
        let b = Obdd.of_formula m (parse "x2") in
        Alcotest.(check bool) "equal" true (Obdd.equal a b));
    t "tautology reduces to leaf" (fun () ->
        let m = mgr [ 1 ] in
        Alcotest.(check bool) "true leaf" true
          (Obdd.is_true (Obdd.of_formula m (parse "x1 | !x1"))));
    t "duplicate order rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (mgr [ 1; 1 ]);
             false
           with Invalid_argument _ -> true));
    t "variable outside order rejected" (fun () ->
        let m = mgr [ 1 ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Obdd.var m 5);
             false
           with Invalid_argument _ -> true));
    t "example 2 count" (fun () ->
        let m = mgr example2_vars in
        let o = Obdd.of_formula m example2_formula in
        Alcotest.check bigint "3" (bi 3) (Obdd.count m ~vars:example2_vars o);
        Alcotest.check kvec "kvec"
          (Brute.count_by_size ~vars:example2_vars example2_formula)
          (Obdd.count_by_size m ~vars:example2_vars o));
    t "count with unconstrained universe vars" (fun () ->
        let m = mgr [ 1; 2; 3 ] in
        let o = Obdd.of_formula m (parse "x2") in
        Alcotest.check bigint "4" (bi 4) (Obdd.count m ~vars:[ 1; 2; 3 ] o));
    t "restrict" (fun () ->
        let m = mgr example2_vars in
        let o = Obdd.of_formula m example2_formula in
        let o1 = Obdd.restrict m 1 true o in
        Alcotest.(check bool) "F[x1:=1] = x2 | !x3" true
          (Obdd.equal o1 (Obdd.of_formula m (parse "x2 | !x3")));
        Alcotest.(check bool) "F[x1:=0] = 0" true
          (Obdd.is_false (Obdd.restrict m 1 false o)));
    t "xor" (fun () ->
        let m = mgr [ 1; 2 ] in
        let x = Obdd.xor m (Obdd.var m 1) (Obdd.var m 2) in
        Alcotest.check bigint "2" (bi 2) (Obdd.count m ~vars:[ 1; 2 ] x));
    t "support" (fun () ->
        let m = mgr [ 1; 2; 3 ] in
        let o = Obdd.of_formula m (parse "x1 & x3 | !x1 & x3") in
        Alcotest.check vset "only x3" (Vset.singleton 3) (Obdd.support o));
    t "size of parity function is linear" (fun () ->
        let vars = List.init 8 (fun i -> i + 1) in
        let m = mgr vars in
        let parity =
          List.fold_left
            (fun acc v -> Obdd.xor m acc (Obdd.var m v))
            (Obdd.leaf_false m) vars
        in
        (* Reduced OBDD of parity over n vars has 2n+1 nodes *)
        Alcotest.(check int) "2n+1" 17 (Obdd.size parity);
        Alcotest.check bigint "half the space" (bi 128)
          (Obdd.count m ~vars parity))
  ]

let property_tests =
  [ qtest "of_formula preserves semantics" ~count:100
      (arb_formula ~nvars:6 ~depth:5)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let m = mgr vars in
         let o = Obdd.of_formula m f in
         let varr = Array.of_list vars in
         let ok = ref true in
         for mask = 0 to (1 lsl List.length vars) - 1 do
           let s = ref Vset.empty in
           Array.iteri
             (fun i v -> if mask land (1 lsl i) <> 0 then s := Vset.add v !s)
             varr;
           if Obdd.eval_set !s o <> Formula.eval_set !s f then ok := false
         done;
         !ok);
    qtest "obdd counting = brute force" ~count:80
      (arb_formula ~nvars:6 ~depth:5)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let m = mgr vars in
         let o = Obdd.of_formula m f in
         Kvec.equal
           (Brute.count_by_size ~vars f)
           (Obdd.count_by_size m ~vars o));
    qtest "to_circuit is d-D and equivalent" ~count:60
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let m = mgr vars in
         let c = Obdd.to_circuit m (Obdd.of_formula m f) in
         Circuit.check_deterministic ~max_vars:10 c
         && Circuit.equivalent_formula ~max_vars:10 c f);
    qtest "canonicity: equivalent formulas share the node" ~count:60
      (QCheck.pair (arb_formula ~nvars:4 ~depth:3) (arb_formula ~nvars:4 ~depth:3))
      (fun (f, g) ->
         let m = mgr [ 1; 2; 3; 4 ] in
         let a = Obdd.of_formula m f and b = Obdd.of_formula m g in
         Obdd.equal a b = Semantics.equivalent f g);
    qtest "neg involutive" ~count:60 (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let m = mgr vars in
         let o = Obdd.of_formula m f in
         Obdd.equal o (Obdd.neg m (Obdd.neg m o)))
  ]

let suite = unit_tests @ property_tests
