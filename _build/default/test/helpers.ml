(** Shared test utilities: Alcotest testables, QCheck generators, and
    small builders for formulas, circuits and databases. *)

let bigint = Alcotest.testable Bigint.pp Bigint.equal
let rat = Alcotest.testable Rat.pp Rat.equal
let kvec = Alcotest.testable Kvec.pp Kvec.equal
let formula = Alcotest.testable Formula.pp Formula.equal
let vset = Alcotest.testable Vset.pp Vset.equal

let shap_list =
  Alcotest.testable
    (fun ppf l ->
       Format.fprintf ppf "[%a]"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
            (fun ppf (i, v) -> Format.fprintf ppf "x%d=%a" i Rat.pp v))
         l)
    (fun a b ->
       List.length a = List.length b
       && List.for_all2
            (fun (i, x) (j, y) -> i = j && Rat.equal x y)
            (List.sort compare a) (List.sort compare b))

let check_shap = Alcotest.check shap_list

(* ------------------------------------------------------------------ *)
(* QCheck generators *)

(* Random formulas over variables 1..nvars; [depth] bounds the AST. *)
let gen_formula ~nvars ~depth =
  let open QCheck.Gen in
  let leaf =
    frequency
      [ (8, map Formula.var (int_range 1 nvars));
        (1, return Formula.tru);
        (1, return Formula.fls) ]
  in
  let rec go d =
    if d <= 0 then leaf
    else
      frequency
        [ (2, leaf);
          (2, map Formula.not_ (go (d - 1)));
          (3,
           map2 (fun a b -> Formula.conj2 a b) (go (d - 1)) (go (d - 1)));
          (3, map2 (fun a b -> Formula.disj2 a b) (go (d - 1)) (go (d - 1)))
        ]
  in
  go depth

let arb_formula ~nvars ~depth =
  QCheck.make ~print:Formula.to_string (gen_formula ~nvars ~depth)

(* Positive DNF over variables 1..nvars with at most [clauses] clauses. *)
let gen_pdnf ~nvars ~clauses =
  let open QCheck.Gen in
  let clause =
    map
      (fun vs -> Vset.of_list vs)
      (list_size (int_range 1 3) (int_range 1 nvars))
  in
  list_size (int_range 1 clauses) clause

let arb_pdnf ~nvars ~clauses =
  QCheck.make
    ~print:(fun d -> Formula.to_string (Nf.pdnf_to_formula d))
    (gen_pdnf ~nvars ~clauses)

(* Signed 62-bit integers as bigints together with their int value. *)
let gen_small_int =
  QCheck.Gen.(frequency
                [ (5, int_range (-1000) 1000);
                  (3, int_range (-1_000_000_000) 1_000_000_000);
                  (1, oneofl [ max_int; min_int; max_int - 1; min_int + 1; 0 ])
                ])

let arb_small_int = QCheck.make ~print:string_of_int gen_small_int

(* Large bigints via decimal strings. *)
let gen_big =
  let open QCheck.Gen in
  let* digits = int_range 1 60 in
  let* neg = bool in
  let* first = int_range 1 9 in
  let* rest = list_size (return (digits - 1)) (int_range 0 9) in
  let s =
    (if neg then "-" else "")
    ^ string_of_int first
    ^ String.concat "" (List.map string_of_int rest)
  in
  return (Bigint.of_string s)

let arb_big = QCheck.make ~print:Bigint.to_string gen_big

let gen_rat =
  let open QCheck.Gen in
  let* num = int_range (-10000) 10000 in
  let* den = int_range 1 10000 in
  return (Rat.of_ints num den)

let arb_rat = QCheck.make ~print:Rat.to_string gen_rat

(* Wrap a QCheck test as an Alcotest case. *)
let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Paper objects *)

(* Example 2's function F = X1 ∧ (X2 ∨ ¬X3). *)
let example2_formula = Parser.formula_of_string_exn "x1 & (x2 | !x3)"
let example2_vars = [ 1; 2; 3 ]

(* The Example 13 / 16 database for Q = R1(x), R2(x). *)
let example13_db () =
  let db = Database.create () in
  Database.declare db "R1" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "R2" ~kind:Database.Endogenous ~arity:1;
  ignore (Database.insert db "R1" [| Value.int 1 |]);
  ignore (Database.insert db "R1" [| Value.int 2 |]);
  ignore (Database.insert db "R2" [| Value.int 1 |]);
  ignore (Database.insert db "R2" [| Value.int 2 |]);
  db

(* A small random database for Q0 = R(x), S(x,y), T(y). *)
let random_q0_db ~a ~b ~density ~seed =
  let inst = Bipartite.random ~a ~b ~density ~seed in
  Hardness.encode inst
