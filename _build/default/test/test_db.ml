(** Tests for the database layer: storage, queries, lineage, safe plans
    and the dichotomy solver. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let r = Rat.of_ints

let database_tests =
  [ t "declare and insert" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:2;
        let v = Database.insert db "R" [| Value.int 1; Value.int 2 |] in
        Alcotest.(check (option int)) "var 1" (Some 1) v;
        Alcotest.(check bool) "mem" true
          (Database.mem db "R" [| Value.int 1; Value.int 2 |]);
        Alcotest.(check bool) "tuple_of_var" true
          (Database.tuple_of_var db 1 = ("R", [| Value.int 1; Value.int 2 |])));
    t "exogenous tuples carry no variable" (fun () ->
        let db = Database.create () in
        Database.declare db "S" ~kind:Database.Exogenous ~arity:1;
        Alcotest.(check (option int)) "none" None
          (Database.insert db "S" [| Value.int 1 |]));
    t "duplicate tuples rejected" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        Alcotest.(check bool) "raises" true
          (try
             ignore (Database.insert db "R" [| Value.int 1 |]);
             false
           with Invalid_argument _ -> true));
    t "arity mismatch rejected" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:2;
        Alcotest.(check bool) "raises" true
          (try
             ignore (Database.insert db "R" [| Value.int 1 |]);
             false
           with Invalid_argument _ -> true));
    t "lineage_vars and active domain" (fun () ->
        let db = example13_db () in
        Alcotest.check vset "4 vars" (Vset.of_list [ 1; 2; 3; 4 ])
          (Database.lineage_vars db);
        Alcotest.(check int) "adom" 2 (List.length (Database.active_domain db)));
    t "insert_with_var rejects reuse" (fun () ->
        let db = example13_db () in
        Alcotest.(check bool) "raises" true
          (try
             Database.insert_with_var db "R1" [| Value.int 9 |] ~lvar:1;
             false
           with Invalid_argument _ -> true))
  ]

let cq_tests =
  [ t "variables in order" (fun () ->
        let q = Db_parser.parse_query "R(x, y), S(y, z)" in
        Alcotest.(check (list string)) "xyz" [ "x"; "y"; "z" ] (Cq.variables q));
    t "at" (fun () ->
        let q = Db_parser.parse_query "R(x), S(x, y), T(y)" in
        Alcotest.(check (list int)) "at(x)" [ 0; 1 ] (Cq.at q "x");
        Alcotest.(check (list int)) "at(y)" [ 1; 2 ] (Cq.at q "y"));
    t "q0 is non-hierarchical, stretched q0 is hierarchical... not" (fun () ->
        (* Lemma 15: stretching preserves (non-)hierarchy. *)
        let q0 = Stretch.q0 () in
        Alcotest.(check bool) "q0 non-hier" false (Cq.is_hierarchical q0);
        let q0s, _ =
          Stretch.stretch_query ~is_endogenous:(fun n -> n <> "S") q0
        in
        Alcotest.(check bool) "stretched still non-hier" false
          (Cq.is_hierarchical q0s));
    t "hierarchical examples" (fun () ->
        List.iter
          (fun (s, expected) ->
             Alcotest.(check bool) s expected
               (Cq.is_hierarchical (Db_parser.parse_query s)))
          [ ("R(x), S(x, y)", true);
            ("R(x), S(x, y), T(y)", false);
            ("R(x, y), S(x), T(x, y, z)", true);
            ("R(x), S(y)", true);
            ("R(x, y), S(y, z), T(z, x)", false) ]);
    t "self-join detection" (fun () ->
        Alcotest.(check bool) "sjf" true
          (Cq.is_self_join_free (Db_parser.parse_query "R(x), S(x)"));
        Alcotest.(check bool) "self-join" false
          (Cq.is_self_join_free (Db_parser.parse_query "R(x), R(y)")));
    t "constants are not variables" (fun () ->
        let q = Db_parser.parse_query "R(x, 3)" in
        Alcotest.(check (list string)) "only x" [ "x" ] (Cq.variables q))
  ]

let lineage_tests =
  [ t "example 13 lineage" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R2(x)" in
        let f = Lineage.lineage_formula db q in
        (* (Y1 ∧ Y3) ∨ (Y2 ∧ Y4) with vars 1..4 *)
        Alcotest.(check bool) "equiv" true
          (Semantics.equivalent f
             (Parser.formula_of_string_exn "x1 & x3 | x2 & x4")));
    t "exogenous tuples vanish from lineage" (fun () ->
        let db = Database.create () in
        Stretch.declare_q0_schema db;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        ignore (Database.insert db "T" [| Value.int 2 |]);
        ignore (Database.insert db "S" [| Value.int 1; Value.int 2 |]);
        let f = Lineage.lineage_formula db (Stretch.q0 ()) in
        Alcotest.(check bool) "x1 & x2" true
          (Semantics.equivalent f (Parser.formula_of_string_exn "x1 & x2")));
    t "missing tuples kill assignments" (fun () ->
        let db = Database.create () in
        Stretch.declare_q0_schema db;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        ignore (Database.insert db "T" [| Value.int 2 |]);
        (* no S tuple: lineage is false *)
        Alcotest.(check bool) "false" true
          (Lineage.lineage db (Stretch.q0 ()) = []);
        Alcotest.(check bool) "no answer" false
          (Lineage.boolean_answer db (Stretch.q0 ())));
    t "constants in query filter tuples" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(1)" in
        let f = Lineage.lineage_formula db q in
        Alcotest.(check bool) "just x1" true
          (Semantics.equivalent f (Formula.var 1)));
    t "self-join uses the same variable twice" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        let q = Db_parser.parse_query "R(x), R(y)" in
        (* single tuple: both atoms map to it; clause = {x1} *)
        let f = Lineage.lineage_formula db q in
        Alcotest.(check bool) "x1" true (Semantics.equivalent f (Formula.var 1)));
    t "lineage of query with repeated variable in atom" (fun () ->
        let db = Database.create () in
        Database.declare db "E" ~kind:Database.Endogenous ~arity:2;
        ignore (Database.insert db "E" [| Value.int 1; Value.int 1 |]);
        ignore (Database.insert db "E" [| Value.int 1; Value.int 2 |]);
        let q = Db_parser.parse_query "E(x, x)" in
        let f = Lineage.lineage_formula db q in
        Alcotest.(check bool) "only the loop" true
          (Semantics.equivalent f (Formula.var 1)))
  ]

let gen_q0_inst =
  QCheck.make
    ~print:(fun (a, b, seed) -> Printf.sprintf "a=%d b=%d seed=%d" a b seed)
    QCheck.Gen.(
      let* a = int_range 1 3 in
      let* b = int_range 1 3 in
      let* seed = int_range 0 99999 in
      return (a, b, seed))

let safe_plan_tests =
  [ t "rejects non-hierarchical queries" (fun () ->
        let db, q = random_q0_db ~a:2 ~b:2 ~density:0.5 ~seed:7 in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Safe_plan.lineage_circuit db q);
             false
           with Safe_plan.Not_safe _ -> true));
    t "rejects self-joins" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R1(y)" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Safe_plan.lineage_circuit db q);
             false
           with Safe_plan.Not_safe _ -> true));
    t "example 13 safe plan matches brute force" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R2(x)" in
        check_shap "match"
          (Dichotomy.shapley_brute db q)
          (Safe_plan.shapley db q));
    t "hierarchical chain query" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
        List.iter (fun i -> ignore (Database.insert db "R" [| Value.int i |])) [ 1; 2 ];
        List.iter
          (fun (x, y) ->
             ignore (Database.insert db "S" [| Value.int x; Value.int y |]))
          [ (1, 1); (1, 2); (2, 1) ];
        let q = Db_parser.parse_query "R(x), S(x, y)" in
        let c = Safe_plan.lineage_circuit db q in
        Alcotest.(check bool) "equiv lineage" true
          (Circuit.equivalent_formula ~max_vars:10 c
             (Lineage.lineage_formula db q));
        check_shap "shapley" (Dichotomy.shapley_brute db q) (Safe_plan.shapley db q));
    qtest "safe plan = brute force on random hierarchical DBs" ~count:25
      gen_q0_inst
      (fun (a, b, seed) ->
         (* hierarchical query R(x), S(x,y) over random S *)
         let st = Random.State.make [| seed |] in
         let db = Database.create () in
         Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
         Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
         for i = 0 to a - 1 do
           ignore (Database.insert db "R" [| Value.int i |])
         done;
         for i = 0 to a - 1 do
           for j = 0 to b - 1 do
             if Random.State.bool st then
               ignore (Database.insert db "S" [| Value.int i; Value.int j |])
           done
         done;
         let q = Db_parser.parse_query "R(x), S(x, y)" in
         let reference = Dichotomy.shapley_brute db q in
         let got = Safe_plan.shapley db q in
         List.for_all2
           (fun (i, x) (j, y) -> i = j && Rat.equal x y)
           reference got)
  ]

let constant_plan_tests =
  [ t "safe plan handles constants in the query" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
        List.iter (fun i -> ignore (Database.insert db "R" [| Value.int i |])) [ 1; 2 ];
        List.iter
          (fun (x, y) ->
             ignore (Database.insert db "S" [| Value.int x; Value.int y |]))
          [ (1, 3); (1, 4); (2, 3) ];
        (* pin y to the constant 3 *)
        let q = Db_parser.parse_query "R(x), S(x, 3)" in
        check_shap "matches brute force"
          (Dichotomy.shapley_brute db q)
          (Safe_plan.shapley db q));
    t "fully ground query" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        ignore (Database.insert db "R" [| Value.int 2 |]);
        let q = Db_parser.parse_query "R(1)" in
        let shap = Safe_plan.shapley db q in
        (* F = x1 over universe {x1, x2} *)
        Alcotest.check rat "x1 = 1" Rat.one (List.assoc 1 shap);
        Alcotest.check rat "x2 dummy" Rat.zero (List.assoc 2 shap));
    t "query over an empty relation" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        let q = Db_parser.parse_query "R(x), S(x, y)" in
        (* S empty: lineage false; every Shapley value 0 *)
        let shap = Safe_plan.shapley db q in
        List.iter (fun (_, v) -> Alcotest.check rat "zero" Rat.zero v) shap)
  ]

(* A hierarchical database whose lineage is ⋁_i (r_i ∧ (⋁_j s_ij)):
   linear OBDD under the plan order, exponential under a bad order. *)
let block_db ~blocks ~per_block =
  let db = Database.create () in
  Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
  for i = 1 to blocks do
    ignore (Database.insert db "R" [| Value.int i |])
  done;
  for i = 1 to blocks do
    for j = 1 to per_block do
      ignore (Database.insert db "S" [| Value.int i; Value.int j |])
    done
  done;
  db

let obdd_order_tests =
  [ t "plan order keeps the OBDD linear" (fun () ->
        let db = block_db ~blocks:6 ~per_block:2 in
        let q = Db_parser.parse_query "R(x), S(x, y)" in
        let m, o = Safe_plan.lineage_obdd db q in
        let n = Vset.cardinal (Database.lineage_vars db) in
        (* linear bound with small constant *)
        Alcotest.(check bool) "small" true (Obdd.size o <= (4 * n) + 2);
        (* counting through the OBDD agrees with the circuit counter *)
        let vars = Vset.elements (Database.lineage_vars db) in
        Alcotest.check bigint "same count"
          (Count.count ~vars (Safe_plan.lineage_circuit db q))
          (Obdd.count m ~vars o));
    t "interleaving-hostile order blows up" (fun () ->
        let db = block_db ~blocks:6 ~per_block:2 in
        let q = Db_parser.parse_query "R(x), S(x, y)" in
        (* bad order: all R variables first, then all S variables *)
        let all = Vset.elements (Database.lineage_vars db) in
        let r_vars, s_vars =
          List.partition (fun v -> fst (Database.tuple_of_var db v) = "R") all
        in
        let bad = Obdd.create_manager ~order:(r_vars @ s_vars) in
        let o_bad = Obdd.of_formula bad (Lineage.lineage_formula db q) in
        let _, o_good = Safe_plan.lineage_obdd db q in
        Alcotest.(check bool) "bad >> good" true
          (Obdd.size o_bad > 3 * Obdd.size o_good));
    t "order covers all lineage variables" (fun () ->
        let db = block_db ~blocks:3 ~per_block:2 in
        (* add an S tuple never joined (dangling) — still in the order *)
        ignore (Database.insert db "S" [| Value.int 99; Value.int 1 |]);
        let q = Db_parser.parse_query "R(x), S(x, y)" in
        let order = Safe_plan.obdd_order db q in
        Alcotest.check vset "all vars"
          (Database.lineage_vars db)
          (Vset.of_list order))
  ]

let dichotomy_tests =
  [ t "classification" (fun () ->
        Alcotest.(check bool) "hier" true
          (Dichotomy.classify (Db_parser.parse_query "R(x), S(x, y)")
           = Dichotomy.Hierarchical);
        (match Dichotomy.classify (Stretch.q0 ()) with
         | Dichotomy.Non_hierarchical (x, y) ->
           Alcotest.(check bool) "witness" true
             ((x, y) = ("x", "y") || (x, y) = ("y", "x"))
         | _ -> Alcotest.fail "expected non-hierarchical");
        Alcotest.(check bool) "self-join" true
          (Dichotomy.classify (Db_parser.parse_query "R(x), R(y)")
           = Dichotomy.Has_self_joins));
    qtest "dichotomy solver = brute force (q0, both branches)" ~count:20
      gen_q0_inst
      (fun (a, b, seed) ->
         let db, q = random_q0_db ~a ~b ~density:0.5 ~seed in
         let got, solver = Dichotomy.shapley db q in
         let reference = Dichotomy.shapley_brute db q in
         solver = Dichotomy.Compiled_dnf
         && List.for_all2
              (fun (i, x) (j, y) -> i = j && Rat.equal x y)
              reference got);
    qtest "count_models agrees with DPLL" ~count:20 gen_q0_inst
      (fun (a, b, seed) ->
         let db, q = random_q0_db ~a ~b ~density:0.5 ~seed in
         let got, _ = Dichotomy.count_models db q in
         let universe = Vset.elements (Database.lineage_vars db) in
         Bigint.equal got
           (Dpll.count_universe ~vars:universe (Lineage.lineage_formula db q)))
  ]

let explain_tests =
  [ t "self-join queries solved via compilation" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R1(y)" in
        let got, solver = Dichotomy.shapley db q in
        Alcotest.(check bool) "compiled" true (solver = Dichotomy.Compiled_dnf);
        check_shap "matches brute" (Dichotomy.shapley_brute db q) got);
    t "explain report is ranked and sums per Prop. 5" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R2(x)" in
        let report = Explain.explain db q in
        Alcotest.(check bool) "answer" true report.Explain.answer;
        Alcotest.(check bool) "safe plan" true
          (report.Explain.solver = Dichotomy.Safe_plan_circuit);
        Alcotest.check rat "sum 1" Rat.one (Explain.total report);
        (* ranking is decreasing *)
        let rec decreasing = function
          | (a : Explain.entry) :: (b :: _ as rest) ->
            Rat.compare a.Explain.value b.Explain.value >= 0 && decreasing rest
          | _ -> true
        in
        Alcotest.(check bool) "sorted" true (decreasing report.Explain.entries);
        Alcotest.(check int) "top 2" 2 (List.length (Explain.top_k report 2)));
    t "explain on a false answer" (fun () ->
        let db = Database.create () in
        Stretch.declare_q0_schema db;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        ignore (Database.insert db "T" [| Value.int 2 |]);
        let report = Explain.explain db (Stretch.q0 ()) in
        Alcotest.(check bool) "no answer" false report.Explain.answer;
        Alcotest.check rat "sum 0" Rat.zero (Explain.total report))
  ]

let parser_tests =
  [ t "full file format" (fun () ->
        let text =
          "# demo\n\
           rel R endo 1\n\
           row R 1\n\
           row R 2\n\
           rel S exo 2\n\
           row S 1 7\n\
           rel T endo 1\n\
           row T 7\n\
           query R(x), S(x, y), T(y)\n"
        in
        let db, q = Db_parser.parse_string text in
        Alcotest.(check int) "3 rels" 3 (List.length (Database.relation_names db));
        Alcotest.(check bool) "answer" true (Lineage.boolean_answer db q));
    t "string values and quoting" (fun () ->
        let text = "rel R endo 1\nrow R alice\nquery R('alice')" in
        let db, q = Db_parser.parse_string text in
        Alcotest.(check bool) "answer" true (Lineage.boolean_answer db q));
    t "errors carry line numbers" (fun () ->
        List.iter
          (fun text ->
             Alcotest.(check bool) "raises" true
               (try
                  ignore (Db_parser.parse_string text);
                  false
                with Invalid_argument msg ->
                  String.length msg >= 9 && String.sub msg 0 9 = "Db_parser"))
          [ "bogus line\nquery R(x)";
            "rel R endo xyz\nquery R(x)";
            "row R 1\nquery R(x)";
            "rel R endo 1\nrow R 1" (* no query *) ])
  ]

let suite =
  database_tests @ cq_tests @ lineage_tests @ safe_plan_tests
  @ constant_plan_tests @ obdd_order_tests @ dichotomy_tests
  @ explain_tests @ parser_tests
