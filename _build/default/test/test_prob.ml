(** Tests for probability computation, SHAP scores, the PQE reduction
    route, Banzhaf values, and Monte-Carlo sampling. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let r = Rat.of_ints
let parse = Parser.formula_of_string_exn
let half = Prob.uniform_half

(* Reference probability by brute force. *)
let brute_probability ~weights f =
  let vars = Array.of_list (Vset.elements (Formula.vars f)) in
  let n = Array.length vars in
  let total = ref Rat.zero in
  for mask = 0 to (1 lsl n) - 1 do
    let s = ref Vset.empty in
    let w = ref Rat.one in
    Array.iteri
      (fun i v ->
         if mask land (1 lsl i) <> 0 then begin
           s := Vset.add v !s;
           w := Rat.mul !w (weights v)
         end
         else w := Rat.mul !w (Rat.sub Rat.one (weights v)))
      vars;
    if Formula.eval_set !s f then total := Rat.add !total !w
  done;
  !total

let probability_tests =
  [ t "uniform half = count / 2^n" (fun () ->
        let c = Compile.compile example2_formula in
        Alcotest.check rat "3/8" (r 3 8) (Prob.probability ~weights:half c));
    t "biased weights" (fun () ->
        let f = parse "x1 & x2" in
        let weights v = if v = 1 then r 1 3 else r 1 4 in
        Alcotest.check rat "1/12" (r 1 12)
          (Prob.probability ~weights (Compile.compile f)));
    t "probability of constants" (fun () ->
        Alcotest.check rat "true" Rat.one
          (Prob.probability ~weights:half Circuit.ctrue);
        Alcotest.check rat "false" Rat.zero
          (Prob.probability ~weights:half Circuit.cfalse));
    qtest "circuit probability = brute force" ~count:60
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let weights v = r 1 (v + 2) in
         Rat.equal
           (brute_probability ~weights f)
           (Prob.probability ~weights (Compile.compile f)));
    qtest "safe-plan probability = compiled probability" ~count:20
      (QCheck.make QCheck.Gen.(int_range 0 9999))
      (fun seed ->
         let st = Random.State.make [| seed |] in
         let db = Database.create () in
         Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
         Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
         for i = 0 to 2 do
           ignore (Database.insert db "R" [| Value.int i |])
         done;
         for i = 0 to 2 do
           for j = 0 to 1 do
             if Random.State.bool st then
               ignore (Database.insert db "S" [| Value.int i; Value.int j |])
           done
         done;
         let q = Db_parser.parse_query "R(x), S(x, y)" in
         let weights v = r 1 (v + 1) in
         Rat.equal
           (Pqe.probability db q ~weights)
           (Prob.probability ~weights
              (Compile.compile (Lineage.lineage_formula db q))))
  ]

let shap_score_tests =
  [ t "paper's fact: Shapley = SHAP at e=1, p=0" (fun () ->
        let c = Compile.compile example2_formula in
        check_shap "equal"
          (Naive.shap_subsets ~vars:example2_vars example2_formula)
          (Prob.shap_score
             ~weights:(fun _ -> Rat.zero)
             ~entity:(fun _ -> true)
             ~vars:example2_vars c));
    t "paper's warning: Shapley <> SHAP at p=1/2" (fun () ->
        let c = Compile.compile example2_formula in
        let score =
          Prob.shap_score ~weights:half ~entity:(fun _ -> true)
            ~vars:example2_vars c
        in
        (* concrete values pinned: 5/12, 7/24, -1/12 *)
        check_shap "p=1/2 values"
          [ (1, r 5 12); (2, r 7 24); (3, r (-1) 12) ]
          score;
        Alcotest.(check bool) "differs from Shapley" false
          (Rat.equal (List.assoc 1 score) (r 5 6)));
    t "SHAP scores sum to F(e) - E[F]" (fun () ->
        (* the efficiency property of the SHAP score *)
        let c = Compile.compile example2_formula in
        let entity v = v <> 3 in
        let weights v = r 1 (v + 1) in
        let score =
          Prob.shap_score ~weights ~entity ~vars:example2_vars c
        in
        let sum =
          List.fold_left (fun a (_, v) -> Rat.add a v) Rat.zero score
        in
        let f_e =
          if Formula.eval_set (Vset.of_list [ 1; 2 ]) example2_formula then
            Rat.one
          else Rat.zero
        in
        let expectation = Prob.probability ~weights c in
        Alcotest.check rat "efficiency" (Rat.sub f_e expectation) sum);
    qtest "Shapley = SHAP(e=1, p=0) on random functions" ~count:40
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let c = Compile.compile f in
         let a = Naive.shap_subsets ~vars f in
         let b =
           Prob.shap_score
             ~weights:(fun _ -> Rat.zero)
             ~entity:(fun _ -> true)
             ~vars c
         in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b);
    qtest "expectation_poly coefficient 0 is the plain probability" ~count:40
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         QCheck.assume (not (Vset.is_empty (Formula.vars f)));
         let weights v = r 1 (v + 2) in
         let c = Compile.compile f in
         let h = Prob.expectation_poly ~weights ~entity:(fun _ -> true) c in
         Rat.equal (Poly.coeff h 0) (Prob.probability ~weights c))
  ]

let pqe_route_tests =
  [ t "kcounts via probability interpolation" (fun () ->
        Alcotest.check kvec "example 2"
          (Brute.count_by_size ~vars:example2_vars example2_formula)
          (Pipeline.kcounts_via_pqe_oracle ~oracle:Pipeline.pqe_circuit_oracle
             ~vars:example2_vars example2_formula));
    qtest "Shap via PQE (prior work) = Shap via counting (this paper)"
      ~count:30 (arb_formula ~nvars:4 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let a =
           Pipeline.shap_via_pqe_oracle ~oracle:Pipeline.pqe_circuit_oracle
             ~vars f
         in
         let b =
           Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
             ~vars f
         in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b);
    t "db-level Shapley via PQE matches the dichotomy solver" (fun () ->
        let db, q = random_q0_db ~a:2 ~b:2 ~density:0.7 ~seed:5 in
        let via_pqe = Pqe.shapley_via_pqe db q in
        let direct, _ = Dichotomy.shapley db q in
        check_shap "equal" direct via_pqe)
  ]

let banzhaf_tests =
  [ t "example 2 Banzhaf values" (fun () ->
        (* diffs: x1: #(x2|!x3) - 0 = 3; x2: #x1 - #(x1&!x3) = 2-1 = 1;
           x3: #(x1&x2) - #x1 = 1-2 = -1; divided by 2^2 *)
        check_shap "banzhaf"
          [ (1, r 3 4); (2, r 1 4); (3, r (-1) 4) ]
          (Power_indices.banzhaf ~vars:example2_vars example2_formula));
    t "banzhaf of a dictator is 1" (fun () ->
        check_shap "dictator"
          [ (1, Rat.one); (2, Rat.zero) ]
          (Power_indices.banzhaf ~vars:[ 1; 2 ] (Formula.var 1)));
    qtest "circuit = brute" ~count:40 (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let a = Power_indices.banzhaf ~vars f in
         let b = Power_indices.banzhaf_circuit ~vars (Compile.compile f) in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b);
    qtest "count-oracle route agrees" ~count:30 (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let a = Power_indices.banzhaf ~vars f in
         let b =
           Power_indices.banzhaf_via_count_oracle
             ~count:(fun ~vars f -> Dpll.count_universe ~vars f)
             ~vars f
         in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b);
    qtest "banzhaf and shapley agree in sign" ~count:40
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let b = Power_indices.banzhaf ~vars f in
         let s = Naive.shap_subsets ~vars f in
         (* both are positive combinations of the same marginal diffs for
            monotone behaviour; in general at least the zero pattern of a
            dummy variable must coincide *)
         List.for_all2
           (fun (i, x) (j, y) ->
              i = j && (not (Rat.is_zero x) || Rat.is_zero y))
           b s)
  ]

let sampling_tests =
  [ t "estimates converge on example 2" (fun () ->
        let est =
          Sampling.shap_sample ~seed:7 ~samples:30000 ~vars:example2_vars
            example2_formula
        in
        let expected = [ (1, 5.0 /. 6.0); (2, 1.0 /. 3.0); (3, -1.0 /. 6.0) ] in
        List.iter
          (fun e ->
             let truth = List.assoc e.Sampling.variable expected in
             Alcotest.(check bool)
               (Printf.sprintf "x%d within interval" e.Sampling.variable)
               true
               (Float.abs (e.Sampling.value -. truth) <= e.Sampling.half_width))
          est);
    t "samples_for bound shape" (fun () ->
        let m1 = Sampling.samples_for ~eps:0.1 ~delta:0.05 in
        let m2 = Sampling.samples_for ~eps:0.05 ~delta:0.05 in
        Alcotest.(check bool) "quadratic in 1/eps" true (m2 >= 3 * m1);
        Alcotest.(check bool) "raises on bad input" true
          (try
             ignore (Sampling.samples_for ~eps:0.0 ~delta:0.5);
             false
           with Invalid_argument _ -> true));
    t "rejects nonsense" (fun () ->
        Alcotest.(check bool) "samples=0" true
          (try
             ignore
               (Sampling.shap_sample ~samples:0 ~vars:[ 1 ] (Formula.var 1));
             false
           with Invalid_argument _ -> true));
    t "deterministic under fixed seed" (fun () ->
        let a =
          Sampling.shap_sample ~seed:3 ~samples:100 ~vars:example2_vars
            example2_formula
        in
        let b =
          Sampling.shap_sample ~seed:3 ~samples:100 ~vars:example2_vars
            example2_formula
        in
        List.iter2
          (fun x y ->
             Alcotest.(check (float 0.0)) "same" x.Sampling.value y.Sampling.value)
          a b)
  ]

let suite =
  probability_tests @ shap_score_tests @ pqe_route_tests @ banzhaf_tests
  @ sampling_tests
