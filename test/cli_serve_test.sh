#!/usr/bin/env bash
# CLI-level checks for `shapmc serve`: startup, the JSON API over a real
# socket, request limits, OpenMetrics, graceful SIGTERM shutdown with
# exit 0, and immediate port reuse after the kill.
# Invoked by the dune rule in test/dune as:
#   bash cli_serve_test.sh SHAPMC_EXE SERVE_PROBE_EXE
set -euo pipefail

exe="$1"
probe="$2"
# dune hands over build-relative paths; bare names need ./ to exec
case "$exe" in */*) ;; *) exe="./$exe" ;; esac
case "$probe" in */*) ;; *) probe="./$probe" ;; esac
fail() { echo "cli-serve FAILED: $1" >&2; exit 1; }

cat > serve_demo.db <<'EOF'
# Example 13: Q = R1(x), R2(x), all four tuples endogenous.
rel R1 endo 1
row R1 1
row R1 2
rel R2 endo 1
row R2 1
row R2 2
query R1(x), R2(x)
EOF

"$exe" serve --port 0 --read-timeout 5 --access-log access.jsonl serve_demo.db > serve.log 2>&1 &
srv=$!
trap 'kill -9 $srv 2>/dev/null || true' EXIT

# Wait for the startup line and extract the ephemeral port.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' serve.log | head -1)
  [ -n "$port" ] && break
  sleep 0.05
done
[ -n "$port" ] || fail "server did not announce a port: $(cat serve.log)"

# healthz, including the observability fields
out=$("$probe" 127.0.0.1 "$port" GET /healthz)
grep -q "HTTP/1.1 200" <<<"$out" || fail "healthz not 200: $out"
grep -q '"status":"ok"' <<<"$out" || fail "healthz body wrong: $out"
grep -q '"version":' <<<"$out" || fail "healthz version missing: $out"
grep -q '"pid":' <<<"$out" || fail "healthz pid missing: $out"
grep -q '"uptime_seconds":' <<<"$out" || fail "healthz uptime missing: $out"

# every response carries correlation headers
grep -qi "x-request-id:" <<<"$out" || fail "X-Request-Id header missing: $out"
grep -qi "traceparent: 00-" <<<"$out" || fail "traceparent header missing: $out"

# the query catalog carries the loaded file under its basename
out=$("$probe" 127.0.0.1 "$port" GET /v1/queries)
grep -q '"name":"serve_demo"' <<<"$out" || fail "queries body wrong: $out"
grep -q '"classification":"hierarchical"' <<<"$out" || fail "classification missing: $out"

# exact Shapley value of fact 1 (Example 13: 1/4)
out=$("$probe" 127.0.0.1 "$port" POST /v1/shapley '{"query":"serve_demo","fact":1}')
grep -q "HTTP/1.1 200" <<<"$out" || fail "shapley not 200: $out"
grep -q '"num":"1","den":"4"' <<<"$out" || fail "shapley value wrong: $out"

# ...and it agrees with the batch CLI on the same database
batch=$("$exe" lineage serve_demo.db)
grep -q "1/4" <<<"$batch" || fail "batch CLI disagrees: $batch"

# repeated queries are served from the compilation cache (default on):
# the answers stay bit-identical and /metrics reports cache hits
first=$("$probe" 127.0.0.1 "$port" POST /v1/shapley/all '{"query":"serve_demo"}')
grep -q "HTTP/1.1 200" <<<"$first" || fail "shapley/all not 200: $first"
for _ in 1 2 3; do
  again=$("$probe" 127.0.0.1 "$port" POST /v1/shapley/all '{"query":"serve_demo"}')
  [ "$(tail -1 <<<"$again")" = "$(tail -1 <<<"$first")" ] \
    || fail "cached answer differs from the first: $again"
done

# unknown routes / facts
out=$("$probe" 127.0.0.1 "$port" GET /nope)
grep -q "HTTP/1.1 404" <<<"$out" || fail "missing 404: $out"
out=$("$probe" 127.0.0.1 "$port" POST /v1/shapley '{"query":"serve_demo","fact":99}')
grep -q "HTTP/1.1 404" <<<"$out" || fail "unknown fact not 404: $out"
out=$("$probe" 127.0.0.1 "$port" POST /healthz)
grep -q "HTTP/1.1 405" <<<"$out" || fail "healthz POST not 405: $out"
out=$("$probe" 127.0.0.1 "$port" POST /v1/shapley 'not json')
grep -q "HTTP/1.1 400" <<<"$out" || fail "malformed body not 400: $out"

# body limit: a >1 MiB declared body answers 413 (body shipped via
# file — argv cannot carry it)
head -c 1048577 /dev/zero | tr '\0' 'x' > bigbody.txt
out=$("$probe" 127.0.0.1 "$port" POST /v1/shapley @bigbody.txt)
grep -q "HTTP/1.1 413" <<<"$out" || fail "oversized body not 413: $out"

# metrics: OpenMetrics exposition with the http and rolling SLO series
out=$("$probe" 127.0.0.1 "$port" GET /metrics)
grep -q "shapmc_http_requests_total" <<<"$out" || fail "http_requests missing from /metrics: $out"
grep -q "shapmc_http_slo_error_ratio" <<<"$out" || fail "SLO series missing from /metrics: $out"
grep -q "# EOF" <<<"$out" || fail "OpenMetrics terminator missing"
awk '/^shapmc_cache_hits_total/ { if ($NF + 0 > 0) ok = 1 } END { exit !ok }' <<<"$out" \
  || fail "no cache hits recorded after repeated queries: $out"

# debug ring: the recent requests are listed, and a profile is servable
out=$("$probe" 127.0.0.1 "$port" GET /v1/debug/requests)
grep -q "HTTP/1.1 200" <<<"$out" || fail "debug listing not 200: $out"
grep -q '"requests":' <<<"$out" || fail "debug listing body wrong: $out"
rid=$(grep -o '"id":"[^"]*"' <<<"$out" | head -1 | sed 's/"id":"\(.*\)"/\1/')
[ -n "$rid" ] || fail "no request id in the debug listing: $out"
out=$("$probe" 127.0.0.1 "$port" GET "/v1/debug/requests/$rid")
grep -q '"events":' <<<"$out" || fail "debug profile body wrong: $out"
out=$("$probe" 127.0.0.1 "$port" GET "/v1/debug/requests/$rid?format=chrome")
grep -q '"traceEvents":' <<<"$out" || fail "chrome export body wrong: $out"

# graceful shutdown: SIGTERM drains and exits 0
kill -TERM $srv
if ! wait $srv; then fail "server exited nonzero on SIGTERM"; fi
grep -q "shut down cleanly" serve.log || fail "no clean-shutdown line: $(cat serve.log)"

# the access log has one JSON line per request, and `shapmc tail --once`
# summarizes it
[ -s access.jsonl ] || fail "access log empty or missing"
head -1 access.jsonl | grep -q '"route":' || fail "access log line malformed: $(head -1 access.jsonl)"
tail_out=$("$exe" tail --once access.jsonl)
grep -q "TOTAL" <<<"$tail_out" || fail "tail --once has no TOTAL row: $tail_out"
grep -q "/healthz" <<<"$tail_out" || fail "tail --once misses the healthz route: $tail_out"

# the port is released: an immediate restart on the SAME port binds
"$exe" serve --port "$port" serve_demo.db > serve2.log 2>&1 &
srv=$!
ok=""
for _ in $(seq 1 100); do
  grep -q "listening on" serve2.log && { ok=1; break; }
  grep -qi "error" serve2.log && break
  sleep 0.05
done
[ -n "$ok" ] || fail "restart on port $port failed (EADDRINUSE?): $(cat serve2.log)"
out=$("$probe" 127.0.0.1 "$port" GET /healthz)
grep -q "HTTP/1.1 200" <<<"$out" || fail "restarted server not healthy: $out"
kill -TERM $srv
wait $srv || fail "restarted server exited nonzero"

echo "cli-serve OK"
