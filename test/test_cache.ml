(** The serving cache: LRU mechanics, single-flight stampede control,
    tier round-trips, invalidation hooks — and the differential harness
    proving cached answers are bit-identical to fresh solves under
    random mutation/solve interleavings, sequentially and on the domain
    pool.

    Determinism: the qcheck cases use fixed-seed [Random.State]s (same
    idiom as {!Test_differential}), and every scenario rebuilds its
    database and cache from scratch, so a reported counterexample
    replays. *)

open Helpers

let iterations default =
  match Sys.getenv_opt "SHAPMC_QCHECK_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> default)
  | None -> default

let dtest ~seed ~count name arb prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 2025; seed |])
    (QCheck.Test.make ~count:(iterations count) ~name arb prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lru *)

let lru_eviction_order () =
  let evicted = ref [] in
  let l = Lru.create ~on_evict:(fun k -> evicted := k :: !evicted)
      ~capacity:3 () in
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  Lru.put l "c" 3;
  Alcotest.(check (list string)) "MRU first" [ "c"; "b"; "a" ] (Lru.keys l);
  (* A find bumps: "a" becomes MRU, so the next eviction takes "b". *)
  check_bool "find a" true (Lru.find l "a" = Some 1);
  Lru.put l "d" 4;
  Alcotest.(check (list string)) "b evicted" [ "d"; "a"; "c" ] (Lru.keys l);
  Alcotest.(check (list string)) "on_evict saw b" [ "b" ] !evicted;
  check_bool "b gone" false (Lru.mem l "b");
  check_int "length" 3 (Lru.length l);
  check_int "capacity" 3 (Lru.capacity l)

let lru_replace_bumps () =
  let l = Lru.create ~capacity:2 () in
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  Lru.put l "a" 10;
  (* replace: "a" is MRU again *)
  Lru.put l "c" 3;
  (* evicts "b", the LRU *)
  check_bool "a survives with new value" true (Lru.find l "a" = Some 10);
  check_bool "b evicted" false (Lru.mem l "b");
  check_bool "c present" true (Lru.mem l "c")

let lru_counters () =
  let l = Lru.create ~capacity:2 () in
  Lru.put l "a" 1;
  ignore (Lru.find l "a");
  ignore (Lru.find l "a");
  ignore (Lru.find l "nope");
  Lru.put l "b" 2;
  Lru.put l "c" 3;
  check_int "hits" 2 (Lru.hits l);
  check_int "misses" 1 (Lru.misses l);
  check_int "evictions" 1 (Lru.evictions l);
  check_bool "remove b" true (Lru.remove l "b");
  check_bool "remove b again" false (Lru.remove l "b");
  Lru.clear l;
  check_int "cleared" 0 (Lru.length l);
  check_int "counters survive clear" 2 (Lru.hits l)

let lru_remove_tagged () =
  let l = Lru.create ~capacity:8 () in
  Lru.put l ~tags:[ "red"; "big" ] "a" 1;
  Lru.put l ~tags:[ "red" ] "b" 2;
  Lru.put l ~tags:[ "blue" ] "c" 3;
  Lru.put l "d" 4;
  check_int "two red entries dropped" 2 (Lru.remove_tagged l "red");
  check_int "no green entries" 0 (Lru.remove_tagged l "green");
  Alcotest.(check (list string)) "blue and untagged survive" [ "d"; "c" ]
    (Lru.keys l);
  (* Replacing an entry replaces its tags too. *)
  Lru.put l ~tags:[ "blue" ] "e" 5;
  Lru.put l ~tags:[ "red" ] "e" 5;
  check_int "only c is still blue" 1 (Lru.remove_tagged l "blue");
  check_int "e retagged red" 1 (Lru.remove_tagged l "red")

let lru_bad_capacity () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Lru.create ~capacity:0 () : int Lru.t))

(* ------------------------------------------------------------------ *)
(* Single-flight *)

(* Spawn [n] domains that all enter [run] on the same key at once: an
   arrival counter is incremented immediately before [run], and the
   computation spins until everyone has arrived (plus a grace sleep for
   the increment-to-run window), so every sibling is parked on the
   flight when the leader finally computes. *)
let stampede ~n f =
  let sf = Single_flight.create () in
  let arrived = Atomic.make 0 in
  let body () =
    while Atomic.get arrived < n do
      Domain.cpu_relax ()
    done;
    Unix.sleepf 0.05;
    f ()
  in
  let ds =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr arrived;
            match Single_flight.run sf "k" body with
            | v -> Ok v
            | exception e -> Error e))
  in
  let rs = List.map Domain.join ds in
  (sf, rs)

let single_flight_stampede () =
  let solves = Atomic.make 0 in
  let sf, rs =
    stampede ~n:8 (fun () ->
        Atomic.incr solves;
        42)
  in
  check_int "exactly one solve" 1 (Atomic.get solves);
  check_int "exactly one leader" 1 (Single_flight.leads sf);
  check_int "no flight left up" 0 (Single_flight.in_flight sf);
  List.iter
    (fun r -> check_bool "every caller got the answer" true (r = Ok 42))
    rs

let single_flight_failure () =
  let sf, rs =
    stampede ~n:4 (fun () -> failwith "boom")
  in
  check_int "one leader" 1 (Single_flight.leads sf);
  List.iter
    (fun r ->
      match r with
      | Error (Failure m) -> Alcotest.(check string) "exception shared" "boom" m
      | _ -> Alcotest.fail "expected the leader's failure")
    rs;
  (* The failed flight is dropped: the key is retryable. *)
  check_int "retry succeeds" 7 (Single_flight.run sf "k" (fun () -> 7));
  check_int "retry led" 2 (Single_flight.leads sf)

(* ------------------------------------------------------------------ *)
(* Cache tiers *)

let counts_tier_roundtrip () =
  let c = Cache.create () in
  let fills = ref 0 in
  let kv () =
    incr fills;
    Kvec.make ~n:1 [| Bigint.of_int !fills; Bigint.of_int 2 |]
  in
  let a = Cache.counts c ~key:"k1" kv in
  let b = Cache.counts c ~key:"k1" kv in
  let d = Cache.counts c ~key:"k2" kv in
  check_int "one fill per key" 2 !fills;
  Alcotest.check kvec "hit returns the stored vector" a b;
  check_bool "distinct keys computed separately" false (Kvec.equal a d);
  let stats = List.assoc "counts" (Cache.stats c) in
  check_int "counts hits" 1 stats.Cache.ts_hits;
  check_int "counts misses" 2 stats.Cache.ts_misses;
  check_int "counts entries" 2 stats.Cache.ts_entries

let shapley_tier_roundtrip () =
  let c = Cache.create () in
  let solves = ref 0 in
  let answer = [ (1, Rat.of_ints 1 4); (2, Rat.of_ints 3 4) ] in
  let solve () =
    incr solves;
    (answer, "safe-plan")
  in
  let v1 = Cache.shapley_all c ~key:"q" solve in
  let v2 = Cache.shapley_all c ~key:"q" solve in
  check_int "second lookup is a hit" 1 !solves;
  check_bool "identical payloads" true (v1 = v2);
  check_bool "solver tag round-trips" true (snd v1 = "safe-plan");
  Alcotest.(check (option rat)) "find_shapley peeks a fact"
    (Some (Rat.of_ints 3 4))
    (Cache.find_shapley c ~key:"q" ~fact:2);
  Alcotest.(check (option rat)) "find_shapley misses an unknown fact" None
    (Cache.find_shapley c ~key:"q" ~fact:9)

let shapley_tier_partial_eviction () =
  (* Result tier of 2 slots, answers of 4 facts: every solve evicts most
     of the previous answer, so a repeat can never reassemble a full
    answer — it must re-solve, and stays exact. *)
  let c = Cache.create ~results:2 () in
  let solves = ref 0 in
  let answer = List.init 4 (fun i -> (i + 1, Rat.of_ints 1 (i + 1))) in
  let solve () =
    incr solves;
    (answer, "s")
  in
  let v1 = Cache.shapley_all c ~key:"q" solve in
  let v2 = Cache.shapley_all c ~key:"q" solve in
  check_int "partial residency re-solves" 2 !solves;
  check_bool "still exact" true (fst v1 = answer && fst v2 = answer)

let cache_stampede () =
  let c = Cache.create () in
  let solves = Atomic.make 0 in
  let answer = [ (1, Rat.of_ints 1 2) ] in
  let arrived = Atomic.make 0 in
  let n = 6 in
  let ds =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr arrived;
            Cache.shapley_all c ~key:"q" (fun () ->
                while Atomic.get arrived < n do
                  Domain.cpu_relax ()
                done;
                Unix.sleepf 0.05;
                Atomic.incr solves;
                (answer, "s"))))
  in
  let rs = List.map Domain.join ds in
  check_int "k concurrent misses, one solve" 1 (Atomic.get solves);
  List.iter
    (fun r -> check_bool "all callers share it" true (r = (answer, "s")))
    rs;
  let stats = List.assoc "shapley" (Cache.stats c) in
  check_int "one miss (the leader)" 1 stats.Cache.ts_misses;
  check_int "joiners and repeats are hits" (n - 1) stats.Cache.ts_hits

let invalidate_tag_drops_tiers () =
  let c = Cache.create () in
  ignore (Cache.counts c ~key:"k1" ~tags:[ "t" ] (fun () -> Kvec.zero ~n:1));
  ignore (Cache.counts c ~key:"k2" (fun () -> Kvec.zero ~n:1));
  ignore
    (Cache.shapley_all c ~key:"q" ~tags:[ "t" ] (fun () ->
         ([ (1, Rat.one) ], "s")));
  (* q contributes a meta entry + one per-fact rational, both tagged. *)
  check_int "tagged entries dropped across tiers" 3 (Cache.invalidate_tag c "t");
  check_int "idempotent" 0 (Cache.invalidate_tag c "t");
  let solves = ref 0 in
  ignore
    (Cache.shapley_all c ~key:"q" (fun () ->
         incr solves;
         ([ (1, Rat.one) ], "s")));
  check_int "invalidated answer re-solves" 1 !solves;
  Cache.clear c;
  let stats = List.assoc "counts" (Cache.stats c) in
  check_int "clear empties" 0 stats.Cache.ts_entries;
  check_int "clear keeps counters" 2 stats.Cache.ts_misses

let cache_metrics_exported () =
  let c = Cache.create () in
  Metrics.reset ();
  ignore (Cache.counts c ~key:"k" (fun () -> Kvec.zero ~n:1));
  ignore (Cache.counts c ~key:"k" (fun () -> Kvec.zero ~n:1));
  check_bool "cache_hits counter exported" true
    (Metrics.counter_total "cache_hits" >= 1.);
  check_bool "cache_misses counter exported" true
    (Metrics.counter_total "cache_misses" >= 1.);
  check_bool "openmetrics carries the family" true
    (let om = Metrics.to_openmetrics () in
     List.exists
       (fun s -> s.Metrics.om_name = "shapmc_cache_hits_total")
       (Metrics.parse_openmetrics om));
  check_bool "summary mentions every tier" true
    (let s = Cache.summary c in
     List.for_all
       (fun tier ->
         let re = tier in
         let len = String.length re in
         let rec find i =
           i + len <= String.length s
           && (String.sub s i len = re || find (i + 1))
         in
         find 0)
       [ "circuit"; "counts"; "shapley" ])

(* ------------------------------------------------------------------ *)
(* Dichotomy-level caching and invalidation *)

let solver = Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf
        (match s with
         | Dichotomy.Safe_plan_circuit -> "safe-plan"
         | Dichotomy.Compiled_dnf -> "compiled-dnf"))
    ( = )

let dichotomy_cached_matches_fresh () =
  let db = example13_db () in
  let q = Db_parser.parse_query "R1(x), R2(x)" in
  let cache = Cache.create () in
  let fresh, fs = Dichotomy.shapley db q in
  let cold, cs = Dichotomy.shapley_cached ~cache db q in
  let warm, ws = Dichotomy.shapley_cached ~cache db q in
  Alcotest.check solver "solver (fresh vs cold)" fs cs;
  Alcotest.check solver "solver (fresh vs warm)" fs ws;
  check_shap "cold = fresh" fresh cold;
  check_shap "warm = fresh" fresh warm;
  let stats = List.assoc "shapley" (Cache.stats cache) in
  check_int "one result miss" 1 stats.Cache.ts_misses;
  check_int "one result hit" 1 stats.Cache.ts_hits

let two_rel_db () =
  let db = Database.create () in
  Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "S" ~kind:Database.Endogenous ~arity:1;
  ignore (Database.insert db "R" [| Value.int 1 |]);
  ignore (Database.insert db "R" [| Value.int 2 |]);
  ignore (Database.insert db "S" [| Value.int 1 |]);
  db

let insert_recompiles_only_affected_lineage () =
  let db = two_rel_db () in
  let qr = Db_parser.parse_query "R(x)" in
  let qs = Db_parser.parse_query "S(x)" in
  let cache = Cache.create () in
  ignore (Dichotomy.shapley_cached ~cache db qr);
  ignore (Dichotomy.shapley_cached ~cache db qs);
  let compiles_before =
    (List.assoc "circuit" (Cache.stats cache)).Cache.ts_misses
  in
  check_int "one compile per query" 2 compiles_before;
  (* Mutate S only.  The endogenous insert changes the player universe,
     so both results are stale — but only S's lineage needs recompiling. *)
  ignore (Database.insert db "S" [| Value.int 2 |]);
  check_bool "invalidate dropped something" true
    (Dichotomy.invalidate ~cache db "S" > 0);
  let rr, _ = Dichotomy.shapley_cached ~cache db qr in
  let rs, _ = Dichotomy.shapley_cached ~cache db qs in
  check_shap "R answer exact after S insert" (fst (Dichotomy.shapley db qr)) rr;
  check_shap "S answer exact after S insert" (fst (Dichotomy.shapley db qs)) rs;
  let circuit = List.assoc "circuit" (Cache.stats cache) in
  check_int "only S recompiled" 3 circuit.Cache.ts_misses;
  check_bool "R's circuit was a warm hit" true (circuit.Cache.ts_hits >= 1)

let delete_invalidation_exact () =
  let db = two_rel_db () in
  let q = Db_parser.parse_query "R(x), S(x)" in
  let cache = Cache.create () in
  let before, _ = Dichotomy.shapley_cached ~cache db q in
  check_shap "cached before mutation" (fst (Dichotomy.shapley db q)) before;
  let tup = [| Value.int 2 |] in
  ignore (Database.insert db "S" tup);
  ignore (Dichotomy.invalidate ~cache db "S");
  let inserted, _ = Dichotomy.shapley_cached ~cache db q in
  check_shap "cached after insert" (fst (Dichotomy.shapley db q)) inserted;
  check_bool "values actually changed" false (before = inserted);
  check_bool "remove finds the tuple" true (Database.remove db "S" tup);
  check_bool "remove is idempotent" false (Database.remove db "S" tup);
  ignore (Dichotomy.invalidate ~cache db "S");
  let after, _ = Dichotomy.shapley_cached ~cache db q in
  check_shap "cached after delete" (fst (Dichotomy.shapley db q)) after;
  check_shap "delete restored the original answer" before after

let compiled_dnf_cached () =
  let db, q = random_q0_db ~a:3 ~b:3 ~density:0.6 ~seed:11 in
  let cache = Cache.create () in
  let fresh, fs = Dichotomy.shapley db q in
  let cold, cs = Dichotomy.shapley_cached ~cache db q in
  let warm, _ = Dichotomy.shapley_cached ~cache db q in
  Alcotest.check solver "non-hierarchical solver" Dichotomy.Compiled_dnf fs;
  Alcotest.check solver "cached solver agrees" fs cs;
  check_shap "cold = fresh" fresh cold;
  check_shap "warm = fresh" fresh warm

(* ------------------------------------------------------------------ *)
(* The differential harness: random interleavings of solves, inserts and
   deletes; after every step the cached pipeline must agree with a fresh
   solve bit-for-bit, at jobs = 1 and on the domain pool. *)

type op =
  | Insert of string * int list
  | Remove of string * int list
  | Solve of int

let pp_op = function
  | Insert (r, vs) ->
    Printf.sprintf "ins %s(%s)" r
      (String.concat "," (List.map string_of_int vs))
  | Remove (r, vs) ->
    Printf.sprintf "del %s(%s)" r
      (String.concat "," (List.map string_of_int vs))
  | Solve i -> Printf.sprintf "solve q%d" i

let query_pool =
  [| "R(x)"; "S(x,y)"; "R(x), S(x,y)"; "R(x), S(x,y), T(y)" |]

let parsed_pool = lazy (Array.map Db_parser.parse_query query_pool)

let gen_ops =
  let open QCheck.Gen in
  let value = int_range 1 3 in
  let op =
    frequency
      [ (3, map (fun v -> Insert ("R", [ v ])) value);
        (3, map2 (fun a b -> Insert ("S", [ a; b ])) value value);
        (2, map (fun v -> Insert ("T", [ v ])) value);
        (2, map (fun v -> Remove ("R", [ v ])) value);
        (2, map2 (fun a b -> Remove ("S", [ a; b ])) value value);
        (1, map (fun v -> Remove ("T", [ v ])) value);
        (6, map (fun i -> Solve i) (int_range 0 (Array.length query_pool - 1)))
      ]
  in
  list_size (int_range 3 10) op

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    gen_ops

let scenario_db () =
  let db = Database.create () in
  Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
  Database.declare db "T" ~kind:Database.Exogenous ~arity:1;
  ignore (Database.insert db "R" [| Value.int 1 |]);
  ignore (Database.insert db "S" [| Value.int 1; Value.int 1 |]);
  ignore (Database.insert db "T" [| Value.int 1 |]);
  db

(* Replay [ops]; returns the rendered (exact {num,den} strings) answer
   of every Solve.  Raises [QCheck.Test.fail_reportf] on any cached/fresh
   divergence. *)
let run_scenario ~jobs ~cache ops =
  Par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) @@ fun () ->
  let db = scenario_db () in
  let queries = Lazy.force parsed_pool in
  let render shap =
    String.concat ";"
      (List.map
         (fun (i, v) -> Printf.sprintf "%d=%s" i (Rat.to_string v))
         (List.sort compare shap))
  in
  List.filter_map
    (fun op ->
      match op with
      | Insert (r, vs) ->
        let tup = Array.of_list (List.map Value.int vs) in
        if not (Database.mem db r tup) then begin
          ignore (Database.insert db r tup);
          ignore (Dichotomy.invalidate ~cache db r)
        end;
        None
      | Remove (r, vs) ->
        let tup = Array.of_list (List.map Value.int vs) in
        if Database.remove db r tup then
          ignore (Dichotomy.invalidate ~cache db r);
        None
      | Solve i ->
        let q = queries.(i) in
        let cached, cs = Dichotomy.shapley_cached ~cache db q in
        let fresh, fs = Dichotomy.shapley db q in
        if cs <> fs then
          QCheck.Test.fail_reportf "solver mismatch on %s" query_pool.(i);
        let rc = render cached and rf = render fresh in
        if rc <> rf then
          QCheck.Test.fail_reportf
            "cached <> fresh on %s\n  cached: %s\n  fresh:  %s"
            query_pool.(i) rc rf;
        Some rc)
    ops

let differential_tests =
  [ dtest ~seed:31 ~count:25
      "cached = fresh under random interleavings (jobs 1 = jobs 4)"
      arb_ops
      (fun ops ->
        let seq = run_scenario ~jobs:1 ~cache:(Cache.create ()) ops in
        let par = run_scenario ~jobs:4 ~cache:(Cache.create ()) ops in
        seq = par);
    dtest ~seed:32 ~count:15
      "cached = fresh under constant eviction (tiny capacities)"
      arb_ops
      (fun ops ->
        let full = run_scenario ~jobs:1 ~cache:(Cache.create ()) ops in
        let tiny =
          run_scenario ~jobs:1
            ~cache:(Cache.create ~circuits:1 ~counts:2 ~results:2 ())
            ops
        in
        full = tiny) ]

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "lru: eviction follows recency" `Quick
      lru_eviction_order;
    Alcotest.test_case "lru: put replaces and bumps" `Quick lru_replace_bumps;
    Alcotest.test_case "lru: counters, remove, clear" `Quick lru_counters;
    Alcotest.test_case "lru: remove_tagged drops only tagged" `Quick
      lru_remove_tagged;
    Alcotest.test_case "lru: capacity must be positive" `Quick
      lru_bad_capacity;
    Alcotest.test_case "single-flight: stampede computes once" `Quick
      single_flight_stampede;
    Alcotest.test_case "single-flight: failure shared, flight dropped" `Quick
      single_flight_failure;
    Alcotest.test_case "cache: counts tier round-trip" `Quick
      counts_tier_roundtrip;
    Alcotest.test_case "cache: shapley tier reassembles per-fact entries"
      `Quick shapley_tier_roundtrip;
    Alcotest.test_case "cache: partial eviction re-solves, stays exact"
      `Quick shapley_tier_partial_eviction;
    Alcotest.test_case "cache: concurrent misses single-flight" `Quick
      cache_stampede;
    Alcotest.test_case "cache: invalidate_tag crosses tiers" `Quick
      invalidate_tag_drops_tiers;
    Alcotest.test_case "cache: metrics and summary exported" `Quick
      cache_metrics_exported;
    Alcotest.test_case "dichotomy: cached = fresh (hierarchical)" `Quick
      dichotomy_cached_matches_fresh;
    Alcotest.test_case "dichotomy: insert recompiles only affected lineage"
      `Quick insert_recompiles_only_affected_lineage;
    Alcotest.test_case "dichotomy: delete invalidation stays exact" `Quick
      delete_invalidation_exact;
    Alcotest.test_case "dichotomy: cached = fresh (compiled-dnf)" `Quick
      compiled_dnf_cached ]
  @ differential_tests
