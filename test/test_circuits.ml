(** Tests for d-D circuits: construction invariants, counting,
    conditioning, Lemma 9 OR-substitution, and the d-DNNF compiler. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let parse = Parser.formula_of_string_exn
let cv = Circuit.cvar

(* Example 8's circuit: (¬X1 ∧ X2) ∨ (X1 ∧ X3). *)
let example8 =
  Circuit.cor_det
    [ Circuit.cand [ Circuit.cnot (cv 1); cv 2 ];
      Circuit.cand [ cv 1; cv 3 ] ]

let construction_tests =
  [ t "example 8 is deterministic and decomposable" (fun () ->
        Alcotest.(check bool) "det" true
          (Circuit.check_deterministic ~max_vars:10 example8);
        Alcotest.(check bool) "equiv" true
          (Circuit.equivalent_formula ~max_vars:10 example8
             (parse "!x1 & x2 | x1 & x3")));
    t "cand rejects shared variables" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Circuit.cand [ cv 1; Circuit.cnot (cv 1) ]);
             false
           with Invalid_argument _ -> true));
    t "cor_disj rejects shared variables" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Circuit.cor_disj [ cv 1; Circuit.cnot (cv 1) ]);
             false
           with Invalid_argument _ -> true);
        (* identical children are deduplicated before the check *)
        Alcotest.(check bool) "dedup" true (Circuit.cor_disj [ cv 1; cv 1 ] == cv 1));
    t "non-deterministic or is caught by the checker" (fun () ->
        (* X1 ∨ X2 as a "deterministic" or is not deterministic. *)
        let bad = Circuit.cor_det [ cv 1; cv 2 ] in
        Alcotest.(check bool) "caught" false
          (Circuit.check_deterministic ~max_vars:10 bad));
    t "constant simplification" (fun () ->
        Alcotest.(check bool) "and false" true
          (Circuit.cand [ cv 1; Circuit.cfalse ] == Circuit.cfalse);
        Alcotest.(check bool) "or true" true
          (Circuit.cor_det [ cv 1; Circuit.ctrue ] == Circuit.ctrue);
        Alcotest.(check bool) "singleton unwrap" true
          (Circuit.cand [ cv 1 ] == cv 1));
    t "hash consing shares" (fun () ->
        let a = Circuit.cand [ cv 1; cv 2 ] in
        let b = Circuit.cand [ cv 2; cv 1 ] in
        Alcotest.(check bool) "same node" true (a == b));
    t "size and edges" (fun () ->
        (* example8: 3 vars + 1 not + 2 ands + 1 or = 7 gates *)
        Alcotest.(check int) "size" 7 (Circuit.size example8);
        Alcotest.(check bool) "edges >= size-1" true
          (Circuit.edge_count example8 >= 6));
    t "eval" (fun () ->
        Alcotest.(check bool) "x2 only" true
          (Circuit.eval_set (Vset.of_list [ 2 ]) example8);
        Alcotest.(check bool) "x1 only" false
          (Circuit.eval_set (Vset.of_list [ 1 ]) example8);
        Alcotest.(check bool) "x1 x3" true
          (Circuit.eval_set (Vset.of_list [ 1; 3 ]) example8))
  ]

let count_tests =
  [ t "count example 8" (fun () ->
        (* models: 010,011,101,111 over x1x2x3 and 110? (¬1∧2)∨(1∧3):
           {2},{2,3},{1,3},{1,2,3} → 4 *)
        Alcotest.check bigint "4" (bi 4)
          (Count.count ~vars:[ 1; 2; 3 ] example8);
        Alcotest.check kvec "kvec"
          (Brute.count_by_size ~vars:[ 1; 2; 3 ] (Circuit.to_formula example8))
          (Count.count_by_size ~vars:[ 1; 2; 3 ] example8));
    t "count with larger universe" (fun () ->
        Alcotest.check bigint "8" (bi 8)
          (Count.count ~vars:[ 1; 2; 3; 4 ] example8));
    t "disjoint or counts over the full gate scope" (fun () ->
        (* Regression: the Cor (Disjoint, _) branch builds its result by
           convolving per-child complements; that only lands on the gate
           scope because cor_disj makes child scopes partition g.vars.
           Pin both the universe invariant and the counts (including a
           negated child, whose complement exercises smoothing). *)
        let g =
          Circuit.cor_disj
            [ Circuit.cand [ cv 1; cv 2 ];
              Circuit.cand [ Circuit.cnot (cv 3); cv 4 ] ]
        in
        let kv = Count.count_by_size ~vars:[ 1; 2; 3; 4 ] g in
        Alcotest.(check int) "universe = |vars g|"
          (Vset.cardinal (Circuit.vars g))
          (Kvec.universe_size kv);
        Alcotest.check kvec "counts = brute force"
          (Brute.count_by_size ~vars:[ 1; 2; 3; 4 ] (Circuit.to_formula g))
          kv;
        (* nested disjoint ors, still partitioning the scope *)
        let h = Circuit.cor_disj [ g; cv 5 ] in
        Alcotest.check kvec "nested"
          (Brute.count_by_size ~vars:[ 1; 2; 3; 4; 5 ] (Circuit.to_formula h))
          (Count.count_by_size ~vars:[ 1; 2; 3; 4; 5 ] h));
    t "universe check" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Count.count ~vars:[ 1 ] example8);
             false
           with Invalid_argument _ -> true));
    qtest "compiled circuit counting = brute force" ~count:80
      (arb_formula ~nvars:6 ~depth:5)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let c = Compile.compile f in
         Kvec.equal
           (Brute.count_by_size ~vars f)
           (Count.count_by_size ~vars c))
  ]

let condition_tests =
  [ t "restrict example 8" (fun () ->
        let c1 = Condition.restrict 1 true example8 in
        Alcotest.(check bool) "equiv x3" true
          (Circuit.equivalent_formula ~max_vars:5 c1 (parse "x3"));
        let c0 = Condition.restrict 1 false example8 in
        Alcotest.(check bool) "equiv x2" true
          (Circuit.equivalent_formula ~max_vars:5 c0 (parse "x2")));
    qtest "conditioning commutes with formula restrict" ~count:60
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Formula.vars f in
         QCheck.assume (not (Vset.is_empty vars));
         let i = Vset.min_elt vars in
         let c = Compile.compile f in
         Circuit.equivalent_formula ~max_vars:10
           (Condition.restrict i true c)
           (Formula.restrict i true f));
    qtest "conditioning preserves determinism" ~count:40
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Formula.vars f in
         QCheck.assume (not (Vset.is_empty vars));
         let i = Vset.min_elt vars in
         let c = Compile.compile f in
         Circuit.check_deterministic ~max_vars:10 (Condition.restrict i false c))
  ]

let or_subst_tests =
  [ t "det_or_chain" (fun () ->
        let chain = Or_subst.det_or_chain [ 1; 2; 3 ] in
        Alcotest.(check bool) "equiv" true
          (Circuit.equivalent_formula ~max_vars:5 chain (parse "x1 | x2 | x3"));
        Alcotest.(check bool) "det" true
          (Circuit.check_deterministic ~max_vars:5 chain);
        Alcotest.(check bool) "empty chain is false" true
          (Or_subst.det_or_chain [] == Circuit.cfalse));
    t "lemma 9 size bound O(|G| + k*l)" (fun () ->
        let g = example8 in
        let before = Circuit.size g in
        let g', _ = Or_subst.uniform_or ~l:10 g in
        (* Each of the 3 variables occurs once (k=1): bound ~ |G| + 3*c*10 *)
        Alcotest.(check bool) "linear growth" true
          (Circuit.size g' <= before + (3 * 4 * 10)));
    t "substituted circuit stays d-D and equivalent" (fun () ->
        let g', blocks = Or_subst.uniform_or ~l:2 example8 in
        Alcotest.(check bool) "det" true
          (Circuit.check_deterministic ~max_vars:12 g');
        let f, _ =
          Subst.or_subst
            ~widths:(fun _ -> 2)
            (Circuit.to_formula example8)
        in
        ignore blocks;
        (* same block allocation order: both substitute ascending vars *)
        Alcotest.(check bool) "equiv" true
          (Circuit.equivalent_formula ~max_vars:12 g' f));
    qtest "circuit or-subst = formula or-subst" ~count:40
      (QCheck.pair (arb_formula ~nvars:4 ~depth:3)
         (QCheck.make QCheck.Gen.(int_range 0 2)))
      (fun (f, w) ->
         let vars = Formula.vars f in
         QCheck.assume (not (Vset.is_empty vars));
         QCheck.assume (Vset.cardinal vars * (w + 1) <= 10);
         let widths v = if v mod 2 = 0 then w else w + 1 in
         let c = Compile.compile f in
         (* compile may drop variables; substitute over the full var set *)
         let c', _ = Or_subst.or_subst ~universe:vars ~widths c in
         let f', _ = Subst.or_subst ~widths f in
         Circuit.equivalent_formula ~max_vars:12 c' f');
    qtest "or-subst preserves determinism" ~count:40
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Formula.vars f in
         QCheck.assume (not (Vset.is_empty vars) && Vset.cardinal vars <= 4);
         let c = Compile.compile f in
         let c', _ = Or_subst.uniform_or ~l:2 c in
         Circuit.check_deterministic ~max_vars:12 c')
  ]

let compile_tests =
  [ t "compiles example 2" (fun () ->
        let c = Compile.compile example2_formula in
        Alcotest.(check bool) "equiv" true
          (Circuit.equivalent_formula ~max_vars:5 c example2_formula);
        Alcotest.(check bool) "det" true
          (Circuit.check_deterministic ~max_vars:5 c));
    t "constants compile to constants" (fun () ->
        Alcotest.(check bool) "true" true (Compile.compile Formula.tru == Circuit.ctrue);
        Alcotest.(check bool) "unsat formula" true
          (Compile.compile (parse "x1 & !x1") == Circuit.cfalse));
    t "component decomposition fires" (fun () ->
        (* (x1|x2) & (x3|x4): decomposable AND at the top; few expansions *)
        let _, stats = Compile.compile_with_stats (parse "(x1|x2) & (x3|x4)") in
        Alcotest.(check bool) "at most 4 expansions" true
          (stats.Compile.expansions <= 4));
    qtest "compile preserves semantics" ~count:100
      (arb_formula ~nvars:6 ~depth:5)
      (fun f ->
         Circuit.equivalent_formula ~max_vars:10 (Compile.compile f) f);
    qtest "compile output passes determinism check" ~count:60
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         Circuit.check_deterministic ~max_vars:10 (Compile.compile f))
  ]

let suite =
  construction_tests @ count_tests @ condition_tests @ or_subst_tests
  @ compile_tests
