(** Black-box tests for the [shapmc serve] stack.

    - [Http]: the incremental parser as a pure function of the byte
      stream — split-invariance fuzzing over valid/corrupted requests
      cut at random boundaries, never-raises, terminal outcome after
      eof, and exact limit boundaries (header cap → 400, declared body
      over cap → 413 before any body byte).
    - [Tiny_json]: [parse (to_string v) = v] round-trip over random
      documents including control characters and non-ASCII bytes.
    - [Router]/[Api]: routing (404/405 + Allow/500), the JSON API
      handlers, cursor pagination (random page sizes enumerate every
      fact exactly once; golden empty-query and last-page cases), and
      the bit-identical check against {!Dichotomy.shapley}.
    - [Server]: a real socket server on an ephemeral port driven by a
      tiny in-file HTTP client — keep-alive, limit enforcement on the
      wire, concurrent clients at jobs∈{1,4} getting identical exact
      answers, [/metrics] round-tripped through the OpenMetrics parser,
      and port release after shutdown.
    - [Pool.Exec]: the persistent executor underneath it all. *)

open Helpers
module Http = Shapmc_serve.Http
module Router = Shapmc_serve.Router
module Limits = Shapmc_serve.Limits
module Json_codec = Shapmc_serve.Json_codec
module Api = Shapmc_serve.Api
module Server = Shapmc_serve.Server
module Request_id = Shapmc_serve.Request_id
module Access_log = Shapmc_serve.Access_log
module Telemetry = Shapmc_serve.Telemetry
module Tail = Shapmc_serve.Tail
module J = Tiny_json

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let demo_query () = Db_parser.parse_query "R1(x), R2(x)"

(* Example 13: four endogenous facts, every Shapley value 1/4. *)
let demo_api () = Api.of_pairs [ ("demo", (example13_db (), demo_query ())) ]

(* [n] endogenous facts in one unary relation — pagination fodder. *)
let page_db n =
  let db = Database.create () in
  Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
  for i = 1 to n do
    ignore (Database.insert db "R" [| Value.int i |])
  done;
  db

let page_api n =
  Api.of_pairs [ ("page", (page_db n, Db_parser.parse_query "R(x)")) ]

(* All facts exogenous: the query is loaded but has zero players. *)
let empty_api () =
  let db = Database.create () in
  Database.declare db "S" ~kind:Database.Exogenous ~arity:1;
  ignore (Database.insert db "S" [| Value.int 1 |]);
  ignore (Database.insert db "S" [| Value.int 2 |]);
  Api.of_pairs [ ("empty", (db, Db_parser.parse_query "S(x)")) ]

(* ------------------------------------------------------------------ *)
(* Direct-dispatch helpers (no socket): build a request through the
   real parser, run it through the real router.                        *)

let req_of_string ?(limits = Limits.default) s =
  let p = Http.create ~limits in
  Http.feed p s;
  Http.eof p;
  match Http.poll p with
  | Http.Request r -> r
  | Http.Reject (c, m) -> Alcotest.failf "unexpected reject %d: %s" c m
  | Http.Incomplete -> Alcotest.fail "unexpected incomplete"

let get routes path =
  snd
    (Router.dispatch routes
       (req_of_string (Printf.sprintf "GET %s HTTP/1.1\r\n\r\n" path)))

let post routes path body =
  snd
    (Router.dispatch routes
       (req_of_string
          (Printf.sprintf "POST %s HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
             path (String.length body) body)))

let status (r : Router.response) = r.Router.status

let json_of (r : Router.response) = J.parse r.Router.body

let member_exn name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" name (J.to_string j)

let str_exn j = Option.get (J.to_str j)
let int_exn j = Option.get (J.to_int j)
let list_exn j = Option.get (J.to_list j)

(* (fact id, num, den) triples of a shapley/all response page. *)
let triples_of_values j =
  List.map
    (fun v ->
      let sh = member_exn "shapley" v in
      ( int_exn (member_exn "fact" v),
        str_exn (member_exn "num" sh),
        str_exn (member_exn "den" sh) ))
    (list_exn (member_exn "values" j))

(* The reference answer, straight off the solver entry point the batch
   CLI uses — decimal strings, so the comparison is bit-identical. *)
let reference_triples db q =
  let values, _ = Dichotomy.shapley db q in
  List.sort compare
    (List.map
       (fun (id, v) ->
         (id, Bigint.to_string (Rat.num v), Bigint.to_string (Rat.den v)))
       values)

(* ------------------------------------------------------------------ *)
(* HTTP parser: units                                                  *)

let parse_stream ?(limits = Limits.default) chunks =
  let p = Http.create ~limits in
  List.iter (Http.feed p) chunks;
  Http.eof p;
  (p, Http.poll p)

let expect_request chunks =
  match parse_stream chunks with
  | _, Http.Request r -> r
  | _, Http.Reject (c, m) -> Alcotest.failf "reject %d: %s" c m
  | _, Http.Incomplete -> Alcotest.fail "incomplete after eof"

let expect_reject ?limits chunks =
  match parse_stream ?limits chunks with
  | _, Http.Reject (c, _) -> c
  | _, Http.Request r ->
    Alcotest.failf "parsed %s %s" (Http.meth_to_string r.Http.meth)
      r.Http.target
  | _, Http.Incomplete -> Alcotest.fail "incomplete after eof"

let http_basic () =
  let r =
    expect_request
      [ "POST /v1/facts?query=a%20b&x=1+2 HTTP/1.1\r\n";
        "Host: localhost\r\nContent-Length: 5\r\n\r\nhello" ]
  in
  Alcotest.(check string) "method" "POST" (Http.meth_to_string r.Http.meth);
  Alcotest.(check string) "path" "/v1/facts" r.Http.path;
  Alcotest.(check (list (pair string string)))
    "query decoded"
    [ ("query", "a b"); ("x", "1 2") ]
    r.Http.query;
  Alcotest.(check string) "body" "hello" r.Http.body;
  Alcotest.(check (option string))
    "header lowercased" (Some "localhost") (Http.header r "host");
  Alcotest.(check bool) "keep-alive default" true (Http.wants_keep_alive r)

let http_byte_at_a_time () =
  let s = "GET /healthz HTTP/1.1\r\nx: y\r\n\r\n" in
  let whole = expect_request [ s ] in
  let bytes = List.init (String.length s) (fun i -> String.make 1 s.[i]) in
  let one = expect_request bytes in
  Alcotest.(check bool) "byte-at-a-time = whole" true (whole = one)

let http_bare_lf () =
  let r = expect_request [ "GET / HTTP/1.1\nHost: h\n\n" ] in
  Alcotest.(check string) "path" "/" r.Http.path;
  Alcotest.(check (option string)) "header" (Some "h") (Http.header r "host")

let http_rejects () =
  let reject400 s =
    Alcotest.(check int) ("400 for " ^ String.escaped s) 400
      (expect_reject [ s ])
  in
  reject400 "NOT A REQUEST\r\n\r\n";
  reject400 "GET / HTTP/2.0\r\n\r\n";
  reject400 "GET noslash HTTP/1.1\r\n\r\n";
  reject400 "GET / HTTP/1.1\r\nno colon here\r\n\r\n";
  reject400 "GET / HTTP/1.1\r\ncontent-length: two\r\n\r\n";
  reject400 "GET / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n";
  reject400 "GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
  (* truncated: eof strikes mid-headers and mid-body *)
  reject400 "GET / HTTP/1.1\r\nHost";
  reject400 "GET / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
  (* 0 bytes fed: still a 400 from [eof], but [bytes_fed] lets the
     server close silently *)
  let p, o = parse_stream [] in
  Alcotest.(check int) "bytes_fed empty" 0 (Http.bytes_fed p);
  (match o with
   | Http.Reject (400, _) -> ()
   | _ -> Alcotest.fail "empty stream should 400")

let header_request pad = Printf.sprintf "GET / HTTP/1.1\r\nx-pad: %s\r\n\r\n" pad

let http_header_cap_boundary () =
  let cap = 256 in
  let limits = { Limits.default with Limits.max_header_bytes = cap } in
  let pad_for len = String.make (len - String.length (header_request "")) 'a' in
  (* exactly at the cap: parses *)
  (match parse_stream ~limits [ header_request (pad_for cap) ] with
   | _, Http.Request _ -> ()
   | _, _ -> Alcotest.fail "header section of exactly max bytes must parse");
  (* one past: 400 *)
  Alcotest.(check int) "cap+1 rejects" 400
    (expect_reject ~limits [ header_request (pad_for (cap + 1)) ]);
  (* ...and the reject fires as soon as the cap is crossed, before any
     terminator arrives *)
  let p = Http.create ~limits in
  Http.feed p ("GET / HTTP/1.1\r\nx-pad: " ^ String.make (2 * cap) 'a');
  (match Http.poll p with
   | Http.Reject (400, _) -> ()
   | _ -> Alcotest.fail "oversized headers must reject without terminator")

let http_body_cap_boundary () =
  let cap = 64 in
  let limits = { Limits.default with Limits.max_body_bytes = cap } in
  let post_cl n body =
    Printf.sprintf "POST / HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s" n body
  in
  (match parse_stream ~limits [ post_cl cap (String.make cap 'x') ] with
   | _, Http.Request r ->
     Alcotest.(check int) "body of exactly max bytes" cap
       (String.length r.Http.body)
   | _, _ -> Alcotest.fail "body of exactly max bytes must parse");
  Alcotest.(check int) "declared cap+1 rejects 413" 413
    (expect_reject ~limits [ post_cl (cap + 1) "" ]);
  (* the 413 fires off the declaration alone — no body byte fed yet *)
  let p = Http.create ~limits in
  Http.feed p (Printf.sprintf "POST / HTTP/1.1\r\ncontent-length: %d\r\n\r\n" (cap + 1));
  (match Http.poll p with
   | Http.Reject (413, _) -> ()
   | _ -> Alcotest.fail "413 must fire before the body arrives")

let http_pipelining_leftover () =
  let first = "GET /a HTTP/1.1\r\n\r\n" in
  let second = "GET /b HTTP/1.1\r\n\r\n" in
  let p = Http.create ~limits:Limits.default in
  Http.feed p (first ^ second);
  (match Http.poll p with
   | Http.Request r -> Alcotest.(check string) "first path" "/a" r.Http.path
   | _ -> Alcotest.fail "first request should parse");
  Alcotest.(check string) "second request is leftover" second (Http.leftover p);
  let p2 = Http.create ~limits:Limits.default in
  Http.feed p2 (Http.leftover p);
  (match Http.poll p2 with
   | Http.Request r -> Alcotest.(check string) "second path" "/b" r.Http.path
   | _ -> Alcotest.fail "leftover should parse as the next request")

let http_render_response () =
  let s =
    Http.render_response
      ~headers:[ ("Content-Type", "application/json") ]
      ~keep_alive:true ~status:200 ~body:"{}" ()
  in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle and m = String.length s in
        let rec go i =
          i + n <= m && (String.sub s i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("response contains " ^ needle) true found)
    [ "HTTP/1.1 200 OK\r\n";
      "Content-Length: 2\r\n";
      "Connection: keep-alive\r\n";
      "Content-Type: application/json\r\n";
      "\r\n\r\n{}" ]

(* ------------------------------------------------------------------ *)
(* HTTP parser: split-invariance fuzz                                  *)

let gen_valid_request =
  let open QCheck.Gen in
  let* meth = oneofl [ "GET"; "POST"; "HEAD"; "DELETE" ] in
  let* path =
    oneofl
      [ "/"; "/healthz"; "/v1/facts?query=demo&limit=3"; "/a%20b?x=1+2";
        "/metrics" ]
  in
  let* hdrs =
    list_size (int_range 0 3)
      (pair (oneofl [ "x-a"; "x-b"; "accept" ]) (oneofl [ "1"; "foo bar"; "z" ]))
  in
  let* version = oneofl [ "HTTP/1.1"; "HTTP/1.0" ] in
  let* body = oneofl [ ""; "hi"; "{\"query\":\"demo\"}"; String.make 33 'b' ] in
  let lines =
    ((meth ^ " " ^ path ^ " " ^ version)
     :: List.map (fun (k, v) -> k ^ ": " ^ v) hdrs)
    @
    if body = "" then []
    else [ Printf.sprintf "content-length: %d" (String.length body) ]
  in
  return (String.concat "\r\n" lines ^ "\r\n\r\n" ^ body)

(* Corruptions of a valid request: truncation, garbage, joined words,
   pipelined trailers — everything the parser must classify, not
   crash on. *)
let gen_corrupted =
  let open QCheck.Gen in
  let* s = gen_valid_request in
  let* f =
    oneofl
      [ (fun s -> "\r\n" ^ s);
        (fun s -> String.map (fun c -> if c = '/' then ' ' else c) s);
        (fun s -> String.sub s 0 (String.length s / 2));
        (fun s -> s ^ "trailing garbage after the request");
        (fun s -> "FOO BAR BAZ QUX\r\n\r\n" ^ s);
        (fun s -> String.concat "" (String.split_on_char 'T' s));
        (fun s -> String.map (fun c -> if c = ':' then ';' else c) s) ]
  in
  return (f s)

let gen_random_bytes =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 120))

let gen_stream =
  QCheck.Gen.frequency
    [ (4, gen_valid_request); (3, gen_corrupted); (2, gen_random_bytes) ]

let arb_chunked_stream =
  let open QCheck.Gen in
  let gen =
    let* s = gen_stream in
    let* cuts = list_size (int_range 0 5) (int_range 0 (String.length s)) in
    return (s, cuts)
  in
  QCheck.make
    ~print:(fun (s, cuts) ->
      Printf.sprintf "%S cut at %s" s
        (String.concat "," (List.map string_of_int cuts)))
    gen

let chunks_of s cuts =
  let cuts =
    List.sort_uniq compare
      (List.filter (fun i -> i > 0 && i < String.length s) cuts)
  in
  if s = "" then []
  else
    let rec go start = function
      | [] -> [ String.sub s start (String.length s - start) ]
      | c :: rest -> String.sub s start (c - start) :: go c rest
    in
    go 0 cuts

let fuzz_split_invariance =
  qtest ~count:300 "fuzz: outcome is split-invariant, terminal, 4xx-or-request"
    arb_chunked_stream (fun (s, cuts) ->
      let outcome chunks =
        try snd (parse_stream chunks)
        with e ->
          QCheck.Test.fail_reportf "parser raised %s on %S"
            (Printexc.to_string e) s
      in
      let whole = outcome [ s ] in
      let split = outcome (chunks_of s cuts) in
      if whole <> split then
        QCheck.Test.fail_reportf "split changed the outcome on %S" s;
      match whole with
      | Http.Incomplete ->
        QCheck.Test.fail_reportf "non-terminal outcome after eof on %S" s
      | Http.Request _ -> true
      | Http.Reject (c, _) ->
        if c >= 400 && c < 500 then true
        else QCheck.Test.fail_reportf "non-4xx reject %d on %S" c s)

let fuzz_header_cap_exact =
  qtest ~count:200 "fuzz: header cap is exact at every boundary"
    QCheck.(pair (int_range 40 160) (int_range 0 200))
    (fun (cap, pad) ->
      let limits = { Limits.default with Limits.max_header_bytes = cap } in
      let req = header_request (String.make pad 'a') in
      match snd (parse_stream ~limits [ req ]) with
      | Http.Request _ -> String.length req <= cap
      | Http.Reject (400, _) -> String.length req > cap
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Tiny_json: serializer round-trip                                    *)

let gen_jstring =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 20))

let gen_finite_float =
  QCheck.Gen.(
    frequency
      [ (4, float_range (-1e15) 1e15);
        (1,
         oneofl
           [ 0.; -0.; 1.5; -3.25; 0.1; 1e-9; 1e300; -1e300; 4611686018427387904. ])
      ])

let gen_json =
  let open QCheck.Gen in
  let scalar =
    frequency
      [ (1, return J.Null);
        (2, map (fun b -> J.Bool b) bool);
        (3, map (fun i -> J.Int i) gen_small_int);
        (3, map (fun f -> J.Float f) gen_finite_float);
        (4, map (fun s -> J.Str s) gen_jstring) ]
  in
  let rec go d =
    if d = 0 then scalar
    else
      frequency
        [ (3, scalar);
          (1, map (fun l -> J.List l) (list_size (int_range 0 4) (go (d - 1))));
          (1,
           map
             (fun kvs -> J.Obj kvs)
             (list_size (int_range 0 4) (pair gen_jstring (go (d - 1))))) ]
  in
  go 3

let json_roundtrip =
  qtest ~count:500 "parse (to_string v) = v (control chars, non-ASCII)"
    (QCheck.make ~print:J.to_string gen_json)
    (fun v ->
      match J.parse_opt (J.to_string v) with
      | Some v' when v' = v -> true
      | Some v' ->
        QCheck.Test.fail_reportf "round-trip drift: %s -> %s" (J.to_string v)
          (J.to_string v')
      | None ->
        QCheck.Test.fail_reportf "serializer emitted unparseable %s"
          (J.to_string v))

let json_rat_huge_factorial () =
  (* End-to-end regression for Rat.to_float: with numerator and denominator
     both past float range the old code computed inf /. inf = nan, which
     the serializer renders as null — chart consumers saw no value for a
     perfectly finite Shapley ratio. *)
  let f200 = Combi.factorial 200 in
  let x = Rat.make (Bigint.add f200 Bigint.one) f200 in
  let rendered = J.to_string (Json_codec.rat x) in
  match J.member "float" (J.parse rendered) with
  | Some (J.Float f) ->
    Alcotest.(check bool) "finite" true (Float.is_finite f);
    Alcotest.(check (float 1e-9)) "~1" 1.0 f
  | Some J.Null -> Alcotest.failf "float field rendered null: %s" rendered
  | _ -> Alcotest.failf "unexpected float field in %s" rendered

let json_escaping_goldens () =
  Alcotest.(check string) "named + unicode escapes"
    {|"a\"b\\c\nd\u0001"|}
    (J.to_string (J.Str "a\"b\\c\nd\x01"));
  Alcotest.(check string) "non-ASCII passes through raw" "\"caf\xc3\xa9\""
    (J.to_string (J.Str "caf\xc3\xa9"));
  Alcotest.(check string) "integral float keeps its point" "1.0"
    (J.to_string (J.Float 1.));
  Alcotest.(check string) "non-finite floats print null" "[null,null,null]"
    (J.to_string (J.List [ J.Float infinity; J.Float neg_infinity; J.Float nan ]));
  Alcotest.(check string) "escaped object key" {|{"\t":1}|}
    (J.to_string (J.Obj [ ("\t", J.Int 1) ]))

(* ------------------------------------------------------------------ *)
(* Router                                                              *)

let router_fixture () =
  [ Router.route Http.GET "/ok" (fun _ ->
        { Router.status = 200; headers = []; body = "ok" });
    Router.route Http.POST "/ok" (fun _ ->
        { Router.status = 200; headers = []; body = "posted" });
    Router.route Http.GET "/boom" (fun _ -> failwith "handler exploded") ]

let router_dispatch () =
  let routes = router_fixture () in
  let label, r =
    Router.dispatch routes (req_of_string "GET /ok HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check string) "label is the path" "/ok" label;
  Alcotest.(check int) "200" 200 (status r);
  let label, r =
    Router.dispatch routes (req_of_string "GET /nope HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check string) "unmatched label" "unmatched" label;
  Alcotest.(check int) "404" 404 (status r);
  let _, r =
    Router.dispatch routes (req_of_string "DELETE /ok HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check int) "405" 405 (status r);
  let allow =
    Option.value ~default:"" (List.assoc_opt "Allow" r.Router.headers)
  in
  Alcotest.(check bool) "Allow lists GET and POST" true
    (allow = "GET, POST" || allow = "POST, GET");
  let _, r =
    Router.dispatch routes (req_of_string "GET /boom HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check int) "handler exception becomes 500" 500 (status r);
  (* ...and the body is well-formed JSON, not the exception text *)
  let code = int_exn (member_exn "code" (member_exn "error" (json_of r))) in
  Alcotest.(check int) "error body code" 500 code

(* ------------------------------------------------------------------ *)
(* API handlers (direct dispatch)                                      *)

let api_healthz_queries () =
  let routes = Api.routes (demo_api ()) in
  let r = get routes "/healthz" in
  Alcotest.(check int) "healthz 200" 200 (status r);
  let j = json_of r in
  Alcotest.(check string) "status ok" "ok" (str_exn (member_exn "status" j));
  Alcotest.(check int) "one query" 1 (int_exn (member_exn "queries" j));
  let j = json_of (get routes "/v1/queries") in
  match list_exn (member_exn "queries" j) with
  | [ q ] ->
    Alcotest.(check string) "name" "demo" (str_exn (member_exn "name" q));
    Alcotest.(check string) "classification" "hierarchical"
      (str_exn (member_exn "classification" q));
    Alcotest.(check int) "fact count" 4 (int_exn (member_exn "facts" q))
  | l -> Alcotest.failf "expected one query, got %d" (List.length l)

let api_facts_errors () =
  let routes = Api.routes (demo_api ()) in
  Alcotest.(check int) "missing query param" 400
    (status (get routes "/v1/facts"));
  Alcotest.(check int) "unknown query" 404
    (status (get routes "/v1/facts?query=nope"));
  Alcotest.(check int) "malformed cursor" 400
    (status (get routes "/v1/facts?query=demo&cursor=zzz"));
  Alcotest.(check int) "zero limit" 400
    (status (get routes "/v1/facts?query=demo&limit=0"));
  Alcotest.(check int) "malformed limit" 400
    (status (get routes "/v1/facts?query=demo&limit=ten"));
  Alcotest.(check int) "limit above max clamps, not errors" 200
    (status (get routes "/v1/facts?query=demo&limit=999999"))

let api_facts_pages () =
  let routes = Api.routes (demo_api ()) in
  let j = json_of (get routes "/v1/facts?query=demo") in
  Alcotest.(check int) "total" 4 (int_exn (member_exn "total" j));
  let ids =
    List.map (fun f -> int_exn (member_exn "id" f))
      (list_exn (member_exn "facts" j))
  in
  Alcotest.(check (list int)) "all facts, ascending" [ 1; 2; 3; 4 ] ids;
  Alcotest.(check bool) "no next_cursor on full page" true
    (J.member "next_cursor" j = None);
  (* limit=3 then follow the cursor *)
  let j = json_of (get routes "/v1/facts?query=demo&limit=3") in
  let ids =
    List.map (fun f -> int_exn (member_exn "id" f))
      (list_exn (member_exn "facts" j))
  in
  Alcotest.(check (list int)) "first page" [ 1; 2; 3 ] ids;
  let c = str_exn (member_exn "next_cursor" j) in
  Alcotest.(check string) "cursor encodes the last returned fact"
    (Api.cursor_of_fact 3) c;
  let j = json_of (get routes ("/v1/facts?query=demo&cursor=" ^ c)) in
  let ids =
    List.map (fun f -> int_exn (member_exn "id" f))
      (list_exn (member_exn "facts" j))
  in
  Alcotest.(check (list int)) "second page" [ 4 ] ids;
  Alcotest.(check bool) "last page has no cursor" true
    (J.member "next_cursor" j = None)

let api_golden_last_page_and_empty () =
  let routes = Api.routes (demo_api ()) in
  (* cursor pointing at the very last fact: an empty page, no cursor *)
  let j =
    json_of
      (get routes ("/v1/facts?query=demo&cursor=" ^ Api.cursor_of_fact 4))
  in
  Alcotest.(check bool) "past-the-end page is empty" true
    (list_exn (member_exn "facts" j) = []);
  Alcotest.(check bool) "past-the-end has no cursor" true
    (J.member "next_cursor" j = None);
  (* a query whose facts are all exogenous: zero players *)
  let routes = Api.routes (empty_api ()) in
  let j = json_of (get routes "/v1/facts?query=empty") in
  Alcotest.(check int) "empty total" 0 (int_exn (member_exn "total" j));
  Alcotest.(check bool) "empty facts" true
    (list_exn (member_exn "facts" j) = []);
  Alcotest.(check bool) "empty has no cursor" true
    (J.member "next_cursor" j = None);
  let r = post routes "/v1/shapley/all" {|{"query":"empty"}|} in
  Alcotest.(check int) "shapley/all on empty query is 200" 200 (status r);
  Alcotest.(check bool) "no values" true
    (list_exn (member_exn "values" (json_of r)) = [])

let api_shapley_bit_identical () =
  let api = demo_api () in
  let routes = Api.routes api in
  let r = post routes "/v1/shapley" {|{"query":"demo","fact":1}|} in
  Alcotest.(check int) "shapley 200" 200 (status r);
  let j = json_of r in
  let sh = member_exn "shapley" j in
  Alcotest.(check string) "num" "1" (str_exn (member_exn "num" sh));
  Alcotest.(check string) "den" "4" (str_exn (member_exn "den" sh));
  Alcotest.(check string) "solver" "safe-plan-circuit"
    (str_exn (member_exn "solver" j));
  Alcotest.(check string) "relation" "R1" (str_exn (member_exn "relation" j));
  (* every fact, against a fresh direct [Dichotomy.shapley] run on an
     independently built copy of the database *)
  let served =
    List.sort compare
      (triples_of_values
         (json_of (post routes "/v1/shapley/all" {|{"query":"demo"}|})))
  in
  let expected = reference_triples (example13_db ()) (demo_query ()) in
  Alcotest.(check (list (triple int string string)))
    "serve == solver, exact strings" expected served

let api_shapley_errors () =
  let routes = Api.routes (demo_api ()) in
  Alcotest.(check int) "bad JSON body" 400
    (status (post routes "/v1/shapley" "not json"));
  Alcotest.(check int) "missing fact field" 400
    (status (post routes "/v1/shapley" {|{"query":"demo"}|}));
  Alcotest.(check int) "unknown query" 404
    (status (post routes "/v1/shapley" {|{"query":"zzz","fact":1}|}));
  Alcotest.(check int) "unknown fact" 404
    (status (post routes "/v1/shapley" {|{"query":"demo","fact":99}|}));
  Alcotest.(check int) "malformed cursor in shapley/all" 400
    (status (post routes "/v1/shapley/all" {|{"query":"demo","cursor":"x"}|}));
  Alcotest.(check int) "wrong field type" 400
    (status (post routes "/v1/shapley" {|{"query":"demo","fact":"one"}|}))

let float_exn j = Option.get (J.to_float j)
let bool_exn j = Option.get (J.to_bool j)

let api_shapley_approx () =
  let routes = Api.routes (demo_api ()) in
  let body = {|{"query":"demo","eps":0.1,"delta":0.1,"seed":3}|} in
  let r = post routes "/v1/shapley/approx" body in
  Alcotest.(check int) "approx 200" 200 (status r);
  let j = json_of r in
  Alcotest.(check string) "default estimator" "truncated"
    (str_exn (member_exn "estimator" j));
  Alcotest.(check string) "default ci" "bernstein"
    (str_exn (member_exn "ci" j));
  let samples = int_exn (member_exn "samples" j) in
  Alcotest.(check bool) "spent samples" true (samples > 0);
  Alcotest.(check bool) "within the Hoeffding budget" true
    (samples <= Sampling.samples_for ~eps:0.1 ~delta:0.1);
  Alcotest.(check bool) "converged at eps=0.1" true
    (bool_exn (member_exn "converged" j));
  Alcotest.(check bool) "certified width at most eps" true
    (float_exn (member_exn "max_half_width" j) <= 0.1);
  let values = list_exn (member_exn "values" j) in
  Alcotest.(check int) "one entry per fact" 4 (List.length values);
  (* the demo query's exact Shapley value is 1/4 for every fact *)
  List.iter
    (fun v ->
      let value = float_exn (member_exn "value" v)
      and hw = float_exn (member_exn "half_width" v) in
      Alcotest.(check bool)
        (Printf.sprintf "fact %d in CI" (int_exn (member_exn "fact" v)))
        true
        (Float.abs (value -. 0.25) <= hw);
      ignore (str_exn (member_exn "relation" v)))
    values;
  (* equal request, equal answer: the estimator replays byte-identically *)
  let r' = post routes "/v1/shapley/approx" body in
  Alcotest.(check string) "deterministic body" r.Router.body r'.Router.body;
  (* a different seed must change the sampled answer *)
  let rs =
    post routes "/v1/shapley/approx"
      {|{"query":"demo","eps":0.1,"delta":0.1,"seed":4}|}
  in
  Alcotest.(check bool) "seed varies the run" true
    (rs.Router.body <> r.Router.body)

let api_shapley_approx_scoped () =
  (* the convergence checkpoints of an approx run land in the request
     scope, hence in the profiles served at /v1/debug/requests/:id *)
  let routes = Api.routes (demo_api ()) in
  let sc = Scope.create ~id:"approx-test" () in
  let r =
    Scope.with_scope sc (fun () ->
        post routes "/v1/shapley/approx"
          {|{"query":"demo","eps":0.1,"delta":0.1,"interval":512}|})
  in
  Alcotest.(check int) "approx 200" 200 (status r);
  let checkpoints =
    List.filter
      (fun (e : Trace.event) ->
        e.kind = Trace.Phase && e.name = "estimator.checkpoint")
      (Scope.events sc)
  in
  Alcotest.(check bool) "scope saw checkpoint events" true
    (List.length checkpoints >= 1)

let api_shapley_approx_errors () =
  let routes = Api.routes (demo_api ()) in
  let bad body = status (post routes "/v1/shapley/approx" body) in
  Alcotest.(check int) "unknown estimator" 400
    (bad {|{"query":"demo","estimator":"bogus"}|});
  Alcotest.(check int) "unknown ci" 400 (bad {|{"query":"demo","ci":"bogus"}|});
  Alcotest.(check int) "eps 0" 400 (bad {|{"query":"demo","eps":0}|});
  Alcotest.(check int) "delta 2" 400 (bad {|{"query":"demo","delta":2}|});
  Alcotest.(check int) "max_samples 0" 400
    (bad {|{"query":"demo","max_samples":0}|});
  Alcotest.(check int) "eps of wrong type" 400
    (bad {|{"query":"demo","eps":"small"}|});
  Alcotest.(check int) "unknown query" 404 (bad {|{"query":"zzz"}|});
  let routes = Api.routes (empty_api ()) in
  Alcotest.(check int) "zero players is 400" 400
    (status (post routes "/v1/shapley/approx" {|{"query":"empty"}|}))

let cursor_codec () =
  List.iter
    (fun id ->
      Alcotest.(check (option int))
        (Printf.sprintf "cursor round-trip %d" id)
        (Some id)
        (Api.fact_of_cursor (Api.cursor_of_fact id)))
    [ 0; 1; 42; 999_999_999 ];
  List.iter
    (fun s ->
      Alcotest.(check (option int)) ("bad cursor " ^ s) None
        (Api.fact_of_cursor s))
    [ ""; "f"; "f12"; "g000000000001"; "f00000000000x"; "f0000000000001" ];
  (* token order IS fact order — what makes the cursor resumable *)
  Alcotest.(check bool) "lexicographic = numeric" true
    (compare (Api.cursor_of_fact 9) (Api.cursor_of_fact 10) < 0)

(* ------------------------------------------------------------------ *)
(* Pagination property: random page sizes enumerate every fact exactly
   once, and concatenation equals the single-shot answer.              *)

let walk_pages ~fetch ~extract =
  let rec go cursor acc steps =
    if steps > 200 then Alcotest.fail "pagination did not terminate"
    else
      let j = fetch ~cursor ~steps in
      let acc = acc @ extract j in
      match J.member "next_cursor" j with
      | Some (J.Str c) -> go (Some c) acc (steps + 1)
      | Some _ -> Alcotest.fail "next_cursor is not a string"
      | None -> acc
  in
  go None [] 0

let facts_pagination_property =
  let n = 23 in
  let routes = Api.routes (page_api n) in
  let single_shot =
    List.map (fun f -> int_exn (member_exn "id" f))
      (list_exn
         (member_exn "facts"
            (json_of (get routes "/v1/facts?query=page&limit=1000"))))
  in
  qtest ~count:30 "facts pagination: random page sizes enumerate exactly once"
    QCheck.(list_of_size (QCheck.Gen.return 50) (int_range 1 7))
    (fun limits_seq ->
      let limit_at i =
        match List.nth_opt limits_seq i with Some l -> l | None -> 3
      in
      let walked =
        walk_pages
          ~fetch:(fun ~cursor ~steps ->
            let path =
              Printf.sprintf "/v1/facts?query=page&limit=%d%s" (limit_at steps)
                (match cursor with None -> "" | Some c -> "&cursor=" ^ c)
            in
            let r = get routes path in
            if status r <> 200 then
              QCheck.Test.fail_reportf "page fetch failed: %d %s" (status r)
                r.Router.body;
            json_of r)
          ~extract:(fun j ->
            List.map (fun f -> int_exn (member_exn "id" f))
              (list_exn (member_exn "facts" j)))
      in
      if walked <> single_shot then
        QCheck.Test.fail_reportf "walk [%s] <> single shot [%s]"
          (String.concat ";" (List.map string_of_int walked))
          (String.concat ";" (List.map string_of_int single_shot))
      else true)

let shapley_all_pagination_property =
  let n = 17 in
  let api = page_api n in
  let routes = Api.routes api in
  let reference = reference_triples (page_db n) (Db_parser.parse_query "R(x)") in
  qtest ~count:15 "shapley/all pagination: concatenation = solver output"
    QCheck.(list_of_size (QCheck.Gen.return 40) (int_range 1 5))
    (fun limits_seq ->
      let limit_at i =
        match List.nth_opt limits_seq i with Some l -> l | None -> 2
      in
      let walked =
        walk_pages
          ~fetch:(fun ~cursor ~steps ->
            let body =
              J.to_string
                (J.Obj
                   ([ ("query", J.Str "page");
                      ("limit", J.Int (limit_at steps)) ]
                   @
                   match cursor with
                   | Some c -> [ ("cursor", J.Str c) ]
                   | None -> []))
            in
            let r = post routes "/v1/shapley/all" body in
            if status r <> 200 then
              QCheck.Test.fail_reportf "page fetch failed: %d %s" (status r)
                r.Router.body;
            json_of r)
          ~extract:triples_of_values
      in
      List.sort compare walked = reference)

(* ------------------------------------------------------------------ *)
(* A tiny blocking HTTP client for the socket-level tests.             *)

module Client = struct
  type conn = { fd : Unix.file_descr; mutable buf : string }

  exception Closed

  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    { fd; buf = "" }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let send_raw c s =
    let b = Bytes.of_string s in
    let rec go off =
      if off < Bytes.length b then
        go (off + Unix.write c.fd b off (Bytes.length b - off))
    in
    go 0

  let refill c =
    let b = Bytes.create 4096 in
    match Unix.read c.fd b 0 4096 with
    | 0 -> raise Closed
    | k -> c.buf <- c.buf ^ Bytes.sub_string b 0 k

  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0

  (* Read one full response: status, lowercased headers, body (sized by
     Content-Length).  Extra buffered bytes stay for the next call. *)
  let read_response c =
    let rec header_end () =
      match find_sub c.buf "\r\n\r\n" with
      | Some i -> i
      | None ->
        refill c;
        header_end ()
    in
    let he = header_end () in
    let head = String.sub c.buf 0 he in
    let lines =
      String.split_on_char '\n' head
      |> List.map (fun l ->
             if l <> "" && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l)
    in
    let status_line, header_lines =
      match lines with
      | s :: rest -> (s, rest)
      | [] -> Alcotest.fail "empty response"
    in
    let status =
      match String.split_on_char ' ' status_line with
      | _ :: code :: _ -> int_of_string code
      | _ -> Alcotest.failf "bad status line %S" status_line
    in
    let headers =
      List.filter_map
        (fun l ->
          match String.index_opt l ':' with
          | None -> None
          | Some i ->
            Some
              ( String.lowercase_ascii (String.sub l 0 i),
                String.trim
                  (String.sub l (i + 1) (String.length l - i - 1)) ))
        header_lines
    in
    let clen =
      match List.assoc_opt "content-length" headers with
      | Some v -> int_of_string v
      | None -> Alcotest.fail "response without Content-Length"
    in
    let body_start = he + 4 in
    while String.length c.buf < body_start + clen do
      refill c
    done;
    let body = String.sub c.buf body_start clen in
    c.buf <-
      String.sub c.buf (body_start + clen)
        (String.length c.buf - body_start - clen);
    (status, headers, body)

  let request c ?(headers = []) ?(body = "") meth path =
    let extra =
      String.concat ""
        (List.map (fun (k, v) -> k ^ ": " ^ v ^ "\r\n") headers)
    in
    send_raw c
      (Printf.sprintf "%s %s HTTP/1.1\r\ncontent-length: %d\r\n%s\r\n%s" meth
         path (String.length body) extra body);
    read_response c

  (* one-shot convenience *)
  let oneshot port ?headers ?body meth path =
    let c = connect port in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () -> request c ?headers ?body meth path)
end

let with_server ?(jobs = 1) ?(limits = Limits.default) ?(port = 0) ?telemetry
    routes f =
  let config =
    { Server.default_config with
      Server.port;
      Server.jobs;
      Server.limits;
      Server.drain_deadline = 5.;
      Server.telemetry }
  in
  let srv = Server.create ~config routes in
  Server.start srv;
  let d = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Domain.join d)
    (fun () -> f srv (Server.port srv))

(* ------------------------------------------------------------------ *)
(* Socket-level server tests                                           *)

let server_routing_over_socket () =
  with_server (Api.routes (demo_api ())) (fun srv port ->
      let st, _, body = Client.oneshot port "GET" "/healthz" in
      Alcotest.(check int) "healthz" 200 st;
      Alcotest.(check string) "healthz body" "ok"
        (str_exn (member_exn "status" (J.parse body)));
      let st, _, _ = Client.oneshot port "GET" "/nope" in
      Alcotest.(check int) "404 over the wire" 404 st;
      let st, hdrs, _ = Client.oneshot port "POST" "/healthz" in
      Alcotest.(check int) "405 over the wire" 405 st;
      Alcotest.(check bool) "Allow header present" true
        (List.mem_assoc "allow" hdrs);
      let st, _, body =
        Client.oneshot port "POST" "/v1/shapley"
          ~body:{|{"query":"demo","fact":1}|}
      in
      Alcotest.(check int) "shapley over the wire" 200 st;
      let sh = member_exn "shapley" (J.parse body) in
      Alcotest.(check string) "num over the wire" "1"
        (str_exn (member_exn "num" sh));
      Alcotest.(check string) "den over the wire" "4"
        (str_exn (member_exn "den" sh));
      (* the counter bumps after the response bytes go out — poll
         briefly rather than racing the worker *)
      let deadline = Unix.gettimeofday () +. 2. in
      while
        Server.requests_served srv < 4 && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.005
      done;
      Alcotest.(check bool) "served counter advanced" true
        (Server.requests_served srv >= 4))

let server_keep_alive_and_conn_cap () =
  let limits = { Limits.default with Limits.max_conn_requests = 2 } in
  with_server ~limits (Api.routes (demo_api ())) (fun _ port ->
      let c = Client.connect port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let st, hdrs, _ = Client.request c "GET" "/healthz" in
          Alcotest.(check int) "first 200" 200 st;
          Alcotest.(check (option string)) "first is keep-alive"
            (Some "keep-alive")
            (List.assoc_opt "connection" hdrs);
          let st, hdrs, _ = Client.request c "GET" "/healthz" in
          Alcotest.(check int) "second 200" 200 st;
          Alcotest.(check (option string))
            "connection cap closes after request 2" (Some "close")
            (List.assoc_opt "connection" hdrs)))

let server_limits_on_the_wire () =
  let limits =
    { Limits.default with
      Limits.max_header_bytes = 256;
      Limits.max_body_bytes = 128 }
  in
  with_server ~limits (Api.routes (demo_api ())) (fun _ port ->
      (* headers exactly at the cap pass *)
      let base = "GET /healthz HTTP/1.1\r\ncontent-length: 0\r\nx-pad: \r\n\r\n" in
      let pad n = String.make n 'a' in
      let send_padded n =
        let c = Client.connect port in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            Client.send_raw c
              (Printf.sprintf
                 "GET /healthz HTTP/1.1\r\ncontent-length: 0\r\nx-pad: %s\r\n\r\n"
                 (pad n));
            let st, _, _ = Client.read_response c in
            st)
      in
      let at_cap = 256 - String.length base in
      Alcotest.(check int) "header at cap is served" 200 (send_padded at_cap);
      Alcotest.(check int) "header past cap answers 400" 400
        (send_padded (at_cap + 1));
      (* body at the cap reaches the handler (bad JSON → 400), one past
         is cut off with 413 before parsing *)
      let st, _, _ =
        Client.oneshot port "POST" "/v1/shapley" ~body:(String.make 128 'x')
      in
      Alcotest.(check int) "body at cap reaches the handler" 400 st;
      let st, _, body =
        Client.oneshot port "POST" "/v1/shapley" ~body:(String.make 129 'x')
      in
      Alcotest.(check int) "body past cap answers 413" 413 st;
      Alcotest.(check int) "413 body carries the code" 413
        (int_exn (member_exn "code" (member_exn "error" (J.parse body))));
      (* malformed request line over the wire *)
      let c = Client.connect port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_raw c "THIS IS NOT HTTP\r\n\r\n";
          let st, _, _ = Client.read_response c in
          Alcotest.(check int) "garbage answers 400" 400 st))

let server_mid_request_timeout () =
  let limits = { Limits.default with Limits.read_timeout = 0.3 } in
  with_server ~limits (Api.routes (demo_api ())) (fun _ port ->
      let c = Client.connect port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_raw c "GET /heal";
          (* half a request, then silence *)
          let st, _, _ = Client.read_response c in
          Alcotest.(check int) "mid-request silence answers 408" 408 st))

let server_concurrent_jobs_identical () =
  let expected = reference_triples (example13_db ()) (demo_query ()) in
  let run_at jobs =
    with_server ~jobs (Api.routes (demo_api ())) (fun _ port ->
        let clients = 6 in
        let domains =
          Array.init clients (fun _ ->
              Domain.spawn (fun () ->
                  let c = Client.connect port in
                  Fun.protect
                    ~finally:(fun () -> Client.close c)
                    (fun () ->
                      List.map
                        (fun fact ->
                          let st, _, body =
                            Client.request c "POST" "/v1/shapley"
                              ~body:
                                (Printf.sprintf
                                   {|{"query":"demo","fact":%d}|} fact)
                          in
                          let j = J.parse body in
                          let sh = member_exn "shapley" j in
                          ( st,
                            fact,
                            str_exn (member_exn "num" sh),
                            str_exn (member_exn "den" sh) ))
                        [ 1; 2; 3; 4 ])))
        in
        Array.to_list domains |> List.concat_map Domain.join)
  in
  let check_results jobs results =
    List.iter
      (fun (st, fact, num, den) ->
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d fact %d status" jobs fact)
          200 st;
        let expect_num, expect_den =
          match List.find_opt (fun (id, _, _) -> id = fact) expected with
          | Some (_, n, d) -> (n, d)
          | None -> Alcotest.failf "no reference value for fact %d" fact
        in
        Alcotest.(check (pair string string))
          (Printf.sprintf "jobs=%d fact %d exact value" jobs fact)
          (expect_num, expect_den) (num, den))
      results
  in
  let r1 = run_at 1 in
  let r4 = run_at 4 in
  check_results 1 r1;
  check_results 4 r4;
  Alcotest.(check bool) "jobs=1 and jobs=4 answer identically" true
    (List.sort compare r1 = List.sort compare r4)

let server_metrics_roundtrip () =
  Metrics.reset ();
  with_server (Api.routes (demo_api ())) (fun _ port ->
      let st, _, _ = Client.oneshot port "GET" "/healthz" in
      Alcotest.(check int) "healthz before scrape" 200 st;
      let st, hdrs, body = Client.oneshot port "GET" "/metrics" in
      Alcotest.(check int) "metrics 200" 200 st;
      (match List.assoc_opt "content-type" hdrs with
       | Some ct ->
         Alcotest.(check bool) "openmetrics content type" true
           (String.length ct >= 16
            && String.sub ct 0 16 = "application/open")
       | None -> Alcotest.fail "metrics response without Content-Type");
      let samples = Metrics.parse_openmetrics body in
      let healthz_hits =
        List.filter
          (fun s ->
            s.Metrics.om_name = "shapmc_http_requests_total"
            && List.assoc_opt "route" s.Metrics.om_labels = Some "/healthz"
            && List.assoc_opt "code" s.Metrics.om_labels = Some "200")
          samples
      in
      (match healthz_hits with
       | [ s ] ->
         Alcotest.(check bool) "healthz counted at least once" true
           (s.Metrics.om_value >= 1.)
       | _ -> Alcotest.fail "expected one http_requests series for /healthz");
      Alcotest.(check bool) "latency histogram scraped back" true
        (List.exists
           (fun s -> s.Metrics.om_name = "shapmc_http_request_seconds_count")
           samples);
      Alcotest.(check bool) "in-flight gauge scraped back" true
        (List.exists
           (fun s -> s.Metrics.om_name = "shapmc_http_in_flight")
           samples))

let server_shutdown_releases_port () =
  let routes = Api.routes (demo_api ()) in
  let first_port =
    with_server routes (fun srv port ->
        let st, _, _ = Client.oneshot port "GET" "/healthz" in
        Alcotest.(check int) "pre-shutdown request" 200 st;
        (* stop is idempotent — double stop must be harmless *)
        Server.stop srv;
        Server.stop srv;
        port)
  in
  (* the first server is fully joined here: rebinding the same port
     immediately must succeed (SO_REUSEADDR beats TIME_WAIT) *)
  with_server ~port:first_port routes (fun _ port ->
      Alcotest.(check int) "rebound the same port" first_port port;
      let st, _, _ = Client.oneshot port "GET" "/healthz" in
      Alcotest.(check int) "restarted server answers" 200 st)

(* ------------------------------------------------------------------ *)
(* Pool.Exec                                                           *)

let exec_runs_everything () =
  let ex = Pool.Exec.create ~jobs:4 in
  Alcotest.(check int) "jobs" 4 (Pool.Exec.jobs ex);
  let hits = Atomic.make 0 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "submit accepted" true
      (Pool.Exec.submit ex (fun () -> Atomic.incr hits))
  done;
  Alcotest.(check bool) "drained" true (Pool.Exec.shutdown ex);
  Alcotest.(check int) "every task ran exactly once" 50 (Atomic.get hits);
  Alcotest.(check bool) "submit after shutdown refused" false
    (Pool.Exec.submit ex (fun () -> ()));
  Alcotest.(check int) "nothing pending after drain" 0 (Pool.Exec.pending ex)

let exec_jobs_clamp () =
  let ex = Pool.Exec.create ~jobs:0 in
  Alcotest.(check int) "jobs clamp low" 1 (Pool.Exec.jobs ex);
  ignore (Pool.Exec.shutdown ex)

let exec_deadline_then_drain () =
  let ex = Pool.Exec.create ~jobs:1 in
  let release = Atomic.make false in
  let done_ = Atomic.make false in
  ignore
    (Pool.Exec.submit ex (fun () ->
         while not (Atomic.get release) do
           Domain.cpu_relax ()
         done;
         Atomic.set done_ true));
  Alcotest.(check bool) "deadline expires on a stuck task" false
    (Pool.Exec.shutdown ~deadline:0.05 ex);
  Atomic.set release true;
  Alcotest.(check bool) "second shutdown drains" true (Pool.Exec.shutdown ex);
  Alcotest.(check bool) "the stuck task still completed" true
    (Atomic.get done_)

let exec_task_exception_is_contained () =
  let ex = Pool.Exec.create ~jobs:2 in
  let hits = Atomic.make 0 in
  ignore (Pool.Exec.submit ex (fun () -> failwith "task boom"));
  for _ = 1 to 10 do
    ignore (Pool.Exec.submit ex (fun () -> Atomic.incr hits))
  done;
  Alcotest.(check bool) "drained despite the raising task" true
    (Pool.Exec.shutdown ex);
  Alcotest.(check int) "workers survived the exception" 10 (Atomic.get hits)

let exec_nested_fanout_degrades () =
  let ex = Pool.Exec.create ~jobs:2 in
  let result = Atomic.make [||] in
  ignore
    (Pool.Exec.submit ex (fun () ->
         Atomic.set result (Par.map (fun x -> x * x) [| 1; 2; 3; 4; 5 |])));
  Alcotest.(check bool) "drained" true (Pool.Exec.shutdown ex);
  Alcotest.(check (array int)) "nested Par.map is correct in a worker"
    [| 1; 4; 9; 16; 25 |] (Atomic.get result)

(* ------------------------------------------------------------------ *)
(* Limits env plumbing                                                 *)

let limits_from_env () =
  let env =
    [ ("SHAPMC_MAX_HEADER_BYTES", "4096");
      ("SHAPMC_MAX_BODY_BYTES", "2048");
      ("SHAPMC_READ_TIMEOUT", "2.5");
      ("SHAPMC_MAX_CONN_REQUESTS", "7") ]
  in
  let l = Limits.from_env ~getenv:(fun k -> List.assoc_opt k env) Limits.default in
  Alcotest.(check int) "header override" 4096 l.Limits.max_header_bytes;
  Alcotest.(check int) "body override" 2048 l.Limits.max_body_bytes;
  Alcotest.(check (float 1e-9)) "timeout override" 2.5 l.Limits.read_timeout;
  Alcotest.(check int) "conn requests override" 7 l.Limits.max_conn_requests;
  let bad =
    [ ("SHAPMC_MAX_HEADER_BYTES", "banana");
      ("SHAPMC_MAX_BODY_BYTES", "-3");
      ("SHAPMC_READ_TIMEOUT", "0") ]
  in
  let l = Limits.from_env ~getenv:(fun k -> List.assoc_opt k bad) Limits.default in
  Alcotest.(check int) "unparseable ignored"
    Limits.default.Limits.max_header_bytes l.Limits.max_header_bytes;
  Alcotest.(check int) "negative ignored" Limits.default.Limits.max_body_bytes
    l.Limits.max_body_bytes;
  Alcotest.(check (float 1e-9)) "non-positive ignored"
    Limits.default.Limits.read_timeout l.Limits.read_timeout

(* ------------------------------------------------------------------ *)
(* Request identity                                                    *)

let request_id_traceparent_parse () =
  let tid = "4bf92f3577b34da6a3ce929d0e0e4736" in
  let sid = "00f067aa0ba902b7" in
  Alcotest.(check (option (pair string string)))
    "valid traceparent parses"
    (Some (tid, sid))
    (Request_id.parse_traceparent
       (Printf.sprintf "00-%s-%s-01" tid sid));
  let rejected s =
    Alcotest.(check (option (pair string string)))
      ("rejected: " ^ s) None
      (Request_id.parse_traceparent s)
  in
  rejected "";
  rejected "garbage";
  rejected (Printf.sprintf "ff-%s-%s-01" tid sid);  (* forbidden version *)
  rejected (Printf.sprintf "00-%s-%s-01" (String.uppercase_ascii tid) sid);
  rejected (Printf.sprintf "00-%s-%s-01" (String.make 32 '0') sid);
  rejected (Printf.sprintf "00-%s-%s-01" tid (String.make 16 '0'));
  rejected (Printf.sprintf "00-%s-%s-01" (String.sub tid 0 31) sid);
  rejected (Printf.sprintf "00-%s-%s" tid sid)

let is_hex s =
  String.for_all
    (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
    s

let request_id_generation () =
  let r = Request_id.make () in
  Alcotest.(check int) "fresh trace id is 32 hex" 32
    (String.length (Request_id.trace_id r));
  Alcotest.(check bool) "trace id lowercase hex" true
    (is_hex (Request_id.trace_id r));
  Alcotest.(check int) "span id is 16 hex" 16
    (String.length (Request_id.span_id r));
  Alcotest.(check string) "headerless id equals the trace id"
    (Request_id.trace_id r) (Request_id.id r);
  Alcotest.(check (option string)) "no parent span" None
    (Request_id.parent_span r);
  Alcotest.(check string) "traceparent rendering"
    (Printf.sprintf "00-%s-%s-01" (Request_id.trace_id r)
       (Request_id.span_id r))
    (Request_id.traceparent r);
  let r2 = Request_id.make () in
  Alcotest.(check bool) "fresh ids are distinct" true
    (Request_id.id r <> Request_id.id r2)

let request_id_honors_headers () =
  let tid = "4bf92f3577b34da6a3ce929d0e0e4736" in
  let sid = "00f067aa0ba902b7" in
  let tp = Printf.sprintf "00-%s-%s-01" tid sid in
  let r = Request_id.make ~request_id:"client-7" ~traceparent:tp () in
  Alcotest.(check string) "client id honored" "client-7" (Request_id.id r);
  Alcotest.(check string) "trace id continued" tid (Request_id.trace_id r);
  Alcotest.(check (option string)) "parent span kept" (Some sid)
    (Request_id.parent_span r);
  Alcotest.(check bool) "fresh span id minted" true
    (Request_id.span_id r <> sid);
  (* malformed inputs are replaced, not propagated *)
  Alcotest.(check bool) "bad X-Request-Id rejected" false
    (Request_id.valid_id "spaces are invalid");
  Alcotest.(check bool) "overlong id rejected" false
    (Request_id.valid_id (String.make 65 'a'));
  Alcotest.(check bool) "plain token accepted" true
    (Request_id.valid_id "req_1.a-b");
  let r = Request_id.make ~request_id:"bad id" ~traceparent:"nope" () in
  Alcotest.(check string) "fallback id is the fresh trace id"
    (Request_id.trace_id r) (Request_id.id r);
  (* the request-facing constructor reads the actual headers *)
  let req =
    req_of_string
      (Printf.sprintf
         "GET / HTTP/1.1\r\nX-Request-Id: abc\r\ntraceparent: %s\r\n\r\n" tp)
  in
  let r = Request_id.of_request req in
  Alcotest.(check string) "of_request id" "abc" (Request_id.id r);
  Alcotest.(check string) "of_request trace id" tid (Request_id.trace_id r);
  let hdrs = Request_id.response_headers r in
  Alcotest.(check (option string)) "response echoes the id" (Some "abc")
    (List.assoc_opt "X-Request-Id" hdrs);
  Alcotest.(check (option string)) "response carries a traceparent"
    (Some (Request_id.traceparent r))
    (List.assoc_opt "traceparent" hdrs)

(* ------------------------------------------------------------------ *)
(* Parameterized routes                                                *)

let router_param_matching () =
  Alcotest.(check (option (list (pair string string))))
    "param segment binds"
    (Some [ ("id", "abc-123") ])
    (Router.match_path ~pattern:"/v1/debug/requests/:id"
       "/v1/debug/requests/abc-123");
  Alcotest.(check (option (list (pair string string))))
    "fixed pattern binds nothing" (Some [])
    (Router.match_path ~pattern:"/healthz" "/healthz");
  let no_match pattern path =
    Alcotest.(check (option (list (pair string string))))
      (Printf.sprintf "%s !~ %s" path pattern)
      None
      (Router.match_path ~pattern path)
  in
  no_match "/v1/debug/requests/:id" "/v1/debug/requests";
  no_match "/v1/debug/requests/:id" "/v1/debug/requests/";
  no_match "/v1/debug/requests/:id" "/v1/debug/requests/a/b";
  no_match "/healthz" "/healthz/x"

let router_param_dispatch () =
  let routes =
    [ Router.route Http.GET "/things/special" (fun _ ->
          { Router.status = 200; headers = []; body = "fixed" });
      Router.route_params Http.GET "/things/:name" (fun params _ ->
          { Router.status = 200;
            headers = [];
            body = List.assoc "name" params }) ]
  in
  let dispatch path =
    Router.dispatch routes
      (req_of_string (Printf.sprintf "GET %s HTTP/1.1\r\n\r\n" path))
  in
  let label, r = dispatch "/things/widget" in
  Alcotest.(check int) "param route matches" 200 (status r);
  Alcotest.(check string) "binding reaches the handler" "widget"
    r.Router.body;
  Alcotest.(check string) "label is the pattern, not the path"
    "/things/:name" label;
  let _, r = dispatch "/things/special" in
  Alcotest.(check string) "fixed path shadows the param route" "fixed"
    r.Router.body;
  let label, r = dispatch "/things" in
  Alcotest.(check int) "missing segment is 404" 404 (status r);
  Alcotest.(check string) "unmatched label" "unmatched" label;
  let _, r =
    Router.dispatch routes
      (req_of_string
         "POST /things/widget HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
  in
  Alcotest.(check int) "wrong method on a param route is 405" 405 (status r);
  Alcotest.(check bool) "405 advertises Allow" true
    (List.mem_assoc "Allow" r.Router.headers)

(* ------------------------------------------------------------------ *)
(* Telemetry: profiles, access log, SLO windows, tail                  *)

let fake_event ~seq ~req name =
  { Trace.seq;
    at = 0.001 *. float_of_int seq;
    depth = 0;
    kind = Trace.Oracle;
    name;
    dur = Some 0.002;
    attrs = [ ("req", Trace.Str req); ("n", Trace.Int seq) ] }

let fake_profile ?(events = []) ?(status = 200) ?(wall = 0.01) ~id ~route () =
  { Telemetry.p_id = id;
    p_trace_id = String.make 32 'a';
    p_route = route;
    p_meth = "GET";
    p_path = route;
    p_status = status;
    p_start = 1000.;
    p_wall_seconds = wall;
    p_queue_seconds = 0.001;
    p_oracle_calls = List.length events;
    p_oracle_seconds = 0.002 *. float_of_int (List.length events);
    p_bytes = 42;
    p_jobs = 1;
    p_events = events;
    p_events_dropped = 0 }

let telemetry_ring_and_lookup () =
  let tel = Telemetry.create ~ring:3 ~now:0. () in
  for i = 1 to 5 do
    Telemetry.record ~now:(float_of_int i) tel
      (fake_profile ~id:(Printf.sprintf "r%d" i) ~route:"/x" ())
  done;
  Alcotest.(check int) "recorded counts everything" 5
    (Telemetry.recorded tel);
  Alcotest.(check (list string)) "ring keeps the newest, newest first"
    [ "r5"; "r4"; "r3" ]
    (List.map (fun p -> p.Telemetry.p_id) (Telemetry.profiles tel));
  Alcotest.(check bool) "find hits a live id" true
    (Telemetry.find tel "r4" <> None);
  Alcotest.(check bool) "evicted id is gone" true
    (Telemetry.find tel "r1" = None);
  let tel0 = Telemetry.create ~ring:0 ~now:0. () in
  Telemetry.record ~now:1. tel0 (fake_profile ~id:"x" ~route:"/x" ());
  Alcotest.(check (list string)) "ring 0 stores nothing" []
    (List.map (fun p -> p.Telemetry.p_id) (Telemetry.profiles tel0));
  Alcotest.(check int) "ring 0 still counts" 1 (Telemetry.recorded tel0)

let access_log_rotation_and_roundtrip () =
  let path = Filename.temp_file "shapmc_access" ".jsonl" in
  let line_of i =
    Telemetry.access_line
      (fake_profile ~id:(Printf.sprintf "req-%02d" i) ~route:"/v1/shapley" ())
  in
  (* fixed-width ids → identical line lengths; cap at 7 lines so 12
     writes rotate exactly once (a second rotation would overwrite the
     single .1 file — that bounded-disk behavior is the design) *)
  let line_len = String.length (J.to_string (line_of 1)) + 1 in
  let max_bytes = 7 * line_len in
  let al = Access_log.open_ ~max_bytes path in
  let lines_written = 12 in
  for i = 1 to lines_written do
    Access_log.write al (line_of i)
  done;
  Access_log.close al;
  Access_log.close al;  (* idempotent *)
  let rotated = Access_log.rotated_path path in
  Alcotest.(check bool) "rotation happened" true (Sys.file_exists rotated);
  let read_lines p =
    let ic = open_in p in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let all = read_lines rotated @ read_lines path in
  Alcotest.(check int) "no line lost across rotation" lines_written
    (List.length all);
  Alcotest.(check bool) "active file is bounded" true
    ((Unix.stat path).Unix.st_size <= max_bytes);
  List.iteri
    (fun i line ->
      match J.parse_opt line with
      | Some (J.Obj _ as j) ->
        Alcotest.(check string)
          (Printf.sprintf "line %d id" i)
          (Printf.sprintf "req-%02d" (i + 1))
          (str_exn (member_exn "id" j));
        (* round-trip: parse → print → parse is stable *)
        Alcotest.(check bool)
          (Printf.sprintf "line %d reprints stably" i)
          true
          (J.parse (J.to_string j) = j)
      | _ -> Alcotest.failf "unparseable access-log line: %s" line)
    all;
  Sys.remove path;
  Sys.remove rotated

let sliding_window_rolls () =
  (try
     ignore (Sliding.create ~window:0. ());
     Alcotest.fail "window 0 must be rejected"
   with Invalid_argument _ -> ());
  let w = Sliding.create ~window:60. () in
  let empty = Sliding.snapshot ~now:5. w in
  Alcotest.(check int) "empty window: no requests" 0 empty.Sliding.w_requests;
  Alcotest.(check (float 0.)) "empty window: ratio 0" 0.
    empty.Sliding.w_error_ratio;
  Alcotest.(check bool) "empty window: nan percentiles" true
    (Float.is_nan empty.Sliding.w_p50);
  Sliding.observe ~now:10. w ~ok:true 0.1;
  Sliding.observe ~now:20. w ~ok:true 0.1;
  Sliding.observe ~now:30. w ~ok:false 0.4;
  Sliding.observe ~now:40. w ~ok:false 0.4;
  let s = Sliding.snapshot ~now:45. w in
  Alcotest.(check int) "all four inside the window" 4 s.Sliding.w_requests;
  Alcotest.(check int) "errors counted" 2 s.Sliding.w_errors;
  Alcotest.(check (float 1e-9)) "ratio" 0.5 s.Sliding.w_error_ratio;
  Alcotest.(check bool) "percentiles ordered" true
    (s.Sliding.w_p50 <= s.Sliding.w_p95 && s.Sliding.w_p95 <= s.Sliding.w_p99);
  Alcotest.(check bool) "p50 in the data range" true
    (s.Sliding.w_p50 > 0. && s.Sliding.w_p50 < 0.5);
  (* the early observations age out, late ones survive *)
  let s = Sliding.snapshot ~now:75. w in
  Alcotest.(check bool) "old observations aged out" true
    (s.Sliding.w_requests < 4 && s.Sliding.w_requests >= 1);
  (* far in the future everything is gone *)
  let s = Sliding.snapshot ~now:500. w in
  Alcotest.(check int) "window fully drained" 0 s.Sliding.w_requests;
  (* and the ring accepts new epochs after the gap *)
  Sliding.observe ~now:501. w ~ok:true 0.2;
  let s = Sliding.snapshot ~now:502. w in
  Alcotest.(check int) "ring reusable after a gap" 1 s.Sliding.w_requests

let telemetry_slo_gauges () =
  let reg = Metrics.create () in
  let tel = Telemetry.create ~ring:4 ~now:0. () in
  Telemetry.record ~now:10. tel
    (fake_profile ~id:"ok1" ~route:"/x" ~wall:0.1 ());
  Telemetry.record ~now:11. tel
    (fake_profile ~id:"ok2" ~route:"/x" ~wall:0.1 ());
  Telemetry.record ~now:12. tel
    (fake_profile ~id:"boom" ~route:"/x" ~status:500 ~wall:0.1 ());
  (* a 4xx is the client's problem, not an SLO violation *)
  Telemetry.record ~now:13. tel
    (fake_profile ~id:"not-found" ~route:"/x" ~status:404 ~wall:0.1 ());
  Telemetry.set_slo_gauges ~now:20. ~registry:reg tel;
  let gauge ?labels name =
    match Metrics.gauge_value ~registry:reg ?labels name with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing" name
  in
  Alcotest.(check (float 1e-9)) "1m error ratio counts only 5xx" 0.25
    (gauge ~labels:[ ("window", "1m") ] "http_slo_error_ratio");
  Alcotest.(check (float 1e-9)) "1m request count" 4.
    (gauge ~labels:[ ("window", "1m") ] "http_slo_window_requests");
  Alcotest.(check (float 1e-9)) "5m sees the same traffic" 4.
    (gauge ~labels:[ ("window", "5m") ] "http_slo_window_requests");
  Alcotest.(check bool) "p95 gauge positive" true
    (gauge ~labels:[ ("quantile", "0.95"); ("window", "1m") ]
       "http_slo_latency_seconds"
     > 0.);
  (* empty window: ratio and latency settle to 0, never NaN *)
  Telemetry.set_slo_gauges ~now:10_000. ~registry:reg tel;
  Alcotest.(check (float 0.)) "drained ratio is 0" 0.
    (gauge ~labels:[ ("window", "1m") ] "http_slo_error_ratio");
  Alcotest.(check (float 0.)) "drained latency is 0, not NaN" 0.
    (gauge ~labels:[ ("quantile", "0.5"); ("window", "1m") ]
       "http_slo_latency_seconds");
  let exposition = Metrics.to_openmetrics ~registry:reg () in
  Alcotest.(check bool) "exposition parses back" true
    (Metrics.parse_openmetrics exposition <> [])

let tail_aggregation () =
  let t = Tail.create () in
  let line profile = J.to_string (Telemetry.access_line profile) in
  let l1 = line (fake_profile ~id:"a1" ~route:"/v1/shapley" ()) in
  let l2 = line (fake_profile ~id:"a2" ~route:"/v1/shapley" ~status:503 ()) in
  let l3 = line (fake_profile ~id:"b1" ~route:"/healthz" ~status:404 ()) in
  (* feed in chunks that split l2 mid-line: the carry must reassemble *)
  let whole = l1 ^ "\n" ^ l2 ^ "\n" in
  let cut = String.length l1 + 1 + (String.length l2 / 2) in
  Tail.feed t (String.sub whole 0 cut);
  Tail.feed t (String.sub whole cut (String.length whole - cut));
  Tail.feed t "this is not json\n";
  Tail.feed t l3;  (* unterminated — only finish flushes it *)
  Alcotest.(check int) "unterminated line not yet counted" 3 (Tail.lines t);
  Tail.finish t;
  Alcotest.(check int) "all lines consumed" 4 (Tail.lines t);
  Alcotest.(check int) "bad line counted, not fatal" 1 (Tail.bad_lines t);
  let rendered = Tail.render t in
  let contains sub =
    let n = String.length rendered and m = String.length sub in
    let rec go i =
      i + m <= n && (String.sub rendered i m = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "route row present" true (contains "/v1/shapley");
  Alcotest.(check bool) "total row present" true (contains "TOTAL");
  Alcotest.(check bool) "bad-line footer present" true
    (contains "1 unparseable line");
  Alcotest.(check string) "empty tail renders placeholder" "(no requests)\n"
    (Tail.render (Tail.create ()))

(* ------------------------------------------------------------------ *)
(* API: health fields and debug endpoints                              *)

let api_healthz_observability_fields () =
  let tel = Telemetry.create ~ring:4 () in
  let routes = Api.routes ~telemetry:tel (demo_api ()) in
  let r = get routes "/healthz" in
  Alcotest.(check int) "healthz 200" 200 (status r);
  let j = json_of r in
  Alcotest.(check string) "version advertised" Api.version
    (str_exn (member_exn "version" j));
  Alcotest.(check int) "pid is this process" (Unix.getpid ())
    (int_exn (member_exn "pid" j));
  (match J.to_float (member_exn "uptime_seconds" j) with
   | Some up -> Alcotest.(check bool) "uptime non-negative" true (up >= 0.)
   | None -> Alcotest.fail "uptime_seconds not a number");
  (* without telemetry the debug surface does not exist *)
  let bare = Api.routes (demo_api ()) in
  Alcotest.(check int) "healthz still works without telemetry" 200
    (status (get bare "/healthz"));
  Alcotest.(check int) "no debug route without telemetry" 404
    (status (get bare "/v1/debug/requests"))

let api_debug_requests () =
  let tel = Telemetry.create ~ring:4 ~now:0. () in
  let events =
    [ fake_event ~seq:0 ~req:"r1" "dpll"; fake_event ~seq:1 ~req:"r1" "dpll" ]
  in
  Telemetry.record ~now:5. tel
    (fake_profile ~id:"r1" ~route:"/v1/shapley" ~events ());
  Telemetry.record ~now:6. tel (fake_profile ~id:"r2" ~route:"/healthz" ());
  let routes = Api.routes ~telemetry:tel (demo_api ()) in
  let r = get routes "/v1/debug/requests" in
  Alcotest.(check int) "listing 200" 200 (status r);
  let j = json_of r in
  Alcotest.(check int) "count" 2 (int_exn (member_exn "count" j));
  Alcotest.(check int) "recorded" 2 (int_exn (member_exn "recorded" j));
  let ids =
    List.map
      (fun s -> str_exn (member_exn "id" s))
      (list_exn (member_exn "requests" j))
  in
  Alcotest.(check (list string)) "newest first" [ "r2"; "r1" ] ids;
  let r = get routes "/v1/debug/requests/r1" in
  Alcotest.(check int) "profile 200" 200 (status r);
  let j = json_of r in
  Alcotest.(check string) "profile id" "r1" (str_exn (member_exn "id" j));
  Alcotest.(check int) "events_dropped" 0
    (int_exn (member_exn "events_dropped" j));
  let decoded =
    List.map Trace_export.event_of_json (list_exn (member_exn "events" j))
  in
  Alcotest.(check bool) "events round-trip through the trace codec" true
    (decoded = events);
  Alcotest.(check int) "unknown id is 404" 404
    (status (get routes "/v1/debug/requests/nope"));
  let r = get routes "/v1/debug/requests/r1?format=chrome" in
  Alcotest.(check int) "chrome export 200" 200 (status r);
  Alcotest.(check (option string)) "chrome export is json"
    (Some "application/json")
    (List.assoc_opt "Content-Type" r.Router.headers);
  let trace_events = list_exn (member_exn "traceEvents" (json_of r)) in
  Alcotest.(check bool) "chrome export has the oracle slices" true
    (List.length trace_events >= 2);
  Alcotest.(check int) "unknown format is 400" 400
    (status (get routes "/v1/debug/requests/r1?format=bogus"))

(* ------------------------------------------------------------------ *)
(* End-to-end: isolation, headers, access log, SLO series              *)

(* Six different queries so each client's request does real oracle work
   (results are memoized per query, so six clients on one query would
   leave five of them oracle-free). *)
let multi_query_api n =
  Api.of_pairs
    (List.init n (fun i ->
         ( Printf.sprintf "q%d" i,
           (page_db (i + 2), Db_parser.parse_query "R(x)") )))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let server_scoped_observability_end_to_end () =
  Metrics.reset ();
  let clients = 6 in
  let log_path = Filename.temp_file "shapmc_e2e_access" ".jsonl" in
  let access = Access_log.open_ log_path in
  let tel = Telemetry.create ~ring:32 ~access () in
  let api = multi_query_api clients in
  with_server ~jobs:4 ~telemetry:tel (Api.routes ~telemetry:tel api)
    (fun _ port ->
      let domains =
        Array.init clients (fun i ->
            Domain.spawn (fun () ->
                let rid = Printf.sprintf "client-%d" i in
                let st, hdrs, _ =
                  Client.oneshot port "POST" "/v1/shapley/all"
                    ~headers:[ ("X-Request-Id", rid) ]
                    ~body:(Printf.sprintf {|{"query":"q%d"}|} i)
                in
                (rid, st, List.assoc_opt "x-request-id" hdrs,
                 List.assoc_opt "traceparent" hdrs)))
      in
      let results = Array.to_list (Array.map Domain.join domains) in
      List.iter
        (fun (rid, st, echoed, tp) ->
          Alcotest.(check int) (rid ^ " status") 200 st;
          Alcotest.(check (option string)) (rid ^ " echoed id") (Some rid)
            echoed;
          match tp with
          | Some tp ->
            Alcotest.(check bool) (rid ^ " valid traceparent") true
              (Request_id.parse_traceparent tp <> None)
          | None -> Alcotest.failf "%s: no traceparent header" rid)
        results;
      (* profiles are recorded just after the response bytes go out —
         wait for all six before reading them back *)
      let deadline = Unix.gettimeofday () +. 5. in
      while
        Telemetry.recorded tel < clients && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.005
      done;
      (* every profile's every event carries exactly its own request id:
         zero cross-request leakage at jobs=4 *)
      List.iter
        (fun (rid, _, _, _) ->
          let st, _, body =
            Client.oneshot port "GET" ("/v1/debug/requests/" ^ rid)
          in
          Alcotest.(check int) (rid ^ " profile served") 200 st;
          let j = J.parse body in
          Alcotest.(check string) (rid ^ " profile id") rid
            (str_exn (member_exn "id" j));
          Alcotest.(check bool) (rid ^ " oracle work recorded") true
            (int_exn (member_exn "oracle_calls" j) > 0);
          let events = list_exn (member_exn "events" j) in
          Alcotest.(check bool) (rid ^ " events captured") true
            (events <> []);
          List.iter
            (fun ej ->
              let e = Trace_export.event_of_json ej in
              match List.assoc_opt "req" e.Trace.attrs with
              | Some (Trace.Str id) ->
                Alcotest.(check string)
                  (Printf.sprintf "%s event %d tagged with its request"
                     rid e.Trace.seq)
                  rid id
              | _ ->
                Alcotest.failf "%s: event %d without a req attribute" rid
                  e.Trace.seq)
            events;
          (* the same buffer exports through the chrome tooling *)
          let st, _, chrome =
            Client.oneshot port "GET"
              ("/v1/debug/requests/" ^ rid ^ "?format=chrome")
          in
          Alcotest.(check int) (rid ^ " chrome export") 200 st;
          Alcotest.(check bool) (rid ^ " chrome has slices") true
            (list_exn (member_exn "traceEvents" (J.parse chrome)) <> []))
        results;
      (* rolling SLO series are on the exposition *)
      let _, _, metrics = Client.oneshot port "GET" "/metrics" in
      let samples = Metrics.parse_openmetrics metrics in
      let series name labels =
        List.exists
          (fun s ->
            s.Metrics.om_name = name
            && List.for_all
                 (fun (k, v) ->
                   List.assoc_opt k s.Metrics.om_labels = Some v)
                 labels)
          samples
      in
      Alcotest.(check bool) "1m error ratio exported" true
        (series "shapmc_http_slo_error_ratio" [ ("window", "1m") ]);
      Alcotest.(check bool) "5m window count exported" true
        (series "shapmc_http_slo_window_requests" [ ("window", "5m") ]);
      Alcotest.(check bool) "p99 latency exported" true
        (series "shapmc_http_slo_latency_seconds"
           [ ("window", "5m"); ("quantile", "0.99") ]));
  Access_log.close access;
  (* the access log has one parseable line per client request (plus the
     debug/metrics fetches above), each round-tripping through the JSON
     codec *)
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file log_path))
  in
  let logged_ids =
    List.filter_map
      (fun l ->
        match J.parse_opt l with
        | Some (J.Obj _ as j) ->
          Alcotest.(check bool) "access line reprints stably" true
            (J.parse (J.to_string j) = j);
          Option.bind (J.member "id" j) J.to_str
        | _ -> Alcotest.failf "unparseable access-log line: %s" l)
      lines
  in
  List.iter
    (fun i ->
      let rid = Printf.sprintf "client-%d" i in
      Alcotest.(check bool) (rid ^ " in the access log") true
        (List.mem rid logged_ids))
    (List.init clients (fun i -> i));
  Sys.remove log_path

(* Satellite: /metrics stays scrapeable mid-load, the in-flight gauge
   never goes negative, and after quiescing the counter totals agree
   with the access log line count. *)
let server_metrics_under_load_reconcile () =
  Metrics.reset ();
  let log_path = Filename.temp_file "shapmc_load_access" ".jsonl" in
  let access = Access_log.open_ log_path in
  let tel = Telemetry.create ~ring:8 ~access () in
  let api = multi_query_api 4 in
  let served = ref 0 in
  with_server ~jobs:4 ~telemetry:tel (Api.routes ~telemetry:tel api)
    (fun srv port ->
      let load =
        Array.init 4 (fun i ->
            Domain.spawn (fun () ->
                let st, _, _ =
                  Client.oneshot port "POST" "/v1/shapley/all"
                    ~body:(Printf.sprintf {|{"query":"q%d"}|} i)
                in
                st))
      in
      let scrapes = ref 0 in
      let scraping = ref true in
      let scraper =
        Domain.spawn (fun () ->
            let ok = ref true in
            while !scraping do
              let st, _, body = Client.oneshot port "GET" "/metrics" in
              if st <> 200 then ok := false;
              let samples = Metrics.parse_openmetrics body in
              if samples = [] then ok := false;
              List.iter
                (fun s ->
                  if
                    s.Metrics.om_name = "shapmc_http_in_flight"
                    && s.Metrics.om_value < 0.
                  then ok := false)
                samples;
              incr scrapes
            done;
            !ok)
      in
      let statuses = Array.map Domain.join load in
      (* under heavy machine load the four clients can finish before the
         scraper turns over twice; let it reach two expositions (they
         still overlap the post-response bookkeeping) before stopping *)
      let scrape_deadline = Unix.gettimeofday () +. 5. in
      while !scrapes < 2 && Unix.gettimeofday () < scrape_deadline do
        Unix.sleepf 0.005
      done;
      scraping := false;
      let scrapes_ok = Domain.join scraper in
      Array.iteri
        (fun i st ->
          Alcotest.(check int) (Printf.sprintf "load client %d" i) 200 st)
        statuses;
      Alcotest.(check bool) "several scrapes happened mid-load" true
        (!scrapes >= 2);
      Alcotest.(check bool)
        "every scrape parsed; in-flight never negative" true scrapes_ok;
      (* quiesce: the counter and the log line are written after the
         response bytes, so wait for the served count to settle *)
      let rec settle prev =
        Unix.sleepf 0.05;
        let cur = Server.requests_served srv in
        if cur <> prev then settle cur else cur
      in
      served := settle (Server.requests_served srv));
  Access_log.close access;
  let logged =
    List.length
      (List.filter (fun l -> String.trim l <> "")
         (String.split_on_char '\n' (read_file log_path)))
  in
  Alcotest.(check int) "access log reconciles with requests served" !served
    logged;
  let total =
    int_of_float (Metrics.counter_total "http_requests")
  in
  Alcotest.(check int) "counter total reconciles with the access log"
    logged total;
  Sys.remove log_path

(* ------------------------------------------------------------------ *)
(* The serving cache: warm requests are oracle-free, and concurrent
   misses of one key single-flight to a single solve.                  *)

let server_warm_path_oracle_free () =
  Metrics.reset ();
  let tel = Telemetry.create ~ring:8 () in
  let api = demo_api () in
  with_server ~telemetry:tel (Api.routes ~telemetry:tel api) (fun _ port ->
      let ask rid =
        Client.oneshot port "POST" "/v1/shapley/all"
          ~headers:[ ("X-Request-Id", rid) ]
          ~body:{|{"query":"demo"}|}
      in
      let st_cold, _, body_cold = ask "cold" in
      let st_warm, _, body_warm = ask "warm" in
      Alcotest.(check int) "cold 200" 200 st_cold;
      Alcotest.(check int) "warm 200" 200 st_warm;
      Alcotest.(check string) "bit-identical payloads" body_cold body_warm;
      (* profiles are recorded just after the response bytes go out *)
      let deadline = Unix.gettimeofday () +. 5. in
      while Telemetry.recorded tel < 2 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.005
      done;
      let oracle_calls rid =
        let st, _, body =
          Client.oneshot port "GET" ("/v1/debug/requests/" ^ rid)
        in
        Alcotest.(check int) (rid ^ " profile served") 200 st;
        int_exn (member_exn "oracle_calls" (J.parse body))
      in
      Alcotest.(check bool) "cold request paid for the solve" true
        (oracle_calls "cold" > 0);
      Alcotest.(check int) "warm request made zero oracle calls" 0
        (oracle_calls "warm");
      let _, _, metrics = Client.oneshot port "GET" "/metrics" in
      let hits =
        List.fold_left
          (fun acc s ->
            if s.Metrics.om_name = "shapmc_cache_hits_total" then
              acc +. s.Metrics.om_value
            else acc)
          0.
          (Metrics.parse_openmetrics metrics)
      in
      Alcotest.(check bool) "/metrics shows cache hits" true (hits > 0.))

(* Regression for the old per-entry memo, whose mutex was held across
   the whole solve: six concurrent requests for distinct facts of one
   query must all succeed with exact values, and the shared cache key
   must be solved exactly once — every other request joins the flight
   (or hits) and stays oracle-free. *)
let server_cache_single_flight_under_concurrency () =
  Metrics.reset ();
  let tel = Telemetry.create ~ring:16 () in
  let api = demo_api () in
  with_server ~jobs:4 ~telemetry:tel (Api.routes ~telemetry:tel api)
    (fun _ port ->
      let clients = 6 in
      let domains =
        Array.init clients (fun i ->
            Domain.spawn (fun () ->
                let rid = Printf.sprintf "flight-%d" i in
                let fact = (i mod 4) + 1 in
                let st, _, body =
                  Client.oneshot port "POST" "/v1/shapley"
                    ~headers:[ ("X-Request-Id", rid) ]
                    ~body:(Printf.sprintf {|{"query":"demo","fact":%d}|} fact)
                in
                (rid, st, body)))
      in
      let results = Array.to_list (Array.map Domain.join domains) in
      List.iter
        (fun (rid, st, body) ->
          Alcotest.(check int) (rid ^ " status") 200 st;
          let sh = member_exn "shapley" (J.parse body) in
          Alcotest.(check string) (rid ^ " num") "1"
            (str_exn (member_exn "num" sh));
          Alcotest.(check string) (rid ^ " den") "4"
            (str_exn (member_exn "den" sh)))
        results;
      let deadline = Unix.gettimeofday () +. 5. in
      while
        Telemetry.recorded tel < clients && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.005
      done;
      let paid =
        List.filter
          (fun (rid, _, _) ->
            let st, _, body =
              Client.oneshot port "GET" ("/v1/debug/requests/" ^ rid)
            in
            Alcotest.(check int) (rid ^ " profile served") 200 st;
            int_exn (member_exn "oracle_calls" (J.parse body)) > 0)
          results
      in
      Alcotest.(check int)
        "exactly one request paid for the solve (single-flight)" 1
        (List.length paid))

(* ------------------------------------------------------------------ *)

let suite =
  [ t "http: request anatomy" http_basic;
    t "http: byte-at-a-time equals whole" http_byte_at_a_time;
    t "http: bare-LF tolerated" http_bare_lf;
    t "http: malformed inputs reject with 400" http_rejects;
    t "http: header cap exact at the boundary" http_header_cap_boundary;
    t "http: body cap exact at the boundary" http_body_cap_boundary;
    t "http: pipelined bytes carry over as leftover" http_pipelining_leftover;
    t "http: response rendering" http_render_response;
    fuzz_split_invariance;
    fuzz_header_cap_exact;
    json_roundtrip;
    t "json: escaping goldens" json_escaping_goldens;
    t "json: huge-factorial rational renders a finite float"
      json_rat_huge_factorial;
    t "router: dispatch, 404/405/500" router_dispatch;
    t "api: healthz and query catalog" api_healthz_queries;
    t "api: facts parameter errors" api_facts_errors;
    t "api: facts pages and cursors" api_facts_pages;
    t "api: golden last-page and empty-query" api_golden_last_page_and_empty;
    t "api: shapley bit-identical to the solver" api_shapley_bit_identical;
    t "api: shapley error paths" api_shapley_errors;
    t "api: shapley/approx values, CIs and determinism" api_shapley_approx;
    t "api: shapley/approx checkpoints reach the request scope"
      api_shapley_approx_scoped;
    t "api: shapley/approx error paths" api_shapley_approx_errors;
    t "api: cursor codec" cursor_codec;
    facts_pagination_property;
    shapley_all_pagination_property;
    t "server: routing over a real socket" server_routing_over_socket;
    t "server: keep-alive and per-connection cap" server_keep_alive_and_conn_cap;
    t "server: limits enforced on the wire" server_limits_on_the_wire;
    t "server: mid-request timeout answers 408" server_mid_request_timeout;
    t "server: concurrent clients, jobs 1 and 4 identical"
      server_concurrent_jobs_identical;
    t "server: /metrics round-trips through the parser"
      server_metrics_roundtrip;
    t "server: shutdown releases the port" server_shutdown_releases_port;
    t "request-id: traceparent parsing" request_id_traceparent_parse;
    t "request-id: generation invariants" request_id_generation;
    t "request-id: honors and sanitizes headers" request_id_honors_headers;
    t "router: param patterns match segment-wise" router_param_matching;
    t "router: param dispatch, labels, shadowing" router_param_dispatch;
    t "telemetry: ring eviction and lookup" telemetry_ring_and_lookup;
    t "access log: rotation and JSON round-trip"
      access_log_rotation_and_roundtrip;
    t "sliding: windows roll deterministically" sliding_window_rolls;
    t "telemetry: SLO gauges from the windows" telemetry_slo_gauges;
    t "tail: chunked feeding and aggregation" tail_aggregation;
    t "api: healthz version/pid/uptime" api_healthz_observability_fields;
    t "api: debug request endpoints" api_debug_requests;
    t "server: scoped observability end to end"
      server_scoped_observability_end_to_end;
    t "server: /metrics under load reconciles with the access log"
      server_metrics_under_load_reconcile;
    t "server: warm path is oracle-free with cache hits on /metrics"
      server_warm_path_oracle_free;
    t "server: concurrent misses single-flight to one solve"
      server_cache_single_flight_under_concurrency;
    t "exec: all submitted tasks run" exec_runs_everything;
    t "exec: jobs clamp" exec_jobs_clamp;
    t "exec: deadline then drain" exec_deadline_then_drain;
    t "exec: task exceptions are contained" exec_task_exception_is_contained;
    t "exec: nested fan-out degrades in a worker" exec_nested_fanout_degrades;
    t "limits: environment overrides" limits_from_env ]
