(* Tiny standalone HTTP client for the shell-level server test — no
   curl dependency on CI.  One request per run, [Connection: close]:

     serve_probe HOST PORT METHOD PATH [BODY]

   A BODY of [@FILE] sends FILE's contents (argv cannot carry the
   megabyte-scale bodies the limit tests need).  Prints the raw
   response (status line, headers, body) to stdout.  Exit 0 on any HTTP
   response (the script asserts on the text), 1 when the connection
   fails. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  match Array.to_list Sys.argv with
  | _ :: host :: port :: meth :: path :: rest ->
    let body = String.concat " " rest in
    let body =
      if String.length body > 0 && body.[0] = '@' then
        read_file (String.sub body 1 (String.length body - 1))
      else body
    in
    let port =
      match int_of_string_opt port with
      | Some p -> p
      | None ->
        prerr_endline ("serve_probe: bad port " ^ port);
        exit 2
    in
    (try
       (* A server enforcing its body limit may respond and close while
          we are still writing — don't die on the broken pipe, read the
          response it already sent. *)
       (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
        with Invalid_argument _ -> ());
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
       Unix.connect fd
         (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
       let request =
         Printf.sprintf
           "%s %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Length: %d\r\n\
            Connection: close\r\n\r\n%s"
           meth path host port (String.length body) body
       in
       let b = Bytes.of_string request in
       let rec send off =
         if off < Bytes.length b then
           send (off + Unix.write fd b off (Bytes.length b - off))
       in
       (try send 0
        with
        | Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN), _, _)
        -> ());
       let buf = Bytes.create 8192 in
       let rec recv () =
         match Unix.read fd buf 0 (Bytes.length buf) with
         | 0 -> ()
         | k ->
           print_string (Bytes.sub_string buf 0 k);
           recv ()
       in
       recv ();
       Unix.close fd
     with Unix.Unix_error (e, _, _) ->
       prerr_endline ("serve_probe: " ^ Unix.error_message e);
       exit 1)
  | _ ->
    prerr_endline "usage: serve_probe HOST PORT METHOD PATH [BODY]";
    exit 2
