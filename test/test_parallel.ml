(** Parallel fan-out tests.

    - [Pool]: deterministic result slots, jobs clamping, exception
      determinism (lowest failing index, all tasks still run), nested
      maps, empty inputs.
    - [Par]: the process-wide knob clamps and gates the pool.
    - The tentpole guarantee: for every reduction in the pipeline,
      results AND ledger aggregates are identical for jobs ∈ {1, 2, 4}.
      Wall-clock fields are excluded from the comparison (they are the
      only legitimately schedule-dependent output); raw ledgers are
      compared as multisets because arrival order is scheduling.
    - Tracing under jobs ≥ 2: seq stays contiguous and the stream
      agrees with the ledger. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f

let iterations default =
  match Sys.getenv_opt "SHAPMC_QCHECK_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> default)
  | None -> default

(* Like [Helpers.qtest], but deterministically seeded and env-scaled. *)
let dtest ~seed ~count name arb prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 2025; seed |])
    (QCheck.Test.make ~count:(iterations count) ~name arb prop)

let universe n = List.init n succ

(* ------------------------------------------------------------------ *)
(* Pool *)

exception Task_failed of int

let pool_tests =
  [ t "map keeps result slots" (fun () ->
        let p = Pool.create ~jobs:4 in
        let xs = Array.init 100 (fun i -> i) in
        Alcotest.(check (array int))
          "squares in order"
          (Array.map (fun i -> i * i) xs)
          (Pool.map p (fun i -> i * i) xs));
    t "jobs clamp to 1..64" (fun () ->
        Alcotest.(check int) "0 -> 1" 1 (Pool.jobs (Pool.create ~jobs:0));
        Alcotest.(check int) "-3 -> 1" 1 (Pool.jobs (Pool.create ~jobs:(-3)));
        Alcotest.(check int) "4" 4 (Pool.jobs (Pool.create ~jobs:4));
        Alcotest.(check int) "9999 -> 64" 64
          (Pool.jobs (Pool.create ~jobs:9999)));
    t "empty and singleton inputs" (fun () ->
        let p = Pool.create ~jobs:4 in
        Alcotest.(check (array int)) "empty" [||] (Pool.map p succ [||]);
        Alcotest.(check (array int)) "singleton" [| 8 |]
          (Pool.map p succ [| 7 |]));
    t "lowest failing index wins, every task still runs" (fun () ->
        let p = Pool.create ~jobs:4 in
        let ran = Atomic.make 0 in
        let xs = Array.init 20 (fun i -> i) in
        (match
           Pool.map p
             (fun i ->
                Atomic.incr ran;
                if i >= 7 then raise (Task_failed i) else i)
             xs
         with
         | _ -> Alcotest.fail "expected Task_failed"
         | exception Task_failed i ->
           Alcotest.(check int) "index 7" 7 i);
        Alcotest.(check int) "all 20 tasks ran" 20 (Atomic.get ran));
    t "nested maps are correct" (fun () ->
        let p = Pool.create ~jobs:4 in
        let got =
          Pool.map p
            (fun i -> Pool.map p (fun j -> (10 * i) + j) [| 0; 1; 2 |])
            [| 0; 1; 2; 3 |]
        in
        Alcotest.(check (array (array int)))
          "inner results"
          (Array.init 4 (fun i -> Array.init 3 (fun j -> (10 * i) + j)))
          got) ]

let par_tests =
  [ t "knob clamps and restores" (fun () ->
        Fun.protect ~finally:(fun () -> Par.set_jobs 1) (fun () ->
            Par.set_jobs 0;
            Alcotest.(check int) "0 -> 1" 1 (Par.jobs ());
            Par.set_jobs 1000;
            Alcotest.(check int) "1000 -> 64" 64 (Par.jobs ());
            Par.set_jobs 4;
            Alcotest.(check (array int)) "map_n under the knob"
              [| 0; 1; 4; 9; 16 |]
              (Par.map_n (fun i -> i * i) 5))) ]

(* ------------------------------------------------------------------ *)
(* jobs-independence: results and ledger aggregates *)

(* Run [f] with the ledger live at [jobs]; return its result together
   with every schedule-independent projection of the ledger. *)
let with_jobs ~jobs f =
  Obs.reset ();
  Obs.enable ();
  Par.set_jobs jobs;
  Fun.protect
    ~finally:(fun () ->
      Par.set_jobs 1;
      Obs.disable ();
      Obs.reset ())
    (fun () ->
       let r = f () in
       let calls =
         List.sort compare
           (List.map
              (fun c ->
                 (c.Obs.call_oracle, c.Obs.call_n, c.Obs.call_arity,
                  c.Obs.call_size))
              (Obs.calls ()))
       in
       let aggs =
         List.map
           (fun (name, a) ->
              (name, a.Obs.a_calls, a.Obs.a_n_min, a.Obs.a_n_max,
               a.Obs.a_l_min, a.Obs.a_l_max, a.Obs.a_size_max))
           (Obs.aggregate ())
       in
       let spans =
         List.map (fun s -> (s.Obs.span_path, s.Obs.span_calls)) (Obs.spans ())
       in
       let substs = List.sort compare (Obs.substs ()) in
       (r, (Obs.call_count (), calls, aggs, spans, Obs.counters (), substs)))

let all_jobs = [ 1; 2; 4 ]

(* [agree ~run ~eq] checks that result and ledger projections coincide
   across [all_jobs]; ledger projections are compared structurally. *)
let agree ~run ~eq =
  match List.map (fun jobs -> run ~jobs) all_jobs with
  | [] -> true
  | (r0, l0) :: rest ->
    List.for_all (fun (r, l) -> eq r0 r && l0 = l) rest

let shap_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (i, x) (j, y) -> i = j && Rat.equal x y)
       (List.sort compare a) (List.sort compare b)

let jobs_property_tests =
  [ dtest ~seed:1 ~count:15 "shap: results and ledger independent of jobs"
      (arb_formula ~nvars:3 ~depth:3)
      (fun f ->
         agree ~eq:shap_eq ~run:(fun ~jobs ->
             with_jobs ~jobs (fun () ->
                 Pipeline.shap_via_count_oracle
                   ~oracle:Pipeline.dpll_count_oracle ~vars:(universe 3) f)));
    dtest ~seed:2 ~count:20 "kcounts: results and ledger independent of jobs"
      (arb_formula ~nvars:4 ~depth:4)
      (fun f ->
         agree ~eq:Kvec.equal ~run:(fun ~jobs ->
             with_jobs ~jobs (fun () ->
                 Pipeline.kcounts_via_count_oracle
                   ~oracle:Pipeline.dpll_count_oracle ~vars:(universe 4) f)));
    dtest ~seed:3 ~count:15 "pqe shap: results and ledger independent of jobs"
      (arb_formula ~nvars:3 ~depth:3)
      (fun f ->
         agree ~eq:shap_eq ~run:(fun ~jobs ->
             with_jobs ~jobs (fun () ->
                 Pipeline.shap_via_pqe_oracle
                   ~oracle:Pipeline.pqe_circuit_oracle ~vars:(universe 3) f)));
    (* roundtrip composes two parallel reductions (the inner one must
       degrade to sequential inside workers); keep the count fixed — it
       is by far the most oracle-hungry property here. *)
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 2025; 4 |])
      (QCheck.Test.make ~count:4
         ~name:"roundtrip_count: result and ledger independent of jobs"
         (arb_formula ~nvars:3 ~depth:3)
         (fun f ->
            agree ~eq:Bigint.equal ~run:(fun ~jobs ->
                with_jobs ~jobs (fun () ->
                    Pipeline.roundtrip_count ~vars:(universe 3) f)))) ]

(* ------------------------------------------------------------------ *)
(* Tracing under parallel recording *)

let trace_tests =
  [ t "jobs=4 trace: seq contiguous, stream = ledger" (fun () ->
        Obs.reset ();
        Obs.enable ();
        Par.set_jobs 4;
        Trace.start ();
        Fun.protect
          ~finally:(fun () ->
            Par.set_jobs 1;
            Trace.clear ();
            Obs.disable ();
            Obs.reset ())
          (fun () ->
             let _ =
               Pipeline.shap_via_count_oracle
                 ~oracle:Pipeline.dpll_count_oracle ~vars:(universe 3)
                 Helpers.example2_formula
             in
             let evs = Trace.events () in
             List.iteri
               (fun i e ->
                  Alcotest.(check int) "seq contiguous" i e.Trace.seq)
               evs;
             let oracles =
               List.filter (fun e -> e.Trace.kind = Trace.Oracle) evs
             in
             (* Theorem 3.1's (n+1) + n² budget survives the fan-out *)
             Alcotest.(check int) "13 oracle events" 13 (List.length oracles);
             Alcotest.(check int) "stream = ledger" (Obs.call_count ())
               (List.length oracles))) ]

(* ------------------------------------------------------------------ *)
(* Ledger cap under parallel recording: once the raw call ledger
   overflows, the stored prefix is schedule-dependent (arrival order),
   but everything the cap preserves — total and dropped counts, the
   stored size, and the exact aggregates — must stay identical across
   jobs. *)

let cap_tests =
  [ t "capped ledger: aggregates independent of jobs" (fun () ->
        let old_cap = Obs.ledger_cap () in
        Fun.protect ~finally:(fun () -> Obs.set_ledger_cap old_cap)
          (fun () ->
             Obs.set_ledger_cap 8;
             let run ~jobs =
               Obs.reset ();
               Obs.enable ();
               Par.set_jobs jobs;
               Fun.protect
                 ~finally:(fun () ->
                   Par.set_jobs 1;
                   Obs.disable ();
                   Obs.reset ())
                 (fun () ->
                    let r =
                      Pipeline.shap_via_count_oracle
                        ~oracle:Pipeline.dpll_count_oracle
                        ~vars:(universe 3) Helpers.example2_formula
                    in
                    let aggs =
                      List.map
                        (fun (name, a) ->
                           (name, a.Obs.a_calls, a.Obs.a_n_max, a.Obs.a_l_max,
                            a.Obs.a_size_max))
                        (Obs.aggregate ())
                    in
                    (r, Obs.call_count (), Obs.dropped_calls (),
                     List.length (Obs.calls ()), aggs))
             in
             let r1, count1, dropped1, stored1, aggs1 = run ~jobs:1 in
             (* 13 calls against a cap of 8: the cap really bites *)
             Alcotest.(check int) "calls exceed the cap" 13 count1;
             Alcotest.(check int) "stored at the cap" 8 stored1;
             Alcotest.(check int) "drops counted" 5 dropped1;
             List.iter
               (fun jobs ->
                  let r, count, dropped, stored, aggs = run ~jobs in
                  Alcotest.(check bool) "result" true (shap_eq r1 r);
                  Alcotest.(check int) "call_count" count1 count;
                  Alcotest.(check int) "dropped" dropped1 dropped;
                  Alcotest.(check int) "stored" stored1 stored;
                  Alcotest.(check bool) "aggregates" true (aggs1 = aggs))
               [ 2; 4 ])) ]

let suite =
  pool_tests @ par_tests @ jobs_property_tests @ trace_tests @ cap_tests
