(** Metrics-layer tests.

    - [Histogram]: bucket geometry (every positive value lands in a
      bucket that contains it), merge as a commutative/associative
      monoid on counts, and the percentile guarantee: the reported
      quantile falls in the same bucket as the exact rank-statistic of
      the observed multiset.
    - [Metrics]: registry semantics (label canonicalization, kind
      clashes), the OpenMetrics exposition round-tripping through the
      bundled parser, and the JSON dump parsing with [Tiny_json].
    - Integration: profiling mode changes no results and no oracle-call
      totals; spans account self time; [Pool] utilization lands in the
      registry without touching the Obs ledgers. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f

let hist_of obs =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) obs;
  h

(* Structural histogram equality: exact on counts and bucket contents,
   tolerant on the sum (float addition is commutative but not
   associative). *)
let hist_same a b =
  Histogram.count a = Histogram.count b
  && Histogram.buckets a = Histogram.buckets b
  && Float.abs (Histogram.sum a -. Histogram.sum b)
     <= 1e-9 *. Float.max 1.0 (Float.abs (Histogram.sum a))
  && (Histogram.count a = 0
      || (Histogram.min_value a = Histogram.min_value b
          && Histogram.max_value a = Histogram.max_value b))

(* ------------------------------------------------------------------ *)
(* Histogram unit tests *)

let histogram_tests =
  [ t "empty histogram" (fun () ->
        let h = Histogram.create () in
        Alcotest.(check int) "count" 0 (Histogram.count h);
        Alcotest.(check bool) "percentile nan" true
          (Float.is_nan (Histogram.percentile h 0.5));
        Alcotest.(check bool) "min nan" true
          (Float.is_nan (Histogram.min_value h)));
    t "observe and summarize" (fun () ->
        let h = hist_of [ 1.0; 2.0; 4.0 ] in
        Alcotest.(check int) "count" 3 (Histogram.count h);
        Alcotest.(check (float 1e-9)) "sum" 7.0 (Histogram.sum h);
        Alcotest.(check (float 0.0)) "min" 1.0 (Histogram.min_value h);
        Alcotest.(check (float 0.0)) "max" 4.0 (Histogram.max_value h);
        let s = Metrics.summary_of h in
        Alcotest.(check int) "s_count" 3 s.Metrics.s_count;
        Alcotest.(check bool) "p50 <= p90 <= p99 <= max" true
          (s.Metrics.s_p50 <= s.Metrics.s_p90
           && s.Metrics.s_p90 <= s.Metrics.s_p99
           && s.Metrics.s_p99 <= s.Metrics.s_max));
    t "zero, negative and NaN land in the zero bucket" (fun () ->
        let h = hist_of [ 0.0; -3.5; Float.nan ] in
        Alcotest.(check int) "count" 3 (Histogram.count h);
        (match Histogram.buckets h with
         | [ (ub, n) ] ->
           Alcotest.(check (float 0.0)) "zero bucket bound" 0.0 ub;
           Alcotest.(check int) "all three" 3 n
         | _ -> Alcotest.fail "expected exactly the zero bucket");
        Alcotest.(check (float 0.0)) "percentile 1.0 is 0" 0.0
          (Histogram.percentile h 1.0));
    t "bucket bounds contain their values" (fun () ->
        List.iter
          (fun v ->
             let i = Histogram.bucket_index v in
             Alcotest.(check bool) "index in range" true
               (i >= 0 && i < Histogram.num_buckets);
             let lo, hi = Histogram.bucket_bounds i in
             Alcotest.(check bool)
               (Printf.sprintf "%g in [%g, %g)" v lo hi)
               true
               (lo <= v && v < hi))
          [ 1e-9; 0.5; 0.75; 1.0; 1.5; 3.14; 1000.0; 1e10 ]) ]

let gen_obs =
  QCheck.Gen.(
    list_size (int_range 1 80)
      (map (fun x -> Float.exp x) (float_range (-8.0) 8.0)))

let arb_obs = QCheck.make ~print:QCheck.Print.(list float) gen_obs

let histogram_property_tests =
  [ qtest ~count:100 "merge is commutative"
      QCheck.(pair arb_obs arb_obs)
      (fun (a, b) ->
         let ha = hist_of a and hb = hist_of b in
         hist_same (Histogram.merge ha hb) (Histogram.merge hb ha));
    qtest ~count:100 "merge is associative"
      QCheck.(triple arb_obs arb_obs arb_obs)
      (fun (a, b, c) ->
         let ha = hist_of a and hb = hist_of b and hc = hist_of c in
         hist_same
           (Histogram.merge (Histogram.merge ha hb) hc)
           (Histogram.merge ha (Histogram.merge hb hc)));
    qtest ~count:100 "merge_into agrees with merge"
      QCheck.(pair arb_obs arb_obs)
      (fun (a, b) ->
         let into = hist_of a in
         Histogram.merge_into ~into (hist_of b);
         hist_same into (Histogram.merge (hist_of a) (hist_of b)));
    qtest ~count:200 "percentile lands in the exact rank's bucket"
      QCheck.(pair arb_obs (float_range 0.0 1.0))
      (fun (obs, q) ->
         let h = hist_of obs in
         let sorted = List.sort compare obs in
         let n = List.length sorted in
         let rank =
           min n (max 1 (int_of_float (Float.ceil (q *. float_of_int n))))
         in
         let exact = List.nth sorted (rank - 1) in
         Histogram.bucket_index (Histogram.percentile h q)
         = Histogram.bucket_index exact) ]

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let registry_tests =
  [ t "counters accumulate; labels canonicalize" (fun () ->
        let r = Metrics.create () in
        Metrics.inc ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "hits";
        Metrics.inc ~registry:r ~labels:[ ("a", "1"); ("b", "2") ] ~by:2.5
          "hits";
        Alcotest.(check (float 0.0)) "one cell" 3.5
          (Metrics.counter_total ~registry:r "hits");
        Alcotest.(check int) "one dump row" 1
          (List.length (Metrics.dump ~registry:r ())));
    t "gauges overwrite" (fun () ->
        let r = Metrics.create () in
        Metrics.set ~registry:r "depth" 3.0;
        Metrics.set ~registry:r "depth" 7.0;
        Alcotest.(check (option (float 0.0))) "latest wins" (Some 7.0)
          (Metrics.gauge_value ~registry:r "depth"));
    t "kind clash raises" (fun () ->
        let r = Metrics.create () in
        Metrics.inc ~registry:r "x";
        (match Metrics.set ~registry:r "x" 1.0 with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()));
    t "reset drops everything" (fun () ->
        let r = Metrics.create () in
        Metrics.inc ~registry:r "a";
        Metrics.observe ~registry:r "b" 1.0;
        Metrics.reset ~registry:r ();
        Alcotest.(check int) "empty" 0
          (List.length (Metrics.dump ~registry:r ()))) ]

(* ------------------------------------------------------------------ *)
(* Exposition formats *)

let sample name labels samples =
  List.find_opt
    (fun s ->
       s.Metrics.om_name = name
       && List.for_all
            (fun (k, v) -> List.assoc_opt k s.Metrics.om_labels = Some v)
            labels)
    samples

let exposition_tests =
  [ t "OpenMetrics round-trips through the parser" (fun () ->
        let r = Metrics.create () in
        Metrics.inc ~registry:r
          ~labels:[ ("oracle", "dpll"); ("lemma", "3.3") ]
          ~by:13.0 "oracle_calls";
        Metrics.set ~registry:r "gc_allocated_bytes" 1.5e6;
        List.iter
          (Metrics.observe ~registry:r "latency_seconds")
          [ 0.001; 0.01; 0.1; 0.1 ];
        let text = Metrics.to_openmetrics ~registry:r () in
        Alcotest.(check bool) "ends with # EOF" true
          (let n = String.length text in
           n >= 6 && String.sub text (n - 6) 6 = "# EOF\n");
        let samples = Metrics.parse_openmetrics text in
        (match
           sample "shapmc_oracle_calls_total"
             [ ("oracle", "dpll"); ("lemma", "3.3") ]
             samples
         with
         | Some s ->
           Alcotest.(check (float 0.0)) "counter value" 13.0
             s.Metrics.om_value
         | None -> Alcotest.fail "counter sample missing");
        (match sample "shapmc_gc_allocated_bytes" [] samples with
         | Some s ->
           Alcotest.(check (float 0.0)) "gauge value" 1.5e6
             s.Metrics.om_value
         | None -> Alcotest.fail "gauge sample missing");
        (match sample "shapmc_latency_seconds_count" [] samples with
         | Some s ->
           Alcotest.(check (float 0.0)) "histogram count" 4.0
             s.Metrics.om_value
         | None -> Alcotest.fail "histogram count missing");
        (match sample "shapmc_latency_seconds_sum" [] samples with
         | Some s ->
           Alcotest.(check (float 1e-9)) "histogram sum" 0.211
             s.Metrics.om_value
         | None -> Alcotest.fail "histogram sum missing");
        (* cumulative buckets: non-decreasing, +Inf closes at the count *)
        let buckets =
          List.filter
            (fun s -> s.Metrics.om_name = "shapmc_latency_seconds_bucket")
            samples
        in
        Alcotest.(check bool) "has buckets" true (buckets <> []);
        let values = List.map (fun s -> s.Metrics.om_value) buckets in
        Alcotest.(check bool) "cumulative non-decreasing" true
          (List.sort compare values = values);
        (match
           List.find_opt
             (fun s ->
                List.assoc_opt "le" s.Metrics.om_labels = Some "+Inf")
             buckets
         with
         | Some s ->
           Alcotest.(check (float 0.0)) "+Inf bucket = count" 4.0
             s.Metrics.om_value
         | None -> Alcotest.fail "+Inf bucket missing"));
    t "escaped label values round-trip" (fun () ->
        let r = Metrics.create () in
        let ugly = "a\"b\\c\nd" in
        Metrics.inc ~registry:r ~labels:[ ("k", ugly) ] "weird";
        let samples =
          Metrics.parse_openmetrics (Metrics.to_openmetrics ~registry:r ())
        in
        match sample "shapmc_weird_total" [] samples with
        | Some s ->
          Alcotest.(check (option string)) "label survives" (Some ugly)
            (List.assoc_opt "k" s.Metrics.om_labels)
        | None -> Alcotest.fail "sample missing");
    t "malformed exposition raises" (fun () ->
        match Metrics.parse_openmetrics "shapmc_x{unclosed 1\n" with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure _ -> ());
    t "JSON dump parses with Tiny_json" (fun () ->
        let r = Metrics.create () in
        Metrics.inc ~registry:r ~labels:[ ("worker", "0") ] ~by:5.0 "tasks";
        Metrics.observe ~registry:r "lat" 0.25;
        let doc =
          match Tiny_json.parse_opt (Metrics.to_json ~registry:r ()) with
          | Some d -> d
          | None -> Alcotest.fail "JSON dump did not parse"
        in
        Alcotest.(check bool) "tasks present" true
          (Tiny_json.member "tasks" doc <> None);
        Alcotest.(check bool) "lat present" true
          (Tiny_json.member "lat" doc <> None)) ]

(* ------------------------------------------------------------------ *)
(* Integration with the instrumentation layer *)

let universe n = List.init n succ

let shap_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (i, x) (j, y) -> i = j && Rat.equal x y)
       (List.sort compare a) (List.sort compare b)

(* Run [f] under one observability regime, returning its result and the
   ledger's call total (-1 when the ledger is off). *)
let run_under regime f =
  Obs.reset ();
  match regime with
  | `Off ->
    let r = f () in
    (r, -1)
  | `Stats | `Profile ->
    Obs.enable ();
    Obs.set_profiling (regime = `Profile);
    Fun.protect
      ~finally:(fun () ->
        Obs.set_profiling false;
        Obs.disable ();
        Obs.reset ())
      (fun () ->
         let r = f () in
         (r, Obs.call_count ()))

let integration_tests =
  [ qtest ~count:15 "profiling changes no results and no call totals"
      (arb_formula ~nvars:3 ~depth:3)
      (fun f ->
         let run () =
           Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
             ~vars:(universe 3) f
         in
         let r_off, _ = run_under `Off run in
         let r_stats, c_stats = run_under `Stats run in
         let r_prof, c_prof = run_under `Profile run in
         shap_eq r_off r_stats && shap_eq r_off r_prof && c_stats = c_prof);
    t "spans record self time" (fun () ->
        let burn k =
          let acc = ref 0 in
          for i = 1 to k do
            acc := !acc + i
          done;
          ignore !acc
        in
        Obs.reset ();
        Obs.enable ();
        Fun.protect
          ~finally:(fun () ->
            Obs.disable ();
            Obs.reset ())
          (fun () ->
             Obs.with_span "outer" (fun () ->
                 burn 100_000;
                 Obs.with_span "inner" (fun () -> burn 100_000));
             let find p =
               match
                 List.find_opt
                   (fun s -> s.Obs.span_path = p)
                   (Obs.spans ())
               with
               | Some s -> s
               | None -> Alcotest.failf "span %s missing" p
             in
             let outer = find "outer" and inner = find "outer/inner" in
             Alcotest.(check bool) "self <= total" true
               (outer.Obs.span_self_seconds
                <= outer.Obs.span_seconds +. 1e-9);
             Alcotest.(check bool) "outer self = total - inner" true
               (Float.abs
                  (outer.Obs.span_self_seconds
                   -. (outer.Obs.span_seconds -. inner.Obs.span_seconds))
                <= 1e-9);
             (* the same self time reached the registry, per span label *)
             List.iter
               (fun p ->
                  Alcotest.(check bool)
                    (Printf.sprintf "histogram for %s" p)
                    true
                    (List.exists
                       (fun (labels, _) ->
                          List.assoc_opt "span" labels = Some p)
                       (Metrics.find_histograms "span_self_seconds")))
               [ "outer"; "outer/inner" ]));
    t "pool utilization lands in the registry, not the ledgers" (fun () ->
        Obs.reset ();
        Obs.enable ();
        Fun.protect
          ~finally:(fun () ->
            Obs.disable ();
            Obs.reset ())
          (fun () ->
             let p = Pool.create ~jobs:4 in
             let xs = Array.init 32 (fun i -> i) in
             let _ = Pool.map p (fun i -> i * i) xs in
             Alcotest.(check (float 0.0)) "every task counted" 32.0
               (Metrics.counter_total "pool_worker_tasks");
             Alcotest.(check (float 0.0)) "one map" 1.0
               (Metrics.counter_total "pool_maps");
             Alcotest.(check bool) "busy time accounted" true
               (Metrics.counter_total "pool_worker_busy_seconds" >= 0.0);
             (* the Obs side of the fence stayed clean: pool accounting
                must never perturb the jobs-independence guarantees *)
             Alcotest.(check int) "no ledger calls" 0 (Obs.call_count ());
             Alcotest.(check int) "no counters" 0
               (List.length (Obs.counters ()))));
    t "Obs.reset clears the registry" (fun () ->
        Metrics.inc "stale";
        Obs.reset ();
        Alcotest.(check (float 0.0)) "gone" 0.0
          (Metrics.counter_total "stale")) ]

let suite =
  histogram_tests @ histogram_property_tests @ registry_tests
  @ exposition_tests @ integration_tests
