(** Differential harness for the two-tier [Bigint] kernel.

    A deliberately naive base-10 reference (sign + decimal digit array,
    schoolbook everything) recomputes add/sub/mul/divmod/pow on random
    operands skewed toward the small<->big promotion boundary
    ([min_int]/[max_int] and neighbours) where the native fast paths hand
    over to the magnitude kernel.  Karatsuba is pitted against the
    schoolbook multiplier at sizes straddling its threshold, and the
    counting pipeline is checked bit-identical at [jobs ∈ {1, 4}] on
    counts that overflow 62 bits.

    Deterministic seeds; iteration counts scale with
    [SHAPMC_QCHECK_COUNT] exactly like [Test_differential]. *)

open Helpers

let iterations default =
  match Sys.getenv_opt "SHAPMC_QCHECK_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> default)
  | None -> default

let dtest ~seed ~count name arb prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 4242; seed |])
    (QCheck.Test.make ~count:(iterations count) ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Reference arithmetic: sign + little-endian decimal digits.          *)

module Ref = struct
  type t = int * int array (* sign in {-1,0,1}; canonical: no leading 0s *)

  let make s d =
    let n = ref (Array.length d) in
    while !n > 0 && d.(!n - 1) = 0 do decr n done;
    if !n = 0 then (0, [||]) else (s, Array.sub d 0 !n)

  let of_string str =
    let neg, start = if str.[0] = '-' then (true, 1) else (false, 0) in
    let len = String.length str - start in
    let d =
      Array.init len (fun i ->
          Char.code str.[String.length str - 1 - i] - Char.code '0')
    in
    make (if neg then -1 else 1) d

  let to_string (s, d) =
    if Array.length d = 0 then "0"
    else
      (if s < 0 then "-" else "")
      ^ String.init (Array.length d) (fun i ->
            Char.chr (d.(Array.length d - 1 - i) + Char.code '0'))

  let cmp_mag a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then compare la lb
    else begin
      let rec go i =
        if i < 0 then 0
        else if a.(i) <> b.(i) then compare a.(i) b.(i)
        else go (i - 1)
      in
      go (la - 1)
    end

  let add_mag a b =
    let l = max (Array.length a) (Array.length b) in
    let out = Array.make (l + 1) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s =
        (if i < Array.length a then a.(i) else 0)
        + (if i < Array.length b then b.(i) else 0)
        + !carry
      in
      out.(i) <- s mod 10;
      carry := s / 10
    done;
    out.(l) <- !carry;
    out

  (* requires a >= b *)
  let sub_mag a b =
    let out = Array.make (Array.length a) 0 in
    let borrow = ref 0 in
    for i = 0 to Array.length a - 1 do
      let d = a.(i) - (if i < Array.length b then b.(i) else 0) - !borrow in
      if d < 0 then begin
        out.(i) <- d + 10;
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done;
    out

  let mul_mag a b =
    if Array.length a = 0 || Array.length b = 0 then [||]
    else begin
      let out = Array.make (Array.length a + Array.length b) 0 in
      for i = 0 to Array.length a - 1 do
        let carry = ref 0 in
        for j = 0 to Array.length b - 1 do
          let v = out.(i + j) + (a.(i) * b.(j)) + !carry in
          out.(i + j) <- v mod 10;
          carry := v / 10
        done;
        out.(i + Array.length b) <- out.(i + Array.length b) + !carry
      done;
      out
    end

  (* Long division by trial subtraction of the shifted divisor (at most 9
     subtractions per output digit). *)
  let divmod_mag a b =
    let shift d k = Array.append (Array.make k 0) d in
    let trim d = snd (make 1 d) in
    let q = Array.make (Array.length a) 0 in
    let r = ref (trim a) in
    for k = Array.length a - Array.length b downto 0 do
      if k >= 0 then begin
        let bs = trim (shift b k) in
        while cmp_mag bs !r <= 0 do
          q.(k) <- q.(k) + 1;
          r := trim (sub_mag !r bs)
        done
      end
    done;
    (q, !r)

  let add (sa, da) (sb, db) =
    if sa = 0 then (sb, db)
    else if sb = 0 then (sa, da)
    else if sa = sb then make sa (add_mag da db)
    else begin
      match cmp_mag da db with
      | 0 -> (0, [||])
      | c when c > 0 -> make sa (sub_mag da db)
      | _ -> make sb (sub_mag db da)
    end

  let neg (s, d) = (-s, d)
  let sub a b = add a (neg b)
  let mul (sa, da) (sb, db) = make (sa * sb) (mul_mag da db)

  (* Truncated toward zero; sign of remainder = sign of dividend. *)
  let divmod (sa, da) (sb, db) =
    let qm, rm = divmod_mag da db in
    (make (sa * sb) qm, make sa rm)

  let pow b e =
    let rec go acc i = if i = e then acc else go (mul acc b) (i + 1) in
    go (1, [| 1 |]) 0
end

(* ------------------------------------------------------------------ *)
(* Operand generator: decimal strings, heavily weighted toward the
   promotion boundary. *)

let gen_operand =
  let open QCheck.Gen in
  let boundary =
    oneofl
      [ string_of_int min_int; string_of_int max_int;
        string_of_int (min_int + 1); string_of_int (max_int - 1);
        "4611686018427387904" (* 2^62 *); "-4611686018427387904";
        "4611686018427387903"; "0"; "1"; "-1"; "32768"; "-32768" ]
  in
  let near_boundary =
    let* base = oneofl [ min_int; max_int ] in
    let* off = int_range (-4) 4 in
    return (string_of_int (base + (if base > 0 then -abs off else abs off)))
  in
  let random_decimal =
    let* digits = int_range 1 80 in
    let* neg = bool in
    let* first = int_range 1 9 in
    let* rest = list_size (return (digits - 1)) (int_range 0 9) in
    return
      ((if neg then "-" else "")
       ^ string_of_int first
       ^ String.concat "" (List.map string_of_int rest))
  in
  frequency [ (3, boundary); (3, near_boundary); (4, random_decimal) ]

let arb_operand = QCheck.make ~print:Fun.id gen_operand

let check_same ctx expected got =
  if String.equal expected got then true
  else QCheck.Test.fail_reportf "%s: reference %s, bigint %s" ctx expected got

(* ------------------------------------------------------------------ *)

let op_tests =
  let pair = QCheck.pair arb_operand arb_operand in
  [ dtest ~seed:1 ~count:200 "add/sub match the decimal reference" pair
      (fun (a, b) ->
        let x = Bigint.of_string a and y = Bigint.of_string b in
        let rx = Ref.of_string a and ry = Ref.of_string b in
        check_same "add" (Ref.to_string (Ref.add rx ry))
          (Bigint.to_string (Bigint.add x y))
        && check_same "sub" (Ref.to_string (Ref.sub rx ry))
             (Bigint.to_string (Bigint.sub x y)));
    dtest ~seed:2 ~count:200 "mul matches the decimal reference" pair
      (fun (a, b) ->
        let x = Bigint.of_string a and y = Bigint.of_string b in
        let rx = Ref.of_string a and ry = Ref.of_string b in
        check_same "mul" (Ref.to_string (Ref.mul rx ry))
          (Bigint.to_string (Bigint.mul x y)));
    dtest ~seed:3 ~count:200 "divmod matches the decimal reference" pair
      (fun (a, b) ->
        QCheck.assume (b <> "0");
        let x = Bigint.of_string a and y = Bigint.of_string b in
        let rx = Ref.of_string a and ry = Ref.of_string b in
        let q, r = Bigint.divmod x y in
        let rq, rr = Ref.divmod rx ry in
        check_same "quot" (Ref.to_string rq) (Bigint.to_string q)
        && check_same "rem" (Ref.to_string rr) (Bigint.to_string r));
    dtest ~seed:4 ~count:60 "pow matches the decimal reference"
      (QCheck.pair arb_operand (QCheck.int_range 0 12))
      (fun (a, e) ->
        QCheck.assume (String.length a <= 20);
        let x = Bigint.of_string a and rx = Ref.of_string a in
        check_same "pow" (Ref.to_string (Ref.pow rx e))
          (Bigint.to_string (Bigint.pow x e)));
    dtest ~seed:5 ~count:200 "canonical tier at the boundary" arb_operand
      (fun a ->
        let x = Bigint.of_string a in
        let fits =
          Bigint.leq (Bigint.abs x) (Bigint.of_int max_int)
          || Bigint.equal x (Bigint.of_int min_int)
        in
        Bigint.Internal.is_small x = fits) ]

(* ------------------------------------------------------------------ *)
(* Karatsuba vs schoolbook, straddling the threshold.  The threshold is
   in limbs of 15 bits (~4.5 decimal digits each). *)

let gen_straddle =
  let open QCheck.Gen in
  let digits_of_limbs l = Stdlib.max 1 (l * 45 / 10) in
  let t = Bigint.Internal.karatsuba_threshold in
  let* limbs = int_range (Stdlib.max 1 (t - 8)) (3 * t) in
  let* neg = bool in
  let* first = int_range 1 9 in
  let* rest =
    list_size (return (digits_of_limbs limbs - 1)) (int_range 0 9)
  in
  return
    ((if neg then "-" else "")
     ^ string_of_int first
     ^ String.concat "" (List.map string_of_int rest))

let kara_tests =
  [ dtest ~seed:6 ~count:60 "karatsuba = schoolbook across the threshold"
      (QCheck.pair
         (QCheck.make ~print:Fun.id gen_straddle)
         (QCheck.make ~print:Fun.id gen_straddle))
      (fun (a, b) ->
        let x = Bigint.of_string a and y = Bigint.of_string b in
        Bigint.equal (Bigint.mul x y) (Bigint.Internal.mul_schoolbook x y)) ]

(* ------------------------------------------------------------------ *)
(* jobs-independence: stratified counts through the parallel fan-out
   must be bit-identical at jobs 1 and 4, on counts past 62 bits. *)

let with_jobs ~jobs f =
  Par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

let jobs_tests =
  [ dtest ~seed:7 ~count:10 "counting bit-identical at jobs 1 and 4"
      (arb_formula ~nvars:8 ~depth:4)
      (fun f ->
        (* Pad the universe to 70 variables so the binomial-smoothing
           counts overflow the native tier (C(70,35) > 2^62). *)
        let vars = List.init 70 succ in
        let run () =
          let v = Dpll.count_by_size_universe ~vars f in
          let shap =
            Par.map
              (fun l -> Bigint.mul (Kvec.get v l) (Kvec.get v (l + 1)))
              [| 10; 20; 35; 50 |]
          in
          (Kvec.to_array v, shap)
        in
        let v1, s1 = with_jobs ~jobs:1 run in
        let v4, s4 = with_jobs ~jobs:4 run in
        Array.for_all2 Bigint.equal v1 v4 && Array.for_all2 Bigint.equal s1 s4)
  ]

let suite = op_tests @ kara_tests @ jobs_tests
