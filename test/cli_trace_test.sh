#!/usr/bin/env bash
# CLI-level checks for --stats / --trace composition and trace-report.
# Invoked by the dune rule in test/dune as:  bash cli_trace_test.sh SHAPMC_EXE
set -euo pipefail

exe="$1"
fail() { echo "cli-trace FAILED: $1" >&2; exit 1; }

# --stats and --trace together on one run: the result prints once, the
# stats report prints once, the trace lands in the file — neither flag
# double-reports or resets the other (n = 3, so 13 = (n+1) + n^2 calls).
out=$("$exe" shap -m reduction --stats --trace t.jsonl "x1 & (x2 | !x3)" 2>err.log)
grep -q "5/6" <<<"$out" || fail "Shapley values missing from stdout"
[ "$(grep -c "^oracle calls:" <<<"$out")" -eq 1 ] \
  || fail "stats report not printed exactly once"
grep -q "events written to t.jsonl" err.log \
  || fail "trace confirmation missing from stderr"
[ -s t.jsonl ] || fail "t.jsonl empty or missing"

stats_calls=$(awk '/^  dpll /{print $2}' <<<"$out")
[ "$stats_calls" = "13" ] || fail "stats ledger reports $stats_calls dpll calls, want 13"
trace_calls=$(grep -c '"kind":"oracle"' t.jsonl)
[ "$trace_calls" = "13" ] || fail "trace stream has $trace_calls oracle events, want 13"
grep -q '"lemma":"3.3"' t.jsonl || fail "oracle events lack the lemma tag"

# trace-report replays the stream with the same totals as --stats.
report=$("$exe" trace-report t.jsonl)
grep -q "per-phase aggregates" <<<"$report" || fail "report lacks phase aggregates"
grep -q "oracle totals" <<<"$report" || fail "report lacks oracle totals"
grep -qE "dpll +13\b" <<<"$report" || fail "report totals disagree with the ledger"
grep -q "lemma3.2.full" <<<"$report" || fail "report lacks the lemma3.2.full phase"

# A .json suffix selects the Chrome trace_event format.
"$exe" count --trace t.json "x1 & x2" >/dev/null 2>err2.log
grep -q '"traceEvents"' t.json || fail "no traceEvents in chrome export"
grep -q '"displayTimeUnit"' t.json || fail "no displayTimeUnit in chrome export"

# --trace alone must not print the stats report.
solo=$("$exe" count --trace t2.jsonl "x1 | x2" 2>/dev/null)
if grep -q "^oracle calls:" <<<"$solo"; then
  fail "--trace alone printed the stats report"
fi

# JSONL traces open with the meta line carrying stored/dropped counts.
head -1 t.jsonl | grep -q '"meta":"shapmc.trace"' \
  || fail "t.jsonl lacks the meta line"
head -1 t.jsonl | grep -q '"dropped":0' \
  || fail "meta line lacks the dropped count"

# --profile - prints the self-time/latency/Gc report after the result;
# the oracle TOTAL must agree with the ledger's 13 calls.
prof=$("$exe" shap -m reduction --profile - "x1 & (x2 | !x3)" 2>/dev/null)
grep -q "5/6" <<<"$prof" || fail "profile run lost the Shapley values"
grep -q "== Phases (self time) ==" <<<"$prof" \
  || fail "profile lacks phase self-time"
grep -q "== Oracle latency ==" <<<"$prof" \
  || fail "profile lacks oracle latency"
grep -q "gc_allocated_bytes" <<<"$prof" || fail "profile lacks Gc accounting"
grep -qE "TOTAL +13 " <<<"$prof" \
  || fail "profile oracle TOTAL disagrees with the ledger"

# trace-report --percentiles rebuilds latency rows from the stream,
# with the same TOTAL as the --stats ledger.
perc=$("$exe" trace-report --percentiles t.jsonl)
grep -q "oracle latency percentiles" <<<"$perc" \
  || fail "trace-report lacks the percentile section"
grep -qE "TOTAL +13 " <<<"$perc" \
  || fail "percentile TOTAL disagrees with the ledger"

# --metrics - emits OpenMetrics exposition on stdout.
mets=$("$exe" shap -m reduction --metrics - "x1 & (x2 | !x3)" 2>/dev/null)
grep -q "^# EOF" <<<"$mets" || fail "metrics exposition lacks # EOF"
grep -q "shapmc_oracle_seconds_count" <<<"$mets" \
  || fail "metrics exposition lacks oracle_seconds"

echo "cli-trace: all checks passed"
