(** Request-scoped observability: the {!Scope} buffer and its
    propagation across the fan-out seams.

    - Scope capture is independent of the global [Obs] switch, and
      never leaks into the global ledgers/stream.
    - The event buffer is bounded; oracle aggregates stay exact past
      the cap.
    - Installation nests and restores, also across raises.
    - [Par.map] and [Pool.Exec.submit] re-install both the caller's
      span context and its scope in the worker domains (the
      [Pool.Exec] half is the regression test for workers previously
      dropping the caller's context). *)

let t name f = Alcotest.test_case name `Quick f

let req_attr (e : Trace.event) =
  match List.assoc_opt "req" e.Trace.attrs with
  | Some (Trace.Str id) -> Some id
  | _ -> None

(* Every test here must leave the global switch off and the ledgers
   clean, whatever it toggled. *)
let with_clean_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      Obs.disable ();
      Obs.reset ();
      f ())

let scope_captures_while_obs_disabled () =
  with_clean_obs (fun () ->
      let sc = Scope.create ~id:"req-1" () in
      Alcotest.(check bool) "inactive before install" false (Scope.active ());
      Scope.with_scope sc (fun () ->
          Alcotest.(check bool) "active inside" true (Scope.active ());
          Obs.with_span "work" (fun () ->
              Obs.record ~oracle:"dpll" ~n:3 ~seconds:0.25 ();
              Obs.incr "oracle_hits");
          Obs.phase "done");
      Alcotest.(check bool) "inactive after" false (Scope.active ());
      (* captured: span begin/end + oracle + counter + phase *)
      let events = Scope.events sc in
      Alcotest.(check int) "five events stored" 5 (List.length events);
      List.iter
        (fun e ->
          Alcotest.(check (option string)) "req attr on every event"
            (Some "req-1") (req_attr e))
        events;
      let kinds = List.map (fun e -> Trace.kind_name e.Trace.kind) events in
      Alcotest.(check (list string)) "event kinds in order"
        [ "span_begin"; "oracle"; "counter"; "span_end"; "phase" ]
        kinds;
      Alcotest.(check int) "oracle calls aggregated" 1 (Scope.oracle_calls sc);
      Alcotest.(check (float 1e-9)) "oracle seconds aggregated" 0.25
        (Scope.oracle_seconds sc);
      (* ...and none of it reached the global side *)
      Alcotest.(check int) "global ledger untouched" 0 (Obs.call_count ());
      Alcotest.(check int) "global counters untouched" 0
        (Obs.counter "oracle_hits");
      Alcotest.(check (list string)) "global spans untouched" []
        (List.map (fun s -> s.Obs.span_path) (Obs.spans ())))

let scope_cap_bounds_events_not_aggregates () =
  with_clean_obs (fun () ->
      let sc = Scope.create ~cap:2 ~id:"capped" () in
      Scope.with_scope sc (fun () ->
          for i = 1 to 5 do
            Obs.record ~oracle:"mc" ~n:i ~seconds:0.1 ()
          done);
      Alcotest.(check int) "stored at cap" 2 (Scope.stored sc);
      Alcotest.(check int) "overflow counted" 3 (Scope.dropped sc);
      Alcotest.(check int) "emitted = stored + dropped" 5 (Scope.emitted sc);
      Alcotest.(check int) "aggregates exact past the cap" 5
        (Scope.oracle_calls sc);
      Alcotest.(check (float 1e-9)) "seconds exact past the cap" 0.5
        (Scope.oracle_seconds sc);
      (* cap 0: pure aggregation *)
      let sc0 = Scope.create ~cap:0 ~id:"agg-only" () in
      Scope.with_scope sc0 (fun () ->
          Obs.record ~oracle:"mc" ~n:1 ~seconds:0.125 ());
      Alcotest.(check int) "cap 0 stores nothing" 0 (Scope.stored sc0);
      Alcotest.(check int) "cap 0 still aggregates" 1 (Scope.oracle_calls sc0))

let scope_nesting_restores () =
  with_clean_obs (fun () ->
      let outer = Scope.create ~id:"outer" () in
      let inner = Scope.create ~id:"inner" () in
      Scope.with_scope outer (fun () ->
          Obs.phase "before";
          Scope.with_scope inner (fun () ->
              Obs.phase "nested";
              Alcotest.(check (option string)) "inner installed"
                (Some "inner")
                (Option.map Scope.id (Scope.current ())));
          Alcotest.(check (option string)) "outer restored" (Some "outer")
            (Option.map Scope.id (Scope.current ()));
          Obs.phase "after");
      Alcotest.(check (option string)) "uninstalled at the end" None
        (Option.map Scope.id (Scope.current ()));
      Alcotest.(check (list string)) "outer saw only its own phases"
        [ "before"; "after" ]
        (List.map (fun e -> e.Trace.name) (Scope.events outer));
      Alcotest.(check (list string)) "inner saw only the nested phase"
        [ "nested" ]
        (List.map (fun e -> e.Trace.name) (Scope.events inner));
      (* a raising body still restores *)
      (try
         Scope.with_scope outer (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check bool) "restored after raise" false (Scope.active ()))

let scope_span_depths () =
  with_clean_obs (fun () ->
      let sc = Scope.create ~id:"depths" () in
      Scope.with_scope sc (fun () ->
          Obs.with_span "a" (fun () -> Obs.with_span "b" (fun () -> ())));
      let depth_of name kind =
        match
          List.find_opt
            (fun e -> e.Trace.name = name && e.Trace.kind = kind)
            (Scope.events sc)
        with
        | Some e -> e.Trace.depth
        | None -> Alcotest.failf "no %s event for span %s"
                    (Trace.kind_name kind) name
      in
      Alcotest.(check int) "outer begin at 0" 0 (depth_of "a" Trace.Span_begin);
      Alcotest.(check int) "inner begin at 1" 1 (depth_of "b" Trace.Span_begin);
      Alcotest.(check int) "inner end at its begin depth" 1
        (depth_of "b" Trace.Span_end);
      Alcotest.(check int) "outer end at its begin depth" 0
        (depth_of "a" Trace.Span_end))

let scope_and_enabled_coexist () =
  with_clean_obs (fun () ->
      Obs.enable ();
      let sc = Scope.create ~id:"both" () in
      Scope.with_scope sc (fun () ->
          Obs.with_span "stage" (fun () ->
              Obs.record ~oracle:"dpll" ~n:4 ~seconds:0.5 ()));
      (* both sides observed the same work *)
      Alcotest.(check int) "global ledger got the call" 1 (Obs.call_count ());
      Alcotest.(check int) "scope got the call" 1 (Scope.oracle_calls sc);
      Alcotest.(check (list string)) "global span aggregated" [ "stage" ]
        (List.map (fun s -> s.Obs.span_path) (Obs.spans ()));
      (* work done outside the scope stays out of it *)
      Obs.record ~oracle:"dpll" ~n:4 ~seconds:0.5 ();
      Alcotest.(check int) "global sees both calls" 2 (Obs.call_count ());
      Alcotest.(check int) "scope still sees one" 1 (Scope.oracle_calls sc))

let par_map_propagates_scope () =
  with_clean_obs (fun () ->
      let saved = Par.jobs () in
      Fun.protect
        ~finally:(fun () -> Par.set_jobs saved)
        (fun () ->
          Par.set_jobs 4;
          let sc = Scope.create ~id:"fanout" () in
          let out =
            Scope.with_scope sc (fun () ->
                Par.map
                  (fun i ->
                    Obs.record ~oracle:"worker" ~n:i ~seconds:0.01 ();
                    i * i)
                  (Array.init 16 (fun i -> i)))
          in
          Alcotest.(check (array int)) "map result"
            (Array.init 16 (fun i -> i * i))
            out;
          Alcotest.(check int) "every worker call landed in the scope" 16
            (Scope.oracle_calls sc);
          let oracle_events =
            List.filter
              (fun e -> e.Trace.kind = Trace.Oracle)
              (Scope.events sc)
          in
          Alcotest.(check int) "all oracle events stored" 16
            (List.length oracle_events);
          List.iter
            (fun e ->
              Alcotest.(check (option string)) "req attr across domains"
                (Some "fanout") (req_attr e))
            oracle_events))

(* Regression (the satellite fix): Pool.Exec workers used to run tasks
   with an empty span stack and no scope, so server-side oracle work
   neither nested under the submitting request's span path nor reached
   its per-request buffer. *)
let exec_submit_propagates_context_and_scope () =
  with_clean_obs (fun () ->
      Obs.enable ();
      let sc = Scope.create ~id:"submitter" () in
      let ex = Pool.Exec.create ~jobs:2 in
      Scope.with_scope sc (fun () ->
          Obs.with_span "caller" (fun () ->
              Alcotest.(check bool) "submit accepted" true
                (Pool.Exec.submit ex (fun () ->
                     Obs.with_span "worker" (fun () ->
                         Obs.record ~oracle:"dpll" ~n:2 ~seconds:0.125 ())))));
      Alcotest.(check bool) "drained" true (Pool.Exec.shutdown ex);
      let paths = List.map (fun s -> s.Obs.span_path) (Obs.spans ()) in
      Alcotest.(check bool) "worker span nests under the caller's path" true
        (List.mem "caller/worker" paths);
      Alcotest.(check int) "oracle call reached the submitter's scope" 1
        (Scope.oracle_calls sc);
      let names = List.map (fun e -> e.Trace.name) (Scope.events sc) in
      Alcotest.(check bool) "worker span captured by the scope" true
        (List.mem "worker" names);
      List.iter
        (fun e ->
          Alcotest.(check (option string)) "req attr from the worker domain"
            (Some "submitter") (req_attr e))
        (Scope.events sc))

let exec_submit_without_context_is_bare () =
  with_clean_obs (fun () ->
      let ex = Pool.Exec.create ~jobs:2 in
      let saw_scope = Atomic.make true in
      ignore
        (Pool.Exec.submit ex (fun () ->
             Atomic.set saw_scope (Scope.current () <> None)));
      Alcotest.(check bool) "drained" true (Pool.Exec.shutdown ex);
      Alcotest.(check bool) "no phantom scope in workers" false
        (Atomic.get saw_scope))

let concurrent_emission_into_one_scope () =
  with_clean_obs (fun () ->
      let sc = Scope.create ~id:"shared" () in
      let domains = 4 and per_domain = 200 in
      let workers =
        Array.init domains (fun d ->
            Domain.spawn (fun () ->
                Scope.with_current (Some sc) (fun () ->
                    for i = 1 to per_domain do
                      Obs.record ~oracle:"mc" ~n:((d * per_domain) + i)
                        ~seconds:0.001 ()
                    done)))
      in
      Array.iter Domain.join workers;
      Alcotest.(check int) "no emission lost under contention"
        (domains * per_domain)
        (Scope.oracle_calls sc);
      Alcotest.(check int) "stored + dropped accounts for everything"
        (domains * per_domain)
        (Scope.stored sc + Scope.dropped sc);
      (* sequence numbers are unique and dense over stored events *)
      let seqs =
        List.sort compare
          (List.map (fun e -> e.Trace.seq) (Scope.events sc))
      in
      let distinct = List.sort_uniq compare seqs in
      Alcotest.(check int) "seq numbers distinct" (List.length seqs)
        (List.length distinct))

let suite =
  [ t "scope: captures with global obs disabled"
      scope_captures_while_obs_disabled;
    t "scope: cap bounds events, not aggregates"
      scope_cap_bounds_events_not_aggregates;
    t "scope: nesting installs and restores" scope_nesting_restores;
    t "scope: span depths match begin/end pairs" scope_span_depths;
    t "scope: coexists with the global switch" scope_and_enabled_coexist;
    t "scope: Par.map propagates into worker domains"
      par_map_propagates_scope;
    t "scope: Pool.Exec.submit re-installs context and scope (regression)"
      exec_submit_propagates_context_and_scope;
    t "scope: bare submits see no phantom scope"
      exec_submit_without_context_is_bare;
    t "scope: concurrent emission into one scope is lossless"
      concurrent_emission_into_one_scope ]
